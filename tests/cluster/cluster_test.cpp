#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/fleet_spec.hpp"
#include "obs/trace_sink.hpp"
#include "runner/sweep_engine.hpp"

namespace dimetrodon::cluster {
namespace {

/// Owning test double for the SoA FleetView: chain node() calls, then hand
/// view() to a policy. Nodes marked unroutable stay in the arrays (the view
/// indexes by node id) but drop out of the routable list, exactly like a
/// draining node in the real cluster.
class TestFleet {
 public:
  TestFleet& node(double temp_c, std::uint32_t outstanding, double p = 0.0,
                  bool routable = true) {
    const auto id = static_cast<std::uint32_t>(temp_.size());
    if (routable) routable_.push_back(id);
    temp_.push_back(temp_c);
    out_.push_back(outstanding);
    p_.push_back(p);
    drain_.push_back(routable ? 0 : 1);
    return *this;
  }

  FleetView view() const {
    FleetView v;
    v.num_nodes = temp_.size();
    v.sensor_temp_c = temp_.data();
    v.outstanding = out_.data();
    v.injection_probability = p_.data();
    v.draining = drain_.data();
    v.routable = routable_.data();
    v.routable_count = routable_.size();
    return v;
  }

 private:
  std::vector<double> temp_;
  std::vector<std::uint32_t> out_;
  std::vector<double> p_;
  std::vector<std::uint8_t> drain_;
  std::vector<std::uint32_t> routable_;
};

// --- policy unit tests ------------------------------------------------------

TEST(LoadBalancerTest, RoundRobinCycles) {
  auto lb = make_policy(PolicyKind::kRoundRobin);
  TestFleet f;
  f.node(40, 0).node(40, 0).node(40, 0);
  EXPECT_EQ(lb->pick(f.view()), 0u);
  EXPECT_EQ(lb->pick(f.view()), 1u);
  EXPECT_EQ(lb->pick(f.view()), 2u);
  EXPECT_EQ(lb->pick(f.view()), 0u);  // wraps
}

TEST(LoadBalancerTest, RoundRobinSkipsDrainedWithoutResetting) {
  auto lb = make_policy(PolicyKind::kRoundRobin);
  TestFleet all;
  all.node(40, 0).node(40, 0).node(40, 0);
  EXPECT_EQ(lb->pick(all.view()), 0u);
  // Node 1 drained out of the routable set: the rotation continues past it.
  TestFleet without1;
  without1.node(40, 0).node(40, 0, 0.0, false).node(40, 0);
  EXPECT_EQ(lb->pick(without1.view()), 2u);
  EXPECT_EQ(lb->pick(all.view()), 0u);
}

TEST(LoadBalancerTest, LeastOutstandingPicksEmptiestQueue) {
  auto lb = make_policy(PolicyKind::kLeastOutstanding);
  TestFleet a;
  a.node(40, 5).node(40, 2).node(40, 9);
  EXPECT_EQ(lb->pick(a.view()), 1u);
  // Ties break toward the cooler node, then the lower id.
  TestFleet b;
  b.node(44, 3).node(41, 3).node(44, 3);
  EXPECT_EQ(lb->pick(b.view()), 1u);
  TestFleet c;
  c.node(40, 3).node(40, 3);
  EXPECT_EQ(lb->pick(c.view()), 0u);
}

TEST(LoadBalancerTest, CoolestNodeRoutesOnQuantizedTelemetry) {
  auto lb = make_policy(PolicyKind::kCoolestNode);
  TestFleet a;
  a.node(45, 0).node(41, 7).node(43, 0);
  EXPECT_EQ(lb->pick(a.view()), 1u);
  // Equal quantized readings fall through to the queue-depth tie-break.
  TestFleet b;
  b.node(42, 6).node(42, 1).node(42, 6);
  EXPECT_EQ(lb->pick(b.view()), 1u);
}

TEST(LoadBalancerTest, InjectionAwareDeprioritizesAboveThreshold) {
  auto lb = make_policy(PolicyKind::kInjectionAware, 0.25);
  // Idle fleet: the un-injected tier wins even when a taxed node is cooler.
  TestFleet a;
  a.node(45, 0, 0.0).node(40, 0, 0.6);
  EXPECT_EQ(lb->pick(a.view()), 0u);
  // Below-threshold injection is not deprioritized.
  TestFleet b;
  b.node(45, 0, 0.2).node(40, 0, 0.1);
  EXPECT_EQ(lb->pick(b.view()), 1u);
  // Under load the taxed node still takes its capacity-weighted share:
  // 8 outstanding at full capacity scores worse than 2 at (1 - 0.6).
  TestFleet c;
  c.node(40, 8, 0.0).node(44, 2, 0.6);
  EXPECT_EQ(lb->pick(c.view()), 1u);
  // All above threshold: degrade to capacity-weighted, never refuse.
  TestFleet d;
  d.node(40, 4, 0.5).node(40, 1, 0.5);
  EXPECT_EQ(lb->pick(d.view()), 1u);
}

TEST(LoadBalancerTest, PoliciesScanOnlyTheRoutableList) {
  // A scorching, empty, but draining node must never be picked even though
  // its SoA entries look ideal — policies only walk the routable ids.
  for (const auto kind :
       {PolicyKind::kLeastOutstanding, PolicyKind::kCoolestNode,
        PolicyKind::kInjectionAware}) {
    auto lb = make_policy(kind);
    TestFleet f;
    f.node(30, 0, 0.0, false).node(50, 9).node(52, 9);
    EXPECT_EQ(lb->pick(f.view()), 1u) << policy_name(kind);
  }
}

TEST(LoadBalancerTest, PolicyNamesStable) {
  EXPECT_STREQ(policy_name(PolicyKind::kRoundRobin), "round-robin");
  EXPECT_STREQ(policy_name(PolicyKind::kLeastOutstanding),
               "least-outstanding");
  EXPECT_STREQ(policy_name(PolicyKind::kCoolestNode), "coolest-node");
  EXPECT_STREQ(policy_name(PolicyKind::kInjectionAware), "injection-aware");
  for (const auto kind :
       {PolicyKind::kRoundRobin, PolicyKind::kLeastOutstanding,
        PolicyKind::kCoolestNode, PolicyKind::kInjectionAware}) {
    EXPECT_STREQ(make_policy(kind)->name(), policy_name(kind));
  }
}

// --- cluster integration ----------------------------------------------------

FleetSpec small_fleet(double load_rps = 400.0) {
  sched::MachineConfig machine;
  machine.enable_meter = false;
  // Fans 1.0 / 0.8 / 0.6 via the cooling gradient; node 2 runs p=0.3.
  return FleetSpec::racks(1)
      .nodes_per_rack(3)
      .with_machine(machine)
      .with_cooling(1.0, 0.6)
      .with_load(load_rps)
      .override_position(2, {.injection_probability = 0.3});
}

void expect_same_result(const ClusterResult& a, const ClusterResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.qos.total, b.qos.total);
  EXPECT_EQ(a.qos.mean_latency_s, b.qos.mean_latency_s);
  EXPECT_EQ(a.qos.p50_latency_s, b.qos.p50_latency_s);
  EXPECT_EQ(a.qos.p95_latency_s, b.qos.p95_latency_s);
  EXPECT_EQ(a.qos.p99_latency_s, b.qos.p99_latency_s);
  EXPECT_EQ(a.qos.max_latency_s, b.qos.max_latency_s);
  EXPECT_EQ(a.fleet_peak_sensor_c, b.fleet_peak_sensor_c);
  EXPECT_EQ(a.fleet_peak_exact_c, b.fleet_peak_exact_c);
  EXPECT_EQ(a.fleet_mean_sensor_c, b.fleet_mean_sensor_c);
  EXPECT_EQ(a.fleet_peak_inlet_c, b.fleet_peak_inlet_c);
  EXPECT_EQ(a.drains, b.drains);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].routed, b.nodes[i].routed);
    EXPECT_EQ(a.nodes[i].completed, b.nodes[i].completed);
    EXPECT_EQ(a.nodes[i].peak_sensor_c, b.nodes[i].peak_sensor_c);
  }
  EXPECT_TRUE(a.counters == b.counters);
}

TEST(ClusterTest, RunIsBitReproducible) {
  const auto run_once = [] {
    auto fleet = small_fleet().with_policy(PolicyKind::kCoolestNode)
                     .make_cluster();
    return fleet->run(sim::from_sec(4));
  };
  expect_same_result(run_once(), run_once());
}

TEST(ClusterTest, SeedChangesTheRun) {
  const std::uint64_t base_seed = small_fleet().config().seed;
  auto fa = small_fleet().make_cluster();
  auto fb = small_fleet().with_seed(base_seed + 1).make_cluster();
  const auto ra = fa->run(sim::from_sec(4));
  const auto rb = fb->run(sim::from_sec(4));
  EXPECT_NE(ra.qos.mean_latency_s, rb.qos.mean_latency_s);
}

TEST(ClusterTest, NodesGetIndependentMachineSeeds) {
  auto fleet = small_fleet().make_cluster();
  ASSERT_EQ(fleet->num_nodes(), 3u);
  EXPECT_NE(fleet->machine(0).config().seed, fleet->machine(1).config().seed);
  EXPECT_NE(fleet->machine(1).config().seed, fleet->machine(2).config().seed);
}

TEST(ClusterTest, RoundRobinSpreadsLoadEvenly) {
  auto fleet = small_fleet().make_cluster();
  const auto r = fleet->run(sim::from_sec(4));
  ASSERT_EQ(r.nodes.size(), 3u);
  EXPECT_GT(r.offered, 1000u);
  std::uint64_t lo = r.nodes[0].routed, hi = r.nodes[0].routed;
  for (const auto& n : r.nodes) {
    lo = std::min(lo, n.routed);
    hi = std::max(hi, n.routed);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ClusterTest, AllRoutedRequestsEventuallyComplete) {
  auto fleet = small_fleet(200.0)
                   .with_policy(PolicyKind::kLeastOutstanding)
                   .make_cluster();
  const auto r = fleet->run(sim::from_sec(4));
  // Light load: everything routed before the tail should finish; allow the
  // few requests still in flight at the horizon.
  EXPECT_GT(r.completed, 0u);
  EXPECT_GE(r.offered, r.completed);
  EXPECT_LE(r.offered - r.completed, 32u);
  EXPECT_EQ(r.qos.total, r.completed);
  EXPECT_EQ(r.counters.requests_routed, r.offered);
  // Percentiles populated and ordered.
  EXPECT_GT(r.qos.p50_latency_s, 0.0);
  EXPECT_LE(r.qos.p50_latency_s, r.qos.p95_latency_s);
  EXPECT_LE(r.qos.p95_latency_s, r.qos.p99_latency_s);
  EXPECT_LE(r.qos.p99_latency_s, r.qos.max_latency_s);
}

TEST(ClusterTest, BatchedTelemetryEmitsOneFleetSamplePerSweep) {
  auto sink = std::make_shared<obs::RingBufferSink>();
  auto fleet = small_fleet()
                   .with_telemetry(sim::from_ms(50))
                   .with_trace_sink([sink] { return sink; })
                   .make_cluster();
  const auto r = fleet->run(sim::from_sec(2));
  // One batched fleet_sample per sweep: construction + 40 ticks + final.
  EXPECT_EQ(r.counters.fleet_samples, 42u);
  std::uint64_t events = 0;
  for (const auto& e : sink->snapshot()) {
    if (e.kind == obs::EventKind::kFleetSample) {
      ++events;
      EXPECT_EQ(e.arg, 3u);       // fleet size rides in arg
      EXPECT_GT(e.value, 20.0);   // hottest quantized sensor
    }
  }
  EXPECT_EQ(events, r.counters.fleet_samples);
}

TEST(ClusterTest, LazyAdvancementTouchesOnlyTheRoutedNode) {
  // machine_advances counts run_until interactions: lazy advancement makes
  // it arrivals + nodes * sweeps, NOT arrivals * nodes (the old design).
  auto fleet = small_fleet(400.0).make_cluster();
  const auto r = fleet->run(sim::from_sec(4));
  const std::uint64_t sweeps = r.counters.fleet_samples - 1;  // minus t=0
  EXPECT_EQ(fleet->machine_advances(), r.offered + 3 * sweeps);
  EXPECT_LT(fleet->machine_advances(), 3 * r.offered);
  // The coordination timeline itself is O(1) in fleet size.
  EXPECT_EQ(fleet->timeline_entries(), 2u);
}

TEST(ClusterTest, InjectionAwareShiftsLoadOffInjectedNode) {
  auto fleet = small_fleet(600.0)
                   .with_policy(PolicyKind::kInjectionAware, 0.25)
                   .make_cluster();
  const auto r = fleet->run(sim::from_sec(4));
  // Node 2 runs p=0.3 injection (> threshold): it must receive strictly
  // less traffic than each un-injected node.
  EXPECT_LT(r.nodes[2].routed, r.nodes[0].routed);
  EXPECT_LT(r.nodes[2].routed, r.nodes[1].routed);
  EXPECT_GT(r.nodes[2].routed, 0u);  // deprioritized, not starved
}

TEST(ClusterTest, ProchotFailoverDrainsTrippedNode) {
  sched::MachineConfig machine;
  machine.enable_meter = false;
  // Thermal monitor tuned to trip just above the loaded temperature so the
  // badly cooled node PROCHOTs quickly under traffic.
  machine.prochot_c = 42.0;
  machine.prochot_release_c = 41.0;
  auto sink = std::make_shared<obs::RingBufferSink>();
  auto fleet = FleetSpec::racks(1)
                   .nodes_per_rack(2)
                   .with_machine(machine)
                   .with_cooling(1.0, 0.4)
                   .with_load(1200.0)
                   .with_trace_sink([sink] { return sink; })
                   .make_cluster();
  const auto r = fleet->run(sim::from_sec(8));

  EXPECT_GE(r.drains, 1u);
  EXPECT_EQ(r.counters.node_drains, r.drains);
  EXPECT_GT(r.nodes[1].drains, 0u);
  // Failover: the drained node ends up with less traffic than round-robin's
  // even split.
  EXPECT_LT(r.nodes[1].routed, r.nodes[0].routed);

  // The cluster tracer recorded the drain transitions and every routing
  // decision.
  std::uint64_t drain_events = 0;
  std::uint64_t routed_events = 0;
  for (const auto& e : sink->snapshot()) {
    if (e.kind == obs::EventKind::kNodeDrain && e.arg == 1) ++drain_events;
    if (e.kind == obs::EventKind::kRequestRouted) ++routed_events;
  }
  EXPECT_EQ(drain_events, r.drains);
  EXPECT_EQ(sink->dropped(), 0u);  // well under default ring capacity
  EXPECT_EQ(routed_events, r.offered);
}

TEST(ClusterTest, WholeFleetDrainingStillRoutes) {
  sched::MachineConfig machine;
  machine.enable_meter = false;
  machine.prochot_c = 40.0;  // below loaded temps: both nodes trip
  machine.prochot_release_c = 39.5;
  auto fleet = FleetSpec::racks(1)
                   .nodes_per_rack(2)
                   .with_machine(machine)
                   .with_cooling(0.5, 0.5)
                   .with_load(800.0)
                   .with_policy(PolicyKind::kLeastOutstanding)
                   .make_cluster();
  const auto r = fleet->run(sim::from_sec(6));
  // Even with every node tripped, requests keep flowing (degraded service
  // beats dropped requests).
  EXPECT_EQ(r.counters.requests_routed, r.offered);
  EXPECT_GT(r.completed, 0u);
}

TEST(ClusterTest, EmptyFleetIsRejected) {
  ClusterConfig cfg;  // nodes default-empty: fleets must be built explicitly
  EXPECT_THROW(Cluster(cfg, make_policy(PolicyKind::kRoundRobin)),
               std::invalid_argument);
}

// --- sweep-engine bridge ----------------------------------------------------

ClusterRunSpec bridge_spec(PolicyKind policy) {
  return small_fleet().with_policy(policy).for_duration(sim::from_sec(3))
      .build();
}

runner::SweepEngineConfig quiet(std::size_t threads, std::string cache_dir) {
  runner::SweepEngineConfig cfg;
  cfg.threads = threads;
  cfg.use_cache = !cache_dir.empty();
  cfg.cache_dir = std::move(cache_dir);
  cfg.progress = false;
  return cfg;
}

std::vector<runner::RunSpec> bridge_grid() {
  return {to_run_spec(bridge_spec(PolicyKind::kRoundRobin)),
          to_run_spec(bridge_spec(PolicyKind::kCoolestNode)),
          to_run_spec(bridge_spec(PolicyKind::kInjectionAware))};
}

void expect_same_record(const runner::RunRecord& a,
                        const runner::RunRecord& b) {
  EXPECT_EQ(a.result.label, b.result.label);
  EXPECT_EQ(a.result.throughput, b.result.throughput);
  EXPECT_EQ(a.result.sim_seconds, b.result.sim_seconds);
  ASSERT_TRUE(a.result.qos.has_value());
  ASSERT_TRUE(b.result.qos.has_value());
  EXPECT_EQ(a.result.qos->total, b.result.qos->total);
  EXPECT_EQ(a.result.qos->mean_latency_s, b.result.qos->mean_latency_s);
  EXPECT_EQ(a.result.qos->p50_latency_s, b.result.qos->p50_latency_s);
  EXPECT_EQ(a.result.qos->p95_latency_s, b.result.qos->p95_latency_s);
  EXPECT_EQ(a.result.qos->p99_latency_s, b.result.qos->p99_latency_s);
  EXPECT_TRUE(a.result.counters == b.result.counters);
  EXPECT_EQ(a.extra, b.extra);
}

TEST(ClusterSweepTest, ThreadCountDoesNotChangeResults) {
  // The cluster determinism invariant end-to-end: a sweep of cluster runs is
  // bit-identical on 1 and 4 threads.
  runner::SweepEngine serial(sched::MachineConfig{}, quiet(1, ""));
  runner::SweepEngine parallel(sched::MachineConfig{}, quiet(4, ""));
  const auto grid = bridge_grid();
  const auto rs = serial.run(grid);
  const auto rp = parallel.run(grid);
  ASSERT_EQ(rs.records.size(), grid.size());
  ASSERT_EQ(rp.records.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_record(rs.records[i], rp.records[i]);
  }
}

TEST(ClusterSweepTest, ClusterRunsRoundTripThroughCache) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "dimetrodon_cluster_cache_test";
  std::filesystem::remove_all(dir);
  runner::SweepEngine engine(sched::MachineConfig{}, quiet(2, dir.string()));
  const auto grid = bridge_grid();

  const auto cold = engine.run(grid);
  EXPECT_EQ(engine.last_metrics().executed, grid.size());
  const auto warm = engine.run(grid);
  EXPECT_EQ(engine.last_metrics().executed, 0u);
  EXPECT_EQ(engine.last_metrics().cache_hits, grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_record(cold.records[i], warm.records[i]);
    // RunResult.qos is populated for cluster runs, straight from the cache.
    EXPECT_GT(warm.records[i].result.qos->total, 0u);
    EXPECT_GT(warm.records[i].metric("fleet_peak_sensor_c"), 0.0);
  }
  std::filesystem::remove_all(dir);
}

TEST(ClusterSweepTest, CanonicalTagDistinguishesClusterParameters) {
  const auto base = bridge_spec(PolicyKind::kRoundRobin);
  auto policy = base;
  policy.policy = PolicyKind::kCoolestNode;
  auto load = base;
  load.cluster.offered_load_rps += 1.0;
  auto fans = base;
  fans.cluster.nodes[1].fan_speed_fraction = 0.79;
  auto inj = base;
  inj.cluster.nodes[2].injection_probability = 0.31;
  auto traffic = base;
  traffic.cluster.traffic =
      TrafficShape::diurnal(sim::from_sec(4), 0.5);
  auto rack = base;
  rack.cluster.rack.nodes_per_rack = 3;
  const std::string tag = canonical_cluster_tag(base);
  EXPECT_NE(tag, canonical_cluster_tag(policy));
  EXPECT_NE(tag, canonical_cluster_tag(load));
  EXPECT_NE(tag, canonical_cluster_tag(fans));
  EXPECT_NE(tag, canonical_cluster_tag(inj));
  EXPECT_NE(tag, canonical_cluster_tag(traffic));
  EXPECT_NE(tag, canonical_cluster_tag(rack));
}

// --- admin churn surface (scenario directives) ------------------------------

TEST(ClusterAdminTest, DrainUndrainMovesTrafficAndRestoresIt) {
  auto fleet = small_fleet(600.0).make_cluster();
  fleet->run(sim::from_sec(1));
  fleet->admin_drain(0);
  EXPECT_EQ(fleet->admin_state(0), Cluster::AdminState::kDrained);
  EXPECT_THROW(fleet->admin_drain(0), std::invalid_argument);  // not kActive
  const auto mid = fleet->run(sim::from_sec(2));
  const auto frozen = mid.nodes[0].routed;
  fleet->admin_undrain(0);
  const auto after = fleet->run(sim::from_sec(2));
  EXPECT_EQ(mid.nodes[0].routed, frozen);   // no traffic while drained
  EXPECT_GT(after.nodes[0].routed, frozen); // traffic resumes after undrain
  EXPECT_EQ(after.counters.requests_shed, 0u);
}

// Regression: a node PROCHOT-tripping while another node is under operator
// drain used to re-admit the drained node through the whole-fleet-tripped
// routing fallback. The admin drain must hold: the PROCHOT node (still
// administratively active) absorbs the traffic instead.
TEST(ClusterAdminTest, ProchotDuringAdminDrainNeverReadmitsTheDrainedNode) {
  sched::MachineConfig machine;
  machine.enable_meter = false;
  machine.prochot_c = 40.0;  // below loaded temps: the survivor trips
  machine.prochot_release_c = 39.5;
  auto fleet = FleetSpec::racks(1)
                   .nodes_per_rack(2)
                   .with_machine(machine)
                   .with_cooling(0.5, 0.5)
                   .with_load(800.0)
                   .make_cluster();
  fleet->run(sim::from_ms(500));
  fleet->admin_drain(0);
  const auto mid = fleet->run(sim::from_ms(100));
  const auto frozen = mid.nodes[0].routed;
  const auto r = fleet->run(sim::from_sec(5));
  // The surviving node tripped PROCHOT while node 0 sat in operator drain...
  EXPECT_GT(r.nodes[1].drains, 0u);
  // ...yet the drained node never saw another request, nothing was shed,
  // and the throttling active node kept serving.
  EXPECT_EQ(r.nodes[0].routed, frozen);
  EXPECT_EQ(r.counters.requests_shed, 0u);
  EXPECT_GT(r.nodes[1].routed, frozen);
}

TEST(ClusterAdminTest, DrainingTheWholeFleetShedsLoudly) {
  auto fleet = small_fleet(600.0).make_cluster();
  fleet->run(sim::from_ms(500));
  for (std::size_t i = 0; i < fleet->num_nodes(); ++i) fleet->admin_drain(i);
  const auto r = fleet->run(sim::from_sec(1));
  // No active node anywhere: arrivals are shed and counted, not lost.
  EXPECT_GT(r.counters.requests_shed, 0u);
  for (std::size_t i = 0; i < fleet->num_nodes(); ++i) {
    EXPECT_EQ(fleet->admin_state(i), Cluster::AdminState::kDrained);
  }
}

TEST(ClusterAdminTest, RemoveDetachesOnceQueueDrainsAndJoinReplaces) {
  auto fleet = small_fleet(600.0).make_cluster();
  fleet->run(sim::from_sec(1));
  fleet->admin_remove(1);
  fleet->run(sim::from_sec(1));
  EXPECT_EQ(fleet->admin_state(1), Cluster::AdminState::kDetached);
  const std::size_t id = fleet->admin_join({.fan_speed_fraction = 0.9},
                                           /*warmup=*/sim::from_ms(500));
  EXPECT_EQ(id, 3u);  // node ids are append-only
  const auto r = fleet->run(sim::from_sec(2));
  EXPECT_EQ(r.counters.node_joins, 1u);
  EXPECT_EQ(r.counters.node_removals, 1u);
  EXPECT_GT(r.nodes[3].routed, 0u);       // the joiner serves traffic
  // The detached machine stays frozen: no further work lands on it.
  EXPECT_EQ(fleet->admin_state(1), Cluster::AdminState::kDetached);
}

}  // namespace
}  // namespace dimetrodon::cluster
