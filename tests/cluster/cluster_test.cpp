#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/sweep.hpp"
#include "obs/trace_sink.hpp"
#include "runner/sweep_engine.hpp"

namespace dimetrodon::cluster {
namespace {

NodeView view(std::size_t id, double temp_c, std::size_t outstanding,
              double p = 0.0) {
  NodeView v;
  v.id = id;
  v.sensor_temp_c = temp_c;
  v.outstanding = outstanding;
  v.injection_probability = p;
  return v;
}

// --- policy unit tests ------------------------------------------------------

TEST(LoadBalancerTest, RoundRobinCycles) {
  auto lb = make_policy(PolicyKind::kRoundRobin);
  const std::vector<NodeView> views = {view(0, 40, 0), view(1, 40, 0),
                                       view(2, 40, 0)};
  EXPECT_EQ(lb->pick(views), 0u);
  EXPECT_EQ(lb->pick(views), 1u);
  EXPECT_EQ(lb->pick(views), 2u);
  EXPECT_EQ(lb->pick(views), 0u);  // wraps
}

TEST(LoadBalancerTest, RoundRobinSkipsDrainedWithoutResetting) {
  auto lb = make_policy(PolicyKind::kRoundRobin);
  const std::vector<NodeView> all = {view(0, 40, 0), view(1, 40, 0),
                                     view(2, 40, 0)};
  EXPECT_EQ(lb->pick(all), 0u);
  // Node 1 drained out of the routable set: the rotation continues past it.
  const std::vector<NodeView> without1 = {view(0, 40, 0), view(2, 40, 0)};
  EXPECT_EQ(lb->pick(without1), 2u);
  EXPECT_EQ(lb->pick(all), 0u);
}

TEST(LoadBalancerTest, LeastOutstandingPicksEmptiestQueue) {
  auto lb = make_policy(PolicyKind::kLeastOutstanding);
  EXPECT_EQ(lb->pick({view(0, 40, 5), view(1, 40, 2), view(2, 40, 9)}), 1u);
  // Ties break toward the cooler node, then the lower id.
  EXPECT_EQ(lb->pick({view(0, 44, 3), view(1, 41, 3), view(2, 44, 3)}), 1u);
  EXPECT_EQ(lb->pick({view(0, 40, 3), view(1, 40, 3)}), 0u);
}

TEST(LoadBalancerTest, CoolestNodeRoutesOnQuantizedTelemetry) {
  auto lb = make_policy(PolicyKind::kCoolestNode);
  EXPECT_EQ(lb->pick({view(0, 45, 0), view(1, 41, 7), view(2, 43, 0)}), 1u);
  // Equal quantized readings fall through to the queue-depth tie-break.
  EXPECT_EQ(lb->pick({view(0, 42, 6), view(1, 42, 1), view(2, 42, 6)}), 1u);
}

TEST(LoadBalancerTest, InjectionAwareDeprioritizesAboveThreshold) {
  auto lb = make_policy(PolicyKind::kInjectionAware, 0.25);
  // Idle fleet: the un-injected tier wins even when a taxed node is cooler.
  EXPECT_EQ(lb->pick({view(0, 45, 0, 0.0), view(1, 40, 0, 0.6)}), 0u);
  // Below-threshold injection is not deprioritized.
  EXPECT_EQ(lb->pick({view(0, 45, 0, 0.2), view(1, 40, 0, 0.1)}), 1u);
  // Under load the taxed node still takes its capacity-weighted share:
  // 8 outstanding at full capacity scores worse than 2 at (1 - 0.6).
  EXPECT_EQ(lb->pick({view(0, 40, 8, 0.0), view(1, 44, 2, 0.6)}), 1u);
  // All above threshold: degrade to capacity-weighted, never refuse.
  EXPECT_EQ(lb->pick({view(0, 40, 4, 0.5), view(1, 40, 1, 0.5)}), 1u);
}

TEST(LoadBalancerTest, PolicyNamesStable) {
  EXPECT_STREQ(policy_name(PolicyKind::kRoundRobin), "round-robin");
  EXPECT_STREQ(policy_name(PolicyKind::kLeastOutstanding),
               "least-outstanding");
  EXPECT_STREQ(policy_name(PolicyKind::kCoolestNode), "coolest-node");
  EXPECT_STREQ(policy_name(PolicyKind::kInjectionAware), "injection-aware");
  for (const auto kind :
       {PolicyKind::kRoundRobin, PolicyKind::kLeastOutstanding,
        PolicyKind::kCoolestNode, PolicyKind::kInjectionAware}) {
    EXPECT_STREQ(make_policy(kind)->name(), policy_name(kind));
  }
}

// --- cluster integration ----------------------------------------------------

ClusterConfig small_fleet(double load_rps = 400.0) {
  ClusterConfig cfg;
  cfg.machine.enable_meter = false;
  cfg.offered_load_rps = load_rps;
  cfg.nodes = {NodeSpec{1.0, 0.0, sim::from_ms(10)},
               NodeSpec{0.8, 0.0, sim::from_ms(10)},
               NodeSpec{0.6, 0.3, sim::from_ms(10)}};
  return cfg;
}

void expect_same_result(const ClusterResult& a, const ClusterResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.qos.total, b.qos.total);
  EXPECT_EQ(a.qos.mean_latency_s, b.qos.mean_latency_s);
  EXPECT_EQ(a.qos.p50_latency_s, b.qos.p50_latency_s);
  EXPECT_EQ(a.qos.p95_latency_s, b.qos.p95_latency_s);
  EXPECT_EQ(a.qos.p99_latency_s, b.qos.p99_latency_s);
  EXPECT_EQ(a.qos.max_latency_s, b.qos.max_latency_s);
  EXPECT_EQ(a.fleet_peak_sensor_c, b.fleet_peak_sensor_c);
  EXPECT_EQ(a.fleet_peak_exact_c, b.fleet_peak_exact_c);
  EXPECT_EQ(a.fleet_mean_sensor_c, b.fleet_mean_sensor_c);
  EXPECT_EQ(a.drains, b.drains);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].routed, b.nodes[i].routed);
    EXPECT_EQ(a.nodes[i].completed, b.nodes[i].completed);
    EXPECT_EQ(a.nodes[i].peak_sensor_c, b.nodes[i].peak_sensor_c);
  }
  EXPECT_TRUE(a.counters == b.counters);
}

TEST(ClusterTest, RunIsBitReproducible) {
  const auto run_once = [] {
    Cluster fleet(small_fleet(), make_policy(PolicyKind::kCoolestNode));
    return fleet.run(sim::from_sec(4));
  };
  expect_same_result(run_once(), run_once());
}

TEST(ClusterTest, SeedChangesTheRun) {
  ClusterConfig a = small_fleet();
  ClusterConfig b = small_fleet();
  b.seed = a.seed + 1;
  Cluster fa(a, make_policy(PolicyKind::kRoundRobin));
  Cluster fb(b, make_policy(PolicyKind::kRoundRobin));
  const auto ra = fa.run(sim::from_sec(4));
  const auto rb = fb.run(sim::from_sec(4));
  EXPECT_NE(ra.qos.mean_latency_s, rb.qos.mean_latency_s);
}

TEST(ClusterTest, NodesGetIndependentMachineSeeds) {
  Cluster fleet(small_fleet(), make_policy(PolicyKind::kRoundRobin));
  ASSERT_EQ(fleet.num_nodes(), 3u);
  EXPECT_NE(fleet.machine(0).config().seed, fleet.machine(1).config().seed);
  EXPECT_NE(fleet.machine(1).config().seed, fleet.machine(2).config().seed);
}

TEST(ClusterTest, RoundRobinSpreadsLoadEvenly) {
  Cluster fleet(small_fleet(), make_policy(PolicyKind::kRoundRobin));
  const auto r = fleet.run(sim::from_sec(4));
  ASSERT_EQ(r.nodes.size(), 3u);
  EXPECT_GT(r.offered, 1000u);
  std::uint64_t lo = r.nodes[0].routed, hi = r.nodes[0].routed;
  for (const auto& n : r.nodes) {
    lo = std::min(lo, n.routed);
    hi = std::max(hi, n.routed);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(ClusterTest, AllRoutedRequestsEventuallyComplete) {
  Cluster fleet(small_fleet(200.0), make_policy(PolicyKind::kLeastOutstanding));
  const auto r = fleet.run(sim::from_sec(4));
  // Light load: everything routed before the tail should finish; allow the
  // few requests still in flight at the horizon.
  EXPECT_GT(r.completed, 0u);
  EXPECT_GE(r.offered, r.completed);
  EXPECT_LE(r.offered - r.completed, 32u);
  EXPECT_EQ(r.qos.total, r.completed);
  EXPECT_EQ(r.counters.requests_routed, r.offered);
  // Percentiles populated and ordered.
  EXPECT_GT(r.qos.p50_latency_s, 0.0);
  EXPECT_LE(r.qos.p50_latency_s, r.qos.p95_latency_s);
  EXPECT_LE(r.qos.p95_latency_s, r.qos.p99_latency_s);
  EXPECT_LE(r.qos.p99_latency_s, r.qos.max_latency_s);
}

TEST(ClusterTest, InjectionAwareShiftsLoadOffInjectedNode) {
  ClusterConfig cfg = small_fleet(600.0);
  Cluster fleet(cfg, make_policy(PolicyKind::kInjectionAware, 0.25));
  const auto r = fleet.run(sim::from_sec(4));
  // Node 2 runs p=0.3 injection (> threshold): it must receive strictly
  // less traffic than each un-injected node.
  EXPECT_LT(r.nodes[2].routed, r.nodes[0].routed);
  EXPECT_LT(r.nodes[2].routed, r.nodes[1].routed);
  EXPECT_GT(r.nodes[2].routed, 0u);  // deprioritized, not starved
}

TEST(ClusterTest, ProchotFailoverDrainsTrippedNode) {
  ClusterConfig cfg;
  cfg.machine.enable_meter = false;
  // Thermal monitor tuned to trip just above the loaded temperature so the
  // badly cooled node PROCHOTs quickly under traffic.
  cfg.machine.prochot_c = 42.0;
  cfg.machine.prochot_release_c = 41.0;
  cfg.offered_load_rps = 1200.0;
  cfg.nodes = {NodeSpec{1.0, 0.0, sim::from_ms(10)},
               NodeSpec{0.4, 0.0, sim::from_ms(10)}};
  auto sink = std::make_shared<obs::RingBufferSink>();
  cfg.trace_sink_factory = [sink] { return sink; };

  Cluster fleet(cfg, make_policy(PolicyKind::kRoundRobin));
  const auto r = fleet.run(sim::from_sec(8));

  EXPECT_GE(r.drains, 1u);
  EXPECT_EQ(r.counters.node_drains, r.drains);
  EXPECT_GT(r.nodes[1].drains, 0u);
  // Failover: the drained node ends up with less traffic than round-robin's
  // even split.
  EXPECT_LT(r.nodes[1].routed, r.nodes[0].routed);

  // The cluster tracer recorded the drain transitions and every routing
  // decision.
  std::uint64_t drain_events = 0;
  std::uint64_t routed_events = 0;
  for (const auto& e : sink->snapshot()) {
    if (e.kind == obs::EventKind::kNodeDrain && e.arg == 1) ++drain_events;
    if (e.kind == obs::EventKind::kRequestRouted) ++routed_events;
  }
  EXPECT_EQ(drain_events, r.drains);
  EXPECT_EQ(sink->dropped(), 0u);  // well under default ring capacity
  EXPECT_EQ(routed_events, r.offered);
}

TEST(ClusterTest, WholeFleetDrainingStillRoutes) {
  ClusterConfig cfg;
  cfg.machine.enable_meter = false;
  cfg.machine.prochot_c = 40.0;  // below loaded temps: both nodes trip
  cfg.machine.prochot_release_c = 39.5;
  cfg.offered_load_rps = 800.0;
  cfg.nodes = {NodeSpec{0.5, 0.0, sim::from_ms(10)},
               NodeSpec{0.5, 0.0, sim::from_ms(10)}};
  Cluster fleet(cfg, make_policy(PolicyKind::kLeastOutstanding));
  const auto r = fleet.run(sim::from_sec(6));
  // Even with every node tripped, requests keep flowing (degraded service
  // beats dropped requests).
  EXPECT_EQ(r.counters.requests_routed, r.offered);
  EXPECT_GT(r.completed, 0u);
}

// --- sweep-engine bridge ----------------------------------------------------

ClusterRunSpec bridge_spec(PolicyKind policy) {
  ClusterRunSpec spec;
  spec.cluster = small_fleet();
  spec.policy = policy;
  spec.duration = sim::from_sec(3);
  return spec;
}

runner::SweepEngineConfig quiet(std::size_t threads, std::string cache_dir) {
  runner::SweepEngineConfig cfg;
  cfg.threads = threads;
  cfg.use_cache = !cache_dir.empty();
  cfg.cache_dir = std::move(cache_dir);
  cfg.progress = false;
  return cfg;
}

std::vector<runner::RunSpec> bridge_grid() {
  return {to_run_spec(bridge_spec(PolicyKind::kRoundRobin)),
          to_run_spec(bridge_spec(PolicyKind::kCoolestNode)),
          to_run_spec(bridge_spec(PolicyKind::kInjectionAware))};
}

void expect_same_record(const runner::RunRecord& a,
                        const runner::RunRecord& b) {
  EXPECT_EQ(a.result.label, b.result.label);
  EXPECT_EQ(a.result.throughput, b.result.throughput);
  EXPECT_EQ(a.result.sim_seconds, b.result.sim_seconds);
  ASSERT_TRUE(a.result.qos.has_value());
  ASSERT_TRUE(b.result.qos.has_value());
  EXPECT_EQ(a.result.qos->total, b.result.qos->total);
  EXPECT_EQ(a.result.qos->mean_latency_s, b.result.qos->mean_latency_s);
  EXPECT_EQ(a.result.qos->p50_latency_s, b.result.qos->p50_latency_s);
  EXPECT_EQ(a.result.qos->p95_latency_s, b.result.qos->p95_latency_s);
  EXPECT_EQ(a.result.qos->p99_latency_s, b.result.qos->p99_latency_s);
  EXPECT_TRUE(a.result.counters == b.result.counters);
  EXPECT_EQ(a.extra, b.extra);
}

TEST(ClusterSweepTest, ThreadCountDoesNotChangeResults) {
  // The cluster determinism invariant end-to-end: a sweep of cluster runs is
  // bit-identical on 1 and 4 threads.
  runner::SweepEngine serial(sched::MachineConfig{}, quiet(1, ""));
  runner::SweepEngine parallel(sched::MachineConfig{}, quiet(4, ""));
  const auto grid = bridge_grid();
  const auto rs = serial.run(grid);
  const auto rp = parallel.run(grid);
  ASSERT_EQ(rs.records.size(), grid.size());
  ASSERT_EQ(rp.records.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_record(rs.records[i], rp.records[i]);
  }
}

TEST(ClusterSweepTest, ClusterRunsRoundTripThroughCache) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "dimetrodon_cluster_cache_test";
  std::filesystem::remove_all(dir);
  runner::SweepEngine engine(sched::MachineConfig{}, quiet(2, dir.string()));
  const auto grid = bridge_grid();

  const auto cold = engine.run(grid);
  EXPECT_EQ(engine.last_metrics().executed, grid.size());
  const auto warm = engine.run(grid);
  EXPECT_EQ(engine.last_metrics().executed, 0u);
  EXPECT_EQ(engine.last_metrics().cache_hits, grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_record(cold.records[i], warm.records[i]);
    // RunResult.qos is populated for cluster runs, straight from the cache.
    EXPECT_GT(warm.records[i].result.qos->total, 0u);
    EXPECT_GT(warm.records[i].metric("fleet_peak_sensor_c"), 0.0);
  }
  std::filesystem::remove_all(dir);
}

TEST(ClusterSweepTest, CanonicalTagDistinguishesClusterParameters) {
  const auto base = bridge_spec(PolicyKind::kRoundRobin);
  auto policy = base;
  policy.policy = PolicyKind::kCoolestNode;
  auto load = base;
  load.cluster.offered_load_rps += 1.0;
  auto fans = base;
  fans.cluster.nodes[1].fan_speed_fraction = 0.79;
  auto inj = base;
  inj.cluster.nodes[2].injection_probability = 0.31;
  const std::string tag = canonical_cluster_tag(base);
  EXPECT_NE(tag, canonical_cluster_tag(policy));
  EXPECT_NE(tag, canonical_cluster_tag(load));
  EXPECT_NE(tag, canonical_cluster_tag(fans));
  EXPECT_NE(tag, canonical_cluster_tag(inj));
}

}  // namespace
}  // namespace dimetrodon::cluster
