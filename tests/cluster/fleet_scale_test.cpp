// Datacenter scale: the invariants that let the cluster layer hold 1000
// nodes — O(1) timeline, lazy machine advancement, O(racks) coordination —
// and the determinism contract that a fleet run is a pure function of its
// spec, bit-identical whatever the sweep engine's thread count.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "cluster/fleet_spec.hpp"
#include "runner/sweep_engine.hpp"

namespace dimetrodon::cluster {
namespace {

sched::MachineConfig lean_machine() {
  sched::MachineConfig m;
  m.enable_meter = false;
  return m;
}

// A 1000-node fleet kept deliberately short-lived: these tests pin structure
// and determinism, not steady-state thermals.
FleetSpec thousand_node_spec(PolicyKind policy) {
  return FleetSpec::racks(100)
      .nodes_per_rack(10)
      .with_machine(lean_machine())
      .with_cooling(1.0, 0.6)
      .with_injection_gradient(0.4)
      .with_crac(RackParams{})
      .with_load(2000.0)
      .with_traffic(TrafficShape::diurnal(sim::from_sec(2), 0.5))
      .with_telemetry(sim::from_ms(50))
      .with_policy(policy)
      .for_duration(sim::from_ms(250));
}

runner::SweepEngineConfig quiet(std::size_t threads) {
  runner::SweepEngineConfig cfg;
  cfg.threads = threads;
  cfg.use_cache = false;
  cfg.progress = false;
  return cfg;
}

void expect_same_record(const runner::RunRecord& a,
                        const runner::RunRecord& b) {
  EXPECT_EQ(a.result.label, b.result.label);
  EXPECT_EQ(a.result.throughput, b.result.throughput);
  ASSERT_TRUE(a.result.qos.has_value());
  ASSERT_TRUE(b.result.qos.has_value());
  EXPECT_EQ(a.result.qos->total, b.result.qos->total);
  EXPECT_EQ(a.result.qos->p99_latency_s, b.result.qos->p99_latency_s);
  EXPECT_TRUE(a.result.counters == b.result.counters);
  // extras carry every fleet metric; bitwise equality is the replay guard.
  EXPECT_EQ(a.extra, b.extra);
}

TEST(FleetScaleTest, ThousandNodesBitIdenticalAcrossSweepThreadCounts) {
  const std::vector<runner::RunSpec> grid = {
      thousand_node_spec(PolicyKind::kRoundRobin).run_spec(),
      thousand_node_spec(PolicyKind::kCoolestNode).run_spec(),
  };
  runner::SweepEngine serial(lean_machine(), quiet(1));
  runner::SweepEngine threaded(lean_machine(), quiet(4));
  const auto rs = serial.run(grid);
  const auto rt = threaded.run(grid);
  ASSERT_EQ(rs.records.size(), grid.size());
  ASSERT_EQ(rt.records.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(rs.records[i].ok());
    ASSERT_TRUE(rt.records[i].ok());
    expect_same_record(rs.records[i], rt.records[i]);
    EXPECT_EQ(rs.records[i].metric("nodes"), 1000.0);
    EXPECT_EQ(rs.records[i].metric("racks"), 100.0);
    EXPECT_GT(rs.records[i].metric("offered"), 0.0);
  }
}

TEST(FleetScaleTest, TimelineStaysConstantAndAdvancementIsLazy) {
  auto fleet = thousand_node_spec(PolicyKind::kRoundRobin).make_cluster();
  // The cluster's event horizon is two entries — next arrival, next sweep —
  // no matter how many machines sit behind it.
  EXPECT_EQ(fleet->timeline_entries(), 2u);
  EXPECT_EQ(fleet->num_nodes(), 1000u);
  EXPECT_EQ(fleet->num_racks(), 100u);

  const ClusterResult r = fleet->run(sim::from_ms(250));
  EXPECT_EQ(fleet->timeline_entries(), 2u);

  // Lazy advancement: each arrival advances exactly one machine; the full
  // fleet synchronizes only at telemetry sweeps (the ctor's sweep at t=0
  // happens before any machine needs advancing).
  const std::uint64_t sweeps = r.counters.fleet_samples;
  ASSERT_GE(sweeps, 2u);
  EXPECT_EQ(fleet->machine_advances(),
            r.offered + fleet->num_nodes() * (sweeps - 1));
  // A dense (advance-everyone-per-arrival) design would cost offered * N.
  EXPECT_LT(fleet->machine_advances(), r.offered * fleet->num_nodes() / 10);
}

TEST(FleetScaleTest, RackCoordinationStateIsORacksNotONodes) {
  auto fleet = thousand_node_spec(PolicyKind::kCoolestNode).make_cluster();
  // The only per-period coordination beyond the SoA snapshots is the rack
  // air network: one thermal node per rack (plus the fixed CRAC supply).
  EXPECT_EQ(fleet->num_racks(), 100u);
  EXPECT_LT(fleet->num_racks(), fleet->num_nodes());
  fleet->run(sim::from_ms(100));
  for (std::size_t r = 0; r < fleet->num_racks(); ++r) {
    EXPECT_GT(fleet->rack_inlet_c(r), 0.0);
  }
}

TEST(FleetScaleTest, HundredNodeDiurnalFleetExercisesTheWholeStack) {
  // The fig9 small cell in miniature: CRAC coupling, diurnal + flash
  // traffic, a governed rack group, thermal-aware routing. Two identical
  // runs must agree bit-for-bit.
  control::GovernorSpec governor;
  governor.kind = control::GovernorKind::kHysteresis;
  governor.hysteresis.trip_c = 45.0;
  governor.hysteresis.release_c = 43.0;
  governor.hysteresis.hot_probability = 0.4;

  const auto build = [&] {
    return FleetSpec::racks(10)
        .nodes_per_rack(10)
        .with_machine(lean_machine())
        .with_cooling(1.0, 0.55)
        .with_crac(RackParams{})
        .with_load(1500.0)
        .with_traffic(TrafficShape::diurnal(sim::from_sec(2), 0.6)
                          .with_flash(sim::from_ms(500), sim::from_ms(250),
                                      2.0))
        .with_telemetry(sim::from_ms(50))
        .with_policy(PolicyKind::kCoolestNode)
        .group(8, 2, {.governor = governor})
        .make_cluster();
  };

  auto a = build();
  auto b = build();
  const ClusterResult ra = a->run(sim::from_sec(2));
  const ClusterResult rb = b->run(sim::from_sec(2));

  EXPECT_GT(ra.offered, 0u);
  EXPECT_GT(ra.completed, 0u);
  EXPECT_EQ(ra.num_racks, 10u);
  EXPECT_GT(ra.fleet_peak_inlet_c, RackParams{}.crac_supply_c);
  EXPECT_GT(ra.counters.governor_samples, 0u);

  EXPECT_EQ(ra.offered, rb.offered);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.fleet_peak_sensor_c, rb.fleet_peak_sensor_c);
  EXPECT_EQ(ra.fleet_peak_exact_c, rb.fleet_peak_exact_c);
  EXPECT_EQ(ra.fleet_peak_inlet_c, rb.fleet_peak_inlet_c);
  EXPECT_EQ(ra.total_energy_j, rb.total_energy_j);
  EXPECT_EQ(ra.qos.p99_latency_s, rb.qos.p99_latency_s);
  EXPECT_TRUE(ra.counters == rb.counters);
}

}  // namespace
}  // namespace dimetrodon::cluster
