#include "cluster/request_source.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dimetrodon::cluster {
namespace {

std::vector<sim::SimTime> arrivals(std::uint64_t seed, std::uint64_t stream,
                                   double rate, int n) {
  RequestSource src(seed, stream, rate);
  std::vector<sim::SimTime> out;
  for (int i = 0; i < n; ++i) out.push_back(src.next());
  return out;
}

TEST(RequestSourceTest, SameSeedSameArrivalSequence) {
  // The determinism contract behind parallel sweeps: arrivals are a pure
  // function of (master seed, stream id), nothing else.
  EXPECT_EQ(arrivals(0x5eed, 0, 500.0, 1000),
            arrivals(0x5eed, 0, 500.0, 1000));
}

TEST(RequestSourceTest, DifferentSeedOrStreamDiffer) {
  const auto base = arrivals(0x5eed, 0, 500.0, 100);
  EXPECT_NE(base, arrivals(0x5eee, 0, 500.0, 100));
  EXPECT_NE(base, arrivals(0x5eed, 1, 500.0, 100));
}

TEST(RequestSourceTest, StrictlyMonotoneArrivals) {
  RequestSource src(123, 0, 1e6);  // extreme rate: sub-ns mean gaps
  sim::SimTime prev = 0;
  for (int i = 0; i < 10000; ++i) {
    const sim::SimTime t = src.next();
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_EQ(src.issued(), 10000u);
}

TEST(RequestSourceTest, MeanRateMatchesConfigured) {
  const double rate = 800.0;
  RequestSource src(42, 0, rate);
  sim::SimTime last = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) last = src.next();
  const double measured = n / sim::to_sec(last);
  EXPECT_NEAR(measured, rate, rate * 0.02);
}

TEST(RequestSourceTest, InterleavedDrawsDoNotPerturbOtherStreams) {
  // Stream independence: consuming stream 0 between draws of stream 1 must
  // not change stream 1's sequence (each source owns its generator).
  RequestSource a(7, 1, 300.0);
  std::vector<sim::SimTime> clean;
  for (int i = 0; i < 50; ++i) clean.push_back(a.next());

  RequestSource b(7, 1, 300.0);
  RequestSource noise(7, 0, 300.0);
  std::vector<sim::SimTime> interleaved;
  for (int i = 0; i < 50; ++i) {
    noise.next();
    interleaved.push_back(b.next());
    noise.next();
  }
  EXPECT_EQ(clean, interleaved);
}

TEST(RequestSourceTest, RejectsNonPositiveRate) {
  EXPECT_THROW(RequestSource(1, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(RequestSource(1, 0, -5.0), std::invalid_argument);
}

}  // namespace
}  // namespace dimetrodon::cluster
