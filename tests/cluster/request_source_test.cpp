#include "cluster/request_source.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace dimetrodon::cluster {
namespace {

std::vector<sim::SimTime> arrivals(std::uint64_t seed, std::uint64_t stream,
                                   double rate, int n) {
  RequestSource src(seed, stream, rate);
  std::vector<sim::SimTime> out;
  for (int i = 0; i < n; ++i) out.push_back(src.next());
  return out;
}

TEST(RequestSourceTest, SameSeedSameArrivalSequence) {
  // The determinism contract behind parallel sweeps: arrivals are a pure
  // function of (master seed, stream id), nothing else.
  EXPECT_EQ(arrivals(0x5eed, 0, 500.0, 1000),
            arrivals(0x5eed, 0, 500.0, 1000));
}

TEST(RequestSourceTest, DifferentSeedOrStreamDiffer) {
  const auto base = arrivals(0x5eed, 0, 500.0, 100);
  EXPECT_NE(base, arrivals(0x5eee, 0, 500.0, 100));
  EXPECT_NE(base, arrivals(0x5eed, 1, 500.0, 100));
}

TEST(RequestSourceTest, StrictlyMonotoneArrivals) {
  RequestSource src(123, 0, 1e6);  // extreme rate: sub-ns mean gaps
  sim::SimTime prev = 0;
  for (int i = 0; i < 10000; ++i) {
    const sim::SimTime t = src.next();
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_EQ(src.issued(), 10000u);
}

TEST(RequestSourceTest, MeanRateMatchesConfigured) {
  const double rate = 800.0;
  RequestSource src(42, 0, rate);
  sim::SimTime last = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) last = src.next();
  const double measured = n / sim::to_sec(last);
  EXPECT_NEAR(measured, rate, rate * 0.02);
}

TEST(RequestSourceTest, InterleavedDrawsDoNotPerturbOtherStreams) {
  // Stream independence: consuming stream 0 between draws of stream 1 must
  // not change stream 1's sequence (each source owns its generator).
  RequestSource a(7, 1, 300.0);
  std::vector<sim::SimTime> clean;
  for (int i = 0; i < 50; ++i) clean.push_back(a.next());

  RequestSource b(7, 1, 300.0);
  RequestSource noise(7, 0, 300.0);
  std::vector<sim::SimTime> interleaved;
  for (int i = 0; i < 50; ++i) {
    noise.next();
    interleaved.push_back(b.next());
    noise.next();
  }
  EXPECT_EQ(clean, interleaved);
}

TEST(RequestSourceTest, RejectsNonPositiveRate) {
  EXPECT_THROW(RequestSource(1, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(RequestSource(1, 0, -5.0), std::invalid_argument);
}

// --- traffic shapes ---------------------------------------------------------

TEST(TrafficShapeTest, SteadyShapeKeepsClassicSequenceBitIdentical) {
  // The compatibility contract: a default (constant) shape must reproduce
  // the pre-shape homogeneous draw sequence exactly — no thinning draws.
  RequestSource classic(0x5eed, 0, 500.0);
  RequestSource shaped(0x5eed, 0, 500.0, TrafficShape::steady());
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(classic.next(), shaped.next());
}

TEST(TrafficShapeTest, ModulationTracksDiurnalCurve) {
  const auto shape = TrafficShape::diurnal(sim::from_sec(8), 0.5);
  EXPECT_DOUBLE_EQ(shape.modulation(0), 1.0);
  EXPECT_NEAR(shape.modulation(sim::from_sec(2)), 1.5, 1e-9);  // midday peak
  EXPECT_NEAR(shape.modulation(sim::from_sec(6)), 0.5, 1e-9);  // night trough
  EXPECT_NEAR(shape.peak_factor(), 1.5, 1e-12);
  EXPECT_FALSE(shape.constant());
}

TEST(TrafficShapeTest, FlashCrowdMultipliesInsideWindowOnly) {
  TrafficShape shape;
  shape.with_flash(sim::from_sec(2), sim::from_sec(1), 3.0);
  EXPECT_DOUBLE_EQ(shape.modulation(sim::from_sec(1)), 1.0);
  EXPECT_DOUBLE_EQ(shape.modulation(sim::from_sec(2)), 3.0);
  EXPECT_DOUBLE_EQ(shape.modulation(sim::from_ms(2999)), 3.0);
  EXPECT_DOUBLE_EQ(shape.modulation(sim::from_sec(3)), 1.0);
  EXPECT_NEAR(shape.peak_factor(), 3.0, 1e-12);
}

TEST(TrafficShapeTest, DiurnalArrivalsFollowTheCurve) {
  // Count arrivals in the peak half-period vs the trough half-period: with
  // depth 0.6 the peak half must see substantially more traffic.
  const auto shape = TrafficShape::diurnal(sim::from_sec(8), 0.6);
  RequestSource src(42, 0, 1000.0, shape);
  std::uint64_t first_half = 0, second_half = 0;
  while (true) {
    const sim::SimTime t = src.next();
    if (t >= sim::from_sec(8)) break;
    (t < sim::from_sec(4) ? first_half : second_half)++;
  }
  EXPECT_GT(first_half, second_half * 2);
  // And the day's total still integrates to ~base * period (the sine
  // averages out over a full period).
  EXPECT_NEAR(static_cast<double>(first_half + second_half), 8000.0, 400.0);
}

TEST(TrafficShapeTest, FlashCrowdSpikesOfferedLoad) {
  TrafficShape shape;
  shape.with_flash(sim::from_sec(2), sim::from_sec(1), 4.0);
  RequestSource src(7, 0, 500.0, shape);
  std::uint64_t before = 0, during = 0;
  while (true) {
    const sim::SimTime t = src.next();
    if (t >= sim::from_sec(3)) break;
    (t < sim::from_sec(2) ? before : during)++;
  }
  // 2 s at 500 rps vs 1 s at 2000 rps.
  EXPECT_NEAR(static_cast<double>(before), 1000.0, 150.0);
  EXPECT_NEAR(static_cast<double>(during), 2000.0, 220.0);
}

TEST(TrafficShapeTest, ShapedArrivalsStayDeterministicAndMonotone) {
  const auto shape =
      TrafficShape::diurnal(sim::from_sec(4), 0.5)
          .with_flash(sim::from_sec(1), sim::from_ms(500), 2.5);
  RequestSource a(11, 3, 800.0, shape);
  RequestSource b(11, 3, 800.0, shape);
  sim::SimTime prev = 0;
  for (int i = 0; i < 5000; ++i) {
    const sim::SimTime t = a.next();
    EXPECT_EQ(t, b.next());
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(TrafficShapeTest, RejectsInvalidShapes) {
  TrafficShape deep;
  deep.diurnal_depth = 1.0;
  deep.diurnal_period = sim::from_sec(1);
  EXPECT_THROW(RequestSource(1, 0, 100.0, deep), std::invalid_argument);
  TrafficShape no_period;
  no_period.diurnal_depth = 0.5;
  EXPECT_THROW(RequestSource(1, 0, 100.0, no_period), std::invalid_argument);
  TrafficShape weak_flash;
  weak_flash.with_flash(0, sim::from_sec(1), 0.5);
  EXPECT_THROW(RequestSource(1, 0, 100.0, weak_flash), std::invalid_argument);
  TrafficShape no_duration;
  no_duration.with_flash(0, 0, 2.0);
  EXPECT_THROW(RequestSource(1, 0, 100.0, no_duration), std::invalid_argument);
}

TEST(TrafficShapeTest, DepthJustBelowOneStaysValidAndMonotone) {
  // The deepest legal diurnal swing: depth = 1 - 1 ulp. The trough rate is
  // epsilon-positive, so the thinning sampler's acceptance probability is
  // bounded away from zero and arrivals must stay finite, strictly
  // monotone, and deterministic — no livelock, no duplicate timestamps.
  const double depth = std::nextafter(1.0, 0.0);
  const auto shape = TrafficShape::diurnal(sim::from_sec(2), depth);
  EXPECT_NEAR(shape.peak_factor(), 2.0, 1e-12);
  RequestSource a(21, 0, 2000.0, shape);
  RequestSource b(21, 0, 2000.0, shape);
  sim::SimTime prev = 0;
  std::uint64_t peak_half = 0, trough_half = 0;
  while (true) {
    const sim::SimTime t = a.next();
    EXPECT_EQ(t, b.next());
    ASSERT_GT(t, prev);
    prev = t;
    if (t >= sim::from_sec(2)) break;
    (t < sim::from_sec(1) ? peak_half : trough_half)++;
  }
  // The halves integrate to base*(1 ± 2/pi): at depth ~1 the peak half
  // carries ~4.5x the trough half's traffic, and the period total still
  // matches base * period (the sine averages out).
  EXPECT_GT(peak_half, 4 * trough_half);
  EXPECT_NEAR(static_cast<double>(peak_half + trough_half), 4000.0, 300.0);
}

TEST(TrafficShapeTest, FlashWindowEndIsExclusive) {
  // The pulse covers [start, start + duration): the very last tick inside is
  // multiplied, the boundary tick itself is not. An inclusive end would
  // double-count one tick's worth of rate at every flash in a sweep.
  TrafficShape shape;
  shape.with_flash(sim::from_sec(2), sim::from_sec(1), 5.0);
  const sim::SimTime end = sim::from_sec(3);
  EXPECT_DOUBLE_EQ(shape.modulation(sim::from_sec(2)), 5.0);  // start inclusive
  EXPECT_DOUBLE_EQ(shape.modulation(end - 1), 5.0);  // last interior tick
  EXPECT_DOUBLE_EQ(shape.modulation(end), 1.0);      // boundary excluded
  EXPECT_DOUBLE_EQ(shape.modulation(end + 1), 1.0);
  // And the offered load right after the window is back at base rate.
  RequestSource src(13, 0, 1000.0, shape);
  std::uint64_t after = 0;
  while (true) {
    const sim::SimTime t = src.next();
    if (t >= sim::from_sec(4)) break;
    if (t >= end) after++;
  }
  EXPECT_NEAR(static_cast<double>(after), 1000.0, 160.0);
}

TEST(TrafficShapeTest, LargeDiurnalPhaseWrapsAroundThePeriod) {
  // A phase offset of whole periods is a no-op: modulation is periodic, so a
  // sweep that accumulates phase across many simulated days cannot drift.
  const auto period = sim::from_sec(8);
  const auto base = TrafficShape::diurnal(period, 0.5, sim::from_sec(3));
  auto wrapped = base;
  wrapped.diurnal_phase = sim::from_sec(3) + 1000 * period;
  for (const sim::SimTime t :
       {sim::SimTime{0}, sim::from_sec(1), sim::from_ms(4500),
        sim::from_sec(7)}) {
    EXPECT_NEAR(wrapped.modulation(t), base.modulation(t), 1e-9) << t;
  }
  // The wrapped shape still drives a valid, monotone arrival stream.
  RequestSource src(5, 0, 500.0, wrapped);
  sim::SimTime prev = 0;
  for (int i = 0; i < 2000; ++i) {
    const sim::SimTime t = src.next();
    ASSERT_GT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace dimetrodon::cluster
