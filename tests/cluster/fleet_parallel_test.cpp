// Parallel fleet advancement (DESIGN.md section 11): fanning per-machine
// advances across a pool is an execution detail, never a semantic one. These
// tests pin the contract — bit-identical results at every fleet_threads
// setting, a byte-equal cluster trace, no double-counted observability —
// on the full stack (CRAC coupling, diurnal + flash traffic, a governed
// group, thermal-aware routing).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <numeric>
#include <vector>

#include "cluster/fleet_spec.hpp"
#include "obs/trace_sink.hpp"

namespace dimetrodon::cluster {
namespace {

sched::MachineConfig lean_machine() {
  sched::MachineConfig m;
  m.enable_meter = false;
  return m;
}

/// The fig9 small cell in miniature: every cross-node coupling the cluster
/// layer has, so a determinism bug anywhere in the parallel phase shows up
/// as a diff here.
FleetSpec whole_stack_fleet() {
  control::GovernorSpec governor;
  governor.kind = control::GovernorKind::kHysteresis;
  governor.hysteresis.trip_c = 45.0;
  governor.hysteresis.release_c = 43.0;
  governor.hysteresis.hot_probability = 0.4;

  return FleetSpec::racks(10)
      .nodes_per_rack(10)
      .with_machine(lean_machine())
      .with_cooling(1.0, 0.55)
      .with_crac(RackParams{})
      .with_load(1500.0)
      .with_traffic(TrafficShape::diurnal(sim::from_sec(1), 0.6)
                        .with_flash(sim::from_ms(300), sim::from_ms(200), 2.0))
      .with_telemetry(sim::from_ms(50))
      .with_policy(PolicyKind::kCoolestNode)
      .group(8, 2, {.governor = governor});
}

void expect_bit_identical(const ClusterResult& a, const ClusterResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.qos.total, b.qos.total);
  EXPECT_EQ(a.qos.good, b.qos.good);
  EXPECT_EQ(a.qos.fail, b.qos.fail);
  EXPECT_EQ(a.qos.mean_latency_s, b.qos.mean_latency_s);
  EXPECT_EQ(a.qos.p99_latency_s, b.qos.p99_latency_s);
  EXPECT_EQ(a.qos.max_latency_s, b.qos.max_latency_s);
  EXPECT_EQ(a.fleet_peak_sensor_c, b.fleet_peak_sensor_c);
  EXPECT_EQ(a.fleet_peak_exact_c, b.fleet_peak_exact_c);
  EXPECT_EQ(a.fleet_mean_sensor_c, b.fleet_mean_sensor_c);
  EXPECT_EQ(a.fleet_peak_inlet_c, b.fleet_peak_inlet_c);
  EXPECT_EQ(a.drains, b.drains);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_TRUE(a.counters == b.counters);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].routed, b.nodes[i].routed) << "node " << i;
    EXPECT_EQ(a.nodes[i].completed, b.nodes[i].completed) << "node " << i;
    EXPECT_EQ(a.nodes[i].peak_sensor_c, b.nodes[i].peak_sensor_c)
        << "node " << i;
    EXPECT_EQ(a.nodes[i].mean_sensor_c, b.nodes[i].mean_sensor_c)
        << "node " << i;
    EXPECT_EQ(a.nodes[i].drains, b.nodes[i].drains) << "node " << i;
    EXPECT_EQ(a.nodes[i].governor_trips, b.nodes[i].governor_trips)
        << "node " << i;
  }
  EXPECT_EQ(a.stability.osc_amplitude_temp_c, b.stability.osc_amplitude_temp_c);
  EXPECT_EQ(a.stability.settling_time_s, b.stability.settling_time_s);
}

TEST(FleetParallelTest, BitIdenticalAcrossFleetThreadCounts) {
  auto serial = whole_stack_fleet().with_fleet_threads(1).make_cluster();
  ASSERT_EQ(serial->fleet_lanes(), 1u);
  const ClusterResult rs = serial->run(sim::from_sec(1));

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    auto parallel =
        whole_stack_fleet().with_fleet_threads(threads).make_cluster();
    EXPECT_EQ(parallel->fleet_lanes(), threads);
    const ClusterResult rp = parallel->run(sim::from_sec(1));
    expect_bit_identical(rs, rp);
    EXPECT_EQ(serial->machine_advances(), parallel->machine_advances());
  }
}

TEST(FleetParallelTest, ClusterTraceIsIdenticalSerialVsParallel) {
  // Event-for-event equality of the cluster-scope trace: the post-barrier
  // reduction must emit completions, drains and fleet samples in the exact
  // order the serial path does, not merely the same totals.
  const auto trace = [](std::size_t threads) {
    auto sink = std::make_shared<obs::RingBufferSink>();
    auto fleet = whole_stack_fleet()
                     .with_fleet_threads(threads)
                     .with_trace_sink([sink] { return sink; })
                     .make_cluster();
    fleet->run(sim::from_sec(1));
    EXPECT_EQ(sink->dropped(), 0u);
    return sink->snapshot();
  };

  const auto a = trace(1);
  const auto b = trace(8);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].core, b[i].core) << "event " << i;
    EXPECT_EQ(a[i].tid, b[i].tid) << "event " << i;
    EXPECT_EQ(a[i].arg, b[i].arg) << "event " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "event " << i;
  }
}

TEST(FleetParallelTest, CountersNeverDoubleCountUnderParallelAdvancement) {
  auto fleet = whole_stack_fleet().with_fleet_threads(8).make_cluster();
  const ClusterResult r = fleet->run(sim::from_sec(1));

  // Cluster-scope counters come from the cluster tracer alone; machine
  // counters are summed per node. A lane that fed either twice (or raced an
  // increment away) breaks these identities.
  EXPECT_EQ(r.counters.requests_routed, r.offered);
  EXPECT_EQ(r.qos.total, r.completed);
  const auto sum = [&](auto field) {
    return std::accumulate(r.nodes.begin(), r.nodes.end(), std::uint64_t{0},
                           [&](std::uint64_t acc, const NodeStats& n) {
                             return acc + field(n);
                           });
  };
  EXPECT_EQ(sum([](const NodeStats& n) { return n.routed; }), r.offered);
  EXPECT_EQ(sum([](const NodeStats& n) { return n.completed; }), r.completed);
  EXPECT_EQ(r.counters.node_drains, r.drains);

  // Lazy-advancement accounting is exact at any lane count: one advance per
  // backlogged arrival plus one per node per post-construction sweep.
  const std::uint64_t sweeps = r.counters.fleet_samples;
  ASSERT_GE(sweeps, 2u);
  EXPECT_EQ(fleet->machine_advances(),
            r.offered + fleet->num_nodes() * (sweeps - 1));
}

TEST(FleetParallelTest, EnvVariableAndConfigPrecedence) {
  ASSERT_EQ(setenv("DIMETRODON_FLEET_THREADS", "2", 1), 0);
  // Env applies when the config leaves the knob on auto...
  auto from_env = whole_stack_fleet().make_cluster();
  EXPECT_EQ(from_env->fleet_lanes(), 2u);
  // ...but an explicit config wins over the environment.
  auto explicit_serial = whole_stack_fleet().with_fleet_threads(1).make_cluster();
  EXPECT_EQ(explicit_serial->fleet_lanes(), 1u);
  ASSERT_EQ(unsetenv("DIMETRODON_FLEET_THREADS"), 0);

  // And the env-parallel run is still bit-identical to serial.
  const ClusterResult re = from_env->run(sim::from_ms(500));
  const ClusterResult rs =
      whole_stack_fleet().with_fleet_threads(1).make_cluster()->run(
          sim::from_ms(500));
  expect_bit_identical(rs, re);
}

TEST(FleetParallelTest, MachineScopeSinkForcesSerialPath) {
  // A machine.trace_sink_factory may hand every node one shared sink;
  // parallel advancement would race it, so the knob is overridden.
  sched::MachineConfig m = lean_machine();
  auto sink = std::make_shared<obs::RingBufferSink>(1024);
  m.trace_sink_factory = [sink] { return sink; };
  auto fleet = whole_stack_fleet()
                   .with_machine(m)
                   .with_fleet_threads(8)
                   .make_cluster();
  EXPECT_EQ(fleet->fleet_lanes(), 1u);
}

}  // namespace
}  // namespace dimetrodon::cluster
