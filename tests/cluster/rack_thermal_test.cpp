// Rack/CRAC thermal coupling: each rack's recirculated exhaust heats a
// shared air node that sets its member machines' inlet temperature. These
// tests pin the physics the datacenter experiments lean on — loaded racks
// run hot inlets, heat spills to adjacent racks only when coupled, and the
// whole layer is invisible when disabled.
#include <gtest/gtest.h>

#include "cluster/fleet_spec.hpp"

namespace dimetrodon::cluster {
namespace {

sched::MachineConfig quiet_machine() {
  sched::MachineConfig m;
  m.enable_meter = false;
  return m;
}

// Exaggerated rack constants so a few simulated seconds produce a clear
// signal: tau = 50 J/C * 0.1 C/W = 5 s, and ~100 W of recirculated exhaust
// buys a ~10 C inlet rise at equilibrium.
RackParams test_rack() {
  RackParams r;
  r.air_capacitance_j_per_c = 50.0;
  r.to_crac_resistance_c_per_w = 0.1;
  r.recirculation_fraction = 0.5;
  return r;
}

TEST(RackThermalTest, DisabledRackLayerLeavesInletsAlone) {
  auto fleet = FleetSpec::racks(1)
                   .nodes_per_rack(2)
                   .with_machine(quiet_machine())
                   .with_load(400.0)
                   .make_cluster();
  const ClusterResult r = fleet->run(sim::from_sec(2));
  EXPECT_EQ(fleet->num_racks(), 0u);
  EXPECT_EQ(r.num_racks, 0u);
  // Without the layer the "inlet" is just the floorplan ambient, constant.
  EXPECT_DOUBLE_EQ(r.fleet_peak_inlet_c, quiet_machine().floorplan.ambient_c);
}

TEST(RackThermalTest, LoadedRackRaisesItsMembersInlet) {
  auto fleet = FleetSpec::racks(1)
                   .nodes_per_rack(2)
                   .with_machine(quiet_machine())
                   .with_crac(test_rack())
                   .with_load(800.0)
                   .make_cluster();
  const ClusterResult r = fleet->run(sim::from_sec(6));

  ASSERT_EQ(fleet->num_racks(), 1u);
  const double supply = test_rack().crac_supply_c;
  EXPECT_GT(fleet->rack_inlet_c(0), supply + 0.5);
  EXPECT_GT(r.fleet_peak_inlet_c, supply + 0.5);
  EXPECT_GE(r.fleet_peak_inlet_c, fleet->rack_inlet_c(0));

  // The coupling is closed: the machines' fixed ambient nodes track the rack
  // air, so the fleet actually *feels* the hot aisle.
  for (std::size_t i = 0; i < fleet->num_nodes(); ++i) {
    sched::Machine& m = fleet->machine(i);
    EXPECT_DOUBLE_EQ(
        m.thermal_network().temperature(m.thermal_nodes().ambient),
        fleet->rack_inlet_c(0));
  }
}

TEST(RackThermalTest, BusierRackRunsTheHotterInlet) {
  // Same fleet, but rack 1's nodes run heavy idle injection: they dissipate
  // less, so their air node must settle cooler than rack 0's.
  auto fleet = FleetSpec::racks(2)
                   .nodes_per_rack(2)
                   .with_machine(quiet_machine())
                   .with_crac(test_rack())
                   .with_load(1200.0)
                   .group(1, 1, {.injection_probability = 0.8})
                   .make_cluster();
  fleet->run(sim::from_sec(6));
  EXPECT_GT(fleet->rack_inlet_c(0), fleet->rack_inlet_c(1));
  EXPECT_EQ(fleet->rack_of(0), 0u);
  EXPECT_EQ(fleet->rack_of(2), 1u);
}

TEST(RackThermalTest, AdjacentCouplingSpillsHeatToTheNeighbor) {
  // Rack 0 works, rack 1 idles (drained of dynamic power by injection).
  // Isolated racks keep the heat at home; chained racks share it, so the
  // idle rack's inlet rises and the busy rack's falls.
  const auto build = [](double adjacent_r) {
    RackParams rack = test_rack();
    rack.adjacent_resistance_c_per_w = adjacent_r;
    return FleetSpec::racks(2)
        .nodes_per_rack(2)
        .with_machine(quiet_machine())
        .with_crac(rack)
        .with_load(1200.0)
        .group(1, 1, {.injection_probability = 0.8})
        .make_cluster();
  };

  auto isolated = build(0.0);
  auto coupled = build(0.05);
  isolated->run(sim::from_sec(6));
  coupled->run(sim::from_sec(6));

  EXPECT_GT(coupled->rack_inlet_c(1), isolated->rack_inlet_c(1));
  EXPECT_LT(coupled->rack_inlet_c(0), isolated->rack_inlet_c(0));
}

TEST(RackThermalTest, RecirculationFractionScalesTheRise) {
  const auto rise_with = [](double recirc) {
    RackParams rack = test_rack();
    rack.recirculation_fraction = recirc;
    auto fleet = FleetSpec::racks(1)
                     .nodes_per_rack(2)
                     .with_machine(quiet_machine())
                     .with_crac(rack)
                     .with_load(800.0)
                     .make_cluster();
    fleet->run(sim::from_sec(6));
    return fleet->rack_inlet_c(0) - rack.crac_supply_c;
  };
  const double low = rise_with(0.1);
  const double high = rise_with(0.5);
  EXPECT_GT(low, 0.0);
  EXPECT_GT(high, 2.0 * low);
}

TEST(RackThermalTest, HotInletFeedsBackIntoDieTemperatures) {
  // The point of the layer: with recirculation the same fleet under the same
  // load ends hotter at the die than with a perfectly ducted (recirc = 0)
  // datacenter.
  const auto peak_with = [](double recirc) {
    RackParams rack = test_rack();
    rack.recirculation_fraction = recirc;
    auto fleet = FleetSpec::racks(1)
                     .nodes_per_rack(2)
                     .with_machine(quiet_machine())
                     .with_crac(rack)
                     .with_load(800.0)
                     .make_cluster();
    return fleet->run(sim::from_sec(6)).fleet_peak_exact_c;
  };
  EXPECT_GT(peak_with(0.5), peak_with(0.0));
}

TEST(RackThermalTest, ShortLastRackIsGroupedCorrectly) {
  // 5 nodes at 2 per rack: the last rack holds a single node.
  auto fleet = FleetSpec::racks(1)
                   .nodes_per_rack(5)
                   .with_machine(quiet_machine())
                   .make_cluster();
  EXPECT_EQ(fleet->num_racks(), 0u);  // no CRAC: pure id grouping off

  ClusterConfig cc = FleetSpec::racks(1)
                         .nodes_per_rack(5)
                         .with_machine(quiet_machine())
                         .config();
  cc.rack = test_rack();
  cc.rack.nodes_per_rack = 2;
  Cluster odd(std::move(cc), make_policy(PolicyKind::kRoundRobin));
  EXPECT_EQ(odd.num_racks(), 3u);
  EXPECT_EQ(odd.rack_of(3), 1u);
  EXPECT_EQ(odd.rack_of(4), 2u);
  odd.run(sim::from_ms(200));  // and it runs: the short rack is well-formed
}

}  // namespace
}  // namespace dimetrodon::cluster
