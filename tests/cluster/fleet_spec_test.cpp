#include "cluster/fleet_spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dimetrodon::cluster {
namespace {

// --- expansion goldens ------------------------------------------------------

TEST(FleetSpecTest, CoolingGradientInterpolatesBottomToTop) {
  const ClusterConfig cc = FleetSpec::racks(2)
                               .nodes_per_rack(4)
                               .with_cooling(1.0, 0.55)
                               .config();
  ASSERT_EQ(cc.nodes.size(), 8u);
  const double expected[] = {1.0, 0.85, 0.70, 0.55};
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t pos = 0; pos < 4; ++pos) {
      EXPECT_DOUBLE_EQ(cc.nodes[r * 4 + pos].fan_speed_fraction,
                       expected[pos])
          << "rack " << r << " pos " << pos;
    }
  }
}

TEST(FleetSpecTest, InjectionGradientIsPositionProportional) {
  const ClusterConfig cc = FleetSpec::racks(1)
                               .nodes_per_rack(4)
                               .with_injection_gradient(0.6)
                               .config();
  EXPECT_DOUBLE_EQ(cc.nodes[0].injection_probability, 0.0);
  EXPECT_DOUBLE_EQ(cc.nodes[1].injection_probability, 0.2);
  EXPECT_DOUBLE_EQ(cc.nodes[2].injection_probability, 0.4);
  EXPECT_DOUBLE_EQ(cc.nodes[3].injection_probability, 0.6);
}

TEST(FleetSpecTest, UniformInjectionAndQuantumApplyEverywhere) {
  const ClusterConfig cc = FleetSpec::racks(2)
                               .nodes_per_rack(2)
                               .with_injection(0.35, sim::from_ms(5))
                               .config();
  for (const NodeSpec& n : cc.nodes) {
    EXPECT_DOUBLE_EQ(n.injection_probability, 0.35);
    EXPECT_EQ(n.injection_quantum, sim::from_ms(5));
  }
}

TEST(FleetSpecTest, SingleNodeRackTakesBottomValues) {
  const ClusterConfig cc = FleetSpec::racks(1)
                               .nodes_per_rack(1)
                               .with_cooling(0.8, 0.4)
                               .with_injection_gradient(0.6)
                               .config();
  ASSERT_EQ(cc.nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(cc.nodes[0].fan_speed_fraction, 0.8);
  EXPECT_DOUBLE_EQ(cc.nodes[0].injection_probability, 0.0);
}

TEST(FleetSpecTest, GroupOverridePatchesRackRange) {
  control::GovernorSpec gov;
  gov.kind = control::GovernorKind::kPid;
  const ClusterConfig cc =
      FleetSpec::racks(4)
          .nodes_per_rack(2)
          .group(1, 2, {.injection_probability = 0.5, .governor = gov})
          .config();
  for (std::size_t i = 0; i < cc.nodes.size(); ++i) {
    const std::size_t rack = i / 2;
    const bool in_group = rack == 1 || rack == 2;
    EXPECT_DOUBLE_EQ(cc.nodes[i].injection_probability, in_group ? 0.5 : 0.0);
    EXPECT_EQ(cc.nodes[i].governor.enabled(), in_group);
  }
}

TEST(FleetSpecTest, PositionOverrideWinsOverGroupOverride) {
  const ClusterConfig cc =
      FleetSpec::racks(2)
          .nodes_per_rack(3)
          .group(0, 2, {.injection_probability = 0.2})
          .override_position(2, {.injection_probability = 0.9})
          .config();
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(cc.nodes[r * 3 + 0].injection_probability, 0.2);
    EXPECT_DOUBLE_EQ(cc.nodes[r * 3 + 1].injection_probability, 0.2);
    EXPECT_DOUBLE_EQ(cc.nodes[r * 3 + 2].injection_probability, 0.9);
  }
}

TEST(FleetSpecTest, LaterOverrideOfSameScopeWins) {
  const ClusterConfig cc =
      FleetSpec::racks(1)
          .nodes_per_rack(2)
          .override_position(1, {.fan_speed_fraction = 0.3})
          .override_position(1, {.fan_speed_fraction = 0.7})
          .config();
  EXPECT_DOUBLE_EQ(cc.nodes[1].fan_speed_fraction, 0.7);
}

TEST(FleetSpecTest, CracAdoptsTheSpecShape) {
  RackParams rack;
  rack.nodes_per_rack = 99;  // ignored: the spec's shape wins
  rack.crac_supply_c = 22.0;
  const ClusterConfig cc =
      FleetSpec::racks(3).nodes_per_rack(5).with_crac(rack).config();
  EXPECT_EQ(cc.rack.nodes_per_rack, 5u);
  EXPECT_DOUBLE_EQ(cc.rack.crac_supply_c, 22.0);
  EXPECT_TRUE(cc.rack.enabled());
  EXPECT_FALSE(FleetSpec::racks(1).nodes_per_rack(2).config().rack.enabled());
}

TEST(FleetSpecTest, SeedDefaultsToMachineSeedUnlessOverridden) {
  sched::MachineConfig machine;
  machine.seed = 0xabcd;
  EXPECT_EQ(FleetSpec::racks(1).nodes_per_rack(1).with_machine(machine)
                .config().seed,
            0xabcdu);
  EXPECT_EQ(FleetSpec::racks(1).nodes_per_rack(1).with_machine(machine)
                .with_seed(7).config().seed,
            7u);
}

TEST(FleetSpecTest, BuildCarriesPolicyAndDuration) {
  const ClusterRunSpec spec = FleetSpec::racks(1)
                                  .nodes_per_rack(2)
                                  .with_policy(PolicyKind::kCoolestNode, 0.4)
                                  .for_duration(sim::from_sec(7))
                                  .build();
  EXPECT_EQ(spec.policy, PolicyKind::kCoolestNode);
  EXPECT_DOUBLE_EQ(spec.injection_threshold, 0.4);
  EXPECT_EQ(spec.duration, sim::from_sec(7));
  EXPECT_EQ(spec.cluster.nodes.size(), 2u);
}

TEST(FleetSpecTest, ValidatesShapeAndGradients) {
  EXPECT_THROW(FleetSpec::racks(0).nodes_per_rack(1).config(),
               std::invalid_argument);
  EXPECT_THROW(FleetSpec::racks(1).nodes_per_rack(0).config(),
               std::invalid_argument);
  EXPECT_THROW(
      FleetSpec::racks(1).nodes_per_rack(2).with_cooling(0.0, 1.0).config(),
      std::invalid_argument);
  EXPECT_THROW(
      FleetSpec::racks(1).nodes_per_rack(2).with_injection(1.5).config(),
      std::invalid_argument);
  EXPECT_THROW(FleetSpec::racks(2)
                   .nodes_per_rack(1)
                   .group(1, 2, {.injection_probability = 0.1})
                   .config(),
               std::invalid_argument);
  EXPECT_THROW(FleetSpec::racks(1)
                   .nodes_per_rack(2)
                   .override_position(2, {.injection_probability = 0.1})
                   .config(),
               std::invalid_argument);
}

TEST(FleetSpecTest, MakeClusterWiresPolicyAndFleet) {
  sched::MachineConfig machine;
  machine.enable_meter = false;
  auto fleet = FleetSpec::racks(2)
                   .nodes_per_rack(2)
                   .with_machine(machine)
                   .with_crac(RackParams{})
                   .with_policy(PolicyKind::kCoolestNode)
                   .make_cluster();
  EXPECT_EQ(fleet->num_nodes(), 4u);
  EXPECT_EQ(fleet->num_racks(), 2u);
  EXPECT_EQ(fleet->rack_of(0), 0u);
  EXPECT_EQ(fleet->rack_of(3), 1u);
  const auto r = fleet->run(sim::from_ms(200));
  EXPECT_EQ(r.policy, "coolest-node");
  EXPECT_EQ(r.num_racks, 2u);
}

}  // namespace
}  // namespace dimetrodon::cluster
