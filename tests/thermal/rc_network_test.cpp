#include "thermal/rc_network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace dimetrodon::thermal {
namespace {

// Single RC node against ambient: T(t) = T_inf + (T0 - T_inf) e^{-t/RC}.
struct SingleRc {
  RcNetwork net;
  NodeId node;
  NodeId amb;
  double r = 2.0;
  double c = 5.0;

  SingleRc() {
    amb = net.add_fixed_node("amb", 25.0);
    node = net.add_node("n", c, 25.0);
    net.connect_r(node, amb, r);
  }
};

TEST(RcNetworkTest, SteadyStateMatchesOhmsLaw) {
  SingleRc s;
  s.net.set_power(s.node, 10.0);
  s.net.solve_steady_state();
  EXPECT_NEAR(s.net.temperature(s.node), 25.0 + 10.0 * 2.0, 1e-9);
}

TEST(RcNetworkTest, StepConvergesToSteadyState) {
  SingleRc s;
  s.net.set_power(s.node, 10.0);
  for (int i = 0; i < 20000; ++i) s.net.step(0.01);  // 200 s >> RC=10 s
  EXPECT_NEAR(s.net.temperature(s.node), 45.0, 1e-3);
}

TEST(RcNetworkTest, TransientMatchesAnalyticExponential) {
  SingleRc s;
  s.net.set_power(s.node, 10.0);
  const double tau = s.r * s.c;  // 10 s
  const double dt = 0.001;
  double t = 0.0;
  for (int i = 0; i < 10000; ++i) {  // 10 s = 1 tau
    s.net.step(dt);
    t += dt;
  }
  const double analytic = 45.0 - 20.0 * std::exp(-t / tau);
  // Implicit Euler at dt = tau/10000: sub-0.1% error.
  EXPECT_NEAR(s.net.temperature(s.node), analytic, 0.02);
}

TEST(RcNetworkTest, CoolingFollowsExponentialDecay) {
  SingleRc s;
  s.net.set_temperature(s.node, 65.0);
  s.net.set_power(s.node, 0.0);
  const double dt = 0.001;
  for (int i = 0; i < 5000; ++i) s.net.step(dt);  // 5 s = tau/2
  const double analytic = 25.0 + 40.0 * std::exp(-5.0 / 10.0);
  EXPECT_NEAR(s.net.temperature(s.node), analytic, 0.05);
}

TEST(RcNetworkTest, ImplicitEulerStableAtHugeTimestep) {
  SingleRc s;
  s.net.set_power(s.node, 10.0);
  // dt = 100*tau: explicit integration would explode; implicit must not.
  s.net.step(1000.0);
  EXPECT_GT(s.net.temperature(s.node), 25.0);
  EXPECT_LT(s.net.temperature(s.node), 45.0 + 1e-9);
  s.net.step(1000.0);
  EXPECT_NEAR(s.net.temperature(s.node), 45.0, 0.5);
}

TEST(RcNetworkTest, FixedNodeNeverChanges) {
  SingleRc s;
  s.net.set_power(s.node, 50.0);
  for (int i = 0; i < 100; ++i) s.net.step(0.1);
  EXPECT_DOUBLE_EQ(s.net.temperature(s.amb), 25.0);
}

TEST(RcNetworkTest, TwoNodeChainSteadyState) {
  RcNetwork net;
  const NodeId amb = net.add_fixed_node("amb", 20.0);
  const NodeId hs = net.add_node("hs", 100.0, 20.0);
  const NodeId die = net.add_node("die", 0.01, 20.0);
  net.connect_r(hs, amb, 0.5);
  net.connect_r(die, hs, 1.5);
  net.set_power(die, 10.0);
  net.set_power(hs, 2.0);
  net.solve_steady_state();
  // All 12 W flow hs->amb: hs = 20 + 12*0.5 = 26; die = 26 + 10*1.5 = 41.
  EXPECT_NEAR(net.temperature(hs), 26.0, 1e-9);
  EXPECT_NEAR(net.temperature(die), 41.0, 1e-9);
}

TEST(RcNetworkTest, HeatFlowsFromHotToCold) {
  RcNetwork net;
  const NodeId a = net.add_node("a", 1.0, 80.0);
  const NodeId b = net.add_node("b", 1.0, 20.0);
  net.connect(a, b, 0.5);
  net.step(0.1);
  EXPECT_LT(net.temperature(a), 80.0);
  EXPECT_GT(net.temperature(b), 20.0);
  // Isolated pair conserves energy: temperatures converge to the mean.
  for (int i = 0; i < 1000; ++i) net.step(0.1);
  EXPECT_NEAR(net.temperature(a), 50.0, 1e-6);
  EXPECT_NEAR(net.temperature(b), 50.0, 1e-6);
}

TEST(RcNetworkTest, EnergyConservationIsolatedPair) {
  RcNetwork net;
  const NodeId a = net.add_node("a", 2.0, 70.0);
  const NodeId b = net.add_node("b", 3.0, 30.0);
  net.connect(a, b, 0.7);
  const double initial = 2.0 * 70.0 + 3.0 * 30.0;
  for (int i = 0; i < 500; ++i) net.step(0.05);
  const double final_energy =
      2.0 * net.temperature(a) + 3.0 * net.temperature(b);
  EXPECT_NEAR(final_energy, initial, 1e-6);
}

TEST(RcNetworkTest, SetAllTemperaturesSkipsFixedNodes) {
  SingleRc s;
  s.net.set_all_temperatures(55.0);
  EXPECT_DOUBLE_EQ(s.net.temperature(s.node), 55.0);
  EXPECT_DOUBLE_EQ(s.net.temperature(s.amb), 25.0);
}

TEST(RcNetworkTest, TotalPowerSumsInjections) {
  SingleRc s;
  s.net.set_power(s.node, 7.5);
  EXPECT_DOUBLE_EQ(s.net.total_power(), 7.5);
}

TEST(RcNetworkTest, RejectsNonPositiveCapacitance) {
  RcNetwork net;
  EXPECT_THROW(net.add_node("bad", 0.0, 25.0), std::invalid_argument);
  EXPECT_THROW(net.add_node("bad", -1.0, 25.0), std::invalid_argument);
}

TEST(RcNetworkTest, RejectsNonPositiveConductance) {
  RcNetwork net;
  const NodeId a = net.add_node("a", 1.0, 25.0);
  const NodeId b = net.add_node("b", 1.0, 25.0);
  EXPECT_THROW(net.connect(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW(net.connect(a, b, -2.0), std::invalid_argument);
}

TEST(RcNetworkTest, SteadyStateRequiresPathToFixedNode) {
  RcNetwork net;
  net.add_node("floating", 1.0, 25.0);
  net.set_power(0, 1.0);
  EXPECT_THROW(net.solve_steady_state(), std::runtime_error);
}

TEST(RcNetworkTest, TopologyChangeInvalidatesStepCache) {
  RcNetwork net;
  const NodeId amb = net.add_fixed_node("amb", 25.0);
  const NodeId a = net.add_node("a", 1.0, 25.0);
  net.connect_r(a, amb, 1.0);
  net.set_power(a, 10.0);
  net.step(0.1);
  // Add a second path to ambient; the step matrix must be rebuilt.
  net.connect_r(a, amb, 1.0);
  for (int i = 0; i < 200; ++i) net.step(0.1);
  EXPECT_NEAR(net.temperature(a), 25.0 + 10.0 * 0.5, 1e-3);
}

// Property sweep: steady state is linear in injected power.
class RcLinearity : public ::testing::TestWithParam<double> {};

TEST_P(RcLinearity, SteadyStateScalesWithPower) {
  const double p = GetParam();
  SingleRc s;
  s.net.set_power(s.node, p);
  s.net.solve_steady_state();
  EXPECT_NEAR(s.net.temperature(s.node) - 25.0, p * s.r, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Powers, RcLinearity,
                         ::testing::Values(0.0, 1.0, 5.0, 20.0, 100.0));

TEST(RcNetworkTest, SetConductanceReweightsTheExistingEdge) {
  SingleRc s;
  s.net.set_power(s.node, 10.0);
  s.net.set_conductance(s.node, s.amb, 1.0);  // r: 2.0 -> 1.0
  s.net.solve_steady_state();
  EXPECT_NEAR(s.net.temperature(s.node), 25.0 + 10.0 * 1.0, 1e-9);
  // Either endpoint order addresses the same edge.
  s.net.set_conductance(s.amb, s.node, 0.25);  // r -> 4.0
  s.net.solve_steady_state();
  EXPECT_NEAR(s.net.temperature(s.node), 25.0 + 10.0 * 4.0, 1e-9);
}

TEST(RcNetworkTest, SetConductanceRejectsMissingEdgesAndBadValues) {
  SingleRc s;
  const NodeId other = s.net.add_node("other", 1.0, 25.0);
  s.net.connect(other, s.amb, 1.0);
  // other<->amb and node<->amb exist, but node<->other does not.
  EXPECT_THROW(s.net.set_conductance(s.node, other, 1.0),
               std::invalid_argument);
  EXPECT_THROW(s.net.set_conductance(s.node, s.amb, 0.0),
               std::invalid_argument);
  EXPECT_THROW(s.net.set_conductance(s.node, s.amb, -1.0),
               std::invalid_argument);
  // The failed calls left the original edge untouched.
  s.net.set_power(s.node, 10.0);
  s.net.solve_steady_state();
  EXPECT_NEAR(s.net.temperature(s.node), 45.0, 1e-9);
}

// set_conductance exists because connect() is append-only: a second
// connect between the same endpoints adds a PARALLEL edge whose
// conductances sum, which is the wrong tool for modelling a fan change.
TEST(RcNetworkTest, RepeatedConnectAddsParallelPathsInstead) {
  SingleRc parallel;
  parallel.net.connect(parallel.node, parallel.amb, 0.5);  // now g = 1.0
  parallel.net.set_power(parallel.node, 10.0);
  parallel.net.solve_steady_state();
  EXPECT_NEAR(parallel.net.temperature(parallel.node), 35.0, 1e-9);

  SingleRc reweighted;
  reweighted.net.set_conductance(reweighted.node, reweighted.amb, 0.5);
  reweighted.net.set_power(reweighted.node, 10.0);
  reweighted.net.solve_steady_state();
  EXPECT_NEAR(reweighted.net.temperature(reweighted.node), 45.0, 1e-9);
}

}  // namespace
}  // namespace dimetrodon::thermal
