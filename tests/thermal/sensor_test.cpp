#include "thermal/sensor.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::thermal {
namespace {

struct SensorFixture : public ::testing::Test {
  RcNetwork net;
  NodeId node = 0;

  void SetUp() override { node = net.add_node("die", 1.0, 25.0); }
};

TEST_F(SensorFixture, QuantizesDownward) {
  CoreTempSensor sensor(net, node, 1.0);
  net.set_temperature(node, 57.9);
  EXPECT_DOUBLE_EQ(sensor.read(), 57.0);
  net.set_temperature(node, 57.0);
  EXPECT_DOUBLE_EQ(sensor.read(), 57.0);
}

TEST_F(SensorFixture, ExactReadBypassesQuantization) {
  CoreTempSensor sensor(net, node, 1.0);
  net.set_temperature(node, 57.9);
  EXPECT_DOUBLE_EQ(sensor.read_exact(), 57.9);
}

TEST_F(SensorFixture, SubDegreeChangesInvisible) {
  // The paper's smallest reported temperature reductions sit below the
  // coretemp resolution — this is the mechanism.
  CoreTempSensor sensor(net, node, 1.0);
  net.set_temperature(node, 60.2);
  const double before = sensor.read();
  net.set_temperature(node, 60.9);
  EXPECT_DOUBLE_EQ(sensor.read(), before);
}

TEST_F(SensorFixture, CustomQuantization) {
  CoreTempSensor sensor(net, node, 0.5);
  net.set_temperature(node, 57.76);
  EXPECT_DOUBLE_EQ(sensor.read(), 57.5);
}

TEST_F(SensorFixture, ZeroQuantizationMeansContinuous) {
  CoreTempSensor sensor(net, node, 0.0);
  net.set_temperature(node, 57.76);
  EXPECT_DOUBLE_EQ(sensor.read(), 57.76);
}

TEST_F(SensorFixture, TracksNodeDynamically) {
  const NodeId amb = net.add_fixed_node("amb", 25.0);
  net.connect_r(node, amb, 1.0);
  CoreTempSensor sensor(net, node);
  net.set_power(node, 30.0);
  net.solve_steady_state();
  EXPECT_DOUBLE_EQ(sensor.read(), 55.0);
}

}  // namespace
}  // namespace dimetrodon::thermal
