#include "thermal/floorplan.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::thermal {
namespace {

TEST(FloorplanTest, BuildsExpectedNodeCount) {
  RcNetwork net;
  FloorplanParams params;
  params.num_cores = 4;
  const FloorplanNodes nodes = build_server_floorplan(net, params);
  // ambient + heatsink + package + 4 dies
  EXPECT_EQ(net.node_count(), 7u);
  EXPECT_TRUE(net.is_fixed(nodes.ambient));
  EXPECT_FALSE(net.is_fixed(nodes.heatsink));
  EXPECT_FALSE(net.is_fixed(nodes.package));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FALSE(net.is_fixed(nodes.die[i]));
}

TEST(FloorplanTest, AllNodesStartAtAmbient) {
  RcNetwork net;
  FloorplanParams params;
  const FloorplanNodes nodes = build_server_floorplan(net, params);
  EXPECT_DOUBLE_EQ(net.temperature(nodes.heatsink), params.ambient_c);
  EXPECT_DOUBLE_EQ(net.temperature(nodes.die[0]), params.ambient_c);
}

TEST(FloorplanTest, SteadyStateStackOrdering) {
  RcNetwork net;
  FloorplanParams params;
  const FloorplanNodes nodes = build_server_floorplan(net, params);
  for (std::size_t i = 0; i < params.num_cores; ++i) {
    net.set_power(nodes.die[i], 10.0);
  }
  net.set_power(nodes.package, 18.0);
  net.solve_steady_state();
  // Heat flows die -> package -> heatsink -> ambient: monotone temperatures.
  EXPECT_GT(net.temperature(nodes.die[0]), net.temperature(nodes.package));
  EXPECT_GT(net.temperature(nodes.package), net.temperature(nodes.heatsink));
  EXPECT_GT(net.temperature(nodes.heatsink), params.ambient_c);
}

TEST(FloorplanTest, SymmetricLoadGivesSymmetricDies) {
  RcNetwork net;
  FloorplanParams params;
  const FloorplanNodes nodes = build_server_floorplan(net, params);
  for (std::size_t i = 0; i < params.num_cores; ++i) {
    net.set_power(nodes.die[i], 12.0);
  }
  net.solve_steady_state();
  // Outer and inner cores differ only through the weak lateral path.
  EXPECT_NEAR(net.temperature(nodes.die[0]), net.temperature(nodes.die[3]),
              1e-9);
  EXPECT_NEAR(net.temperature(nodes.die[1]), net.temperature(nodes.die[2]),
              1e-9);
}

TEST(FloorplanTest, HotCoreWarmsNeighborThroughLateralCoupling) {
  RcNetwork net;
  FloorplanParams params;
  const FloorplanNodes nodes = build_server_floorplan(net, params);
  net.set_power(nodes.die[0], 15.0);
  net.solve_steady_state();
  // die1 (adjacent) must be warmer than die3 (two hops away).
  EXPECT_GT(net.temperature(nodes.die[1]), net.temperature(nodes.die[3]));
}

TEST(FloorplanTest, LowerFanSpeedRunsHotter) {
  auto steady_die_temp = [](double fan) {
    RcNetwork net;
    FloorplanParams params;
    params.fan_speed_fraction = fan;
    const FloorplanNodes nodes = build_server_floorplan(net, params);
    for (std::size_t i = 0; i < params.num_cores; ++i) {
      net.set_power(nodes.die[i], 10.0);
    }
    net.solve_steady_state();
    return net.temperature(nodes.die[0]);
  };
  EXPECT_GT(steady_die_temp(0.5), steady_die_temp(1.0));
}

TEST(FloorplanTest, RejectsInvalidCoreCount) {
  RcNetwork net;
  FloorplanParams params;
  params.num_cores = 0;
  EXPECT_THROW(build_server_floorplan(net, params), std::invalid_argument);
  params.num_cores = 9;
  EXPECT_THROW(build_server_floorplan(net, params), std::invalid_argument);
}

TEST(FloorplanTest, RejectsInvalidFanSpeed) {
  RcNetwork net;
  FloorplanParams params;
  params.fan_speed_fraction = 0.0;
  EXPECT_THROW(build_server_floorplan(net, params), std::invalid_argument);
  params.fan_speed_fraction = 1.5;
  EXPECT_THROW(build_server_floorplan(net, params), std::invalid_argument);
}

TEST(FloorplanTest, DieTimeConstantIsMilliseconds) {
  const FloorplanParams params;
  const double tau = params.die_capacitance * params.die_to_pkg_resistance;
  EXPECT_GT(tau, 0.001);
  EXPECT_LT(tau, 0.1);
}

TEST(FloorplanTest, HeatsinkTimeConstantIsTensOfSeconds) {
  // The paper observed stabilization "after approximately 300 seconds".
  const FloorplanParams params;
  const double tau = params.hs_capacitance * params.hs_to_ambient_resistance;
  EXPECT_GT(tau, 20.0);
  EXPECT_LT(tau, 120.0);
}

}  // namespace
}  // namespace dimetrodon::thermal
