#include "thermal/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dimetrodon::thermal {
namespace {

TEST(LinalgTest, SolvesIdentity) {
  DenseMatrix m(3);
  for (std::size_t i = 0; i < 3; ++i) m.at(i, i) = 1.0;
  LuFactorization lu;
  ASSERT_TRUE(lu.factor(m));
  std::vector<double> b{1.0, 2.0, 3.0};
  lu.solve(b);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 3.0);
}

TEST(LinalgTest, SolvesKnown2x2) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  DenseMatrix m(2);
  m.at(0, 0) = 2;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 3;
  LuFactorization lu;
  ASSERT_TRUE(lu.factor(m));
  std::vector<double> b{5.0, 10.0};
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LinalgTest, PivotingHandlesZeroDiagonal) {
  // [0 1; 1 0] requires a row swap.
  DenseMatrix m(2);
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  LuFactorization lu;
  ASSERT_TRUE(lu.factor(m));
  std::vector<double> b{7.0, 9.0};
  lu.solve(b);
  EXPECT_NEAR(b[0], 9.0, 1e-12);
  EXPECT_NEAR(b[1], 7.0, 1e-12);
}

TEST(LinalgTest, DetectsSingularMatrix) {
  DenseMatrix m(2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 2;
  m.at(1, 1) = 4;  // rank 1
  LuFactorization lu;
  EXPECT_FALSE(lu.factor(m));
  EXPECT_FALSE(lu.valid());
}

TEST(LinalgTest, SolveManyRhsReusesFactorization) {
  DenseMatrix m(2);
  m.at(0, 0) = 4;
  m.at(0, 1) = 1;
  m.at(1, 0) = 1;
  m.at(1, 1) = 3;
  LuFactorization lu;
  ASSERT_TRUE(lu.factor(m));
  for (double k = 1.0; k < 5.0; k += 1.0) {
    std::vector<double> b{5.0 * k, 4.0 * k};
    lu.solve(b);
    EXPECT_NEAR(4 * b[0] + b[1], 5.0 * k, 1e-10);
    EXPECT_NEAR(b[0] + 3 * b[1], 4.0 * k, 1e-10);
  }
}

TEST(LinalgTest, RandomSpdSystemResidual) {
  // Diagonally dominant 6x6 (like a thermal conductance matrix).
  const std::size_t n = 6;
  DenseMatrix m(n);
  unsigned state = 12345;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state % 1000) / 1000.0;
  };
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        m.at(i, j) = -next();
        row += -m.at(i, j);
      }
    }
    m.at(i, i) = row + 1.0;
  }
  LuFactorization lu;
  ASSERT_TRUE(lu.factor(m));
  std::vector<double> b(n);
  for (auto& v : b) v = next() * 10.0;
  std::vector<double> x = b;
  lu.solve(x);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += m.at(i, j) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9);
  }
}

// Block-diagonal matrix with awkward values (denormals would be overkill;
// irrational-ish doubles catch reassociation): 3 blocks of 3.
DenseMatrix block_diag_matrix() {
  DenseMatrix m(9);
  unsigned state = 99;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state % 100000) / 9973.0 - 5.0;
  };
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        m.at(3 * b + i, 3 * b + j) = next();
      }
    }
  }
  return m;
}

TEST(LinalgTest, SparseFromDenseKeepsExactlyTheNonzeros) {
  const DenseMatrix m = block_diag_matrix();
  const SparseMatrix s = SparseMatrix::from_dense(m);
  EXPECT_EQ(s.size(), 9u);
  EXPECT_EQ(s.nonzeros(), 27u);  // 3 dense 3x3 blocks
  EXPECT_NEAR(s.fill_ratio(), 27.0 / 81.0, 1e-15);
  // Round-trip every stored entry against the dense source.
  for (std::size_t r = 0; r < 9; ++r) {
    for (std::size_t k = s.row_ptr()[r]; k < s.row_ptr()[r + 1]; ++k) {
      EXPECT_EQ(s.values()[k], m.at(r, s.cols()[k]));
    }
  }
}

TEST(LinalgTest, SparseMatvecBitIdenticalToDense) {
  // The load-bearing parity property: CSR built by dropping exact zeros
  // performs the same fused acc += v * x[c] sequence as the dense walk, so
  // results match BITWISE, not just to tolerance.
  const DenseMatrix m = block_diag_matrix();
  const SparseMatrix s = SparseMatrix::from_dense(m);
  std::vector<double> x(9);
  for (std::size_t i = 0; i < 9; ++i) {
    x[i] = 0.1 * static_cast<double>(i) + 1.0 / 3.0;
  }
  std::vector<double> yd, ys;
  matvec(m, x, yd);
  matvec(s, x, ys);
  ASSERT_EQ(yd.size(), ys.size());
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(yd[i], ys[i]) << i;
  // Accumulating form too (the propagator's inner loop).
  std::vector<double> ad(9, 0.25), as(9, 0.25);
  matvec_accumulate(m, x, ad);
  matvec_accumulate(s, x, as);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(ad[i], as[i]) << i;
}

TEST(LinalgTest, UnrolledMatvecBitIdenticalToReference) {
  // The unrolled kernels keep the reference's single accumulator and term
  // order, so they must match it BITWISE — at sizes that exercise the full
  // 4x body, the scalar tail alone, and every mix of the two.
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u, 33u}) {
    SCOPED_TRACE(n);
    DenseMatrix m(n);
    unsigned state = 7u + static_cast<unsigned>(n);
    auto next = [&state]() {
      state = state * 1664525u + 1013904223u;
      return static_cast<double>(state % 100000) / 9973.0 - 5.0;
    };
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) m.at(r, c) = next();
    }
    std::vector<double> x(n);
    for (auto& v : x) v = next();

    std::vector<double> fast, ref;
    matvec(m, x, fast);
    matvec_reference(m, x, ref);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(fast[i], ref[i]) << i;

    std::vector<double> af(n, 0.5), ar(n, 0.5);
    matvec_accumulate(m, x, af);
    // The reference accumulate is the naive loop applied on top of y.
    std::vector<double> tmp;
    matvec_reference(m, x, tmp);
    for (std::size_t i = 0; i < n; ++i) ar[i] += tmp[i];
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(af[i], ar[i]) << i;
  }
}

TEST(LinalgTest, UnrolledCsrMatvecBitIdenticalToReference) {
  // Same parity demand on the CSR kernel, with rows of varying occupancy so
  // per-row unroll counts differ (block structure leaves 6 zeros per row).
  const DenseMatrix m = block_diag_matrix();
  const SparseMatrix s = SparseMatrix::from_dense(m);
  std::vector<double> x(9);
  for (std::size_t i = 0; i < 9; ++i) {
    x[i] = 0.7 * static_cast<double>(i) - 1.0 / 7.0;
  }
  std::vector<double> fast, ref;
  matvec(s, x, fast);
  matvec_reference(s, x, ref);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(fast[i], ref[i]) << i;
}

TEST(LinalgTest, SparseIdentityAndEmptyEdgeCases) {
  const SparseMatrix id = SparseMatrix::from_dense(DenseMatrix::identity(4));
  EXPECT_EQ(id.nonzeros(), 4u);
  std::vector<double> x = {1.5, -2.25, 0.0, 7.0};
  std::vector<double> y;
  matvec(id, x, y);
  EXPECT_EQ(y, x);
  const SparseMatrix zero = SparseMatrix::from_dense(DenseMatrix(3));
  EXPECT_EQ(zero.nonzeros(), 0u);
  EXPECT_EQ(zero.fill_ratio(), 0.0);
  std::vector<double> z;
  matvec(zero, std::vector<double>(3, 9.0), z);
  EXPECT_EQ(z, std::vector<double>(3, 0.0));
}

}  // namespace
}  // namespace dimetrodon::thermal
