// Sparse-path contract tests: the CSR propagator must be bitwise-identical
// to the dense reference (not merely close), the sparse gate must engage
// only where the fill ratio warrants it, and the StepOperator LRU must not
// thrash on near-identical timesteps.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "thermal/rc_network.hpp"

namespace dimetrodon::thermal {
namespace {

/// Block-diagonal topology: `islands` chains of `per_island` free nodes,
/// joined only through one fixed boundary node — the cluster-layer shape
/// (per-rack air networks meeting at the CRAC) that makes the propagator
/// powers sparse.
std::vector<NodeId> build_islands(RcNetwork& net, std::size_t islands,
                                  std::size_t per_island) {
  const NodeId crac = net.add_fixed_node("crac", 18.0);
  std::vector<NodeId> heads;
  for (std::size_t i = 0; i < islands; ++i) {
    NodeId prev = crac;
    for (std::size_t j = 0; j < per_island; ++j) {
      const NodeId n = net.add_node("n", j == 0 ? 50.0 : 30.0, 25.0);
      net.connect_r(prev, n, j == 0 ? 0.4 : 0.15);
      if (j == 0) heads.push_back(n);
      prev = n;
    }
  }
  return heads;
}

TEST(SparsePropagatorTest, BlockDiagonalAdvanceBitIdenticalToDense) {
  RcNetwork dense;
  RcNetwork sparse;
  const auto dense_heads = build_islands(dense, 12, 4);
  const auto sparse_heads = build_islands(sparse, 12, 4);
  dense.set_sparse_enabled(false);
  sparse.set_sparse_enabled(true);
  for (std::size_t i = 0; i < dense_heads.size(); ++i) {
    dense.set_power(dense_heads[i], 4.0 + 0.5 * static_cast<double>(i));
    sparse.set_power(sparse_heads[i], 4.0 + 0.5 * static_cast<double>(i));
  }
  // Compare at every advance boundary, across substep counts that exercise
  // single-step, power-of-two, and ragged binary decompositions.
  for (const std::uint64_t substeps : {1u, 2u, 7u, 64u, 1000u, 4097u}) {
    dense.advance(0.00025, substeps);
    sparse.advance(0.00025, substeps);
    for (NodeId n = 0; n < dense.node_count(); ++n) {
      ASSERT_EQ(dense.temperature(n), sparse.temperature(n))
          << "node " << n << " after " << substeps << " substeps";
    }
  }
  EXPECT_EQ(dense.stats().sparse_matvecs, 0u);
  EXPECT_GT(sparse.stats().sparse_matvecs, 0u);
  // Both paths report the same total matvec work — sparse is a routing
  // decision, not a different algorithm.
  EXPECT_EQ(dense.stats().matvecs, sparse.stats().matvecs);
  EXPECT_EQ(dense.stats().substeps, sparse.stats().substeps);
}

TEST(SparsePropagatorTest, SmallDenseNetworkNeverRoutesSparse) {
  // Below the node floor (or above the fill ceiling) the CSR twins are not
  // built at all; a 4-node fully-coupled stack must stay dense even with the
  // sparse path enabled.
  RcNetwork net;
  const NodeId amb = net.add_fixed_node("amb", 25.0);
  NodeId prev = amb;
  for (int i = 0; i < 4; ++i) {
    const NodeId n = net.add_node("n", 10.0, 25.0);
    net.connect_r(prev, n, 0.5);
    prev = n;
  }
  net.set_sparse_enabled(true);
  net.set_power(1, 10.0);
  net.advance(0.001, 512);
  EXPECT_GT(net.stats().matvecs, 0u);
  EXPECT_EQ(net.stats().sparse_matvecs, 0u);
}

TEST(SparsePropagatorTest, ConnectThrowsOutOfRangeOnBadNodeId) {
  RcNetwork net;
  const NodeId a = net.add_node("a", 10.0, 25.0);
  const NodeId b = net.add_node("b", 10.0, 25.0);
  net.connect(a, b, 1.0);  // good path
  EXPECT_THROW(net.connect(a, 99, 1.0), std::out_of_range);
  EXPECT_THROW(net.connect(99, b, 1.0), std::out_of_range);
  EXPECT_THROW(net.connect(a, a, 1.0), std::invalid_argument);  // self-loop
}

TEST(SparsePropagatorTest, SetTemperatureThrowsOutOfRangeOnBadNodeId) {
  RcNetwork net;
  const NodeId a = net.add_node("a", 10.0, 25.0);
  net.set_temperature(a, 30.0);  // good path
  EXPECT_EQ(net.temperature(a), 30.0);
  EXPECT_THROW(net.set_temperature(net.node_count(), 30.0),
               std::out_of_range);
}

TEST(SparsePropagatorTest, SetPowerThrowsOutOfRangeOnBadNodeId) {
  RcNetwork net;
  const NodeId a = net.add_node("a", 10.0, 25.0);
  net.set_power(a, 5.0);  // good path
  EXPECT_EQ(net.power(a), 5.0);
  EXPECT_THROW(net.set_power(net.node_count(), 5.0), std::out_of_range);
}

TEST(SparsePropagatorTest, OperatorCacheHoldsEightDistinctTimesteps) {
  RcNetwork net;
  build_islands(net, 4, 3);
  // Cycling through exactly 8 distinct dts fits the LRU: after the first
  // pass, no further factorizations and no evictions.
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 8; ++i) net.step(0.001 * (1 + i));
  }
  EXPECT_EQ(net.stats().factorizations, 8u);
  EXPECT_EQ(net.stats().evictions, 0u);
  // A ninth dt evicts the least-recently-used entry.
  net.step(0.009);
  EXPECT_EQ(net.stats().factorizations, 9u);
  EXPECT_EQ(net.stats().evictions, 1u);
}

TEST(SparsePropagatorTest, OneUlpTimestepReusesCachedOperator) {
  // A dt that round-trips bit-exactly reuses its operator; the cache keys on
  // the exact double, so the schedule layer's habit of re-deriving dt from
  // SimTime ticks (always the same bits) cannot thrash the LRU. This guards
  // the invariant that equal-bits dt == cache hit on both dense and sparse
  // paths.
  for (const bool sparse : {false, true}) {
    RcNetwork net;
    build_islands(net, 10, 4);
    net.set_sparse_enabled(sparse);
    const double dt = 0.00025;
    net.advance(dt, 100);
    const std::uint64_t facts = net.stats().factorizations;
    for (int i = 0; i < 50; ++i) net.advance(dt, 100);
    EXPECT_EQ(net.stats().factorizations, facts) << "sparse=" << sparse;
    EXPECT_EQ(net.stats().evictions, 0u) << "sparse=" << sparse;
    // A 1-ulp-different dt is a *different* operator (correctness first:
    // implicit Euler at a different dt is different arithmetic), but one
    // extra entry — not a thrash of the whole cache.
    const double dt_ulp = std::nextafter(dt, 1.0);
    net.advance(dt_ulp, 100);
    EXPECT_GT(net.stats().factorizations, facts) << "sparse=" << sparse;
    // Alternating between the two dts now hits both cached entries.
    const std::uint64_t facts2 = net.stats().factorizations;
    for (int i = 0; i < 20; ++i) {
      net.advance(dt, 50);
      net.advance(dt_ulp, 50);
    }
    EXPECT_EQ(net.stats().factorizations, facts2) << "sparse=" << sparse;
    EXPECT_EQ(net.stats().evictions, 0u) << "sparse=" << sparse;
  }
}

TEST(SparsePropagatorTest, SaveRestoreRoundTripsDynamicState) {
  RcNetwork net;
  const auto heads = build_islands(net, 6, 3);
  net.set_power(heads[0], 12.0);
  net.advance(0.001, 300);
  const RcNetwork::State state = net.save_state();
  // Perturb, then restore: temperatures, powers, and stats all come back.
  net.set_power(heads[0], 0.0);
  net.advance(0.001, 100);
  net.restore_state(state);
  for (NodeId n = 0; n < net.node_count(); ++n) {
    EXPECT_EQ(net.temperature(n), state.temps[n]);
  }
  EXPECT_EQ(net.power(heads[0]), 12.0);
  EXPECT_EQ(net.stats().substeps, state.stats.substeps);
  // Restored network continues bit-identically to an undisturbed twin.
  RcNetwork twin;
  build_islands(twin, 6, 3);
  twin.restore_state(state);
  net.advance(0.001, 200);
  twin.advance(0.001, 200);
  for (NodeId n = 0; n < net.node_count(); ++n) {
    EXPECT_EQ(net.temperature(n), twin.temperature(n));
  }
}

TEST(SparsePropagatorTest, RestoreStateRejectsMismatchedTopology) {
  RcNetwork a;
  build_islands(a, 3, 3);
  RcNetwork b;
  build_islands(b, 3, 4);
  EXPECT_THROW(b.restore_state(a.save_state()), std::invalid_argument);
}

}  // namespace
}  // namespace dimetrodon::thermal
