// Closed-form fast-forward propagator: RcNetwork::advance(dt, k) must be
// physics-equivalent to k sequential step(dt) calls (the reference stepper),
// deterministic, and must preserve the singular-matrix error path. Also
// covers the per-dt operator cache that keeps the primary-substep
// factorization resident across partial-remainder chunks.
#include "thermal/rc_network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "thermal/floorplan.hpp"

namespace dimetrodon::thermal {
namespace {

constexpr double kParityTolC = 1e-9;

/// Two-mass chain with an ambient boundary: die -> sink -> ambient.
struct Chain {
  RcNetwork net;
  NodeId die, sink, amb;
  Chain() {
    die = net.add_node("die", 0.01, 30.0);
    sink = net.add_node("sink", 10.0, 28.0);
    amb = net.add_fixed_node("ambient", 25.0);
    net.connect_r(die, sink, 1.5);
    net.connect_r(sink, amb, 0.3);
    net.set_power(die, 9.0);
  }
};

/// Multiple fixed nodes: free node squeezed between two boundaries.
struct TwoBoundary {
  RcNetwork net;
  NodeId mass, hot, cold;
  TwoBoundary() {
    mass = net.add_node("mass", 2.0, 40.0);
    hot = net.add_fixed_node("hot", 80.0);
    cold = net.add_fixed_node("cold", 10.0);
    net.connect_r(mass, hot, 2.0);
    net.connect_r(mass, cold, 1.0);
    net.set_power(mass, 3.0);
  }
};

std::vector<double> all_temps(const RcNetwork& net) {
  std::vector<double> t;
  for (NodeId n = 0; n < net.node_count(); ++n) {
    t.push_back(net.temperature(n));
  }
  return t;
}

/// advance(dt, j) from the same start state must match j sequential step(dt)
/// calls at EVERY substep boundary j = 1..max_steps.
template <typename Fixture>
void expect_parity_at_every_boundary(double dt, int max_steps) {
  Fixture ref;
  for (int j = 1; j <= max_steps; ++j) {
    ref.net.step(dt);
    Fixture fast;
    fast.net.advance(dt, static_cast<std::uint64_t>(j));
    const auto want = all_temps(ref.net);
    const auto got = all_temps(fast.net);
    for (std::size_t n = 0; n < want.size(); ++n) {
      EXPECT_NEAR(got[n], want[n], kParityTolC)
          << "node " << n << " after " << j << " substeps of dt=" << dt;
    }
  }
}

TEST(PropagatorTest, ParityAtEveryBoundaryAcrossDtValues) {
  for (const double dt : {0.00025, 0.001, 0.0173, 0.1}) {
    expect_parity_at_every_boundary<Chain>(dt, 70);
  }
}

TEST(PropagatorTest, ParityWithMultipleFixedNodes) {
  expect_parity_at_every_boundary<TwoBoundary>(0.01, 70);
}

TEST(PropagatorTest, ParityOnServerFloorplan) {
  const double dt = 0.00025;
  RcNetwork ref, fast;
  FloorplanParams params;
  const auto rn = build_server_floorplan(ref, params);
  const auto fn = build_server_floorplan(fast, params);
  for (std::size_t i = 0; i < 4; ++i) {
    ref.set_power(rn.die[i], 8.0 + 2.0 * static_cast<double>(i));
    fast.set_power(fn.die[i], 8.0 + 2.0 * static_cast<double>(i));
  }
  ref.set_power(rn.package, 18.0);
  fast.set_power(fn.package, 18.0);
  const std::uint64_t k = 4000;  // one simulated second of 250 µs substeps
  for (std::uint64_t j = 0; j < k; ++j) ref.step(dt);
  fast.advance(dt, k);
  for (NodeId n = 0; n < ref.node_count(); ++n) {
    EXPECT_NEAR(fast.temperature(n), ref.temperature(n), kParityTolC);
  }
}

TEST(PropagatorTest, LongFastForwardConvergesToSteadyState) {
  // A^k -> 0 and the geometric sum -> (I-A)^-1 b: a huge k must land on the
  // steady state, exercising deep lifted levels without instability.
  Chain c;
  c.net.advance(0.01, 1u << 24);
  Chain ss;
  ss.net.solve_steady_state();
  for (NodeId n = 0; n < c.net.node_count(); ++n) {
    EXPECT_NEAR(c.net.temperature(n), ss.net.temperature(n), 1e-6);
  }
}

TEST(PropagatorTest, SingleSubstepIsBitIdenticalToStep) {
  Chain a, b;
  for (int i = 0; i < 50; ++i) {
    a.net.step(0.002);
    b.net.advance(0.002, 1);
  }
  for (NodeId n = 0; n < a.net.node_count(); ++n) {
    EXPECT_EQ(a.net.temperature(n), b.net.temperature(n));
  }
}

TEST(PropagatorTest, FastForwardIsBitDeterministic) {
  auto run = [] {
    Chain c;
    for (int i = 0; i < 25; ++i) {
      c.net.advance(0.00025, 37);
      c.net.step(0.00011);  // irregular remainder chunks between
    }
    return all_temps(c.net);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(PropagatorTest, AdvanceZeroStepsIsNoOp) {
  Chain c;
  const auto before = all_temps(c.net);
  c.net.advance(0.001, 0);
  EXPECT_EQ(all_temps(c.net), before);
  EXPECT_EQ(c.net.stats().substeps, 0u);
}

TEST(PropagatorTest, SingularMatrixThrowsOnBothPaths) {
  // Subnormal capacitances and near-zero conductances push every LU pivot
  // below the singularity threshold — the degenerate-grid-point failure mode
  // the fault-isolation layer relies on. Both stepping paths must surface the
  // identical error.
  RcNetwork net;
  const NodeId a = net.add_node("a", 1e-306, 20.0);
  const NodeId amb = net.add_fixed_node("amb", 20.0);
  net.connect(a, amb, 1e-305);
  EXPECT_THROW(net.step(1.0), std::runtime_error);
  EXPECT_THROW(net.advance(1.0, 8), std::runtime_error);
  try {
    net.advance(1.0, 8);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "thermal step matrix is singular");
  }
}

TEST(PropagatorTest, PrimaryDtFactorizationSurvivesRemainderChunks) {
  // The pre-fix stepper rebuilt the factorization twice per remainder
  // (remainder dt clobbered the cache, the next full substep rebuilt it).
  // With the per-dt cache, alternating primary/remainder costs exactly one
  // factorization per distinct dt.
  Chain c;
  const double primary = 0.00025;
  c.net.step(primary);
  const double rem = 0.00013;
  for (int i = 0; i < 100; ++i) {
    c.net.step(primary);
    c.net.step(rem);
  }
  EXPECT_EQ(c.net.stats().factorizations, 2u);
}

TEST(PropagatorTest, OperatorCacheIsBoundedUnderUniqueRemainders) {
  Chain c;
  const double primary = 0.00025;
  for (int i = 1; i <= 200; ++i) {
    c.net.advance(primary, 5);
    c.net.step(1e-6 * static_cast<double>(i));  // unique remainder each time
  }
  // Unique dts each factor once, but the cache stays bounded and the primary
  // dt is never evicted by LRU churn (its lifted tables keep getting hits).
  EXPECT_EQ(c.net.stats().factorizations, 201u);
  const std::uint64_t factor_before = c.net.stats().factorizations;
  c.net.advance(primary, 5);
  EXPECT_EQ(c.net.stats().factorizations, factor_before);
}

TEST(PropagatorTest, TopologyChangeInvalidatesOperators) {
  RcNetwork net;
  const NodeId a = net.add_node("a", 1.0, 30.0);
  const NodeId amb = net.add_fixed_node("amb", 20.0);
  net.connect_r(a, amb, 1.0);
  net.advance(0.01, 8);
  const double before = net.temperature(a);
  const NodeId b = net.add_node("b", 1.0, 90.0);
  net.connect_r(a, b, 0.5);
  net.advance(0.01, 8);  // must not reuse the stale 1-node operator
  EXPECT_GT(net.temperature(a), before - 5.0);
  EXPECT_LT(net.temperature(b), 90.0);
  EXPECT_EQ(net.stats().factorizations, 2u);
}

TEST(PropagatorTest, UnrolledKernelsKeepDenseSparseParityOnServerFloorplan) {
  // The matvec kernels unroll 4x but keep the single-accumulator term order,
  // so the dense and CSR propagator paths must STILL agree bitwise — this
  // drives both unrolled kernels through the full lifted fast-forward on a
  // floorplan big enough (> 4 free nodes) to hit the unrolled body, with a
  // substep count whose bits force several operator levels and remainders.
  FloorplanParams params;
  RcNetwork dense, sparse;
  const auto dn = build_server_floorplan(dense, params);
  const auto sn = build_server_floorplan(sparse, params);
  dense.set_sparse_enabled(false);
  sparse.set_sparse_enabled(true);
  for (std::size_t i = 0; i < 4; ++i) {
    dense.set_power(dn.die[i], 7.0 + 3.0 * static_cast<double>(i));
    sparse.set_power(sn.die[i], 7.0 + 3.0 * static_cast<double>(i));
  }
  for (int round = 0; round < 5; ++round) {
    dense.advance(0.00025, 1337);
    sparse.advance(0.00025, 1337);
  }
  EXPECT_GT(dense.stats().matvecs, 0u);
  const auto td = all_temps(dense);
  const auto ts = all_temps(sparse);
  ASSERT_EQ(td.size(), ts.size());
  for (std::size_t n = 0; n < td.size(); ++n) {
    EXPECT_EQ(td[n], ts[n]) << "node " << n;
  }
}

TEST(PropagatorTest, StatsCountWork) {
  Chain c;
  c.net.advance(0.00025, 12);  // bits 1100 -> 2 applications, 4 matvecs
  EXPECT_EQ(c.net.stats().substeps, 12u);
  EXPECT_EQ(c.net.stats().fast_forward_steps, 12u);
  EXPECT_EQ(c.net.stats().matvecs, 4u);
  c.net.step(0.00025);
  EXPECT_EQ(c.net.stats().substeps, 13u);
  EXPECT_EQ(c.net.stats().fast_forward_steps, 12u);
}

}  // namespace
}  // namespace dimetrodon::thermal
