#include "power/energy.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::power {
namespace {

TEST(EnergyTest, StartsAtZero) {
  EnergyAccountant e(4);
  EXPECT_DOUBLE_EQ(e.total_joules(), 0.0);
  EXPECT_DOUBLE_EQ(e.core_joules(0), 0.0);
  EXPECT_DOUBLE_EQ(e.uncore_joules(), 0.0);
}

TEST(EnergyTest, AccumulatesPerCore) {
  EnergyAccountant e(2);
  e.add_core(0, 10.0, 2.0);
  e.add_core(1, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(e.core_joules(0), 20.0);
  EXPECT_DOUBLE_EQ(e.core_joules(1), 5.0);
  EXPECT_DOUBLE_EQ(e.total_joules(), 25.0);
}

TEST(EnergyTest, UncoreCountsTowardTotal) {
  EnergyAccountant e(1);
  e.add_uncore(16.0, 0.5);
  EXPECT_DOUBLE_EQ(e.uncore_joules(), 8.0);
  EXPECT_DOUBLE_EQ(e.total_joules(), 8.0);
}

TEST(EnergyTest, ResetZeroesEverything) {
  EnergyAccountant e(2);
  e.add_core(0, 1.0, 1.0);
  e.add_uncore(2.0, 1.0);
  e.reset();
  EXPECT_DOUBLE_EQ(e.total_joules(), 0.0);
  EXPECT_DOUBLE_EQ(e.core_joules(0), 0.0);
  EXPECT_DOUBLE_EQ(e.uncore_joules(), 0.0);
}

TEST(EnergyTest, OutOfRangeCoreThrows) {
  EnergyAccountant e(2);
  EXPECT_THROW(e.add_core(2, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(e.core_joules(5), std::out_of_range);
}

}  // namespace
}  // namespace dimetrodon::power
