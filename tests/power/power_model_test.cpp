#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dimetrodon::power {
namespace {

CoreOperatingPoint nominal_c0(double activity = 1.0) {
  CoreOperatingPoint op;
  op.cstate = CState::kC0;
  op.voltage_v = 1.225;
  op.freq_ghz = 2.261;
  op.activity = activity;
  op.clock_duty = 1.0;
  return op;
}

TEST(PowerModelTest, NominalDynamicPowerMatchesParameter) {
  const CpuPowerModel model;
  EXPECT_NEAR(model.core_dynamic_power(nominal_c0()),
              model.params().core_dynamic_nominal_w, 1e-9);
}

TEST(PowerModelTest, DynamicPowerLinearInActivity) {
  const CpuPowerModel model;
  const double full = model.core_dynamic_power(nominal_c0(1.0));
  EXPECT_NEAR(model.core_dynamic_power(nominal_c0(0.5)), 0.5 * full, 1e-9);
  EXPECT_NEAR(model.core_dynamic_power(nominal_c0(0.0)), 0.0, 1e-9);
}

TEST(PowerModelTest, DynamicPowerLinearInFrequency) {
  const CpuPowerModel model;
  CoreOperatingPoint op = nominal_c0();
  const double full = model.core_dynamic_power(op);
  op.freq_ghz /= 2.0;
  EXPECT_NEAR(model.core_dynamic_power(op), 0.5 * full, 1e-9);
}

TEST(PowerModelTest, DynamicPowerQuadraticInVoltage) {
  const CpuPowerModel model;
  CoreOperatingPoint op = nominal_c0();
  const double full = model.core_dynamic_power(op);
  op.voltage_v *= 0.8;
  EXPECT_NEAR(model.core_dynamic_power(op), 0.64 * full, 1e-9);
}

TEST(PowerModelTest, DynamicPowerScalesWithClockDuty) {
  const CpuPowerModel model;
  CoreOperatingPoint op = nominal_c0();
  op.clock_duty = 0.25;
  EXPECT_NEAR(model.core_dynamic_power(op),
              0.25 * model.params().core_dynamic_nominal_w, 1e-9);
}

TEST(PowerModelTest, LeakageExponentialInTemperature) {
  const CpuPowerModel model;
  const auto& p = model.params();
  const CoreOperatingPoint op = nominal_c0();
  const double at_ref = model.core_leakage_power(op, p.leakage_ref_temp_c);
  EXPECT_NEAR(at_ref, p.core_leakage_nominal_w, 1e-9);
  // Near the reference the model is the textbook exponential (within the
  // few-percent bend the tanh saturation introduces)...
  const double hotter =
      model.core_leakage_power(op, p.leakage_ref_temp_c + 10.0);
  EXPECT_NEAR(hotter / at_ref, std::exp(10.0 * p.leakage_temp_coeff), 0.06);
  // ... and matches the documented saturating form exactly.
  const double dt_eff =
      p.leakage_saturation_c * std::tanh(10.0 / p.leakage_saturation_c);
  EXPECT_NEAR(hotter / at_ref, std::exp(p.leakage_temp_coeff * dt_eff),
              1e-9);
}

TEST(PowerModelTest, LeakageSaturatesFarAboveReference) {
  // The saturating form bounds leakage: the 60->120 C multiplier is well
  // below the unsaturated exponential's.
  const CpuPowerModel model;
  const auto& p = model.params();
  const CoreOperatingPoint op = nominal_c0();
  const double at_ref = model.core_leakage_power(op, p.leakage_ref_temp_c);
  const double extreme = model.core_leakage_power(op, 120.0);
  EXPECT_LT(extreme / at_ref, std::exp(p.leakage_temp_coeff * 60.0) * 0.5);
  EXPECT_LT(extreme, 5.0 * p.core_leakage_nominal_w);
}

TEST(PowerModelTest, LeakageMonotoneInTemperature) {
  const CpuPowerModel model;
  const CoreOperatingPoint op = nominal_c0();
  double prev = 0.0;
  for (double t = 20.0; t <= 90.0; t += 5.0) {
    const double leak = model.core_leakage_power(op, t);
    EXPECT_GT(leak, prev);
    prev = leak;
  }
}

TEST(PowerModelTest, LeakageIsSubstantialFractionWhenHot) {
  // The paper's trade-off shapes require leakage to matter: at hot die
  // temperatures leakage should be a third or more of core power.
  const CpuPowerModel model;
  const CoreOperatingPoint op = nominal_c0();
  const double leak = model.core_leakage_power(op, 70.0);
  const double total = model.core_power(op, 70.0);
  EXPECT_GT(leak / total, 0.30);
  EXPECT_LT(leak / total, 0.60);
}

TEST(PowerModelTest, C1GatesDynamicKeepsLeakage) {
  const CpuPowerModel model;
  CoreOperatingPoint op = nominal_c0();
  op.cstate = CState::kC1;
  const double dyn = model.core_dynamic_power(op);
  EXPECT_LT(dyn, 0.1 * model.params().core_dynamic_nominal_w);
  // Leakage unchanged versus C0 at the same voltage.
  EXPECT_NEAR(model.core_leakage_power(op, 60.0),
              model.core_leakage_power(nominal_c0(), 60.0), 1e-9);
}

TEST(PowerModelTest, C1EReducesLeakageViaVoltage) {
  const CpuPowerModel model;
  CoreOperatingPoint op = nominal_c0();
  op.cstate = CState::kC1E;
  const double c1e_leak = model.core_leakage_power(op, 60.0);
  const double c0_leak = model.core_leakage_power(nominal_c0(), 60.0);
  EXPECT_LT(c1e_leak, 0.6 * c0_leak);
}

TEST(PowerModelTest, TransitionBurnsAtActiveLevels) {
  // During C-state entry/exit the core has not reached idle conditions yet —
  // the cost that ruins microsecond-scale duty cycling.
  const CpuPowerModel model;
  CoreOperatingPoint op = nominal_c0();
  op.cstate = CState::kC1E;
  op.in_transition = true;
  EXPECT_NEAR(model.core_power(op, 60.0),
              model.core_power(nominal_c0(), 60.0), 1e-9);
}

TEST(PowerModelTest, C1EIdlePowerFarBelowActive) {
  const CpuPowerModel model;
  CoreOperatingPoint idle = nominal_c0();
  idle.cstate = CState::kC1E;
  idle.activity = 0.0;
  const double m = model.core_power(idle, 40.0);
  const double u = model.core_power(nominal_c0(), 70.0);
  EXPECT_LT(m, 0.2 * u);
}

TEST(PowerModelTest, UncorePowerScalesWithActivity) {
  const CpuPowerModel model;
  const auto& p = model.params();
  EXPECT_NEAR(model.uncore_power(0.0), p.uncore_base_w, 1e-9);
  EXPECT_NEAR(model.uncore_power(1.0), p.uncore_base_w + p.uncore_active_w,
              1e-9);
  EXPECT_NEAR(model.uncore_power(2.0), p.uncore_base_w + p.uncore_active_w,
              1e-9);  // clamped
}

TEST(PowerModelTest, PackagePowerBudgetRealistic) {
  // Four cpuburn cores at ~70 C plus uncore must land inside the E5520's
  // 80 W TDP ballpark, and the idle package in the 20-30 W range.
  const CpuPowerModel model;
  const double hot = 4.0 * model.core_power(nominal_c0(), 70.0) +
                     model.uncore_power(1.0);
  EXPECT_GT(hot, 55.0);
  EXPECT_LT(hot, 85.0);
  CoreOperatingPoint idle = nominal_c0(0.0);
  idle.cstate = CState::kC1E;
  const double idle_pkg =
      4.0 * model.core_power(idle, 33.0) + model.uncore_power(0.0);
  EXPECT_GT(idle_pkg, 12.0);
  EXPECT_LT(idle_pkg, 32.0);
}

class ActivitySweep : public ::testing::TestWithParam<double> {};

TEST_P(ActivitySweep, ActivityClampedToUnitInterval) {
  const CpuPowerModel model;
  const double dyn = model.core_dynamic_power(nominal_c0(GetParam()));
  EXPECT_GE(dyn, 0.0);
  EXPECT_LE(dyn, model.params().core_dynamic_nominal_w + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Extremes, ActivitySweep,
                         ::testing::Values(-1.0, 0.0, 0.3, 1.0, 2.5));

}  // namespace
}  // namespace dimetrodon::power
