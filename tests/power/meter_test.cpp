#include "power/meter.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dimetrodon::power {
namespace {

PowerMeter::Config noiseless() {
  PowerMeter::Config c;
  c.gain_error_stddev = 0.0;
  c.sample_noise_w = 0.0;
  return c;
}

TEST(MeterTest, NoiselessMeterIsExact) {
  PowerMeter meter(noiseless(), sim::Rng(1));
  meter.sample(0, 50.0);
  meter.sample(sim::kSecond, 50.0);
  EXPECT_NEAR(meter.measured_energy_joules(), 50.0, 1e-9);
  EXPECT_NEAR(meter.mean_power_w(), 50.0, 1e-9);
}

TEST(MeterTest, TrapezoidIntegration) {
  PowerMeter meter(noiseless(), sim::Rng(1));
  meter.sample(0, 0.0);
  meter.sample(sim::kSecond, 100.0);  // ramp: integral = 50 J
  EXPECT_NEAR(meter.measured_energy_joules(), 50.0, 1e-9);
}

TEST(MeterTest, EnergyAccumulatesAcrossSamples) {
  PowerMeter meter(noiseless(), sim::Rng(1));
  for (int i = 0; i <= 10; ++i) {
    meter.sample(i * sim::from_ms(100), 30.0);
  }
  EXPECT_NEAR(meter.measured_energy_joules(), 30.0, 1e-9);
  EXPECT_EQ(meter.sample_count(), 11u);
}

TEST(MeterTest, RecordsSampleTrace) {
  PowerMeter meter(noiseless(), sim::Rng(1));
  meter.sample(5, 12.0);
  meter.sample(10, 14.0);
  ASSERT_EQ(meter.samples().size(), 2u);
  EXPECT_EQ(meter.samples()[0].at, 5);
  EXPECT_DOUBLE_EQ(meter.samples()[1].watts, 14.0);
}

TEST(MeterTest, TraceCanBeDisabled) {
  PowerMeter::Config cfg = noiseless();
  cfg.record_samples = false;
  PowerMeter meter(cfg, sim::Rng(1));
  meter.sample(0, 20.0);
  meter.sample(sim::kSecond, 20.0);
  EXPECT_TRUE(meter.samples().empty());
  // Energy still integrates.
  EXPECT_NEAR(meter.measured_energy_joules(), 20.0, 1e-9);
}

TEST(MeterTest, GainErrorIsSystematicPerInstrument) {
  PowerMeter::Config cfg;
  cfg.gain_error_stddev = 0.035;  // paper's clamp accuracy
  cfg.sample_noise_w = 0.0;
  PowerMeter meter(cfg, sim::Rng(99));
  meter.sample(0, 100.0);
  meter.sample(sim::kSecond, 100.0);
  const double gain = meter.mean_power_w() / 100.0;
  // All samples share the same calibration error.
  for (const auto& s : meter.samples()) {
    EXPECT_NEAR(s.watts, gain * 100.0, 1e-9);
  }
  EXPECT_NEAR(gain, 1.0, 0.15);
}

TEST(MeterTest, SampleNoiseAveragesOut) {
  PowerMeter::Config cfg;
  cfg.gain_error_stddev = 0.0;
  cfg.sample_noise_w = 2.0;
  cfg.record_samples = false;
  PowerMeter meter(cfg, sim::Rng(7));
  for (int i = 0; i < 50000; ++i) {
    meter.sample(i, 60.0);
  }
  EXPECT_NEAR(meter.mean_power_w(), 60.0, 0.1);
}

TEST(MeterTest, ResetClearsDataKeepsCalibration) {
  PowerMeter::Config cfg;
  cfg.gain_error_stddev = 0.035;
  cfg.sample_noise_w = 0.0;
  PowerMeter meter(cfg, sim::Rng(3));
  meter.sample(0, 100.0);
  const double gain_before = meter.mean_power_w();
  meter.reset();
  EXPECT_EQ(meter.sample_count(), 0u);
  EXPECT_DOUBLE_EQ(meter.measured_energy_joules(), 0.0);
  meter.sample(0, 100.0);
  EXPECT_NEAR(meter.mean_power_w(), gain_before, 1e-9);
}

TEST(MeterTest, DefaultsMatchPaperRig) {
  // "three times per millisecond" (§3.3).
  const PowerMeter::Config cfg;
  EXPECT_NEAR(sim::to_us(cfg.sample_interval), 333.3, 1.0);
}

}  // namespace
}  // namespace dimetrodon::power
