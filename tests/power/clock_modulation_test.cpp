#include "power/clock_modulation.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::power {
namespace {

TEST(ClockModulationTest, DefaultsToUnthrottled) {
  ClockModulation cm;
  EXPECT_EQ(cm.step(), 8u);
  EXPECT_DOUBLE_EQ(cm.duty(), 1.0);
  EXPECT_FALSE(cm.throttled());
}

TEST(ClockModulationTest, StepsAreEighths) {
  ClockModulation cm;
  cm.set_step(1);
  EXPECT_DOUBLE_EQ(cm.duty(), 0.125);
  cm.set_step(4);
  EXPECT_DOUBLE_EQ(cm.duty(), 0.5);
  EXPECT_TRUE(cm.throttled());
}

TEST(ClockModulationTest, RejectsOutOfRangeSteps) {
  ClockModulation cm;
  EXPECT_THROW(cm.set_step(0), std::invalid_argument);
  EXPECT_THROW(cm.set_step(9), std::invalid_argument);
}

}  // namespace
}  // namespace dimetrodon::power
