#include "power/dvfs.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::power {
namespace {

TEST(DvfsTest, E5520LadderShape) {
  const DvfsTable table = DvfsTable::e5520();
  // Paper §3.2: steps every 133 MHz, minimum 1.6 GHz (71% of maximum).
  EXPECT_EQ(table.num_levels(), 6u);
  EXPECT_NEAR(table.nominal().freq_ghz, 2.261, 1e-9);
  EXPECT_NEAR(table.level(5).freq_ghz, 1.596, 1e-9);
  EXPECT_NEAR(table.level(5).freq_ghz / table.nominal().freq_ghz, 0.71, 0.01);
  for (std::size_t i = 1; i < table.num_levels(); ++i) {
    EXPECT_NEAR(table.level(i - 1).freq_ghz - table.level(i).freq_ghz, 0.133,
                1e-9);
  }
}

TEST(DvfsTest, VoltageMonotoneNonIncreasing) {
  const DvfsTable table = DvfsTable::e5520();
  for (std::size_t i = 1; i < table.num_levels(); ++i) {
    EXPECT_LE(table.level(i).voltage_v, table.level(i - 1).voltage_v);
  }
}

TEST(DvfsTest, TopOfLadderIsVoltageFlat) {
  // Nehalem's top P-states share VID: shallow VFS scales frequency only.
  const DvfsTable table = DvfsTable::e5520();
  EXPECT_NEAR(table.level(0).voltage_v, table.level(1).voltage_v, 1e-9);
}

TEST(DvfsTest, DeepLadderScalesVoltageSubstantially) {
  const DvfsTable table = DvfsTable::e5520();
  EXPECT_LT(table.level(5).voltage_v, 0.92 * table.level(0).voltage_v);
}

TEST(DvfsTest, NearestLevelExactHit) {
  const DvfsTable table = DvfsTable::e5520();
  EXPECT_EQ(table.nearest_level(1.596), 5u);
  EXPECT_EQ(table.nearest_level(2.261), 0u);
}

TEST(DvfsTest, NearestLevelRounds) {
  const DvfsTable table = DvfsTable::e5520();
  EXPECT_EQ(table.nearest_level(2.2), 0u);
  EXPECT_EQ(table.nearest_level(2.05), 2u);
  EXPECT_EQ(table.nearest_level(0.5), 5u);
  EXPECT_EQ(table.nearest_level(10.0), 0u);
}

TEST(DvfsTest, RejectsEmptyLadder) {
  EXPECT_THROW(DvfsTable({}), std::invalid_argument);
}

TEST(DvfsTest, RejectsUnsortedLadder) {
  EXPECT_THROW(DvfsTable({{1.0, 1.0}, {2.0, 1.1}}), std::invalid_argument);
  EXPECT_THROW(DvfsTable({{2.0, 1.1}, {2.0, 1.0}}), std::invalid_argument);
}

TEST(DvfsTest, CustomLadderAccessible) {
  const DvfsTable table({{3.0, 1.3}, {2.0, 1.1}});
  EXPECT_EQ(table.num_levels(), 2u);
  EXPECT_DOUBLE_EQ(table.level(1).voltage_v, 1.1);
  EXPECT_THROW(table.level(2), std::out_of_range);
}

}  // namespace
}  // namespace dimetrodon::power
