#include "power/cstate.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::power {
namespace {

TEST(CStateTest, C0IsImmediateAndFullPower) {
  const CStateInfo info = cstate_info(CState::kC0);
  EXPECT_EQ(info.entry_latency, 0);
  EXPECT_EQ(info.exit_latency, 0);
  EXPECT_DOUBLE_EQ(info.dynamic_fraction, 1.0);
}

TEST(CStateTest, C1EHasTensOfMicrosecondsTransitions) {
  // Paper §2.2: "Transition times in the tens of us are negligible at quanta
  // lengths measured in ms".
  const CStateInfo info = cstate_info(CState::kC1E);
  EXPECT_GE(info.entry_latency, sim::from_us(5));
  EXPECT_LE(info.entry_latency, sim::from_us(100));
  EXPECT_GE(info.exit_latency, sim::from_us(5));
  EXPECT_LE(info.exit_latency, sim::from_us(100));
}

TEST(CStateTest, C1EDropsVoltageC1DoesNot) {
  EXPECT_GT(cstate_info(CState::kC1E).voltage_override, 0.0);
  EXPECT_LT(cstate_info(CState::kC1).voltage_override, 0.0);
}

TEST(CStateTest, IdleStatesGateAlmostAllDynamicPower) {
  EXPECT_LT(cstate_info(CState::kC1).dynamic_fraction, 0.1);
  EXPECT_LT(cstate_info(CState::kC1E).dynamic_fraction, 0.1);
}

TEST(CStateTest, C1CheaperToEnterThanC1E) {
  EXPECT_LT(cstate_info(CState::kC1).entry_latency,
            cstate_info(CState::kC1E).entry_latency);
}

}  // namespace
}  // namespace dimetrodon::power
