// Full-stack scenarios crossing every module: workloads on the simulated
// server under Dimetrodon and the baseline policies, measured through the
// paper's instrument pipeline.
#include <gtest/gtest.h>

#include "core/analytic_model.hpp"
#include "harness/experiment.hpp"
#include "workload/cool_process.hpp"
#include "workload/cpuburn.hpp"
#include "workload/spec.hpp"
#include "workload/web.hpp"

namespace dimetrodon {
namespace {

harness::ExperimentRunner make_runner(sim::SimTime window = sim::from_sec(10)) {
  sched::MachineConfig cfg;
  harness::MeasurementConfig mc;
  mc.measure_window = window;
  return harness::ExperimentRunner(cfg, mc);
}

TEST(EndToEndTest, ThroughputMatchesAnalyticModel) {
  // §3.3's validation, in miniature: measured completion time within a few
  // percent of D(t) = R + (R/q)(p/(1-p))L, averaged over several seeds.
  const double p = 0.5;
  const double l_ms = 50.0;
  const double work = 5.0;
  double total_measured = 0.0;
  int trials = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    cfg.seed = seed * 7919;
    sched::Machine m(cfg);
    core::DimetrodonController ctl(m);
    ctl.sys_set_global(p, sim::from_ms(l_ms));
    workload::CpuBurnFleet fleet(4, work);
    fleet.deploy(m);
    m.run_until_condition([&] { return fleet.all_done(m); },
                          sim::from_sec(60));
    for (const auto tid : fleet.threads()) {
      total_measured += sim::to_sec(m.thread(tid).finished_at());
      ++trials;
    }
  }
  const double measured = total_measured / trials;
  const double predicted =
      core::AnalyticModel::predicted_runtime(work, 0.1, p, l_ms / 1000.0);
  EXPECT_NEAR(measured / predicted, 1.0, 0.04);
}

TEST(EndToEndTest, EnergyNearRaceToIdleOverEqualWindows) {
  // §3.3's energy validation: Dimetrodon vs race-to-idle over the same
  // window measures within a few percent (97.6%-103.7% in the paper).
  auto runner = make_runner();
  const auto burn = [] {
    return std::make_unique<workload::CpuBurnFleet>(4, 7.0);
  };
  const auto dim = runner.run_to_completion(
      burn, harness::actuation::dimetrodon(0.5, sim::from_ms(50)),
      sim::from_sec(120));
  ASSERT_GT(dim.completion_seconds, 7.0);
  const auto rti = runner.run_window(burn, harness::actuation::none(),
                                     sim::from_sec(dim.completion_seconds));
  const double ratio = dim.meter_energy_j / rti.meter_energy_j;
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.05);
}

TEST(EndToEndTest, PerThreadControlSparesCoolProcess) {
  // Figure 5's core claim: per-thread policies lower system temperature via
  // the hot process while the cool process runs (nearly) unimpeded; global
  // policies punish both.
  struct Outcome {
    double temp;
    double cool_work;
  };
  auto run = [](bool per_thread) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine m(cfg);
    core::DimetrodonController ctl(m);
    workload::SpecFleet hot(*workload::find_spec_profile("calculix"), 4);
    workload::CoolProcess cool;
    hot.deploy(m);
    cool.deploy(m);
    // An aggressive policy, as in the deep-reduction region of Figure 5:
    // under a global scope it stretches the cool process's 6 s bursts ~7x.
    ctl.sys_set_global(0.85, sim::from_ms(100));
    if (per_thread) ctl.sys_shield_thread(cool.thread_id());
    for (int i = 0; i < 4; ++i) {
      m.mark_power_window();
      m.run_for(sim::from_sec(8));
      m.jump_to_average_power_steady_state();
    }
    const double w0 = cool.progress(m);
    m.run_for(sim::from_sec(140));  // a couple of cool-process periods
    return Outcome{m.mean_sensor_temp(), cool.progress(m) - w0};
  };
  const Outcome global = run(false);
  const Outcome per_thread = run(true);
  // Both lower temperature into the same ballpark (the cool process is a
  // minor heat contributor)...
  EXPECT_NEAR(per_thread.temp, global.temp, 3.5);
  // ...but per-thread control preserves the cool process's throughput.
  EXPECT_GT(per_thread.cool_work, 1.3 * global.cool_work);
}

TEST(EndToEndTest, WebQosDegradesGracefullyWithInjection) {
  // Figure 6's shape: mild injection leaves "tolerable" QoS ~intact; heavy
  // injection collapses "good" QoS.
  auto run = [](double p, sim::SimTime l) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine m(cfg);
    core::DimetrodonController ctl(m);
    ctl.sys_set_global(p, l);
    workload::WebWorkload web;
    web.deploy(m);
    m.run_for(sim::from_sec(10));
    web.mark();
    m.run_for(sim::from_sec(30));
    return web.stats_since_mark();
  };
  const auto baseline = run(0.0, 0);
  const auto mild = run(0.25, sim::from_ms(10));
  const auto heavy = run(0.97, sim::from_ms(100));
  EXPECT_GT(baseline.good_fraction(), 0.99);
  EXPECT_GT(mild.tolerable_fraction(), 0.97);
  EXPECT_LT(heavy.good_fraction(), 0.7 * baseline.good_fraction());
}

TEST(EndToEndTest, InjectionCoolsWebServer) {
  auto run = [](double p) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine m(cfg);
    core::DimetrodonController ctl(m);
    if (p > 0) ctl.sys_set_global(p, sim::from_ms(100));
    workload::WebWorkload web;
    web.deploy(m);
    for (int i = 0; i < 3; ++i) {
      m.mark_power_window();
      m.run_for(sim::from_sec(8));
      m.jump_to_average_power_steady_state();
    }
    // Average over a window: web-serving temperatures fluctuate with request
    // bursts, so instantaneous readings are noise.
    double sum = 0.0;
    int samples = 0;
    for (int i = 0; i < 40; ++i) {
      m.run_for(sim::from_ms(500));
      for (std::size_t c = 0; c < m.num_cores(); ++c) {
        sum += m.die_temperature(static_cast<sched::CoreId>(c));
        ++samples;
      }
    }
    return sum / samples;
  };
  // Cooling requires settings strong enough to slow the closed-loop request
  // rate (paper §3.7: light injection merely redistributes idle gaps and can
  // even raise instantaneous load).
  EXPECT_LT(run(0.9), run(0.0) - 0.3);
}

TEST(EndToEndTest, AllSpecProfilesSurviveInjection) {
  // Smoke across the whole Table 1 suite under an aggressive policy.
  for (const auto& profile : workload::spec2006_profiles()) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine m(cfg);
    core::DimetrodonController ctl(m);
    ctl.sys_set_global(0.75, sim::from_ms(25));
    workload::SpecFleet fleet(profile, 4);
    fleet.deploy(m);
    m.run_for(sim::from_sec(5));
    EXPECT_GT(fleet.progress(m), 0.5) << profile.name;
    EXPECT_GT(ctl.stats().injections, 10u) << profile.name;
  }
}

}  // namespace
}  // namespace dimetrodon
