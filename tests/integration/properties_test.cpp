// Property-style sweeps over the full stack: the qualitative laws the
// paper's evaluation rests on must hold across the parameter space.
#include <gtest/gtest.h>

#include <tuple>

#include "core/analytic_model.hpp"
#include "harness/experiment.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon {
namespace {

harness::ExperimentRunner make_runner() {
  sched::MachineConfig cfg;
  harness::MeasurementConfig mc;
  mc.measure_window = sim::from_sec(10);
  return harness::ExperimentRunner(cfg, mc);
}

harness::ExperimentRunner::WorkloadFactory cpuburn4() {
  return [] { return std::make_unique<workload::CpuBurnFleet>(4); };
}

using PL = std::tuple<double, double>;  // p, L(ms)

class InjectionSweep : public ::testing::TestWithParam<PL> {
 protected:
  static harness::RunResult baseline() {
    static const harness::RunResult r =
        make_runner().measure(cpuburn4(), harness::actuation::none());
    return r;
  }
};

TEST_P(InjectionSweep, ThroughputTracksAnalyticModel) {
  const auto [p, l_ms] = GetParam();
  auto runner = make_runner();
  const auto run = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(p, sim::from_ms(l_ms)));
  const auto t = harness::compute_tradeoff(baseline(), run);
  const double predicted_retained =
      core::AnalyticModel::throughput_ratio(0.1, p, l_ms / 1000.0);
  EXPECT_NEAR(t.throughput_retained, predicted_retained,
              0.05 + 0.05 * (1.0 - predicted_retained));
}

TEST_P(InjectionSweep, InjectedDutyMatchesModel) {
  const auto [p, l_ms] = GetParam();
  auto runner = make_runner();
  const auto run = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(p, sim::from_ms(l_ms)));
  const double predicted =
      core::AnalyticModel::idle_duty_fraction(0.1, p, l_ms / 1000.0);
  EXPECT_NEAR(run.injected_idle_fraction, predicted, 0.03 + 0.05 * predicted);
}

TEST_P(InjectionSweep, TemperatureNeverAboveBaseline) {
  const auto [p, l_ms] = GetParam();
  auto runner = make_runner();
  const auto run = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(p, sim::from_ms(l_ms)));
  EXPECT_LE(run.avg_exact_temp_c, baseline().avg_exact_temp_c + 0.3);
}

TEST_P(InjectionSweep, TradeoffBetterThanOneToOne) {
  // The paper: "Dimetrodon achieved at least a 1:1 trade-off ... but
  // typically achieved better" (§3.4), for the continuous (exact) pipeline.
  const auto [p, l_ms] = GetParam();
  auto runner = make_runner();
  const auto run = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(p, sim::from_ms(l_ms)));
  const auto t = harness::compute_tradeoff(baseline(), run);
  if (t.throughput_reduction > 0.02) {
    EXPECT_GT(t.temp_reduction_exact / t.throughput_reduction, 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PLGrid, InjectionSweep,
    ::testing::Values(PL{0.25, 10.0}, PL{0.25, 50.0}, PL{0.5, 5.0},
                      PL{0.5, 25.0}, PL{0.5, 100.0}, PL{0.75, 10.0},
                      PL{0.75, 50.0}));

TEST(InjectionProperties, TemperatureMonotoneInProbability) {
  auto runner = make_runner();
  double prev = 1e9;
  for (const double p : {0.0, 0.25, 0.5, 0.75}) {
    const auto act = p == 0.0
                         ? harness::actuation::none()
                         : harness::actuation::dimetrodon(p, sim::from_ms(50));
    const auto run = runner.measure(cpuburn4(), act);
    EXPECT_LT(run.avg_exact_temp_c, prev + 0.2) << "p=" << p;
    prev = run.avg_exact_temp_c;
  }
}

TEST(InjectionProperties, ShortQuantaMoreEfficientThanLong) {
  // Figure 3's headline: at matched duty cycle, shorter idle quanta achieve
  // a better temperature:throughput trade-off (diminishing marginal benefit
  // of quanta length).
  auto runner = make_runner();
  const auto base = runner.measure(cpuburn4(), harness::actuation::none());
  const auto short_l = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(0.5, sim::from_ms(5)));
  const auto long_l = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(0.5, sim::from_ms(100)));
  const auto t_short = harness::compute_tradeoff(base, short_l);
  const auto t_long = harness::compute_tradeoff(base, long_l);
  const double eff_short =
      t_short.temp_reduction_exact / t_short.throughput_reduction;
  const double eff_long =
      t_long.temp_reduction_exact / t_long.throughput_reduction;
  EXPECT_GT(eff_short, 1.2 * eff_long);
}

TEST(InjectionProperties, VfsBeatsInjectionAtDeepReductions) {
  // Figure 4's crossover: for large temperature reductions VFS's quadratic
  // voltage advantage wins.
  auto runner = make_runner();
  const auto base = runner.measure(cpuburn4(), harness::actuation::none());
  const auto vfs = runner.measure(cpuburn4(), harness::actuation::vfs(5));
  const auto dim = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(0.75, sim::from_ms(50)));
  const auto t_vfs = harness::compute_tradeoff(base, vfs);
  const auto t_dim = harness::compute_tradeoff(base, dim);
  EXPECT_GT(t_vfs.temp_reduction, 0.4);
  EXPECT_GT(t_vfs.efficiency, t_dim.efficiency);
}

TEST(InjectionProperties, InjectionBeatsVfsAtShallowReductions) {
  // ... and for small reductions short-quantum injection wins (the paper's
  // "up to 30%" region).
  auto runner = make_runner();
  const auto base = runner.measure(cpuburn4(), harness::actuation::none());
  const auto vfs = runner.measure(cpuburn4(), harness::actuation::vfs(1));
  const auto dim = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(0.25, sim::from_ms(10)));
  const auto t_vfs = harness::compute_tradeoff(base, vfs);
  const auto t_dim = harness::compute_tradeoff(base, dim);
  EXPECT_GT(t_dim.temp_reduction_exact / t_dim.throughput_reduction,
            t_vfs.temp_reduction_exact / t_vfs.throughput_reduction);
}

TEST(InjectionProperties, TccWorstAtDeepReductions) {
  auto runner = make_runner();
  const auto base = runner.measure(cpuburn4(), harness::actuation::none());
  const auto tcc = runner.measure(cpuburn4(), harness::actuation::tcc(2));
  const auto vfs = runner.measure(cpuburn4(), harness::actuation::vfs(5));
  const auto t_tcc = harness::compute_tradeoff(base, tcc);
  const auto t_vfs = harness::compute_tradeoff(base, vfs);
  EXPECT_LT(t_tcc.efficiency, 1.05);  // "failing to achieve even 1:1"
  EXPECT_LT(t_tcc.efficiency, t_vfs.efficiency);
}

TEST(InjectionProperties, EnergyConservedAcrossPolicies) {
  // Idle injection shifts *when* heat is produced, not the energy per unit
  // of work (modulo the leakage-temperature second-order term): J per unit
  // of completed work stays within a small band of race-to-idle's.
  auto runner = make_runner();
  const auto base = runner.measure(cpuburn4(), harness::actuation::none());
  const auto dim = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(0.5, sim::from_ms(50)));
  const double base_j_per_work = base.avg_power_w / base.throughput;
  // Subtract the idle-floor power spent during injected gaps: compare busy
  // energy. Coarse bound: within 15%.
  EXPECT_NEAR(dim.avg_power_w / dim.throughput / base_j_per_work, 1.0, 0.35);
}

TEST(InjectionProperties, StratifiedMatchesBernoulliMeanBehavior) {
  auto runner = make_runner();
  const auto base = runner.measure(cpuburn4(), harness::actuation::none());
  const auto bern = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon(0.5, sim::from_ms(25)));
  const auto strat = runner.measure(
      cpuburn4(), harness::actuation::dimetrodon_stratified(0.5, sim::from_ms(25)));
  const auto t_bern = harness::compute_tradeoff(base, bern);
  const auto t_strat = harness::compute_tradeoff(base, strat);
  EXPECT_NEAR(t_strat.throughput_retained, t_bern.throughput_retained, 0.03);
  // Deterministic spacing never clumps idle quanta, so at matched duty it
  // cools at least as well as Bernoulli (clumped idles behave like longer,
  // less efficient quanta) — the paper's "smoother curves" suggestion pays.
  EXPECT_GE(t_strat.temp_reduction_exact,
            t_bern.temp_reduction_exact - 0.02);
  EXPECT_LT(t_strat.temp_reduction_exact,
            t_bern.temp_reduction_exact + 0.15);
}

}  // namespace
}  // namespace dimetrodon
