#include "core/power_cap.hpp"

#include <gtest/gtest.h>

#include "workload/cpuburn.hpp"

namespace dimetrodon::core {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

double run_with_cap(double cap_w, double* held_power = nullptr,
                    double* final_p = nullptr) {
  sched::Machine m(small_config());
  DimetrodonController dim(m);
  PowerCapController::Config cfg;
  cfg.power_cap_w = cap_w;
  PowerCapController capper(m, dim, cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(30));  // let the loop converge
  const double e0 = m.energy().total_joules();
  const double w0 = fleet.progress(m);
  m.run_for(sim::from_sec(20));
  if (held_power != nullptr) {
    *held_power = (m.energy().total_joules() - e0) / 20.0;
  }
  if (final_p != nullptr) *final_p = capper.current_probability();
  return (fleet.progress(m) - w0) / 20.0;
}

TEST(PowerCapTest, HoldsPowerNearBudget) {
  double held = 0.0;
  run_with_cap(50.0, &held);
  EXPECT_NEAR(held, 50.0, 3.0);
}

TEST(PowerCapTest, TighterCapMeansLessThroughput) {
  const double thr60 = run_with_cap(60.0);
  const double thr45 = run_with_cap(45.0);
  EXPECT_LT(thr45, thr60 - 0.3);
}

TEST(PowerCapTest, GenerousCapLeavesWorkloadAlone) {
  double held = 0.0;
  double p = 0.0;
  const double thr = run_with_cap(120.0, &held, &p);
  EXPECT_NEAR(thr, 4.0, 0.1);        // unconstrained throughput
  EXPECT_LT(p, 0.02);                // no injection needed
  EXPECT_LT(held, 80.0);             // natural power, far below cap
}

TEST(PowerCapTest, StopFreezesController) {
  sched::Machine m(small_config());
  DimetrodonController dim(m);
  PowerCapController::Config cfg;
  cfg.power_cap_w = 45.0;
  PowerCapController capper(m, dim, cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(5));
  capper.stop();
  const auto updates = capper.updates();
  m.run_for(sim::from_sec(5));
  EXPECT_EQ(capper.updates(), updates);
}

TEST(PowerCapTest, ReportsObservedPower) {
  sched::Machine m(small_config());
  DimetrodonController dim(m);
  PowerCapController::Config cfg;
  cfg.power_cap_w = 55.0;
  PowerCapController capper(m, dim, cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(10));
  EXPECT_GT(capper.last_observed_power_w(), 20.0);
  EXPECT_LT(capper.last_observed_power_w(), 90.0);
  EXPECT_GT(capper.updates(), 30u);
}

}  // namespace
}  // namespace dimetrodon::core
