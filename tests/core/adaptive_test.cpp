#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include "workload/cpuburn.hpp"

namespace dimetrodon::core {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

TEST(AdaptiveControllerTest, ConvergesBelowTargetTemperature) {
  sched::Machine m(small_config());
  DimetrodonController dim(m);
  AdaptiveController::Config cfg;
  cfg.target_temp_c = 52.0;
  cfg.idle_quantum = sim::from_ms(10);  // duty ceiling ~66%: target reachable
  AdaptiveController adaptive(m, dim, cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  // Accelerated settling toward the controlled equilibrium.
  for (int i = 0; i < 4; ++i) {
    m.mark_power_window();
    m.run_for(sim::from_sec(10));
    m.jump_to_average_power_steady_state();
  }
  // The loop limit-cycles a couple of degrees around the setpoint (Bernoulli
  // injection noise); judge the window average, as the paper's methodology
  // does, not an instantaneous reading.
  double sum = 0.0;
  const int samples = 40;
  for (int s = 0; s < samples; ++s) {
    m.run_for(sim::from_ms(500));
    sum += m.mean_sensor_temp();
  }
  const double avg = sum / samples;
  // Unconstrained cpuburn would sit near 64 C; the loop must hold ~target.
  EXPECT_LT(avg, cfg.target_temp_c + 2.5);
  EXPECT_GT(avg, cfg.target_temp_c - 4.0);
  EXPECT_GT(adaptive.current_probability(), 0.05);
  EXPECT_GT(adaptive.updates(), 10u);
}

TEST(AdaptiveControllerTest, ColdSystemGetsNoInjection) {
  sched::Machine m(small_config());
  DimetrodonController dim(m);
  AdaptiveController::Config cfg;
  cfg.target_temp_c = 70.0;  // far above anything the idle machine reaches
  AdaptiveController adaptive(m, dim, cfg);
  m.run_for(sim::from_sec(5));
  EXPECT_DOUBLE_EQ(adaptive.current_probability(), 0.0);
  EXPECT_EQ(dim.stats().injections, 0u);
}

TEST(AdaptiveControllerTest, StopFreezesSetpoint) {
  sched::Machine m(small_config());
  DimetrodonController dim(m);
  AdaptiveController::Config cfg;
  cfg.target_temp_c = 45.0;
  AdaptiveController adaptive(m, dim, cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(5));
  adaptive.stop();
  const auto updates = adaptive.updates();
  m.run_for(sim::from_sec(5));
  EXPECT_EQ(adaptive.updates(), updates);
}

TEST(AdaptiveControllerTest, ProbabilityRespectsCap) {
  sched::Machine m(small_config());
  DimetrodonController dim(m);
  AdaptiveController::Config cfg;
  cfg.target_temp_c = 20.0;  // unreachable: below ambient
  cfg.max_probability = 0.6;
  AdaptiveController adaptive(m, dim, cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(30));
  EXPECT_LE(adaptive.current_probability(), 0.6 + 1e-12);
  EXPECT_GT(adaptive.current_probability(), 0.55);
}

}  // namespace
}  // namespace dimetrodon::core
