#include "core/injection.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dimetrodon::core {
namespace {

TEST(InjectionParamsTest, EnabledRequiresPositivePAndL) {
  EXPECT_FALSE(InjectionParams{}.enabled());
  EXPECT_FALSE((InjectionParams{0.0, sim::from_ms(10)}).enabled());
  EXPECT_FALSE((InjectionParams{0.5, 0}).enabled());
  EXPECT_TRUE((InjectionParams{0.5, sim::from_ms(10)}).enabled());
}

class BernoulliRate : public ::testing::TestWithParam<double> {};

TEST_P(BernoulliRate, LongRunRateMatchesP) {
  const double p = GetParam();
  BernoulliInjection policy{sim::Rng(1234)};
  const InjectionParams params{p, sim::from_ms(10)};
  const int n = 100000;
  int injected = 0;
  for (int i = 0; i < n; ++i) {
    if (policy.decide(1, params, 0).has_value()) ++injected;
  }
  const double rate = static_cast<double>(injected) / n;
  EXPECT_NEAR(rate, p, 4.0 * std::sqrt(p * (1 - p) / n));
}

INSTANTIATE_TEST_SUITE_P(Probabilities, BernoulliRate,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75));

TEST(BernoulliInjectionTest, ReturnsConfiguredQuantum) {
  BernoulliInjection policy{sim::Rng(1)};
  const InjectionParams params{1.0, sim::from_ms(25)};
  const auto q = policy.decide(1, params, 0);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, sim::from_ms(25));
}

TEST(BernoulliInjectionTest, IndependentOfThreadId) {
  // Bernoulli keeps no per-thread state; forget() must be harmless.
  BernoulliInjection policy{sim::Rng(1)};
  policy.forget(42);
  const InjectionParams params{0.5, sim::from_ms(5)};
  EXPECT_NO_THROW((void)policy.decide(42, params, 0));
}

class StratifiedRate : public ::testing::TestWithParam<double> {};

TEST_P(StratifiedRate, ExactProportionOverWindow) {
  // The deterministic policy's count after N decisions is floor-exact: the
  // paper's suggested "more deterministic model ... smoother curves".
  const double p = GetParam();
  StratifiedInjection policy;
  const InjectionParams params{p, sim::from_ms(10)};
  const int n = 10000;
  int injected = 0;
  for (int i = 0; i < n; ++i) {
    if (policy.decide(7, params, 0).has_value()) ++injected;
  }
  EXPECT_NEAR(static_cast<double>(injected) / n, p, 1.0 / n + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, StratifiedRate,
                         ::testing::Values(0.1, 0.25, 0.333, 0.5, 0.75));

TEST(StratifiedInjectionTest, NeverTwoInARowBelowHalf) {
  StratifiedInjection policy;  // staggering shifts phase, not spacing
  const InjectionParams params{0.4, sim::from_ms(10)};
  bool prev = false;
  for (int i = 0; i < 1000; ++i) {
    const bool now = policy.decide(1, params, 0).has_value();
    EXPECT_FALSE(prev && now) << "consecutive injections at p<0.5";
    prev = now;
  }
}

TEST(StratifiedInjectionTest, StaggeredPhasesDifferAcrossThreads) {
  // With staggering, different threads' first-injection positions differ.
  StratifiedInjection policy;
  const InjectionParams params{0.25, sim::from_ms(10)};
  auto first_injection = [&](sched::ThreadId tid) {
    for (int i = 0; i < 16; ++i) {
      if (policy.decide(tid, params, 0).has_value()) return i;
    }
    return -1;
  };
  const int a = first_injection(10);
  const int b = first_injection(11);
  EXPECT_NE(a, -1);
  EXPECT_NE(b, -1);
  EXPECT_NE(a, b);
}

TEST(StratifiedInjectionTest, PerThreadAccumulatorsIndependent) {
  StratifiedInjection policy(/*stagger_phases=*/false);
  const InjectionParams params{0.5, sim::from_ms(10)};
  // Thread 1 consumes three decisions; thread 2's pattern must be unaffected.
  (void)policy.decide(1, params, 0);
  (void)policy.decide(1, params, 0);
  (void)policy.decide(1, params, 0);
  EXPECT_FALSE(policy.decide(2, params, 0).has_value());
  EXPECT_TRUE(policy.decide(2, params, 0).has_value());
}

TEST(StratifiedInjectionTest, ForgetResetsAccumulator) {
  StratifiedInjection policy(/*stagger_phases=*/false);
  const InjectionParams params{0.5, sim::from_ms(10)};
  (void)policy.decide(1, params, 0);  // acc = 0.5
  policy.forget(1);
  EXPECT_FALSE(policy.decide(1, params, 0).has_value());  // acc = 0.5 again
}

}  // namespace
}  // namespace dimetrodon::core
