#include "core/policy_table.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace dimetrodon::core {
namespace {

std::unique_ptr<sched::Thread> make_thread(
    sched::ThreadId id, sched::ThreadClass cls = sched::ThreadClass::kUser) {
  class Noop final : public sched::ThreadBehavior {
    sched::Burst next_burst(sim::SimTime, sim::Rng&) override {
      return {1.0, 1.0};
    }
    sched::BurstOutcome on_burst_complete(sim::SimTime, sim::Rng&) override {
      return sched::BurstOutcome::Exit();
    }
  };
  return std::make_unique<sched::Thread>(id, "t", cls, 0,
                                         std::make_unique<Noop>(),
                                         sim::Rng(id));
}

TEST(PolicyTableTest, DefaultIsDisabled) {
  PolicyTable table;
  auto t = make_thread(1);
  EXPECT_FALSE(table.params_for(*t).enabled());
}

TEST(PolicyTableTest, GlobalAppliesToUserThreads) {
  PolicyTable table;
  table.set_global(InjectionParams{0.5, sim::from_ms(10)});
  auto t = make_thread(1);
  const InjectionParams p = table.params_for(*t);
  EXPECT_TRUE(p.enabled());
  EXPECT_DOUBLE_EQ(p.probability, 0.5);
}

TEST(PolicyTableTest, KernelThreadsExemptByDefault) {
  // Paper §3.1: "We always schedule kernel-level threads."
  PolicyTable table;
  table.set_global(InjectionParams{0.5, sim::from_ms(10)});
  auto k = make_thread(2, sched::ThreadClass::kKernel);
  EXPECT_FALSE(table.params_for(*k).enabled());
}

TEST(PolicyTableTest, KernelExemptionCanBeLifted) {
  PolicyTable table;
  table.set_global(InjectionParams{0.5, sim::from_ms(10)});
  table.set_exempt_kernel_threads(false);
  auto k = make_thread(2, sched::ThreadClass::kKernel);
  EXPECT_TRUE(table.params_for(*k).enabled());
}

TEST(PolicyTableTest, PerThreadOverrideBeatsGlobal) {
  PolicyTable table;
  table.set_global(InjectionParams{0.5, sim::from_ms(10)});
  table.set_thread(1, InjectionParams{0.9, sim::from_ms(1)});
  auto t = make_thread(1);
  EXPECT_DOUBLE_EQ(table.params_for(*t).probability, 0.9);
  auto other = make_thread(2);
  EXPECT_DOUBLE_EQ(table.params_for(*other).probability, 0.5);
}

TEST(PolicyTableTest, OverrideCanShieldFromGlobal) {
  // The per-thread control of §3.6: a "cool" thread is excluded while the
  // global policy throttles everything else.
  PolicyTable table;
  table.set_global(InjectionParams{0.75, sim::from_ms(50)});
  table.set_thread(3, InjectionParams{0.0, 0});
  auto cool = make_thread(3);
  EXPECT_FALSE(table.params_for(*cool).enabled());
}

TEST(PolicyTableTest, ExplicitOverrideAppliesToKernelThreads) {
  PolicyTable table;
  table.set_thread(4, InjectionParams{0.25, sim::from_ms(5)});
  auto k = make_thread(4, sched::ThreadClass::kKernel);
  EXPECT_TRUE(table.params_for(*k).enabled());
}

TEST(PolicyTableTest, ClearRestoresGlobal) {
  PolicyTable table;
  table.set_global(InjectionParams{0.5, sim::from_ms(10)});
  table.set_thread(1, InjectionParams{0.9, sim::from_ms(1)});
  table.clear_thread(1);
  auto t = make_thread(1);
  EXPECT_DOUBLE_EQ(table.params_for(*t).probability, 0.5);
  EXPECT_FALSE(table.has_thread_override(1));
}

TEST(PolicyTableTest, ResetDisablesEverything) {
  PolicyTable table;
  table.set_global(InjectionParams{0.5, sim::from_ms(10)});
  table.set_thread(1, InjectionParams{0.9, sim::from_ms(1)});
  table.reset();
  auto t = make_thread(1);
  EXPECT_FALSE(table.params_for(*t).enabled());
}

}  // namespace
}  // namespace dimetrodon::core
