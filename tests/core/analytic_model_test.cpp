#include "core/analytic_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace dimetrodon::core {
namespace {

TEST(AnalyticModelTest, PaperExampleHalfProbabilityDoublesRuntime) {
  // §2.2: "if p is 50% and L is the same length as a scheduling quantum,
  // then we double the length of time for the job to run".
  EXPECT_DOUBLE_EQ(AnalyticModel::predicted_runtime(10.0, 0.1, 0.5, 0.1),
                   20.0);
  EXPECT_DOUBLE_EQ(AnalyticModel::throughput_ratio(0.1, 0.5, 0.1), 0.5);
}

TEST(AnalyticModelTest, PaperExampleThreeQuartersGivesThreeIdlePerExec) {
  // §2.2: "if we idle with probability 75%, ... there will be 3 idle quanta
  // for every 1 executed quanta".
  EXPECT_DOUBLE_EQ(AnalyticModel::idle_quanta_per_exec_quantum(0.75), 3.0);
}

TEST(AnalyticModelTest, ZeroProbabilityMeansUnchangedRuntime) {
  EXPECT_DOUBLE_EQ(AnalyticModel::predicted_runtime(7.0, 0.1, 0.0, 0.05),
                   7.0);
  EXPECT_DOUBLE_EQ(AnalyticModel::throughput_ratio(0.1, 0.0, 0.05), 1.0);
}

TEST(AnalyticModelTest, RuntimeScalesLinearlyInL) {
  const double base = AnalyticModel::predicted_runtime(10.0, 0.1, 0.5, 0.025);
  const double twice = AnalyticModel::predicted_runtime(10.0, 0.1, 0.5, 0.05);
  EXPECT_NEAR(twice - 10.0, 2.0 * (base - 10.0), 1e-12);
}

TEST(AnalyticModelTest, InvalidProbabilityThrows) {
  EXPECT_THROW(AnalyticModel::idle_quanta_per_exec_quantum(1.0),
               std::invalid_argument);
  EXPECT_THROW(AnalyticModel::idle_quanta_per_exec_quantum(-0.1),
               std::invalid_argument);
}

TEST(AnalyticModelTest, IdleDutyFractionConsistentWithThroughput) {
  // duty + throughput_ratio == 1 by construction.
  for (const double p : {0.1, 0.5, 0.75}) {
    for (const double l : {0.001, 0.01, 0.1}) {
      EXPECT_NEAR(AnalyticModel::idle_duty_fraction(0.1, p, l) +
                      AnalyticModel::throughput_ratio(0.1, p, l),
                  1.0, 1e-12);
    }
  }
}

TEST(AnalyticModelTest, RaceToIdleEnergyComponents) {
  // 10 s at 60 W + 5 s at 20 W.
  EXPECT_DOUBLE_EQ(AnalyticModel::race_to_idle_energy(60.0, 20.0, 10.0, 15.0),
                   700.0);
}

using EnergyParams = std::tuple<double, double>;  // p, L
class EnergyEquality : public ::testing::TestWithParam<EnergyParams> {};

TEST_P(EnergyEquality, DimetrodonEqualsRaceToIdleOverItsWindow) {
  // The paper's equal-energy claim (§2.2): with the same idle power reachable
  // between quanta as after completion, Dimetrodon's energy for the job
  // equals race-to-idle's energy over a window of length D(t).
  const auto [p, l] = GetParam();
  const double u = 65.0;
  const double m = 22.0;
  const double r = 30.0;
  const double q = 0.1;
  const double window = AnalyticModel::predicted_runtime(r, q, p, l);
  EXPECT_NEAR(AnalyticModel::dimetrodon_energy(u, m, r, q, p, l),
              AnalyticModel::race_to_idle_energy(u, m, r, window), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnergyEquality,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9),
                       ::testing::Values(0.001, 0.01, 0.05, 0.1)));

TEST(AnalyticModelTest, PowerLawTradeoffMatchesTable1Form) {
  // cpuburn row of Table 1: alpha=1.092, beta=1.541; T(0.5) ≈ 0.375.
  const double t = AnalyticModel::throughput_reduction_for(1.092, 1.541, 0.5);
  EXPECT_NEAR(t, 1.092 * std::pow(0.5, 1.541), 1e-12);
  EXPECT_GT(t, 0.3);
  EXPECT_LT(t, 0.45);
}

TEST(AnalyticModelTest, PredictedRuntimeMonotoneInP) {
  double prev = 0.0;
  for (const double p : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const double d = AnalyticModel::predicted_runtime(5.0, 0.1, p, 0.05);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace dimetrodon::core
