#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "workload/cpuburn.hpp"

namespace dimetrodon::core {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

TEST(ControllerTest, AttachesAndDetachesRaii) {
  sched::Machine m(small_config());
  {
    DimetrodonController ctl(m);
    EXPECT_EQ(m.injection_hook(), &ctl);
  }
  EXPECT_EQ(m.injection_hook(), nullptr);
}

TEST(ControllerTest, DisabledByDefault) {
  sched::Machine m(small_config());
  DimetrodonController ctl(m);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(1));
  EXPECT_EQ(ctl.stats().injections, 0u);
  EXPECT_EQ(ctl.stats().decisions, 0u);
}

TEST(ControllerTest, GlobalPolicyInjectsAtConfiguredRate) {
  sched::Machine m(small_config());
  DimetrodonController ctl(m);
  ctl.sys_set_global(0.5, sim::from_ms(10));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(30));
  EXPECT_GT(ctl.stats().decisions, 500u);
  EXPECT_NEAR(ctl.observed_injection_rate(), 0.5, 0.06);
}

TEST(ControllerTest, InjectedIdleTimeTracksQuanta) {
  sched::Machine m(small_config());
  DimetrodonController ctl(m);
  ctl.sys_set_global(0.5, sim::from_ms(10));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(10));
  EXPECT_EQ(ctl.stats().injected_idle,
            static_cast<sim::SimTime>(ctl.stats().injections) *
                sim::from_ms(10));
}

TEST(ControllerTest, PerThreadShieldExcludesThread) {
  sched::Machine m(small_config());
  DimetrodonController ctl(m);
  ctl.sys_set_global(0.75, sim::from_ms(50));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  const sched::ThreadId shielded = fleet.threads()[0];
  ctl.sys_shield_thread(shielded);
  m.run_for(sim::from_sec(20));
  EXPECT_EQ(m.thread(shielded).injections_suffered(), 0u);
  // Others are throttled.
  EXPECT_GT(m.thread(fleet.threads()[1]).injections_suffered(), 10u);
  // The shielded thread got far more work done.
  EXPECT_GT(m.thread(shielded).work_completed(),
            1.5 * m.thread(fleet.threads()[1]).work_completed());
}

TEST(ControllerTest, PerThreadTargetOnlyHitsTarget) {
  sched::Machine m(small_config());
  DimetrodonController ctl(m);
  workload::CpuBurnFleet fleet(2);
  fleet.deploy(m);
  const sched::ThreadId hot = fleet.threads()[0];
  ctl.sys_set_thread(hot, 0.5, sim::from_ms(25));
  m.run_for(sim::from_sec(10));
  EXPECT_GT(m.thread(hot).injections_suffered(), 5u);
  EXPECT_EQ(m.thread(fleet.threads()[1]).injections_suffered(), 0u);
}

TEST(ControllerTest, SysDisableStopsInjection) {
  sched::Machine m(small_config());
  DimetrodonController ctl(m);
  ctl.sys_set_global(0.75, sim::from_ms(50));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(5));
  const auto injections_before = ctl.stats().injections;
  EXPECT_GT(injections_before, 0u);
  ctl.sys_disable();
  m.run_for(sim::from_sec(5));
  EXPECT_EQ(ctl.stats().injections, injections_before);
}

TEST(ControllerTest, PerThreadStatsTracked) {
  sched::Machine m(small_config());
  DimetrodonController ctl(m);
  ctl.sys_set_global(0.5, sim::from_ms(10));
  workload::CpuBurnFleet fleet(2);
  fleet.deploy(m);
  m.run_for(sim::from_sec(10));
  const auto& s0 = ctl.thread_stats(fleet.threads()[0]);
  EXPECT_GT(s0.decisions, 0u);
  EXPECT_GT(s0.injections, 0u);
  // Unknown threads report empty stats.
  EXPECT_EQ(ctl.thread_stats(9999).decisions, 0u);
}

TEST(ControllerTest, ResetStatsClearsCounters) {
  sched::Machine m(small_config());
  DimetrodonController ctl(m);
  ctl.sys_set_global(0.5, sim::from_ms(10));
  workload::CpuBurnFleet fleet(2);
  fleet.deploy(m);
  m.run_for(sim::from_sec(5));
  ctl.reset_stats();
  EXPECT_EQ(ctl.stats().decisions, 0u);
  EXPECT_EQ(ctl.stats().injections, 0u);
  EXPECT_EQ(ctl.stats().injected_idle, 0);
}

TEST(ControllerTest, StratifiedPolicyInjectsExactProportion) {
  sched::Machine m(small_config());
  DimetrodonController ctl(m, std::make_unique<StratifiedInjection>());
  ctl.sys_set_global(0.25, sim::from_ms(10));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(30));
  EXPECT_NEAR(ctl.observed_injection_rate(), 0.25, 0.01);
}

TEST(ControllerTest, StratifiedSmootherThanBernoulli) {
  // The deterministic variant's injection-count variance across equal time
  // slices must be far below Bernoulli's (the paper's "smoother curves").
  auto slice_variance = [](bool stratified) {
    sched::MachineConfig cfg = small_config();
    sched::Machine m(cfg);
    std::unique_ptr<InjectionPolicy> policy;
    if (stratified) policy = std::make_unique<StratifiedInjection>();
    DimetrodonController ctl(m, std::move(policy));
    ctl.sys_set_global(0.5, sim::from_ms(50));
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(m);
    double mean = 0.0;
    std::vector<double> counts;
    std::uint64_t prev = 0;
    for (int i = 0; i < 20; ++i) {
      m.run_for(sim::from_sec(2));
      counts.push_back(
          static_cast<double>(ctl.stats().injections - prev));
      prev = ctl.stats().injections;
      mean += counts.back();
    }
    mean /= counts.size();
    double var = 0.0;
    for (const double c : counts) var += (c - mean) * (c - mean);
    return var / counts.size();
  };
  EXPECT_LT(slice_variance(true), slice_variance(false));
}

}  // namespace
}  // namespace dimetrodon::core
