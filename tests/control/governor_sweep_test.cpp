// Governed runs under the sweep engine: the deterministic-replay guard.
// A fleet with closed-loop governors must stay bit-identical across sweep
// thread counts, round-trip through the result cache unchanged, and key its
// cache entries on every governor parameter.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "cluster/fleet_spec.hpp"
#include "runner/sweep_engine.hpp"

namespace dimetrodon::cluster {
namespace {

control::GovernorSpec pid_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kPid;
  g.pid.setpoint_c = 45.0;
  g.pid.kp = 0.05;
  g.pid.ki = 0.012;
  return g;
}

control::GovernorSpec hysteresis_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kHysteresis;
  g.hysteresis.trip_c = 45.0;
  g.hysteresis.release_c = 43.0;
  g.hysteresis.hot_probability = 0.5;
  return g;
}

control::GovernorSpec hybrid_spec() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kHybrid;
  g.hybrid.baseline_probability = 0.15;
  g.hybrid.setpoint_c = 45.0;
  g.hybrid.kp = 0.04;
  g.hybrid.ki = 0.01;
  return g;
}

// A mixed fleet: one governed node, one open-loop preventive node — the
// composition FleetSpec's per-position overrides support.
ClusterRunSpec governed_spec(control::GovernorSpec governor) {
  sched::MachineConfig machine;
  machine.enable_meter = false;
  workload::WebWorkload::Config web = ClusterConfig::open_loop_web();
  web.demand_mean_s = 0.0040;
  return FleetSpec::racks(1)
      .nodes_per_rack(2)
      .with_machine(machine)
      .with_web(web)
      .with_cooling(0.5, 0.7)
      .with_load(900.0)
      .override_position(0, {.governor = std::move(governor)})
      .override_position(1, {.injection_probability = 0.3})
      .for_duration(sim::from_sec(4))
      .build();
}

std::vector<runner::RunSpec> governed_grid() {
  return {to_run_spec(governed_spec(pid_spec())),
          to_run_spec(governed_spec(hysteresis_spec())),
          to_run_spec(governed_spec(hybrid_spec()))};
}

runner::SweepEngineConfig quiet(std::size_t threads, std::string cache_dir) {
  runner::SweepEngineConfig cfg;
  cfg.threads = threads;
  cfg.use_cache = !cache_dir.empty();
  cfg.cache_dir = std::move(cache_dir);
  cfg.progress = false;
  return cfg;
}

void expect_same_record(const runner::RunRecord& a,
                        const runner::RunRecord& b) {
  EXPECT_EQ(a.result.label, b.result.label);
  EXPECT_EQ(a.result.throughput, b.result.throughput);
  EXPECT_EQ(a.result.sim_seconds, b.result.sim_seconds);
  ASSERT_TRUE(a.result.qos.has_value());
  ASSERT_TRUE(b.result.qos.has_value());
  EXPECT_EQ(a.result.qos->total, b.result.qos->total);
  EXPECT_EQ(a.result.qos->mean_latency_s, b.result.qos->mean_latency_s);
  EXPECT_EQ(a.result.qos->p99_latency_s, b.result.qos->p99_latency_s);
  EXPECT_TRUE(a.result.counters == b.result.counters);
  // extras carry the stability metrics: bitwise equality here is the
  // replay guard for the whole control loop.
  EXPECT_EQ(a.extra, b.extra);
}

TEST(GovernorSweepTest, GovernedRunsAreBitIdenticalAcrossThreadCounts) {
  runner::SweepEngine serial(sched::MachineConfig{}, quiet(1, ""));
  runner::SweepEngine parallel(sched::MachineConfig{}, quiet(4, ""));
  const auto grid = governed_grid();
  const auto rs = serial.run(grid);
  const auto rp = parallel.run(grid);
  ASSERT_EQ(rs.records.size(), grid.size());
  ASSERT_EQ(rp.records.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_record(rs.records[i], rp.records[i]);
  }
}

TEST(GovernorSweepTest, GovernedRunsRoundTripThroughCache) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "dimetrodon_governor_cache_test";
  std::filesystem::remove_all(dir);
  runner::SweepEngine engine(sched::MachineConfig{}, quiet(2, dir.string()));
  const auto grid = governed_grid();

  const auto cold = engine.run(grid);
  EXPECT_EQ(engine.last_metrics().executed, grid.size());
  const auto warm = engine.run(grid);
  // The replay guard: a warm re-run simulates nothing and reproduces every
  // record (stability extras included) bit-for-bit.
  EXPECT_EQ(engine.last_metrics().executed, 0u);
  EXPECT_EQ(engine.last_metrics().cache_hits, grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE(i);
    expect_same_record(cold.records[i], warm.records[i]);
    // Governed runs produce live stability metrics, straight from the cache.
    EXPECT_GT(warm.records[i].metric("fleet_peak_sensor_c"), 0.0);
    EXPECT_GE(warm.records[i].metric("duty_reversals"), 0.0);
    EXPECT_GE(warm.records[i].metric("osc_amp_duty"), 0.0);
  }
  std::filesystem::remove_all(dir);
}

TEST(GovernorSweepTest, GovernedFleetRecordsTripsAndStability) {
  // Direct (non-engine) run: the governed node trips its mid-40s threshold
  // under this load and the per-node stats + fleet stability reflect it.
  ClusterRunSpec spec = governed_spec(hysteresis_spec());
  spec.duration = sim::from_sec(8);
  Cluster fleet(spec.cluster, make_policy(PolicyKind::kRoundRobin));
  const ClusterResult r = fleet.run(spec.duration);
  EXPECT_GT(r.stability.samples, 0u);
  EXPECT_GT(r.counters.governor_samples, 0u);
  EXPECT_GE(r.counters.governor_trips, 1u);
  EXPECT_EQ(r.nodes[0].governor_trips, r.counters.governor_trips);
  EXPECT_EQ(r.nodes[1].governor_trips, 0u);  // open-loop node has no governor
  EXPECT_GT(r.total_energy_j, 0.0);
}

TEST(GovernorSweepTest, CanonicalTagDistinguishesGovernorParameters) {
  const ClusterRunSpec base = governed_spec(pid_spec());
  const std::string tag = canonical_cluster_tag(base);

  ClusterRunSpec kind = base;
  kind.cluster.nodes[0].governor = hysteresis_spec();
  ClusterRunSpec setpoint = base;
  setpoint.cluster.nodes[0].governor.pid.setpoint_c += 1.0;
  ClusterRunSpec period = base;
  period.cluster.nodes[0].governor.sample_period *= 2;
  ClusterRunSpec open_loop = base;
  open_loop.cluster.nodes[0].governor = control::GovernorSpec{};

  EXPECT_NE(tag, canonical_cluster_tag(kind));
  EXPECT_NE(tag, canonical_cluster_tag(setpoint));
  EXPECT_NE(tag, canonical_cluster_tag(period));
  EXPECT_NE(tag, canonical_cluster_tag(open_loop));
  // And the run is the same spec twice -> the tag is too.
  EXPECT_EQ(tag, canonical_cluster_tag(governed_spec(pid_spec())));
}

}  // namespace
}  // namespace dimetrodon::cluster
