// Unit tests for the closed-loop governors (pure controllers over synthetic
// sensor frames) and the injection arbiter that serializes their actuation.
#include "control/governor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "control/arbiter.hpp"
#include "sched/machine.hpp"
#include "sim/canon.hpp"

namespace dimetrodon::control {
namespace {

SensorFrame frame(double max_c, double dt_s = 0.05) {
  SensorFrame f;
  f.dt_s = dt_s;
  f.temps_c = {max_c};
  f.max_c = max_c;
  f.mean_c = max_c;
  return f;
}

// --- hysteresis -------------------------------------------------------------

TEST(HysteresisGovernorTest, TripsAtTripPointHoldsUntilRelease) {
  HysteresisConfig cfg;
  cfg.trip_c = 70.0;
  cfg.release_c = 66.0;
  cfg.hot_probability = 0.6;
  cfg.idle_probability = 0.1;
  HysteresisGovernor gov(cfg);

  EXPECT_EQ(gov.update(frame(69.0)), 0.1);  // below trip: idle duty
  EXPECT_FALSE(gov.tripped());
  EXPECT_EQ(gov.update(frame(70.0)), 0.6);  // at trip: engage
  EXPECT_TRUE(gov.tripped());
  // Inside the band (release <= T < trip): the latch holds.
  EXPECT_EQ(gov.update(frame(68.0)), 0.6);
  EXPECT_EQ(gov.update(frame(66.0)), 0.6);
  EXPECT_TRUE(gov.tripped());
  // Strictly below the release point: let go.
  EXPECT_EQ(gov.update(frame(65.0)), 0.1);
  EXPECT_FALSE(gov.tripped());
}

TEST(HysteresisGovernorTest, BareThresholdFlapsWhereBandHolds) {
  // The same reading sequence oscillating one degree around the trip point:
  // the bare threshold follows every crossing, the banded governor latches.
  HysteresisConfig bare;
  bare.trip_c = bare.release_c = 70.0;
  HysteresisConfig banded = bare;
  banded.release_c = 67.0;
  HysteresisGovernor threshold(bare), hysteresis(banded);

  const double seq[] = {70.0, 69.0, 70.0, 69.0, 70.0, 69.0};
  int threshold_flips = 0, hysteresis_flips = 0;
  bool t_last = false, h_last = false;
  for (const double c : seq) {
    threshold.update(frame(c));
    hysteresis.update(frame(c));
    if (threshold.tripped() != t_last) ++threshold_flips;
    if (hysteresis.tripped() != h_last) ++hysteresis_flips;
    t_last = threshold.tripped();
    h_last = hysteresis.tripped();
  }
  EXPECT_EQ(threshold_flips, 6);  // every sample crosses the bare threshold
  EXPECT_EQ(hysteresis_flips, 1);  // trips once, never releases inside band
}

TEST(HysteresisGovernorTest, ResetClearsTheLatch) {
  HysteresisConfig cfg;
  cfg.trip_c = 70.0;
  cfg.release_c = 60.0;
  HysteresisGovernor gov(cfg);
  gov.update(frame(75.0));
  ASSERT_TRUE(gov.tripped());
  gov.reset();
  EXPECT_FALSE(gov.tripped());
}

TEST(HysteresisGovernorTest, InvertedBandThrows) {
  HysteresisConfig cfg;
  cfg.trip_c = 60.0;
  cfg.release_c = 65.0;
  EXPECT_THROW(HysteresisGovernor{cfg}, std::invalid_argument);
}

TEST(HysteresisGovernorTest, NameReflectsDegenerateBand) {
  HysteresisConfig banded;
  banded.trip_c = 70.0;
  banded.release_c = 66.0;
  EXPECT_EQ(HysteresisGovernor(banded).name(), "hysteresis");
  banded.release_c = banded.trip_c;
  EXPECT_EQ(HysteresisGovernor(banded).name(), "threshold");
}

// --- pid --------------------------------------------------------------------

TEST(PidGovernorTest, OutputIsClampedToProbabilityRange) {
  PidConfig cfg;
  cfg.setpoint_c = 50.0;
  cfg.kp = 1.0;  // huge gain: unclamped output far outside [min, max]
  cfg.ki = 0.0;
  cfg.min_probability = 0.05;
  cfg.max_probability = 0.9;
  PidGovernor gov(cfg);
  EXPECT_EQ(gov.update(frame(90.0)), 0.9);   // +40 C error -> clamped high
  EXPECT_EQ(gov.update(frame(10.0)), 0.05);  // -40 C error -> clamped low
}

TEST(PidGovernorTest, AntiWindupFreezesIntegralAtSaturation) {
  PidConfig cfg;
  cfg.setpoint_c = 50.0;
  cfg.kp = 0.0;
  cfg.ki = 0.1;
  cfg.max_probability = 0.5;
  PidGovernor gov(cfg);

  // 100 s of +10 C error. Naive integration would accumulate 1000 C*s
  // (ki * integral = 100); conditional integration stops once the output
  // saturates at 0.5, so the integral parks just past the clamp.
  for (int i = 0; i < 100; ++i) gov.update(frame(60.0, 1.0));
  EXPECT_LE(cfg.ki * gov.integral(), 0.5 + cfg.ki * 10.0 * 1.0);

  // Recovery is immediate once the error flips: a wound-up integral would
  // pin the output high for ~100 further seconds.
  double duty = 1.0;
  int steps = 0;
  while (duty > 0.0 && steps < 20) {
    duty = gov.update(frame(40.0, 1.0));
    ++steps;
  }
  EXPECT_LT(steps, 20) << "integral wind-up: output stuck high";
}

TEST(PidGovernorTest, DerivativeActsOnMeasurementWithoutFirstSampleKick) {
  PidConfig cfg;
  cfg.setpoint_c = 50.0;
  cfg.kp = 0.0;
  cfg.ki = 0.0;
  cfg.kd = 1.0;
  PidGovernor gov(cfg);
  // First frame: no previous measurement, derivative must be zero.
  EXPECT_EQ(gov.update(frame(80.0, 1.0)), 0.0);
  // Falling measurement -> negative derivative -> clamped at min (0).
  EXPECT_EQ(gov.update(frame(70.0, 1.0)), 0.0);
  // Rising measurement -> positive derivative contributes.
  EXPECT_GT(gov.update(frame(80.0, 1.0)), 0.0);
}

TEST(PidGovernorTest, ResetForgetsState) {
  PidConfig cfg;
  cfg.setpoint_c = 50.0;
  PidGovernor gov(cfg);
  // +2 C error: small enough that the default gains stay unsaturated, so
  // the integral actually accumulates.
  for (int i = 0; i < 10; ++i) gov.update(frame(52.0, 1.0));
  ASSERT_GT(gov.integral(), 0.0);
  gov.reset();
  EXPECT_EQ(gov.integral(), 0.0);
}

TEST(PidGovernorTest, InvertedClampThrows) {
  PidConfig cfg;
  cfg.min_probability = 0.8;
  cfg.max_probability = 0.2;
  EXPECT_THROW(PidGovernor{cfg}, std::invalid_argument);
}

// --- hybrid -----------------------------------------------------------------

TEST(HybridGovernorTest, AtSetpointRunsThePreventiveBaseline) {
  HybridConfig cfg;
  cfg.baseline_probability = 0.25;
  cfg.setpoint_c = 50.0;
  HybridGovernor gov(cfg);
  // Zero error, zero integral: exactly the paper's open-loop duty.
  EXPECT_EQ(gov.update(frame(50.0, 1.0)), 0.25);
  EXPECT_EQ(gov.trim(), 0.0);
}

TEST(HybridGovernorTest, TrimIsClampedToItsAuthority) {
  HybridConfig cfg;
  cfg.baseline_probability = 0.4;
  cfg.setpoint_c = 50.0;
  cfg.kp = 1.0;
  cfg.ki = 0.0;
  cfg.max_delta = 0.2;
  HybridGovernor gov(cfg);
  EXPECT_EQ(gov.update(frame(90.0, 1.0)), 0.4 + 0.2);  // trim caps at +delta
  EXPECT_EQ(gov.trim(), 0.2);
  EXPECT_EQ(gov.update(frame(10.0, 1.0)), 0.4 - 0.2);  // and at -delta
  EXPECT_EQ(gov.trim(), -0.2);
}

TEST(HybridGovernorTest, DutyStaysInValidRange) {
  HybridConfig cfg;
  cfg.baseline_probability = 0.1;
  cfg.setpoint_c = 50.0;
  cfg.kp = 1.0;
  cfg.max_delta = 0.5;
  cfg.max_probability = 0.95;
  HybridGovernor gov(cfg);
  // Baseline 0.1 with trim -0.5 would be negative: clamps to 0.
  EXPECT_EQ(gov.update(frame(10.0, 1.0)), 0.0);
  gov.reset();
  EXPECT_EQ(gov.trim(), 0.0);
}

TEST(HybridGovernorTest, NegativeAuthorityThrows) {
  HybridConfig cfg;
  cfg.max_delta = -0.1;
  EXPECT_THROW(HybridGovernor{cfg}, std::invalid_argument);
}

// --- spec / factory ---------------------------------------------------------

TEST(GovernorSpecTest, FactoryMatchesKind) {
  GovernorSpec none;
  EXPECT_EQ(make_governor(none), nullptr);
  EXPECT_FALSE(none.enabled());

  GovernorSpec hys;
  hys.kind = GovernorKind::kHysteresis;
  EXPECT_EQ(make_governor(hys)->name(), "hysteresis");
  GovernorSpec pid;
  pid.kind = GovernorKind::kPid;
  EXPECT_EQ(make_governor(pid)->name(), "pid");
  GovernorSpec hybrid;
  hybrid.kind = GovernorKind::kHybrid;
  EXPECT_EQ(make_governor(hybrid)->name(), "hybrid");
}

TEST(GovernorSpecTest, ReferenceTemperatureTracksTheActiveController) {
  GovernorSpec spec;
  EXPECT_EQ(governor_reference_c(spec), 0.0);
  spec.kind = GovernorKind::kHysteresis;
  spec.hysteresis.trip_c = 71.0;
  EXPECT_EQ(governor_reference_c(spec), 71.0);
  spec.kind = GovernorKind::kPid;
  spec.pid.setpoint_c = 64.0;
  EXPECT_EQ(governor_reference_c(spec), 64.0);
  spec.kind = GovernorKind::kHybrid;
  spec.hybrid.setpoint_c = 58.0;
  EXPECT_EQ(governor_reference_c(spec), 58.0);
}

TEST(GovernorSpecTest, CanonicalTextDistinguishesEveryBehavioralField) {
  GovernorSpec base;
  base.kind = GovernorKind::kPid;
  sim::CanonWriter wa;
  append_canonical_governor(wa, base);
  const std::string a = wa.take();

  auto differs = [&](auto mutate) {
    GovernorSpec other = base;
    mutate(other);
    sim::CanonWriter wb;
    append_canonical_governor(wb, other);
    return a != wb.take();
  };
  EXPECT_TRUE(differs([](GovernorSpec& s) { s.kind = GovernorKind::kHybrid; }));
  EXPECT_TRUE(differs([](GovernorSpec& s) { s.sample_period *= 2; }));
  EXPECT_TRUE(differs([](GovernorSpec& s) { s.quantum *= 2; }));
  EXPECT_TRUE(differs([](GovernorSpec& s) { s.stability_band_c += 0.5; }));
  EXPECT_TRUE(differs([](GovernorSpec& s) { s.pid.setpoint_c += 1.0; }));
  EXPECT_TRUE(differs([](GovernorSpec& s) { s.pid.ki += 0.001; }));
  EXPECT_TRUE(differs([](GovernorSpec& s) { s.hysteresis.release_c -= 1.0; }));
  EXPECT_TRUE(differs([](GovernorSpec& s) {
    s.hybrid.baseline_probability += 0.01;
  }));
}

// --- arbiter ----------------------------------------------------------------

sched::MachineConfig quiet_machine() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

TEST(InjectionArbiterTest, MaxProbabilityWinsTiesGoToLowestChannel) {
  sched::Machine m(quiet_machine());
  core::DimetrodonController ctl(m);
  InjectionArbiter arb(ctl);

  auto& preventive =
      arb.claim(InjectionArbiter::Channel::kPreventive, "preventive");
  auto& governor = arb.claim(InjectionArbiter::Channel::kGovernor, "governor");

  preventive.request(0.3, sim::from_ms(10));
  EXPECT_EQ(arb.resolved_probability(), 0.3);
  EXPECT_EQ(ctl.table().global().probability, 0.3);

  governor.request(0.5, sim::from_ms(5));
  EXPECT_EQ(arb.resolved_probability(), 0.5);
  EXPECT_EQ(arb.winner(), InjectionArbiter::Channel::kGovernor);
  EXPECT_EQ(ctl.table().global().quantum, sim::from_ms(5));

  // Tie: the lower channel index (preventive) wins deterministically.
  governor.request(0.3, sim::from_ms(5));
  EXPECT_EQ(arb.winner(), InjectionArbiter::Channel::kPreventive);
  EXPECT_EQ(ctl.table().global().quantum, sim::from_ms(10));
}

TEST(InjectionArbiterTest, WithdrawFallsBackToNextRequest) {
  sched::Machine m(quiet_machine());
  core::DimetrodonController ctl(m);
  InjectionArbiter arb(ctl);
  auto& preventive =
      arb.claim(InjectionArbiter::Channel::kPreventive, "preventive");
  auto& governor = arb.claim(InjectionArbiter::Channel::kGovernor, "governor");

  preventive.request(0.2, sim::from_ms(10));
  governor.request(0.7, sim::from_ms(5));
  ASSERT_EQ(arb.resolved_probability(), 0.7);

  governor.withdraw();
  EXPECT_FALSE(governor.engaged());
  EXPECT_EQ(arb.resolved_probability(), 0.2);
  EXPECT_EQ(ctl.table().global().probability, 0.2);

  preventive.withdraw();
  EXPECT_EQ(arb.resolved_probability(), 0.0);
  EXPECT_FALSE(ctl.table().global().enabled());
}

TEST(InjectionArbiterTest, DoubleClaimThrows) {
  sched::Machine m(quiet_machine());
  core::DimetrodonController ctl(m);
  InjectionArbiter arb(ctl);
  arb.claim(InjectionArbiter::Channel::kGovernor, "pid");
  EXPECT_TRUE(arb.claimed(InjectionArbiter::Channel::kGovernor));
  EXPECT_EQ(arb.owner(InjectionArbiter::Channel::kGovernor), "pid");
  // Two governors on one machine is a configuration error, not a silent tie.
  EXPECT_THROW(arb.claim(InjectionArbiter::Channel::kGovernor, "hysteresis"),
               std::logic_error);
}

TEST(InjectionArbiterTest, WritesOnlyOnResolvedChange) {
  sched::Machine m(quiet_machine());
  core::DimetrodonController ctl(m);
  InjectionArbiter arb(ctl);
  auto& port = arb.claim(InjectionArbiter::Channel::kGovernor, "governor");

  port.request(0.4, sim::from_ms(10));
  const std::uint64_t after_first = arb.writes();
  EXPECT_GE(after_first, 1u);
  // Re-requesting the identical (p, quantum) must not touch the controller.
  port.request(0.4, sim::from_ms(10));
  EXPECT_EQ(arb.writes(), after_first);
  port.request(0.4, sim::from_ms(20));  // quantum change is a real change
  EXPECT_EQ(arb.writes(), after_first + 1);
}

}  // namespace
}  // namespace dimetrodon::control
