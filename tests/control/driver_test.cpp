// GovernorDriver integration: sampling cadence, actuation through the
// arbiter, quantized-sensor enforcement, thermal-clock parity, determinism,
// and coexistence with the power-capping PI loop.
#include "control/driver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "control/arbiter.hpp"
#include "core/controller.hpp"
#include "core/power_cap.hpp"
#include "obs/trace_sink.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon::control {
namespace {

sched::MachineConfig base_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

// cpuburn x4 crosses 46 C (quantized) after ~2 s on the default floorplan,
// so a mid-40s trip point exercises trip and release within a short run.
GovernorSpec hysteresis_spec(double trip_c = 46.0, double release_c = 44.0) {
  GovernorSpec spec;
  spec.kind = GovernorKind::kHysteresis;
  spec.hysteresis.trip_c = trip_c;
  spec.hysteresis.release_c = release_c;
  spec.hysteresis.hot_probability = 0.6;
  return spec;
}

GovernorSpec pid_spec(double setpoint_c = 47.0) {
  GovernorSpec spec;
  spec.kind = GovernorKind::kPid;
  spec.pid.setpoint_c = setpoint_c;
  spec.pid.kp = 0.05;
  spec.pid.ki = 0.02;
  return spec;
}

struct GovernedMachine {
  explicit GovernedMachine(GovernorSpec spec,
                           sched::MachineConfig cfg = base_config())
      : machine(cfg),
        controller(machine),
        arbiter(controller),
        driver(machine, arbiter, spec),
        fleet(4) {
    fleet.deploy(machine);
  }

  sched::Machine machine;
  core::DimetrodonController controller;
  InjectionArbiter arbiter;
  GovernorDriver driver;
  workload::CpuBurnFleet fleet;
};

std::vector<double> die_temps(const sched::Machine& m) {
  std::vector<double> t;
  for (std::size_t i = 0; i < m.num_physical_cores(); ++i) {
    t.push_back(m.die_temperature(static_cast<sched::CoreId>(i)));
  }
  return t;
}

TEST(GovernorDriverTest, RejectsDisabledSpecAndBadPeriod) {
  sched::Machine m(base_config());
  core::DimetrodonController ctl(m);
  InjectionArbiter arb(ctl);
  EXPECT_THROW(GovernorDriver(m, arb, GovernorSpec{}), std::invalid_argument);
  GovernorSpec bad = hysteresis_spec();
  bad.sample_period = 0;
  EXPECT_THROW(GovernorDriver(m, arb, bad), std::invalid_argument);
  // A failed construction must not leak the channel claim: a valid driver
  // can still be built on the same arbiter afterwards.
  EXPECT_FALSE(arb.claimed(InjectionArbiter::Channel::kGovernor));
  GovernorDriver ok(m, arb, hysteresis_spec());
  EXPECT_TRUE(arb.claimed(InjectionArbiter::Channel::kGovernor));
}

TEST(GovernorDriverTest, SamplesAtTheConfiguredPeriod) {
  GovernorSpec spec = hysteresis_spec();
  spec.sample_period = sim::from_ms(50);
  GovernedMachine gm(spec);
  gm.machine.run_for(sim::from_sec(5));
  // One sample per 50 ms period; the sample at exactly t=5 s may or may not
  // run depending on horizon handling, so allow one off.
  EXPECT_GE(gm.driver.stats().samples, 99u);
  EXPECT_LE(gm.driver.stats().samples, 101u);
  // Probes flow into the machine counter registry.
  const obs::CounterTotals t = gm.machine.counters().totals();
  EXPECT_EQ(t.governor_samples, gm.driver.stats().samples);
  EXPECT_EQ(t.governor_trips, gm.driver.stats().trips);
  EXPECT_EQ(t.governor_releases, gm.driver.stats().releases);
  EXPECT_EQ(t.duty_changes, gm.driver.stats().duty_changes);
  EXPECT_EQ(t.duty_reversals, gm.driver.stats().duty_reversals);
}

TEST(GovernorDriverTest, TripActuatesTheControllerThroughTheArbiter) {
  GovernedMachine gm(hysteresis_spec());
  gm.machine.run_for(sim::from_sec(5));
  // cpuburn reaches the 46 C trip: injection engaged at the governor's duty.
  EXPECT_GE(gm.driver.stats().trips, 1u);
  EXPECT_TRUE(gm.driver.governor().tripped());
  EXPECT_EQ(gm.driver.last_duty(), 0.6);
  EXPECT_EQ(gm.arbiter.resolved_probability(), 0.6);
  EXPECT_EQ(gm.controller.table().global().probability, 0.6);
  EXPECT_EQ(gm.arbiter.winner(), InjectionArbiter::Channel::kGovernor);
}

TEST(GovernorDriverTest, StopHaltsSampling) {
  GovernedMachine gm(hysteresis_spec());
  gm.machine.run_for(sim::from_sec(1));
  gm.driver.stop();
  const auto samples = gm.driver.stats().samples;
  gm.machine.run_for(sim::from_sec(1));
  EXPECT_EQ(gm.driver.stats().samples, samples);
}

// The sensor-isolation invariant: a governor only ever sees quantized
// (whole-degree) readings. Every kGovernorSample trace event carries the
// temperature the governor was fed; the continuous model state is fractional
// essentially always, so integer-valued samples throughout a warm run are
// evidence the driver read through CoreTempSensor::read(), not read_exact().
TEST(GovernorDriverTest, GovernorsSeeOnlyQuantizedTemperatures) {
  auto sink = std::make_shared<obs::RingBufferSink>();
  sched::MachineConfig cfg = base_config();
  cfg.trace_sink_factory = [sink] { return sink; };
  GovernedMachine gm(pid_spec(), cfg);
  gm.machine.run_for(sim::from_sec(4));

  std::size_t sample_events = 0;
  for (const auto& e : sink->snapshot()) {
    if (e.kind != obs::EventKind::kGovernorSample) continue;
    ++sample_events;
    EXPECT_EQ(e.value, std::floor(e.value))
        << "governor saw a fractional temperature at t=" << e.at;
  }
  EXPECT_GT(sample_events, 0u);
  // Non-degenerate check: the underlying model temperature is fractional, so
  // the whole-degree samples above really are the quantizer at work.
  EXPECT_NE(gm.machine.sensor(0).read_exact(),
            std::floor(gm.machine.sensor(0).read_exact()));
}

// A governor sample is an interaction point of the lazy thermal clock, not a
// new periodic substep: with the watchdog pinned to the substep period the
// governed fast path advances at exactly the reference stepper's instants
// and the whole governed simulation is bit-identical.
TEST(GovernorDriverTest, ReferenceStepperParityUnderGovernedRun) {
  GovernorSpec spec = hysteresis_spec();
  spec.sample_period = sim::from_ms(50);

  sched::MachineConfig ref_cfg = base_config();
  ref_cfg.thermal_reference_stepper = true;
  sched::MachineConfig fast_cfg = base_config();
  fast_cfg.thermal_watchdog = fast_cfg.thermal_substep;

  GovernedMachine ref(spec, ref_cfg);
  GovernedMachine fast(spec, fast_cfg);
  ref.machine.run_for(sim::from_sec(3));
  fast.machine.run_for(sim::from_sec(3));

  EXPECT_EQ(die_temps(ref.machine), die_temps(fast.machine));
  EXPECT_EQ(ref.machine.energy().total_joules(),
            fast.machine.energy().total_joules());
  EXPECT_EQ(ref.driver.stats().samples, fast.driver.stats().samples);
  EXPECT_EQ(ref.driver.stats().trips, fast.driver.stats().trips);
  EXPECT_EQ(ref.driver.last_duty(), fast.driver.last_duty());
}

TEST(GovernorDriverTest, GovernedRunsAreDeterministic) {
  auto run = [] {
    GovernedMachine gm(pid_spec());
    gm.machine.run_for(sim::from_sec(4));
    return std::make_pair(die_temps(gm.machine),
                          gm.driver.stability_metrics());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second.samples, b.second.samples);
  EXPECT_EQ(a.second.duty_reversals, b.second.duty_reversals);
  EXPECT_EQ(a.second.duty_mean, b.second.duty_mean);
  EXPECT_EQ(a.second.osc_amplitude_duty, b.second.osc_amplitude_duty);
  EXPECT_EQ(a.second.osc_amplitude_temp_c, b.second.osc_amplitude_temp_c);
  EXPECT_EQ(a.second.overshoot_c, b.second.overshoot_c);
  EXPECT_EQ(a.second.settling_time_s, b.second.settling_time_s);
}

TEST(GovernorDriverTest, StabilityMetricsAreSane) {
  GovernedMachine gm(pid_spec());
  gm.machine.run_for(sim::from_sec(6));
  const StabilityMetrics m = gm.driver.stability_metrics();
  EXPECT_EQ(m.samples, gm.driver.stats().samples);
  EXPECT_GE(m.duty_mean, 0.0);
  EXPECT_LE(m.duty_mean, 1.0);
  EXPECT_GE(m.osc_amplitude_duty, 0.0);
  EXPECT_GE(m.osc_amplitude_temp_c, 0.0);
  EXPECT_GE(m.overshoot_c, 0.0);
  // Settling time is either the -1 "never settled" sentinel or a time within
  // the run.
  EXPECT_GE(m.settling_time_s, -1.0);
  EXPECT_LE(m.settling_time_s, 6.0);
  EXPECT_EQ(m.duty_reversals, gm.driver.stats().duty_reversals);
}

// The satellite interaction case: a power cap engaged while a PID governor
// ramps. Both route through the arbiter (the cap via set_output), so neither
// clobbers the other's sys_set_global writes, and the combined loop must not
// ring: the PID's duty reversals stay bounded well below the sample count.
TEST(GovernorDriverTest, PowerCapAndPidComposeWithoutRinging) {
  sched::Machine machine(base_config());
  core::DimetrodonController controller(machine);
  InjectionArbiter arbiter(controller);
  GovernorDriver driver(machine, arbiter, pid_spec(47.0));

  core::PowerCapController::Config cap_cfg;
  cap_cfg.power_cap_w = 50.0;  // bites on cpuburn x4
  core::PowerCapController capper(machine, controller, cap_cfg);
  auto& cap_port =
      arbiter.claim(InjectionArbiter::Channel::kPowerCap, "power-cap");
  capper.set_output([&cap_port](double p, sim::SimTime quantum) {
    cap_port.request(p, quantum);
  });

  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  machine.run_for(sim::from_sec(30));

  // Both writers ran.
  EXPECT_GT(capper.updates(), 0u);
  EXPECT_GT(driver.stats().samples, 0u);
  // The resolved duty is the conservative max of the two requests.
  EXPECT_GE(arbiter.resolved_probability(),
            std::max(driver.last_duty(), capper.current_probability()) - 1e-12);
  // Ringing bound: the PID under an engaged cap converges instead of
  // oscillating — direction flips stay a small fraction of its samples.
  const StabilityMetrics m = driver.stability_metrics();
  EXPECT_LT(m.duty_reversals * 2, m.samples);
  EXPECT_LT(m.osc_amplitude_duty, 0.5);
}

TEST(GovernorDriverTest, RetuneSwapsTheGovernorMidRun) {
  GovernedMachine gm(hysteresis_spec());
  gm.machine.run_for(sim::from_sec(5));
  ASSERT_TRUE(gm.driver.governor().tripped());
  ASSERT_EQ(gm.driver.last_duty(), 0.6);

  // A rolling config update lands mid-run: lower trip point, gentler duty.
  GovernorSpec next = hysteresis_spec(/*trip_c=*/40.0, /*release_c=*/38.0);
  next.hysteresis.hot_probability = 0.3;
  gm.driver.retune(next);
  EXPECT_EQ(gm.driver.spec().hysteresis.hot_probability, 0.3);
  // The fresh controller starts from reset state, so the old duty stays
  // published until the new governor's first sample...
  EXPECT_EQ(gm.driver.last_duty(), 0.6);
  const std::uint64_t trips_before = gm.driver.stats().trips;
  gm.machine.run_for(sim::from_sec(2));
  // ...then the machine (still above the new 40 C trip) re-trips at the
  // retuned duty, through the same still-claimed arbiter channel.
  EXPECT_GT(gm.driver.stats().trips, trips_before);
  EXPECT_TRUE(gm.driver.governor().tripped());
  EXPECT_EQ(gm.driver.last_duty(), 0.3);
  EXPECT_EQ(gm.arbiter.resolved_probability(), 0.3);
  EXPECT_EQ(gm.arbiter.winner(), InjectionArbiter::Channel::kGovernor);
}

TEST(GovernorDriverTest, RetuneCanCrossGovernorKinds) {
  GovernedMachine gm(hysteresis_spec());
  gm.machine.run_for(sim::from_sec(3));
  gm.driver.retune(pid_spec());
  gm.machine.run_for(sim::from_sec(3));
  EXPECT_EQ(gm.driver.spec().kind, GovernorKind::kPid);
  // The stability tracker restarted against the PID setpoint: its window
  // describes only the post-retune loop.
  EXPECT_EQ(gm.driver.stability().reference_c(), 47.0);
  EXPECT_LE(gm.driver.stability().sample_count(), 61u);  // ~3 s at 50 ms
}

TEST(GovernorDriverTest, RetuneRejectsDisabledSpecAndBadPeriod) {
  GovernedMachine gm(hysteresis_spec());
  gm.machine.run_for(sim::from_sec(1));
  EXPECT_THROW(gm.driver.retune(GovernorSpec{}), std::invalid_argument);
  GovernorSpec bad = hysteresis_spec();
  bad.sample_period = 0;
  EXPECT_THROW(gm.driver.retune(bad), std::invalid_argument);
  // A rejected retune changes nothing: the original loop keeps sampling.
  EXPECT_EQ(gm.driver.spec().hysteresis.trip_c, 46.0);
  const std::uint64_t samples = gm.driver.stats().samples;
  gm.machine.run_for(sim::from_sec(1));
  EXPECT_GT(gm.driver.stats().samples, samples);
}

}  // namespace
}  // namespace dimetrodon::control
