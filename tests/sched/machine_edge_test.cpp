// Edge-of-envelope machine behaviours: odd core counts, kernel-thread
// preemption, injection interacting with DVFS/idle states, and long idle
// stability.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "workload/cpuburn.hpp"
#include "workload/web.hpp"

namespace dimetrodon::sched {
namespace {

MachineConfig cores_config(std::size_t n) {
  MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.num_cores = n;
  return cfg;
}

class FixedWork final : public ThreadBehavior {
 public:
  explicit FixedWork(double work) : work_(work) {}
  Burst next_burst(sim::SimTime, sim::Rng&) override { return {work_, 1.0}; }
  BurstOutcome on_burst_complete(sim::SimTime, sim::Rng&) override {
    return BurstOutcome::Exit();
  }

 private:
  double work_;
};

TEST(MachineEdgeTest, SingleCoreMachineWorks) {
  Machine m(cores_config(1));
  workload::CpuBurnFleet fleet(2, 1.0);
  fleet.deploy(m);
  m.run_until_condition([&] { return fleet.all_done(m); }, sim::from_sec(5));
  EXPECT_TRUE(fleet.all_done(m));
  EXPECT_NEAR(sim::to_sec(m.now()), 2.0, 0.1);
}

TEST(MachineEdgeTest, EightCoreMachineWorks) {
  Machine m(cores_config(8));
  workload::CpuBurnFleet fleet(8, 1.0);
  fleet.deploy(m);
  m.run_for(sim::from_sec(2));
  EXPECT_TRUE(fleet.all_done(m));
  EXPECT_NEAR(fleet.progress(m), 8.0, 1e-6);
  // Eight dies exist and heat up.
  EXPECT_GT(m.die_temperature(7), 30.0);
}

TEST(MachineEdgeTest, SingleCoreInjectionMatchesModel) {
  Machine m(cores_config(1));
  core::DimetrodonController ctl(m);
  ctl.sys_set_global(0.5, sim::from_ms(50));
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_sec(20));
  EXPECT_NEAR(fleet.progress(m) / 20.0, 1.0 / 1.5, 0.06);
}

TEST(MachineEdgeTest, KernelThreadPreemptsUserThread) {
  // All cores busy with user threads; a waking kernel thread must preempt
  // one rather than queue behind 100 ms quanta.
  MachineConfig cfg = cores_config(4);
  Machine m(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_ms(30));  // mid-quantum everywhere

  class OneShot final : public ThreadBehavior {
   public:
    Burst next_burst(sim::SimTime, sim::Rng&) override { return {0.001, 1.0}; }
    BurstOutcome on_burst_complete(sim::SimTime now, sim::Rng&) override {
      finished_at = now;
      return BurstOutcome::SleepUntilWoken();
    }
    sim::SimTime finished_at = -1;
  };
  auto behavior = std::make_unique<OneShot>();
  auto* raw = behavior.get();
  const sim::SimTime created = m.now();
  m.create_thread("isr", ThreadClass::kKernel, 0, std::move(behavior));
  m.run_for(sim::from_ms(20));
  ASSERT_GE(raw->finished_at, 0);
  // Served within ~2 ms (preemption + 1 ms work), NOT after a 70 ms quantum
  // tail.
  EXPECT_LT(sim::to_sec(raw->finished_at - created), 0.005);
}

TEST(MachineEdgeTest, KernelWaitsWhenInjectionBlocksAllCores) {
  // The §3.1 double-delay hazard, literal mechanism: with every core inside
  // an injected idle quantum and kernel_preempts_injection=false, a waking
  // kernel thread is delayed until a quantum ends.
  MachineConfig cfg = cores_config(1);
  cfg.injection_suspends_thread = false;
  cfg.kernel_preempts_injection = false;
  Machine m(cfg);
  core::DimetrodonController ctl(m);
  ctl.sys_set_global(1.0, sim::from_ms(100));  // always inject
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_ms(10));  // inside the first injected quantum

  class OneShot final : public ThreadBehavior {
   public:
    Burst next_burst(sim::SimTime, sim::Rng&) override { return {0.001, 1.0}; }
    BurstOutcome on_burst_complete(sim::SimTime now, sim::Rng&) override {
      finished_at = now;
      return BurstOutcome::SleepUntilWoken();
    }
    sim::SimTime finished_at = -1;
  };
  auto behavior = std::make_unique<OneShot>();
  auto* raw = behavior.get();
  const sim::SimTime created = m.now();
  m.create_thread("isr", ThreadClass::kKernel, 0, std::move(behavior));
  m.run_for(sim::from_ms(200));
  ASSERT_GE(raw->finished_at, 0);
  // Had to wait out the rest of the 100 ms idle quantum.
  EXPECT_GT(sim::to_sec(raw->finished_at - created), 0.05);
}

TEST(MachineEdgeTest, KernelCanCutInjectionShortWhenConfigured) {
  MachineConfig cfg = cores_config(1);
  cfg.injection_suspends_thread = false;
  cfg.kernel_preempts_injection = true;
  Machine m(cfg);
  core::DimetrodonController ctl(m);
  ctl.sys_set_global(1.0, sim::from_ms(100));
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_ms(10));

  class OneShot final : public ThreadBehavior {
   public:
    Burst next_burst(sim::SimTime, sim::Rng&) override { return {0.001, 1.0}; }
    BurstOutcome on_burst_complete(sim::SimTime now, sim::Rng&) override {
      finished_at = now;
      return BurstOutcome::SleepUntilWoken();
    }
    sim::SimTime finished_at = -1;
  };
  auto behavior = std::make_unique<OneShot>();
  auto* raw = behavior.get();
  const sim::SimTime created = m.now();
  m.create_thread("isr", ThreadClass::kKernel, 0, std::move(behavior));
  m.run_for(sim::from_ms(200));
  ASSERT_GE(raw->finished_at, 0);
  EXPECT_LT(sim::to_sec(raw->finished_at - created), 0.01);
}

TEST(MachineEdgeTest, InjectionComposesWithDvfs) {
  // Frequency scaling and injection stack: throughput ~ (f/f0) * model.
  Machine m(cores_config(4));
  m.set_all_dvfs_levels(5);
  core::DimetrodonController ctl(m);
  ctl.sys_set_global(0.5, sim::from_ms(50));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(20));
  const double f_ratio = 1.596 / 2.261;
  EXPECT_NEAR(fleet.progress(m) / 20.0, 4.0 * f_ratio / 1.5, 0.15);
}

TEST(MachineEdgeTest, LongIdleMachineStaysStable) {
  Machine m(cores_config(4));
  const double t0 = m.die_temperature(0);
  m.run_for(sim::from_sec(120));
  EXPECT_NEAR(m.die_temperature(0), t0, 0.5);
  EXPECT_NEAR(m.current_total_power(), m.current_total_power(), 1e-9);
}

TEST(MachineEdgeTest, C1IdleStateConfigurable) {
  MachineConfig cfg = cores_config(4);
  cfg.idle_cstate = power::CState::kC1;
  Machine m(cfg);
  // C1 keeps full-voltage leakage: idle machine runs warmer than C1E.
  MachineConfig cfg_e = cores_config(4);
  Machine me(cfg_e);
  EXPECT_GT(m.die_temperature(0), me.die_temperature(0) + 0.5);
}

TEST(MachineEdgeTest, CallAtInPastClampsToNow) {
  Machine m(cores_config(1));
  m.run_for(sim::from_ms(10));
  bool ran = false;
  m.call_at(0, [&](sim::SimTime) { ran = true; });
  m.run_for(sim::from_ms(1));
  EXPECT_TRUE(ran);
}

TEST(MachineEdgeTest, CreateThreadMidRunJoinsScheduling) {
  Machine m(cores_config(2));
  workload::CpuBurnFleet fleet(2);
  fleet.deploy(m);
  m.run_for(sim::from_sec(1));
  const ThreadId late = m.create_thread("late", ThreadClass::kUser, 0,
                                        std::make_unique<FixedWork>(0.2));
  m.run_for(sim::from_sec(2));
  EXPECT_EQ(m.thread(late).state(), ThreadState::kDone);
}

TEST(MachineEdgeTest, NiceThreadYieldsToNormalOnSharedCore) {
  Machine m(cores_config(1));
  const ThreadId nice_tid = m.create_thread(
      "nice", ThreadClass::kUser, 15, std::make_unique<FixedWork>(0.5), 0);
  const ThreadId normal_tid = m.create_thread(
      "normal", ThreadClass::kUser, 0, std::make_unique<FixedWork>(0.5), 0);
  m.run_until_condition(
      [&] {
        return m.thread(nice_tid).state() == ThreadState::kDone &&
               m.thread(normal_tid).state() == ThreadState::kDone;
      },
      sim::from_sec(5));
  // The normal-priority thread finishes first despite being created second.
  EXPECT_LT(m.thread(normal_tid).finished_at(),
            m.thread(nice_tid).finished_at());
}

}  // namespace
}  // namespace dimetrodon::sched
