// Simultaneous multithreading: two hardware contexts per physical core
// share the pipeline and the die. The paper disabled SMT because C1E
// requires halting every context on a core (§3.2); these tests pin down
// exactly that interaction plus the co-scheduled-injection extension.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon::sched {
namespace {

MachineConfig smt_config() {
  MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.smt_enabled = true;
  return cfg;
}

class FixedWork final : public ThreadBehavior {
 public:
  explicit FixedWork(double work) : work_(work) {}
  Burst next_burst(sim::SimTime, sim::Rng&) override { return {work_, 1.0}; }
  BurstOutcome on_burst_complete(sim::SimTime, sim::Rng&) override {
    return BurstOutcome::Exit();
  }

 private:
  double work_;
};

TEST(SmtTest, ExposesTwoLogicalCpusPerCore) {
  Machine m(smt_config());
  EXPECT_EQ(m.num_cores(), 8u);
  EXPECT_EQ(m.num_physical_cores(), 4u);
  EXPECT_EQ(m.physical_of(0), 0u);
  EXPECT_EQ(m.physical_of(1), 0u);
  EXPECT_EQ(m.physical_of(7), 3u);
}

TEST(SmtTest, SiblingsShareDieTemperature) {
  Machine m(smt_config());
  EXPECT_DOUBLE_EQ(m.die_temperature(0), m.die_temperature(1));
  EXPECT_EQ(m.sensor(2).node(), m.sensor(3).node());
}

TEST(SmtTest, SoloContextRunsAtFullSpeed) {
  Machine m(smt_config());
  const ThreadId tid = m.create_thread("w", ThreadClass::kUser, 0,
                                       std::make_unique<FixedWork>(1.0));
  m.run_for(sim::from_sec(2));
  EXPECT_NEAR(sim::to_sec(m.thread(tid).finished_at()), 1.0, 0.02);
}

TEST(SmtTest, SiblingContentionSlowsBothContexts) {
  // Two threads pinned to sibling contexts of core 0: each runs at the SMT
  // factor, so combined throughput is 1.3x a single context.
  Machine m(smt_config());
  const ThreadId a = m.create_thread("a", ThreadClass::kUser, 0,
                                     std::make_unique<FixedWork>(1.0), 0);
  const ThreadId b = m.create_thread("b", ThreadClass::kUser, 0,
                                     std::make_unique<FixedWork>(1.0), 1);
  m.run_for(sim::from_sec(3));
  const double fa = sim::to_sec(m.thread(a).finished_at());
  const double fb = sim::to_sec(m.thread(b).finished_at());
  // Both run together at 0.65 until the first finishes at 1/0.65 = 1.54.
  EXPECT_NEAR(std::min(fa, fb), 1.0 / 0.65, 0.05);
  EXPECT_NEAR(m.thread(a).work_completed(), 1.0, 1e-6);
  EXPECT_NEAR(m.thread(b).work_completed(), 1.0, 1e-6);
}

TEST(SmtTest, SiblingDepartureSpeedsUpSurvivor) {
  Machine m(smt_config());
  const ThreadId small = m.create_thread("s", ThreadClass::kUser, 0,
                                         std::make_unique<FixedWork>(0.325),
                                         0);
  const ThreadId big = m.create_thread("b", ThreadClass::kUser, 0,
                                       std::make_unique<FixedWork>(1.0), 1);
  m.run_for(sim::from_sec(3));
  // Together until small finishes at 0.325/0.65 = 0.5 with big having done
  // 0.325; big then runs solo: remaining 0.675 at full speed -> ~1.175 s.
  EXPECT_NEAR(sim::to_sec(m.thread(small).finished_at()), 0.5, 0.02);
  EXPECT_NEAR(sim::to_sec(m.thread(big).finished_at()), 1.175, 0.03);
}

TEST(SmtTest, EightCpuBurnInstancesSaturateAllContexts) {
  Machine m(smt_config());
  workload::CpuBurnFleet fleet(8);
  fleet.deploy(m);
  m.run_for(sim::from_sec(10));
  // 8 contexts x 0.65 = 5.2 nominal-work per second.
  EXPECT_NEAR(fleet.progress(m) / 10.0, 5.2, 0.2);
}

TEST(SmtTest, HalfIdleCoreKeepsFullLeakage) {
  // One context busy, sibling idle: the die must NOT get the C1E voltage
  // break (the paper's reason for disabling SMT). Compare against both-idle.
  MachineConfig cfg = smt_config();
  Machine m(cfg);
  workload::CpuBurnFleet fleet(1);  // one thread on context 0
  fleet.deploy(m);
  m.run_for(sim::from_sec(5));
  // Physical core 0 has a busy context: its die runs hotter than core 3,
  // whose contexts are both parked in C1E.
  EXPECT_GT(m.die_temperature(0), m.die_temperature(7) + 3.0);
}

TEST(SmtTest, SmtOffMatchesLegacyBehavior) {
  MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.smt_enabled = false;
  Machine m(cfg);
  EXPECT_EQ(m.num_cores(), 4u);
  const ThreadId tid = m.create_thread("w", ThreadClass::kUser, 0,
                                       std::make_unique<FixedWork>(1.0));
  m.run_for(sim::from_sec(2));
  EXPECT_NEAR(sim::to_sec(m.thread(tid).finished_at()), 1.0, 0.02);
}

TEST(SmtTest, CoScheduledInjectionIdlesWholeCore) {
  // With co-scheduling, an injection on one context also suspends the
  // sibling's thread, so both contexts idle together and the die cools to
  // the C1E level.
  auto run = [](bool co_schedule) {
    MachineConfig cfg;
    cfg.enable_meter = false;
    cfg.smt_enabled = true;
    cfg.smt_co_schedule_injection = co_schedule;
    Machine m(cfg);
    core::DimetrodonController ctl(m);
    ctl.sys_set_global(0.5, sim::from_ms(25));
    workload::CpuBurnFleet fleet(8);
    fleet.deploy(m);
    for (int i = 0; i < 4; ++i) {
      m.mark_power_window();
      m.run_for(sim::from_sec(8));
      m.jump_to_average_power_steady_state();
    }
    const double p0 = fleet.progress(m);
    m.run_for(sim::from_sec(10));
    struct R {
      double temp;
      double throughput;
    };
    return R{m.mean_sensor_temp(), (fleet.progress(m) - p0) / 10.0};
  };
  const auto independent = run(false);
  const auto coscheduled = run(true);
  // Co-scheduling aligns sibling idles so whole physical cores reach C1E:
  // much cooler. Independent injection strands half-idle cores at full
  // leakage — on this saturated 8-context machine that is hot enough to
  // engage the hardware thermal monitor, so co-scheduling even wins
  // throughput back from PROCHOT throttling.
  EXPECT_LT(coscheduled.temp, independent.temp - 3.0);
  EXPECT_GT(coscheduled.throughput, 2.0);
}

TEST(SmtTest, InjectionStatsCountCoScheduledVictims) {
  MachineConfig cfg = smt_config();
  cfg.smt_co_schedule_injection = true;
  Machine m(cfg);
  core::DimetrodonController ctl(m);
  ctl.sys_set_global(0.5, sim::from_ms(25));
  workload::CpuBurnFleet fleet(8);
  fleet.deploy(m);
  m.run_for(sim::from_sec(10));
  std::uint64_t suffered = 0;
  for (const auto tid : fleet.threads()) {
    suffered += m.thread(tid).injections_suffered();
  }
  // Co-victims are counted: total suffered > hook-visible injections.
  EXPECT_GT(suffered, ctl.stats().injections);
}

}  // namespace
}  // namespace dimetrodon::sched
