// The lazy, event-free thermal clock: thermal state advances only at machine
// interaction points plus a coarse watchdog, fast-forwarded through the
// closed-form propagator. These tests pin the equivalence and the event-queue
// collapse that justify deleting the 250 µs substep event.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon::sched {
namespace {

MachineConfig base_config() {
  MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

std::vector<double> die_temps(const Machine& m) {
  std::vector<double> t;
  for (std::size_t i = 0; i < m.num_physical_cores(); ++i) {
    t.push_back(m.die_temperature(static_cast<CoreId>(i)));
  }
  return t;
}

// With the watchdog pinned to the substep period, the fast path advances at
// exactly the same instants as the pre-PR periodic stepper, every span is a
// single substep, and both paths execute identical arithmetic — so the whole
// simulation must be bit-identical, not merely close.
TEST(ThermalClockTest, WatchdogAtSubstepPeriodIsBitIdenticalToReference) {
  MachineConfig ref_cfg = base_config();
  ref_cfg.thermal_reference_stepper = true;
  MachineConfig fast_cfg = base_config();
  fast_cfg.thermal_watchdog = fast_cfg.thermal_substep;

  Machine ref(ref_cfg);
  Machine fast(fast_cfg);
  workload::CpuBurnFleet ref_fleet(4), fast_fleet(4);
  ref_fleet.deploy(ref);
  fast_fleet.deploy(fast);
  ref.run_for(sim::from_sec(3));
  fast.run_for(sim::from_sec(3));

  EXPECT_EQ(die_temps(ref), die_temps(fast));
  EXPECT_EQ(ref.energy().total_joules(), fast.energy().total_joules());
}

// At the default (coarse) watchdog the trajectories may differ only by the
// leakage-refresh discretization: a small, bounded physics delta.
TEST(ThermalClockTest, CoarseWatchdogStaysCloseToReference) {
  MachineConfig ref_cfg = base_config();
  ref_cfg.thermal_reference_stepper = true;
  Machine ref(ref_cfg);
  Machine fast(base_config());
  workload::CpuBurnFleet ref_fleet(4), fast_fleet(4);
  ref_fleet.deploy(ref);
  fast_fleet.deploy(fast);
  ref.run_for(sim::from_sec(5));
  fast.run_for(sim::from_sec(5));
  const auto r = die_temps(ref);
  const auto f = die_temps(fast);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(f[i], r[i], 0.05) << "core " << i;
  }
}

TEST(ThermalClockTest, EventQueueTrafficCollapses) {
  MachineConfig ref_cfg = base_config();
  ref_cfg.thermal_reference_stepper = true;
  Machine ref(ref_cfg);
  Machine fast(base_config());
  workload::CpuBurnFleet ref_fleet(4), fast_fleet(4);
  ref_fleet.deploy(ref);
  fast_fleet.deploy(fast);
  ref.run_for(sim::from_sec(2));
  fast.run_for(sim::from_sec(2));
  // 250 µs substep events dominate the reference queue (~4000/s); the lazy
  // clock leaves only scheduler events, the 5 ms monitor and the watchdog.
  EXPECT_LT(fast.simulator().events_executed() * 5,
            ref.simulator().events_executed());
}

TEST(ThermalClockTest, ThermalCountersFlowIntoTotals) {
  Machine m(base_config());
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(2));
  const obs::CounterTotals t = m.counters().totals();
  EXPECT_GT(t.thermal_substeps, 0u);
  EXPECT_GT(t.thermal_fast_forward_steps, 0u);
  EXPECT_LE(t.thermal_fast_forward_steps, t.thermal_substeps);
  EXPECT_GT(t.thermal_matvecs, 0u);
  // The per-dt operator cache keeps factorizations rare: orders of magnitude
  // below the substep count, not proportional to it.
  EXPECT_GT(t.thermal_factorizations, 0u);
  EXPECT_LT(t.thermal_factorizations * 10, t.thermal_substeps);
  // Fast-forward replaces per-substep solves: far fewer matvecs than the
  // substeps they cover.
  EXPECT_LT(t.thermal_matvecs, t.thermal_fast_forward_steps);
}

TEST(ThermalClockTest, FastPathIsDeterministic) {
  auto run = [] {
    Machine m(base_config());
    core::DimetrodonController ctl(m);
    ctl.sys_set_global(0.5, sim::from_ms(10));
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(m);
    m.run_for(sim::from_sec(3));
    return die_temps(m);
  };
  EXPECT_EQ(run(), run());
}

// Injection quanta (the paper's mechanism) land on irregular boundaries;
// the lazy clock must keep the thermal picture coherent under them.
TEST(ThermalClockTest, InjectionCoolsUnderLazyClock) {
  Machine hot(base_config());
  workload::CpuBurnFleet hot_fleet(4);
  hot_fleet.deploy(hot);
  hot.run_for(sim::from_sec(8));

  Machine cool(base_config());
  core::DimetrodonController ctl(cool);
  ctl.sys_set_global(0.5, sim::from_ms(100));
  workload::CpuBurnFleet cool_fleet(4);
  cool_fleet.deploy(cool);
  cool.run_for(sim::from_sec(8));

  EXPECT_LT(cool.die_temperature(0), hot.die_temperature(0) - 0.5);
}

TEST(ThermalClockTest, WatchdogBoundsThermalStaleness) {
  // A machine with nothing runnable still advances its thermal state at
  // least every watchdog period: after a long quiet run the integrated
  // substep count must cover the whole span.
  MachineConfig cfg = base_config();
  cfg.hw_thermal_throttle = false;  // remove the 5 ms monitor interactions
  Machine m(cfg);
  m.run_for(sim::from_sec(10));
  const obs::CounterTotals t = m.counters().totals();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(sim::from_sec(10) / cfg.thermal_substep);
  EXPECT_GE(t.thermal_substeps, expected);
}

}  // namespace
}  // namespace dimetrodon::sched
