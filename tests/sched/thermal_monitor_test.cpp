// Hardware thermal monitor (TM1/PROCHOT): the worst-case DTM mechanism the
// paper distinguishes preventive management from (§1). It must stay dormant
// in every paper-scale experiment and only engage under thermal overload.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon::sched {
namespace {

TEST(ThermalMonitorTest, DormantUnderPaperWorkloads) {
  MachineConfig cfg;
  cfg.enable_meter = false;
  Machine m(cfg);
  workload::CpuBurnFleet fleet(4);  // the paper's worst-case load
  fleet.deploy(m);
  for (int i = 0; i < 4; ++i) {
    m.mark_power_window();
    m.run_for(sim::from_sec(8));
    m.jump_to_average_power_steady_state();
  }
  m.run_for(sim::from_sec(5));
  EXPECT_EQ(m.thermal_throttle_engagements(), 0u);
  for (std::size_t i = 0; i < m.num_physical_cores(); ++i) {
    EXPECT_FALSE(m.thermal_throttle_active(i));
  }
}

TEST(ThermalMonitorTest, EngagesUnderThermalOverload) {
  // Cripple the cooling (fan at 40%) to force a thermal emergency the
  // monitor can still contain (at even lower airflow leakage alone exceeds
  // what duty cycling can remove).
  MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.floorplan.fan_speed_fraction = 0.4;
  Machine m(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  for (int i = 0; i < 5; ++i) {
    m.mark_power_window();
    m.run_for(sim::from_sec(8));
    m.jump_to_average_power_steady_state();
  }
  m.run_for(sim::from_sec(5));
  EXPECT_GT(m.thermal_throttle_engagements(), 0u);
  // The monitor caps die temperature near PROCHOT (limit-cycling below it).
  for (std::size_t i = 0; i < m.num_physical_cores(); ++i) {
    EXPECT_LT(m.die_temperature(static_cast<CoreId>(i)), cfg.prochot_c + 5.0);
  }
}

TEST(ThermalMonitorTest, ThrottlingCostsThroughput) {
  auto throughput = [](double fan) {
    MachineConfig cfg;
    cfg.enable_meter = false;
    cfg.floorplan.fan_speed_fraction = fan;
    Machine m(cfg);
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(m);
    for (int i = 0; i < 5; ++i) {
      m.mark_power_window();
      m.run_for(sim::from_sec(8));
      m.jump_to_average_power_steady_state();
    }
    const double w0 = fleet.progress(m);
    m.run_for(sim::from_sec(10));
    return (fleet.progress(m) - w0) / 10.0;
  };
  EXPECT_LT(throughput(0.4), 0.9 * throughput(1.0));
}

TEST(ThermalMonitorTest, DimetrodonKeepsSystemOutOfEmergency) {
  // Preventive injection holds the crippled-fan system below PROCHOT, so
  // the blunt hardware mechanism never fires — the paper's §1 thesis.
  MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.floorplan.fan_speed_fraction = 0.4;
  Machine m(cfg);
  core::DimetrodonController ctl(m);
  ctl.sys_set_global(0.85, sim::from_ms(25));  // ~59% idle duty
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  for (int i = 0; i < 5; ++i) {
    m.mark_power_window();
    m.run_for(sim::from_sec(8));
    m.jump_to_average_power_steady_state();
  }
  m.run_for(sim::from_sec(5));
  EXPECT_EQ(m.thermal_throttle_engagements(), 0u);
}

TEST(ThermalMonitorTest, CanBeDisabled) {
  MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.hw_thermal_throttle = false;
  cfg.floorplan.fan_speed_fraction = 0.3;
  Machine m(cfg);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  for (int i = 0; i < 5; ++i) {
    m.mark_power_window();
    m.run_for(sim::from_sec(8));
    m.jump_to_average_power_steady_state();
  }
  EXPECT_EQ(m.thermal_throttle_engagements(), 0u);
  // Without the safety net the die exceeds PROCHOT.
  EXPECT_GT(m.die_temperature(0), cfg.prochot_c);
}

TEST(ThermalMonitorTest, UserDutyRestoredAfterRelease) {
  MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.floorplan.fan_speed_fraction = 0.3;
  Machine m(cfg);
  m.set_all_clock_duty_steps(7);  // user setpoint below TM step
  workload::CpuBurnFleet fleet(4, 5.0);  // finite: machine cools afterwards
  fleet.deploy(m);
  m.run_for(sim::from_sec(120));
  // Workload done, machine cooled: user duty request is back in force.
  EXPECT_FALSE(m.thermal_throttle_active(0));
  EXPECT_DOUBLE_EQ(m.core(0).op.clock_duty, 7.0 / 8.0);
  EXPECT_EQ(m.core(0).duty_step_user, 7u);
}

}  // namespace
}  // namespace dimetrodon::sched
