#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace dimetrodon::sched {
namespace {

std::unique_ptr<Thread> make_thread(ThreadId id) {
  class Noop final : public ThreadBehavior {
    Burst next_burst(sim::SimTime, sim::Rng&) override { return {1.0, 1.0}; }
    BurstOutcome on_burst_complete(sim::SimTime, sim::Rng&) override {
      return BurstOutcome::Exit();
    }
  };
  return std::make_unique<Thread>(id, "t", ThreadClass::kUser, 0,
                                  std::make_unique<Noop>(), sim::Rng(id));
}

TEST(BsdSchedulerTest, DefaultTimesliceIs100ms) {
  // FreeBSD 7.2's 4.4BSD scheduler: "a traditional multi-level feedback
  // queue with a fixed timeslice of 100ms".
  BsdScheduler sched;
  EXPECT_EQ(sched.timeslice(), sim::from_ms(100));
}

TEST(BsdSchedulerTest, PickReturnsNullWhenEmpty) {
  BsdScheduler sched;
  EXPECT_EQ(sched.pick_next(0, 0), nullptr);
}

TEST(BsdSchedulerTest, RoundRobinAcrossEqualThreads) {
  BsdScheduler sched;
  auto a = make_thread(1);
  auto b = make_thread(2);
  sched.enqueue(*a);
  sched.enqueue(*b);
  Thread* first = sched.pick_next(0, 0);
  EXPECT_EQ(first, a.get());
  sched.quantum_expired(*first, 0.1, sim::from_ms(100));
  EXPECT_EQ(sched.pick_next(0, sim::from_ms(100)), b.get());
}

TEST(BsdSchedulerTest, QuantumExpiryChargesEstcpu) {
  BsdScheduler sched;
  auto t = make_thread(1);
  sched.enqueue(*t);
  Thread* picked = sched.pick_next(0, 0);
  sched.quantum_expired(*picked, 0.1, 0);
  EXPECT_GT(t->estcpu(), 0.0);
}

TEST(BsdSchedulerTest, CpuHogSinksBelowFreshThread) {
  BsdScheduler sched;
  auto hog = make_thread(1);
  auto fresh = make_thread(2);
  sched.enqueue(*hog);
  // Let the hog accumulate substantial CPU.
  for (int i = 0; i < 20; ++i) {
    Thread* p = sched.pick_next(0, 0);
    ASSERT_EQ(p, hog.get());
    sched.quantum_expired(*p, 0.1, 0);
  }
  sched.enqueue(*fresh);
  EXPECT_EQ(sched.pick_next(0, 0), fresh.get());
}

TEST(BsdSchedulerTest, PeriodicDecayRestoresPriority) {
  BsdScheduler sched;
  auto hog = make_thread(1);
  hog->set_estcpu(200.0);
  sched.enqueue(*hog);
  // schedcpu with load 1: decay 2/3 per second.
  for (int i = 0; i < 30; ++i) sched.periodic(1, i * sim::kSecond);
  Thread* p = sched.pick_next(0, 0);
  ASSERT_NE(p, nullptr);
  EXPECT_LT(p->estcpu(), 1.0);
}

TEST(BsdSchedulerTest, ThreadStoppedChargesWithoutRequeue) {
  BsdScheduler sched;
  auto t = make_thread(1);
  sched.enqueue(*t);
  Thread* p = sched.pick_next(0, 0);
  sched.thread_stopped(*p, 0.05, 0);
  EXPECT_GT(t->estcpu(), 0.0);
  EXPECT_EQ(sched.runnable_count(), 0u);
  EXPECT_EQ(sched.pick_next(0, 0), nullptr);
}

TEST(BsdSchedulerTest, DequeueRemovesQueuedThread) {
  BsdScheduler sched;
  auto t = make_thread(1);
  sched.enqueue(*t);
  sched.dequeue(*t);
  EXPECT_EQ(sched.pick_next(0, 0), nullptr);
}

TEST(BsdSchedulerTest, EnqueueFrontJumpsQueueWithinPriority) {
  BsdScheduler sched;
  auto a = make_thread(1);
  auto b = make_thread(2);
  sched.enqueue(*a);
  sched.enqueue(*b);
  Thread* first = sched.pick_next(0, 0);
  sched.enqueue_front(*first);
  EXPECT_EQ(sched.pick_next(0, 0), first);
}

}  // namespace
}  // namespace dimetrodon::sched
