#include "sched/runqueue.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace dimetrodon::sched {
namespace {

std::unique_ptr<Thread> make_thread(ThreadId id, ThreadClass cls = ThreadClass::kUser,
                                    int nice = 0) {
  // Behavior unused by run-queue logic.
  class Noop final : public ThreadBehavior {
    Burst next_burst(sim::SimTime, sim::Rng&) override { return {1.0, 1.0}; }
    BurstOutcome on_burst_complete(sim::SimTime, sim::Rng&) override {
      return BurstOutcome::Exit();
    }
  };
  return std::make_unique<Thread>(id, "t" + std::to_string(id), cls, nice,
                                  std::make_unique<Noop>(), sim::Rng(id));
}

TEST(RunQueueTest, FifoWithinSamePriority) {
  RunQueue q;
  auto a = make_thread(1);
  auto b = make_thread(2);
  q.enqueue(a.get());
  q.enqueue(b.get());
  EXPECT_EQ(q.pick(0), a.get());
  EXPECT_EQ(q.pick(0), b.get());
  EXPECT_TRUE(q.empty());
}

TEST(RunQueueTest, KernelThreadsBeatUserThreads) {
  RunQueue q;
  auto user = make_thread(1, ThreadClass::kUser);
  auto kernel = make_thread(2, ThreadClass::kKernel);
  q.enqueue(user.get());
  q.enqueue(kernel.get());
  EXPECT_EQ(q.pick(0), kernel.get());
}

TEST(RunQueueTest, HigherEstcpuSinksBelow) {
  RunQueue q;
  auto hog = make_thread(1);
  hog->set_estcpu(100.0);
  auto fresh = make_thread(2);
  q.enqueue(hog.get());
  q.enqueue(fresh.get());
  EXPECT_EQ(q.pick(0), fresh.get());
}

TEST(RunQueueTest, NicePenalizesPriority) {
  RunQueue q;
  auto nice = make_thread(1, ThreadClass::kUser, 10);
  auto normal = make_thread(2, ThreadClass::kUser, 0);
  q.enqueue(nice.get());
  q.enqueue(normal.get());
  EXPECT_EQ(q.pick(0), normal.get());
}

TEST(RunQueueTest, EnqueueFrontPreservesTurn) {
  RunQueue q;
  auto a = make_thread(1);
  auto b = make_thread(2);
  q.enqueue(a.get());
  q.enqueue(b.get());
  Thread* first = q.pick(0);
  EXPECT_EQ(first, a.get());
  q.enqueue_front(first);  // returned after displaced dispatch
  EXPECT_EQ(q.pick(0), a.get());
}

TEST(RunQueueTest, PinnedThreadInvisibleToOtherCores) {
  RunQueue q;
  auto t = make_thread(1);
  t->set_injection_pin(2);
  q.enqueue(t.get());
  EXPECT_EQ(q.pick(0), nullptr);
  EXPECT_EQ(q.pick(1), nullptr);
  EXPECT_EQ(q.pick(2), t.get());
}

TEST(RunQueueTest, AffinityRespected) {
  RunQueue q;
  auto t = make_thread(1);
  t->set_affinity(3);
  q.enqueue(t.get());
  EXPECT_EQ(q.pick(0), nullptr);
  EXPECT_EQ(q.pick(3), t.get());
}

TEST(RunQueueTest, PickSkipsPinnedFindsNextEligible) {
  RunQueue q;
  auto pinned = make_thread(1);
  pinned->set_injection_pin(5);
  auto open = make_thread(2);
  q.enqueue(pinned.get());
  q.enqueue(open.get());
  EXPECT_EQ(q.pick(0), open.get());
  EXPECT_EQ(q.size(), 1u);
}

TEST(RunQueueTest, PeekDoesNotRemove) {
  RunQueue q;
  auto t = make_thread(1);
  q.enqueue(t.get());
  EXPECT_EQ(q.peek(0), t.get());
  EXPECT_EQ(q.size(), 1u);
}

TEST(RunQueueTest, RemoveSpecificThread) {
  RunQueue q;
  auto a = make_thread(1);
  auto b = make_thread(2);
  q.enqueue(a.get());
  q.enqueue(b.get());
  EXPECT_TRUE(q.remove(a.get()));
  EXPECT_FALSE(q.remove(a.get()));
  EXPECT_EQ(q.pick(0), b.get());
}

TEST(RunQueueTest, DrainAllEmptiesIncludingPinned) {
  RunQueue q;
  auto a = make_thread(1);
  auto b = make_thread(2);
  b->set_injection_pin(7);
  q.enqueue(a.get());
  q.enqueue(b.get());
  std::vector<Thread*> out;
  q.drain_all(out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(q.empty());
}

TEST(RunQueueTest, PriorityFormulaClamped) {
  auto t = make_thread(1, ThreadClass::kUser, 20);
  t->set_estcpu(1e6);
  EXPECT_EQ(RunQueue::priority_of(*t), RunQueue::kPriMax);
  auto k = make_thread(2, ThreadClass::kKernel);
  EXPECT_EQ(RunQueue::priority_of(*k), RunQueue::kPriKernel);
}

}  // namespace
}  // namespace dimetrodon::sched
