// Machine snapshot/restore contract: a run forked from a snapshot is
// bit-identical to replaying the same prefix inline (fork ≡ replay), and
// every unsupported configuration is refused loudly instead of silently
// diverging.
#include "sched/machine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/cpuburn.hpp"

namespace dimetrodon::sched {
namespace {

MachineConfig snap_config() {
  MachineConfig cfg;
  cfg.enable_meter = false;  // meters sample wall-clock state; not snapshotable
  return cfg;
}

void expect_machines_bit_identical(Machine& a, Machine& b) {
  ASSERT_EQ(a.now(), b.now());
  const auto sa = a.thermal_network().save_state();
  const auto sb = b.thermal_network().save_state();
  ASSERT_EQ(sa.temps.size(), sb.temps.size());
  for (std::size_t i = 0; i < sa.temps.size(); ++i) {
    EXPECT_EQ(sa.temps[i], sb.temps[i]) << "thermal node " << i;
    EXPECT_EQ(sa.powers[i], sb.powers[i]) << "thermal node " << i;
  }
  EXPECT_EQ(a.energy().total_joules(), b.energy().total_joules());
  EXPECT_EQ(a.mean_sensor_temp(), b.mean_sensor_temp());
  ASSERT_EQ(a.thread_count(), b.thread_count());
  for (ThreadId id = 0; id < a.thread_count(); ++id) {
    EXPECT_EQ(a.thread(id).cpu_seconds_consumed(),
              b.thread(id).cpu_seconds_consumed())
        << "thread " << id;
    EXPECT_EQ(a.thread(id).bursts_completed(), b.thread(id).bursts_completed())
        << "thread " << id;
    EXPECT_EQ(a.thread(id).state(), b.thread(id).state()) << "thread " << id;
  }
  const auto& ca = a.counters();
  const auto& cb = b.counters();
  for (std::size_t i = 0; i < ca.num_cores(); ++i) {
    EXPECT_EQ(ca.core(i).dispatches, cb.core(i).dispatches) << i;
    EXPECT_EQ(ca.core(i).context_switches, cb.core(i).context_switches) << i;
    EXPECT_EQ(ca.core(i).injections, cb.core(i).injections) << i;
    EXPECT_EQ(ca.core(i).idle_ns, cb.core(i).idle_ns) << i;
  }
}

TEST(MachineSnapshotTest, ForkMatchesReplayBitIdentical) {
  // Reference: one uninterrupted run to 25 s.
  Machine replay(snap_config());
  workload::CpuBurnFleet replay_fleet(4, 1.5);
  replay_fleet.deploy(replay);
  replay.run_for(sim::from_sec(25));

  // Fork: snapshot a twin at 10 s, restore into a fresh machine, continue.
  Machine builder(snap_config());
  workload::CpuBurnFleet builder_fleet(4, 1.5);
  builder_fleet.deploy(builder);
  builder.run_for(sim::from_sec(10));
  const MachineSnapshot snap = builder.snapshot();

  Machine forked(snap_config());
  workload::CpuBurnFleet forked_fleet(4, 1.5);
  forked_fleet.deploy(forked);
  forked.restore(snap);
  EXPECT_EQ(forked.now(), sim::from_sec(10));
  forked.run_for(sim::from_sec(15));

  expect_machines_bit_identical(replay, forked);
}

TEST(MachineSnapshotTest, SnapshotDoesNotPerturbTheRunningMachine) {
  // Taking a snapshot is observation only: a machine that snapshots mid-run
  // finishes bit-identically to one that never did. Both runs pause at 8 s
  // (pausing itself splits partial-burst accounting, so the pause points
  // must match); only the snapshot call differs.
  Machine plain(snap_config());
  workload::CpuBurnFleet plain_fleet(4);
  plain_fleet.deploy(plain);
  plain.run_for(sim::from_sec(8));
  plain.run_for(sim::from_sec(12));

  Machine observed(snap_config());
  workload::CpuBurnFleet observed_fleet(4);
  observed_fleet.deploy(observed);
  observed.run_for(sim::from_sec(8));
  (void)observed.snapshot();
  observed.run_for(sim::from_sec(12));

  expect_machines_bit_identical(plain, observed);
}

TEST(MachineSnapshotTest, RestoredMachineKeepsRngStreams) {
  // The master RNG and every per-thread stream are part of the snapshot;
  // post-restore stochastic decisions (burst durations, injection draws)
  // must replay exactly. Covered implicitly by the fork ≡ replay test, but
  // this isolates the RNG: fork twice from one snapshot and compare forks.
  Machine builder(snap_config());
  workload::CpuBurnFleet fleet(2, 2.0);
  fleet.deploy(builder);
  builder.run_for(sim::from_sec(5));
  const MachineSnapshot snap = builder.snapshot();

  auto run_fork = [&](sim::SimTime extra) {
    Machine m(snap_config());
    workload::CpuBurnFleet f(2, 2.0);
    f.deploy(m);
    m.restore(snap);
    m.run_for(extra);
    return m.thermal_network().save_state();
  };
  const auto a = run_fork(sim::from_sec(7));
  const auto b = run_fork(sim::from_sec(7));
  for (std::size_t i = 0; i < a.temps.size(); ++i) {
    EXPECT_EQ(a.temps[i], b.temps[i]);
  }
}

TEST(MachineSnapshotTest, MeterAttachedRefusesSnapshot) {
  MachineConfig cfg;
  cfg.enable_meter = true;
  Machine m(cfg);
  workload::CpuBurnFleet fleet(2);
  fleet.deploy(m);
  m.run_for(sim::from_sec(1));
  EXPECT_THROW((void)m.snapshot(), std::runtime_error);
}

TEST(MachineSnapshotTest, UleSchedulerRefusesSnapshot) {
  MachineConfig cfg = snap_config();
  cfg.scheduler_kind = SchedulerKind::kUle;
  Machine m(cfg);
  workload::CpuBurnFleet fleet(2);
  fleet.deploy(m);
  m.run_for(sim::from_sec(1));
  EXPECT_THROW((void)m.snapshot(), std::runtime_error);
}

TEST(MachineSnapshotTest, UntrackedCallAtEventRefusesSnapshot) {
  // Workload driver timers scheduled via call_at are not in the machine's
  // event inventory; snapshotting with one pending must throw rather than
  // silently dropping it from the fork.
  Machine m(snap_config());
  workload::CpuBurnFleet fleet(2);
  fleet.deploy(m);
  m.call_at(sim::from_sec(60), [](sim::SimTime) {});
  m.run_for(sim::from_sec(1));
  EXPECT_THROW((void)m.snapshot(), std::runtime_error);
}

TEST(MachineSnapshotTest, RestoreRejectsMismatchedThreadCount) {
  Machine builder(snap_config());
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(builder);
  builder.run_for(sim::from_sec(2));
  const MachineSnapshot snap = builder.snapshot();

  Machine wrong(snap_config());
  workload::CpuBurnFleet two(2);
  two.deploy(wrong);
  EXPECT_THROW(wrong.restore(snap), std::invalid_argument);
}

}  // namespace
}  // namespace dimetrodon::sched
