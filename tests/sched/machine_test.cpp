#include "sched/machine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "workload/cpuburn.hpp"

namespace dimetrodon::sched {
namespace {

MachineConfig small_config() {
  MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

/// Runs `work` seconds then exits.
class FixedWork final : public ThreadBehavior {
 public:
  explicit FixedWork(double work, double activity = 1.0)
      : work_(work), activity_(activity) {}
  Burst next_burst(sim::SimTime, sim::Rng&) override {
    return {work_, activity_};
  }
  BurstOutcome on_burst_complete(sim::SimTime, sim::Rng&) override {
    return BurstOutcome::Exit();
  }

 private:
  double work_;
  double activity_;
};

/// Alternates `work` seconds of CPU and `sleep` of blocking.
class WorkSleepLoop final : public ThreadBehavior {
 public:
  WorkSleepLoop(double work, sim::SimTime sleep) : work_(work), sleep_(sleep) {}
  Burst next_burst(sim::SimTime, sim::Rng&) override { return {work_, 1.0}; }
  BurstOutcome on_burst_complete(sim::SimTime, sim::Rng&) override {
    return BurstOutcome::SleepFor(sleep_);
  }

 private:
  double work_;
  sim::SimTime sleep_;
};

TEST(MachineTest, StartsAtIdleEquilibrium) {
  Machine m(small_config());
  // Idle temperatures must sit between ambient and a hot die, and the stack
  // must be ordered die > package > heatsink > ambient.
  const auto& nodes = m.thermal_nodes();
  const double die = m.thermal_network().temperature(nodes.die[0]);
  const double pkg = m.thermal_network().temperature(nodes.package);
  const double hs = m.thermal_network().temperature(nodes.heatsink);
  EXPECT_GT(die, 28.0);
  EXPECT_LT(die, 45.0);
  EXPECT_GE(die, pkg);
  EXPECT_GT(pkg, hs);
  EXPECT_GT(hs, m.config().floorplan.ambient_c);
}

TEST(MachineTest, IdleEquilibriumIsStationary) {
  Machine m(small_config());
  const double before = m.die_temperature(0);
  m.run_for(sim::from_sec(5));
  EXPECT_NEAR(m.die_temperature(0), before, 0.2);
}

TEST(MachineTest, FiniteThreadCompletesInExpectedTime) {
  Machine m(small_config());
  const ThreadId tid = m.create_thread("w", ThreadClass::kUser, 0,
                                       std::make_unique<FixedWork>(2.0));
  m.run_for(sim::from_sec(3));
  const Thread& t = m.thread(tid);
  EXPECT_EQ(t.state(), ThreadState::kDone);
  // Alone on a core at nominal frequency: ~2 s plus microsecond overheads.
  EXPECT_NEAR(sim::to_sec(t.finished_at() - t.created_at()), 2.0, 0.01);
  EXPECT_NEAR(t.work_completed(), 2.0, 1e-6);
}

TEST(MachineTest, WorkConservedUnderTimeslicing) {
  // Two threads forced onto one core via affinity: each still completes its
  // work, in ~double the wall time.
  Machine m(small_config());
  const ThreadId a = m.create_thread("a", ThreadClass::kUser, 0,
                                     std::make_unique<FixedWork>(1.0), 0);
  const ThreadId b = m.create_thread("b", ThreadClass::kUser, 0,
                                     std::make_unique<FixedWork>(1.0), 0);
  m.run_for(sim::from_sec(3));
  EXPECT_EQ(m.thread(a).state(), ThreadState::kDone);
  EXPECT_EQ(m.thread(b).state(), ThreadState::kDone);
  EXPECT_NEAR(sim::to_sec(m.thread(b).finished_at()), 2.0, 0.05);
  EXPECT_NEAR(m.thread(a).work_completed(), 1.0, 1e-6);
  EXPECT_NEAR(m.thread(b).work_completed(), 1.0, 1e-6);
}

TEST(MachineTest, ThreadsSpreadAcrossCores) {
  Machine m(small_config());
  for (int i = 0; i < 4; ++i) {
    m.create_thread("w" + std::to_string(i), ThreadClass::kUser, 0,
                    std::make_unique<FixedWork>(1.0));
  }
  m.run_for(sim::from_sec(2));
  // With one thread per core everyone finishes in ~1 s, not 4 s.
  for (ThreadId id = 0; id < 4; ++id) {
    EXPECT_EQ(m.thread(id).state(), ThreadState::kDone);
    EXPECT_LT(sim::to_sec(m.thread(id).finished_at()), 1.2);
  }
}

TEST(MachineTest, SleepWakeCycleWorks) {
  Machine m(small_config());
  const ThreadId tid = m.create_thread(
      "loop", ThreadClass::kUser, 0,
      std::make_unique<WorkSleepLoop>(0.01, sim::from_ms(90)));
  m.run_for(sim::from_sec(1));
  const Thread& t = m.thread(tid);
  // ~10 cycles of (10 ms work + 90 ms sleep).
  EXPECT_GE(t.bursts_completed(), 8u);
  EXPECT_LE(t.bursts_completed(), 12u);
  EXPECT_NEAR(t.work_completed(), 0.01 * t.bursts_completed(), 1e-6);
}

TEST(MachineTest, ExternalWakeUnblocksThread) {
  Machine m(small_config());
  class SleepImmediately final : public ThreadBehavior {
   public:
    Burst next_burst(sim::SimTime, sim::Rng&) override { return {0.001, 1.0}; }
    BurstOutcome on_burst_complete(sim::SimTime, sim::Rng&) override {
      ++completions;
      return BurstOutcome::SleepUntilWoken();
    }
    int completions = 0;
  };
  auto behavior = std::make_unique<SleepImmediately>();
  auto* raw = behavior.get();
  const ThreadId tid =
      m.create_thread("s", ThreadClass::kUser, 0, std::move(behavior));
  m.run_for(sim::from_ms(500));
  EXPECT_EQ(raw->completions, 1);
  EXPECT_EQ(m.thread(tid).state(), ThreadState::kSleeping);
  m.wake_thread(tid);
  m.run_for(sim::from_ms(500));
  EXPECT_EQ(raw->completions, 2);
}

TEST(MachineTest, DvfsSlowsExecutionProportionally) {
  Machine m(small_config());
  m.set_all_dvfs_levels(5);  // 1.596 GHz = 70.6% of nominal
  const ThreadId tid = m.create_thread("w", ThreadClass::kUser, 0,
                                       std::make_unique<FixedWork>(1.0));
  m.run_for(sim::from_sec(2));
  const double ratio = m.config().dvfs.level(5).freq_ghz /
                       m.config().dvfs.nominal().freq_ghz;
  EXPECT_NEAR(sim::to_sec(m.thread(tid).finished_at()), 1.0 / ratio, 0.02);
}

TEST(MachineTest, ClockDutySlowsExecution) {
  Machine m(small_config());
  m.set_all_clock_duty_steps(4);  // 50% duty
  const ThreadId tid = m.create_thread("w", ThreadClass::kUser, 0,
                                       std::make_unique<FixedWork>(1.0));
  m.run_for(sim::from_sec(4));
  // 50% duty plus pipeline drain/refill overhead: strictly slower than 2x.
  const double wall = sim::to_sec(m.thread(tid).finished_at());
  EXPECT_GT(wall, 2.0);
  EXPECT_LT(wall, 2.4);
}

TEST(MachineTest, LoadedMachineHeatsUp) {
  Machine m(small_config());
  const double idle_temp = m.die_temperature(0);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(20));
  EXPECT_GT(m.die_temperature(0), idle_temp + 10.0);
}

TEST(MachineTest, PowerRisesUnderLoad) {
  Machine m(small_config());
  const double idle_power = m.current_total_power();
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(2));
  EXPECT_GT(m.current_total_power(), idle_power + 25.0);
}

TEST(MachineTest, EnergyMatchesMeanPowerTimesTime) {
  Machine m(small_config());
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(1));
  const double e0 = m.energy().total_joules();
  const double p0 = m.current_total_power();
  m.run_for(sim::from_sec(1));
  const double de = m.energy().total_joules() - e0;
  // Power drifts slowly with temperature; 1 s of integration stays close.
  EXPECT_NEAR(de, p0, 0.1 * p0);
}

TEST(MachineTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Machine m(small_config());
    workload::CpuBurnFleet fleet(4, 1.5);
    fleet.deploy(m);
    m.run_for(sim::from_sec(3));
    return std::make_pair(m.die_temperature(2), m.energy().total_joules());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(MachineTest, DifferentSeedsDifferentMeterNoise) {
  MachineConfig cfg;
  cfg.enable_meter = true;
  Machine a(cfg);
  cfg.seed = 0xfeed;
  Machine b(cfg);
  a.run_for(sim::from_ms(10));
  b.run_for(sim::from_ms(10));
  ASSERT_GE(a.meter()->sample_count(), 2u);
  EXPECT_NE(a.meter()->samples()[1].watts, b.meter()->samples()[1].watts);
}

TEST(MachineTest, ContextSwitchesCountedOnMultiplexedCore) {
  Machine m(small_config());
  m.create_thread("a", ThreadClass::kUser, 0,
                  std::make_unique<FixedWork>(0.5), 0);
  m.create_thread("b", ThreadClass::kUser, 0,
                  std::make_unique<FixedWork>(0.5), 0);
  m.run_for(sim::from_sec(2));
  // 1 s of joint work in 100 ms slices: ~10 switches.
  EXPECT_GE(m.core(0).context_switches, 8u);
}

TEST(MachineTest, BusyAndIdleSecondsAccount) {
  Machine m(small_config());
  const ThreadId tid = m.create_thread("w", ThreadClass::kUser, 0,
                                       std::make_unique<FixedWork>(1.0), 0);
  m.run_for(sim::from_sec(4));
  (void)tid;
  const Core& c = m.core(0);
  EXPECT_NEAR(c.busy_seconds, 1.0, 0.02);
  // Idle seconds only accumulate at idle-exit; at minimum the core spent the
  // pre-thread and post-thread time idle or entering idle.
  EXPECT_GE(c.dispatches, 1u);
}

TEST(MachineTest, RunUntilConditionStopsEarly) {
  Machine m(small_config());
  const ThreadId tid = m.create_thread("w", ThreadClass::kUser, 0,
                                       std::make_unique<FixedWork>(0.5));
  const bool hit = m.run_until_condition(
      [&] { return m.thread(tid).state() == ThreadState::kDone; },
      sim::from_sec(10));
  EXPECT_TRUE(hit);
  EXPECT_LT(sim::to_sec(m.now()), 1.0);
}

TEST(MachineTest, RunUntilConditionHonorsDeadline) {
  Machine m(small_config());
  const bool hit =
      m.run_until_condition([] { return false; }, sim::from_ms(50));
  EXPECT_FALSE(hit);
  EXPECT_EQ(m.now(), sim::from_ms(50));
}

TEST(MachineTest, SteadyStateJumpApproximatesLongRun) {
  // The accelerated-settling machinery must land near the true steady state.
  auto settled_temp = [](bool accelerate) {
    Machine m(small_config());
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(m);
    if (accelerate) {
      for (int i = 0; i < 5; ++i) {
        m.mark_power_window();
        m.run_for(sim::from_sec(8));
        m.jump_to_average_power_steady_state();
      }
      m.run_for(sim::from_sec(4));
    } else {
      m.run_for(sim::from_sec(300));
    }
    return m.die_temperature(0);
  };
  EXPECT_NEAR(settled_temp(true), settled_temp(false), 1.0);
}

TEST(MachineTest, InvalidDvfsLevelThrows) {
  Machine m(small_config());
  EXPECT_THROW(m.set_dvfs_level(0, 6), std::out_of_range);
}

TEST(MachineTest, InvalidDutyStepThrows) {
  Machine m(small_config());
  EXPECT_THROW(m.set_clock_duty_step(0, 0), std::out_of_range);
  EXPECT_THROW(m.set_clock_duty_step(0, 9), std::out_of_range);
}

}  // namespace
}  // namespace dimetrodon::sched
