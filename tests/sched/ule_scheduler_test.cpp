#include "sched/ule_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "workload/cpuburn.hpp"
#include "workload/web.hpp"

namespace dimetrodon::sched {
namespace {

std::unique_ptr<Thread> make_thread(ThreadId id) {
  class Noop final : public ThreadBehavior {
    Burst next_burst(sim::SimTime, sim::Rng&) override { return {1.0, 1.0}; }
    BurstOutcome on_burst_complete(sim::SimTime, sim::Rng&) override {
      return BurstOutcome::Exit();
    }
  };
  return std::make_unique<Thread>(id, "t", ThreadClass::kUser, 0,
                                  std::make_unique<Noop>(), sim::Rng(id));
}

TEST(UleSchedulerTest, FreshThreadScoresNeutral) {
  UleScheduler sched(4);
  auto t = make_thread(1);
  EXPECT_NEAR(sched.interactivity_score(*t), 25.0, 1e-9);
  EXPECT_TRUE(sched.is_interactive(*t));
}

TEST(UleSchedulerTest, SleeperScoresInteractive) {
  UleScheduler sched(4);
  auto t = make_thread(1);
  sched.thread_stopped(*t, 0.1, 0);       // ran 100 ms
  sched.apply_sleep_decay(*t, 2.0);       // slept 2 s
  EXPECT_LT(sched.interactivity_score(*t), 5.0);
  EXPECT_TRUE(sched.is_interactive(*t));
}

TEST(UleSchedulerTest, CpuHogScoresBatch) {
  UleScheduler sched(4);
  auto t = make_thread(1);
  for (int i = 0; i < 50; ++i) sched.quantum_expired(*t, 0.1, 0);
  sched.dequeue(*t);
  EXPECT_GT(sched.interactivity_score(*t), 90.0);
  EXPECT_FALSE(sched.is_interactive(*t));
}

TEST(UleSchedulerTest, InteractiveThreadsGetShortSlices) {
  UleSchedulerConfig cfg;
  UleScheduler sched(4, cfg);
  auto sleeper = make_thread(1);
  sched.thread_stopped(*sleeper, 0.05, 0);
  sched.apply_sleep_decay(*sleeper, 3.0);
  auto hog = make_thread(2);
  for (int i = 0; i < 50; ++i) sched.quantum_expired(*hog, 0.1, 0);
  sched.dequeue(*hog);
  EXPECT_EQ(sched.timeslice_for(*sleeper), cfg.interactive_timeslice);
  EXPECT_EQ(sched.timeslice_for(*hog), cfg.base_timeslice);
}

TEST(UleSchedulerTest, InteractiveBeatsBatchInQueue) {
  UleScheduler sched(1);
  auto hog = make_thread(1);
  for (int i = 0; i < 50; ++i) sched.quantum_expired(*hog, 0.1, 0);
  sched.dequeue(*hog);
  auto sleeper = make_thread(2);
  sched.apply_sleep_decay(*sleeper, 3.0);
  sched.enqueue(*hog);
  sched.enqueue(*sleeper);
  EXPECT_EQ(sched.pick_next(0, 0), sleeper.get());
}

TEST(UleSchedulerTest, PerCpuQueuesKeepAffinity) {
  UleScheduler sched(2);
  auto a = make_thread(1);
  a->set_last_core(1);
  sched.enqueue(*a);
  // CPU 1's queue holds it; CPU 0 only obtains it by stealing.
  UleSchedulerConfig no_steal;
  no_steal.work_stealing = false;
  UleScheduler strict(2, no_steal);
  auto b = make_thread(2);
  b->set_last_core(1);
  strict.enqueue(*b);
  EXPECT_EQ(strict.pick_next(0, 0), nullptr);
  EXPECT_EQ(strict.pick_next(1, 0), b.get());
  (void)sched;
}

TEST(UleSchedulerTest, WorkStealingBalancesLoad) {
  UleScheduler sched(2);
  auto a = make_thread(1);
  auto b = make_thread(2);
  a->set_last_core(1);
  b->set_last_core(1);
  sched.enqueue(*a);
  sched.enqueue(*b);
  EXPECT_NE(sched.pick_next(0, 0), nullptr);  // stolen from CPU 1
  EXPECT_EQ(sched.steals(), 1u);
  EXPECT_NE(sched.pick_next(1, 0), nullptr);
}

TEST(UleSchedulerTest, StealRespectsInjectionPin) {
  UleScheduler sched(2);
  auto a = make_thread(1);
  a->set_last_core(1);
  a->set_injection_pin(1);
  sched.enqueue(*a);
  EXPECT_EQ(sched.pick_next(0, 0), nullptr);  // pinned to CPU 1
  EXPECT_EQ(sched.pick_next(1, 0), a.get());
}

TEST(UleSchedulerTest, HistoryDecayForgetsOldBehavior) {
  UleScheduler sched(1);
  auto t = make_thread(1);
  for (int i = 0; i < 50; ++i) sched.quantum_expired(*t, 0.1, 0);
  sched.dequeue(*t);
  EXPECT_FALSE(sched.is_interactive(*t));
  for (int i = 0; i < 40; ++i) {
    sched.periodic(1, i * sim::kSecond);
    sched.apply_sleep_decay(*t, 0.5);
  }
  EXPECT_TRUE(sched.is_interactive(*t));
}

TEST(UleSchedulerTest, RunnableCountSpansQueues) {
  UleScheduler sched(4);
  auto a = make_thread(1);
  auto b = make_thread(2);
  sched.enqueue(*a);
  sched.enqueue(*b);
  EXPECT_EQ(sched.runnable_count(), 2u);
}

// --- machine-level: the Dimetrodon mechanism generalizes to ULE ----------

MachineConfig ule_config() {
  MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.scheduler_kind = SchedulerKind::kUle;
  return cfg;
}

TEST(UleMachineTest, CpuBoundFleetRunsAtFullSpeed) {
  Machine m(ule_config());
  workload::CpuBurnFleet fleet(4, 2.0);
  fleet.deploy(m);
  m.run_until_condition([&] { return fleet.all_done(m); }, sim::from_sec(10));
  EXPECT_TRUE(fleet.all_done(m));
  EXPECT_LT(sim::to_sec(m.now()), 2.3);
}

TEST(UleMachineTest, InjectionWorksUnderUle) {
  Machine m(ule_config());
  core::DimetrodonController ctl(m);
  ctl.sys_set_global(0.5, sim::from_ms(10));
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(20));
  EXPECT_GT(ctl.stats().injections, 100u);
  EXPECT_NEAR(ctl.observed_injection_rate(), 0.5, 0.08);
  // Throughput cost ~ (p/(1-p)) L/q with q = 100 ms batch slices.
  EXPECT_NEAR(fleet.progress(m) / 20.0, 4.0 / 1.1, 0.25);
}

TEST(UleMachineTest, InjectionCoolsUnderUle) {
  auto settled = [](double p) {
    Machine m(ule_config());
    core::DimetrodonController ctl(m);
    if (p > 0) ctl.sys_set_global(p, sim::from_ms(25));
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(m);
    for (int i = 0; i < 4; ++i) {
      m.mark_power_window();
      m.run_for(sim::from_sec(8));
      m.jump_to_average_power_steady_state();
    }
    m.run_for(sim::from_sec(3));
    return m.mean_sensor_temp();
  };
  EXPECT_LT(settled(0.5), settled(0.0) - 5.0);
}

TEST(UleMachineTest, WebWorkloadServesUnderUle) {
  Machine m(ule_config());
  workload::WebWorkload::Config wcfg;
  wcfg.connections = 40;
  wcfg.think_mean_s = 0.5;
  workload::WebWorkload web(wcfg);
  web.deploy(m);
  m.run_for(sim::from_sec(10));
  EXPECT_GT(web.completed_requests(), 400u);
}

}  // namespace
}  // namespace dimetrodon::sched
