// Tests of the machine's dispatch-hook mechanism using a hand-rolled hook
// (the Dimetrodon controller itself is covered in tests/core).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "sched/machine.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon::sched {
namespace {

MachineConfig small_config() {
  MachineConfig cfg;
  cfg.enable_meter = false;
  // This file exercises the literal §3.1 mechanism (idle thread occupies the
  // core for the quantum, victim pinned on the run queue).
  cfg.injection_suspends_thread = false;
  return cfg;
}

MachineConfig suspend_config() {
  MachineConfig cfg;
  cfg.enable_meter = false;
  cfg.injection_suspends_thread = true;
  return cfg;
}

/// Injects an idle quantum on every Nth dispatch of user threads.
class EveryNthHook final : public InjectionHook {
 public:
  EveryNthHook(int n, sim::SimTime quantum) : n_(n), quantum_(quantum) {}

  std::optional<sim::SimTime> before_dispatch(const Thread& t, CoreId,
                                              sim::SimTime) override {
    if (t.thread_class() != ThreadClass::kUser) return std::nullopt;
    ++decisions;
    if (decisions % n_ == 0) return quantum_;
    return std::nullopt;
  }
  void on_injection_complete(const Thread&, CoreId, sim::SimTime) override {
    ++completions;
  }

  int decisions = 0;
  int completions = 0;

 private:
  int n_;
  sim::SimTime quantum_;
};

TEST(MachineInjectionTest, HookSeesEveryDispatch) {
  Machine m(small_config());
  EveryNthHook hook(1000000, sim::from_ms(10));  // effectively never injects
  m.set_injection_hook(&hook);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(1));
  // 4 cores x 10 quantum expiries per second.
  EXPECT_GE(hook.decisions, 36);
  EXPECT_LE(hook.decisions, 48);
}

TEST(MachineInjectionTest, InjectionRunsIdleQuantumThenResumes) {
  Machine m(small_config());
  EveryNthHook hook(2, sim::from_ms(50));
  m.set_injection_hook(&hook);
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_sec(2));
  EXPECT_GT(hook.completions, 0);
  EXPECT_EQ(hook.completions, hook.decisions / 2);
  // Alternating inject/run: one 50 ms idle per 100 ms execution quantum, so
  // the thread completes work at 2/3 of wall-clock rate.
  const Thread& t = m.thread(fleet.threads()[0]);
  EXPECT_GT(t.injections_suffered(), 0u);
  EXPECT_NEAR(t.work_completed(), 2.0 / (1.0 + 50.0 / 100.0), 0.1);
}

TEST(MachineInjectionTest, InjectedIdleTimeAccounted) {
  Machine m(small_config());
  EveryNthHook hook(2, sim::from_ms(50));
  m.set_injection_hook(&hook);
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_sec(2));
  const Core& c = m.core(m.thread(fleet.threads()[0]).last_core());
  EXPECT_NEAR(c.injected_idle_seconds,
              0.05 * static_cast<double>(hook.completions), 0.01);
}

TEST(MachineInjectionTest, VictimPinnedDuringInjection) {
  // One thread, hook injects a long quantum; during the idle window no other
  // core may steal the pinned victim even though three cores are free.
  Machine m(small_config());
  class InjectOnceHook final : public InjectionHook {
   public:
    std::optional<sim::SimTime> before_dispatch(const Thread& t, CoreId,
                                                sim::SimTime) override {
      if (t.thread_class() != ThreadClass::kUser || fired) return std::nullopt;
      fired = true;
      return sim::from_ms(200);
    }
    void on_injection_complete(const Thread&, CoreId, sim::SimTime) override {}
    bool fired = false;
  };
  InjectOnceHook hook;
  m.set_injection_hook(&hook);
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_ms(100));  // inside the injected quantum
  const Thread& t = m.thread(fleet.threads()[0]);
  EXPECT_EQ(t.state(), ThreadState::kRunnable);
  EXPECT_NE(t.injection_pin(), kNoCore);
  EXPECT_NEAR(t.work_completed(), 0.0, 1e-9);
  m.run_for(sim::from_ms(200));
  // After the quantum the pin is released and the thread runs again.
  EXPECT_EQ(t.injection_pin(), kNoCore);
  EXPECT_GT(t.work_completed(), 0.05);
}

TEST(MachineInjectionTest, InjectionLowersTemperatureAndThroughput) {
  auto run = [](bool inject) {
    Machine m(small_config());
    EveryNthHook hook(inject ? 2 : 1000000, sim::from_ms(50));
    m.set_injection_hook(&hook);
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(m);
    m.run_for(sim::from_sec(30));
    return std::make_pair(m.die_temperature(0), fleet.progress(m));
  };
  const auto unconstrained = run(false);
  const auto injected = run(true);
  EXPECT_LT(injected.first, unconstrained.first - 2.0);
  EXPECT_LT(injected.second, unconstrained.second * 0.8);
}

TEST(MachineInjectionTest, CoreEntersIdleCStateDuringInjection) {
  Machine m(small_config());
  EveryNthHook hook(1, sim::from_ms(100));  // always inject
  m.set_injection_hook(&hook);
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_ms(50));
  const Core& c = m.core(m.thread(fleet.threads()[0]).injection_pin());
  EXPECT_EQ(c.activity, CoreActivity::kIdle);
  EXPECT_EQ(c.op.cstate, power::CState::kC1E);
}

/// Injects a fixed quantum on every dispatch of one specific thread.
class TargetOneHook final : public InjectionHook {
 public:
  TargetOneHook(ThreadId target, sim::SimTime quantum)
      : target_(target), quantum_(quantum) {}
  std::optional<sim::SimTime> before_dispatch(const Thread& t, CoreId,
                                              sim::SimTime) override {
    if (t.id() == target_) return quantum_;
    return std::nullopt;
  }
  void on_injection_complete(const Thread&, CoreId, sim::SimTime) override {
    ++completions;
  }
  int completions = 0;

 private:
  ThreadId target_;
  sim::SimTime quantum_;
};

TEST(MachineInjectionTest, SuspensionModeFreesCoreForOtherThreads) {
  // Under suspension semantics (Fig. 5), injecting one thread must not stall
  // the others: five runnable threads, four cores, one permanently injected.
  Machine m(suspend_config());
  workload::CpuBurnFleet fleet(5);
  fleet.deploy(m);
  TargetOneHook hook(fleet.threads()[4], sim::from_ms(100));
  m.set_injection_hook(&hook);
  m.run_for(sim::from_sec(4));
  // The four unshackled threads share four cores at full speed.
  for (int i = 0; i < 4; ++i) {
    EXPECT_GT(m.thread(fleet.threads()[i]).work_completed(), 3.5) << i;
  }
  // The victim makes almost no progress (only slivers between quanta).
  EXPECT_LT(m.thread(fleet.threads()[4]).work_completed(), 0.4);
  EXPECT_GT(hook.completions, 10);
}

TEST(MachineInjectionTest, SuspensionModeVictimSleepsNotQueued) {
  Machine m(suspend_config());
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  TargetOneHook hook(fleet.threads()[0], sim::from_ms(300));
  m.set_injection_hook(&hook);
  m.run_for(sim::from_ms(100));
  const Thread& t = m.thread(fleet.threads()[0]);
  EXPECT_EQ(t.state(), ThreadState::kSleeping);
  EXPECT_TRUE(t.injection_suspended());
  // External wakeups must not cut the idle quantum short.
  m.wake_thread(t.id());
  EXPECT_EQ(t.state(), ThreadState::kSleeping);
}

TEST(MachineInjectionTest, SuspensionAndLiteralModesAgreeOnePerCore) {
  // With one thread per core the two semantics coincide: same throughput and
  // near-identical thermals.
  auto run = [](bool suspend) {
    MachineConfig cfg;
    cfg.enable_meter = false;
    cfg.injection_suspends_thread = suspend;
    Machine m(cfg);
    EveryNthHook hook(2, sim::from_ms(50));
    m.set_injection_hook(&hook);
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(m);
    m.run_for(sim::from_sec(20));
    return std::make_pair(fleet.progress(m), m.die_temperature(0));
  };
  const auto literal = run(false);
  const auto suspended = run(true);
  EXPECT_NEAR(suspended.first, literal.first, 0.05 * literal.first);
  EXPECT_NEAR(suspended.second, literal.second, 1.5);
}

TEST(MachineInjectionTest, NullHookMeansNoInjection) {
  Machine m(small_config());
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_sec(1));
  EXPECT_EQ(m.thread(fleet.threads()[0]).injections_suffered(), 0u);
  EXPECT_NEAR(m.thread(fleet.threads()[0]).work_completed(), 1.0, 0.01);
}

}  // namespace
}  // namespace dimetrodon::sched
