#include "scenario/recovery.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::scenario {
namespace {

obs::TraceEvent complete_at(sim::SimTime at, double latency_s) {
  obs::TraceEvent e;
  e.kind = obs::EventKind::kRequestComplete;
  e.at = at;
  e.value = latency_s;
  return e;
}

obs::TraceEvent routed_at(sim::SimTime at) {
  obs::TraceEvent e;
  e.kind = obs::EventKind::kRequestRouted;
  e.at = at;
  return e;
}

obs::TraceEvent drain_at(sim::SimTime at, std::uint32_t node, bool begin) {
  obs::TraceEvent e;
  e.kind = obs::EventKind::kNodeDrain;
  e.at = at;
  e.core = static_cast<std::uint16_t>(node);
  e.arg = begin ? 1 : 0;
  return e;
}

/// Fill window `w` (1 s windows) with `n` completions of the given latency.
void fill_window(RecoveryTracker& t, int w, double latency_s, int n = 100) {
  for (int i = 0; i < n; ++i) {
    t.on_event(complete_at(sim::from_sec(w) + sim::from_ms(i), latency_s));
  }
}

TEST(RecoveryTrackerTest, NoMarksReportsZeroRecovery) {
  RecoveryTracker t;
  fill_window(t, 0, 0.01);
  fill_window(t, 1, 0.01);
  const RecoveryReport r = t.finalize(sim::from_sec(2));
  EXPECT_EQ(r.marks, 0u);
  EXPECT_EQ(r.recovery_p99_s, 0.0);
  EXPECT_TRUE(r.recovered());
  EXPECT_NEAR(r.baseline_p99_s, 0.01, 0.005);
}

TEST(RecoveryTrackerTest, ThresholdSitsAboveTheBaselineEnvelope) {
  RecoveryTracker t;
  fill_window(t, 0, 0.01);
  fill_window(t, 1, 0.04);  // the noisiest pre-mark window sets the envelope
  t.mark_disturbance(sim::from_sec(2));
  const RecoveryReport r = t.finalize(sim::from_sec(6));
  // max(1.5 * envelope, baseline + 20 ms) with envelope ~0.04.
  EXPECT_NEAR(r.threshold_p99_s, 1.5 * 0.04, 0.01);
}

TEST(RecoveryTrackerTest, RecoveryRunsToTheEndOfTheLastFailingWindow) {
  RecoveryTracker t;
  fill_window(t, 0, 0.01);
  fill_window(t, 1, 0.01);
  fill_window(t, 2, 0.01);
  t.mark_disturbance(sim::from_sec(3));
  fill_window(t, 3, 0.5);  // damage lands here...
  fill_window(t, 4, 0.5);  // ...and keeps landing (completion-time lag)
  fill_window(t, 5, 0.01);
  fill_window(t, 6, 0.01);
  fill_window(t, 7, 0.01);
  const RecoveryReport r = t.finalize(sim::from_sec(8));
  // Last failing window is w4; recovery = end of w4 (5 s) - mark (3 s).
  EXPECT_NEAR(r.recovery_p99_s, 2.0, 1e-9);
  EXPECT_TRUE(r.recovered());
}

TEST(RecoveryTrackerTest, LateFailureWithoutCalmTailIsNeverRecovered) {
  RecoveryTracker t;
  fill_window(t, 0, 0.01);
  t.mark_disturbance(sim::from_sec(1));
  fill_window(t, 1, 0.01);
  fill_window(t, 2, 0.5);  // fails at w2; calm needs to hold through w5
  fill_window(t, 3, 0.01);
  const RecoveryReport r = t.finalize(sim::from_sec(4));  // run ends at 4 s
  EXPECT_EQ(r.recovery_p99_s, -1.0);
  EXPECT_FALSE(r.recovered());
}

TEST(RecoveryTrackerTest, EmptyWindowsCountAsCalm) {
  RecoveryTracker t;
  fill_window(t, 0, 0.01);
  t.mark_disturbance(sim::from_sec(1));
  fill_window(t, 1, 0.5);
  // w2..w4 empty: no completions carry no evidence of elevated latency.
  const RecoveryReport r = t.finalize(sim::from_sec(5));
  EXPECT_NEAR(r.recovery_p99_s, 1.0, 1e-9);
}

TEST(RecoveryTrackerTest, SettleExcludesWarmupFromBaselineAndScan) {
  // An anomalous cold-start spike in w0 would blow up the envelope (and
  // with it the threshold) unless the settle span masks it out.
  RecoveryTracker with_settle(sim::kSecond, sim::from_sec(2));
  RecoveryTracker without(sim::kSecond);
  for (RecoveryTracker* t : {&with_settle, &without}) {
    fill_window(*t, 0, 1.0);  // warm-up artifact
    fill_window(*t, 1, 0.02);
    fill_window(*t, 2, 0.02);
    fill_window(*t, 3, 0.02);
    t->mark_disturbance(sim::from_sec(4));
    fill_window(*t, 4, 0.02);
    fill_window(*t, 5, 0.02);
  }
  const RecoveryReport masked = with_settle.finalize(sim::from_sec(6));
  const RecoveryReport raw = without.finalize(sim::from_sec(6));
  EXPECT_LT(masked.threshold_p99_s, 0.1);
  EXPECT_GT(raw.threshold_p99_s, 1.0);
}

TEST(RecoveryTrackerTest, PeakBacklogTracksRoutedMinusCompleted) {
  RecoveryTracker t;
  for (int i = 0; i < 5; ++i) t.on_event(routed_at(sim::from_ms(i)));
  t.on_event(complete_at(sim::from_ms(10), 0.01));
  t.on_event(complete_at(sim::from_ms(11), 0.01));
  // w0 ends with 5 routed, 2 completed -> 3 in flight.
  for (int i = 0; i < 3; ++i) {
    t.on_event(complete_at(sim::from_sec(1) + sim::from_ms(i), 0.01));
  }
  const RecoveryReport r = t.finalize(sim::from_sec(2));
  EXPECT_EQ(r.peak_backlog, 3u);
}

TEST(RecoveryTrackerTest, ShedCountSurfaces) {
  RecoveryTracker t;
  obs::TraceEvent shed;
  shed.kind = obs::EventKind::kRequestShed;
  shed.at = sim::from_ms(5);
  t.on_event(shed);
  t.on_event(shed);
  EXPECT_EQ(t.finalize(sim::from_sec(1)).requests_shed, 2u);
}

TEST(RecoveryTrackerTest, DrainEpisodesAccumulateAndCloseAtFinalize) {
  RecoveryTracker t;
  t.on_event(drain_at(sim::from_sec(1), 3, true));
  t.on_event(drain_at(sim::from_sec(3), 3, false));  // closed: 2 s
  t.on_event(drain_at(sim::from_sec(8), 5, true));   // open at finalize: 2 s
  const RecoveryReport r = t.finalize(sim::from_sec(10));
  EXPECT_EQ(r.drain_episodes, 2u);
  EXPECT_NEAR(r.drain_total_s, 4.0, 1e-9);
}

}  // namespace
}  // namespace dimetrodon::scenario
