#include "scenario/script.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dimetrodon::scenario {
namespace {

std::string canon(const ScenarioScript& s) {
  sim::CanonWriter w;
  append_canonical_script(w, s);
  return w.take();
}

TEST(ScenarioScriptTest, BuildersMarkDisturbancesNotRemedies) {
  ScenarioScript s;
  s.drain(sim::from_sec(1), 0)
      .undrain(sim::from_sec(2), 0)
      .remove(sim::from_sec(3), 1)
      .join(sim::from_sec(4), cluster::NodeSpec{})
      .set_fan(sim::from_sec(5), 2, 0.5)
      .retune_governor(sim::from_sec(6), 2, control::GovernorSpec{})
      .failpoint(sim::from_sec(7), 99);
  ASSERT_EQ(s.directives.size(), 7u);
  EXPECT_TRUE(s.directives[0].mark_recovery);   // drain disturbs
  EXPECT_FALSE(s.directives[1].mark_recovery);  // undrain remedies
  EXPECT_TRUE(s.directives[2].mark_recovery);   // removal disturbs
  EXPECT_FALSE(s.directives[3].mark_recovery);  // join remedies
  EXPECT_TRUE(s.directives[4].mark_recovery);   // fan degradation disturbs
  EXPECT_FALSE(s.directives[5].mark_recovery);  // retune remedies
  EXPECT_TRUE(s.directives[6].mark_recovery);   // failpoint disturbs
}

TEST(ScenarioScriptTest, RollingInjectionStaggersByRack) {
  ScenarioScript s;
  s.rolling_injection(sim::from_sec(10), sim::from_sec(2), /*num_nodes=*/6,
                      /*nodes_per_rack=*/2, 0.4);
  ASSERT_EQ(s.directives.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const Directive& d = s.directives[i];
    EXPECT_EQ(d.kind, DirectiveKind::kSetInjection);
    EXPECT_EQ(d.node, i);
    EXPECT_EQ(d.probability, 0.4);
    // Rack r = i / 2 changes at 10 s + r * 2 s.
    EXPECT_EQ(d.at, sim::from_sec(10) + sim::from_sec(2) *
                                            static_cast<sim::SimTime>(i / 2));
    EXPECT_FALSE(d.mark_recovery);  // a staged rollout is not a disturbance
  }
}

TEST(ScenarioScriptTest, HeatWaveRampsUpHoldsAndReturnsToBase) {
  ScenarioScript s;
  s.heat_wave(sim::from_sec(5), 25.0, 45.0, sim::from_sec(4), sim::from_sec(2),
              /*steps=*/4);
  ASSERT_GE(s.directives.size(), 2u);
  for (const Directive& d : s.directives) {
    EXPECT_EQ(d.kind, DirectiveKind::kCracSet);
  }
  // Only the onset marks recovery: the wave is ONE disturbance, not many.
  EXPECT_TRUE(s.directives.front().mark_recovery);
  for (std::size_t i = 1; i < s.directives.size(); ++i) {
    EXPECT_FALSE(s.directives[i].mark_recovery);
  }
  // The ramp peaks at the requested supply and the last step restores base.
  double peak = 0.0;
  for (const Directive& d : s.directives) peak = std::max(peak, d.crac_c);
  EXPECT_EQ(peak, 45.0);
  EXPECT_EQ(s.directives.back().crac_c, 25.0);
  // Monotone non-decreasing times.
  for (std::size_t i = 1; i < s.directives.size(); ++i) {
    EXPECT_GE(s.directives[i].at, s.directives[i - 1].at);
  }
}

TEST(ScenarioScriptTest, CanonicalFragmentCoversEveryField) {
  ScenarioScript base;
  base.drain(sim::from_sec(1), 0);
  EXPECT_EQ(canon(base), canon(base));  // deterministic

  // Any field change — even one the directive kind never reads — must
  // produce a different canonical fragment, or edited scenarios could
  // silently share a cache entry.
  ScenarioScript changed = base;
  changed.directives[0].fan_fraction = 0.9;
  EXPECT_NE(canon(base), canon(changed));

  ScenarioScript other_time = base;
  other_time.directives[0].at += 1;
  EXPECT_NE(canon(base), canon(other_time));

  ScenarioScript other_kind = base;
  other_kind.directives[0].kind = DirectiveKind::kUndrain;
  EXPECT_NE(canon(base), canon(other_kind));

  ScenarioScript extra = base;
  extra.failpoint(sim::from_sec(2), 7);
  EXPECT_NE(canon(base), canon(extra));
}

TEST(ScenarioScriptTest, DirectiveKindNamesAreStable) {
  EXPECT_EQ(directive_kind_name(DirectiveKind::kDrain), "drain");
  EXPECT_EQ(directive_kind_name(DirectiveKind::kCracSet), "crac_set");
  EXPECT_EQ(directive_kind_name(DirectiveKind::kFailpoint), "failpoint");
}

}  // namespace
}  // namespace dimetrodon::scenario
