#include "scenario/trace_file.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>

namespace dimetrodon::scenario {
namespace {

cluster::ArrivalTrace sample_trace() {
  cluster::ArrivalTrace t;
  for (std::int64_t i = 0; i < 5; ++i) {
    cluster::ArrivalRecord r;
    r.at = 1000 * (i + 1) + i;  // strictly increasing, non-uniform
    r.affinity = static_cast<std::uint32_t>(i * 7);
    r.size_class = static_cast<std::uint8_t>(i % 3);
    t.records.push_back(r);
  }
  return t;
}

TEST(TraceFileTest, EncodeDecodeRoundTrip) {
  const cluster::ArrivalTrace t = sample_trace();
  const std::string bytes = encode_trace(t);
  EXPECT_EQ(bytes.size(), kTraceHeaderBytes + 5 * kTraceRecordBytes);
  const cluster::ArrivalTrace back = decode_trace(bytes);
  EXPECT_EQ(back.records, t.records);
  EXPECT_EQ(back.content_hash(), t.content_hash());
}

TEST(TraceFileTest, EmptyTraceRoundTrips) {
  const std::string bytes = encode_trace(cluster::ArrivalTrace{});
  EXPECT_EQ(bytes.size(), kTraceHeaderBytes);
  EXPECT_TRUE(decode_trace(bytes).records.empty());
}

TEST(TraceFileTest, SaveLoadRoundTrip) {
  const cluster::ArrivalTrace t = sample_trace();
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "roundtrip.dmtrace")
          .string();
  save_trace(path, t);
  EXPECT_EQ(load_trace(path).records, t.records);
  // The atomic-rename writer must not leave its temp file behind.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(
           std::filesystem::path(path).parent_path())) {
    files += e.path().extension() == ".dmtrace";
  }
  EXPECT_EQ(files, 1u);
  std::filesystem::remove(path);
}

TEST(TraceFileTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/dir/missing.dmtrace"),
               std::runtime_error);
}

// The fuzz core: a prefix of a valid file truncated at ANY byte must be
// rejected (the exact-length check catches every cut, including mid-header
// and mid-record), and one extra byte must be rejected too.
TEST(TraceFileTest, TruncationAtEveryByteIsRejected) {
  const std::string bytes = encode_trace(sample_trace());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(decode_trace(bytes.substr(0, len)), std::runtime_error)
        << "truncated at byte " << len;
  }
  EXPECT_THROW(decode_trace(bytes + '\0'), std::runtime_error);
}

TEST(TraceFileTest, BadMagicIsRejected) {
  std::string bytes = encode_trace(sample_trace());
  bytes[0] ^= 0x01;
  EXPECT_THROW(decode_trace(bytes), std::runtime_error);
}

TEST(TraceFileTest, UnknownVersionIsRejected) {
  std::string bytes = encode_trace(sample_trace());
  bytes[8] = 2;  // version field (LE u32 at offset 8)
  EXPECT_THROW(decode_trace(bytes), std::runtime_error);
}

TEST(TraceFileTest, NonzeroReservedIsRejected) {
  std::string bytes = encode_trace(sample_trace());
  bytes[12] = 1;  // reserved field (LE u32 at offset 12)
  EXPECT_THROW(decode_trace(bytes), std::runtime_error);
}

TEST(TraceFileTest, ContentCorruptionFailsTheHash) {
  std::string bytes = encode_trace(sample_trace());
  // Flip one bit inside the first record's affinity word: the length and
  // header stay valid, so only the FNV content hash can catch it.
  bytes[kTraceHeaderBytes + 8] ^= 0x01;
  EXPECT_THROW(decode_trace(bytes), std::runtime_error);
}

TEST(TraceFileTest, NonMonotoneTimestampsAreRejected) {
  cluster::ArrivalTrace t = sample_trace();
  t.records[2].at = t.records[1].at;  // equal: not strictly increasing
  EXPECT_THROW(decode_trace(encode_trace(t)), std::runtime_error);
  t.records[2].at = t.records[1].at - 1;  // decreasing
  EXPECT_THROW(decode_trace(encode_trace(t)), std::runtime_error);
}

TEST(TraceFileTest, NegativeTimestampIsRejected) {
  cluster::ArrivalTrace t;
  cluster::ArrivalRecord r;
  r.at = -5;
  t.records.push_back(r);
  EXPECT_THROW(decode_trace(encode_trace(t)), std::runtime_error);
}

TEST(TraceFileTest, OutOfRangeSizeClassIsRejected) {
  cluster::ArrivalTrace t = sample_trace();
  t.records[0].size_class = cluster::ArrivalRecord::kMaxSizeClass + 1;
  EXPECT_THROW(decode_trace(encode_trace(t)), std::runtime_error);
}

TEST(TraceFileTest, RecorderCapturesOnlyRoutedEvents) {
  TraceRecorder rec;
  obs::TraceEvent routed;
  routed.kind = obs::EventKind::kRequestRouted;
  routed.at = 42;
  routed.arg = 3;        // size class
  routed.value = 7.0;    // affinity
  rec.on_event(routed);
  obs::TraceEvent complete;
  complete.kind = obs::EventKind::kRequestComplete;
  complete.at = 99;
  rec.on_event(complete);
  ASSERT_EQ(rec.trace().records.size(), 1u);
  EXPECT_EQ(rec.trace().records[0].at, 42);
  EXPECT_EQ(rec.trace().records[0].size_class, 3);
  EXPECT_EQ(rec.trace().records[0].affinity, 7u);
}

}  // namespace
}  // namespace dimetrodon::scenario
