// Scenario engine integration: directives act on a real cluster, replay
// reproduces recorded runs, and the whole stack stays bit-identical at every
// fleet-lane and sweep-thread count (the scenario counterpart of
// tests/cluster/fleet_parallel_test.cpp).
#include "scenario/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/fleet_spec.hpp"
#include "runner/fault_injection.hpp"
#include "runner/sweep_engine.hpp"
#include "scenario/trace_file.hpp"

namespace dimetrodon::scenario {
namespace {

sched::MachineConfig lean_machine() {
  sched::MachineConfig m;
  m.enable_meter = false;
  return m;
}

control::GovernorSpec test_governor() {
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kHysteresis;
  g.hysteresis.trip_c = 45.0;
  g.hysteresis.release_c = 43.0;
  g.hysteresis.hot_probability = 0.4;
  return g;
}

/// 2 racks x 2 nodes with CRAC coupling: small enough to run in
/// milliseconds, big enough that churn leaves survivors.
cluster::FleetSpec small_fleet(double per_node_rps = 150.0,
                               bool governed = false) {
  workload::WebWorkload::Config web = cluster::ClusterConfig::open_loop_web();
  web.demand_mean_s = 0.005;
  cluster::FleetSpec spec = cluster::FleetSpec::racks(2)
                                .nodes_per_rack(2)
                                .with_machine(lean_machine())
                                .with_web(web)
                                .with_crac(cluster::RackParams{})
                                .with_load(per_node_rps * 4)
                                .with_telemetry(sim::from_ms(20))
                                .with_policy(cluster::PolicyKind::kRoundRobin)
                                .for_duration(sim::from_sec(3));
  if (governed) spec.with_governor(test_governor());
  return spec;
}

TEST(ScenarioEngineTest, DirectivesDriveTheAdminSurface) {
  ScenarioSpec spec;
  spec.base = small_fleet().build();
  cluster::NodeSpec joiner;
  joiner.fan_speed_fraction = 0.9;
  spec.script.drain(sim::from_ms(500), 0)
      .remove(sim::from_ms(1000), 1)
      .join(sim::from_ms(1500), joiner, sim::from_ms(250))
      .undrain(sim::from_ms(2000), 0);
  ScenarioEngine eng(spec);
  const ScenarioOutcome out = eng.run();
  EXPECT_EQ(out.result.counters.scenario_directives, 4u);
  EXPECT_EQ(out.result.counters.node_joins, 1u);
  EXPECT_EQ(out.result.counters.node_removals, 1u);
  EXPECT_EQ(out.recovery.marks, 2u);  // drain + remove disturb
  EXPECT_GT(out.result.completed, 0u);
  // The joined node exists and served traffic after its join time.
  ASSERT_EQ(out.result.nodes.size(), 5u);
  EXPECT_GT(out.result.nodes[4].routed, 0u);
}

TEST(ScenarioEngineTest, RemovalRehomesQueuedRequests) {
  // Oversaturated (util > 1) so queues grow from t=0 and the removed node
  // is guaranteed to hold queued externals at the removal instant; those
  // must migrate, not vanish.
  ScenarioSpec spec;
  spec.base = small_fleet(/*per_node_rps=*/1200.0).build();
  spec.script.remove(sim::from_ms(1200), 2);
  ScenarioEngine eng(spec);
  const ScenarioOutcome out = eng.run();
  EXPECT_GT(out.result.counters.requests_rehomed, 0u);
  EXPECT_EQ(out.result.counters.requests_shed, 0u);
  // Everything offered before removal was eventually served somewhere.
  EXPECT_EQ(out.result.counters.node_removals, 1u);
  EXPECT_GT(out.result.completed, 0u);
}

TEST(ScenarioEngineTest, DirectivesPastTheDurationNeverApply) {
  ScenarioSpec spec;
  spec.base = small_fleet().build();
  spec.script.drain(sim::from_sec(10), 0);  // beyond the 3 s run
  ScenarioEngine eng(spec);
  const ScenarioOutcome out = eng.run();
  EXPECT_EQ(out.result.counters.scenario_directives, 0u);
  EXPECT_EQ(out.recovery.marks, 0u);
}

TEST(ScenarioEngineTest, KeyedFailpointStormFiresOnlyItsKey) {
  auto& inj = runner::fault::FaultInjector::instance();
  runner::fault::FaultRule rule;
  rule.action = runner::fault::Action::kThrowLogic;
  rule.key = 42;
  inj.arm("scenario.directive", rule);

  // A directive with a different key sails through...
  ScenarioSpec pass;
  pass.base = small_fleet().build();
  pass.script.failpoint(sim::from_ms(500), 7);
  EXPECT_NO_THROW(ScenarioEngine(pass).run());

  // ...the matching key detonates.
  ScenarioSpec hit;
  hit.base = small_fleet().build();
  hit.script.failpoint(sim::from_ms(500), 42);
  ScenarioEngine eng(hit);
  EXPECT_THROW(eng.run(), std::runtime_error);
  inj.disarm_all();
}

TEST(ScenarioEngineTest, ReplayReproducesTheRecordedRunBitIdentically) {
  // Record a plain Poisson run...
  auto recorder = std::make_shared<TraceRecorder>();
  auto recorded_fleet =
      small_fleet()
          .with_trace_sink([recorder] { return recorder; })
          .make_cluster();
  const cluster::ClusterResult original =
      recorded_fleet->run(sim::from_sec(3));
  auto trace =
      std::make_shared<cluster::ArrivalTrace>(recorder->take());
  ASSERT_GT(trace->records.size(), 100u);

  // ...then replay it open-loop: the completion stream must match exactly
  // (the replay path never draws from the arrival RNG).
  cluster::ClusterRunSpec replay = small_fleet().build();
  replay.cluster.arrival_trace = trace;
  auto replay_fleet = cluster::Cluster{replay.cluster,
                                       cluster::make_policy(replay.policy)};
  const cluster::ClusterResult replayed = replay_fleet.run(sim::from_sec(3));
  EXPECT_EQ(replayed.offered, original.offered);
  EXPECT_EQ(replayed.completed, original.completed);
  EXPECT_EQ(replayed.qos.total, original.qos.total);
  EXPECT_EQ(replayed.qos.p99_latency_s, original.qos.p99_latency_s);
  EXPECT_EQ(replayed.qos.mean_latency_s, original.qos.mean_latency_s);
  EXPECT_EQ(replayed.fleet_peak_exact_c, original.fleet_peak_exact_c);
}

ScenarioSpec stress_spec(std::size_t fleet_threads) {
  ScenarioSpec spec;
  spec.base =
      small_fleet(/*per_node_rps=*/200.0, /*governed=*/true).build();
  spec.base.cluster.fleet_threads = fleet_threads;
  cluster::NodeSpec joiner;
  joiner.governor = test_governor();
  spec.script.drain(sim::from_ms(600), 0)
      .join(sim::from_ms(900), joiner, sim::from_ms(200))
      .undrain(sim::from_ms(1200), 0)
      .heat_wave(sim::from_ms(1400), cluster::RackParams{}.crac_supply_c,
                 40.0, sim::from_ms(600), sim::from_ms(300), 3);
  spec.recovery_settle = sim::from_ms(400);
  return spec;
}

void expect_outcomes_identical(const ScenarioOutcome& a,
                               const ScenarioOutcome& b) {
  EXPECT_EQ(a.result.offered, b.result.offered);
  EXPECT_EQ(a.result.completed, b.result.completed);
  EXPECT_EQ(a.result.qos.total, b.result.qos.total);
  EXPECT_EQ(a.result.qos.p99_latency_s, b.result.qos.p99_latency_s);
  EXPECT_EQ(a.result.qos.mean_latency_s, b.result.qos.mean_latency_s);
  EXPECT_EQ(a.result.fleet_peak_exact_c, b.result.fleet_peak_exact_c);
  EXPECT_EQ(a.result.counters.injections, b.result.counters.injections);
  EXPECT_EQ(a.result.drains, b.result.drains);
  EXPECT_EQ(a.recovery.baseline_p99_s, b.recovery.baseline_p99_s);
  EXPECT_EQ(a.recovery.threshold_p99_s, b.recovery.threshold_p99_s);
  EXPECT_EQ(a.recovery.recovery_p99_s, b.recovery.recovery_p99_s);
  EXPECT_EQ(a.recovery.peak_backlog, b.recovery.peak_backlog);
  EXPECT_EQ(a.recovery.drain_total_s, b.recovery.drain_total_s);
  EXPECT_EQ(a.recovery.drain_episodes, b.recovery.drain_episodes);
}

TEST(ScenarioEngineTest, BitIdenticalAcrossFleetLaneCounts) {
  const ScenarioOutcome serial = ScenarioEngine(stress_spec(1)).run();
  for (const std::size_t lanes : {2u, 8u}) {
    const ScenarioOutcome parallel =
        ScenarioEngine(stress_spec(lanes)).run();
    SCOPED_TRACE(lanes);
    expect_outcomes_identical(serial, parallel);
  }
}

TEST(ScenarioEngineTest, BitIdenticalAcrossSweepThreadCounts) {
  const ScenarioSpec spec = stress_spec(0);
  std::vector<runner::RunRecord> per_thread;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    runner::SweepEngineConfig cfg;
    cfg.threads = threads;
    cfg.use_cache = false;
    cfg.progress = false;
    runner::SweepEngine engine(spec.base.cluster.machine, cfg);
    runner::SweepResult result = engine.run({to_run_spec(spec)});
    ASSERT_TRUE(result.errors.empty());
    per_thread.push_back(result.records[0]);
  }
  for (std::size_t i = 1; i < per_thread.size(); ++i) {
    for (const char* key :
         {"offered", "completed", "recovery_p99_s", "baseline_p99_s",
          "threshold_p99_s", "peak_backlog", "fleet_peak_exact_c",
          "energy_j", "drains", "requests_rehomed"}) {
      SCOPED_TRACE(key);
      EXPECT_EQ(per_thread[i].metric(key), per_thread[0].metric(key));
    }
    EXPECT_EQ(per_thread[i].result.qos->p99_latency_s,
              per_thread[0].result.qos->p99_latency_s);
  }
}

}  // namespace
}  // namespace dimetrodon::scenario
