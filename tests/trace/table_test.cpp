#include "trace/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dimetrodon::trace {
namespace {

TEST(TableTest, PrintsHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.09"});
  t.add_row({"beta", "1.54"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, ColumnsAlignToWidestCell) {
  Table t({"x", "y"});
  t.add_row({"longvalue", "1"});
  std::ostringstream os;
  t.print(os);
  std::istringstream is(os.str());
  std::string header;
  std::string rule;
  std::string row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  // The y-column of the header starts at the same offset as in the row.
  EXPECT_EQ(header.find('y'), row.find('1'));
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  EXPECT_NO_THROW(t.print(os));
}

TEST(FmtTest, FormatsLikePrintf) {
  EXPECT_EQ(fmt("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(fmt("p=%.2f,L=%dms", 0.5, 25), "p=0.50,L=25ms");
}

}  // namespace
}  // namespace dimetrodon::trace
