#include "trace/series.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dimetrodon::trace {
namespace {

std::vector<SeriesPoint> ramp(std::size_t n) {
  std::vector<SeriesPoint> s;
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back({static_cast<double>(i), static_cast<double>(i)});
  }
  return s;
}

TEST(DownsampleTest, ShortSeriesPassesThrough) {
  const auto s = ramp(10);
  const auto out = downsample(s, 20);
  EXPECT_EQ(out.size(), 10u);
}

TEST(DownsampleTest, ReducesToRequestedPoints) {
  const auto out = downsample(ramp(1000), 50);
  EXPECT_LE(out.size(), 50u);
  EXPECT_GE(out.size(), 45u);
}

TEST(DownsampleTest, PreservesMeanOfRamp) {
  const auto s = ramp(1000);
  const auto out = downsample(s, 40);
  double sum = 0.0;
  for (const auto& p : out) sum += p.value;
  EXPECT_NEAR(sum / static_cast<double>(out.size()), 499.5, 15.0);
}

TEST(DownsampleTest, TimesMonotone) {
  const auto out = downsample(ramp(1000), 37);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out[i].t, out[i - 1].t);
  }
}

TEST(DownsampleTest, DegenerateTimeSpanReturnsSinglePoint) {
  std::vector<SeriesPoint> s{{5.0, 1.0}, {5.0, 3.0}, {5.0, 9.0}};
  const auto out = downsample(s, 2);
  EXPECT_EQ(out.size(), 1u);
}

TEST(EmaTest, ConstantSeriesUnchanged) {
  std::vector<SeriesPoint> s;
  for (int i = 0; i < 100; ++i) s.push_back({0.1 * i, 7.0});
  const auto out = ema(s, 1.0);
  for (const auto& p : out) EXPECT_DOUBLE_EQ(p.value, 7.0);
}

TEST(EmaTest, StepResponseConvergesWithTau) {
  // Step from 0 to 1 at t=0; after 3*tau the EMA is within 5% of 1.
  std::vector<SeriesPoint> s;
  for (int i = 0; i <= 400; ++i) s.push_back({0.01 * i, 1.0});
  s.front().value = 0.0;  // seed state at 0
  const auto out = ema(s, 1.0);
  EXPECT_NEAR(out.back().value, 1.0, 0.05);  // t = 4 tau
  // At t ~ tau the response is ~1 - e^-1.
  EXPECT_NEAR(out[100].value, 1.0 - std::exp(-1.0), 0.05);
}

TEST(EmaTest, ZeroTauTracksInput) {
  std::vector<SeriesPoint> s{{0, 1}, {1, 5}, {2, -3}};
  const auto out = ema(s, 0.0);
  EXPECT_DOUBLE_EQ(out[1].value, 5.0);
  EXPECT_DOUBLE_EQ(out[2].value, -3.0);
}

TEST(AsciiChartTest, RendersTitleAndAxis) {
  const auto s = ramp(100);
  const std::string chart = ascii_chart(s, 40, 8, "ramp");
  EXPECT_NE(chart.find("ramp"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find("t: 0.00 .. 99.00"), std::string::npos);
  // Height rows + title + axis.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 8 + 2);
}

TEST(AsciiChartTest, EmptySeriesSafe) {
  EXPECT_EQ(ascii_chart({}, 10, 5), "(empty series)\n");
}

TEST(AsciiChartTest, MonotoneRampFillsTopRightCorner) {
  const auto s = ramp(100);
  const std::string chart = ascii_chart(s, 20, 6);
  // First data row (the max row) should have its '#' near the right edge.
  const auto first_line_end = chart.find('\n');
  const std::string top = chart.substr(0, first_line_end);
  EXPECT_GT(top.rfind('#'), top.size() - 4);
}

}  // namespace
}  // namespace dimetrodon::trace
