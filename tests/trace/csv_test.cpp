#include "trace/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dimetrodon::trace {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "dimetrodon_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"t", "temp"});
    w.write_row(std::vector<double>{1.0, 55.5});
    w.write_row(std::vector<double>{2.0, 56.0});
  }
  EXPECT_EQ(read_file(path_), "t,temp\n1,55.5\n2,56\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter w(path_, {"label"});
    w.write_row(std::vector<std::string>{"a,b"});
    w.write_row(std::vector<std::string>{"say \"hi\""});
  }
  EXPECT_EQ(read_file(path_), "label\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, FullPrecisionDoubles) {
  {
    CsvWriter w(path_, {"x"});
    w.write_row(std::vector<double>{0.123456789});
  }
  EXPECT_NE(read_file(path_).find("0.123456789"), std::string::npos);
}

TEST(CsvWriterTest, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace dimetrodon::trace
