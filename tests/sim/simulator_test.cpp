#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadline) {
  Simulator s;
  s.run_until(from_ms(5));
  EXPECT_EQ(s.now(), from_ms(5));
}

TEST(SimulatorTest, EventsExecuteAtTheirTimestamp) {
  Simulator s;
  SimTime seen = -1;
  s.at(from_ms(3), [&](SimTime t) { seen = t; });
  s.run_until(from_ms(10));
  EXPECT_EQ(seen, from_ms(3));
  EXPECT_EQ(s.now(), from_ms(10));
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator s;
  s.run_until(from_ms(2));
  SimTime seen = -1;
  s.after(from_ms(3), [&](SimTime t) { seen = t; });
  s.run_until(from_ms(10));
  EXPECT_EQ(seen, from_ms(5));
}

TEST(SimulatorTest, EventExactlyAtDeadlineRuns) {
  Simulator s;
  bool ran = false;
  s.at(from_ms(10), [&](SimTime) { ran = true; });
  s.run_until(from_ms(10));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, EventAfterDeadlineDoesNotRun) {
  Simulator s;
  bool ran = false;
  s.at(from_ms(11), [&](SimTime) { ran = true; });
  s.run_until(from_ms(10));
  EXPECT_FALSE(ran);
  // ... but runs when the deadline extends.
  s.run_until(from_ms(12));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, SelfReschedulingEventChains) {
  Simulator s;
  int fired = 0;
  std::function<void(SimTime)> tick = [&](SimTime) {
    ++fired;
    if (fired < 5) s.after(from_ms(1), tick);
  };
  s.after(from_ms(1), tick);
  s.run_until(from_ms(100));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(SimulatorTest, StepRunsSingleEvent) {
  Simulator s;
  int fired = 0;
  s.at(1, [&](SimTime) { ++fired; });
  s.at(2, [&](SimTime) { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelledEventViaHandle) {
  Simulator s;
  bool ran = false;
  EventHandle h = s.at(5, [&](SimTime) { ran = true; });
  h.cancel();
  s.run_until(10);
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, ClockNeverRunsBackwards) {
  Simulator s;
  s.run_until(from_ms(10));
  s.run_until(from_ms(5));  // earlier deadline: no-op
  EXPECT_EQ(s.now(), from_ms(10));
}

}  // namespace
}  // namespace dimetrodon::sim
