#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::sim {
namespace {

TEST(TimeTest, UnitConstants) {
  EXPECT_EQ(kMicrosecond, 1000);
  EXPECT_EQ(kMillisecond, 1000 * 1000);
  EXPECT_EQ(kSecond, 1000LL * 1000 * 1000);
}

TEST(TimeTest, FromConversionsRoundTrip) {
  EXPECT_EQ(from_ms(1.0), kMillisecond);
  EXPECT_EQ(from_us(1.0), kMicrosecond);
  EXPECT_EQ(from_sec(1.0), kSecond);
  EXPECT_EQ(from_sec(2.5), 2'500'000'000LL);
  EXPECT_EQ(from_ms(0.5), 500'000);
}

TEST(TimeTest, ToConversions) {
  EXPECT_DOUBLE_EQ(to_sec(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_ms(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_us(kMillisecond), 1000.0);
  EXPECT_DOUBLE_EQ(to_sec(from_sec(123.456)), 123.456);
}

TEST(TimeTest, FormatPicksUnit) {
  EXPECT_EQ(format_time(from_sec(3.25)), "3.250 s");
  EXPECT_EQ(format_time(from_ms(12.5)), "12.500 ms");
  EXPECT_EQ(format_time(from_us(7.0)), "7.000 us");
  EXPECT_EQ(format_time(420), "420 ns");
}

TEST(TimeTest, InfinityIsLargerThanAnyPracticalTime) {
  EXPECT_GT(kTimeInfinity, from_sec(1e9));
}

}  // namespace
}  // namespace dimetrodon::sim
