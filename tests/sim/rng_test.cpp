#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dimetrodon::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at draw " << i;
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 95);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.5);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

class RngBernoulliRate : public ::testing::TestWithParam<double> {};

TEST_P(RngBernoulliRate, MatchesProbability) {
  const double p = GetParam();
  Rng rng(23);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  const double rate = static_cast<double>(hits) / n;
  // 4-sigma binomial band.
  const double sigma = std::sqrt(p * (1 - p) / n);
  EXPECT_NEAR(rate, p, 4.0 * sigma + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RngBernoulliRate,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

TEST(RngTest, NormalMoments) {
  Rng rng(29);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(41);
  (void)parent_copy.next_u64();  // consume the draw used by fork()
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next_u64() == parent_copy.next_u64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(43);
  Rng b(43);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(RngTest, DeriveStreamSeedIsPureAndDistinct) {
  // Unlike fork(), derivation is a pure function: it never touches parent
  // state, so the order streams are derived in cannot matter.
  EXPECT_EQ(derive_stream_seed(47, 0), derive_stream_seed(47, 0));
  EXPECT_NE(derive_stream_seed(47, 0), derive_stream_seed(47, 1));
  EXPECT_NE(derive_stream_seed(47, 0), derive_stream_seed(48, 0));
  // stream_id 0 must not degenerate to the master seed itself.
  EXPECT_NE(derive_stream_seed(47, 0), 47u);
}

TEST(RngTest, StreamMatchesDerivedSeed) {
  Rng direct(derive_stream_seed(53, 7));
  Rng via_stream = Rng::stream(53, 7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(direct.next_u64(), via_stream.next_u64());
  }
}

TEST(RngTest, DerivedStreamsAreIndependent) {
  Rng a = Rng::stream(59, 0);
  Rng b = Rng::stream(59, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace dimetrodon::sim
