#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace dimetrodon::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueueTest, DeliversInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&](SimTime) { order.push_back(3); });
  q.schedule(10, [&](SimTime) { order.push_back(1); });
  q.schedule(20, [&](SimTime) { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i](SimTime) { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(77, [](SimTime t) { EXPECT_EQ(t, 77); });
  EXPECT_EQ(q.pop_and_run(), 77);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(5, [&](SimTime) { ran = true; });
  EXPECT_TRUE(h.active());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.active());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.schedule(5, [](SimTime) {});
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, DefaultHandleIsInactive) {
  EventHandle h;
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, SizeTracksCancellation) {
  EventQueue q;
  EventHandle a = q.schedule(1, [](SimTime) {});
  EventHandle b = q.schedule(2, [](SimTime) {});
  EXPECT_EQ(q.size(), 2u);
  a.cancel();
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 0u);
  (void)b;
}

TEST(EventQueueTest, HandleInactiveAfterFiring) {
  EventQueue q;
  EventHandle h = q.schedule(1, [](SimTime) {});
  q.pop_and_run();
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, CancelledHeadSkipped) {
  EventQueue q;
  bool first = false;
  bool second = false;
  EventHandle h = q.schedule(1, [&](SimTime) { first = true; });
  q.schedule(2, [&](SimTime) { second = true; });
  h.cancel();
  EXPECT_EQ(q.next_time(), 2);
  q.pop_and_run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(EventQueueTest, CallbackMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&](SimTime) {
    ++fired;
    q.schedule(2, [&](SimTime) { ++fired; });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CancelHeavyChurnHoldsBoundedMemory) {
  // Timer churn: one long-lived event plus thousands of schedule/cancel
  // cycles. Lazy cancellation alone would grow the heap with every cycle;
  // compaction must keep the carcass population proportional to the live
  // count, not to cancellation history.
  EventQueue q;
  bool fired = false;
  q.schedule(1'000'000, [&](SimTime) { fired = true; });
  std::size_t peak = 0;
  for (int i = 0; i < 20000; ++i) {
    EventHandle h = q.schedule(500'000 + i, [](SimTime) {});
    h.cancel();
    peak = std::max(peak, q.heap_entries());
  }
  // 1 live event; the compaction threshold (64 entries, majority cancelled)
  // bounds the transient carcass population far below the 20001 entries an
  // unbounded lazy queue would hold.
  EXPECT_LE(peak, 128u);
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CompactionPreservesDeliveryOrder) {
  // Force repeated compactions among live events scheduled in shuffled time
  // order with interleaved cancellations, then check delivery is still the
  // exact (time, insertion) order.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 500; ++i) {
    const SimTime t = (i * 7919) % 1009;
    q.schedule(t, [&order, i](SimTime) { order.push_back(i); });
    // Two cancelled events per live one keeps carcasses the majority, so
    // the threshold trips many times during this loop.
    doomed.push_back(q.schedule(t, [](SimTime) { ADD_FAILURE(); }));
    doomed.push_back(q.schedule(t + 1, [](SimTime) { ADD_FAILURE(); }));
    doomed[doomed.size() - 2].cancel();
    doomed.back().cancel();
  }
  std::vector<int> expected(500);
  for (int i = 0; i < 500; ++i) expected[i] = i;
  std::stable_sort(expected.begin(), expected.end(), [](int a, int b) {
    return (a * 7919) % 1009 < (b * 7919) % 1009;
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, SizeAndHandlesSurviveCompaction) {
  EventQueue q;
  std::vector<EventHandle> live;
  for (int i = 0; i < 40; ++i) {
    live.push_back(q.schedule(10 + i, [](SimTime) {}));
  }
  // Enough cancellations to cross the 64-entry threshold with a cancelled
  // majority; the next schedule() compacts.
  for (int i = 0; i < 60; ++i) {
    q.schedule(5, [](SimTime) { ADD_FAILURE(); }).cancel();
  }
  q.schedule(1000, [](SimTime) {});
  // Without compaction the heap would hold all 101 entries; the sweep during
  // the cancel storm kept it to the live events plus the post-sweep stragglers.
  EXPECT_LE(q.heap_entries(), 61u);
  EXPECT_EQ(q.size(), 41u);
  for (const EventHandle& h : live) EXPECT_TRUE(h.active());
  EXPECT_EQ(q.next_time(), 10);
}

TEST(EventQueueTest, TimeAndSeqAccessorsTrackLiveEvents) {
  EventQueue q;
  EventHandle a = q.schedule(10, [](SimTime) {});
  EventHandle b = q.schedule(10, [](SimTime) {});
  EXPECT_EQ(a.time(), 10);
  EXPECT_EQ(b.time(), 10);
  // Same timestamp: the earlier schedule() wins the tie, and seq() exposes
  // that rank so the snapshot layer can re-arm in the captured order.
  EXPECT_LT(a.seq(), b.seq());
  a.cancel();
  EXPECT_EQ(a.time(), kTimeInfinity);
  EXPECT_EQ(a.seq(), 0u);
  q.pop_and_run();
  EXPECT_EQ(b.time(), kTimeInfinity);
}

TEST(EventQueueTest, ClearMakesAllHandlesInert) {
  EventQueue q;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 16; ++i) {
    handles.push_back(q.schedule(i, [&fired](SimTime) { ++fired; }));
  }
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  for (auto& h : handles) {
    EXPECT_FALSE(h.active());
    EXPECT_FALSE(h.cancel());  // inert, exactly like an already-fired event
  }
  // The queue is fully usable afterwards, and seq keeps counting up.
  EventHandle next = q.schedule(5, [&fired](SimTime) { ++fired; });
  EXPECT_TRUE(next.active());
  q.pop_and_run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, RecycledSlotDoesNotResurrectOldHandle) {
  // The control arena recycles slots; a stale handle whose slot was reused
  // must stay inert (generation mismatch) rather than aliasing the new
  // event. Cancel-heavy churn guarantees slot reuse within a few rounds.
  EventQueue q;
  EventHandle stale = q.schedule(1, [](SimTime) { FAIL() << "cancelled"; });
  stale.cancel();
  int fired = 0;
  std::vector<EventHandle> fresh;
  for (int i = 0; i < 8; ++i) {
    fresh.push_back(q.schedule(2 + i, [&fired](SimTime) { ++fired; }));
  }
  // The stale handle must not observe or affect the recycled slot's event.
  EXPECT_FALSE(stale.active());
  EXPECT_FALSE(stale.cancel());
  EXPECT_EQ(q.size(), 8u);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, 8);
  // And fired handles on recycled slots are inert too.
  for (auto& h : fresh) EXPECT_FALSE(h.active());
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  SimTime last = -1;
  // Deterministic pseudo-shuffled insertion times.
  for (int i = 0; i < 5000; ++i) {
    const SimTime t = (i * 7919) % 104729;
    q.schedule(t, [&last](SimTime at) {
      EXPECT_GE(at, last);
      last = at;
    });
  }
  std::size_t count = 0;
  while (!q.empty()) {
    q.pop_and_run();
    ++count;
  }
  EXPECT_EQ(count, 5000u);
}

}  // namespace
}  // namespace dimetrodon::sim
