#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dimetrodon::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST(EventQueueTest, DeliversInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&](SimTime) { order.push_back(3); });
  q.schedule(10, [&](SimTime) { order.push_back(1); });
  q.schedule(20, [&](SimTime) { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i](SimTime) { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.schedule(77, [](SimTime t) { EXPECT_EQ(t, 77); });
  EXPECT_EQ(q.pop_and_run(), 77);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(5, [&](SimTime) { ran = true; });
  EXPECT_TRUE(h.active());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.active());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelIsIdempotent) {
  EventQueue q;
  EventHandle h = q.schedule(5, [](SimTime) {});
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, DefaultHandleIsInactive) {
  EventHandle h;
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, SizeTracksCancellation) {
  EventQueue q;
  EventHandle a = q.schedule(1, [](SimTime) {});
  EventHandle b = q.schedule(2, [](SimTime) {});
  EXPECT_EQ(q.size(), 2u);
  a.cancel();
  EXPECT_EQ(q.size(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.size(), 0u);
  (void)b;
}

TEST(EventQueueTest, HandleInactiveAfterFiring) {
  EventQueue q;
  EventHandle h = q.schedule(1, [](SimTime) {});
  q.pop_and_run();
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.cancel());
}

TEST(EventQueueTest, CancelledHeadSkipped) {
  EventQueue q;
  bool first = false;
  bool second = false;
  EventHandle h = q.schedule(1, [&](SimTime) { first = true; });
  q.schedule(2, [&](SimTime) { second = true; });
  h.cancel();
  EXPECT_EQ(q.next_time(), 2);
  q.pop_and_run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(EventQueueTest, CallbackMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&](SimTime) {
    ++fired;
    q.schedule(2, [&](SimTime) { ++fired; });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  SimTime last = -1;
  // Deterministic pseudo-shuffled insertion times.
  for (int i = 0; i < 5000; ++i) {
    const SimTime t = (i * 7919) % 104729;
    q.schedule(t, [&last](SimTime at) {
      EXPECT_GE(at, last);
      last = at;
    });
  }
  std::size_t count = 0;
  while (!q.empty()) {
    q.pop_and_run();
    ++count;
  }
  EXPECT_EQ(count, 5000u);
}

}  // namespace
}  // namespace dimetrodon::sim
