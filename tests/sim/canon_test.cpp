#include "sim/canon.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace dimetrodon::sim {
namespace {

TEST(CanonWriterTest, PreambleCarriesTheSharedVersion) {
  CanonWriter w;
  w.preamble("doc");
  // The one version number every canonical document and the sweep cache
  // magic share — sensitivity here is what turns stale caches into misses.
  EXPECT_EQ(w.text(), "doc v" + std::to_string(kCanonVersion) + " ");
}

TEST(CanonWriterTest, DoublesRenderAsBitExactHexFloats) {
  CanonWriter w;
  w.field("x", 1.5);
  w.field("zero", 0.0);
  EXPECT_EQ(w.text(), "x=0x1.8p+0 zero=0x0p+0 ");
}

TEST(CanonWriterTest, AdjacentDoublesStayDistinguishable) {
  // %a is lossless: values one ulp apart must render differently (decimal
  // formats with default precision would collapse them into one cache key).
  const double a = 0.1;
  const double b = std::nextafter(a, 1.0);
  CanonWriter wa, wb;
  wa.field("v", a);
  wb.field("v", b);
  EXPECT_NE(wa.text(), wb.text());
}

TEST(CanonWriterTest, IntegerBoolAndStringFields) {
  CanonWriter w;
  w.field("u", static_cast<std::uint64_t>(255));
  w.field("i", static_cast<std::int64_t>(-42));
  w.field("b", true);
  w.field("s", std::string("tag"));
  EXPECT_EQ(w.text(), "u=ff i=-42 b=1 s=tag ");
}

TEST(CanonWriterTest, SectionsAndListsNest) {
  CanonWriter w;
  w.open("sec");
  w.field("a", static_cast<std::uint64_t>(1));
  w.close();
  w.open_list("items");
  w.field("x", 2.0);
  w.close_list();
  EXPECT_EQ(w.text(), "sec{a=1 } items[x=0x1p+1 ] ");
}

TEST(CanonWriterTest, TakeMovesTheDocumentOut) {
  CanonWriter w;
  w.raw("abc");
  EXPECT_EQ(w.take(), "abc");
  EXPECT_TRUE(w.text().empty());
}

}  // namespace
}  // namespace dimetrodon::sim
