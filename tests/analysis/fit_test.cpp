#include "analysis/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace dimetrodon::analysis {
namespace {

TEST(LinearFitTest, RecoversExactLine) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 2.5, 1e-12);
  EXPECT_NEAR(f.intercept, -1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyDataLowersRSquared) {
  std::vector<double> xs;
  std::vector<double> ys;
  unsigned state = 7;
  for (int i = 0; i < 100; ++i) {
    state = state * 1664525u + 1013904223u;
    const double noise = (static_cast<double>(state % 2000) - 1000.0) / 500.0;
    xs.push_back(i);
    ys.push_back(0.5 * i + noise);
  }
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.slope, 0.5, 0.05);
  EXPECT_LT(f.r_squared, 1.0);
  EXPECT_GT(f.r_squared, 0.9);
}

TEST(LinearFitTest, RejectsDegenerateInput) {
  EXPECT_THROW(fit_linear({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(fit_linear({1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(fit_linear({3, 3, 3}, {1, 2, 3}), std::invalid_argument);
}

using PowerLawParams = std::tuple<double, double>;  // alpha, beta
class PowerLawRecovery : public ::testing::TestWithParam<PowerLawParams> {};

TEST_P(PowerLawRecovery, RecoversParameters) {
  // The form the paper fits to pareto boundaries: T(r) = alpha * r^beta
  // with Table 1's parameter ranges (alpha ~1.1-1.5, beta ~1.4-1.8).
  const auto [alpha, beta] = GetParam();
  std::vector<double> xs;
  std::vector<double> ys;
  for (double r = 0.05; r <= 0.75; r += 0.05) {
    xs.push_back(r);
    ys.push_back(alpha * std::pow(r, beta));
  }
  const PowerLawFit f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.alpha, alpha, 1e-9);
  EXPECT_NEAR(f.beta, beta, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-9);
  EXPECT_EQ(f.points_used, xs.size());
}

INSTANTIATE_TEST_SUITE_P(
    Table1Range, PowerLawRecovery,
    ::testing::Values(PowerLawParams{1.092, 1.541},    // cpuburn
                      PowerLawParams{1.282, 1.697},    // calculix
                      PowerLawParams{1.529, 1.811},    // bzip2
                      PowerLawParams{1.351, 1.416}));  // astar

TEST(PowerLawFitTest, SkipsNonPositivePoints) {
  const std::vector<double> xs{0.0, -1.0, 0.1, 0.2, 0.4};
  const std::vector<double> ys{5.0, 2.0, 0.1, 0.2, 0.4};
  const PowerLawFit f = fit_power_law(xs, ys);
  EXPECT_EQ(f.points_used, 3u);
  EXPECT_NEAR(f.beta, 1.0, 1e-9);
  EXPECT_NEAR(f.alpha, 1.0, 1e-9);
}

TEST(PowerLawFitTest, ThrowsWithFewerThanTwoUsable) {
  EXPECT_THROW(fit_power_law({0.0, 0.1}, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1.0, 2.0}, {0.0, -1.0}), std::invalid_argument);
}

TEST(PowerLawFitTest, NoisyFitStillClose) {
  std::vector<double> xs;
  std::vector<double> ys;
  unsigned state = 21;
  for (double r = 0.05; r <= 0.75; r += 0.025) {
    state = state * 1664525u + 1013904223u;
    const double jitter =
        1.0 + (static_cast<double>(state % 200) - 100.0) / 2000.0;
    xs.push_back(r);
    ys.push_back(1.2 * std::pow(r, 1.6) * jitter);
  }
  const PowerLawFit f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.alpha, 1.2, 0.12);
  EXPECT_NEAR(f.beta, 1.6, 0.1);
}

}  // namespace
}  // namespace dimetrodon::analysis
