#include "analysis/pareto.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::analysis {
namespace {

TradeoffPoint pt(double r, double perf, const char* label = "") {
  return TradeoffPoint{r, perf, label};
}

TEST(ParetoTest, DominationRequiresStrictImprovement) {
  EXPECT_TRUE(dominates(pt(0.5, 0.9), pt(0.4, 0.9)));
  EXPECT_TRUE(dominates(pt(0.5, 0.9), pt(0.5, 0.8)));
  EXPECT_FALSE(dominates(pt(0.5, 0.9), pt(0.5, 0.9)));
  EXPECT_FALSE(dominates(pt(0.6, 0.7), pt(0.5, 0.9)));  // trade-off, no dom
}

TEST(ParetoTest, FrontierDropsDominatedPoints) {
  const auto frontier = pareto_frontier({
      pt(0.1, 0.99, "a"),
      pt(0.1, 0.80, "dominated-by-a"),
      pt(0.5, 0.70, "b"),
      pt(0.4, 0.60, "dominated-by-b"),
  });
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].label, "a");
  EXPECT_EQ(frontier[1].label, "b");
}

TEST(ParetoTest, FrontierSortedByTempReduction) {
  const auto frontier = pareto_frontier({
      pt(0.7, 0.3),
      pt(0.1, 0.95),
      pt(0.4, 0.8),
  });
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_LT(frontier[0].temp_reduction, frontier[1].temp_reduction);
  EXPECT_LT(frontier[1].temp_reduction, frontier[2].temp_reduction);
}

TEST(ParetoTest, AllIncomparablePointsKept) {
  // A proper trade-off curve: every point non-dominated.
  std::vector<TradeoffPoint> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back(pt(0.1 * i, 1.0 - 0.08 * i));
  }
  EXPECT_EQ(pareto_frontier(pts).size(), 10u);
}

TEST(ParetoTest, DuplicatePointsAllSurvive) {
  const auto frontier = pareto_frontier({pt(0.3, 0.7), pt(0.3, 0.7)});
  EXPECT_EQ(frontier.size(), 2u);  // equal points don't dominate each other
}

TEST(ParetoTest, EmptyInputEmptyOutput) {
  EXPECT_TRUE(pareto_frontier({}).empty());
}

TEST(EfficiencyTest, MatchesPaperDefinition) {
  // 30% temperature reduction at 10% throughput cost -> 3:1.
  EXPECT_NEAR(pt(0.3, 0.9).efficiency(), 3.0, 1e-12);
  // 1:1 reference line.
  EXPECT_NEAR(pt(0.5, 0.5).efficiency(), 1.0, 1e-12);
}

TEST(EfficiencyTest, FreeCoolingIsHugeEfficiency) {
  EXPECT_GT(pt(0.05, 1.0).efficiency(), 1e6);
}

}  // namespace
}  // namespace dimetrodon::analysis
