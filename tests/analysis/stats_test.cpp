#include "analysis/stats.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::analysis {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(OnlineStatsTest, KnownSample) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, MatchesBatchFormulas) {
  OnlineStats s;
  std::vector<double> xs;
  unsigned state = 99;
  for (int i = 0; i < 500; ++i) {
    state = state * 1664525u + 1013904223u;
    const double x = static_cast<double>(state % 1000) / 10.0;
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-9);
}

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(StatsTest, StddevNeedsTwoPoints) {
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(PercentileTest, ExtremesAreMinMax) {
  const std::vector<double> xs{7.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 9.0);
}

TEST(PercentileTest, OutOfRangeQClamped) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 150.0), 2.0);
}

TEST(PercentileTest, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

}  // namespace
}  // namespace dimetrodon::analysis
