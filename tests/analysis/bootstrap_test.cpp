#include "analysis/bootstrap.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::analysis {
namespace {

TEST(BootstrapTest, IntervalContainsSampleMean) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto ci = bootstrap_mean_ci(sample);
  EXPECT_DOUBLE_EQ(ci.mean, 3.5);
  EXPECT_TRUE(ci.contains(ci.mean));
  EXPECT_LT(ci.lower, ci.upper);
}

TEST(BootstrapTest, SingleObservationCollapses) {
  const auto ci = bootstrap_mean_ci({42.0});
  EXPECT_DOUBLE_EQ(ci.lower, 42.0);
  EXPECT_DOUBLE_EQ(ci.upper, 42.0);
  EXPECT_DOUBLE_EQ(ci.half_width(), 0.0);
}

TEST(BootstrapTest, TighterWithMoreData) {
  std::vector<double> small;
  std::vector<double> large;
  sim::Rng rng(5);
  for (int i = 0; i < 10; ++i) small.push_back(rng.normal(10.0, 2.0));
  for (int i = 0; i < 1000; ++i) large.push_back(rng.normal(10.0, 2.0));
  const auto ci_small = bootstrap_mean_ci(small);
  const auto ci_large = bootstrap_mean_ci(large);
  EXPECT_LT(ci_large.half_width(), ci_small.half_width());
}

TEST(BootstrapTest, WiderAtHigherConfidence) {
  const std::vector<double> sample{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  const auto ci90 = bootstrap_mean_ci(sample, 0.90);
  const auto ci99 = bootstrap_mean_ci(sample, 0.99);
  EXPECT_GT(ci99.half_width(), ci90.half_width());
}

TEST(BootstrapTest, DeterministicGivenSeed) {
  const std::vector<double> sample{3, 1, 4, 1, 5, 9, 2, 6};
  const auto a = bootstrap_mean_ci(sample, 0.95, 500, 7);
  const auto b = bootstrap_mean_ci(sample, 0.95, 500, 7);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapTest, CoversTrueMeanUsually) {
  // 95% CI over normal(0, 1) samples should cover 0 most of the time.
  sim::Rng rng(99);
  int covered = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample;
    for (int i = 0; i < 30; ++i) sample.push_back(rng.normal(0.0, 1.0));
    if (bootstrap_mean_ci(sample, 0.95, 500, 1000 + t).contains(0.0)) {
      ++covered;
    }
  }
  EXPECT_GE(covered, 50);  // ~95% nominal; generous slack for small trials
}

TEST(BootstrapTest, RejectsInvalidInputs) {
  EXPECT_THROW(bootstrap_mean_ci({}), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0, 2.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci({1.0, 2.0}, 1.0), std::invalid_argument);
}

TEST(HistogramTest, CountsSumToSampleSize) {
  const std::vector<double> data{1, 2, 2, 3, 3, 3, 4, 4, 4, 4};
  const auto h = make_histogram(data, 4);
  std::size_t total = 0;
  for (const auto c : h.counts) total += c;
  EXPECT_EQ(total, data.size());
  EXPECT_DOUBLE_EQ(h.lo, 1.0);
  EXPECT_DOUBLE_EQ(h.hi, 4.0);
}

TEST(HistogramTest, MaxValueLandsInLastBin) {
  const auto h = make_histogram({0.0, 1.0}, 10);
  EXPECT_EQ(h.counts.front(), 1u);
  EXPECT_EQ(h.counts.back(), 1u);
}

TEST(HistogramTest, ConstantDataSingleBin) {
  const auto h = make_histogram({5.0, 5.0, 5.0}, 3);
  EXPECT_EQ(h.counts[0], 3u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 0.0);
}

TEST(HistogramTest, RejectsBadArguments) {
  EXPECT_THROW(make_histogram({}, 3), std::invalid_argument);
  EXPECT_THROW(make_histogram({1.0}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dimetrodon::analysis
