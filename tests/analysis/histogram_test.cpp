#include "analysis/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/rng.hpp"

namespace dimetrodon::analysis {
namespace {

TEST(PercentileHistogramTest, EmptyHistogramIsZero) {
  PercentileHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(99.0), 0.0);
}

TEST(PercentileHistogramTest, SingleValueEveryQuantile) {
  PercentileHistogram h;
  h.add(0.125);
  // min/max clamping makes every quantile of a one-value histogram exact.
  for (const double q : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 0.125) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.mean(), 0.125);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 0.125);
}

TEST(PercentileHistogramTest, ExactSumMinMaxIndependentOfBuckets) {
  PercentileHistogram h;
  double sum = 0.0;
  sim::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.exponential(0.01);
    sum += v;
    h.add(v);
  }
  // Sum/mean/min/max are tracked exactly, not reconstructed from buckets.
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.mean(), sum / 1000.0);
  EXPECT_EQ(h.count(), 1000u);
}

TEST(PercentileHistogramTest, QuantilesWithinRelativeError) {
  // Log-linear layout with 64 sub-buckets: midpoint within ~0.8% of any
  // value in the bucket. Compare against exact nearest-rank quantiles of a
  // heavy-tailed sample.
  PercentileHistogram h;
  sim::Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = 0.001 * std::exp(rng.normal(0.0, 1.5));
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const std::size_t rank = static_cast<std::size_t>(std::max(
        1.0, std::ceil(q / 100.0 * static_cast<double>(values.size()))));
    const double exact = values[rank - 1];
    const double approx = h.percentile(q);
    EXPECT_NEAR(approx, exact, exact * 0.01) << "q=" << q;
  }
}

TEST(PercentileHistogramTest, PercentilesAreMonotone) {
  PercentileHistogram h;
  sim::Rng rng(3);
  for (int i = 0; i < 5000; ++i) h.add(rng.exponential(0.5));
  double prev = 0.0;
  for (double q = 0.0; q <= 100.0; q += 2.5) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_GE(h.max(), prev);
}

TEST(PercentileHistogramTest, OutOfRangeValuesClampToEdgeBuckets) {
  PercentileHistogram h(1e-3, 1e3);
  h.add(1e-9);  // below min_value: first bucket, exact min still tracked
  h.add(1e9);   // above max_value: last bucket, exact max still tracked
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // Clamped into [min_seen, max_seen]: no bucket midpoint can escape the
  // observed range.
  EXPECT_GE(h.percentile(0.0), 1e-9);
  EXPECT_LE(h.percentile(100.0), 1e9);
}

TEST(PercentileHistogramTest, MergeMatchesCombinedStream) {
  PercentileHistogram a;
  PercentileHistogram b;
  PercentileHistogram combined;
  sim::Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.exponential(0.02);
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Merge adds the two partial sums; only the addition order differs from
  // the combined stream, so the totals agree to rounding.
  EXPECT_NEAR(a.sum(), combined.sum(), combined.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double q : {50.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(q), combined.percentile(q)) << "q=" << q;
  }
}

TEST(PercentileHistogramTest, MergeRejectsDifferentLayouts) {
  PercentileHistogram a(1e-6, 1e5);
  PercentileHistogram b(1e-3, 1e3);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(PercentileHistogramTest, ResetClearsEverything) {
  PercentileHistogram h;
  for (int i = 0; i < 100; ++i) h.add(0.5 + i);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.percentile(99.0), 0.0);
  h.add(2.0);  // usable after reset
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 2.0);
}

TEST(PercentileHistogramTest, NonFiniteSamplesDroppedAndCounted) {
  PercentileHistogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  // The three non-finite samples are dropped, not folded into any moment: a
  // single NaN would otherwise poison sum/mean for the whole run.
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.rejected(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_TRUE(std::isfinite(h.percentile(99.0)));
}

TEST(PercentileHistogramTest, MergeFoldsRejectedCounts) {
  PercentileHistogram a;
  PercentileHistogram b;
  a.add(1.0);
  a.add(std::numeric_limits<double>::quiet_NaN());
  b.add(2.0);
  b.add(std::numeric_limits<double>::infinity());
  b.add(std::numeric_limits<double>::quiet_NaN());
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.rejected(), 3u);
}

TEST(PercentileHistogramTest, MergeWithSelfDoublesEverything) {
  PercentileHistogram h;
  sim::Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.add(rng.exponential(0.05));
  h.add(std::numeric_limits<double>::quiet_NaN());
  const std::uint64_t count = h.count();
  const double sum = h.sum();
  const double p50 = h.percentile(50.0);
  const double p99 = h.percentile(99.0);
  h.merge(h);
  EXPECT_EQ(h.count(), 2 * count);
  EXPECT_DOUBLE_EQ(h.sum(), 2 * sum);
  EXPECT_EQ(h.rejected(), 2u);
  // Doubling every bucket leaves the distribution — hence every quantile —
  // unchanged.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), p50);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), p99);
}

TEST(PercentileHistogramTest, MergeWithEmptyIsIdentity) {
  PercentileHistogram h;
  for (int i = 1; i <= 100; ++i) h.add(0.01 * i);
  const std::uint64_t count = h.count();
  const double sum = h.sum();
  const double p95 = h.percentile(95.0);
  PercentileHistogram empty;
  h.merge(empty);
  EXPECT_EQ(h.count(), count);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.percentile(95.0), p95);
  EXPECT_EQ(h.rejected(), 0u);
  // And merging INTO an empty histogram reproduces the source.
  empty.merge(h);
  EXPECT_EQ(empty.count(), count);
  EXPECT_DOUBLE_EQ(empty.sum(), sum);
  EXPECT_DOUBLE_EQ(empty.percentile(95.0), p95);
}

TEST(PercentileHistogramTest, RejectsInvalidRange) {
  EXPECT_THROW(PercentileHistogram(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PercentileHistogram(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PercentileHistogram(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(PercentileHistogram(2.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dimetrodon::analysis
