#include "policy/migration.hpp"

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "workload/cpuburn.hpp"
#include "workload/spec.hpp"

namespace dimetrodon::policy {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

TEST(MigrationPrimitiveTest, AffinityMovesRunningThread) {
  sched::Machine m(small_config());
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_ms(50));
  const auto tid = fleet.threads()[0];
  const auto old_core = m.thread(tid).last_core();
  const sched::CoreId target = old_core == 3 ? 0 : 3;
  m.set_thread_affinity(tid, target);
  m.run_for(sim::from_ms(50));
  EXPECT_EQ(m.thread(tid).last_core(), target);
  EXPECT_EQ(m.thread(tid).state(), sched::ThreadState::kRunning);
}

TEST(MigrationPrimitiveTest, InvalidTargetThrows) {
  sched::Machine m(small_config());
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  EXPECT_THROW(m.set_thread_affinity(fleet.threads()[0], 99),
               std::out_of_range);
}

TEST(MigrationPrimitiveTest, WorkContinuesAcrossMigrations) {
  sched::Machine m(small_config());
  workload::CpuBurnFleet fleet(1);
  fleet.deploy(m);
  for (int i = 0; i < 16; ++i) {
    m.run_for(sim::from_ms(100));
    m.set_thread_affinity(fleet.threads()[0],
                          static_cast<sched::CoreId>(i % 4));
  }
  m.run_for(sim::from_ms(100));
  // ~1.7 s of wall time, minus context-switch slivers.
  EXPECT_NEAR(fleet.progress(m), 1.7, 0.05);
}

TEST(MigrationPolicyTest, RotatesSingleHotThreadAcrossDies) {
  // One cpuburn instance on a 4-core machine: migration spreads the heat
  // over the dies. With a die time constant of ~12 ms no policy can cap the
  // instantaneous peak (the hosting die heats fully within ~40 ms), but the
  // per-die TIME-AVERAGED temperature — the quantity behind the MTTF/aging
  // argument — drops by the rotation duty factor.
  auto hottest_mean_die = [](bool migrate) {
    sched::Machine m(small_config());
    std::unique_ptr<ThermalMigrationPolicy> policy;
    if (migrate) {
      ThermalMigrationPolicy::Config cfg;
      cfg.period = sim::from_ms(100);
      cfg.spread_threshold_c = 1.0;
      policy = std::make_unique<ThermalMigrationPolicy>(m, cfg);
    }
    workload::CpuBurnFleet fleet(1);
    fleet.deploy(m);
    for (int i = 0; i < 3; ++i) {
      m.mark_power_window();
      m.run_for(sim::from_sec(8));
      m.jump_to_average_power_steady_state();
    }
    double sums[4] = {0, 0, 0, 0};
    const int samples = 200;
    for (int s = 0; s < samples; ++s) {
      m.run_for(sim::from_ms(50));
      for (std::size_t i = 0; i < m.num_cores(); ++i) {
        sums[i] += m.die_temperature(static_cast<sched::CoreId>(i));
      }
    }
    if (policy) EXPECT_GT(policy->migrations(), 10u);
    double hottest = 0.0;
    for (const double s : sums) hottest = std::max(hottest, s / samples);
    return hottest;
  };
  EXPECT_LT(hottest_mean_die(true), hottest_mean_die(false) - 4.0);
}

TEST(MigrationPolicyTest, IneffectiveOnFullyBurdenedMachine) {
  // The paper: migration "may be ineffective on fully-burdened machines" —
  // with every core hot there is nowhere cool to go.
  sched::Machine m(small_config());
  ThermalMigrationPolicy policy(m);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(10));
  EXPECT_EQ(policy.migrations(), 0u);
  EXPECT_GT(policy.ticks(), 10u);
}

TEST(MigrationPolicyTest, ComposesWithDimetrodon) {
  sched::Machine m(small_config());
  core::DimetrodonController ctl(m);
  ctl.sys_set_global(0.25, sim::from_ms(10));
  ThermalMigrationPolicy policy(m);
  workload::SpecFleet fleet(*workload::find_spec_profile("gcc"), 2);
  fleet.deploy(m);
  m.run_for(sim::from_sec(15));
  EXPECT_GT(ctl.stats().injections, 50u);
  EXPECT_GT(fleet.progress(m), 20.0);
}

TEST(MigrationPolicyTest, StopHaltsTicks) {
  sched::Machine m(small_config());
  ThermalMigrationPolicy policy(m);
  m.run_for(sim::from_sec(2));
  policy.stop();
  const auto ticks = policy.ticks();
  m.run_for(sim::from_sec(2));
  EXPECT_EQ(policy.ticks(), ticks);
}

}  // namespace
}  // namespace dimetrodon::policy
