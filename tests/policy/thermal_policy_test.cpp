#include "policy/thermal_policy.hpp"

#include <gtest/gtest.h>

#include "workload/cpuburn.hpp"

namespace dimetrodon::policy {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

TEST(ThermalPolicyTest, RaceToIdleChangesNothing) {
  sched::Machine m(small_config());
  RaceToIdlePolicy policy;
  policy.apply(m);
  EXPECT_EQ(m.core(0).dvfs_level, 0u);
  EXPECT_DOUBLE_EQ(m.core(0).op.clock_duty, 1.0);
  EXPECT_DOUBLE_EQ(policy.nominal_throughput_factor(m), 1.0);
}

TEST(ThermalPolicyTest, VfsSetsAllCores) {
  sched::Machine m(small_config());
  VfsPolicy policy(3);
  policy.apply(m);
  for (std::size_t i = 0; i < m.num_cores(); ++i) {
    const auto& core = m.core(static_cast<sched::CoreId>(i));
    EXPECT_EQ(core.dvfs_level, 3u);
    EXPECT_DOUBLE_EQ(core.op.freq_ghz, m.config().dvfs.level(3).freq_ghz);
    EXPECT_DOUBLE_EQ(core.op.voltage_v, m.config().dvfs.level(3).voltage_v);
  }
}

TEST(ThermalPolicyTest, VfsThroughputFactorIsFrequencyRatio) {
  sched::Machine m(small_config());
  VfsPolicy policy(5);
  EXPECT_NEAR(policy.nominal_throughput_factor(m), 1.596 / 2.261, 1e-9);
}

TEST(ThermalPolicyTest, TccSetsDutyOnAllCores) {
  sched::Machine m(small_config());
  TccPolicy policy(4);
  policy.apply(m);
  for (std::size_t i = 0; i < m.num_cores(); ++i) {
    EXPECT_DOUBLE_EQ(m.core(static_cast<sched::CoreId>(i)).op.clock_duty,
                     0.5);
  }
  EXPECT_DOUBLE_EQ(policy.nominal_throughput_factor(m), 0.5);
}

TEST(ThermalPolicyTest, NamesIdentifySetpoints) {
  EXPECT_EQ(VfsPolicy(2).name(), "vfs[level=2]");
  EXPECT_EQ(TccPolicy(4).name(), "p4tcc[duty=50.0%]");
  EXPECT_EQ(RaceToIdlePolicy().name(), "race-to-idle");
}

TEST(ThermalPolicyTest, VfsCoolsLoadedMachine) {
  auto settled = [](std::unique_ptr<ThermalPolicy> policy) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine m(cfg);
    policy->apply(m);
    workload::CpuBurnFleet fleet(4);
    fleet.deploy(m);
    for (int i = 0; i < 4; ++i) {
      m.mark_power_window();
      m.run_for(sim::from_sec(8));
      m.jump_to_average_power_steady_state();
    }
    m.run_for(sim::from_sec(3));
    return m.mean_sensor_temp();
  };
  const double unconstrained = settled(std::make_unique<RaceToIdlePolicy>());
  const double vfs = settled(std::make_unique<VfsPolicy>(5));
  const double tcc = settled(std::make_unique<TccPolicy>(2));
  EXPECT_LT(vfs, unconstrained - 8.0);
  EXPECT_LT(tcc, unconstrained - 10.0);
}

}  // namespace
}  // namespace dimetrodon::policy
