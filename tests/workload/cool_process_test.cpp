#include "workload/cool_process.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::workload {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

TEST(CoolProcessTest, PaperDutyCycle) {
  // §3.6: "executed cpuburn for six seconds, slept for one minute, and
  // repeated" -> one 6 s burst per 66 s period.
  sched::Machine m(small_config());
  CoolProcess cool;
  cool.deploy(m);
  // Burst at [0, 6], sleep to 66, then 4 s of the second burst by t = 70.
  m.run_for(sim::from_sec(70));
  const auto& t = m.thread(cool.thread_id());
  EXPECT_NEAR(t.work_completed(), 10.0, 0.2);
  EXPECT_GE(t.bursts_completed(), 1u);
}

TEST(CoolProcessTest, SleepsBetweenBursts) {
  sched::Machine m(small_config());
  CoolProcess cool;
  cool.deploy(m);
  m.run_for(sim::from_sec(10));  // burst done at ~6 s
  EXPECT_EQ(m.thread(cool.thread_id()).state(), sched::ThreadState::kSleeping);
}

TEST(CoolProcessTest, CustomConfig) {
  sched::Machine m(small_config());
  CoolProcessBehavior::Config cfg;
  cfg.burn_seconds = 1.0;
  cfg.sleep = sim::from_sec(1.0);
  CoolProcess cool(cfg);
  cool.deploy(m);
  m.run_for(sim::from_sec(10));
  // 1 s on / 1 s off: about half the wall clock becomes work.
  EXPECT_NEAR(cool.progress(m), 5.0, 0.7);
}

TEST(CoolProcessTest, LowAverageHeatVersusHotProcess) {
  auto mean_power = [](bool cool_only) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine m(cfg);
    CoolProcess cool;
    cool.deploy(m);
    if (!cool_only) {
      // nothing else; compare against idle baseline below
    }
    m.run_for(sim::from_sec(66));
    return m.energy().total_joules() / 66.0;
  };
  sched::Machine idle_machine(small_config());
  idle_machine.run_for(sim::from_sec(66));
  const double idle = idle_machine.energy().total_joules() / 66.0;
  const double with_cool = mean_power(true);
  // The cool process adds heat, but only ~9% duty worth of one core.
  EXPECT_GT(with_cool, idle + 0.3);
  EXPECT_LT(with_cool, idle + 4.0);
}

}  // namespace
}  // namespace dimetrodon::workload
