#include "workload/web.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/controller.hpp"

namespace dimetrodon::workload {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

WebWorkload::Config light_config() {
  WebWorkload::Config cfg;
  cfg.connections = 40;
  cfg.think_mean_s = 0.5;
  return cfg;
}

TEST(WebWorkloadTest, ServesRequests) {
  sched::Machine m(small_config());
  WebWorkload web(light_config());
  web.deploy(m);
  m.run_for(sim::from_sec(10));
  // 40 connections / 0.5 s think ≈ 80 req/s nominal.
  EXPECT_GT(web.completed_requests(), 400u);
  EXPECT_LT(web.completed_requests(), 1000u);
}

TEST(WebWorkloadTest, DeploysKernelAndWorkerThreads) {
  sched::Machine m(small_config());
  WebWorkload web(light_config());
  web.deploy(m);
  ASSERT_EQ(web.threads().size(), 1u + web.config().workers);
  EXPECT_EQ(m.thread(web.threads()[0]).thread_class(),
            sched::ThreadClass::kKernel);
  for (std::size_t i = 1; i < web.threads().size(); ++i) {
    EXPECT_EQ(m.thread(web.threads()[i]).thread_class(),
              sched::ThreadClass::kUser);
  }
}

TEST(WebWorkloadTest, UnloadedLatenciesAreFast) {
  sched::Machine m(small_config());
  WebWorkload web(light_config());
  web.deploy(m);
  m.run_for(sim::from_sec(2));
  web.mark();
  m.run_for(sim::from_sec(10));
  const auto s = web.stats_since_mark();
  ASSERT_GT(s.total, 100u);
  // At ~5% load, responses come back in milliseconds: 100% good QoS.
  EXPECT_DOUBLE_EQ(s.good_fraction(), 1.0);
  EXPECT_LT(s.mean_latency_s, 0.1);
}

TEST(WebWorkloadTest, QosBucketsConsistent) {
  sched::Machine m(small_config());
  WebWorkload web(light_config());
  web.deploy(m);
  web.mark();
  m.run_for(sim::from_sec(5));
  const auto s = web.stats_since_mark();
  EXPECT_LE(s.good, s.tolerable);
  EXPECT_EQ(s.tolerable + s.fail, s.total);
  EXPECT_GE(s.max_latency_s, s.mean_latency_s);
}

TEST(WebWorkloadTest, PaperScaleLoadLevel) {
  // 440 connections over two client machines (§3.7): "approximately 15-25%
  // load per core".
  sched::Machine m(small_config());
  WebWorkload web;  // paper defaults
  web.deploy(m);
  const double busy0 = [&] {
    double b = 0.0;
    for (std::size_t i = 0; i < m.num_cores(); ++i) {
      b += m.core(static_cast<sched::CoreId>(i)).busy_seconds;
    }
    return b;
  }();
  m.run_for(sim::from_sec(20));
  double busy = -busy0;
  for (std::size_t i = 0; i < m.num_cores(); ++i) {
    busy += m.core(static_cast<sched::CoreId>(i)).busy_seconds;
  }
  const double load_per_core = busy / (20.0 * 4.0);
  EXPECT_GT(load_per_core, 0.10);
  EXPECT_LT(load_per_core, 0.30);
}

TEST(WebWorkloadTest, InjectionDelaysButServesRequests) {
  // With aggressive injection the server still works; QoS-relevant latency
  // grows (the deferral dynamics of §3.7).
  auto mean_latency = [](double p) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine m(cfg);
    std::unique_ptr<core::DimetrodonController> ctl;
    WebWorkload web(WebWorkload::Config{});
    if (p > 0) {
      ctl = std::make_unique<core::DimetrodonController>(m);
      ctl->sys_set_global(p, sim::from_ms(100));
    }
    web.deploy(m);
    m.run_for(sim::from_sec(5));
    web.mark();
    m.run_for(sim::from_sec(20));
    return web.stats_since_mark().mean_latency_s;
  };
  EXPECT_GT(mean_latency(0.9), 2.0 * mean_latency(0.0));
}

TEST(WebWorkloadTest, MarkResetsWindow) {
  sched::Machine m(small_config());
  WebWorkload web(light_config());
  web.deploy(m);
  m.run_for(sim::from_sec(5));
  web.mark();
  EXPECT_EQ(web.stats_since_mark().total, 0u);
}

TEST(WebWorkloadTest, PercentilesPopulatedAndOrdered) {
  sched::Machine m(small_config());
  WebWorkload web(light_config());
  web.deploy(m);
  m.run_for(sim::from_sec(2));
  web.mark();
  m.run_for(sim::from_sec(10));
  const auto s = web.stats_since_mark();
  ASSERT_GT(s.total, 100u);
  EXPECT_GT(s.p50_latency_s, 0.0);
  EXPECT_LE(s.p50_latency_s, s.p95_latency_s);
  EXPECT_LE(s.p95_latency_s, s.p99_latency_s);
  EXPECT_LE(s.p99_latency_s, s.max_latency_s);
  // The streaming histogram holds ~1% relative error, so the median should
  // bracket the mean loosely on this unimodal latency distribution.
  EXPECT_LT(s.p50_latency_s, 10.0 * s.mean_latency_s);
}

TEST(WebWorkloadTest, OpenLoopInjectionCompletesWithCallback) {
  sched::Machine m(small_config());
  WebWorkload::Config cfg;
  cfg.connections = 0;  // open loop only
  WebWorkload web(cfg);
  web.deploy(m);

  std::vector<std::pair<std::uint32_t, double>> done;
  web.set_completion_callback([&](std::uint32_t id, double latency_s) {
    done.emplace_back(id, latency_s);
  });
  web.mark();
  for (std::uint32_t i = 0; i < 25; ++i) {
    web.inject_request(i);
    m.run_for(sim::from_ms(40));
  }
  m.run_for(sim::from_sec(2));

  ASSERT_EQ(done.size(), 25u);
  for (std::uint32_t i = 0; i < done.size(); ++i) {
    EXPECT_EQ(done[i].first, i);  // FIFO on an idle machine
    EXPECT_GT(done[i].second, 0.0);
  }
  EXPECT_EQ(web.outstanding_requests(), 0u);
  EXPECT_EQ(web.completed_requests(), 25u);
  EXPECT_EQ(web.stats_since_mark().total, 25u);
  // External completions never re-arm a think timer: with the queue drained
  // the machine generates no further requests.
  m.run_for(sim::from_sec(5));
  EXPECT_EQ(web.completed_requests(), 25u);
}

// SPECWeb QoS buckets are inclusive at their thresholds: good <= 3 s,
// tolerable <= 5 s, fail > 5 s. Emergent latencies can't be pinned to an
// exact boundary, so measure one deterministic open-loop request, then
// replay the identical simulation with the thresholds set exactly AT and
// just BELOW the observed latency.
TEST(WebWorkloadTest, QosBucketBoundariesAreInclusive) {
  const auto observe = [](double good_s, double tolerable_s) {
    sched::Machine m(small_config());
    WebWorkload::Config cfg;
    cfg.connections = 0;
    if (good_s > 0.0) {
      cfg.good_threshold_s = good_s;
      cfg.tolerable_threshold_s = tolerable_s;
    }
    WebWorkload web(cfg);
    web.deploy(m);
    double latency = -1.0;
    web.set_completion_callback(
        [&](std::uint32_t, double latency_s) { latency = latency_s; });
    web.mark();
    web.inject_request(0);
    m.run_for(sim::from_sec(1));
    auto s = web.stats_since_mark();
    EXPECT_EQ(s.total, 1u);
    EXPECT_EQ(s.max_latency_s, latency);
    return std::pair(latency, s);
  };

  // First run discovers the deterministic latency L of request 0.
  const double latency = observe(0.0, 0.0).first;
  ASSERT_GT(latency, 0.0);

  // Thresholds exactly at L: inclusive, so good and tolerable, not fail.
  const auto at = observe(latency, latency).second;
  EXPECT_EQ(at.good, 1u);
  EXPECT_EQ(at.tolerable, 1u);
  EXPECT_EQ(at.fail, 0u);

  // Thresholds just below L: the same request fails both buckets.
  const double below = latency * (1.0 - 1e-12);
  ASSERT_LT(below, latency);
  const auto miss = observe(below, below).second;
  EXPECT_EQ(miss.good, 0u);
  EXPECT_EQ(miss.tolerable, 0u);
  EXPECT_EQ(miss.fail, 1u);
}

TEST(WebWorkloadTest, OutstandingRequestsBounded) {
  sched::Machine m(small_config());
  WebWorkload web(light_config());
  web.deploy(m);
  m.run_for(sim::from_sec(10));
  // Closed loop: outstanding can never exceed the connection count.
  EXPECT_LE(web.outstanding_requests(), 40u);
}

// A scale-1.0 injection must be byte-for-byte the legacy path: same drawn
// demand, same latency. A larger scale stretches the worker stage.
TEST(WebWorkloadTest, DemandScaleStretchesServiceTime) {
  const auto one_shot = [](double scale) {
    sched::Machine m(small_config());
    WebWorkload::Config cfg;
    cfg.connections = 0;
    WebWorkload web(cfg);
    web.deploy(m);
    double latency = -1.0;
    web.set_completion_callback(
        [&](std::uint32_t, double latency_s) { latency = latency_s; });
    if (scale < 0.0) {
      web.inject_request(0);  // legacy call, no scale argument at all
    } else {
      web.inject_request(0, scale);
    }
    m.run_for(sim::from_sec(5));
    return latency;
  };
  const double legacy = one_shot(-1.0);
  ASSERT_GT(legacy, 0.0);
  EXPECT_EQ(one_shot(1.0), legacy);  // bit-identical, not just close
  EXPECT_GT(one_shot(8.0), legacy);
  EXPECT_GT(one_shot(8.0), one_shot(2.0));
}

TEST(WebWorkloadTest, IssuedAtBackdatesTheLatencyClock) {
  // Two identical machines, both injecting at t = 1 s; the second claims
  // the request was issued at t = 0, so it reports exactly +1 s latency.
  const auto inject_after_1s = [](sim::SimTime issued_at) {
    sched::Machine m(small_config());
    WebWorkload::Config cfg;
    cfg.connections = 0;
    WebWorkload web(cfg);
    web.deploy(m);
    double latency = -1.0;
    web.set_completion_callback(
        [&](std::uint32_t, double latency_s) { latency = latency_s; });
    m.run_for(sim::from_sec(1));
    web.inject_request(0, 1.0, issued_at);
    m.run_for(sim::from_sec(5));
    return latency;
  };
  const double plain = inject_after_1s(-1);  // default: issued "now"
  ASSERT_GT(plain, 0.0);
  const double backdated = inject_after_1s(0);
  EXPECT_NEAR(backdated, plain + 1.0, 1e-9);
}

TEST(WebWorkloadTest, CancelPendingExternalRehomesQueuedOldestFirst) {
  sched::Machine m(small_config());
  WebWorkload::Config cfg;
  cfg.connections = 0;
  WebWorkload web(cfg);
  web.deploy(m);
  std::vector<std::uint32_t> completed;
  web.set_completion_callback(
      [&](std::uint32_t id, double) { completed.push_back(id); });
  // Queue a burst far faster than one node can serve: later requests are
  // still waiting in the kernel/ready queues when the cancel lands.
  for (std::uint32_t i = 0; i < 12; ++i) {
    web.inject_request(i, 1.0 + 0.25 * i);
    m.run_for(sim::from_ms(1));
  }
  const auto cancelled = web.cancel_pending_external();
  ASSERT_FALSE(cancelled.empty());
  ASSERT_LT(cancelled.size(), 12u);  // whatever entered service stays put
  for (std::size_t i = 0; i < cancelled.size(); ++i) {
    const auto& c = cancelled[i];
    // Injection order was oldest-first with strictly increasing issue times
    // and per-request demand scales; all three survive the cancel intact.
    EXPECT_EQ(c.request_id, 12u - cancelled.size() + i);
    EXPECT_EQ(c.demand_scale, 1.0 + 0.25 * c.request_id);
    EXPECT_EQ(c.issued_at, sim::from_ms(c.request_id));
    if (i > 0) EXPECT_GT(c.issued_at, cancelled[i - 1].issued_at);
  }
  // In-service requests run to completion on this node; cancelled ones
  // never complete here.
  m.run_for(sim::from_sec(10));
  EXPECT_EQ(completed.size() + cancelled.size(), 12u);
  for (std::uint32_t id : completed) {
    EXPECT_LT(id, 12u - cancelled.size());
  }
  EXPECT_EQ(web.outstanding_requests(), 0u);
  // A second cancel on the drained workload finds nothing.
  EXPECT_TRUE(web.cancel_pending_external().empty());
}

TEST(WebWorkloadTest, CancelPendingExternalLeavesConnectionsAlone) {
  sched::Machine m(small_config());
  WebWorkload web(light_config());  // closed loop, 40 connections
  web.deploy(m);
  m.run_for(sim::from_sec(1));
  const auto cancelled = web.cancel_pending_external();
  EXPECT_TRUE(cancelled.empty());  // nothing external to pull
  const std::uint64_t before = web.completed_requests();
  m.run_for(sim::from_sec(2));
  // The closed loop keeps running: cancel touches external requests only.
  EXPECT_GT(web.completed_requests(), before);
}

}  // namespace
}  // namespace dimetrodon::workload
