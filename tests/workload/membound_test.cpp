#include "workload/membound.hpp"

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon::workload {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

TEST(MemBoundTest, ThroughputGatedByStallFraction) {
  sched::Machine m(small_config());
  MemBoundProfile profile;  // 55% stalled
  MemBoundFleet fleet(profile, 4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(10));
  // CPU-resident fraction ~ (1 - stall) per instance.
  const double per_instance = fleet.progress(m) / 4.0 / 10.0;
  EXPECT_NEAR(per_instance, 1.0 - profile.stall_fraction, 0.08);
}

TEST(MemBoundTest, RunsMuchCoolerThanCpuBound) {
  auto mean_power = [](bool membound) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine m(cfg);
    std::unique_ptr<Workload> wl;
    if (membound) {
      wl = std::make_unique<MemBoundFleet>(MemBoundProfile{}, 4);
    } else {
      wl = std::make_unique<CpuBurnFleet>(4);
    }
    wl->deploy(m);
    m.run_for(sim::from_sec(10));
    return m.energy().total_joules() / 10.0;
  };
  EXPECT_LT(mean_power(true), mean_power(false) - 15.0);
}

TEST(MemBoundTest, FiniteWorkCompletes) {
  sched::Machine m(small_config());
  MemBoundFleet fleet(MemBoundProfile{}, 2, 0.5);
  fleet.deploy(m);
  m.run_for(sim::from_sec(6));
  for (const auto tid : fleet.threads()) {
    EXPECT_EQ(m.thread(tid).state(), sched::ThreadState::kDone) << tid;
  }
  EXPECT_NEAR(fleet.progress(m), 1.0, 0.1);
}

TEST(MemBoundTest, DvfsHurtsLessThanCpuBound) {
  // Memory time is frequency-invariant: scaling f to 70% costs a CPU-bound
  // thread ~30% throughput but a memory-bound one much less.
  auto relative_throughput = [](bool membound) {
    auto run = [&](std::size_t level) {
      sched::MachineConfig cfg;
      cfg.enable_meter = false;
      sched::Machine m(cfg);
      m.set_all_dvfs_levels(level);
      std::unique_ptr<Workload> wl;
      if (membound) {
        wl = std::make_unique<MemBoundFleet>(MemBoundProfile{}, 4);
      } else {
        wl = std::make_unique<CpuBurnFleet>(4);
      }
      wl->deploy(m);
      m.run_for(sim::from_sec(10));
      return wl->progress(m);
    };
    return run(5) / run(0);
  };
  EXPECT_GT(relative_throughput(true), relative_throughput(false) + 0.1);
}

TEST(MemBoundTest, InjectionStillThrottlesIt) {
  sched::Machine m(small_config());
  core::DimetrodonController ctl(m);
  ctl.sys_set_global(0.75, sim::from_ms(50));
  MemBoundFleet fleet(MemBoundProfile{}, 4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(10));
  EXPECT_GT(ctl.stats().injections, 20u);
  const double per_instance = fleet.progress(m) / 4.0 / 10.0;
  EXPECT_LT(per_instance, 0.35);  // well below the uninjected 0.45
}

}  // namespace
}  // namespace dimetrodon::workload
