#include "workload/cpuburn.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::workload {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

TEST(CpuBurnTest, FiniteFleetCompletes) {
  sched::Machine m(small_config());
  CpuBurnFleet fleet(4, 1.5);
  fleet.deploy(m);
  EXPECT_EQ(fleet.threads().size(), 4u);
  m.run_for(sim::from_sec(3));
  EXPECT_TRUE(fleet.all_done(m));
  EXPECT_NEAR(fleet.progress(m), 6.0, 1e-6);
}

TEST(CpuBurnTest, InfiniteFleetNeverCompletes) {
  sched::Machine m(small_config());
  CpuBurnFleet fleet(2);
  fleet.deploy(m);
  m.run_for(sim::from_sec(2));
  EXPECT_FALSE(fleet.all_done(m));
  EXPECT_NEAR(fleet.progress(m), 4.0, 0.05);
}

TEST(CpuBurnTest, WorstCaseActivityFactor) {
  sched::Machine m(small_config());
  CpuBurnFleet fleet(1);
  fleet.deploy(m);
  m.run_for(sim::from_ms(50));
  const auto& t = m.thread(fleet.threads()[0]);
  EXPECT_DOUBLE_EQ(t.activity(), 1.0);
}

TEST(CpuBurnTest, CustomActivityRespected) {
  sched::Machine m(small_config());
  CpuBurnFleet fleet(1, -1.0, 0.7);
  fleet.deploy(m);
  m.run_for(sim::from_ms(50));
  EXPECT_DOUBLE_EQ(m.thread(fleet.threads()[0]).activity(), 0.7);
}

TEST(CpuBurnTest, MoreInstancesThanCoresTimeshare) {
  sched::Machine m(small_config());
  CpuBurnFleet fleet(8, 0.5);  // 4 s of work on 4 cores
  fleet.deploy(m);
  m.run_until_condition([&] { return fleet.all_done(m); }, sim::from_sec(5));
  EXPECT_TRUE(fleet.all_done(m));
  EXPECT_NEAR(fleet.progress(m), 4.0, 1e-6);
}

TEST(CpuBurnTest, ProgressMonotone) {
  sched::Machine m(small_config());
  CpuBurnFleet fleet(4);
  fleet.deploy(m);
  double prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    m.run_for(sim::from_ms(100));
    const double p = fleet.progress(m);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

}  // namespace
}  // namespace dimetrodon::workload
