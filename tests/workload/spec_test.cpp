#include "workload/spec.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::workload {
namespace {

sched::MachineConfig small_config() {
  sched::MachineConfig cfg;
  cfg.enable_meter = false;
  return cfg;
}

TEST(SpecProfilesTest, PaperBenchmarksPresent) {
  // Table 1's six selected benchmarks.
  for (const char* name :
       {"calculix", "namd", "dealII", "bzip2", "gcc", "astar"}) {
    EXPECT_TRUE(find_spec_profile(name).has_value()) << name;
  }
  EXPECT_FALSE(find_spec_profile("povray").has_value());
}

TEST(SpecProfilesTest, ThermalOrderingMatchesTable1) {
  // calculix hottest ... astar coolest (activity is the heat proxy).
  const auto& profiles = spec2006_profiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles.front().name, "calculix");
  EXPECT_EQ(profiles.back().name, "astar");
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_LE(profiles[i].activity_mean, profiles[i - 1].activity_mean + 0.01)
        << profiles[i].name;
  }
  EXPECT_LT(profiles.back().activity_mean, 0.85);
  EXPECT_GT(profiles.front().activity_mean, 0.95);
}

TEST(SpecBehaviorTest, ActivityStaysInBounds) {
  SpecBehavior b(*find_spec_profile("gcc"));
  sim::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const sched::Burst burst = b.next_burst(sim::from_ms(i * 20), rng);
    EXPECT_GE(burst.activity, 0.05);
    EXPECT_LE(burst.activity, 1.0);
    EXPECT_GT(burst.work_seconds, 0.0);
  }
}

TEST(SpecBehaviorTest, PhaseOscillationVisible) {
  // Activity at opposite phase points differs by about twice the swing.
  SpecProfile profile = *find_spec_profile("bzip2");
  profile.jitter = 0.0;
  SpecBehavior b(profile);
  sim::Rng rng(1);
  const double peak =
      b.next_burst(sim::from_sec(profile.phase_seconds / 4.0), rng).activity;
  const double trough =
      b.next_burst(sim::from_sec(3.0 * profile.phase_seconds / 4.0), rng)
          .activity;
  EXPECT_NEAR(peak - trough, 2.0 * profile.activity_swing, 0.01);
}

TEST(SpecFleetTest, EndlessFleetIsCpuBound) {
  // Paper §3.5: "the workloads were entirely CPU-bound" — all wall-clock
  // time converts to work.
  sched::Machine m(small_config());
  SpecFleet fleet(*find_spec_profile("namd"), 4);
  fleet.deploy(m);
  m.run_for(sim::from_sec(5));
  EXPECT_NEAR(fleet.progress(m), 4 * 5.0, 0.2);
}

TEST(SpecFleetTest, FiniteFleetCompletes) {
  sched::Machine m(small_config());
  SpecFleet fleet(*find_spec_profile("astar"), 2, 1.0);
  fleet.deploy(m);
  m.run_for(sim::from_sec(3));
  for (const auto tid : fleet.threads()) {
    EXPECT_EQ(m.thread(tid).state(), sched::ThreadState::kDone);
  }
  EXPECT_NEAR(fleet.progress(m), 2.0, 0.01);
}

TEST(SpecFleetTest, HotterProfileDissipatesMorePower) {
  auto mean_power = [](const char* name) {
    sched::MachineConfig cfg;
    cfg.enable_meter = false;
    sched::Machine m(cfg);
    SpecFleet fleet(*find_spec_profile(name), 4);
    fleet.deploy(m);
    m.run_for(sim::from_sec(10));
    return m.energy().total_joules() / 10.0;
  };
  EXPECT_GT(mean_power("calculix"), mean_power("astar") + 5.0);
}

}  // namespace
}  // namespace dimetrodon::workload
