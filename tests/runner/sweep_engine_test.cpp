// SweepEngine contract tests: parallel == serial bit-for-bit, the on-disk
// cache round-trips records and is invalidated by any spec change, and
// damaged cache entries are recomputed rather than trusted.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "runner/result_cache.hpp"
#include "runner/sweep_engine.hpp"
#include "runner/thread_pool.hpp"
#include "sim/rng.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon::runner {
namespace {

namespace fs = std::filesystem;

// Small settle/window so one measured run is a few tens of milliseconds.
harness::MeasurementConfig fast_measurement() {
  harness::MeasurementConfig mc;
  mc.max_settle_iterations = 2;
  mc.settle_chunk = sim::from_sec(4);
  mc.post_settle_run = sim::from_sec(1);
  mc.measure_window = sim::from_sec(5);
  return mc;
}

RunSpec cpuburn_spec(double p, sim::SimTime quantum, std::uint64_t seed) {
  RunSpec spec;
  spec.workload_key = "cpuburn:2";
  spec.workload = [] { return std::make_unique<workload::CpuBurnFleet>(2); };
  spec.actuation = p > 0.0 ? ActuationSpec::global(p, quantum)
                           : ActuationSpec::none();
  spec.measurement = fast_measurement();
  spec.seed = seed;
  return spec;
}

// The 12-point grid the determinism tests sweep: 4 configurations x 3
// derived seed streams.
std::vector<RunSpec> test_grid() {
  std::vector<RunSpec> specs;
  const std::vector<std::pair<double, double>> grid = {
      {0.0, 0.0}, {0.25, 10.0}, {0.5, 25.0}, {0.75, 50.0}};
  for (const auto& [p, l_ms] : grid) {
    for (std::uint64_t stream = 0; stream < 3; ++stream) {
      specs.push_back(cpuburn_spec(p, sim::from_ms(l_ms),
                                   sim::derive_stream_seed(0xabc, stream)));
    }
  }
  return specs;
}

SweepEngineConfig quiet_config(std::size_t threads, std::string cache_dir) {
  SweepEngineConfig cfg;
  cfg.threads = threads;
  cfg.use_cache = !cache_dir.empty();
  cfg.cache_dir = std::move(cache_dir);
  cfg.progress = false;
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dimetrodon_" + name);
  fs::remove_all(dir);
  return dir.string();
}

void expect_identical(const harness::RunResult& a,
                      const harness::RunResult& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.idle_sensor_temp_c, b.idle_sensor_temp_c);
  EXPECT_EQ(a.idle_exact_temp_c, b.idle_exact_temp_c);
  EXPECT_EQ(a.avg_sensor_temp_c, b.avg_sensor_temp_c);
  EXPECT_EQ(a.avg_exact_temp_c, b.avg_exact_temp_c);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.injected_idle_fraction, b.injected_idle_fraction);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.qos.has_value(), b.qos.has_value());
  if (a.qos.has_value() && b.qos.has_value()) {
    EXPECT_EQ(a.qos->total, b.qos->total);
    EXPECT_EQ(a.qos->mean_latency_s, b.qos->mean_latency_s);
    EXPECT_EQ(a.qos->p50_latency_s, b.qos->p50_latency_s);
    EXPECT_EQ(a.qos->p95_latency_s, b.qos->p95_latency_s);
    EXPECT_EQ(a.qos->p99_latency_s, b.qos->p99_latency_s);
  }
  EXPECT_TRUE(a.counters == b.counters);
}

TEST(SweepEngine, ParallelMatchesSerialBitForBit) {
  const auto specs = test_grid();
  SweepEngine serial(sched::MachineConfig{}, quiet_config(1, ""));
  SweepEngine parallel(sched::MachineConfig{}, quiet_config(4, ""));

  const auto serial_records = serial.run(specs);
  const auto parallel_records = parallel.run(specs);

  ASSERT_EQ(serial_records.size(), specs.size());
  ASSERT_EQ(parallel_records.size(), specs.size());
  EXPECT_EQ(serial.last_metrics().executed, specs.size());
  EXPECT_EQ(parallel.last_metrics().executed, specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial_records[i].result, parallel_records[i].result);
  }
}

TEST(SweepEngine, SecondRunServedEntirelyFromCache) {
  const auto specs = test_grid();
  const std::string dir = fresh_dir("cache_roundtrip");
  SweepEngine engine(sched::MachineConfig{}, quiet_config(2, dir));

  const auto cold = engine.run(specs);
  EXPECT_EQ(engine.last_metrics().executed, specs.size());
  EXPECT_EQ(engine.last_metrics().cache_hits, 0u);

  const auto warm = engine.run(specs);
  EXPECT_EQ(engine.last_metrics().executed, 0u);
  EXPECT_EQ(engine.last_metrics().cache_hits, specs.size());
  EXPECT_EQ(engine.last_metrics().cache_hit_rate, 1.0);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(cold[i].result, warm[i].result);
  }
  fs::remove_all(dir);
}

TEST(SweepEngine, CacheSharedAcrossEngineInstances) {
  const auto specs = test_grid();
  const std::string dir = fresh_dir("cache_shared");
  SweepEngine first(sched::MachineConfig{}, quiet_config(1, dir));
  const auto cold = first.run(specs);

  SweepEngine second(sched::MachineConfig{}, quiet_config(4, dir));
  const auto warm = second.run(specs);
  EXPECT_EQ(second.last_metrics().executed, 0u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(cold[i].result, warm[i].result);
  }
  fs::remove_all(dir);
}

TEST(SweepEngine, KeyChangesWithEverySpecField) {
  SweepEngine engine(sched::MachineConfig{}, quiet_config(1, ""));
  const RunSpec base = cpuburn_spec(0.5, sim::from_ms(25), 0x5eed);
  const CacheKey key = engine.key_for(base);

  RunSpec changed_p = base;
  changed_p.actuation = ActuationSpec::global(0.25, sim::from_ms(25));
  EXPECT_FALSE(engine.key_for(changed_p) == key);

  RunSpec changed_l = base;
  changed_l.actuation = ActuationSpec::global(0.5, sim::from_ms(50));
  EXPECT_FALSE(engine.key_for(changed_l) == key);

  RunSpec changed_kind = base;
  changed_kind.actuation = ActuationSpec::global_stratified(0.5,
                                                           sim::from_ms(25));
  EXPECT_FALSE(engine.key_for(changed_kind) == key);

  RunSpec changed_seed = base;
  changed_seed.seed = 0x5eee;
  EXPECT_FALSE(engine.key_for(changed_seed) == key);

  RunSpec changed_window = base;
  changed_window.measurement.measure_window = sim::from_sec(6);
  EXPECT_FALSE(engine.key_for(changed_window) == key);

  RunSpec changed_poll = base;
  changed_poll.measurement.sensor_poll = sim::from_ms(250);
  EXPECT_FALSE(engine.key_for(changed_poll) == key);

  RunSpec changed_workload = base;
  changed_workload.workload_key = "cpuburn:4";
  EXPECT_FALSE(engine.key_for(changed_workload) == key);

  RunSpec changed_machine = base;
  changed_machine.machine = sched::MachineConfig{};
  changed_machine.machine->idle_cstate = power::CState::kC1;
  EXPECT_FALSE(engine.key_for(changed_machine) == key);

  // An override identical to the engine base is still the same simulation.
  RunSpec same_machine = base;
  same_machine.machine = sched::MachineConfig{};
  EXPECT_TRUE(engine.key_for(same_machine) == key);

  // A different engine base config changes every key.
  sched::MachineConfig other_base;
  other_base.idle_cstate = power::CState::kC1;
  SweepEngine other(other_base, quiet_config(1, ""));
  EXPECT_FALSE(other.key_for(base) == key);
}

TEST(SweepEngine, WarmupIsPartOfTheCacheKey) {
  SweepEngine engine(sched::MachineConfig{}, quiet_config(1, ""));
  const RunSpec base = cpuburn_spec(0.5, sim::from_ms(25), 0x5eed);
  RunSpec warm = base;
  warm.warmup = sim::from_sec(120);
  EXPECT_NE(engine.canonical(base), engine.canonical(warm));
  RunSpec warmer = warm;
  warmer.warmup = sim::from_sec(240);
  EXPECT_NE(engine.canonical(warm), engine.canonical(warmer));
  // The prefix identity ignores actuation/measurement: two warm specs that
  // differ only in injection probability share one snapshot...
  RunSpec other_p = warm;
  other_p.actuation = ActuationSpec::global(0.25, sim::from_ms(25));
  EXPECT_EQ(canonical_warm_prefix(warm, engine.base_config()),
            canonical_warm_prefix(other_p, engine.base_config()));
  // ...but a different seed, workload, or warmup does not.
  RunSpec other_seed = warm;
  other_seed.seed = 0xbeef;
  EXPECT_NE(canonical_warm_prefix(warm, engine.base_config()),
            canonical_warm_prefix(other_seed, engine.base_config()));
  EXPECT_NE(canonical_warm_prefix(warm, engine.base_config()),
            canonical_warm_prefix(warmer, engine.base_config()));
}

std::vector<RunSpec> warm_grid(sim::SimTime warmup) {
  std::vector<RunSpec> specs;
  for (const double p : {0.0, 0.25, 0.5, 0.75}) {
    RunSpec s = cpuburn_spec(p, sim::from_ms(25), 0x77);
    s.warmup = warmup;
    specs.push_back(std::move(s));
  }
  return specs;
}

TEST(SweepEngine, WarmSpecsShareOnePrefixSnapshot) {
  const auto specs = warm_grid(sim::from_sec(90));
  SweepEngine engine(sched::MachineConfig{}, quiet_config(2, ""));
  const auto result = engine.run(specs);
  ASSERT_TRUE(result.all_ok());
  // One warmup simulation fed all four measured points.
  EXPECT_EQ(engine.snapshots().size(), 1u);
  EXPECT_EQ(result.metrics.counters.snapshot_builds, 1u);
  EXPECT_EQ(result.metrics.counters.snapshot_forks, specs.size());
}

TEST(SweepEngine, WarmSweepMatchesDirectHarnessBitForBit) {
  // Engine-level fork ≡ replay: a warm sweep point equals the harness
  // running the same warmup inline, with no engine or snapshot cache in the
  // loop — caching is unobservable in results.
  const auto specs = warm_grid(sim::from_sec(90));
  SweepEngine parallel(sched::MachineConfig{}, quiet_config(4, ""));
  const auto swept = parallel.run(specs);
  ASSERT_TRUE(swept.all_ok());
  sched::MachineConfig cfg;
  cfg.seed = 0x77;
  harness::ExperimentRunner runner(cfg, fast_measurement());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(i);
    const auto direct = runner.measure_after_warmup(
        specs[i].workload, specs[i].actuation.to_setup(), specs[i].warmup);
    expect_identical(swept[i].result, direct);
  }
}

TEST(SweepEngine, CustomTagIsTheCustomRunIdentity) {
  SweepEngine engine(sched::MachineConfig{}, quiet_config(1, ""));
  RunSpec a;
  a.kind = RunSpec::Kind::kCustom;
  a.custom_tag = "experiment[x=1]";
  a.seed = 7;
  RunSpec b = a;
  b.custom_tag = "experiment[x=2]";
  EXPECT_FALSE(engine.key_for(a) == engine.key_for(b));
  b.custom_tag = a.custom_tag;
  EXPECT_TRUE(engine.key_for(a) == engine.key_for(b));
}

TEST(SweepEngine, CustomRunsCacheSamplesAndExtras) {
  const std::string dir = fresh_dir("cache_custom");
  SweepEngine engine(sched::MachineConfig{}, quiet_config(1, dir));
  RunSpec spec;
  spec.kind = RunSpec::Kind::kCustom;
  spec.custom_tag = "custom-cache-roundtrip";
  spec.seed = 42;
  spec.custom = [](const RunSpec& s, const sched::MachineConfig& cfg,
                   const RunContext&) {
    RunRecord rec;
    rec.samples = {1.5, 2.5, static_cast<double>(cfg.seed)};
    rec.extra = {{"seed", static_cast<double>(s.seed)}, {"pi", 3.14159}};
    rec.window.completion_seconds = 9.75;
    return rec;
  };

  const auto cold = engine.run({spec}).at(0);
  EXPECT_EQ(engine.last_metrics().executed, 1u);
  const auto warm = engine.run({spec}).at(0);
  EXPECT_EQ(engine.last_metrics().cache_hits, 1u);
  EXPECT_EQ(warm.samples, cold.samples);
  EXPECT_EQ(warm.extra, cold.extra);
  EXPECT_EQ(warm.window.completion_seconds, cold.window.completion_seconds);
  EXPECT_EQ(warm.metric("pi"), 3.14159);
  fs::remove_all(dir);
}

// Damaged cache entries must load as misses and be recomputed (and the
// recompute repairs the entry in place).
class CacheDamageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs each TEST_F as its own parallel process.
    dir_ = fresh_dir(std::string("cache_damage_") +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    spec_ = cpuburn_spec(0.5, sim::from_ms(10), 0x5eed);
    engine_ = std::make_unique<SweepEngine>(sched::MachineConfig{},
                                            quiet_config(1, dir_));
    engine_->run({spec_});
    ASSERT_EQ(engine_->last_metrics().executed, 1u);
    ResultCache cache(dir_, true);
    path_ = cache.path_for(engine_->key_for(spec_));
    ASSERT_TRUE(fs::exists(path_));
  }

  void TearDown() override { fs::remove_all(dir_); }

  void overwrite(const std::string& content) {
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }

  std::string read_file() {
    std::ifstream in(path_);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  // Damage the file, then expect a recompute followed by a repaired hit.
  void expect_recomputed() {
    engine_->run({spec_});
    EXPECT_EQ(engine_->last_metrics().executed, 1u);
    EXPECT_EQ(engine_->last_metrics().cache_hits, 0u);
    engine_->run({spec_});
    EXPECT_EQ(engine_->last_metrics().cache_hits, 1u);
  }

  std::string dir_;
  std::string path_;
  RunSpec spec_;
  std::unique_ptr<SweepEngine> engine_;
};

TEST_F(CacheDamageTest, TruncatedFileIsRecomputed) {
  const std::string full = read_file();
  overwrite(full.substr(0, full.size() / 2));
  expect_recomputed();
}

TEST_F(CacheDamageTest, GarbageFileIsRecomputed) {
  overwrite("not a cache file at all\n");
  expect_recomputed();
}

TEST_F(CacheDamageTest, FlippedPayloadByteIsRecomputed) {
  std::string full = read_file();
  const auto pos = full.find("avg_sensor_temp_c");
  ASSERT_NE(pos, std::string::npos);
  full[pos] = 'X';  // breaks the payload checksum
  overwrite(full);
  expect_recomputed();
}

TEST_F(CacheDamageTest, WrongSpecEchoIsTreatedAsCollision) {
  // Same key file, but the embedded canonical spec disagrees — as a true
  // 128-bit collision would. Must be a miss, never a wrong result.
  std::string full = read_file();
  const auto pos = full.find("seed=5eed");
  ASSERT_NE(pos, std::string::npos);
  full.replace(pos, 9, "seed=5eef");
  overwrite(full);
  expect_recomputed();
}

TEST(ResultCacheSerialization, RoundTripsAllRecordFields) {
  RunRecord rec;
  rec.result.label = "p=0.50 L=25ms";
  rec.result.avg_sensor_temp_c = 51.0625;
  rec.result.throughput = 0.875;
  rec.result.sim_seconds = 123.456;
  workload::WebWorkload::QosStats qos;
  qos.good = 10;
  qos.tolerable = 12;
  qos.fail = 1;
  qos.total = 13;
  qos.mean_latency_s = 0.625;
  qos.max_latency_s = 5.5;
  // v5 fields: streaming percentiles.
  qos.p50_latency_s = 0.375;
  qos.p95_latency_s = 2.25;
  qos.p99_latency_s = 4.125;
  rec.result.qos = qos;
  rec.result.counters.injections = 42;
  rec.result.counters.injected_idle_ns = 123456789;
  rec.result.counters.requests_completed = 7;
  rec.window.completion_seconds = 7.5;
  rec.window.meter_energy_j = 1234.5;
  rec.samples = {0.1, 0.2, 0.3};
  rec.extra = {{"alpha", 1.0 / 3.0}, {"beta", -0.0}};

  const auto payload = ResultCache::serialize_record(rec);
  const auto parsed = ResultCache::parse_record(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->result.label, rec.result.label);
  EXPECT_EQ(parsed->result.avg_sensor_temp_c, rec.result.avg_sensor_temp_c);
  EXPECT_EQ(parsed->result.throughput, rec.result.throughput);
  EXPECT_EQ(parsed->result.sim_seconds, rec.result.sim_seconds);
  ASSERT_TRUE(parsed->result.qos.has_value());
  EXPECT_EQ(parsed->result.qos->good, rec.result.qos->good);
  EXPECT_EQ(parsed->result.qos->tolerable, rec.result.qos->tolerable);
  EXPECT_EQ(parsed->result.qos->fail, rec.result.qos->fail);
  EXPECT_EQ(parsed->result.qos->total, rec.result.qos->total);
  EXPECT_EQ(parsed->result.qos->mean_latency_s, rec.result.qos->mean_latency_s);
  EXPECT_EQ(parsed->result.qos->max_latency_s, rec.result.qos->max_latency_s);
  EXPECT_EQ(parsed->result.qos->p50_latency_s, rec.result.qos->p50_latency_s);
  EXPECT_EQ(parsed->result.qos->p95_latency_s, rec.result.qos->p95_latency_s);
  EXPECT_EQ(parsed->result.qos->p99_latency_s, rec.result.qos->p99_latency_s);
  EXPECT_TRUE(parsed->result.counters == rec.result.counters);
  EXPECT_EQ(parsed->window.completion_seconds, rec.window.completion_seconds);
  EXPECT_EQ(parsed->window.meter_energy_j, rec.window.meter_energy_j);
  EXPECT_EQ(parsed->samples, rec.samples);
  EXPECT_EQ(parsed->extra, rec.extra);

  // Any truncation of the payload is a parse failure, not a partial record.
  for (const std::size_t cut : {payload.size() / 4, payload.size() / 2,
                                payload.size() - 2}) {
    EXPECT_FALSE(ResultCache::parse_record(payload.substr(0, cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(ResultCacheSerialization, CanonicalSpecRoundTripsHexDoubles) {
  // %a hexfloats make the canonical text bit-exact: two nearby doubles that
  // print identically under %f must still produce distinct canonical specs.
  SweepEngine engine(sched::MachineConfig{}, quiet_config(1, ""));
  RunSpec a = cpuburn_spec(0.1, sim::from_ms(25), 1);
  RunSpec b = cpuburn_spec(0.1 + 1e-17, sim::from_ms(25), 1);
  EXPECT_NE(engine.canonical(a), engine.canonical(b));
  EXPECT_FALSE(engine.key_for(a) == engine.key_for(b));
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ZeroThreadsExecutesInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  int count = 0;  // no synchronization needed: inline on this thread
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { ++count; });
  }
  EXPECT_EQ(count, 50);
  pool.wait_idle();
  EXPECT_EQ(pool.steal_count(), 0u);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 20 * (round + 1));
  }
}

TEST(SweepMetrics, CountsHitsAndExecutions) {
  SweepMetrics metrics(4);
  metrics.on_run_started();
  metrics.on_cache_hit();
  metrics.on_run_started();
  metrics.on_run_started();
  metrics.on_run_executed(10.0);
  const auto s = metrics.snapshot();
  EXPECT_EQ(s.total_runs, 4u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.in_flight, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.executed, 1u);
  EXPECT_EQ(s.cache_hit_rate, 0.5);
  EXPECT_EQ(s.sim_seconds_done, 10.0);
  const auto json = SweepMetrics::to_json(s);
  EXPECT_NE(json.find("\"total_runs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\": 1"), std::string::npos);
}

}  // namespace
}  // namespace dimetrodon::runner
