// Sensitivity of the canonical run-spec serialization: the cache key is the
// canonical text, so every data field that changes a simulation must perturb
// the text — and nothing else may.
#include <gtest/gtest.h>

#include <string>

#include "runner/run_spec.hpp"
#include "sim/canon.hpp"

namespace dimetrodon::runner {
namespace {

RunSpec base_spec() {
  RunSpec s;
  s.kind = RunSpec::Kind::kMeasure;
  s.workload_key = "cpuburn:4";
  s.actuation = ActuationSpec::global(0.25, sim::from_ms(10));
  s.seed = 0x5eed;
  return s;
}

std::string canon(const RunSpec& s) {
  return canonical_spec(s, sched::MachineConfig{});
}

TEST(CanonicalSpecTest, StartsWithTheVersionedPreamble) {
  const std::string expected =
      "dimetrodon-run-spec v" + std::to_string(sim::kCanonVersion) + " ";
  EXPECT_EQ(canon(base_spec()).substr(0, expected.size()), expected);
}

TEST(CanonicalSpecTest, EqualSpecsRenderEqualText) {
  EXPECT_EQ(canon(base_spec()), canon(base_spec()));
}

TEST(CanonicalSpecTest, EveryDataFieldPerturbsTheText) {
  const std::string base = canon(base_spec());

  RunSpec seed = base_spec();
  seed.seed ^= 1;
  EXPECT_NE(base, canon(seed));

  RunSpec workload = base_spec();
  workload.workload_key = "cpuburn:8";
  EXPECT_NE(base, canon(workload));

  RunSpec act_kind = base_spec();
  act_kind.actuation = ActuationSpec::global_stratified(0.25, sim::from_ms(10));
  EXPECT_NE(base, canon(act_kind));

  RunSpec act_p = base_spec();
  act_p.actuation.probability += 1e-9;  // sub-decimal-print perturbation
  EXPECT_NE(base, canon(act_p));

  RunSpec act_quantum = base_spec();
  act_quantum.actuation.quantum += 1;
  EXPECT_NE(base, canon(act_quantum));

  RunSpec meas = base_spec();
  meas.measurement.measure_window += 1;
  EXPECT_NE(base, canon(meas));

  RunSpec machine = base_spec();
  machine.machine = sched::MachineConfig{};
  machine.machine->floorplan.fan_speed_fraction = 0.9;
  EXPECT_NE(base, canon(machine));
}

TEST(CanonicalSpecTest, GovernorParametersEnterTheActuationSection) {
  RunSpec governed = base_spec();
  control::GovernorSpec g;
  g.kind = control::GovernorKind::kPid;
  g.pid.setpoint_c = 45.0;
  governed.actuation = ActuationSpec::governed(g);
  const std::string base = canon(governed);

  RunSpec tweaked = governed;
  tweaked.actuation.governor.pid.setpoint_c += 0.5;
  EXPECT_NE(base, canon(tweaked));
}

TEST(CanonicalSpecTest, CustomTagDistinguishesCustomRuns) {
  RunSpec a = base_spec();
  a.kind = RunSpec::Kind::kCustom;
  a.custom_tag = "cluster-v3{...}";
  RunSpec b = a;
  b.custom_tag = "cluster-v3{...} ";
  EXPECT_NE(canon(a), canon(b));
}

TEST(CanonicalSpecTest, BaseMachineConfigFlowsIntoUnpinnedSpecs) {
  // Specs without a machine override hash the engine's base config: two
  // engines with different bases must not share cache entries.
  sched::MachineConfig warm;
  warm.floorplan.ambient_c += 5.0;
  EXPECT_NE(canonical_spec(base_spec(), sched::MachineConfig{}),
            canonical_spec(base_spec(), warm));
}

}  // namespace
}  // namespace dimetrodon::runner
