// The pool's nested-parallelism contract: run_and_wait joins a task group
// from anywhere — a pool worker (even with every lane busy), the owning
// thread, or a 0-worker inline pool — by executing queued work instead of
// blocking on it. Before this contract existed, a worker that submitted
// subtasks and waited would deadlock the moment the pool saturated.
#include "runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <latch>
#include <stdexcept>
#include <vector>

namespace dimetrodon::runner {
namespace {

TEST(ThreadPool, RunAndWaitFromExternalCallerCompletesAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1); });
  }
  pool.run_and_wait(std::move(tasks));
  EXPECT_EQ(ran.load(), 16);
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(ThreadPool, SaturatedPoolReentryDoesNotDeadlock) {
  // Both lanes enter their outer task and only then fan out subtasks: no
  // free worker exists to pick them up, so the outer tasks must execute
  // their own groups inline (the help loop). A blocking join here would
  // deadlock and trip the test timeout.
  ThreadPool pool(2);
  std::latch both_entered(2);
  std::atomic<int> inner_ran{0};
  for (int outer = 0; outer < 2; ++outer) {
    pool.submit([&] {
      both_entered.arrive_and_wait();  // saturate before re-entering
      std::vector<std::function<void()>> inner;
      for (int i = 0; i < 8; ++i) {
        inner.push_back([&inner_ran] { inner_ran.fetch_add(1); });
      }
      pool.run_and_wait(std::move(inner));
    });
  }
  pool.wait_idle();
  EXPECT_EQ(inner_ran.load(), 16);
}

TEST(ThreadPool, NestedReentryThreeLevelsDeep) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  std::function<void(int)> fan = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    std::vector<std::function<void()>> sub;
    for (int i = 0; i < 3; ++i) sub.push_back([&, depth] { fan(depth - 1); });
    pool.run_and_wait(std::move(sub));
  };
  pool.submit([&] { fan(3); });
  pool.wait_idle();
  EXPECT_EQ(leaves.load(), 27);
}

TEST(ThreadPool, WaitIdleFromWorkerThrowsInsteadOfDeadlocking) {
  ThreadPool pool(1);
  std::atomic<bool> threw{false};
  std::atomic<bool> on_worker{false};
  pool.submit([&] {
    on_worker.store(pool.on_worker_thread());
    try {
      pool.wait_idle();
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(on_worker.load());
  EXPECT_TRUE(threw.load());
}

TEST(ThreadPool, ZeroWorkerPoolRunsGroupInlineInOrder) {
  ThreadPool pool(0);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  pool.run_and_wait(std::move(tasks));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, ThrowingGroupTaskStillSettlesTheJoin) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i % 2 == 0) throw std::runtime_error("boom");
    });
  }
  pool.run_and_wait(std::move(tasks));  // must return despite the throws
  EXPECT_EQ(ran.load(), 6);
  EXPECT_EQ(pool.task_exception_count(), 3u);
}

TEST(ThreadPool, ZeroWorkerGroupCountsExceptionsToo) {
  ThreadPool pool(0);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("inline boom"); });
  tasks.push_back([] {});
  pool.run_and_wait(std::move(tasks));
  EXPECT_EQ(pool.task_exception_count(), 1u);
}

}  // namespace
}  // namespace dimetrodon::runner
