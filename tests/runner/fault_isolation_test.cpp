// Fault-isolation contract tests: a thrown run must never kill a sweep.
// Covers the ThreadPool exception containment, the sweep engine's exception
// boundary (structured RunError capture, transient retry with deterministic
// backoff, failed runs never cached), the crash-safe cache-write protocol
// under injected IO errors and mid-protocol crashes, the strict cache
// parser, and the failpoint registry itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/fault_injection.hpp"
#include "runner/result_cache.hpp"
#include "runner/sweep_engine.hpp"
#include "runner/thread_pool.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon::runner {
namespace {

namespace fs = std::filesystem;

SweepEngineConfig quiet_config(std::size_t threads, std::string cache_dir) {
  SweepEngineConfig cfg;
  cfg.threads = threads;
  cfg.use_cache = !cache_dir.empty();
  cfg.cache_dir = std::move(cache_dir);
  cfg.progress = false;
  cfg.retry_backoff_ms = 1;  // keep retry tests fast
  return cfg;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dimetrodon_" + name);
  fs::remove_all(dir);
  return dir.string();
}

/// Cheap custom spec: returns a record tagged with its seed, or throws when
/// built with `boom` set.
RunSpec quick_spec(const std::string& tag, std::uint64_t seed,
                   const char* boom = nullptr) {
  RunSpec spec;
  spec.kind = RunSpec::Kind::kCustom;
  spec.custom_tag = tag;
  spec.seed = seed;
  const std::string what = boom == nullptr ? "" : boom;
  spec.custom = [what](const RunSpec& s, const sched::MachineConfig& cfg,
                       const RunContext&) {
    if (!what.empty()) throw std::runtime_error(what);
    RunRecord rec;
    rec.extra = {{"seed", static_cast<double>(s.seed)},
                 {"cfg_seed", static_cast<double>(cfg.seed)}};
    return rec;
  };
  return spec;
}

std::vector<RunSpec> quick_grid(std::size_t n) {
  std::vector<RunSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    specs.push_back(quick_spec("quick[" + std::to_string(i) + "]", 100 + i));
  }
  return specs;
}

std::size_t count_files_matching(const std::string& dir,
                                 const std::string& needle) {
  std::size_t n = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().find(needle) != std::string::npos) ++n;
  }
  return n;
}

/// Every fault-injection test disarms on both ends so a failed assertion in
/// one test can't leak armed rules into the next (the registry is
/// process-wide).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::FaultInjector::instance().disarm_all(); }
  void TearDown() override { fault::FaultInjector::instance().disarm_all(); }
};

// --- ThreadPool exception containment --------------------------------------

TEST(ThreadPoolFault, ThrowingTasksNeitherHangNorKill) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      pool.submit([] { throw std::runtime_error("task died"); });
    } else {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  pool.wait_idle();  // hangs forever if a throw loses pending accounting
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(pool.task_exception_count(), 50u);
}

TEST(ThreadPoolFault, NonStdExceptionIsContained) {
  ThreadPool pool(2);
  pool.submit([] { throw 42; });
  pool.wait_idle();
  EXPECT_EQ(pool.task_exception_count(), 1u);
}

TEST(ThreadPoolFault, InlineModeContainsThrows) {
  ThreadPool pool(0);
  int ran = 0;
  pool.submit([] { throw std::runtime_error("inline death"); });
  pool.submit([&ran] { ++ran; });  // pool must still be usable
  pool.wait_idle();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(pool.task_exception_count(), 1u);
}

TEST(ThreadPoolFault, PoolReusableAcrossThrowingRounds) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([] { throw std::runtime_error("round death"); });
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 10 * (round + 1));
  }
  EXPECT_EQ(pool.task_exception_count(), 30u);
}

// --- sweep engine exception boundary ---------------------------------------

TEST_F(FaultTest, SweepSurvivesThrowingRun) {
  auto specs = quick_grid(5);
  specs[2] = quick_spec("quick[2]", 102, "boom: probability out of range");
  SweepEngine engine(sched::MachineConfig{}, quiet_config(2, ""));

  const SweepResult sweep = engine.run(specs);
  ASSERT_EQ(sweep.size(), 5u);
  EXPECT_FALSE(sweep.all_ok());
  ASSERT_EQ(sweep.errors.size(), 1u);

  const RunError& e = sweep.errors[0];
  EXPECT_EQ(e.spec_index, 2u);
  EXPECT_EQ(e.spec_label, "quick[2]");
  EXPECT_EQ(e.what, "boom: probability out of range");
  EXPECT_EQ(e.key_hex, engine.key_for(specs[2]).hex());
  EXPECT_EQ(e.seed, 102u);
  EXPECT_FALSE(e.transient);
  EXPECT_EQ(e.attempts, 1u);  // deterministic failures are not retried

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].ok(), i != 2) << i;
    if (i != 2) {
      EXPECT_EQ(sweep[i].metric("seed"), 100.0 + i) << i;
    }
  }
  EXPECT_EQ(sweep.metrics.executed, 4u);
  EXPECT_EQ(sweep.metrics.failed, 1u);
  EXPECT_EQ(sweep.metrics.completed, 5u);
  EXPECT_EQ(sweep.metrics.in_flight, 0u);
  EXPECT_EQ(sweep.metrics.counters.runs_failed, 1u);
  ASSERT_EQ(sweep.metrics.errors.size(), 1u);
  EXPECT_EQ(sweep.metrics.errors[0].spec_index, 2u);
}

TEST_F(FaultTest, NonStdThrowIsCapturedAsRunError) {
  std::vector<RunSpec> specs = {quick_spec("unknown-throw", 7)};
  SweepEngine engine(sched::MachineConfig{}, quiet_config(1, ""));
  fault::FaultRule rule;
  rule.action = fault::Action::kThrowUnknown;
  fault::FaultInjector::instance().arm("run.execute", rule);

  const SweepResult sweep = engine.run(specs);
  ASSERT_EQ(sweep.errors.size(), 1u);
  EXPECT_EQ(sweep.errors[0].what, "(non-std exception)");
  EXPECT_FALSE(sweep.errors[0].transient);
  EXPECT_EQ(sweep.errors[0].attempts, 1u);
}

TEST_F(FaultTest, TransientFaultRetriedToSuccess) {
  std::vector<RunSpec> specs = {quick_spec("transient-recovers", 7)};
  SweepEngine engine(sched::MachineConfig{}, quiet_config(1, ""));
  // Fire on the first two arrivals; attempt 3 (within the default retry
  // limit of 2 extra attempts) succeeds.
  fault::FaultRule rule;
  rule.action = fault::Action::kThrowTransient;
  rule.count = 2;
  fault::FaultInjector::instance().arm("run.execute", rule);

  const SweepResult sweep = engine.run(specs);
  EXPECT_TRUE(sweep.all_ok());
  EXPECT_EQ(sweep.metrics.executed, 1u);
  EXPECT_EQ(sweep.metrics.failed, 0u);
  EXPECT_EQ(sweep.metrics.counters.runs_retried, 2u);
  EXPECT_EQ(sweep.metrics.counters.runs_failed, 0u);
  EXPECT_EQ(sweep[0].metric("seed"), 7.0);
}

TEST_F(FaultTest, TransientFaultExhaustsRetryBudget) {
  std::vector<RunSpec> specs = {quick_spec("transient-exhausts", 7)};
  SweepEngineConfig cfg = quiet_config(1, "");
  cfg.run_retry_limit = 2;
  SweepEngine engine(sched::MachineConfig{}, cfg);
  fault::FaultRule rule;
  rule.action = fault::Action::kThrowTransient;
  fault::FaultInjector::instance().arm("run.execute", rule);

  const SweepResult sweep = engine.run(specs);
  ASSERT_EQ(sweep.errors.size(), 1u);
  EXPECT_TRUE(sweep.errors[0].transient);
  EXPECT_EQ(sweep.errors[0].attempts, 3u);  // initial try + 2 retries
  EXPECT_EQ(sweep.metrics.counters.runs_retried, 2u);
  EXPECT_EQ(sweep.metrics.counters.runs_failed, 1u);
  EXPECT_GE(fault::FaultInjector::instance().hits("run.execute"), 3u);
}

// A degenerate thermal configuration — subnormal capacitances and near-zero
// conductances push every LU pivot below the singularity threshold — must
// surface as a phase-annotated RunError, not a dead sweep. This is the
// paper-reproduction failure mode the layer exists for: one bad grid point
// in a figure sweep.
TEST_F(FaultTest, SingularThermalConfigFailsOnlyItsOwnRun) {
  sched::MachineConfig degenerate;
  degenerate.start_at_idle_equilibrium = false;  // defer solve to the run
  degenerate.floorplan.die_capacitance = 1e-306;
  degenerate.floorplan.pkg_capacitance = 1e-306;
  degenerate.floorplan.hs_capacitance = 1e-306;
  degenerate.floorplan.die_to_pkg_resistance = 1e302;
  degenerate.floorplan.die_lateral_resistance = 1e302;
  degenerate.floorplan.pkg_to_hs_resistance = 1e302;
  degenerate.floorplan.hs_to_ambient_resistance = 1e302;

  harness::MeasurementConfig mc;
  mc.max_settle_iterations = 1;
  mc.settle_chunk = sim::from_sec(1);
  mc.post_settle_run = sim::from_ms(100);
  mc.measure_window = sim::from_sec(1);

  RunSpec bad;
  bad.workload_key = "cpuburn:2";
  bad.workload = [] { return std::make_unique<workload::CpuBurnFleet>(2); };
  bad.actuation = ActuationSpec::none();
  bad.measurement = mc;
  bad.seed = 0x5eed;
  bad.machine = degenerate;

  std::vector<RunSpec> specs = {quick_spec("healthy[0]", 1), bad,
                                quick_spec("healthy[1]", 2)};
  const std::string dir = fresh_dir("singular_config");
  SweepEngine engine(sched::MachineConfig{}, quiet_config(2, dir));

  const SweepResult sweep = engine.run(specs);
  ASSERT_EQ(sweep.errors.size(), 1u);
  EXPECT_EQ(sweep.errors[0].spec_index, 1u);
  EXPECT_EQ(sweep.errors[0].what, "settle: thermal step matrix is singular");
  EXPECT_FALSE(sweep.errors[0].transient);
  EXPECT_TRUE(sweep[0].ok());
  EXPECT_TRUE(sweep[2].ok());
  // The healthy points are cached; the singular one left no entry behind.
  ResultCache cache(dir, true);
  EXPECT_TRUE(fs::exists(cache.path_for(engine.key_for(specs[0]))));
  EXPECT_TRUE(fs::exists(cache.path_for(engine.key_for(specs[2]))));
  EXPECT_FALSE(fs::exists(cache.path_for(engine.key_for(bad))));
  fs::remove_all(dir);
}

// The acceptance flow: one grid point fails, the sweep finishes and records
// exactly one structured error (also in the metrics JSON), the failed spec
// has no cache entry; after the fault is fixed, a re-run recomputes only
// that point and a third run is served entirely from cache.
TEST_F(FaultTest, FailedPointRecoversAcrossReruns) {
  const auto specs = quick_grid(4);
  const std::string dir = fresh_dir("fail_fix_rerun");
  SweepEngineConfig cfg = quiet_config(2, dir);
  cfg.metrics_json_path = dir + "/sweep_metrics.json";
  SweepEngine engine(sched::MachineConfig{}, cfg);

  // Keyed rule: only the grid point whose cache key matches fails.
  const CacheKey bad_key = engine.key_for(specs[1]);
  fault::FaultRule rule;
  rule.action = fault::Action::kThrowLogic;
  rule.key = bad_key.hi;
  fault::FaultInjector::instance().arm("run.execute", rule);

  const SweepResult broken = engine.run(specs);
  ASSERT_EQ(broken.errors.size(), 1u);
  EXPECT_EQ(broken.errors[0].spec_index, 1u);
  EXPECT_EQ(broken.metrics.executed, 3u);
  EXPECT_EQ(broken.metrics.failed, 1u);
  ResultCache cache(dir, true);
  EXPECT_FALSE(fs::exists(cache.path_for(bad_key)));

  // The structured error landed in the sweep's metrics JSON.
  std::ifstream in(cfg.metrics_json_path);
  ASSERT_TRUE(in.good());
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"runs_failed\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"spec_index\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"spec_label\": \"quick[1]\""), std::string::npos);
  EXPECT_NE(json.find("\"key\": \"" + bad_key.hex() + "\""),
            std::string::npos);

  // "Fix the config": disarm, re-run. Only the failed point recomputes.
  fault::FaultInjector::instance().disarm_all();
  const SweepResult fixed = engine.run(specs);
  EXPECT_TRUE(fixed.all_ok());
  EXPECT_EQ(fixed.metrics.cache_hits, 3u);
  EXPECT_EQ(fixed.metrics.executed, 1u);

  const SweepResult warm = engine.run(specs);
  EXPECT_TRUE(warm.all_ok());
  EXPECT_EQ(warm.metrics.cache_hits, 4u);
  EXPECT_EQ(warm.metrics.executed, 0u);
  fs::remove_all(dir);
}

// --- crash-safe cache writes ------------------------------------------------

TEST_F(FaultTest, CacheWriteIoErrorIsRetried) {
  const auto specs = quick_grid(1);
  const std::string dir = fresh_dir("cache_write_retry");
  SweepEngine engine(sched::MachineConfig{}, quiet_config(1, dir));
  fault::FaultRule rule;
  rule.action = fault::Action::kIoError;
  rule.count = 1;  // first write attempt fails, the retry succeeds
  fault::FaultInjector::instance().arm("cache.write", rule);

  const SweepResult sweep = engine.run(specs);
  EXPECT_TRUE(sweep.all_ok());
  EXPECT_EQ(sweep.metrics.counters.cache_write_retries, 1u);
  EXPECT_TRUE(fs::exists(
      ResultCache(dir, true).path_for(engine.key_for(specs[0]))));

  fault::FaultInjector::instance().disarm_all();
  const SweepResult warm = engine.run(specs);
  EXPECT_EQ(warm.metrics.cache_hits, 1u);  // the retried entry is valid
  fs::remove_all(dir);
}

TEST_F(FaultTest, CacheWriteGivesUpAfterRetryBudget) {
  const auto specs = quick_grid(1);
  const std::string dir = fresh_dir("cache_write_giveup");
  SweepEngineConfig cfg = quiet_config(1, dir);
  cfg.cache_write_retry_limit = 2;
  SweepEngine engine(sched::MachineConfig{}, cfg);
  fault::FaultRule rule;
  rule.action = fault::Action::kIoError;
  fault::FaultInjector::instance().arm("cache.write", rule);

  // The run itself still succeeds: the cache is best-effort.
  const SweepResult sweep = engine.run(specs);
  EXPECT_TRUE(sweep.all_ok());
  EXPECT_EQ(sweep.metrics.counters.cache_write_retries, 2u);
  EXPECT_FALSE(fs::exists(
      ResultCache(dir, true).path_for(engine.key_for(specs[0]))));
  // The abandoned store cleaned up its temp file.
  EXPECT_EQ(count_files_matching(dir, ".tmp."), 0u);
  fs::remove_all(dir);
}

TEST_F(FaultTest, CrashBeforeRenameLeavesNoTornRecord) {
  const auto specs = quick_grid(1);
  const std::string dir = fresh_dir("cache_crash_rename");
  SweepEngine engine(sched::MachineConfig{}, quiet_config(1, dir));
  const std::string final_path =
      ResultCache(dir, true).path_for(engine.key_for(specs[0]));
  fault::FaultRule rule;
  rule.action = fault::Action::kCrash;
  rule.count = 1;
  fault::FaultInjector::instance().arm("cache.rename", rule);

  const SweepResult sweep = engine.run(specs);
  EXPECT_TRUE(sweep.all_ok());
  // Killed between tmp-write and rename: the final path never existed, only
  // the pid-suffixed temp file survives the "crash".
  EXPECT_FALSE(fs::exists(final_path));
  EXPECT_EQ(count_files_matching(dir, ".tmp."), 1u);

  // Post-"reboot" run: a clean miss, recomputed and stored atomically.
  fault::FaultInjector::instance().disarm_all();
  const SweepResult retry = engine.run(specs);
  EXPECT_TRUE(retry.all_ok());
  EXPECT_EQ(retry.metrics.executed, 1u);
  EXPECT_TRUE(fs::exists(final_path));
  const SweepResult warm = engine.run(specs);
  EXPECT_EQ(warm.metrics.cache_hits, 1u);
  fs::remove_all(dir);
}

// --- strict cache parser -----------------------------------------------------

RunRecord sample_record() {
  RunRecord rec;
  rec.result.label = "p=0.50 L=25ms";
  rec.result.avg_sensor_temp_c = 51.0625;
  rec.result.throughput = 0.875;
  workload::WebWorkload::QosStats qos;
  qos.good = 10;
  qos.total = 12;
  rec.result.qos = qos;
  rec.result.counters.injections = 42;
  rec.samples = {0.25, 0.5};
  rec.extra = {{"alpha", 1.5}};
  return rec;
}

TEST(ResultCacheParser, RejectsEveryNonBareDecimalInteger) {
  const std::string payload = ResultCache::serialize_record(sample_record());
  const std::string target = "qos.good 10\n";
  const auto pos = payload.find(target);
  ASSERT_NE(pos, std::string::npos);
  // Each tamper would parse under plain strtoull: negatives wrap to 2^64-1,
  // whitespace and '+' are skipped, "0x" switches radix, trailing junk is
  // silently ignored, and 21 digits overflow.
  const std::vector<std::string> bad = {
      "qos.good -1\n",         "qos.good  10\n",
      "qos.good +10\n",        "qos.good 0x10\n",
      "qos.good 10 \n",        "qos.good 10x\n",
      "qos.good \t10\n",       "qos.good 109999999999999999999\n",
      "qos.good \n",           "qos.good 1.0\n",
  };
  for (const std::string& line : bad) {
    std::string tampered = payload;
    tampered.replace(pos, target.size(), line);
    EXPECT_FALSE(ResultCache::parse_record(tampered).has_value())
        << "accepted: " << line;
  }
  // Sanity: the untampered payload round-trips.
  ASSERT_TRUE(ResultCache::parse_record(payload).has_value());
}

TEST(ResultCacheParser, TruncationAtEveryByteIsRejected) {
  const std::string payload = ResultCache::serialize_record(sample_record());
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(
        ResultCache::parse_record(payload.substr(0, cut)).has_value())
        << "cut=" << cut;
  }
  EXPECT_TRUE(ResultCache::parse_record(payload).has_value());
}

TEST(ResultCacheParser, TrailingJunkAfterTerminatorIsRejected) {
  const std::string payload = ResultCache::serialize_record(sample_record());
  EXPECT_FALSE(ResultCache::parse_record(payload + "x\n").has_value());
  EXPECT_FALSE(ResultCache::parse_record(payload + "\n").has_value());
}

// --- failpoint registry ------------------------------------------------------

TEST_F(FaultTest, SpecStringArmsRulesWithTriggerWindow) {
  auto& inj = fault::FaultInjector::instance();
  EXPECT_EQ(inj.arm_from_spec("run.execute=transient,after=1,count=2"), 1u);
  EXPECT_NO_THROW(fault::maybe_throw("run.execute"));  // after=1 skips one
  EXPECT_THROW(fault::maybe_throw("run.execute"), fault::TransientError);
  EXPECT_THROW(fault::maybe_throw("run.execute"), fault::TransientError);
  EXPECT_NO_THROW(fault::maybe_throw("run.execute"));  // count exhausted
  EXPECT_EQ(inj.hits("run.execute"), 4u);
}

TEST_F(FaultTest, SpecStringSupportsKeyedIoRules) {
  auto& inj = fault::FaultInjector::instance();
  EXPECT_EQ(inj.arm_from_spec("cache.write=io,key=12ab"), 1u);
  EXPECT_EQ(fault::io_fault("cache.write", 0x9999), std::nullopt);
  EXPECT_EQ(fault::io_fault("cache.write", 0x12ab), fault::Action::kIoError);
  EXPECT_EQ(fault::io_fault("cache.rename", 0x12ab), std::nullopt);
}

TEST_F(FaultTest, MalformedSpecRulesAreDropped) {
  auto& inj = fault::FaultInjector::instance();
  EXPECT_EQ(inj.arm_from_spec("nonsense"), 0u);
  EXPECT_EQ(inj.arm_from_spec("site=explode"), 0u);        // unknown action
  EXPECT_EQ(inj.arm_from_spec("=logic"), 0u);              // empty site
  EXPECT_EQ(inj.arm_from_spec("s=logic,after=xyz"), 0u);   // bad clause
  EXPECT_EQ(inj.arm_from_spec("a=logic;b=bogus;c=io"), 2u);
  EXPECT_NO_THROW(fault::maybe_throw("b"));
  EXPECT_THROW(fault::maybe_throw("a"), std::runtime_error);
}

TEST_F(FaultTest, UnarmedSitesAreFree) {
  fault::FaultInjector::instance().disarm_all();
  EXPECT_NO_THROW(fault::maybe_throw("run.execute"));
  EXPECT_EQ(fault::io_fault("cache.write"), std::nullopt);
}

}  // namespace
}  // namespace dimetrodon::runner
