#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/json.hpp"

namespace dimetrodon::obs {
namespace {

TraceEvent make(EventKind kind, sim::SimTime at, std::uint16_t core,
                std::uint32_t tid = 0xffffffff, std::uint64_t arg = 0,
                double value = 0.0) {
  TraceEvent e;
  e.at = at;
  e.kind = kind;
  e.core = core;
  e.tid = tid;
  e.arg = arg;
  e.value = value;
  return e;
}

TEST(InjectedIdleSpans, PairsBeginEndPerCore) {
  std::vector<TraceEvent> events = {
      make(EventKind::kInjectionBegin, 100, 0, 7, 100),
      make(EventKind::kInjectionBegin, 150, 1, 9, 150),
      make(EventKind::kInjectionEnd, 200, 0, 7, 100),
      make(EventKind::kInjectionEnd, 300, 1, 9, 150),
  };
  const auto spans = injected_idle_spans(events);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].core, 0u);
  EXPECT_EQ(spans[0].begin, 100);
  EXPECT_EQ(spans[0].end, 200);
  EXPECT_EQ(spans[1].core, 1u);
  EXPECT_EQ(spans[1].tid, 9u);
  EXPECT_EQ(summed_injection_ns(spans), 250u);
}

TEST(InjectedIdleSpans, RecoversEndWhoseBeginWasOverwritten) {
  // Ring overwrote the Begin: the End carries the actual duration in arg.
  std::vector<TraceEvent> events = {
      make(EventKind::kInjectionEnd, 500, 0, 3, 50),
  };
  const auto spans = injected_idle_spans(events);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 450);
  EXPECT_EQ(spans[0].end, 500);
  EXPECT_EQ(summed_injection_ns(spans), 50u);
}

TEST(InjectedIdleSpans, HandlesOverlappingInjectionsOnOneCore) {
  // Suspension semantics: victim 1 is descheduled, the replacement thread 2
  // is injected on the same core before victim 1's quantum expires. The two
  // pending injections share a core but not a victim.
  std::vector<TraceEvent> events = {
      make(EventKind::kInjectionBegin, 0, 0, 1, 1000),
      make(EventKind::kInjectionBegin, 400, 0, 2, 1000),
      make(EventKind::kInjectionEnd, 1000, 0, 1, 1000),
      make(EventKind::kInjectionEnd, 1400, 0, 2, 1000),
  };
  const auto spans = injected_idle_spans(events);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].tid, 1u);
  EXPECT_EQ(spans[0].begin, 0);
  EXPECT_EQ(spans[0].end, 1000);
  EXPECT_EQ(spans[1].tid, 2u);
  EXPECT_EQ(spans[1].begin, 400);
  EXPECT_EQ(summed_injection_ns(spans), 2000u);
}

TEST(InjectedIdleSpans, SkipsUnclosedBegin) {
  // Trace stopped mid-quantum: no End ever accrued in the counter registry,
  // so the span must not count either.
  std::vector<TraceEvent> events = {
      make(EventKind::kInjectionBegin, 100, 0, 3, 1000),
      make(EventKind::kInjectionEnd, 200, 0, 3, 100),
      make(EventKind::kInjectionBegin, 600, 0, 3, 1000),
  };
  const auto spans = injected_idle_spans(events);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(summed_injection_ns(spans), 100u);
}

TEST(ChromeTraceExporter, EmitsValidJsonWithTracks) {
  TraceMeta meta;
  meta.process_name = "unit \"quoted\" \\ name";  // must be escaped
  meta.pid = 1;
  meta.num_cores = 2;
  meta.thread_names = {"burn-0", "burn-1"};

  std::vector<TraceEvent> events = {
      make(EventKind::kSchedSwitch, 0, 0, 0),
      make(EventKind::kCStateChange, 1000, 1, 0xffffffff, 2),  // enter C1E
      make(EventKind::kInjectionBegin, 2000, 0, 1, 500),
      make(EventKind::kInjectionEnd, 2500, 0, 1, 500),
      make(EventKind::kDvfsChange, 3000, 0, 0xffffffff, 2, 2.13),
      make(EventKind::kProchotThrottle, 4000, 0, 0xffffffff, 1, 86.5),
      make(EventKind::kSensorSample, 5000, 0, 0xffffffff, 0, 61.0),
      make(EventKind::kMeterSample, 6000, 0, 0xffffffff, 0, 154.2),
      make(EventKind::kRequestComplete, 7000, 0, 42, 0, 0.0031),
  };
  events[1].phase = 0;  // kEnterBegin

  ChromeTraceExporter exporter;
  exporter.add_machine(meta, events);
  const std::string json = exporter.to_string();

  const auto parsed = json::validate(json);
  EXPECT_TRUE(parsed.ok) << parsed.error << " at byte " << parsed.error_pos;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("injected idle"), std::string::npos);
  EXPECT_NE(json.find("burn-1"), std::string::npos);
}

TEST(ChromeTraceExporter, EmptyTraceIsStillValid) {
  ChromeTraceExporter exporter;
  const auto parsed = json::validate(exporter.to_string());
  EXPECT_TRUE(parsed.ok) << parsed.error;
}

TEST(CsvExport, HeaderAndOneLinePerEvent) {
  std::vector<TraceEvent> events = {
      make(EventKind::kSchedSwitch, 10, 0, 5),
      make(EventKind::kMeterSample, 20, 0, 0xffffffff, 0, 100.5),
  };
  std::ostringstream out;
  write_csv(out, events);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("time_ns,kind,phase,core,tid,arg,value\n", 0), 0u);
  std::size_t lines = 0;
  for (char c : csv) lines += (c == '\n');
  EXPECT_EQ(lines, 3u);  // header + 2 events
  EXPECT_NE(csv.find("sched_switch"), std::string::npos);
  EXPECT_NE(csv.find("meter_sample"), std::string::npos);
}

TEST(JsonValidator, AcceptsRfc8259Documents) {
  EXPECT_TRUE(json::validate("{}").ok);
  EXPECT_TRUE(json::validate("[1, 2.5, -3e4, \"x\\n\\u0041\", true, null]").ok);
  EXPECT_TRUE(json::validate("{\"a\": {\"b\": []}}").ok);
}

TEST(JsonValidator, RejectsMalformedDocuments) {
  EXPECT_FALSE(json::validate("").ok);
  EXPECT_FALSE(json::validate("{\"a\": 1,}").ok);   // trailing comma
  EXPECT_FALSE(json::validate("[1 2]").ok);          // missing comma
  EXPECT_FALSE(json::validate("{'a': 1}").ok);       // single quotes
  EXPECT_FALSE(json::validate("\"unterminated").ok);
  EXPECT_FALSE(json::validate("[1] trailing").ok);
  EXPECT_FALSE(json::validate("[NaN]").ok);          // not JSON
}

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  const std::string escaped = json::escape("a\"b\\c\nd\te");
  EXPECT_EQ(escaped, "a\\\"b\\\\c\\nd\\te");
  std::string doc = "\"";
  doc += json::escape(std::string("\x01 ok"));
  doc += "\"";
  EXPECT_TRUE(json::validate(doc).ok);
}

}  // namespace
}  // namespace dimetrodon::obs
