#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

namespace dimetrodon::obs {
namespace {

TraceEvent at(sim::SimTime t) {
  TraceEvent e;
  e.at = t;
  return e;
}

TEST(RingBufferSink, StoresUpToCapacityInOrder) {
  RingBufferSink sink(4);
  for (int i = 0; i < 3; ++i) sink.on_event(at(i));
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink.total_events(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(events[i].at, i);
}

TEST(RingBufferSink, OverwritesOldestWhenFull) {
  RingBufferSink sink(4);
  for (int i = 0; i < 10; ++i) sink.on_event(at(i));
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_events(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: the last four offered survive.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].at, 6 + i);
}

TEST(RingBufferSink, ClearResetsEverything) {
  RingBufferSink sink(2);
  for (int i = 0; i < 5; ++i) sink.on_event(at(i));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.total_events(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_TRUE(sink.snapshot().empty());
}

TEST(RingBufferSink, ZeroCapacityIsClampedToOne) {
  RingBufferSink sink(0);
  EXPECT_EQ(sink.capacity(), 1u);
  sink.on_event(at(7));
  sink.on_event(at(8));
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at, 8);
}

TEST(TraceEvent, StaysRingFriendly) {
  EXPECT_EQ(sizeof(TraceEvent), 32u);
  EXPECT_TRUE(std::is_trivially_copyable_v<TraceEvent>);
}

}  // namespace
}  // namespace dimetrodon::obs
