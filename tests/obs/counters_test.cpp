#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"

namespace dimetrodon::obs {
namespace {

TEST(CounterTotals, FieldTableCoversArithmetic) {
  CounterTotals a;
  a.dispatches = 10;
  a.injections = 3;
  a.injected_idle_ns = 1000;
  CounterTotals b;
  b.dispatches = 4;
  b.injections = 1;
  b.injected_idle_ns = 250;
  b.requests_completed = 2;

  CounterTotals sum = a;
  sum += b;
  EXPECT_EQ(sum.dispatches, 14u);
  EXPECT_EQ(sum.injections, 4u);
  EXPECT_EQ(sum.injected_idle_ns, 1250u);
  EXPECT_EQ(sum.requests_completed, 2u);

  const CounterTotals delta = sum - b;
  EXPECT_TRUE(delta == a);
}

TEST(CounterRegistry, TotalsSumPerCoreAndGlobals) {
  CounterRegistry reg;
  reg.resize(3);
  reg.core(0).dispatches = 5;
  reg.core(1).dispatches = 7;
  reg.core(2).injected_idle_ns = 42;
  reg.core(0).c1e_residency_ns = 11;
  reg.prochot_activations = 2;
  reg.meter_samples = 9;

  const CounterTotals t = reg.totals();
  EXPECT_EQ(t.dispatches, 12u);
  EXPECT_EQ(t.injected_idle_ns, 42u);
  EXPECT_EQ(t.c1e_residency_ns, 11u);
  EXPECT_EQ(t.prochot_activations, 2u);
  EXPECT_EQ(t.meter_samples, 9u);
}

TEST(CounterRegistry, ResizeClears) {
  CounterRegistry reg;
  reg.resize(2);
  reg.core(1).injections = 8;
  reg.resize(2);
  EXPECT_EQ(reg.core(1).injections, 0u);
}

TEST(CounterTotals, JsonRenderingIsValidAndComplete) {
  CounterTotals t;
  t.dispatches = 123;
  t.sensor_samples = 456;
  const std::string json = totals_to_json(t, 0);
  const auto parsed = json::validate(json);
  EXPECT_TRUE(parsed.ok) << parsed.error;
  // Every field must appear by name.
  for (const auto& [name, member] : CounterTotals::fields()) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }
  EXPECT_NE(json.find("\"dispatches\": 123"), std::string::npos);
}

}  // namespace
}  // namespace dimetrodon::obs
