// Integration of the obs subsystem with the simulated machine: the zero-sink
// fast path must not change simulated behavior, counters must agree with the
// machine's own per-core statistics, and exported injected-idle spans must
// sum to the counter registry's injected-idle nanoseconds exactly.
#include <gtest/gtest.h>

#include <memory>

#include "core/controller.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "sched/machine.hpp"
#include "workload/cpuburn.hpp"

namespace dimetrodon {
namespace {

constexpr sim::SimTime kWindow = sim::from_ms(500);

sched::MachineConfig traced_config(std::shared_ptr<obs::RingBufferSink> sink) {
  sched::MachineConfig cfg;
  cfg.enable_meter = true;
  if (sink) cfg.trace_sink_factory = [sink]() { return sink; };
  return cfg;
}

void run_injected(sched::Machine& machine, double p, sim::SimTime quantum) {
  core::DimetrodonController ctl(machine);
  ctl.sys_set_global(p, quantum);
  workload::CpuBurnFleet fleet(4);
  fleet.deploy(machine);
  machine.run_for(kWindow);
}

TEST(MachineTrace, SpanSumEqualsRegistryExactlySuspensionSemantics) {
  auto sink = std::make_shared<obs::RingBufferSink>();
  sched::Machine machine(traced_config(sink));
  run_injected(machine, 0.6, sim::from_ms(5));

  ASSERT_EQ(sink->dropped(), 0u) << "ring too small for exact span check";
  const obs::CounterTotals totals = machine.counters().totals();
  ASSERT_GT(totals.injections, 0u);
  const auto spans = obs::injected_idle_spans(sink->snapshot());
  EXPECT_EQ(obs::summed_injection_ns(spans), totals.injected_idle_ns);
}

TEST(MachineTrace, SpanSumEqualsRegistryExactlyPinnedSemantics) {
  auto sink = std::make_shared<obs::RingBufferSink>();
  sched::MachineConfig cfg = traced_config(sink);
  cfg.injection_suspends_thread = false;  // literal §3.1 idle-thread pinning
  sched::Machine machine(cfg);
  run_injected(machine, 0.6, sim::from_ms(5));

  ASSERT_EQ(sink->dropped(), 0u);
  const obs::CounterTotals totals = machine.counters().totals();
  ASSERT_GT(totals.injections, 0u);
  const auto spans = obs::injected_idle_spans(sink->snapshot());
  EXPECT_EQ(obs::summed_injection_ns(spans), totals.injected_idle_ns);
}

TEST(MachineTrace, CountersAgreeWithMachineCoreStatistics) {
  auto sink = std::make_shared<obs::RingBufferSink>();
  sched::Machine machine(traced_config(sink));
  run_injected(machine, 0.5, sim::from_ms(10));

  std::uint64_t dispatches = 0, switches = 0, injections = 0;
  for (std::size_t i = 0; i < machine.num_cores(); ++i) {
    const auto& core = machine.core(static_cast<sched::CoreId>(i));
    dispatches += core.dispatches;
    switches += core.context_switches;
    injections += core.injections;
    const auto& cc = machine.counters().core(i);
    EXPECT_EQ(cc.dispatches, core.dispatches) << "core " << i;
    EXPECT_EQ(cc.injections, core.injections) << "core " << i;
  }
  const obs::CounterTotals totals = machine.counters().totals();
  EXPECT_EQ(totals.dispatches, dispatches);
  EXPECT_EQ(totals.context_switches, switches);
  EXPECT_EQ(totals.injections, injections);
  EXPECT_GT(totals.cstate_entries, 0u);
  EXPECT_GT(totals.c1e_residency_ns, 0u);
  EXPECT_GE(totals.idle_ns, totals.c1e_residency_ns);
  EXPECT_GT(totals.meter_samples, 0u);
  EXPECT_GT(totals.sensor_samples, 0u);
}

TEST(MachineTrace, ZeroSinkFastPathDoesNotPerturbSimulation) {
  sched::Machine traced(traced_config(std::make_shared<obs::RingBufferSink>()));
  sched::Machine plain(traced_config(nullptr));
  run_injected(traced, 0.6, sim::from_ms(5));
  run_injected(plain, 0.6, sim::from_ms(5));

  EXPECT_TRUE(traced.tracer().active());
  EXPECT_FALSE(plain.tracer().active());

  // Simulated physics and scheduling must be bit-identical.
  EXPECT_EQ(traced.now(), plain.now());
  EXPECT_EQ(traced.mean_sensor_temp(), plain.mean_sensor_temp());
  EXPECT_EQ(traced.energy().total_joules(), plain.energy().total_joules());
  for (std::size_t i = 0; i < traced.num_cores(); ++i) {
    const auto& a = traced.core(static_cast<sched::CoreId>(i));
    const auto& b = plain.core(static_cast<sched::CoreId>(i));
    EXPECT_EQ(a.busy_seconds, b.busy_seconds) << "core " << i;
    EXPECT_EQ(a.injected_idle_seconds, b.injected_idle_seconds) << "core " << i;
    EXPECT_EQ(a.dispatches, b.dispatches) << "core " << i;
    EXPECT_EQ(a.injections, b.injections) << "core " << i;
  }

  // Counters accrue identically either way, except the trace-time sensor
  // sampler, which by design runs only when a sink is attached.
  obs::CounterTotals with_sink = traced.counters().totals();
  obs::CounterTotals without = plain.counters().totals();
  EXPECT_GT(with_sink.sensor_samples, 0u);
  EXPECT_EQ(without.sensor_samples, 0u);
  with_sink.sensor_samples = 0;
  EXPECT_TRUE(with_sink == without);
}

TEST(MachineTrace, ExportedMachineTraceIsValidChromeJson) {
  auto sink = std::make_shared<obs::RingBufferSink>();
  sched::Machine machine(traced_config(sink));
  run_injected(machine, 0.5, sim::from_ms(10));

  obs::TraceMeta meta;
  meta.process_name = "obs-test";
  meta.pid = 1;
  meta.num_cores = machine.num_cores();
  for (std::size_t i = 0; i < machine.thread_count(); ++i) {
    meta.thread_names.push_back(
        machine.thread(static_cast<sched::ThreadId>(i)).name());
  }
  obs::ChromeTraceExporter exporter;
  exporter.add_machine(meta, sink->snapshot());
  const auto parsed = obs::json::validate(exporter.to_string());
  EXPECT_TRUE(parsed.ok) << parsed.error << " at byte " << parsed.error_pos;
  EXPECT_GT(parsed.values, 100u);  // a real trace, not an empty shell
}

}  // namespace
}  // namespace dimetrodon
