#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include "workload/cpuburn.hpp"

namespace dimetrodon::harness {
namespace {

ExperimentRunner make_runner() {
  sched::MachineConfig cfg;
  MeasurementConfig mc;
  mc.measure_window = sim::from_sec(10);  // shorter for unit tests
  return ExperimentRunner(cfg, mc);
}

ExperimentRunner::WorkloadFactory cpuburn4() {
  return [] { return std::make_unique<workload::CpuBurnFleet>(4); };
}

TEST(ExperimentTest, BaselineRunIsHotAndFast) {
  auto runner = make_runner();
  const RunResult r = runner.measure(cpuburn4(), actuation::none());
  EXPECT_GT(r.avg_sensor_temp_c, r.idle_sensor_temp_c + 20.0);
  EXPECT_NEAR(r.throughput, 4.0, 0.05);
  EXPECT_GT(r.avg_power_w, 60.0);
  EXPECT_DOUBLE_EQ(r.injected_idle_fraction, 0.0);
  EXPECT_FALSE(r.qos.has_value());
  EXPECT_EQ(r.counters.injections, 0u);
  EXPECT_GT(r.counters.dispatches, 0u);
  EXPECT_EQ(r.counters.sensor_samples, 0u);  // no sink, no trace sampler
}

TEST(ExperimentTest, DimetrodonRunCoolerAndSlower) {
  auto runner = make_runner();
  const RunResult base = runner.measure(cpuburn4(), actuation::none());
  const RunResult dim =
      runner.measure(cpuburn4(), actuation::dimetrodon(0.5, sim::from_ms(25)));
  EXPECT_LT(dim.avg_sensor_temp_c, base.avg_sensor_temp_c - 3.0);
  EXPECT_LT(dim.throughput, base.throughput * 0.9);
  EXPECT_GT(dim.injected_idle_fraction, 0.1);

  const Tradeoff t = compute_tradeoff(base, dim);
  EXPECT_GT(t.temp_reduction, 0.1);
  EXPECT_GT(t.throughput_reduction, 0.1);
  EXPECT_GT(t.efficiency, 1.0);
}

TEST(ExperimentTest, TradeoffOfBaselineAgainstItselfIsZero) {
  auto runner = make_runner();
  const RunResult base = runner.measure(cpuburn4(), actuation::none());
  const Tradeoff t = compute_tradeoff(base, base);
  EXPECT_DOUBLE_EQ(t.temp_reduction, 0.0);
  EXPECT_DOUBLE_EQ(t.throughput_reduction, 0.0);
}

TEST(ExperimentTest, VfsActuationSlowsByFrequencyRatio) {
  auto runner = make_runner();
  const RunResult base = runner.measure(cpuburn4(), actuation::none());
  const RunResult vfs = runner.measure(cpuburn4(), actuation::vfs(5));
  const Tradeoff t = compute_tradeoff(base, vfs);
  EXPECT_NEAR(t.throughput_retained, 1.596 / 2.261, 0.01);
}

TEST(ExperimentTest, RunsAreReproducible) {
  auto runner = make_runner();
  const RunResult a =
      runner.measure(cpuburn4(), actuation::dimetrodon(0.25, sim::from_ms(10)));
  const RunResult b =
      runner.measure(cpuburn4(), actuation::dimetrodon(0.25, sim::from_ms(10)));
  EXPECT_DOUBLE_EQ(a.avg_sensor_temp_c, b.avg_sensor_temp_c);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

TEST(ExperimentTest, PostDeployHookSeesThreads) {
  auto runner = make_runner();
  bool called = false;
  runner.measure(
      cpuburn4(), actuation::dimetrodon(0.5, sim::from_ms(10)),
      [&](sched::Machine& m, workload::Workload& wl,
          core::DimetrodonController* ctl) {
        called = true;
        EXPECT_EQ(wl.threads().size(), 4u);
        ASSERT_NE(ctl, nullptr);
        ctl->sys_shield_thread(wl.threads()[0]);
        (void)m;
      });
  EXPECT_TRUE(called);
}

TEST(ExperimentTest, RunToCompletionReportsTime) {
  auto runner = make_runner();
  const auto burn = [] {
    return std::make_unique<workload::CpuBurnFleet>(4, 2.0);
  };
  const WindowResult r =
      runner.run_to_completion(burn, actuation::none(), sim::from_sec(30));
  EXPECT_NEAR(r.completion_seconds, 2.0, 0.05);
  EXPECT_GT(r.meter_energy_j, 0.0);
  EXPECT_NEAR(r.meter_energy_j, r.true_energy_j, 0.12 * r.true_energy_j);
}

TEST(ExperimentTest, RunToCompletionDeadlineMiss) {
  auto runner = make_runner();
  const auto burn = [] {
    return std::make_unique<workload::CpuBurnFleet>(4, 50.0);
  };
  const WindowResult r =
      runner.run_to_completion(burn, actuation::none(), sim::from_sec(1));
  EXPECT_LT(r.completion_seconds, 0.0);
  EXPECT_NEAR(r.wall_seconds, 1.0, 1e-9);
}

TEST(ExperimentTest, RunWindowTracksCompletionInsideWindow) {
  auto runner = make_runner();
  const auto burn = [] {
    return std::make_unique<workload::CpuBurnFleet>(4, 1.0);
  };
  const WindowResult r =
      runner.run_window(burn, actuation::none(), sim::from_sec(5));
  EXPECT_NEAR(r.completion_seconds, 1.0, 0.05);
  EXPECT_NEAR(r.wall_seconds, 5.0, 1e-9);
}

TEST(ExperimentTest, WithConfigAppliesMutation) {
  auto runner = make_runner();
  runner.with_config([](sched::MachineConfig& c) { c.num_cores = 2; })
      .with_config([](sched::MachineConfig& c) { c.seed = 99; });
  EXPECT_EQ(runner.base_config().num_cores, 2u);
  EXPECT_EQ(runner.base_config().seed, 99u);
}

TEST(ExperimentTest, CountersCrossCheckInjectedIdleFraction) {
  auto runner = make_runner();
  const RunResult dim =
      runner.measure(cpuburn4(), actuation::dimetrodon(0.5, sim::from_ms(25)));
  EXPECT_GT(dim.counters.injections, 0u);
  // The registry accrues the same per-quantum durations the harness sums into
  // injected_idle_fraction, sampled at the same window boundaries.
  const double frac_from_counters =
      static_cast<double>(dim.counters.injected_idle_ns) / 1e9 /
      (sim::to_sec(runner.measurement_config().measure_window) * 4.0);
  EXPECT_NEAR(frac_from_counters, dim.injected_idle_fraction, 1e-9);
}

// Fast measurement schedule for the warm-start tests: one run is a few tens
// of milliseconds of wall time.
ExperimentRunner warm_runner() {
  sched::MachineConfig cfg;
  MeasurementConfig mc;
  mc.max_settle_iterations = 2;
  mc.settle_chunk = sim::from_sec(3);
  mc.post_settle_run = sim::from_sec(1);
  mc.measure_window = sim::from_sec(5);
  return ExperimentRunner(cfg, mc);
}

void expect_results_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.avg_sensor_temp_c, b.avg_sensor_temp_c);
  EXPECT_EQ(a.avg_exact_temp_c, b.avg_exact_temp_c);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.injected_idle_fraction, b.injected_idle_fraction);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
}

TEST(ExperimentTest, WarmForkMatchesInlineWarmupBitIdentical) {
  // The warm-start contract: forking from a cached warmup snapshot produces
  // the SAME bits as re-simulating the warmup inline — across different
  // actuations sharing the one prefix.
  auto runner = warm_runner();
  const auto warmup = sim::from_sec(90);
  const sched::MachineSnapshot snap =
      runner.build_warmup_snapshot(cpuburn4(), warmup);
  for (const double p : {0.2, 0.6}) {
    const auto act = actuation::dimetrodon(p, sim::from_ms(100));
    const RunResult warm = runner.measure_warm(cpuburn4(), act, snap);
    const RunResult replay = runner.measure_after_warmup(cpuburn4(), act,
                                                         warmup);
    expect_results_bit_identical(warm, replay);
  }
}

TEST(ExperimentTest, WarmupChangesTheMeasuredOperatingPoint) {
  // Sanity that warmup is not a no-op: a warmed machine starts its settle
  // loop hot, so the measured run differs from the cold methodology (which
  // starts at idle equilibrium but settles first — throughput should agree
  // closely, temperatures may differ slightly, but the runs are distinct
  // simulations).
  auto runner = warm_runner();
  const RunResult cold = runner.measure(cpuburn4(), actuation::none());
  const RunResult warm = runner.measure_after_warmup(
      cpuburn4(), actuation::none(), sim::from_sec(60));
  EXPECT_GT(warm.avg_exact_temp_c, cold.idle_exact_temp_c);
  EXPECT_NEAR(warm.throughput, cold.throughput, 0.1 * cold.throughput);
}

TEST(ExperimentTest, LabelsPropagate) {
  EXPECT_EQ(actuation::dimetrodon(0.25, sim::from_ms(50)).label,
            "dimetrodon[p=0.25,L=50ms]");
  EXPECT_EQ(actuation::vfs(2).label, "vfs[level=2]");
  EXPECT_EQ(actuation::none().label, "race-to-idle");
}

}  // namespace
}  // namespace dimetrodon::harness
