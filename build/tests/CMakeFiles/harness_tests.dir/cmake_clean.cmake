file(REMOVE_RECURSE
  "CMakeFiles/harness_tests.dir/harness/experiment_test.cpp.o"
  "CMakeFiles/harness_tests.dir/harness/experiment_test.cpp.o.d"
  "harness_tests"
  "harness_tests.pdb"
  "harness_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
