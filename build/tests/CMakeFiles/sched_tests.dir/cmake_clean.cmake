file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/machine_edge_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/machine_edge_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/machine_injection_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/machine_injection_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/machine_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/machine_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/runqueue_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/runqueue_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/scheduler_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/smt_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/smt_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/thermal_monitor_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/thermal_monitor_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/ule_scheduler_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/ule_scheduler_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
