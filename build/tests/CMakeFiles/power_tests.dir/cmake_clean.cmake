file(REMOVE_RECURSE
  "CMakeFiles/power_tests.dir/power/clock_modulation_test.cpp.o"
  "CMakeFiles/power_tests.dir/power/clock_modulation_test.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/cstate_test.cpp.o"
  "CMakeFiles/power_tests.dir/power/cstate_test.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/dvfs_test.cpp.o"
  "CMakeFiles/power_tests.dir/power/dvfs_test.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/energy_test.cpp.o"
  "CMakeFiles/power_tests.dir/power/energy_test.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/meter_test.cpp.o"
  "CMakeFiles/power_tests.dir/power/meter_test.cpp.o.d"
  "CMakeFiles/power_tests.dir/power/power_model_test.cpp.o"
  "CMakeFiles/power_tests.dir/power/power_model_test.cpp.o.d"
  "power_tests"
  "power_tests.pdb"
  "power_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
