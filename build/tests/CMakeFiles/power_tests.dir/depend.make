# Empty dependencies file for power_tests.
# This may be replaced when dependencies are built.
