file(REMOVE_RECURSE
  "CMakeFiles/policy_tests.dir/policy/migration_test.cpp.o"
  "CMakeFiles/policy_tests.dir/policy/migration_test.cpp.o.d"
  "CMakeFiles/policy_tests.dir/policy/thermal_policy_test.cpp.o"
  "CMakeFiles/policy_tests.dir/policy/thermal_policy_test.cpp.o.d"
  "policy_tests"
  "policy_tests.pdb"
  "policy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
