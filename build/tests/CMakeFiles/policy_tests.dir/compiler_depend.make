# Empty compiler generated dependencies file for policy_tests.
# This may be replaced when dependencies are built.
