file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/adaptive_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/adaptive_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/analytic_model_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/analytic_model_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/controller_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/controller_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/injection_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/injection_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/policy_table_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/policy_table_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/power_cap_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/power_cap_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
