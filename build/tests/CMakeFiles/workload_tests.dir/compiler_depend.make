# Empty compiler generated dependencies file for workload_tests.
# This may be replaced when dependencies are built.
