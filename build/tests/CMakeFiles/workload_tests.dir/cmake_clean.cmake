file(REMOVE_RECURSE
  "CMakeFiles/workload_tests.dir/workload/cool_process_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/cool_process_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/cpuburn_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/cpuburn_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/membound_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/membound_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/spec_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/spec_test.cpp.o.d"
  "CMakeFiles/workload_tests.dir/workload/web_test.cpp.o"
  "CMakeFiles/workload_tests.dir/workload/web_test.cpp.o.d"
  "workload_tests"
  "workload_tests.pdb"
  "workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
