# Empty compiler generated dependencies file for analysis_tests.
# This may be replaced when dependencies are built.
