file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/bootstrap_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/bootstrap_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/fit_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/fit_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/pareto_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/pareto_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/stats_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/stats_test.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
