file(REMOVE_RECURSE
  "CMakeFiles/thermal_tests.dir/thermal/floorplan_test.cpp.o"
  "CMakeFiles/thermal_tests.dir/thermal/floorplan_test.cpp.o.d"
  "CMakeFiles/thermal_tests.dir/thermal/linalg_test.cpp.o"
  "CMakeFiles/thermal_tests.dir/thermal/linalg_test.cpp.o.d"
  "CMakeFiles/thermal_tests.dir/thermal/rc_network_test.cpp.o"
  "CMakeFiles/thermal_tests.dir/thermal/rc_network_test.cpp.o.d"
  "CMakeFiles/thermal_tests.dir/thermal/sensor_test.cpp.o"
  "CMakeFiles/thermal_tests.dir/thermal/sensor_test.cpp.o.d"
  "thermal_tests"
  "thermal_tests.pdb"
  "thermal_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
