# Empty dependencies file for thermal_tests.
# This may be replaced when dependencies are built.
