file(REMOVE_RECURSE
  "CMakeFiles/web_server_qos.dir/web_server_qos.cpp.o"
  "CMakeFiles/web_server_qos.dir/web_server_qos.cpp.o.d"
  "web_server_qos"
  "web_server_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_server_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
