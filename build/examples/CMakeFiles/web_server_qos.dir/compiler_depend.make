# Empty compiler generated dependencies file for web_server_qos.
# This may be replaced when dependencies are built.
