# Empty compiler generated dependencies file for adaptive_thermal_cap.
# This may be replaced when dependencies are built.
