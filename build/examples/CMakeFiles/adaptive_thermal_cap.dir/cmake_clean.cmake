file(REMOVE_RECURSE
  "CMakeFiles/adaptive_thermal_cap.dir/adaptive_thermal_cap.cpp.o"
  "CMakeFiles/adaptive_thermal_cap.dir/adaptive_thermal_cap.cpp.o.d"
  "adaptive_thermal_cap"
  "adaptive_thermal_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_thermal_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
