# Empty dependencies file for smt_coscheduling.
# This may be replaced when dependencies are built.
