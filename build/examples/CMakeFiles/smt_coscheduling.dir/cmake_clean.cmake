file(REMOVE_RECURSE
  "CMakeFiles/smt_coscheduling.dir/smt_coscheduling.cpp.o"
  "CMakeFiles/smt_coscheduling.dir/smt_coscheduling.cpp.o.d"
  "smt_coscheduling"
  "smt_coscheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_coscheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
