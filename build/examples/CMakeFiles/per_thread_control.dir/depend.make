# Empty dependencies file for per_thread_control.
# This may be replaced when dependencies are built.
