file(REMOVE_RECURSE
  "CMakeFiles/per_thread_control.dir/per_thread_control.cpp.o"
  "CMakeFiles/per_thread_control.dir/per_thread_control.cpp.o.d"
  "per_thread_control"
  "per_thread_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_thread_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
