# Empty compiler generated dependencies file for dimetrodon_thermal.
# This may be replaced when dependencies are built.
