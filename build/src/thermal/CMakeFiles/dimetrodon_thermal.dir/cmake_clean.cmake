file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_thermal.dir/floorplan.cpp.o"
  "CMakeFiles/dimetrodon_thermal.dir/floorplan.cpp.o.d"
  "CMakeFiles/dimetrodon_thermal.dir/linalg.cpp.o"
  "CMakeFiles/dimetrodon_thermal.dir/linalg.cpp.o.d"
  "CMakeFiles/dimetrodon_thermal.dir/rc_network.cpp.o"
  "CMakeFiles/dimetrodon_thermal.dir/rc_network.cpp.o.d"
  "libdimetrodon_thermal.a"
  "libdimetrodon_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
