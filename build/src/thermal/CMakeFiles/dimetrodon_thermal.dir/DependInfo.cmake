
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/floorplan.cpp" "src/thermal/CMakeFiles/dimetrodon_thermal.dir/floorplan.cpp.o" "gcc" "src/thermal/CMakeFiles/dimetrodon_thermal.dir/floorplan.cpp.o.d"
  "/root/repo/src/thermal/linalg.cpp" "src/thermal/CMakeFiles/dimetrodon_thermal.dir/linalg.cpp.o" "gcc" "src/thermal/CMakeFiles/dimetrodon_thermal.dir/linalg.cpp.o.d"
  "/root/repo/src/thermal/rc_network.cpp" "src/thermal/CMakeFiles/dimetrodon_thermal.dir/rc_network.cpp.o" "gcc" "src/thermal/CMakeFiles/dimetrodon_thermal.dir/rc_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dimetrodon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
