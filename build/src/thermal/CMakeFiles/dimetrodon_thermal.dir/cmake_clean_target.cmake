file(REMOVE_RECURSE
  "libdimetrodon_thermal.a"
)
