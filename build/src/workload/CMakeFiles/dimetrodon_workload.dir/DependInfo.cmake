
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cpuburn.cpp" "src/workload/CMakeFiles/dimetrodon_workload.dir/cpuburn.cpp.o" "gcc" "src/workload/CMakeFiles/dimetrodon_workload.dir/cpuburn.cpp.o.d"
  "/root/repo/src/workload/membound.cpp" "src/workload/CMakeFiles/dimetrodon_workload.dir/membound.cpp.o" "gcc" "src/workload/CMakeFiles/dimetrodon_workload.dir/membound.cpp.o.d"
  "/root/repo/src/workload/spec.cpp" "src/workload/CMakeFiles/dimetrodon_workload.dir/spec.cpp.o" "gcc" "src/workload/CMakeFiles/dimetrodon_workload.dir/spec.cpp.o.d"
  "/root/repo/src/workload/web.cpp" "src/workload/CMakeFiles/dimetrodon_workload.dir/web.cpp.o" "gcc" "src/workload/CMakeFiles/dimetrodon_workload.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/dimetrodon_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/dimetrodon_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dimetrodon_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dimetrodon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
