# Empty compiler generated dependencies file for dimetrodon_workload.
# This may be replaced when dependencies are built.
