file(REMOVE_RECURSE
  "libdimetrodon_workload.a"
)
