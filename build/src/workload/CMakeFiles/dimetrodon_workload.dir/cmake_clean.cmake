file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_workload.dir/cpuburn.cpp.o"
  "CMakeFiles/dimetrodon_workload.dir/cpuburn.cpp.o.d"
  "CMakeFiles/dimetrodon_workload.dir/membound.cpp.o"
  "CMakeFiles/dimetrodon_workload.dir/membound.cpp.o.d"
  "CMakeFiles/dimetrodon_workload.dir/spec.cpp.o"
  "CMakeFiles/dimetrodon_workload.dir/spec.cpp.o.d"
  "CMakeFiles/dimetrodon_workload.dir/web.cpp.o"
  "CMakeFiles/dimetrodon_workload.dir/web.cpp.o.d"
  "libdimetrodon_workload.a"
  "libdimetrodon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
