file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_trace.dir/csv.cpp.o"
  "CMakeFiles/dimetrodon_trace.dir/csv.cpp.o.d"
  "CMakeFiles/dimetrodon_trace.dir/series.cpp.o"
  "CMakeFiles/dimetrodon_trace.dir/series.cpp.o.d"
  "CMakeFiles/dimetrodon_trace.dir/table.cpp.o"
  "CMakeFiles/dimetrodon_trace.dir/table.cpp.o.d"
  "libdimetrodon_trace.a"
  "libdimetrodon_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
