file(REMOVE_RECURSE
  "libdimetrodon_trace.a"
)
