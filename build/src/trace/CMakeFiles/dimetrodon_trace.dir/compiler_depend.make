# Empty compiler generated dependencies file for dimetrodon_trace.
# This may be replaced when dependencies are built.
