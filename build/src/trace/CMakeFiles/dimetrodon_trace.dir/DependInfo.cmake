
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv.cpp" "src/trace/CMakeFiles/dimetrodon_trace.dir/csv.cpp.o" "gcc" "src/trace/CMakeFiles/dimetrodon_trace.dir/csv.cpp.o.d"
  "/root/repo/src/trace/series.cpp" "src/trace/CMakeFiles/dimetrodon_trace.dir/series.cpp.o" "gcc" "src/trace/CMakeFiles/dimetrodon_trace.dir/series.cpp.o.d"
  "/root/repo/src/trace/table.cpp" "src/trace/CMakeFiles/dimetrodon_trace.dir/table.cpp.o" "gcc" "src/trace/CMakeFiles/dimetrodon_trace.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
