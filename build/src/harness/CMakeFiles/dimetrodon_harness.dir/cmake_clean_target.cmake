file(REMOVE_RECURSE
  "libdimetrodon_harness.a"
)
