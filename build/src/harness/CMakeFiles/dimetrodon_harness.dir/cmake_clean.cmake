file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_harness.dir/experiment.cpp.o"
  "CMakeFiles/dimetrodon_harness.dir/experiment.cpp.o.d"
  "libdimetrodon_harness.a"
  "libdimetrodon_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
