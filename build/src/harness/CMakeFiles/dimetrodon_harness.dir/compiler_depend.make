# Empty compiler generated dependencies file for dimetrodon_harness.
# This may be replaced when dependencies are built.
