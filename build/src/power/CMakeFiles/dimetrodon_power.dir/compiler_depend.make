# Empty compiler generated dependencies file for dimetrodon_power.
# This may be replaced when dependencies are built.
