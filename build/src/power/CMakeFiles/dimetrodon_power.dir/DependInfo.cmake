
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/dvfs.cpp" "src/power/CMakeFiles/dimetrodon_power.dir/dvfs.cpp.o" "gcc" "src/power/CMakeFiles/dimetrodon_power.dir/dvfs.cpp.o.d"
  "/root/repo/src/power/meter.cpp" "src/power/CMakeFiles/dimetrodon_power.dir/meter.cpp.o" "gcc" "src/power/CMakeFiles/dimetrodon_power.dir/meter.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/power/CMakeFiles/dimetrodon_power.dir/power_model.cpp.o" "gcc" "src/power/CMakeFiles/dimetrodon_power.dir/power_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dimetrodon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
