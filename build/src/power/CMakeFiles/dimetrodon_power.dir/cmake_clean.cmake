file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_power.dir/dvfs.cpp.o"
  "CMakeFiles/dimetrodon_power.dir/dvfs.cpp.o.d"
  "CMakeFiles/dimetrodon_power.dir/meter.cpp.o"
  "CMakeFiles/dimetrodon_power.dir/meter.cpp.o.d"
  "CMakeFiles/dimetrodon_power.dir/power_model.cpp.o"
  "CMakeFiles/dimetrodon_power.dir/power_model.cpp.o.d"
  "libdimetrodon_power.a"
  "libdimetrodon_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
