file(REMOVE_RECURSE
  "libdimetrodon_power.a"
)
