
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bootstrap.cpp" "src/analysis/CMakeFiles/dimetrodon_analysis.dir/bootstrap.cpp.o" "gcc" "src/analysis/CMakeFiles/dimetrodon_analysis.dir/bootstrap.cpp.o.d"
  "/root/repo/src/analysis/fit.cpp" "src/analysis/CMakeFiles/dimetrodon_analysis.dir/fit.cpp.o" "gcc" "src/analysis/CMakeFiles/dimetrodon_analysis.dir/fit.cpp.o.d"
  "/root/repo/src/analysis/pareto.cpp" "src/analysis/CMakeFiles/dimetrodon_analysis.dir/pareto.cpp.o" "gcc" "src/analysis/CMakeFiles/dimetrodon_analysis.dir/pareto.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/dimetrodon_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/dimetrodon_analysis.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dimetrodon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
