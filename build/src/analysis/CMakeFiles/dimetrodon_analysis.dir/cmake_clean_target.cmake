file(REMOVE_RECURSE
  "libdimetrodon_analysis.a"
)
