# Empty dependencies file for dimetrodon_analysis.
# This may be replaced when dependencies are built.
