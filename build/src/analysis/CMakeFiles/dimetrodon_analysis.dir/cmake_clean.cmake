file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_analysis.dir/bootstrap.cpp.o"
  "CMakeFiles/dimetrodon_analysis.dir/bootstrap.cpp.o.d"
  "CMakeFiles/dimetrodon_analysis.dir/fit.cpp.o"
  "CMakeFiles/dimetrodon_analysis.dir/fit.cpp.o.d"
  "CMakeFiles/dimetrodon_analysis.dir/pareto.cpp.o"
  "CMakeFiles/dimetrodon_analysis.dir/pareto.cpp.o.d"
  "CMakeFiles/dimetrodon_analysis.dir/stats.cpp.o"
  "CMakeFiles/dimetrodon_analysis.dir/stats.cpp.o.d"
  "libdimetrodon_analysis.a"
  "libdimetrodon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
