# Empty compiler generated dependencies file for dimetrodon_policy.
# This may be replaced when dependencies are built.
