file(REMOVE_RECURSE
  "libdimetrodon_policy.a"
)
