file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_policy.dir/migration.cpp.o"
  "CMakeFiles/dimetrodon_policy.dir/migration.cpp.o.d"
  "CMakeFiles/dimetrodon_policy.dir/thermal_policy.cpp.o"
  "CMakeFiles/dimetrodon_policy.dir/thermal_policy.cpp.o.d"
  "libdimetrodon_policy.a"
  "libdimetrodon_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
