file(REMOVE_RECURSE
  "libdimetrodon_sched.a"
)
