# Empty compiler generated dependencies file for dimetrodon_sched.
# This may be replaced when dependencies are built.
