
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/machine.cpp" "src/sched/CMakeFiles/dimetrodon_sched.dir/machine.cpp.o" "gcc" "src/sched/CMakeFiles/dimetrodon_sched.dir/machine.cpp.o.d"
  "/root/repo/src/sched/runqueue.cpp" "src/sched/CMakeFiles/dimetrodon_sched.dir/runqueue.cpp.o" "gcc" "src/sched/CMakeFiles/dimetrodon_sched.dir/runqueue.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/dimetrodon_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/dimetrodon_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/ule_scheduler.cpp" "src/sched/CMakeFiles/dimetrodon_sched.dir/ule_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/dimetrodon_sched.dir/ule_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dimetrodon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/dimetrodon_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dimetrodon_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
