file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_sched.dir/machine.cpp.o"
  "CMakeFiles/dimetrodon_sched.dir/machine.cpp.o.d"
  "CMakeFiles/dimetrodon_sched.dir/runqueue.cpp.o"
  "CMakeFiles/dimetrodon_sched.dir/runqueue.cpp.o.d"
  "CMakeFiles/dimetrodon_sched.dir/scheduler.cpp.o"
  "CMakeFiles/dimetrodon_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/dimetrodon_sched.dir/ule_scheduler.cpp.o"
  "CMakeFiles/dimetrodon_sched.dir/ule_scheduler.cpp.o.d"
  "libdimetrodon_sched.a"
  "libdimetrodon_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
