file(REMOVE_RECURSE
  "libdimetrodon_sim.a"
)
