file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dimetrodon_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dimetrodon_sim.dir/format.cpp.o"
  "CMakeFiles/dimetrodon_sim.dir/format.cpp.o.d"
  "CMakeFiles/dimetrodon_sim.dir/rng.cpp.o"
  "CMakeFiles/dimetrodon_sim.dir/rng.cpp.o.d"
  "CMakeFiles/dimetrodon_sim.dir/simulator.cpp.o"
  "CMakeFiles/dimetrodon_sim.dir/simulator.cpp.o.d"
  "libdimetrodon_sim.a"
  "libdimetrodon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
