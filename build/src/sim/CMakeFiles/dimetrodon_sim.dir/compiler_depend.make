# Empty compiler generated dependencies file for dimetrodon_sim.
# This may be replaced when dependencies are built.
