file(REMOVE_RECURSE
  "CMakeFiles/dimetrodon_core.dir/adaptive.cpp.o"
  "CMakeFiles/dimetrodon_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/dimetrodon_core.dir/analytic_model.cpp.o"
  "CMakeFiles/dimetrodon_core.dir/analytic_model.cpp.o.d"
  "CMakeFiles/dimetrodon_core.dir/controller.cpp.o"
  "CMakeFiles/dimetrodon_core.dir/controller.cpp.o.d"
  "CMakeFiles/dimetrodon_core.dir/injection.cpp.o"
  "CMakeFiles/dimetrodon_core.dir/injection.cpp.o.d"
  "CMakeFiles/dimetrodon_core.dir/power_cap.cpp.o"
  "CMakeFiles/dimetrodon_core.dir/power_cap.cpp.o.d"
  "libdimetrodon_core.a"
  "libdimetrodon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimetrodon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
