
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cpp" "src/core/CMakeFiles/dimetrodon_core.dir/adaptive.cpp.o" "gcc" "src/core/CMakeFiles/dimetrodon_core.dir/adaptive.cpp.o.d"
  "/root/repo/src/core/analytic_model.cpp" "src/core/CMakeFiles/dimetrodon_core.dir/analytic_model.cpp.o" "gcc" "src/core/CMakeFiles/dimetrodon_core.dir/analytic_model.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/dimetrodon_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/dimetrodon_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/injection.cpp" "src/core/CMakeFiles/dimetrodon_core.dir/injection.cpp.o" "gcc" "src/core/CMakeFiles/dimetrodon_core.dir/injection.cpp.o.d"
  "/root/repo/src/core/power_cap.cpp" "src/core/CMakeFiles/dimetrodon_core.dir/power_cap.cpp.o" "gcc" "src/core/CMakeFiles/dimetrodon_core.dir/power_cap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/dimetrodon_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/dimetrodon_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dimetrodon_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dimetrodon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
