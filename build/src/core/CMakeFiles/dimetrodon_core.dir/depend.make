# Empty dependencies file for dimetrodon_core.
# This may be replaced when dependencies are built.
