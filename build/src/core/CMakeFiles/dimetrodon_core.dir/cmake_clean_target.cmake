file(REMOVE_RECURSE
  "libdimetrodon_core.a"
)
