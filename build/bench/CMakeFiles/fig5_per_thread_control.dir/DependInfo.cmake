
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_per_thread_control.cpp" "bench/CMakeFiles/fig5_per_thread_control.dir/fig5_per_thread_control.cpp.o" "gcc" "bench/CMakeFiles/fig5_per_thread_control.dir/fig5_per_thread_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dimetrodon_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dimetrodon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/dimetrodon_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dimetrodon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dimetrodon_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/dimetrodon_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dimetrodon_power.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dimetrodon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dimetrodon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dimetrodon_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
