file(REMOVE_RECURSE
  "CMakeFiles/fig5_per_thread_control.dir/fig5_per_thread_control.cpp.o"
  "CMakeFiles/fig5_per_thread_control.dir/fig5_per_thread_control.cpp.o.d"
  "fig5_per_thread_control"
  "fig5_per_thread_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_per_thread_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
