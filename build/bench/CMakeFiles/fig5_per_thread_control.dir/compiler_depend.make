# Empty compiler generated dependencies file for fig5_per_thread_control.
# This may be replaced when dependencies are built.
