file(REMOVE_RECURSE
  "CMakeFiles/ablation_injection.dir/ablation_injection.cpp.o"
  "CMakeFiles/ablation_injection.dir/ablation_injection.cpp.o.d"
  "ablation_injection"
  "ablation_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
