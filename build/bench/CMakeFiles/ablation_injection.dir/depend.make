# Empty dependencies file for ablation_injection.
# This may be replaced when dependencies are built.
