# Empty dependencies file for microbench_engine.
# This may be replaced when dependencies are built.
