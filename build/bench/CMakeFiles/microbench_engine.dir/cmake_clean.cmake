file(REMOVE_RECURSE
  "CMakeFiles/microbench_engine.dir/microbench_engine.cpp.o"
  "CMakeFiles/microbench_engine.dir/microbench_engine.cpp.o.d"
  "microbench_engine"
  "microbench_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
