file(REMOVE_RECURSE
  "CMakeFiles/table1_spec_workloads.dir/table1_spec_workloads.cpp.o"
  "CMakeFiles/table1_spec_workloads.dir/table1_spec_workloads.cpp.o.d"
  "table1_spec_workloads"
  "table1_spec_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_spec_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
