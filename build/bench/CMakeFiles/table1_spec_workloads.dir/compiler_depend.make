# Empty compiler generated dependencies file for table1_spec_workloads.
# This may be replaced when dependencies are built.
