# Empty compiler generated dependencies file for fig1_power_trace.
# This may be replaced when dependencies are built.
