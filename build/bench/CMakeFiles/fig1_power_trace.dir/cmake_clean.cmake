file(REMOVE_RECURSE
  "CMakeFiles/fig1_power_trace.dir/fig1_power_trace.cpp.o"
  "CMakeFiles/fig1_power_trace.dir/fig1_power_trace.cpp.o.d"
  "fig1_power_trace"
  "fig1_power_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_power_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
