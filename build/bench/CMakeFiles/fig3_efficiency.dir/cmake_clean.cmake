file(REMOVE_RECURSE
  "CMakeFiles/fig3_efficiency.dir/fig3_efficiency.cpp.o"
  "CMakeFiles/fig3_efficiency.dir/fig3_efficiency.cpp.o.d"
  "fig3_efficiency"
  "fig3_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
