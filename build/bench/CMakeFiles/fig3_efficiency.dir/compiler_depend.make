# Empty compiler generated dependencies file for fig3_efficiency.
# This may be replaced when dependencies are built.
