# Empty dependencies file for fig4_technique_comparison.
# This may be replaced when dependencies are built.
