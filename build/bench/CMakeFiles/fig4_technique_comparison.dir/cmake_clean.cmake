file(REMOVE_RECURSE
  "CMakeFiles/fig4_technique_comparison.dir/fig4_technique_comparison.cpp.o"
  "CMakeFiles/fig4_technique_comparison.dir/fig4_technique_comparison.cpp.o.d"
  "fig4_technique_comparison"
  "fig4_technique_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_technique_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
