file(REMOVE_RECURSE
  "CMakeFiles/validation_model.dir/validation_model.cpp.o"
  "CMakeFiles/validation_model.dir/validation_model.cpp.o.d"
  "validation_model"
  "validation_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
