# Empty compiler generated dependencies file for validation_model.
# This may be replaced when dependencies are built.
