file(REMOVE_RECURSE
  "CMakeFiles/fig2_temperature_curves.dir/fig2_temperature_curves.cpp.o"
  "CMakeFiles/fig2_temperature_curves.dir/fig2_temperature_curves.cpp.o.d"
  "fig2_temperature_curves"
  "fig2_temperature_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_temperature_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
