# Empty dependencies file for fig2_temperature_curves.
# This may be replaced when dependencies are built.
