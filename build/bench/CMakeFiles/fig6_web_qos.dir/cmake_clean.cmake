file(REMOVE_RECURSE
  "CMakeFiles/fig6_web_qos.dir/fig6_web_qos.cpp.o"
  "CMakeFiles/fig6_web_qos.dir/fig6_web_qos.cpp.o.d"
  "fig6_web_qos"
  "fig6_web_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_web_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
