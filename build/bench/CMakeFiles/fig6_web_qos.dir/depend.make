# Empty dependencies file for fig6_web_qos.
# This may be replaced when dependencies are built.
