#pragma once

#include <functional>

#include "core/controller.hpp"
#include "sched/machine.hpp"

namespace dimetrodon::core {

/// Power capping via forced idleness (Gandhi et al., cited in §4; Google
/// later landed the same mechanism in Linux as idle injection): a PI loop on
/// the injection probability holds average package power at a budget. The
/// paper notes the two problems share a mechanism — "rearchitecting the
/// power-capping mechanism to use shorter idle quanta would provide
/// thermally-beneficial side-effects" — which this controller realizes by
/// defaulting to short quanta.
class PowerCapController {
 public:
  struct Config {
    double power_cap_w = 50.0;
    sim::SimTime idle_quantum = sim::from_ms(5);
    sim::SimTime sample_period = sim::from_ms(250);
    double kp = 0.01;  // p per watt
    double ki = 0.02;  // p per (watt*second)
    double max_probability = 0.95;
  };

  /// Starts the control loop immediately; must outlive the run.
  PowerCapController(sched::Machine& machine, DimetrodonController& dimetrodon,
                     Config config);

  void stop() { running_ = false; }

  /// Redirect the loop's output. By default each tick writes straight to
  /// DimetrodonController::sys_set_global; when another duty-cycle writer
  /// coexists (a closed-loop governor), route through a
  /// control::InjectionArbiter port instead so the two never race on the
  /// global duty — see src/control/arbiter.hpp.
  using Output = std::function<void(double probability, sim::SimTime quantum)>;
  void set_output(Output output) { output_ = std::move(output); }

  double current_probability() const { return probability_; }
  /// Average power observed over the last completed control period.
  double last_observed_power_w() const { return last_power_; }
  std::uint64_t updates() const { return updates_; }

 private:
  void schedule_tick();
  void tick(sim::SimTime now);

  sched::Machine& machine_;
  DimetrodonController& dimetrodon_;
  Config config_;
  Output output_;  // empty = write sys_set_global directly
  bool running_ = true;
  double probability_ = 0.0;
  double integral_ = 0.0;
  double last_power_ = 0.0;
  double last_energy_j_ = 0.0;
  std::uint64_t updates_ = 0;
};

}  // namespace dimetrodon::core
