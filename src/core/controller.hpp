#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "core/injection.hpp"
#include "core/policy_table.hpp"
#include "sched/machine.hpp"

namespace dimetrodon::core {

/// Aggregate injection statistics.
struct InjectionStats {
  std::uint64_t decisions = 0;       // dispatches evaluated
  std::uint64_t injections = 0;      // idle quanta injected
  sim::SimTime injected_idle = 0;    // total idle time injected
};

/// The Dimetrodon controller: attaches to the machine's scheduler dispatch
/// hook and realizes the paper's mechanism — "each time the scheduler is
/// about to schedule a thread, with user-defined probability p, it instead
/// runs the idle thread for a quantum of length L" (§2.2). The sys_* methods
/// mirror the system-call control surface of the FreeBSD implementation
/// ("We control Dimetrodon using system calls", §3.1).
class DimetrodonController final : public sched::InjectionHook {
 public:
  /// Attaches to `machine` (RAII: detaches on destruction). A null policy
  /// selects the paper's Bernoulli implementation seeded from the machine.
  explicit DimetrodonController(sched::Machine& machine,
                                std::unique_ptr<InjectionPolicy> policy = {});
  ~DimetrodonController() override;

  DimetrodonController(const DimetrodonController&) = delete;
  DimetrodonController& operator=(const DimetrodonController&) = delete;

  // --- control surface (the "system calls") ---
  void sys_set_global(double probability, sim::SimTime quantum);
  void sys_set_thread(sched::ThreadId tid, double probability,
                      sim::SimTime quantum);
  void sys_shield_thread(sched::ThreadId tid);  // never inject this thread
  void sys_clear_thread(sched::ThreadId tid);
  void sys_disable();                           // stop all injection
  void sys_set_exempt_kernel(bool exempt);

  PolicyTable& table() { return table_; }
  const PolicyTable& table() const { return table_; }

  const InjectionStats& stats() const { return stats_; }
  const InjectionStats& thread_stats(sched::ThreadId tid) const;
  void reset_stats();

  /// Fraction of evaluated dispatches that injected (sanity check against p).
  double observed_injection_rate() const {
    return stats_.decisions == 0
               ? 0.0
               : static_cast<double>(stats_.injections) /
                     static_cast<double>(stats_.decisions);
  }

  // --- sched::InjectionHook ---
  std::optional<sim::SimTime> before_dispatch(const sched::Thread& t,
                                              sched::CoreId core,
                                              sim::SimTime now) override;
  void on_injection_complete(const sched::Thread& t, sched::CoreId core,
                             sim::SimTime now) override;

 private:
  sched::Machine& machine_;
  std::unique_ptr<InjectionPolicy> policy_;
  PolicyTable table_;
  InjectionStats stats_;
  std::unordered_map<sched::ThreadId, InjectionStats> per_thread_;
};

}  // namespace dimetrodon::core
