#include "core/injection.hpp"

namespace dimetrodon::core {

std::optional<sim::SimTime> BernoulliInjection::decide(
    sched::ThreadId /*tid*/, const InjectionParams& params,
    sim::SimTime /*now*/) {
  if (rng_.bernoulli(params.probability)) return params.quantum;
  return std::nullopt;
}

double StratifiedInjection::initial_accumulator(sched::ThreadId tid) const {
  if (!stagger_phases_) return 0.0;
  constexpr double kGolden = 0.6180339887498949;
  const double x = kGolden * static_cast<double>(tid + 1);
  return x - static_cast<std::int64_t>(x);
}

std::optional<sim::SimTime> StratifiedInjection::decide(
    sched::ThreadId tid, const InjectionParams& params, sim::SimTime /*now*/) {
  auto [it, inserted] =
      accumulators_.try_emplace(tid, initial_accumulator(tid));
  double& acc = it->second;
  // Interpreting p as "fraction of scheduling decisions that idle": each
  // decision adds p; a crossing of 1 consumes one injection.
  acc += params.probability;
  if (acc >= 1.0) {
    acc -= 1.0;
    return params.quantum;
  }
  return std::nullopt;
}

}  // namespace dimetrodon::core
