#include "core/adaptive.hpp"

#include <algorithm>

namespace dimetrodon::core {

AdaptiveController::AdaptiveController(sched::Machine& machine,
                                       DimetrodonController& dimetrodon,
                                       Config config)
    : machine_(machine), dimetrodon_(dimetrodon), config_(config) {
  schedule_tick();
}

void AdaptiveController::schedule_tick() {
  machine_.call_at(machine_.now() + config_.sample_period,
                   [this](sim::SimTime t) { tick(t); });
}

void AdaptiveController::tick(sim::SimTime /*now*/) {
  if (!running_) return;
  const double temp = machine_.mean_sensor_temp();
  // Positive error = too hot = inject more.
  const double error = temp - config_.target_temp_c;
  last_error_ = error;
  const double dt = sim::to_sec(config_.sample_period);
  const double unclamped =
      config_.kp * error + config_.ki * (integral_ + error * dt);
  // Anti-windup: only integrate when the actuator is not saturated in the
  // direction of the error.
  if ((unclamped < config_.max_probability || error < 0.0) &&
      (unclamped > 0.0 || error > 0.0)) {
    integral_ += error * dt;
  }
  probability_ = std::clamp(config_.kp * error + config_.ki * integral_, 0.0,
                            config_.max_probability);
  dimetrodon_.sys_set_global(probability_, config_.idle_quantum);
  ++updates_;
  schedule_tick();
}

}  // namespace dimetrodon::core
