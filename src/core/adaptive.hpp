#pragma once

#include "core/controller.hpp"
#include "sched/machine.hpp"
#include "sim/time.hpp"

namespace dimetrodon::core {

/// Closed-loop extension of the paper's static policies: periodically read
/// the (quantized) core temperature sensors and adjust the global injection
/// probability to hold a target temperature — the "adjusted online according
/// to the thermal profile and performance constraints" mode the paper
/// sketches in §2. A PI controller on p with anti-windup; L stays fixed
/// (short quanta are the efficient regime, §3.4).
class AdaptiveController {
 public:
  struct Config {
    double target_temp_c = 50.0;
    sim::SimTime idle_quantum = sim::from_ms(5);
    sim::SimTime sample_period = sim::from_ms(500);
    double kp = 0.03;           // proportional gain, p per °C
    double ki = 0.01;           // integral gain, p per (°C·s)
    double max_probability = 0.95;
  };

  /// Starts the periodic control loop immediately. The controller must
  /// outlive the machine run it supervises.
  AdaptiveController(sched::Machine& machine, DimetrodonController& dimetrodon,
                     Config config);

  /// Stop adjusting (the last setpoint remains in force).
  void stop() { running_ = false; }

  double current_probability() const { return probability_; }
  double last_error_c() const { return last_error_; }
  std::uint64_t updates() const { return updates_; }

 private:
  void schedule_tick();
  void tick(sim::SimTime now);

  sched::Machine& machine_;
  DimetrodonController& dimetrodon_;
  Config config_;
  bool running_ = true;
  double probability_ = 0.0;
  double integral_ = 0.0;
  double last_error_ = 0.0;
  std::uint64_t updates_ = 0;
};

}  // namespace dimetrodon::core
