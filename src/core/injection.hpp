#pragma once

#include <optional>
#include <unordered_map>

#include "sched/thread.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dimetrodon::core {

/// Injection configuration for one thread (or the global default): with
/// proportion `probability` (the paper's p), displace the thread's dispatch
/// by an idle quantum of length `quantum` (the paper's L).
struct InjectionParams {
  double probability = 0.0;
  sim::SimTime quantum = sim::from_ms(100);

  bool enabled() const { return probability > 0.0 && quantum > 0; }
};

/// Decides, at each dispatch of a thread, whether to inject an idle quantum.
/// The paper expresses the idle proportion as a probability ("this is not the
/// only possible injection model", §2) — implementations of this interface
/// are exactly that design space.
class InjectionPolicy {
 public:
  virtual ~InjectionPolicy() = default;

  /// Return the idle quantum to inject before running thread `tid`, or
  /// nullopt to run it. Called only with enabled() params.
  virtual std::optional<sim::SimTime> decide(sched::ThreadId tid,
                                             const InjectionParams& params,
                                             sim::SimTime now) = 0;

  /// Forget any per-thread state (thread exited).
  virtual void forget(sched::ThreadId tid) { (void)tid; }
};

/// The paper's implementation: an independent Bernoulli trial per dispatch.
/// Expected idle quanta per execution quantum is p/(1-p); temperature curves
/// fluctuate visibly because of the sampling noise (paper Fig. 2).
class BernoulliInjection final : public InjectionPolicy {
 public:
  explicit BernoulliInjection(sim::Rng rng) : rng_(std::move(rng)) {}

  std::optional<sim::SimTime> decide(sched::ThreadId tid,
                                     const InjectionParams& params,
                                     sim::SimTime now) override;

 private:
  sim::Rng rng_;
};

/// The paper's suggested refinement ("a more deterministic model would likely
/// result in smoother curves", §3.4): per-thread error diffusion. Each
/// dispatch accumulates p; when the accumulator crosses 1, inject and subtract
/// 1. Long-run injection proportion is exactly p with minimal variance.
/// Accumulators are phase-staggered across threads (golden-ratio offsets) so
/// that co-scheduled threads do not idle in lockstep — synchronized duty
/// cycling would swing the package temperature coherently and forfeit the
/// smoothness this policy exists for.
class StratifiedInjection final : public InjectionPolicy {
 public:
  explicit StratifiedInjection(bool stagger_phases = true)
      : stagger_phases_(stagger_phases) {}

  std::optional<sim::SimTime> decide(sched::ThreadId tid,
                                     const InjectionParams& params,
                                     sim::SimTime now) override;
  void forget(sched::ThreadId tid) override { accumulators_.erase(tid); }

 private:
  double initial_accumulator(sched::ThreadId tid) const;

  bool stagger_phases_;
  std::unordered_map<sched::ThreadId, double> accumulators_;
};

}  // namespace dimetrodon::core
