#include "core/analytic_model.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace dimetrodon::core {

double AnalyticModel::idle_quanta_per_exec_quantum(double probability_p) {
  if (probability_p < 0.0 || probability_p >= 1.0) {
    throw std::invalid_argument("injection probability must be in [0, 1)");
  }
  return probability_p / (1.0 - probability_p);
}

double AnalyticModel::predicted_runtime(double runtime_r, double avg_quantum_q,
                                        double probability_p,
                                        double idle_len_l) {
  assert(runtime_r >= 0.0 && avg_quantum_q > 0.0 && idle_len_l >= 0.0);
  const double s = runtime_r / avg_quantum_q;  // times scheduled
  return runtime_r +
         s * idle_quanta_per_exec_quantum(probability_p) * idle_len_l;
}

double AnalyticModel::throughput_ratio(double avg_quantum_q,
                                       double probability_p,
                                       double idle_len_l) {
  return 1.0 / (1.0 + idle_quanta_per_exec_quantum(probability_p) *
                          idle_len_l / avg_quantum_q);
}

double AnalyticModel::idle_duty_fraction(double avg_quantum_q,
                                         double probability_p,
                                         double idle_len_l) {
  const double idle_per_exec = idle_quanta_per_exec_quantum(probability_p) *
                               idle_len_l / avg_quantum_q;
  return idle_per_exec / (1.0 + idle_per_exec);
}

double AnalyticModel::race_to_idle_energy(double active_power_u,
                                          double idle_power_m,
                                          double runtime_r, double window) {
  assert(window >= runtime_r);
  return active_power_u * runtime_r + idle_power_m * (window - runtime_r);
}

double AnalyticModel::dimetrodon_energy(double active_power_u,
                                        double idle_power_m, double runtime_r,
                                        double avg_quantum_q,
                                        double probability_p,
                                        double idle_len_l) {
  const double idle_seconds = (idle_len_l / avg_quantum_q) *
                              idle_quanta_per_exec_quantum(probability_p) *
                              runtime_r;
  return active_power_u * runtime_r + idle_power_m * idle_seconds;
}

double AnalyticModel::throughput_reduction_for(double alpha, double beta,
                                               double r) {
  assert(r >= 0.0);
  return alpha * std::pow(r, beta);
}

}  // namespace dimetrodon::core
