#pragma once

#include "sim/time.hpp"

namespace dimetrodon::core {

/// The paper's closed-form throughput and power models (§2.2). All
/// quantities in seconds / watts / joules.
///
///   D(t) = R + S * (p / (1-p)) * L,   S = R / q
///
/// where R is the thread's CPU-bound runtime, q the average execution quantum
/// length, p the injection probability and L the idle quantum length.
class AnalyticModel {
 public:
  /// Predicted wall-clock runtime under Dimetrodon. Requires p in [0, 1).
  static double predicted_runtime(double runtime_r, double avg_quantum_q,
                                  double probability_p, double idle_len_l);

  /// Predicted throughput relative to unconstrained execution, R / D(t).
  static double throughput_ratio(double avg_quantum_q, double probability_p,
                                 double idle_len_l);

  /// Expected number of idle quanta per execution quantum, p/(1-p).
  static double idle_quanta_per_exec_quantum(double probability_p);

  /// Fraction of wall-clock time spent in injected idle,
  /// (p/(1-p)) * (L/q) / (1 + (p/(1-p)) * (L/q)).
  static double idle_duty_fraction(double avg_quantum_q, double probability_p,
                                   double idle_len_l);

  /// Race-to-idle energy over a window of length `window`: the processor runs
  /// at `active_power_u` for R seconds and idles at `idle_power_m` for the
  /// remainder (window >= R).
  static double race_to_idle_energy(double active_power_u, double idle_power_m,
                                    double runtime_r, double window);

  /// Dimetrodon energy for completing R seconds of work: u*R plus idle power
  /// over the injected (L/q)(p/(1-p))R seconds. Equal to race_to_idle_energy
  /// evaluated at window = predicted_runtime(...) — the paper's equal-energy
  /// claim, asserted by tests.
  static double dimetrodon_energy(double active_power_u, double idle_power_m,
                                  double runtime_r, double avg_quantum_q,
                                  double probability_p, double idle_len_l);

  /// The paper's empirical trade-off metric: throughput reduction required
  /// for temperature reduction r, T(r) = alpha * r^beta (Table 1).
  static double throughput_reduction_for(double alpha, double beta, double r);
};

}  // namespace dimetrodon::core
