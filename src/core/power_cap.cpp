#include "core/power_cap.hpp"

#include <algorithm>

namespace dimetrodon::core {

PowerCapController::PowerCapController(sched::Machine& machine,
                                       DimetrodonController& dimetrodon,
                                       Config config)
    : machine_(machine), dimetrodon_(dimetrodon), config_(config) {
  last_energy_j_ = machine_.energy().total_joules();
  schedule_tick();
}

void PowerCapController::schedule_tick() {
  machine_.call_at(machine_.now() + config_.sample_period,
                   [this](sim::SimTime t) { tick(t); });
}

void PowerCapController::tick(sim::SimTime /*now*/) {
  if (!running_) return;
  const double dt = sim::to_sec(config_.sample_period);
  const double energy = machine_.energy().total_joules();
  last_power_ = (energy - last_energy_j_) / dt;
  last_energy_j_ = energy;

  // Positive error = over budget = inject more.
  const double error = last_power_ - config_.power_cap_w;
  const double unclamped =
      config_.kp * error + config_.ki * (integral_ + error * dt);
  if ((unclamped < config_.max_probability || error < 0.0) &&
      (unclamped > 0.0 || error > 0.0)) {
    integral_ += error * dt;
  }
  probability_ = std::clamp(config_.kp * error + config_.ki * integral_, 0.0,
                            config_.max_probability);
  if (output_) {
    output_(probability_, config_.idle_quantum);
  } else {
    dimetrodon_.sys_set_global(probability_, config_.idle_quantum);
  }
  ++updates_;
  schedule_tick();
}

}  // namespace dimetrodon::core
