#pragma once

#include <optional>
#include <unordered_map>

#include "core/injection.hpp"
#include "sched/thread.hpp"

namespace dimetrodon::core {

/// Per-thread injection configuration — the flexibility that distinguishes
/// Dimetrodon from chip-wide mechanisms like DVFS (paper §2.1, §3.6). A
/// global default applies to unconfigured threads; per-thread entries
/// override it (including overriding to "never inject" for high-priority
/// threads). Kernel-class threads are exempt by default (paper §3.1).
class PolicyTable {
 public:
  /// Default applied to threads with no explicit entry.
  void set_global(InjectionParams params) { global_ = params; }
  const InjectionParams& global() const { return global_; }

  /// Per-thread override (pass a disabled InjectionParams to shield a
  /// thread from the global policy).
  void set_thread(sched::ThreadId tid, InjectionParams params) {
    overrides_[tid] = params;
  }
  void clear_thread(sched::ThreadId tid) { overrides_.erase(tid); }
  bool has_thread_override(sched::ThreadId tid) const {
    return overrides_.count(tid) != 0;
  }

  /// Exempt kernel-class threads from the global policy (they can still be
  /// targeted explicitly). Default true, matching the paper's policy choice.
  void set_exempt_kernel_threads(bool exempt) { exempt_kernel_ = exempt; }
  bool exempt_kernel_threads() const { return exempt_kernel_; }

  /// Resolve the effective parameters for a thread.
  InjectionParams params_for(const sched::Thread& t) const {
    const auto it = overrides_.find(t.id());
    if (it != overrides_.end()) return it->second;
    if (exempt_kernel_ && t.thread_class() == sched::ThreadClass::kKernel) {
      return InjectionParams{};  // disabled
    }
    return global_;
  }

  /// Disable everything (global and overrides).
  void reset() {
    global_ = InjectionParams{};
    overrides_.clear();
  }

 private:
  InjectionParams global_{};
  std::unordered_map<sched::ThreadId, InjectionParams> overrides_;
  bool exempt_kernel_ = true;
};

}  // namespace dimetrodon::core
