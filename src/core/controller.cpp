#include "core/controller.hpp"

namespace dimetrodon::core {

DimetrodonController::DimetrodonController(
    sched::Machine& machine, std::unique_ptr<InjectionPolicy> policy)
    : machine_(machine), policy_(std::move(policy)) {
  if (!policy_) {
    policy_ = std::make_unique<BernoulliInjection>(machine_.fork_rng());
  }
  machine_.set_injection_hook(this);
}

DimetrodonController::~DimetrodonController() {
  if (machine_.injection_hook() == this) machine_.set_injection_hook(nullptr);
}

void DimetrodonController::sys_set_global(double probability,
                                          sim::SimTime quantum) {
  table_.set_global(InjectionParams{probability, quantum});
}

void DimetrodonController::sys_set_thread(sched::ThreadId tid,
                                          double probability,
                                          sim::SimTime quantum) {
  table_.set_thread(tid, InjectionParams{probability, quantum});
}

void DimetrodonController::sys_shield_thread(sched::ThreadId tid) {
  table_.set_thread(tid, InjectionParams{0.0, 0});
}

void DimetrodonController::sys_clear_thread(sched::ThreadId tid) {
  table_.clear_thread(tid);
  policy_->forget(tid);
}

void DimetrodonController::sys_disable() { table_.reset(); }

void DimetrodonController::sys_set_exempt_kernel(bool exempt) {
  table_.set_exempt_kernel_threads(exempt);
}

const InjectionStats& DimetrodonController::thread_stats(
    sched::ThreadId tid) const {
  static const InjectionStats kEmpty{};
  const auto it = per_thread_.find(tid);
  return it == per_thread_.end() ? kEmpty : it->second;
}

void DimetrodonController::reset_stats() {
  stats_ = InjectionStats{};
  per_thread_.clear();
}

std::optional<sim::SimTime> DimetrodonController::before_dispatch(
    const sched::Thread& t, sched::CoreId /*core*/, sim::SimTime now) {
  const InjectionParams params = table_.params_for(t);
  if (!params.enabled()) return std::nullopt;
  ++stats_.decisions;
  ++per_thread_[t.id()].decisions;
  const auto quantum = policy_->decide(t.id(), params, now);
  if (quantum.has_value()) {
    ++stats_.injections;
    ++per_thread_[t.id()].injections;
  }
  return quantum;
}

void DimetrodonController::on_injection_complete(const sched::Thread& t,
                                                 sched::CoreId /*core*/,
                                                 sim::SimTime /*now*/) {
  // Stats use the nominal quantum; actual residency equals it by mechanism.
  const InjectionParams params = table_.params_for(t);
  stats_.injected_idle += params.quantum;
  per_thread_[t.id()].injected_idle += params.quantum;
}

}  // namespace dimetrodon::core
