#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dimetrodon::analysis {

namespace {
// Linear sub-buckets per power of two. Bucket width is 2^(e-1)/64 over the
// octave [2^(e-1), 2^e), so the midpoint is within 1/128 of any value in it.
constexpr int kSubBuckets = 64;
}  // namespace

PercentileHistogram::PercentileHistogram(double min_value, double max_value)
    : min_value_(min_value), max_value_(max_value) {
  if (!(min_value > 0.0) || !(max_value > min_value)) {
    throw std::invalid_argument(
        "PercentileHistogram requires 0 < min_value < max_value");
  }
  int max_exp = 0;
  std::frexp(min_value_, &min_exp_);
  std::frexp(max_value_, &max_exp);
  const std::size_t octaves = static_cast<std::size_t>(max_exp - min_exp_ + 1);
  buckets_.assign(octaves * kSubBuckets, 0);
}

std::size_t PercentileHistogram::bucket_index(double v) const {
  v = std::clamp(v, min_value_, max_value_);
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((m * 2.0 - 1.0) * kSubBuckets));
  const std::size_t idx =
      static_cast<std::size_t>(e - min_exp_) * kSubBuckets +
      static_cast<std::size_t>(sub);
  return std::min(idx, buckets_.size() - 1);
}

double PercentileHistogram::bucket_midpoint(std::size_t idx) const {
  const int e = min_exp_ + static_cast<int>(idx) / kSubBuckets;
  const int sub = static_cast<int>(idx) % kSubBuckets;
  // Octave [2^(e-1), 2^e) split into kSubBuckets equal slices.
  const double lower =
      std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, e - 1);
  const double width = std::ldexp(1.0 / kSubBuckets, e - 1);
  return lower + width / 2.0;
}

void PercentileHistogram::add(double value) {
  if (!std::isfinite(value)) {
    ++rejected_;
    return;
  }
  if (count_ == 0) {
    min_seen_ = value;
    max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_index(value)];
}

void PercentileHistogram::merge(const PercentileHistogram& other) {
  if (!same_layout(other)) {
    throw std::invalid_argument("PercentileHistogram layouts differ");
  }
  rejected_ += other.rejected_;
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_seen_ = other.min_seen_;
    max_seen_ = other.max_seen_;
  } else {
    min_seen_ = std::min(min_seen_, other.min_seen_);
    max_seen_ = std::max(max_seen_, other.max_seen_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void PercentileHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  rejected_ = 0;
  sum_ = 0.0;
  min_seen_ = 0.0;
  max_seen_ = 0.0;
}

double PercentileHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double PercentileHistogram::min() const { return count_ == 0 ? 0.0 : min_seen_; }

double PercentileHistogram::max() const { return count_ == 0 ? 0.0 : max_seen_; }

double PercentileHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q/100 * count), with rank >= 1 so q=0 lands in the first occupied
  // bucket.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q / 100.0 * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      return std::clamp(bucket_midpoint(i), min_seen_, max_seen_);
    }
  }
  return max_seen_;  // unreachable with consistent counts
}

}  // namespace dimetrodon::analysis
