#pragma once

#include <string>
#include <vector>

namespace dimetrodon::analysis {

/// One configuration's outcome in the paper's trade-off space: temperature
/// reduction over idle (x) versus retained performance (y) — throughput or
/// relative QoS, both as fractions of the unconstrained baseline. Both axes
/// are maximized ("more cooling at more retained performance").
struct TradeoffPoint {
  double temp_reduction = 0.0;        // r in [0, 1]
  double performance_retained = 0.0;  // in [0, 1]
  std::string label;

  /// The paper's efficiency metric: temperature reduction per unit of
  /// throughput reduction (Figure 3's y-axis). Returns +inf-ish large value
  /// when the throughput cost is ~zero.
  double efficiency() const;
};

/// Extract the pareto boundary (the darkened curves of Figures 4-6):
/// non-dominated points under (temp_reduction up, performance_retained up),
/// returned sorted by temp_reduction ascending.
std::vector<TradeoffPoint> pareto_frontier(std::vector<TradeoffPoint> points);

/// True if a dominates b (>= on both axes, > on at least one).
bool dominates(const TradeoffPoint& a, const TradeoffPoint& b);

}  // namespace dimetrodon::analysis
