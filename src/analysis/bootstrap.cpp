#include "analysis/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/stats.hpp"

namespace dimetrodon::analysis {

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& sample,
                                     double confidence, int resamples,
                                     std::uint64_t seed) {
  if (sample.empty()) {
    throw std::invalid_argument("bootstrap_mean_ci: empty sample");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("confidence must be in (0, 1)");
  }
  ConfidenceInterval ci;
  ci.confidence = confidence;
  ci.mean = mean(sample);
  if (sample.size() == 1) {
    ci.lower = ci.upper = sample.front();
    return ci;
  }
  sim::Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  const auto n = static_cast<std::int64_t>(sample.size());
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      sum += sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lower = percentile(means, 100.0 * alpha);
  ci.upper = percentile(means, 100.0 * (1.0 - alpha));
  return ci;
}

Histogram make_histogram(const std::vector<double>& data, std::size_t bins) {
  if (data.empty()) throw std::invalid_argument("make_histogram: empty data");
  if (bins == 0) throw std::invalid_argument("make_histogram: zero bins");
  Histogram h;
  h.lo = *std::min_element(data.begin(), data.end());
  h.hi = *std::max_element(data.begin(), data.end());
  h.counts.assign(bins, 0);
  const double span = h.hi - h.lo;
  for (const double x : data) {
    std::size_t idx = 0;
    if (span > 0.0) {
      idx = static_cast<std::size_t>((x - h.lo) / span *
                                     static_cast<double>(bins));
      if (idx >= bins) idx = bins - 1;  // x == hi lands in the last bin
    }
    ++h.counts[idx];
  }
  return h;
}

}  // namespace dimetrodon::analysis
