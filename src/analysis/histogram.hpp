#pragma once

#include <cstdint>
#include <vector>

namespace dimetrodon::analysis {

/// Streaming percentile histogram in the HDR-histogram style: log-linear
/// buckets (64 linear sub-buckets per power of two) give a bounded ~0.8%
/// relative error per reported quantile with O(1) insertion and a fixed,
/// seed-independent memory footprint. Latency percentiles (p50/p95/p99) of
/// arbitrarily long runs can therefore stream without retaining samples —
/// unlike analysis::percentile(), which copies and sorts its input.
///
/// Determinism: bucket placement is a pure function of the value and the
/// (min_value, max_value) layout, so identical value sequences produce
/// bit-identical quantiles regardless of thread count or insertion batching.
class PercentileHistogram {
 public:
  /// Trackable range; values outside are clamped into the edge buckets (the
  /// exact min/max are still tracked separately). Requires 0 < min < max.
  explicit PercentileHistogram(double min_value = 1e-6,
                               double max_value = 1e5);

  /// Record one sample. Non-finite values (NaN, ±inf) are dropped and
  /// counted in rejected() instead: a NaN would otherwise poison sum_ and
  /// the extrema and — via the size_t underflow clamp in bucket_index —
  /// silently land in the top bucket, skewing every downstream p99.
  void add(double value);

  /// Non-finite samples dropped by add() (folded across merge()).
  std::uint64_t rejected() const { return rejected_; }

  /// Fold `other` into this histogram. Layouts (min/max) must match.
  void merge(const PercentileHistogram& other);

  void reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Exact extrema of everything added (not bucket-quantized). 0 when empty.
  double min() const;
  double max() const;

  /// Linear bucket-walk quantile, q in [0, 100]. Returns the midpoint of the
  /// bucket containing the target rank, clamped into [min(), max()] so
  /// degenerate histograms (single value, q=0, q=100) are exact. 0 if empty.
  double percentile(double q) const;

  bool same_layout(const PercentileHistogram& other) const {
    return min_value_ == other.min_value_ && max_value_ == other.max_value_;
  }

  std::size_t num_buckets() const { return buckets_.size(); }

 private:
  std::size_t bucket_index(double v) const;
  double bucket_midpoint(std::size_t idx) const;

  double min_value_;
  double max_value_;
  int min_exp_;  // frexp exponent of min_value_
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t rejected_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace dimetrodon::analysis
