#pragma once

#include <vector>

#include "sim/rng.hpp"

namespace dimetrodon::analysis {

/// Two-sided confidence interval for a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.95;

  bool contains(double x) const { return x >= lower && x <= upper; }
  double half_width() const { return (upper - lower) / 2.0; }
};

/// Percentile-bootstrap confidence interval for the mean of `sample`.
/// Deterministic given `seed`. Requires a non-empty sample; with a single
/// observation the interval collapses to that value.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& sample,
                                     double confidence = 0.95,
                                     int resamples = 2000,
                                     std::uint64_t seed = 0xb0075);

/// Histogram with equal-width bins over [min, max] of the data.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  double bin_width() const {
    return counts.empty() ? 0.0
                          : (hi - lo) / static_cast<double>(counts.size());
  }
};

/// Requires non-empty data and bins >= 1. Degenerate (constant) data lands
/// in the first bin.
Histogram make_histogram(const std::vector<double>& data, std::size_t bins);

}  // namespace dimetrodon::analysis
