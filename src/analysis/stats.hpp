#pragma once

#include <cstddef>
#include <vector>

namespace dimetrodon::analysis {

/// Streaming mean/variance/extrema (Welford).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const;  // sample variance (n-1)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile; `q` in [0, 100]. Requires non-empty input
/// (copied and sorted internally).
double percentile(std::vector<double> xs, double q);

}  // namespace dimetrodon::analysis
