#include "analysis/fit.hpp"

#include <cmath>
#include <stdexcept>

namespace dimetrodon::analysis {

LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_linear needs >= 2 paired points");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-30) {
    throw std::invalid_argument("fit_linear: degenerate x values");
  }
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (f.slope * xs[i] + f.intercept);
    ss_res += e * e;
  }
  f.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

PowerLawFit fit_power_law(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("fit_power_law needs paired points");
  }
  std::vector<double> lx;
  std::vector<double> ly;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  if (lx.size() < 2) {
    throw std::invalid_argument(
        "fit_power_law: fewer than two positive points");
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerLawFit f;
  f.alpha = std::exp(lin.intercept);
  f.beta = lin.slope;
  f.r_squared = lin.r_squared;
  f.points_used = lx.size();
  return f;
}

}  // namespace dimetrodon::analysis
