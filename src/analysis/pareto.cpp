#include "analysis/pareto.hpp"

#include <algorithm>

namespace dimetrodon::analysis {

double TradeoffPoint::efficiency() const {
  const double throughput_reduction = 1.0 - performance_retained;
  if (throughput_reduction <= 1e-9) return 1e9;
  return temp_reduction / throughput_reduction;
}

bool dominates(const TradeoffPoint& a, const TradeoffPoint& b) {
  const bool geq = a.temp_reduction >= b.temp_reduction &&
                   a.performance_retained >= b.performance_retained;
  const bool strict = a.temp_reduction > b.temp_reduction ||
                      a.performance_retained > b.performance_retained;
  return geq && strict;
}

std::vector<TradeoffPoint> pareto_frontier(std::vector<TradeoffPoint> points) {
  std::vector<TradeoffPoint> frontier;
  for (const auto& p : points) {
    bool dominated = false;
    for (const auto& q : points) {
      if (dominates(q, p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(p);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const TradeoffPoint& a, const TradeoffPoint& b) {
              return a.temp_reduction < b.temp_reduction;
            });
  return frontier;
}

}  // namespace dimetrodon::analysis
