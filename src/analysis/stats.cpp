#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dimetrodon::analysis {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  q = std::clamp(q, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace dimetrodon::analysis
