#pragma once

#include <vector>

namespace dimetrodon::analysis {

/// Ordinary least squares y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Requires xs.size() == ys.size() >= 2 with non-degenerate x spread.
LinearFit fit_linear(const std::vector<double>& xs,
                     const std::vector<double>& ys);

/// Power-law fit y = alpha * x^beta via least squares in log-log space — the
/// form the paper fits to its pareto boundaries: T(r) = alpha * r^beta
/// (Table 1). Points with x <= 0 or y <= 0 are skipped (log domain); at least
/// two usable points are required.
struct PowerLawFit {
  double alpha = 0.0;
  double beta = 0.0;
  double r_squared = 0.0;  // in log-log space
  std::size_t points_used = 0;
};

PowerLawFit fit_power_law(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace dimetrodon::analysis
