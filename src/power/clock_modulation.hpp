#pragma once

#include <cstddef>
#include <stdexcept>

namespace dimetrodon::power {

/// On-demand clock modulation in the style of the FreeBSD `p4tcc` driver: the
/// thermal control circuit gates the core clock with a programmable duty
/// cycle in 12.5% steps (Intel SDM vol. 3A). Crucially this happens at
/// microsecond granularity, *inside* C0: dynamic power scales with the duty
/// cycle but the core never enters an idle state, so voltage and leakage are
/// untouched — the mechanism behind p4tcc's poor showing in the paper's
/// Figure 4.
class ClockModulation {
 public:
  static constexpr std::size_t kNumSteps = 8;  // 12.5% .. 100%

  ClockModulation() = default;

  /// Set duty cycle as a step index: 1..8 meaning 12.5%..100%.
  void set_step(std::size_t step) {
    if (step < 1 || step > kNumSteps) {
      throw std::invalid_argument("clock modulation step must be in 1..8");
    }
    step_ = step;
  }

  std::size_t step() const { return step_; }
  double duty() const { return static_cast<double>(step_) / kNumSteps; }
  bool throttled() const { return step_ < kNumSteps; }

 private:
  std::size_t step_ = kNumSteps;  // unthrottled
};

}  // namespace dimetrodon::power
