#pragma once

#include <cstddef>
#include <vector>

namespace dimetrodon::power {

/// Exact (model-side) energy bookkeeping: integrates true power per core and
/// for the package across the simulation. Used by conservation tests and to
/// cross-check the noisy PowerMeter path.
class EnergyAccountant {
 public:
  explicit EnergyAccountant(std::size_t num_cores)
      : core_joules_(num_cores, 0.0) {}

  /// Accumulate `watts` over `dt_seconds` for core `i`.
  void add_core(std::size_t i, double watts, double dt_seconds) {
    core_joules_.at(i) += watts * dt_seconds;
    total_joules_ += watts * dt_seconds;
  }

  /// Accumulate uncore/package-shared energy.
  void add_uncore(double watts, double dt_seconds) {
    uncore_joules_ += watts * dt_seconds;
    total_joules_ += watts * dt_seconds;
  }

  double core_joules(std::size_t i) const { return core_joules_.at(i); }
  double uncore_joules() const { return uncore_joules_; }
  double total_joules() const { return total_joules_; }

  void reset() {
    for (auto& j : core_joules_) j = 0.0;
    uncore_joules_ = 0.0;
    total_joules_ = 0.0;
  }

  /// Snapshot support: full accumulator state, restorable verbatim.
  struct State {
    std::vector<double> core_joules;
    double uncore_joules = 0.0;
    double total_joules = 0.0;
  };
  State save_state() const {
    return State{core_joules_, uncore_joules_, total_joules_};
  }
  void restore_state(const State& s) {
    core_joules_ = s.core_joules;
    uncore_joules_ = s.uncore_joules;
    total_joules_ = s.total_joules;
  }

 private:
  std::vector<double> core_joules_;
  double uncore_joules_ = 0.0;
  double total_joules_ = 0.0;
};

}  // namespace dimetrodon::power
