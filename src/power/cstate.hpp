#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace dimetrodon::power {

/// Idle states of the simulated Nehalem-class core. The paper's platform
/// exposed C1E ("which does not flush the processor cache", §3.2) and the
/// paper's model assumes transition times "in the tens of microseconds"
/// (§2.2) — negligible at millisecond quanta, ruinous at clock-level duty
/// cycling.
enum class CState : std::uint8_t {
  kC0,   // active, executing
  kC1,   // halted: core clock gated, voltage unchanged
  kC1E,  // enhanced halt: clock gated and voltage lowered
};

struct CStateInfo {
  std::string_view name;
  sim::SimTime entry_latency;  // time to enter; power stays at C0 level
  sim::SimTime exit_latency;   // time to resume execution after wakeup
  double dynamic_fraction;     // residual dynamic power vs. active at same V,f
  double voltage_override;     // operating voltage in this state; <0 = keep
};

constexpr CStateInfo cstate_info(CState s) {
  switch (s) {
    case CState::kC1:
      return CStateInfo{"C1", sim::from_us(2), sim::from_us(2), 0.02, -1.0};
    case CState::kC1E:
      return CStateInfo{"C1E", sim::from_us(20), sim::from_us(25), 0.02, 0.85};
    case CState::kC0:
    default:
      return CStateInfo{"C0", 0, 0, 1.0, -1.0};
  }
}

}  // namespace dimetrodon::power
