#include "power/dvfs.hpp"

#include <cmath>
#include <stdexcept>

namespace dimetrodon::power {

DvfsTable DvfsTable::e5520() {
  // 133 MHz steps from 2.26 GHz down to 1.596 GHz. The VID curve is convex,
  // as on real Nehalem server parts: the top P-states share (nearly) the
  // nominal voltage — shallow frequency scaling only trims dynamic power
  // linearly — while deeper setpoints scale voltage and unlock the quadratic
  // reduction the paper credits VFS with at large temperature reductions
  // (§3.4).
  std::vector<DvfsLevel> levels = {
      {2.261, 1.225}, {2.128, 1.225}, {1.995, 1.213},
      {1.862, 1.181}, {1.729, 1.133}, {1.596, 1.075},
  };
  return DvfsTable(std::move(levels));
}

DvfsTable::DvfsTable(std::vector<DvfsLevel> levels)
    : levels_(std::move(levels)) {
  if (levels_.empty()) throw std::invalid_argument("empty DVFS ladder");
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    if (levels_[i].freq_ghz >= levels_[i - 1].freq_ghz) {
      throw std::invalid_argument("DVFS ladder must be sorted descending");
    }
  }
}

std::size_t DvfsTable::nearest_level(double freq_ghz) const {
  std::size_t best = 0;
  double best_d = std::fabs(levels_[0].freq_ghz - freq_ghz);
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    const double d = std::fabs(levels_[i].freq_ghz - freq_ghz);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace dimetrodon::power
