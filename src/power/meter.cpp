#include "power/meter.hpp"

#include <utility>

namespace dimetrodon::power {

PowerMeter::PowerMeter(Config config, sim::Rng rng)
    : config_(config), rng_(std::move(rng)) {
  gain_ = 1.0 + rng_.normal(0.0, config_.gain_error_stddev);
}

void PowerMeter::sample(sim::SimTime at, double true_watts) {
  const double measured =
      gain_ * true_watts + rng_.normal(0.0, config_.sample_noise_w);
  ++count_;
  sum_w_ += measured;
  const PowerSample s{at, measured};
  if (have_prev_) {
    energy_j_ += 0.5 * (prev_.watts + measured) * sim::to_sec(at - prev_.at);
  }
  prev_ = s;
  have_prev_ = true;
  if (config_.record_samples) samples_.push_back(s);
}

double PowerMeter::measured_energy_joules() const { return energy_j_; }

double PowerMeter::mean_power_w() const {
  return count_ == 0 ? 0.0 : sum_w_ / static_cast<double>(count_);
}

void PowerMeter::reset() {
  samples_.clear();
  count_ = 0;
  sum_w_ = 0.0;
  energy_j_ = 0.0;
  have_prev_ = false;
}

}  // namespace dimetrodon::power
