#pragma once

#include "power/cstate.hpp"
#include "power/dvfs.hpp"

namespace dimetrodon::power {

/// Calibration constants for the simulated Xeon E5520 package (80 W TDP).
/// Defaults reproduce the paper platform's anchors: ~25 W idle package power
/// (C1E, uncore awake), ~65 W under cpuburn, and a leakage component that is
/// a substantial, strongly temperature-dependent fraction of core power —
/// the nonlinearity from which idle-injection's better-than-1:1 efficiencies
/// derive (see DESIGN.md §1).
struct PowerModelParams {
  // Dynamic power of one core at nominal V/f with activity factor 1.0
  // (cpuburn-class switching activity).
  double core_dynamic_nominal_w = 8.0;
  double nominal_freq_ghz = 2.261;
  double nominal_voltage_v = 1.225;

  // Subthreshold leakage per core:
  //   leak = L0 * (V/V0)^2 * exp(k * Tsat * tanh((T - T0) / Tsat)).
  // Near T0 this is the textbook exponential exp(k*(T-T0)); far above it the
  // tanh softly saturates the current (supply series resistance, carrier
  // velocity saturation), bounding the thermal feedback loop.
  double core_leakage_nominal_w = 4.2;   // at T0, V0
  double leakage_ref_temp_c = 60.0;      // T0
  double leakage_temp_coeff = 0.055;     // k (1/°C): doubles every ~12.6 °C
  double leakage_saturation_c = 25.0;    // Tsat

  // Uncore (L3, memory controller, QPI, I/O): always on, mild activity
  // dependence.
  double uncore_base_w = 16.0;
  double uncore_active_w = 4.0;  // extra at full 4-core activity
};

/// Instantaneous operating point of one core, as tracked by the machine.
struct CoreOperatingPoint {
  CState cstate = CState::kC0;
  bool in_transition = false;  // entering/exiting an idle state
  double voltage_v = 1.225;
  double freq_ghz = 2.261;
  double activity = 0.0;    // workload switching-activity factor in [0,1]
  double clock_duty = 1.0;  // p4tcc duty cycle in (0,1]
};

/// Analytic power model: P_core = P_dyn(a, V, f, duty, C-state) +
/// P_leak(V, T_die). Pure function of the operating point and die
/// temperature; the machine queries it every thermal substep so leakage
/// tracks the die temperature trajectory.
class CpuPowerModel {
 public:
  explicit CpuPowerModel(PowerModelParams params = {})
      : params_(params) {}

  const PowerModelParams& params() const { return params_; }

  /// Dynamic (switching) power of one core, watts.
  double core_dynamic_power(const CoreOperatingPoint& op) const;

  /// Leakage power of one core at the given die temperature, watts.
  double core_leakage_power(const CoreOperatingPoint& op,
                            double die_temp_c) const;

  /// Total power of one core, watts.
  double core_power(const CoreOperatingPoint& op, double die_temp_c) const {
    return core_dynamic_power(op) + core_leakage_power(op, die_temp_c);
  }

  /// Uncore power given the mean activity across cores in [0,1].
  double uncore_power(double mean_activity) const;

  /// Voltage actually applied in the operating point's C-state (C1E lowers
  /// it below the DVFS setpoint).
  double effective_voltage(const CoreOperatingPoint& op) const;

 private:
  PowerModelParams params_;
};

}  // namespace dimetrodon::power
