#pragma once

#include <cstddef>
#include <vector>

namespace dimetrodon::power {

/// One voltage/frequency operating point.
struct DvfsLevel {
  double freq_ghz;
  double voltage_v;
};

/// The platform's DVFS ladder. Defaults to the paper's Xeon E5520: 2.26 GHz
/// nominal, scaling "every 133 MHz with a minimum frequency of 1.6 GHz (71% of
/// maximum)" (§3.2). Voltage scales linearly with frequency across the ladder,
/// which gives VFS its near-quadratic power advantage at deep setpoints.
class DvfsTable {
 public:
  /// Build the default E5520 ladder (6 levels, 2.26 down to 1.596 GHz).
  static DvfsTable e5520();

  /// Build a custom ladder; levels must be sorted descending by frequency and
  /// non-empty.
  explicit DvfsTable(std::vector<DvfsLevel> levels);

  std::size_t num_levels() const { return levels_.size(); }
  const DvfsLevel& level(std::size_t i) const { return levels_.at(i); }

  /// Highest-frequency level (index 0): the nominal operating point.
  const DvfsLevel& nominal() const { return levels_.front(); }

  /// Level with frequency closest to `freq_ghz`.
  std::size_t nearest_level(double freq_ghz) const;

 private:
  std::vector<DvfsLevel> levels_;
};

}  // namespace dimetrodon::power
