#pragma once

#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dimetrodon::power {

/// One power measurement sample.
struct PowerSample {
  sim::SimTime at;
  double watts;
};

/// Model of the paper's measurement rig: a Fluke i410 current clamp on the
/// processor power leads feeding a Keithley 2701 multimeter, sampling "three
/// times per millisecond" with clamp accuracy "approximately 3.5%" (§3.3).
/// We model a per-instrument gain error drawn once (clamp calibration) plus
/// per-sample white noise. Energy integration happens over these *measured*
/// samples, exactly as in the paper's energy-validation experiment.
class PowerMeter {
 public:
  struct Config {
    sim::SimTime sample_interval = sim::from_us(333.3);
    double gain_error_stddev = 0.015;   // clamp calibration error, fraction
    double sample_noise_w = 0.4;        // white noise per sample, watts
    bool record_samples = true;         // keep full trace (disable for sweeps)
  };

  PowerMeter(Config config, sim::Rng rng);

  /// Record one reading of the true instantaneous power.
  void sample(sim::SimTime at, double true_watts);

  const std::vector<PowerSample>& samples() const { return samples_; }
  sim::SimTime sample_interval() const { return config_.sample_interval; }

  /// Trapezoidal energy integral of the recorded samples, joules.
  /// Requires record_samples; returns 0 with fewer than two samples.
  double measured_energy_joules() const;

  /// Mean of recorded sample values, watts.
  double mean_power_w() const;

  std::size_t sample_count() const { return count_; }

  /// Reset recorded data (gain error is a property of the physical clamp and
  /// persists).
  void reset();

 private:
  Config config_;
  sim::Rng rng_;
  double gain_;  // multiplicative calibration error, fixed per instrument
  std::vector<PowerSample> samples_;
  std::size_t count_ = 0;
  double sum_w_ = 0.0;
  // Running trapezoid when not recording the full trace.
  double energy_j_ = 0.0;
  bool have_prev_ = false;
  PowerSample prev_{};
};

}  // namespace dimetrodon::power
