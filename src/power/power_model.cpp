#include "power/power_model.hpp"

#include <algorithm>
#include <cmath>

namespace dimetrodon::power {

double CpuPowerModel::effective_voltage(const CoreOperatingPoint& op) const {
  // During entry/exit transitions the core has not yet reached the idle
  // state's operating conditions.
  if (op.in_transition || op.cstate == CState::kC0) return op.voltage_v;
  const CStateInfo info = cstate_info(op.cstate);
  if (info.voltage_override > 0.0) {
    return std::min(op.voltage_v, info.voltage_override);
  }
  return op.voltage_v;
}

double CpuPowerModel::core_dynamic_power(const CoreOperatingPoint& op) const {
  const double v0 = params_.nominal_voltage_v;
  const double f0 = params_.nominal_freq_ghz;
  double activity = std::clamp(op.activity, 0.0, 1.0);
  double duty = std::clamp(op.clock_duty, 0.0, 1.0);
  double v = op.voltage_v;
  double f = op.freq_ghz;
  if (!op.in_transition && op.cstate != CState::kC0) {
    // Idle residual: the halted core keeps a trickle of clocked logic alive.
    activity = cstate_info(op.cstate).dynamic_fraction;
    duty = 1.0;
    v = effective_voltage(op);
  }
  return params_.core_dynamic_nominal_w * activity * duty * (v / v0) *
         (v / v0) * (f / f0);
}

double CpuPowerModel::core_leakage_power(const CoreOperatingPoint& op,
                                         double die_temp_c) const {
  const double v = effective_voltage(op);
  const double v0 = params_.nominal_voltage_v;
  const double t0 = params_.leakage_ref_temp_c;
  // Soft saturation: exponential near T0, flattening far above it so the
  // leakage feedback loop is physically bounded (see PowerModelParams).
  const double tsat = params_.leakage_saturation_c;
  const double dt = tsat * std::tanh((die_temp_c - t0) / tsat);
  return params_.core_leakage_nominal_w * (v / v0) * (v / v0) *
         std::exp(params_.leakage_temp_coeff * dt);
}

double CpuPowerModel::uncore_power(double mean_activity) const {
  return params_.uncore_base_w +
         params_.uncore_active_w * std::clamp(mean_activity, 0.0, 1.0);
}

}  // namespace dimetrodon::power
