#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dimetrodon::trace {

/// Fixed-width text table for benchmark output (the "rows the paper
/// reports"). Columns are sized to fit content; numeric cells should be
/// pre-formatted by the caller.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule. Rows shorter than the header are padded.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string (for table cells).
std::string fmt(const char* format, ...);

}  // namespace dimetrodon::trace
