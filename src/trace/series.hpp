#pragma once

#include <string>
#include <vector>

namespace dimetrodon::trace {

/// One time-series point.
struct SeriesPoint {
  double t;
  double value;
};

/// Bucket-average downsampling: reduce a dense series to at most
/// `max_points` points by averaging within equal-width time buckets.
/// Preserves the mean exactly; used to turn 3 kHz meter traces into
/// plottable figures. Input must be sorted by t.
std::vector<SeriesPoint> downsample(const std::vector<SeriesPoint>& series,
                                    std::size_t max_points);

/// Exponential moving average with time-constant `tau` (same units as t):
/// the smoothing a polling data-acquisition loop applies implicitly.
std::vector<SeriesPoint> ema(const std::vector<SeriesPoint>& series,
                             double tau);

/// Render a series as a fixed-height ASCII chart (rows of '#' columns), the
/// in-terminal rendition of the paper's figures. Returns a multi-line
/// string; `width` columns by `height` rows plus an axis line.
std::string ascii_chart(const std::vector<SeriesPoint>& series,
                        std::size_t width, std::size_t height,
                        const std::string& title = "");

}  // namespace dimetrodon::trace
