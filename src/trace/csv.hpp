#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dimetrodon::trace {

/// Minimal CSV emitter for time series and sweep results (plot-ready output
/// for every figure bench). Values are written with full precision; strings
/// containing commas/quotes are quoted.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row. Throws on I/O error.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::vector<double>& values);

  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& s);

  std::string path_;
  std::ofstream out_;
};

}  // namespace dimetrodon::trace
