#include "trace/series.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dimetrodon::trace {

std::vector<SeriesPoint> downsample(const std::vector<SeriesPoint>& series,
                                    std::size_t max_points) {
  if (max_points == 0 || series.size() <= max_points) return series;
  const double t0 = series.front().t;
  const double t1 = series.back().t;
  const double span = t1 - t0;
  if (span <= 0.0) return {series.front()};
  std::vector<SeriesPoint> out;
  out.reserve(max_points);
  const double bucket = span / static_cast<double>(max_points);
  std::size_t i = 0;
  for (std::size_t b = 0; b < max_points && i < series.size(); ++b) {
    const double hi = t0 + bucket * static_cast<double>(b + 1);
    double sum_t = 0.0;
    double sum_v = 0.0;
    std::size_t n = 0;
    while (i < series.size() &&
           (series[i].t < hi || b + 1 == max_points)) {
      sum_t += series[i].t;
      sum_v += series[i].value;
      ++n;
      ++i;
    }
    if (n > 0) {
      out.push_back(SeriesPoint{sum_t / static_cast<double>(n),
                                sum_v / static_cast<double>(n)});
    }
  }
  return out;
}

std::vector<SeriesPoint> ema(const std::vector<SeriesPoint>& series,
                             double tau) {
  std::vector<SeriesPoint> out;
  out.reserve(series.size());
  double state = 0.0;
  bool first = true;
  double prev_t = 0.0;
  for (const auto& p : series) {
    if (first) {
      state = p.value;
      first = false;
    } else {
      const double dt = p.t - prev_t;
      const double alpha = tau <= 0.0 ? 1.0 : 1.0 - std::exp(-dt / tau);
      state += alpha * (p.value - state);
    }
    prev_t = p.t;
    out.push_back(SeriesPoint{p.t, state});
  }
  return out;
}

std::string ascii_chart(const std::vector<SeriesPoint>& series,
                        std::size_t width, std::size_t height,
                        const std::string& title) {
  if (series.empty() || width == 0 || height == 0) return "(empty series)\n";
  const auto resampled = downsample(series, width);
  double lo = resampled.front().value;
  double hi = lo;
  for (const auto& p : resampled) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  std::vector<std::string> rows(height, std::string(resampled.size(), ' '));
  for (std::size_t c = 0; c < resampled.size(); ++c) {
    const double frac = (resampled[c].value - lo) / (hi - lo);
    const auto level = static_cast<std::size_t>(
        std::lround(frac * static_cast<double>(height - 1)));
    for (std::size_t r = 0; r <= level; ++r) {
      rows[height - 1 - r][c] = r == level ? '#' : '.';
    }
  }
  std::string out;
  if (!title.empty()) out += title + "\n";
  char label[64];
  std::snprintf(label, sizeof label, "%8.2f |", hi);
  out += label + rows.front() + "\n";
  for (std::size_t r = 1; r + 1 < height; ++r) {
    out += "         |" + rows[r] + "\n";
  }
  std::snprintf(label, sizeof label, "%8.2f |", lo);
  out += label + rows.back() + "\n";
  std::snprintf(label, sizeof label, "          t: %.2f .. %.2f\n",
                series.front().t, series.back().t);
  out += label;
  return out;
}

}  // namespace dimetrodon::trace
