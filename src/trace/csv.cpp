#include "trace/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace dimetrodon::trace {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  write_row(header);
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string q = "\"";
  for (const char c : s) {
    if (c == '"') q += "\"\"";
    else q += c;
  }
  q += '"';
  return q;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values) {
  char buf[64];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_ << ',';
    std::snprintf(buf, sizeof buf, "%.10g", values[i]);
    out_ << buf;
  }
  out_ << '\n';
}

}  // namespace dimetrodon::trace
