#include "trace/table.hpp"

#include <cstdarg>
#include <cstdio>

namespace dimetrodon::trace {

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

}  // namespace dimetrodon::trace
