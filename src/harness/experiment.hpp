#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "control/governor.hpp"
#include "core/controller.hpp"
#include "obs/counters.hpp"
#include "obs/trace_sink.hpp"
#include "sched/machine.hpp"
#include "workload/web.hpp"
#include "workload/workload.hpp"

namespace dimetrodon::harness {

/// Measurement methodology shared by all experiments, mirroring the paper's:
/// let the system reach thermal steady state (they ran ~300 s; we accelerate
/// the heatsink time constant with run/jump iterations), then average the
/// quantized per-core sensors over a 30 s window and differentiate workload
/// progress into throughput over the same window (§3.4).
struct MeasurementConfig {
  int max_settle_iterations = 6;
  sim::SimTime settle_chunk = sim::from_sec(8);
  double settle_tolerance_c = 0.15;   // exact-temp movement per jump
  sim::SimTime post_settle_run = sim::from_sec(3);
  sim::SimTime measure_window = sim::from_sec(30);
  sim::SimTime sensor_poll = sim::from_ms(500);
};

/// How a run is thermally actuated: configures the machine (and possibly
/// attaches a Dimetrodon controller) before the workload deploys.
struct ActuationSetup {
  std::string label;
  std::function<std::shared_ptr<core::DimetrodonController>(sched::Machine&)>
      configure;  // may return nullptr (hardware-only actuations)
};

/// The actuation catalogue: every baseline technique and the Dimetrodon
/// configurations from the paper's comparisons, under one namespace.
/// (Labels are stable identifiers consumed by CSV output and tests.)
namespace actuation {

/// Unconstrained baseline ("race-to-idle").
ActuationSetup none();
/// Global Dimetrodon policy with the paper's Bernoulli injection.
ActuationSetup dimetrodon(double probability, sim::SimTime quantum);
/// Global Dimetrodon policy with deterministic (stratified) injection.
ActuationSetup dimetrodon_stratified(double probability, sim::SimTime quantum);
/// Static DVFS setpoint (ladder index).
ActuationSetup vfs(std::size_t level);
/// Static p4tcc clock-duty setpoint (step 1..8).
ActuationSetup tcc(std::size_t duty_step);
/// Closed-loop governed injection (src/control): a Dimetrodon controller
/// behind an InjectionArbiter, with the spec'd governor sampling the
/// machine's quantized sensors. `preventive_p > 0` additionally engages the
/// arbiter's open-loop preventive channel at that duty, so the governor can
/// only raise the resolved duty above the preventive floor
/// (max-probability-wins). The returned controller keeps the arbiter and
/// driver alive for as long as the harness holds it.
ActuationSetup governed(control::GovernorSpec spec, double preventive_p = 0.0,
                        sim::SimTime preventive_quantum = sim::from_ms(100));

}  // namespace actuation

/// Outcome of one steady-state measured run.
struct RunResult {
  std::string label;
  double idle_sensor_temp_c = 0.0;  // machine at idle, quantized sensors
  double idle_exact_temp_c = 0.0;
  double avg_sensor_temp_c = 0.0;   // measured over the window
  double avg_exact_temp_c = 0.0;
  double throughput = 0.0;          // workload progress per second
  double avg_power_w = 0.0;         // true energy over window / window
  double injected_idle_fraction = 0.0;  // of total core-time in window
  double sim_seconds = 0.0;  // total simulated time incl. settling
  /// QoS latency buckets; engaged only for web workloads.
  std::optional<workload::WebWorkload::QosStats> qos;
  /// Structured counter totals accrued inside the measurement window
  /// (settling excluded), from the machine's always-on registry.
  obs::CounterTotals counters;
};

/// Derived trade-off versus an unconstrained baseline run — the paper's
/// reporting currency. `r` follows the paper's definition: the reduction of
/// the temperature rise over idle ("an idle temperature of 40C, an
/// unconstrained temperature 60C, and a resulting temperature of 50C would
/// constitute a 50% reduction", §3.4).
struct Tradeoff {
  double temp_reduction = 0.0;        // r, from quantized sensors
  double temp_reduction_exact = 0.0;  // r, from continuous model state
  double throughput_retained = 1.0;
  double throughput_reduction = 0.0;
  double efficiency = 0.0;            // temp_reduction / throughput_reduction
};

Tradeoff compute_tradeoff(const RunResult& baseline, const RunResult& run);

/// Outcome of a finite (run-to-completion or fixed-window) run — the model
/// validation experiments of §3.3.
struct WindowResult {
  double completion_seconds = -1.0;  // -1 if workload did not finish
  double meter_energy_j = 0.0;       // through the noisy clamp+multimeter
  double true_energy_j = 0.0;
  double mean_power_w = 0.0;
  double wall_seconds = 0.0;
};

/// Thrown when a simulation dies mid-run. Prefixes the failing measurement
/// phase ("setup", "settle", "measure-window", ...) onto the underlying
/// message, so a sweep-level RunError says *where* the run died, not just
/// what threw ("settle: thermal step matrix is singular").
class MeasurementError : public std::runtime_error {
 public:
  MeasurementError(std::string phase, const std::string& what)
      : std::runtime_error(phase + ": " + what), phase_(std::move(phase)) {}
  const std::string& phase() const { return phase_; }

 private:
  std::string phase_;
};

/// Builds fresh, identically seeded machines per run so configurations are
/// compared under identical stochastic conditions.
class ExperimentRunner {
 public:
  using WorkloadFactory =
      std::function<std::unique_ptr<workload::Workload>()>;
  /// Invoked after workload deployment: per-thread policy configuration
  /// (Fig. 5) and other experiment-specific setup.
  using PostDeployHook = std::function<void(
      sched::Machine&, workload::Workload&, core::DimetrodonController*)>;

  ExperimentRunner(sched::MachineConfig base, MeasurementConfig mc);

  /// Builder-style configuration. The machine config is fixed at
  /// construction; targeted tweaks go through `with_config`, which applies
  /// `fn` to the stored base config and returns *this for chaining. This
  /// replaces the old mutable_base_config() escape hatch: every mutation now
  /// happens through a named, greppable call.
  ExperimentRunner& with_config(
      const std::function<void(sched::MachineConfig&)>& fn);

  /// Attach structured tracing to every machine this runner builds: the
  /// factory is invoked once per constructed machine (src/obs).
  ExperimentRunner& with_trace(obs::SinkFactory factory);

  /// Steady-state measured run (temperature/throughput experiments).
  RunResult measure(const WorkloadFactory& factory,
                    const ActuationSetup& actuation,
                    const PostDeployHook& post_deploy = {});

  // --- warm-start (shared warmup prefix via machine snapshots) -------------
  /// Build a machine, deploy the workload, run it *unactuated* for `warmup`,
  /// and capture the complete machine state. Sweep points that share the
  /// same (machine config, workload, seed, warmup) prefix fork from one
  /// cached snapshot instead of each re-simulating the prefix. Throws if the
  /// machine or workload is not snapshot-capable (see Machine::snapshot).
  sched::MachineSnapshot build_warmup_snapshot(const WorkloadFactory& factory,
                                               sim::SimTime warmup);

  /// Fork a measured run from a warmup snapshot: fresh machine, identical
  /// workload deployed, state restored, THEN the actuation applied, then the
  /// standard settle + measure-window methodology. Bit-identical to
  /// measure_after_warmup with the same arguments (fork ≡ replay).
  RunResult measure_warm(const WorkloadFactory& factory,
                         const ActuationSetup& actuation,
                         const sched::MachineSnapshot& snap,
                         const PostDeployHook& post_deploy = {});

  /// Reference path for the fork ≡ replay invariant: identical to
  /// measure_warm except the warmup prefix is re-simulated inline instead of
  /// restored from a snapshot.
  RunResult measure_after_warmup(const WorkloadFactory& factory,
                                 const ActuationSetup& actuation,
                                 sim::SimTime warmup,
                                 const PostDeployHook& post_deploy = {});

  /// Run a finite workload to completion (bounded by `deadline`); meter on.
  WindowResult run_to_completion(const WorkloadFactory& factory,
                                 const ActuationSetup& actuation,
                                 sim::SimTime deadline,
                                 const PostDeployHook& post_deploy = {});

  /// Run for a fixed wall-clock window (the race-to-idle side of the energy
  /// comparison); meter on.
  WindowResult run_window(const WorkloadFactory& factory,
                          const ActuationSetup& actuation, sim::SimTime window,
                          const PostDeployHook& post_deploy = {});

  const sched::MachineConfig& base_config() const { return base_; }
  const MeasurementConfig& measurement_config() const { return mc_; }

 private:
  double mean_exact_temp(const sched::Machine& m) const;
  /// Settle + measurement-window tail shared by measure / measure_warm /
  /// measure_after_warmup; takes over with the machine actuated and the
  /// workload deployed. `phase` is the caller's MeasurementError context.
  RunResult finish_measurement(
      sched::Machine& machine, workload::Workload& wl,
      const std::shared_ptr<core::DimetrodonController>& controller,
      RunResult result, const char*& phase);
  RunResult measure_warm_impl(const WorkloadFactory& factory,
                              const ActuationSetup& actuation,
                              const sched::MachineSnapshot* snap,
                              sim::SimTime warmup,
                              const PostDeployHook& post_deploy);

  sched::MachineConfig base_;
  MeasurementConfig mc_;
};

}  // namespace dimetrodon::harness
