#include "harness/experiment.hpp"

#include <cmath>
#include <utility>

#include "analysis/stats.hpp"
#include "control/arbiter.hpp"
#include "control/driver.hpp"
#include "trace/table.hpp"

namespace dimetrodon::harness {

namespace actuation {

ActuationSetup none() {
  return ActuationSetup{"race-to-idle",
                        [](sched::Machine&) { return nullptr; }};
}

ActuationSetup dimetrodon(double probability, sim::SimTime quantum) {
  return ActuationSetup{
      trace::fmt("dimetrodon[p=%.2f,L=%.0fms]", probability,
                 sim::to_ms(quantum)),
      [probability, quantum](sched::Machine& m) {
        auto ctl = std::make_shared<core::DimetrodonController>(m);
        ctl->sys_set_global(probability, quantum);
        return ctl;
      }};
}

ActuationSetup dimetrodon_stratified(double probability,
                                     sim::SimTime quantum) {
  return ActuationSetup{
      trace::fmt("dimetrodon-det[p=%.2f,L=%.0fms]", probability,
                 sim::to_ms(quantum)),
      [probability, quantum](sched::Machine& m) {
        auto ctl = std::make_shared<core::DimetrodonController>(
            m, std::make_unique<core::StratifiedInjection>());
        ctl->sys_set_global(probability, quantum);
        return ctl;
      }};
}

ActuationSetup vfs(std::size_t level) {
  return ActuationSetup{trace::fmt("vfs[level=%zu]", level),
                        [level](sched::Machine& m) {
                          m.set_all_dvfs_levels(level);
                          return nullptr;
                        }};
}

ActuationSetup tcc(std::size_t duty_step) {
  return ActuationSetup{trace::fmt("p4tcc[step=%zu]", duty_step),
                        [duty_step](sched::Machine& m) {
                          m.set_all_clock_duty_steps(duty_step);
                          return nullptr;
                        }};
}

ActuationSetup governed(control::GovernorSpec spec, double preventive_p,
                        sim::SimTime preventive_quantum) {
  // The harness holds only a shared_ptr<DimetrodonController>; the arbiter
  // and driver ride along via the aliasing constructor so the whole control
  // loop shares one lifetime.
  struct Bundle {
    std::shared_ptr<core::DimetrodonController> controller;
    std::unique_ptr<control::InjectionArbiter> arbiter;
    std::unique_ptr<control::GovernorDriver> driver;
  };
  std::string label = control::governor_label(spec);
  if (preventive_p > 0.0) {
    label += trace::fmt("+base=%.2f", preventive_p);
  }
  return ActuationSetup{
      std::move(label),
      [spec, preventive_p, preventive_quantum](sched::Machine& m) {
        auto bundle = std::make_shared<Bundle>();
        bundle->controller = std::make_shared<core::DimetrodonController>(m);
        bundle->arbiter =
            std::make_unique<control::InjectionArbiter>(*bundle->controller);
        if (preventive_p > 0.0) {
          bundle->arbiter
              ->claim(control::InjectionArbiter::Channel::kPreventive,
                      "preventive")
              .request(preventive_p, preventive_quantum);
        }
        bundle->driver = std::make_unique<control::GovernorDriver>(
            m, *bundle->arbiter, spec);
        return std::shared_ptr<core::DimetrodonController>(
            bundle, bundle->controller.get());
      }};
}

}  // namespace actuation

Tradeoff compute_tradeoff(const RunResult& baseline, const RunResult& run) {
  Tradeoff t;
  const double rise_sensor =
      baseline.avg_sensor_temp_c - baseline.idle_sensor_temp_c;
  const double rise_exact =
      baseline.avg_exact_temp_c - baseline.idle_exact_temp_c;
  if (rise_sensor > 1e-9) {
    t.temp_reduction =
        (baseline.avg_sensor_temp_c - run.avg_sensor_temp_c) / rise_sensor;
  }
  if (rise_exact > 1e-9) {
    t.temp_reduction_exact =
        (baseline.avg_exact_temp_c - run.avg_exact_temp_c) / rise_exact;
  }
  if (baseline.throughput > 1e-12) {
    t.throughput_retained = run.throughput / baseline.throughput;
  }
  t.throughput_reduction = 1.0 - t.throughput_retained;
  t.efficiency = t.throughput_reduction <= 1e-9
                     ? 1e9
                     : t.temp_reduction / t.throughput_reduction;
  return t;
}

ExperimentRunner::ExperimentRunner(sched::MachineConfig base,
                                   MeasurementConfig mc)
    : base_(std::move(base)), mc_(mc) {}

ExperimentRunner& ExperimentRunner::with_config(
    const std::function<void(sched::MachineConfig&)>& fn) {
  if (fn) fn(base_);
  return *this;
}

ExperimentRunner& ExperimentRunner::with_trace(obs::SinkFactory factory) {
  base_.trace_sink_factory = std::move(factory);
  return *this;
}

double ExperimentRunner::mean_exact_temp(const sched::Machine& m) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < m.num_cores(); ++i) {
    sum += m.die_temperature(static_cast<sched::CoreId>(i));
  }
  return sum / static_cast<double>(m.num_cores());
}

RunResult ExperimentRunner::measure(const WorkloadFactory& factory,
                                    const ActuationSetup& actuation,
                                    const PostDeployHook& post_deploy) {
  // Phase bookkeeping for MeasurementError: updated as the run progresses so
  // a throw anywhere below reports the stage it died in.
  const char* phase = "setup";
  try {
  sched::MachineConfig cfg = base_;
  cfg.enable_meter = false;  // sweeps don't need the sampled meter
  sched::Machine machine(cfg);

  RunResult result;
  result.label = actuation.label;
  result.idle_sensor_temp_c = machine.mean_sensor_temp();
  result.idle_exact_temp_c = mean_exact_temp(machine);

  auto controller = actuation.configure(machine);
  auto wl = factory();
  wl->deploy(machine);
  if (post_deploy) post_deploy(machine, *wl, controller.get());

  return finish_measurement(machine, *wl, controller, std::move(result),
                            phase);
  } catch (const MeasurementError&) {
    throw;
  } catch (const std::exception& e) {
    throw MeasurementError(phase, e.what());
  }
}

RunResult ExperimentRunner::finish_measurement(
    sched::Machine& machine, workload::Workload& wl,
    const std::shared_ptr<core::DimetrodonController>& controller,
    RunResult result, const char*& phase) {
  // Accelerated settling: run, then jump the slow thermal nodes to the
  // steady state of the observed average power; stop when a jump no longer
  // moves the temperature.
  phase = "settle";
  for (int iter = 0; iter < mc_.max_settle_iterations; ++iter) {
    machine.mark_power_window();
    machine.run_for(mc_.settle_chunk);
    const double before = mean_exact_temp(machine);
    machine.jump_to_average_power_steady_state();
    const double after = mean_exact_temp(machine);
    if (std::fabs(after - before) < mc_.settle_tolerance_c) break;
  }
  machine.run_for(mc_.post_settle_run);

  // Measurement window.
  phase = "measure-window";
  const double progress0 = wl.progress(machine);
  const double energy0 = machine.energy().total_joules();
  // Injected idle accrues at the controller under suspension semantics and
  // at the cores under the literal idle-the-core mechanism; sum both.
  auto injected_seconds = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < machine.num_cores(); ++i) {
      s += machine.core(static_cast<sched::CoreId>(i)).injected_idle_seconds;
    }
    if (controller) s += sim::to_sec(controller->stats().injected_idle);
    return s;
  };
  const double injected0 = injected_seconds();
  const obs::CounterTotals counters0 = machine.counters().totals();
  auto* web = dynamic_cast<workload::WebWorkload*>(&wl);
  if (web != nullptr) web->mark();

  analysis::OnlineStats sensor_stats;
  analysis::OnlineStats exact_stats;
  sim::SimTime elapsed = 0;
  while (elapsed < mc_.measure_window) {
    const sim::SimTime step =
        std::min(mc_.sensor_poll, mc_.measure_window - elapsed);
    machine.run_for(step);
    elapsed += step;
    sensor_stats.add(machine.mean_sensor_temp());
    exact_stats.add(mean_exact_temp(machine));
  }

  const double window_s = sim::to_sec(mc_.measure_window);
  result.avg_sensor_temp_c = sensor_stats.mean();
  result.avg_exact_temp_c = exact_stats.mean();
  result.throughput = (wl.progress(machine) - progress0) / window_s;
  result.avg_power_w =
      (machine.energy().total_joules() - energy0) / window_s;
  result.injected_idle_fraction =
      (injected_seconds() - injected0) /
      (window_s * static_cast<double>(machine.num_cores()));
  result.counters = machine.counters().totals() - counters0;
  if (web != nullptr) result.qos = web->stats_since_mark();
  result.sim_seconds = sim::to_sec(machine.now());
  return result;
}

sched::MachineSnapshot ExperimentRunner::build_warmup_snapshot(
    const WorkloadFactory& factory, sim::SimTime warmup) {
  const char* phase = "warmup-build";
  try {
    sched::MachineConfig cfg = base_;
    cfg.enable_meter = false;
    sched::Machine machine(cfg);
    auto wl = factory();
    wl->deploy(machine);
    machine.run_for(warmup);
    return machine.snapshot();
  } catch (const MeasurementError&) {
    throw;
  } catch (const std::exception& e) {
    throw MeasurementError(phase, e.what());
  }
}

RunResult ExperimentRunner::measure_warm(const WorkloadFactory& factory,
                                         const ActuationSetup& actuation,
                                         const sched::MachineSnapshot& snap,
                                         const PostDeployHook& post_deploy) {
  return measure_warm_impl(factory, actuation, &snap, 0, post_deploy);
}

RunResult ExperimentRunner::measure_after_warmup(
    const WorkloadFactory& factory, const ActuationSetup& actuation,
    sim::SimTime warmup, const PostDeployHook& post_deploy) {
  return measure_warm_impl(factory, actuation, nullptr, warmup, post_deploy);
}

RunResult ExperimentRunner::measure_warm_impl(
    const WorkloadFactory& factory, const ActuationSetup& actuation,
    const sched::MachineSnapshot* snap, sim::SimTime warmup,
    const PostDeployHook& post_deploy) {
  const char* phase = "setup";
  try {
    sched::MachineConfig cfg = base_;
    cfg.enable_meter = false;
    sched::Machine machine(cfg);

    RunResult result;
    result.label = actuation.label;
    result.idle_sensor_temp_c = machine.mean_sensor_temp();
    result.idle_exact_temp_c = mean_exact_temp(machine);

    auto wl = factory();
    wl->deploy(machine);

    // The warmup prefix runs unactuated; the actuation attaches only after
    // it, so every point sharing the prefix sees the identical pre-actuation
    // state whether it was restored or replayed.
    phase = "warmup";
    if (snap != nullptr) {
      machine.restore(*snap);
    } else {
      machine.run_for(warmup);
    }

    phase = "actuate";
    auto controller = actuation.configure(machine);
    if (post_deploy) post_deploy(machine, *wl, controller.get());

    return finish_measurement(machine, *wl, controller, std::move(result),
                              phase);
  } catch (const MeasurementError&) {
    throw;
  } catch (const std::exception& e) {
    throw MeasurementError(phase, e.what());
  }
}

WindowResult ExperimentRunner::run_to_completion(
    const WorkloadFactory& factory, const ActuationSetup& actuation,
    sim::SimTime deadline, const PostDeployHook& post_deploy) {
  const char* phase = "setup";
  try {
  sched::MachineConfig cfg = base_;
  cfg.enable_meter = true;
  sched::Machine machine(cfg);
  auto controller = actuation.configure(machine);
  auto wl = factory();
  wl->deploy(machine);
  if (post_deploy) post_deploy(machine, *wl, controller.get());

  const auto all_done = [&]() {
    for (const auto tid : wl->threads()) {
      if (machine.thread(tid).state() != sched::ThreadState::kDone) {
        return false;
      }
    }
    return true;
  };
  phase = "completion-run";
  const bool finished = machine.run_until_condition(all_done, deadline);

  WindowResult r;
  r.wall_seconds = sim::to_sec(machine.now());
  r.completion_seconds = finished ? sim::to_sec(machine.now()) : -1.0;
  r.meter_energy_j = machine.meter()->measured_energy_joules();
  r.true_energy_j = machine.energy().total_joules();
  r.mean_power_w = machine.meter()->mean_power_w();
  return r;
  } catch (const MeasurementError&) {
    throw;
  } catch (const std::exception& e) {
    throw MeasurementError(phase, e.what());
  }
}

WindowResult ExperimentRunner::run_window(const WorkloadFactory& factory,
                                          const ActuationSetup& actuation,
                                          sim::SimTime window,
                                          const PostDeployHook& post_deploy) {
  const char* phase = "setup";
  try {
  sched::MachineConfig cfg = base_;
  cfg.enable_meter = true;
  sched::Machine machine(cfg);
  auto controller = actuation.configure(machine);
  auto wl = factory();
  wl->deploy(machine);
  if (post_deploy) post_deploy(machine, *wl, controller.get());

  // Track completion time while running out the window.
  phase = "window-run";
  double completion = -1.0;
  const auto all_done = [&]() {
    for (const auto tid : wl->threads()) {
      if (machine.thread(tid).state() != sched::ThreadState::kDone) {
        return false;
      }
    }
    return true;
  };
  if (machine.run_until_condition(all_done, window)) {
    completion = sim::to_sec(machine.now());
    machine.run_until(window);
  }

  WindowResult r;
  r.wall_seconds = sim::to_sec(machine.now());
  r.completion_seconds = completion;
  r.meter_energy_j = machine.meter()->measured_energy_joules();
  r.true_energy_j = machine.energy().total_joules();
  r.mean_power_w = machine.meter()->mean_power_w();
  return r;
  } catch (const MeasurementError&) {
    throw;
  } catch (const std::exception& e) {
    throw MeasurementError(phase, e.what());
  }
}

}  // namespace dimetrodon::harness
