#pragma once

#include <cstdint>

#include "power/power_model.hpp"
#include "sched/thread.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace dimetrodon::sched {

/// What a core is doing right now (drives the power model and accounting).
enum class CoreActivity : std::uint8_t {
  kExecuting,       // running a thread (includes context-switch overhead)
  kIdleEntering,    // transitioning into the idle C-state
  kIdle,            // resident in the idle C-state
  kIdleExiting,     // transitioning back to C0
};

/// Per-core execution state, owned by the Machine.
struct Core {
  CoreId id = 0;

  Thread* current = nullptr;
  ThreadId last_thread = kInvalidThread;  // affinity / context-switch check

  CoreActivity activity = CoreActivity::kIdle;
  bool injected_idle = false;      // current idle is a Dimetrodon quantum
  Thread* injection_victim = nullptr;

  power::CoreOperatingPoint op;    // consumed by the power model
  std::size_t dvfs_level = 0;
  std::size_t duty_step_user = 8;  // software-requested TCC duty step

  sim::EventHandle timer;          // segment end / idle-quantum end
  sim::EventHandle transition_timer;

  // Execution segment bookkeeping.
  sim::SimTime segment_start = 0;      // when useful execution began
  sim::SimTime quantum_deadline = 0;   // end of the current timeslice
  double quantum_ran_seconds = 0.0;    // CPU time consumed this timeslice
  sim::SimTime idle_settled_at = 0;    // when the idle C-state was reached

  // Statistics.
  double busy_seconds = 0.0;
  double idle_seconds = 0.0;
  double injected_idle_seconds = 0.0;
  std::uint64_t dispatches = 0;
  std::uint64_t injections = 0;
  std::uint64_t context_switches = 0;

  /// Work completion rate relative to nominal: (f/f0) * effective clock
  /// duty. TCC-style duty cycling costs more throughput than its duty factor
  /// alone: every stop-clock window drains and refills the pipeline, so an
  /// overhead proportional to the gated fraction is charged (the reason
  /// p4tcc fails to reach 1:1 trade-offs in the paper's Figure 4).
  double execution_rate(double nominal_freq_ghz,
                        double modulation_overhead) const {
    const double duty_eff =
        op.clock_duty * (1.0 - modulation_overhead * (1.0 - op.clock_duty));
    return (op.freq_ghz / nominal_freq_ghz) * duty_eff;
  }

  bool is_idle() const {
    return activity == CoreActivity::kIdle ||
           activity == CoreActivity::kIdleEntering;
  }
};

}  // namespace dimetrodon::sched
