#include "sched/runqueue.hpp"

#include <algorithm>
#include <cassert>

namespace dimetrodon::sched {

int RunQueue::priority_of(const Thread& t) {
  if (t.thread_class() == ThreadClass::kKernel) return kPriKernel;
  // pri = PUSER + estcpu/4 + 2*nice, clamped — the classic 4.4BSD formula.
  const int pri = kPriUserBase + static_cast<int>(t.estcpu() / 4.0) +
                  2 * t.nice();
  return std::clamp(pri, kPriUserBase, kPriMax);
}

void RunQueue::enqueue(Thread* t) {
  assert(t != nullptr);
  buckets_[static_cast<std::size_t>(priority_of(*t) / 4)].push_back(t);
  ++size_;
}

void RunQueue::enqueue_front(Thread* t) {
  assert(t != nullptr);
  buckets_[static_cast<std::size_t>(priority_of(*t) / 4)].push_front(t);
  ++size_;
}

Thread* RunQueue::pick(CoreId core) {
  for (auto& bucket : buckets_) {
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if ((*it)->runnable_on(core)) {
        Thread* t = *it;
        bucket.erase(it);
        --size_;
        return t;
      }
    }
  }
  return nullptr;
}

Thread* RunQueue::peek(CoreId core) const {
  for (const auto& bucket : buckets_) {
    for (Thread* t : bucket) {
      if (t->runnable_on(core)) return t;
    }
  }
  return nullptr;
}

void RunQueue::drain_all(std::vector<Thread*>& out) {
  for (auto& bucket : buckets_) {
    for (Thread* t : bucket) out.push_back(t);
    bucket.clear();
  }
  size_ = 0;
}

bool RunQueue::remove(Thread* t) {
  for (auto& bucket : buckets_) {
    auto it = std::find(bucket.begin(), bucket.end(), t);
    if (it != bucket.end()) {
      bucket.erase(it);
      --size_;
      return true;
    }
  }
  return false;
}

}  // namespace dimetrodon::sched
