#include "sched/scheduler.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dimetrodon::sched {

void Scheduler::snapshot_queue(std::vector<Thread*>& /*out*/) const {
  throw std::runtime_error(
      "this scheduler does not support machine snapshots");
}

void BsdScheduler::enqueue(Thread& t) { queue_.enqueue(&t); }

void BsdScheduler::enqueue_front(Thread& t) { queue_.enqueue_front(&t); }

Thread* BsdScheduler::pick_next(CoreId core, sim::SimTime /*now*/) {
  return queue_.pick(core);
}

void BsdScheduler::charge(Thread& t, double ran_seconds) {
  t.set_estcpu(t.estcpu() + config_.estcpu_per_cpu_second * ran_seconds);
}

void BsdScheduler::quantum_expired(Thread& t, double ran_seconds,
                                   sim::SimTime /*now*/) {
  charge(t, ran_seconds);
  queue_.enqueue(&t);
}

void BsdScheduler::thread_stopped(Thread& t, double ran_seconds,
                                  sim::SimTime /*now*/) {
  charge(t, ran_seconds);
}

void BsdScheduler::dequeue(Thread& t) { queue_.remove(&t); }

void BsdScheduler::apply_sleep_decay(Thread& t, double slept_seconds) {
  if (slept_seconds <= 0.0) return;
  t.set_estcpu(t.estcpu() *
               std::pow(config_.sleep_decay_per_second, slept_seconds));
}

void BsdScheduler::periodic(std::size_t runnable_threads,
                            sim::SimTime /*now*/) {
  // schedcpu: estcpu *= (2*load) / (2*load + 1), once per second. We only
  // decay queued threads here; running threads decay when they next stop,
  // which is equivalent at our timescales.
  const double load = static_cast<double>(runnable_threads);
  const double decay = (2.0 * load) / (2.0 * load + 1.0);
  // Decay by re-bucketing: drain and reinsert so priorities stay consistent.
  std::vector<Thread*> drained;
  drained.reserve(queue_.size());
  queue_.drain_all(drained);
  for (Thread* t : drained) {
    t->set_estcpu(t->estcpu() * decay);
    queue_.enqueue(t);
  }
}

}  // namespace dimetrodon::sched
