#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <vector>

#include "sched/thread.hpp"

namespace dimetrodon::sched {

/// 4.4BSD-style multi-level run queue: 64 buckets of 4 priority values each,
/// round robin within a bucket (the structure of FreeBSD 7.2's default
/// scheduler, which the paper modified). Priorities grow with accumulated CPU
/// usage (estcpu) and nice, so CPU hogs sink below interactive threads.
class RunQueue {
 public:
  static constexpr int kNumBuckets = 64;
  static constexpr int kPriKernel = 16;   // interrupt/kernel threads
  static constexpr int kPriUserBase = 120;  // PUSER-like base
  static constexpr int kPriMax = 255;

  /// BSD priority for a thread from its class, estcpu and nice.
  static int priority_of(const Thread& t);

  /// Insert at the tail of its priority bucket.
  void enqueue(Thread* t);

  /// Insert at the head of its priority bucket (used to return a thread that
  /// was displaced by an injected idle quantum without losing its turn).
  void enqueue_front(Thread* t);

  /// Pop the best thread eligible to run on `core` (honors pins/affinity).
  /// Returns nullptr if none.
  Thread* pick(CoreId core);

  /// Best eligible thread without removing it.
  Thread* peek(CoreId core) const;

  /// Remove a specific thread (e.g. it exited while queued). Returns true if
  /// it was present.
  bool remove(Thread* t);

  /// Remove every queued thread, appending them to `out` in priority order
  /// (used by the schedcpu decay pass, which must re-bucket all threads
  /// including pinned ones).
  void drain_all(std::vector<Thread*>& out);

  /// Append every queued thread to `out` in dequeue order (bucket-major,
  /// FIFO within bucket) without disturbing the queue. Re-enqueueing them in
  /// this order into an empty queue — after their estcpu/nice have been
  /// restored — reproduces the bucket contents exactly (snapshot support).
  void queued_in_order(std::vector<Thread*>& out) const {
    for (const auto& bucket : buckets_) {
      for (Thread* t : bucket) out.push_back(t);
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  std::array<std::deque<Thread*>, kNumBuckets> buckets_{};
  std::size_t size_ = 0;
};

}  // namespace dimetrodon::sched
