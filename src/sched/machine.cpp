#include "sched/machine.hpp"

#include <algorithm>

#include "power/clock_modulation.hpp"
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace dimetrodon::sched {

namespace {
// Work below two nanoseconds of nominal execution is floating-point residue
// from segment accounting (event times are integer nanoseconds), not real
// work; treating it as pending would schedule zero-length segments.
constexpr double kWorkEpsilon = 2e-9;
}  // namespace

Machine::Machine(MachineConfig config)
    : config_(std::move(config)),
      master_rng_(config_.seed),
      power_model_(config_.power),
      energy_(config_.num_cores) {
  config_.floorplan.num_cores = config_.num_cores;
  nodes_ = thermal::build_server_floorplan(network_, config_.floorplan);
  sensors_.reserve(config_.num_cores);
  for (std::size_t i = 0; i < config_.num_cores; ++i) {
    sensors_.emplace_back(network_, nodes_.die[i]);
  }
  const std::size_t logical_cpus =
      config_.num_cores * (config_.smt_enabled ? 2 : 1);
  cores_.reserve(logical_cpus);
  const auto& nominal = config_.dvfs.nominal();
  for (std::size_t i = 0; i < logical_cpus; ++i) {
    Core c;
    c.id = static_cast<CoreId>(i);
    c.activity = CoreActivity::kIdle;
    c.op.cstate = config_.idle_cstate;
    c.op.in_transition = false;
    c.op.activity = 0.0;
    c.op.voltage_v = nominal.voltage_v;
    c.op.freq_ghz = nominal.freq_ghz;
    c.op.clock_duty = 1.0;
    cores_.push_back(c);
  }
  window_node_joules_.assign(network_.node_count(), 0.0);
  tracer_.counters().resize(cores_.size());
  if (config_.trace_sink_factory) {
    if (auto sink = config_.trace_sink_factory()) {
      tracer_.attach(std::move(sink));
      schedule_trace_sensor();
    }
  }

  if (config_.start_at_idle_equilibrium) {
    // Fixed-point iteration: leakage depends on die temperature which depends
    // on leakage. Converges quickly because the loop gain is < 1.
    for (int iter = 0; iter < 32; ++iter) {
      for (std::size_t i = 0; i < config_.num_cores; ++i) {
        network_.set_power(nodes_.die[i], physical_core_power(i));
      }
      network_.set_power(nodes_.package,
                         power_model_.uncore_power(mean_c0_activity()));
      network_.solve_steady_state();
    }
  }

  if (config_.scheduler_kind == SchedulerKind::kUle) {
    scheduler_ = std::make_unique<UleScheduler>(cores_.size(), config_.ule);
  } else {
    scheduler_ = std::make_unique<BsdScheduler>(config_.scheduler);
  }
  if (config_.enable_meter) {
    meter_.emplace(config_.meter, master_rng_.fork());
    schedule_meter_sample();
  }
  tm_active_.assign(config_.num_cores, false);
  if (config_.thermal_reference_stepper) {
    schedule_substep();
  } else {
    schedule_thermal_watchdog();
  }
  schedule_schedcpu();
  if (config_.hw_thermal_throttle) schedule_thermal_monitor();
}

// --------------------------------------------------------------------------
// Physics
// --------------------------------------------------------------------------

double Machine::physical_core_power(std::size_t phys) const {
  // Dynamic power sums over the hardware contexts sharing the die; leakage
  // is a property of the physical core and its supply voltage. The voltage
  // only drops to the C1E level once EVERY context is settled in the idle
  // state — the constraint that made the paper disable SMT (§3.2).
  double dynamic = 0.0;
  bool all_deep_idle = true;
  double voltage = 0.0;
  std::size_t executing = 0;
  const std::size_t contexts = config_.smt_enabled ? 2 : 1;
  for (std::size_t k = 0; k < contexts; ++k) {
    const Core& c = cores_[phys * contexts + k];
    dynamic += power_model_.core_dynamic_power(c.op);
    if (c.activity == CoreActivity::kExecuting) ++executing;
    if (c.activity != CoreActivity::kIdle || c.op.in_transition ||
        c.op.cstate != power::CState::kC1E) {
      all_deep_idle = false;
    }
    voltage = std::max(voltage, c.op.voltage_v);
  }
  // SMT contexts share execution units: switching power tracks retired work
  // (each context runs at the SMT throughput factor), not the sum of two
  // full pipelines.
  if (executing == 2) dynamic *= config_.smt_throughput_factor;
  power::CoreOperatingPoint leak_op;
  leak_op.cstate = all_deep_idle ? power::CState::kC1E : power::CState::kC0;
  leak_op.in_transition = false;
  leak_op.voltage_v = voltage;
  return dynamic + power_model_.core_leakage_power(
                       leak_op, network_.temperature(nodes_.die[phys]));
}

Core* Machine::sibling(const Core& c) {
  if (!config_.smt_enabled) return nullptr;
  return &cores_[c.id ^ 1u];
}

double Machine::execution_rate(const Core& c) const {
  double rate = c.execution_rate(config_.power.nominal_freq_ghz,
                                 config_.clock_modulation_overhead);
  if (config_.smt_enabled) {
    const Core& sib = cores_[c.id ^ 1u];
    if (sib.activity == CoreActivity::kExecuting && sib.current != nullptr) {
      rate *= config_.smt_throughput_factor;
    }
  }
  return rate;
}

void Machine::sibling_checkpoint(Core& c) {
  Core* sib = sibling(c);
  if (sib != nullptr && sib->current != nullptr &&
      sib->activity == CoreActivity::kExecuting) {
    // Retire the sibling's in-flight work at the rate that held until now;
    // the caller is about to change this context's activity.
    checkpoint_segment(*sib);
  }
}

void Machine::replan_sibling(Core& c) {
  Core* sib = sibling(c);
  if (sib == nullptr || sib->current == nullptr ||
      sib->activity != CoreActivity::kExecuting) {
    return;
  }
  // The sibling's effective execution rate changed with this context's
  // activity; retire its in-flight work at the old rate is impossible here
  // (rate already reflects the new state), so callers must invoke this right
  // AFTER checkpointing — see call sites.
  plan_segment(*sib);
}

double Machine::mean_c0_activity() const {
  double sum = 0.0;
  for (const Core& c : cores_) {
    if (c.activity == CoreActivity::kExecuting) sum += c.op.activity;
  }
  return cores_.empty() ? 0.0 : sum / static_cast<double>(cores_.size());
}

void Machine::apply_powers(double span_seconds) {
  for (std::size_t i = 0; i < config_.num_cores; ++i) {
    const double p = physical_core_power(i);
    network_.set_power(nodes_.die[i], p);
    energy_.add_core(i, p, span_seconds);
    window_node_joules_[nodes_.die[i]] += p * span_seconds;
  }
  const double uncore = power_model_.uncore_power(mean_c0_activity());
  network_.set_power(nodes_.package, uncore);
  energy_.add_uncore(uncore, span_seconds);
  window_node_joules_[nodes_.package] += uncore * span_seconds;
}

void Machine::integrate_chunk(double dt_seconds) {
  apply_powers(dt_seconds);
  network_.step(dt_seconds);
}

void Machine::sync_thermal_counters() {
  const thermal::RcNetwork::Stats& s = network_.stats();
  obs::CounterRegistry& c = tracer_.counters();
  c.thermal_substeps = s.substeps;
  c.thermal_fast_forward_steps = s.fast_forward_steps;
  c.thermal_factorizations = s.factorizations;
  c.thermal_matvecs = s.matvecs;
  c.thermal_sparse_matvecs = s.sparse_matvecs;
  c.thermal_evictions = s.evictions;
}

void Machine::advance_thermal(sim::SimTime to) {
  if (to <= last_thermal_update_) return;
  if (config_.thermal_reference_stepper) {
    // Pre-fast-forward semantics: sequential substeps, leakage refreshed at
    // every chunk boundary.
    sim::SimTime remaining = to - last_thermal_update_;
    while (remaining >= config_.thermal_substep) {
      integrate_chunk(sim::to_sec(config_.thermal_substep));
      remaining -= config_.thermal_substep;
    }
    if (remaining > 0) integrate_chunk(sim::to_sec(remaining));
    last_thermal_update_ = to;
    sync_thermal_counters();
    return;
  }
  // Lazy clock: every mutation of power-relevant state calls advance_thermal
  // before acting, so the power vector is constant across [last, to). Charge
  // it once for the whole span, then fast-forward the propagator: k full
  // substeps in O(log k) matvecs plus one sequential remainder chunk.
  const sim::SimTime span = to - last_thermal_update_;
  apply_powers(sim::to_sec(span));
  const std::uint64_t k =
      static_cast<std::uint64_t>(span / config_.thermal_substep);
  const sim::SimTime remainder = span % config_.thermal_substep;
  network_.advance(sim::to_sec(config_.thermal_substep), k);
  if (remainder > 0) network_.step(sim::to_sec(remainder));
  last_thermal_update_ = to;
  sync_thermal_counters();
}

void Machine::schedule_substep() {
  sim_.after(config_.thermal_substep, [this](sim::SimTime t) {
    advance_thermal(t);
    schedule_substep();
  });
}

sim::EventHandle Machine::arm_thermal_watchdog(sim::SimTime at) {
  return sim_.at(at, [this](sim::SimTime t) {
    advance_thermal(t);
    schedule_thermal_watchdog();
  });
}

void Machine::schedule_thermal_watchdog() {
  watchdog_timer_ = arm_thermal_watchdog(sim_.now() + config_.thermal_watchdog);
}

void Machine::schedule_meter_sample() {
  sim_.after(meter_->sample_interval(), [this](sim::SimTime t) {
    advance_thermal(t);
    const double watts = current_total_power();
    meter_->sample(t, watts);
    tracer_.meter_sample(t, watts);
    schedule_meter_sample();
  });
}

void Machine::schedule_trace_sensor() {
  // Pure observation: reads the current network state without advancing the
  // thermal integrator, so chunk boundaries — and therefore every simulated
  // result — are bit-identical with and without tracing.
  sim_.after(config_.trace_sensor_period, [this](sim::SimTime t) {
    for (std::size_t phys = 0; phys < config_.num_cores; ++phys) {
      tracer_.sensor_sample(t, static_cast<std::uint32_t>(phys),
                            network_.temperature(nodes_.die[phys]));
    }
    const thermal::RcNetwork::Stats& s = network_.stats();
    tracer_.thermal_stat(t, obs::ThermalStatKind::kSubsteps, s.substeps);
    tracer_.thermal_stat(t, obs::ThermalStatKind::kFastForwardSteps,
                         s.fast_forward_steps);
    tracer_.thermal_stat(t, obs::ThermalStatKind::kFactorizations,
                         s.factorizations);
    tracer_.thermal_stat(t, obs::ThermalStatKind::kMatvecs, s.matvecs);
    schedule_trace_sensor();
  });
}

sim::EventHandle Machine::arm_schedcpu(sim::SimTime at) {
  return sim_.at(at, [this](sim::SimTime t) {
    scheduler_->periodic(scheduler_->runnable_count(), t);
    schedule_schedcpu();
  });
}

void Machine::schedule_schedcpu() {
  schedcpu_timer_ = arm_schedcpu(sim_.now() + sim::kSecond);
}

double Machine::current_total_power() {
  double total = power_model_.uncore_power(mean_c0_activity());
  for (std::size_t i = 0; i < config_.num_cores; ++i) {
    total += physical_core_power(i);
  }
  return total;
}

double Machine::mean_sensor_temp() const {
  double sum = 0.0;
  for (const auto& s : sensors_) sum += s.read();
  return sum / static_cast<double>(sensors_.size());
}

void Machine::mark_power_window() {
  std::fill(window_node_joules_.begin(), window_node_joules_.end(), 0.0);
  window_start_ = sim_.now();
}

void Machine::jump_to_average_power_steady_state() {
  const double span = sim::to_sec(sim_.now() - window_start_);
  if (span <= 0.0) return;
  for (std::size_t n = 0; n < network_.node_count(); ++n) {
    if (!network_.is_fixed(n)) {
      network_.set_power(n, window_node_joules_[n] / span);
    }
  }
  network_.solve_steady_state();
  mark_power_window();
}

// --------------------------------------------------------------------------
// Thread lifecycle
// --------------------------------------------------------------------------

ThreadId Machine::create_thread(std::string name, ThreadClass cls, int nice,
                                std::unique_ptr<ThreadBehavior> behavior,
                                CoreId affinity) {
  const auto id = static_cast<ThreadId>(threads_.size());
  auto t = std::make_unique<Thread>(id, std::move(name), cls, nice,
                                    std::move(behavior), master_rng_.fork());
  t->set_created_at(sim_.now());
  t->set_affinity(affinity);
  t->set_state(ThreadState::kSleeping);  // make_runnable flips it
  Thread& ref = *t;
  threads_.push_back(std::move(t));
  ++live_threads_;
  make_runnable(ref);
  return id;
}

void Machine::wake_thread(ThreadId id) {
  Thread& t = *threads_.at(id);
  if (t.state() != ThreadState::kSleeping) return;
  // An injection-suspended thread stays descheduled until its idle quantum
  // expires; external wakeups do not cut the quantum short.
  if (t.injection_suspended()) return;
  make_runnable(t);
}

void Machine::set_thread_affinity(ThreadId id, CoreId target) {
  Thread& t = *threads_.at(id);
  if (target != kNoCore && target >= cores_.size()) {
    throw std::out_of_range("affinity target out of range");
  }
  t.set_affinity(target);
  if (t.state() == ThreadState::kRunning && target != kNoCore &&
      t.last_core() != target) {
    // Preempt off the old core; the scheduler re-places it under the new
    // affinity at the next dispatch, and an idle target picks it up now.
    Core& old_core = cores_[t.last_core()];
    if (old_core.current == &t) {
      advance_thermal(sim_.now());
      stop_current(old_core, sim_.now());
      // stop_current re-enqueued it; nudge the target core if it is idle.
      try_kick_idle_core(t);
      dispatch(old_core);
    }
  } else if (t.state() == ThreadState::kRunnable) {
    try_kick_idle_core(t);
  }
}

void Machine::make_runnable(Thread& t) {
  assert(t.state() != ThreadState::kDone);
  if (t.state() == ThreadState::kSleeping && t.sleep_started_at() >= 0) {
    scheduler_->apply_sleep_decay(
        t, sim::to_sec(sim_.now() - t.sleep_started_at()));
    t.set_sleep_started_at(-1);
  }
  t.set_state(ThreadState::kRunnable);
  scheduler_->enqueue(t);
  if (try_kick_idle_core(t)) return;
  if (t.thread_class() == ThreadClass::kKernel) {
    try_preempt_for_kernel_thread(t);
  }
}

bool Machine::try_kick_idle_core(Thread& t) {
  auto available = [&](const Core& c) {
    if (c.injected_idle) return false;
    if (c.activity != CoreActivity::kIdle &&
        c.activity != CoreActivity::kIdleEntering) {
      return false;
    }
    return t.runnable_on(c.id);
  };
  // Prefer the core the thread last ran on (cache affinity), then any idle.
  if (t.last_core() != kNoCore && t.last_core() < cores_.size() &&
      available(cores_[t.last_core()])) {
    begin_idle_exit(cores_[t.last_core()]);
    return true;
  }
  for (Core& c : cores_) {
    if (available(c)) {
      begin_idle_exit(c);
      return true;
    }
  }
  // A core already on its way out of idle will re-dispatch shortly and pick
  // this thread up; treat that as handled to avoid needless preemption.
  for (Core& c : cores_) {
    if (c.activity == CoreActivity::kIdleExiting && t.runnable_on(c.id)) {
      return true;
    }
  }
  return false;
}

bool Machine::try_preempt_for_kernel_thread(Thread& t) {
  // Standard BSD behaviour: a waking kernel-class thread preempts a running
  // user thread. Injected idle quanta are NOT cut short unless configured —
  // this is exactly the double-delay hazard the paper describes in §3.1.
  for (Core& c : cores_) {
    if (c.activity == CoreActivity::kExecuting && c.current != nullptr &&
        c.current->thread_class() == ThreadClass::kUser &&
        t.runnable_on(c.id)) {
      stop_current(c, sim_.now());
      scheduler_->dequeue(t);
      run_thread(c, t);
      return true;
    }
  }
  if (config_.kernel_preempts_injection) {
    for (Core& c : cores_) {
      if (c.injected_idle && t.runnable_on(c.id)) {
        end_injected_idle(c);
        return true;
      }
    }
  }
  return false;
}

void Machine::suspend_for_injection(Thread& t, CoreId where,
                                    sim::SimTime quantum) {
  t.set_state(ThreadState::kSleeping);
  t.set_sleep_started_at(-1);
  t.set_injection_suspended(true);
  const ThreadId victim = t.id();
  tracer_.injection_begin(sim_.now(), where, victim, quantum);
  arm_injection_resume(victim, where, quantum, sim_.now() + quantum);
}

void Machine::arm_injection_resume(ThreadId victim, CoreId where,
                                   sim::SimTime quantum, sim::SimTime at) {
  ThreadTimer tt;
  tt.kind = ThreadTimer::Kind::kInjectionResume;
  tt.thread = victim;
  tt.where = where;
  tt.quantum = quantum;
  tt.handle = sim_.at(at, [this, victim, where, quantum](sim::SimTime now) {
    Thread& v = *threads_.at(victim);
    if (!v.injection_suspended()) return;
    v.set_injection_suspended(false);
    // The suspension always runs its full quantum (wake_thread refuses to
    // cut it short), so the realized duration equals the request.
    tracer_.injection_end(now, where, victim, quantum);
    if (hook_ != nullptr) {
      hook_->on_injection_complete(v, v.last_core(), now);
    }
    make_runnable(v);
  });
  track_thread_timer(std::move(tt));
}

void Machine::arm_sleep_wake(ThreadId id, sim::SimTime at) {
  ThreadTimer tt;
  tt.kind = ThreadTimer::Kind::kWake;
  tt.thread = id;
  tt.handle = sim_.at(at, [this, id](sim::SimTime) { wake_thread(id); });
  track_thread_timer(std::move(tt));
}

void Machine::track_thread_timer(ThreadTimer&& t) {
  // Lazy compaction: fired/cancelled handles go inert rather than being
  // erased eagerly, so drop them in bulk once they dominate the registry.
  if (thread_timers_.size() >= 64) {
    std::size_t live = 0;
    for (const ThreadTimer& tt : thread_timers_) {
      if (tt.handle.active()) ++live;
    }
    if (live * 2 <= thread_timers_.size()) {
      std::erase_if(thread_timers_, [](const ThreadTimer& tt) {
        return !tt.handle.active();
      });
    }
  }
  thread_timers_.push_back(std::move(t));
}

void Machine::stop_current(Core& core, sim::SimTime now) {
  advance_thermal(now);
  core.timer.cancel();
  Thread& t = *core.current;
  const double rate = execution_rate(core);
  const double elapsed =
      std::max(0.0, sim::to_sec(now - core.segment_start));
  const double work = std::min(elapsed * rate, t.burst_remaining());
  t.add_cpu_seconds(elapsed);
  t.add_work_completed(work);
  t.set_burst_remaining(t.burst_remaining() - work);
  core.busy_seconds += elapsed;
  t.set_state(ThreadState::kRunnable);
  scheduler_->thread_stopped(t, elapsed, now);
  scheduler_->enqueue_front(t);
  sibling_checkpoint(core);
  core.current = nullptr;
  replan_sibling(core);
}

void Machine::finish_thread(Core& core, Thread& t) {
  t.set_state(ThreadState::kDone);
  t.set_finished_at(sim_.now());
  core.current = nullptr;
  assert(live_threads_ > 0);
  --live_threads_;
}

// --------------------------------------------------------------------------
// Dispatch / execution engine
// --------------------------------------------------------------------------

void Machine::dispatch(Core& core) {
  advance_thermal(sim_.now());
  core.current = nullptr;
  Thread* t = scheduler_->pick_next(core.id, sim_.now());
  if (t == nullptr) {
    enter_idle(core, /*injected=*/false, 0, nullptr);
    return;
  }
  if (hook_ != nullptr) {
    const auto idle_quantum = hook_->before_dispatch(*t, core.id, sim_.now());
    if (idle_quantum.has_value() && *idle_quantum > 0) {
      t->increment_injections_suffered();
      ++core.injections;
      if (config_.injection_suspends_thread) {
        // Per-thread semantics (Fig. 5): deschedule the victim for the idle
        // quantum; the dispatch loop below finds other work or idles the
        // core naturally. No interactivity credit accrues for forced idling.
        suspend_for_injection(*t, core.id, *idle_quantum);
        // Extension of the paper's SMT remark (§3.2): co-schedule the idle
        // quantum on the sibling hardware context so the whole physical
        // core can halt into C1E.
        if (config_.smt_enabled && config_.smt_co_schedule_injection) {
          Core* sib = sibling(core);
          if (sib != nullptr && sib->current != nullptr &&
              sib->activity == CoreActivity::kExecuting &&
              sib->current->thread_class() == ThreadClass::kUser) {
            Thread& co_victim = *sib->current;
            stop_current(*sib, sim_.now());
            scheduler_->dequeue(co_victim);
            co_victim.increment_injections_suffered();
            ++sib->injections;
            suspend_for_injection(co_victim, sib->id, *idle_quantum);
            dispatch(*sib);
          }
        }
        dispatch(core);
        return;
      }
      // Literal §3.1 mechanism: pin the displaced thread on the run queue so
      // no other core runs it, then run the idle thread for the quantum.
      t->set_injection_pin(core.id);
      scheduler_->enqueue_front(*t);
      enter_idle(core, /*injected=*/true, *idle_quantum, t);
      return;
    }
  }
  run_thread(core, *t);
}

void Machine::run_thread(Core& core, Thread& t) {
  assert(core.current == nullptr);
  sibling_checkpoint(core);  // sibling ran solo until this dispatch
  core.current = &t;
  t.set_state(ThreadState::kRunning);
  t.set_last_core(core.id);
  t.increment_times_scheduled();
  ++core.dispatches;

  const bool switching = core.last_thread != t.id();
  if (switching) ++core.context_switches;
  core.last_thread = t.id();
  tracer_.sched_switch(sim_.now(), core.id, t.id(), switching);

  if (t.burst_remaining() <= kWorkEpsilon) {
    const Burst b = t.behavior().next_burst(sim_.now(), t.rng());
    t.set_burst_remaining(std::max(b.work_seconds, 1e-9));
    t.set_activity(b.activity);
  }

  core.activity = CoreActivity::kExecuting;
  core.op.cstate = power::CState::kC0;
  core.op.in_transition = false;
  core.op.activity = t.activity();

  const sim::SimTime start =
      sim_.now() + (switching ? config_.context_switch_cost : 0);
  core.segment_start = start;
  core.quantum_deadline = start + scheduler_->timeslice_for(t);
  if (switching) {
    core.busy_seconds += sim::to_sec(config_.context_switch_cost);
  }
  plan_segment(core);
  replan_sibling(core);  // sibling now shares the pipeline
}

void Machine::plan_segment(Core& core) {
  Thread& t = *core.current;
  const double rate = execution_rate(core);
  assert(rate > 0.0);
  const double finish_seconds = t.burst_remaining() / rate;
  // Cap to keep the ns conversion far from integer overflow; an effectively
  // infinite burst just runs out its quantum.
  // Round the finish time up to the next nanosecond tick: a segment must
  // always advance simulated time, and the residual sub-ns work is absorbed
  // by kWorkEpsilon at completion.
  const sim::SimTime finish_at =
      finish_seconds > 1e6
          ? sim::kTimeInfinity
          : core.segment_start + sim::from_sec(finish_seconds) + 1;
  const sim::SimTime seg_end = std::min(core.quantum_deadline, finish_at);
  core.timer.cancel();
  core.timer = sim_.at(seg_end, [this, &core](sim::SimTime) {
    on_segment_end(core);
  });
}

void Machine::on_segment_end(Core& core) {
  const sim::SimTime now = sim_.now();
  advance_thermal(now);
  Thread& t = *core.current;
  const double rate = execution_rate(core);
  const double elapsed = std::max(0.0, sim::to_sec(now - core.segment_start));
  const double work = std::min(elapsed * rate, t.burst_remaining());
  t.add_cpu_seconds(elapsed);
  t.add_work_completed(work);
  t.set_burst_remaining(t.burst_remaining() - work);
  core.busy_seconds += elapsed;

  if (t.burst_remaining() > kWorkEpsilon) {
    // Timeslice expired with work left: round-robin back into the queue.
    t.set_state(ThreadState::kRunnable);
    scheduler_->quantum_expired(t, elapsed, now);
    sibling_checkpoint(core);
    core.current = nullptr;
    replan_sibling(core);
    dispatch(core);
    return;
  }

  t.set_burst_remaining(0.0);
  t.increment_bursts_completed();
  const BurstOutcome outcome = t.behavior().on_burst_complete(now, t.rng());
  switch (outcome.kind) {
    case BurstOutcome::Kind::kContinue: {
      if (now >= core.quantum_deadline) {
        t.set_state(ThreadState::kRunnable);
        scheduler_->quantum_expired(t, elapsed, now);
        core.current = nullptr;
        dispatch(core);
        return;
      }
      const Burst b = t.behavior().next_burst(now, t.rng());
      t.set_burst_remaining(std::max(b.work_seconds, 1e-9));
      t.set_activity(b.activity);
      core.op.activity = t.activity();
      core.segment_start = now;
      plan_segment(core);
      return;
    }
    case BurstOutcome::Kind::kSleepFor: {
      t.set_state(ThreadState::kSleeping);
      t.set_sleep_started_at(now);
      scheduler_->thread_stopped(t, elapsed, now);
      sibling_checkpoint(core);
      core.current = nullptr;
      replan_sibling(core);
      arm_sleep_wake(t.id(),
                     sim_.now() + std::max<sim::SimTime>(outcome.sleep_for, 0));
      dispatch(core);
      return;
    }
    case BurstOutcome::Kind::kSleepUntilWoken: {
      t.set_state(ThreadState::kSleeping);
      t.set_sleep_started_at(now);
      scheduler_->thread_stopped(t, elapsed, now);
      sibling_checkpoint(core);
      core.current = nullptr;
      replan_sibling(core);
      dispatch(core);
      return;
    }
    case BurstOutcome::Kind::kExit: {
      scheduler_->thread_stopped(t, elapsed, now);
      sibling_checkpoint(core);
      finish_thread(core, t);
      replan_sibling(core);
      dispatch(core);
      return;
    }
  }
}

// --------------------------------------------------------------------------
// Idle handling
// --------------------------------------------------------------------------

void Machine::enter_idle(Core& core, bool injected, sim::SimTime quantum,
                         Thread* victim) {
  core.current = nullptr;
  core.injected_idle = injected;
  core.injection_victim = victim;
  core.activity = CoreActivity::kIdleEntering;
  core.segment_start = sim_.now();
  core.op.cstate = config_.idle_cstate;
  core.op.in_transition = true;
  core.last_thread = kInvalidThread;  // resuming anyone is a context switch

  tracer_.cstate_change(sim_.now(), core.id, obs::CStatePhase::kEnterBegin,
                        static_cast<std::uint8_t>(config_.idle_cstate));
  if (injected) {
    tracer_.injection_begin(sim_.now(), core.id,
                            victim != nullptr ? victim->id() : kInvalidThread,
                            quantum);
  }

  const auto info = power::cstate_info(config_.idle_cstate);
  core.transition_timer.cancel();
  core.transition_timer = sim_.after(
      info.entry_latency,
      [this, &core](sim::SimTime) { finish_idle_entry(core); });
  core.timer.cancel();
  if (injected) {
    core.timer = sim_.after(quantum, [this, &core](sim::SimTime) {
      end_injected_idle(core);
    });
  }
}

void Machine::finish_idle_entry(Core& core) {
  advance_thermal(sim_.now());
  core.activity = CoreActivity::kIdle;
  core.op.in_transition = false;
  core.op.activity = 0.0;
  core.idle_settled_at = sim_.now();
  tracer_.cstate_change(sim_.now(), core.id, obs::CStatePhase::kEnterDone,
                        static_cast<std::uint8_t>(config_.idle_cstate));
}

void Machine::end_injected_idle(Core& core) {
  assert(core.injected_idle);
  advance_thermal(sim_.now());
  core.timer.cancel();
  Thread* victim = core.injection_victim;
  if (victim != nullptr) {
    victim->set_injection_pin(kNoCore);
    if (hook_ != nullptr) {
      hook_->on_injection_complete(*victim, core.id, sim_.now());
    }
  }
  begin_idle_exit(core);
}

void Machine::begin_idle_exit(Core& core) {
  advance_thermal(sim_.now());
  // Account the idle residency that just ended.
  const sim::SimTime span_ns = std::max<sim::SimTime>(
      sim::SimTime{0}, sim_.now() - core.segment_start);
  const double idle_span = std::max(0.0, sim::to_sec(span_ns));
  core.idle_seconds += idle_span;
  if (core.injected_idle) core.injected_idle_seconds += idle_span;
  tracer_.idle_span(core.id, span_ns);
  if (core.activity == CoreActivity::kIdle) {
    tracer_.c1e_residency(core.id, sim_.now() - core.idle_settled_at);
  }
  if (core.injected_idle) {
    // Realized span of a pinned (§3.1) injection; same integer timestamps the
    // exporter pairs into a Begin/End span, so the two sums match exactly.
    tracer_.injection_end(sim_.now(), core.id,
                          core.injection_victim != nullptr
                              ? core.injection_victim->id()
                              : kInvalidThread,
                          span_ns);
  }
  core.injected_idle = false;
  core.injection_victim = nullptr;

  core.transition_timer.cancel();
  core.activity = CoreActivity::kIdleExiting;
  tracer_.cstate_change(sim_.now(), core.id, obs::CStatePhase::kExitBegin,
                        static_cast<std::uint8_t>(config_.idle_cstate));
  core.op.in_transition = true;
  const auto info = power::cstate_info(config_.idle_cstate);
  core.transition_timer = sim_.after(
      info.exit_latency,
      [this, &core](sim::SimTime) { finish_idle_exit(core); });
}

void Machine::finish_idle_exit(Core& core) {
  advance_thermal(sim_.now());
  core.op.cstate = power::CState::kC0;
  core.op.in_transition = false;
  core.op.activity = 0.0;
  core.activity = CoreActivity::kExecuting;
  tracer_.cstate_change(sim_.now(), core.id, obs::CStatePhase::kExitDone,
                        static_cast<std::uint8_t>(power::CState::kC0));
  dispatch(core);
}

// --------------------------------------------------------------------------
// Actuation & running
// --------------------------------------------------------------------------

void Machine::checkpoint_segment(Core& core) {
  if (core.activity != CoreActivity::kExecuting || core.current == nullptr) {
    return;
  }
  Thread& t = *core.current;
  const sim::SimTime now = sim_.now();
  const double rate = execution_rate(core);
  const double elapsed = std::max(0.0, sim::to_sec(now - core.segment_start));
  const double work = std::min(elapsed * rate, t.burst_remaining());
  t.add_cpu_seconds(elapsed);
  t.add_work_completed(work);
  t.set_burst_remaining(t.burst_remaining() - work);
  core.busy_seconds += elapsed;
  core.segment_start = std::max(now, core.segment_start);
}

void Machine::set_dvfs_level(CoreId core, std::size_t level) {
  if (level >= config_.dvfs.num_levels()) {
    throw std::out_of_range("DVFS level out of range");
  }
  advance_thermal(sim_.now());
  Core& c = cores_.at(core);
  // Retire in-flight work at the old rate before the rate changes.
  checkpoint_segment(c);
  c.dvfs_level = level;
  c.op.freq_ghz = config_.dvfs.level(level).freq_ghz;
  c.op.voltage_v = config_.dvfs.level(level).voltage_v;
  tracer_.dvfs_change(sim_.now(), c.id, level, c.op.freq_ghz);
  if (c.activity == CoreActivity::kExecuting && c.current != nullptr) {
    plan_segment(c);
  }
}

void Machine::set_all_dvfs_levels(std::size_t level) {
  for (Core& c : cores_) set_dvfs_level(c.id, level);
}

void Machine::set_fan_speed(double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("fan speed fraction must be in (0, 1]");
  }
  // Integrate the elapsed span under the old conductance first; the edge
  // re-weight below invalidates the cached step operators, so everything
  // after "now" factors against the new one.
  advance_thermal(sim_.now());
  config_.floorplan.fan_speed_fraction = fraction;
  const double fan_factor = std::pow(fraction, 0.8);
  network_.set_conductance(
      nodes_.heatsink, nodes_.ambient,
      fan_factor / config_.floorplan.hs_to_ambient_resistance);
}

void Machine::set_clock_duty_step(CoreId core, std::size_t step) {
  if (step < 1 || step > power::ClockModulation::kNumSteps) {
    throw std::out_of_range("clock duty step must be in 1..8");
  }
  advance_thermal(sim_.now());
  Core& c = cores_.at(core);
  checkpoint_segment(c);
  c.duty_step_user = step;
  apply_effective_duty(c);
  if (c.activity == CoreActivity::kExecuting && c.current != nullptr) {
    plan_segment(c);
  }
}

void Machine::apply_effective_duty(Core& c) {
  std::size_t step = c.duty_step_user;
  if (config_.hw_thermal_throttle && tm_active_[physical_of(c.id)]) {
    step = std::min(step, config_.prochot_duty_step);
  }
  c.op.clock_duty =
      static_cast<double>(step) / power::ClockModulation::kNumSteps;
}

sim::EventHandle Machine::arm_thermal_monitor(sim::SimTime at) {
  return sim_.at(at, [this](sim::SimTime) { thermal_monitor_tick(); });
}

void Machine::schedule_thermal_monitor() {
  monitor_timer_ =
      arm_thermal_monitor(sim_.now() + config_.thermal_monitor_period);
}

void Machine::thermal_monitor_tick() {
  advance_thermal(sim_.now());
  for (std::size_t phys = 0; phys < config_.num_cores; ++phys) {
    const double temp = network_.temperature(nodes_.die[phys]);
    const bool was_active = tm_active_[phys];
    bool active = was_active;
    if (!was_active && temp >= config_.prochot_c) {
      active = true;
      ++tm_events_;
    } else if (was_active && temp <= config_.prochot_release_c) {
      active = false;
    }
    if (active == was_active) continue;
    tm_active_[phys] = active;
    tracer_.prochot(sim_.now(), static_cast<std::uint32_t>(phys), active,
                    temp);
    const std::size_t contexts = config_.smt_enabled ? 2 : 1;
    for (std::size_t k = 0; k < contexts; ++k) {
      Core& c = cores_[phys * contexts + k];
      checkpoint_segment(c);
      apply_effective_duty(c);
      if (c.activity == CoreActivity::kExecuting && c.current != nullptr) {
        plan_segment(c);
      }
    }
  }
  schedule_thermal_monitor();
}

void Machine::set_all_clock_duty_steps(std::size_t step) {
  for (Core& c : cores_) set_clock_duty_step(c.id, step);
}

void Machine::run_until(sim::SimTime deadline) {
  sim_.run_until(deadline);
  advance_thermal(deadline);
  // Fold in-flight execution into the work counters so observers (throughput
  // windows, tests) see progress up to `deadline`, not up to the last
  // segment boundary.
  for (Core& c : cores_) checkpoint_segment(c);
}

bool Machine::run_until_condition(const std::function<bool()>& pred,
                                  sim::SimTime deadline) {
  while (!pred()) {
    if (sim_.queue().next_time() > deadline) {
      run_until(deadline);
      return pred();
    }
    sim_.step();
  }
  return true;
}

void Machine::call_at(sim::SimTime when, std::function<void(sim::SimTime)> fn) {
  sim_.at(std::max(when, sim_.now()), std::move(fn));
}

// --------------------------------------------------------------------------
// Snapshot / warm-start
// --------------------------------------------------------------------------

namespace {
MachineSnapshot::EventStamp stamp_of(const sim::EventHandle& h) {
  MachineSnapshot::EventStamp e;
  e.armed = h.active();
  if (e.armed) {
    e.at = h.time();
    e.seq = h.seq();
  }
  return e;
}
}  // namespace

void Machine::check_snapshot_preconditions() const {
  if (meter_.has_value()) {
    throw std::runtime_error(
        "machine snapshot: power meter attached (its sampling event and "
        "noise stream are not captured)");
  }
  if (tracer_.active()) {
    throw std::runtime_error(
        "machine snapshot: trace sink attached (the sensor-sampling event "
        "is not captured)");
  }
  if (config_.thermal_reference_stepper) {
    throw std::runtime_error(
        "machine snapshot: reference thermal stepper active (its recurring "
        "substep event is not captured)");
  }
  if (hook_ != nullptr) {
    throw std::runtime_error(
        "machine snapshot: injection hook attached (hook-internal state "
        "cannot be captured; snapshot before attach_hook, restore, then "
        "attach)");
  }
}

MachineSnapshot Machine::snapshot() {
  check_snapshot_preconditions();

  MachineSnapshot s;

  // Scheduler queue in dequeue order (throws for schedulers without
  // snapshot support, e.g. ULE's per-thread interactivity histories).
  std::vector<Thread*> queued;
  scheduler_->snapshot_queue(queued);
  s.run_queue.reserve(queued.size());
  for (Thread* t : queued) s.run_queue.push_back(t->id());

  s.threads.reserve(threads_.size());
  for (const auto& tp : threads_) {
    Thread& t = *tp;
    MachineSnapshot::ThreadSnap ts;
    ts.state = t.state();
    ts.affinity = t.affinity();
    ts.injection_pin = t.injection_pin();
    ts.injection_suspended = t.injection_suspended();
    ts.burst_remaining = t.burst_remaining();
    ts.activity = t.activity();
    ts.cpu_seconds = t.cpu_seconds_consumed();
    ts.work_completed = t.work_completed();
    ts.bursts_completed = t.bursts_completed();
    ts.times_scheduled = t.times_scheduled();
    ts.injections_suffered = t.injections_suffered();
    ts.created_at = t.created_at();
    ts.finished_at = t.finished_at();
    ts.estcpu = t.estcpu();
    ts.sleep_started_at = t.sleep_started_at();
    ts.last_core = t.last_core();
    ts.rng = t.rng();
    if (!t.behavior().save_state(ts.behavior_state)) {
      throw std::runtime_error("machine snapshot: thread '" + t.name() +
                               "' has a behavior without snapshot support");
    }
    s.threads.push_back(std::move(ts));
  }

  std::size_t armed = 0;
  s.cores.reserve(cores_.size());
  for (const Core& c : cores_) {
    MachineSnapshot::CoreSnap cs;
    cs.current = c.current != nullptr ? c.current->id() : kInvalidThread;
    cs.last_thread = c.last_thread;
    cs.activity = c.activity;
    cs.injected_idle = c.injected_idle;
    cs.injection_victim =
        c.injection_victim != nullptr ? c.injection_victim->id()
                                      : kInvalidThread;
    cs.op = c.op;
    cs.dvfs_level = c.dvfs_level;
    cs.duty_step_user = c.duty_step_user;
    cs.segment_start = c.segment_start;
    cs.quantum_deadline = c.quantum_deadline;
    cs.quantum_ran_seconds = c.quantum_ran_seconds;
    cs.idle_settled_at = c.idle_settled_at;
    cs.busy_seconds = c.busy_seconds;
    cs.idle_seconds = c.idle_seconds;
    cs.injected_idle_seconds = c.injected_idle_seconds;
    cs.dispatches = c.dispatches;
    cs.injections = c.injections;
    cs.context_switches = c.context_switches;
    cs.timer = stamp_of(c.timer);
    cs.transition_timer = stamp_of(c.transition_timer);
    armed += cs.timer.armed ? 1 : 0;
    armed += cs.transition_timer.armed ? 1 : 0;
    s.cores.push_back(cs);
  }

  for (const ThreadTimer& tt : thread_timers_) {
    if (!tt.handle.active()) continue;
    MachineSnapshot::ThreadTimerSnap tts;
    tts.kind = static_cast<std::uint8_t>(tt.kind);
    tts.thread = tt.thread;
    tts.where = tt.where;
    tts.quantum = tt.quantum;
    tts.at = tt.handle.time();
    tts.seq = tt.handle.seq();
    s.thread_timers.push_back(tts);
    ++armed;
  }

  s.watchdog = stamp_of(watchdog_timer_);
  s.schedcpu = stamp_of(schedcpu_timer_);
  s.monitor = stamp_of(monitor_timer_);
  armed += s.watchdog.armed ? 1 : 0;
  armed += s.schedcpu.armed ? 1 : 0;
  armed += s.monitor.armed ? 1 : 0;

  // Reconcile the tracked-event inventory against the queue's live count.
  // Anything we cannot account for (a workload call_at timer, a harness
  // callback) would be silently dropped by restore, so refuse.
  if (armed != sim_.queue().size()) {
    throw std::runtime_error(
        "machine snapshot: " + std::to_string(sim_.queue().size()) +
        " pending events but only " + std::to_string(armed) +
        " tracked by the machine (external call_at timers pending?)");
  }

  s.now = sim_.now();
  s.events_executed = sim_.events_executed();
  s.master_rng = master_rng_;
  s.thermal = network_.save_state();
  s.last_thermal_update = last_thermal_update_;
  s.energy = energy_.save_state();
  s.counters = tracer_.counters();
  s.tm_active = tm_active_;
  s.tm_events = tm_events_;
  s.window_node_joules = window_node_joules_;
  s.window_start = window_start_;
  s.live_threads = live_threads_;
  return s;
}

void Machine::restore(const MachineSnapshot& s) {
  check_snapshot_preconditions();
  if (threads_.size() != s.threads.size()) {
    throw std::invalid_argument(
        "machine restore: thread count mismatch (deploy the identical "
        "workload before restoring)");
  }
  if (cores_.size() != s.cores.size()) {
    throw std::invalid_argument("machine restore: core count mismatch");
  }
  if (window_node_joules_.size() != s.window_node_joules.size() ||
      tm_active_.size() != s.tm_active.size()) {
    throw std::invalid_argument(
        "machine restore: thermal topology mismatch (different "
        "MachineConfig?)");
  }

  // Drop everything this machine scheduled so far (construction + workload
  // deployment events); the captured event set replaces it wholesale.
  sim_.reset_for_restore(s.now, s.events_executed);
  thread_timers_.clear();

  master_rng_ = s.master_rng;
  network_.restore_state(s.thermal);
  last_thermal_update_ = s.last_thermal_update;
  energy_.restore_state(s.energy);
  tracer_.counters() = s.counters;
  tm_active_ = s.tm_active;
  tm_events_ = s.tm_events;
  window_node_joules_ = s.window_node_joules;
  window_start_ = s.window_start;
  live_threads_ = s.live_threads;

  for (std::size_t i = 0; i < threads_.size(); ++i) {
    Thread& t = *threads_[i];
    const MachineSnapshot::ThreadSnap& ts = s.threads[i];
    t.set_state(ts.state);
    t.set_affinity(ts.affinity);
    t.set_injection_pin(ts.injection_pin);
    t.set_injection_suspended(ts.injection_suspended);
    t.set_burst_remaining(ts.burst_remaining);
    t.set_activity(ts.activity);
    t.set_cpu_seconds(ts.cpu_seconds);
    t.set_work_completed(ts.work_completed);
    t.set_bursts_completed(ts.bursts_completed);
    t.set_times_scheduled(ts.times_scheduled);
    t.set_injections_suffered(ts.injections_suffered);
    t.set_created_at(ts.created_at);
    t.set_finished_at(ts.finished_at);
    t.set_estcpu(ts.estcpu);
    t.set_sleep_started_at(ts.sleep_started_at);
    t.set_last_core(ts.last_core);
    t.rng() = ts.rng;
    t.behavior().load_state(ts.behavior_state);
  }

  // Rebuild the run queue: a fresh scheduler, then enqueue in the captured
  // dequeue order. Buckets depend only on estcpu/nice (already restored),
  // so bucket-major FIFO re-insertion reproduces the queue exactly.
  if (config_.scheduler_kind == SchedulerKind::kUle) {
    scheduler_ = std::make_unique<UleScheduler>(cores_.size(), config_.ule);
  } else {
    scheduler_ = std::make_unique<BsdScheduler>(config_.scheduler);
  }
  for (ThreadId id : s.run_queue) scheduler_->enqueue(*threads_.at(id));

  for (std::size_t i = 0; i < cores_.size(); ++i) {
    Core& c = cores_[i];
    const MachineSnapshot::CoreSnap& cs = s.cores[i];
    c.current =
        cs.current != kInvalidThread ? threads_.at(cs.current).get() : nullptr;
    c.last_thread = cs.last_thread;
    c.activity = cs.activity;
    c.injected_idle = cs.injected_idle;
    c.injection_victim = cs.injection_victim != kInvalidThread
                             ? threads_.at(cs.injection_victim).get()
                             : nullptr;
    c.op = cs.op;
    c.dvfs_level = cs.dvfs_level;
    c.duty_step_user = cs.duty_step_user;
    c.segment_start = cs.segment_start;
    c.quantum_deadline = cs.quantum_deadline;
    c.quantum_ran_seconds = cs.quantum_ran_seconds;
    c.idle_settled_at = cs.idle_settled_at;
    c.busy_seconds = cs.busy_seconds;
    c.idle_seconds = cs.idle_seconds;
    c.injected_idle_seconds = cs.injected_idle_seconds;
    c.dispatches = cs.dispatches;
    c.injections = cs.injections;
    c.context_switches = cs.context_switches;
    c.timer = sim::EventHandle();
    c.transition_timer = sim::EventHandle();
  }

  // Re-arm the captured pending events in ascending captured-seq order so
  // same-timestamp events (the recurring watchdog/schedcpu/monitor trio ties
  // regularly) fire in exactly the captured interleaving.
  struct Arm {
    std::uint64_t seq;
    std::function<void()> fn;
  };
  std::vector<Arm> arms;
  if (s.watchdog.armed) {
    arms.push_back({s.watchdog.seq, [this, at = s.watchdog.at] {
                      watchdog_timer_ = arm_thermal_watchdog(at);
                    }});
  }
  if (s.schedcpu.armed) {
    arms.push_back({s.schedcpu.seq, [this, at = s.schedcpu.at] {
                      schedcpu_timer_ = arm_schedcpu(at);
                    }});
  }
  if (s.monitor.armed) {
    arms.push_back({s.monitor.seq, [this, at = s.monitor.at] {
                      monitor_timer_ = arm_thermal_monitor(at);
                    }});
  }
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    Core& c = cores_[i];
    const MachineSnapshot::CoreSnap& cs = s.cores[i];
    if (cs.timer.armed) {
      // An executing core's timer ends the segment; an injected-idle core's
      // timer ends the idle quantum (mirrors plan_segment / enter_idle).
      if (cs.injected_idle) {
        arms.push_back({cs.timer.seq, [this, &c, at = cs.timer.at] {
                          c.timer = sim_.at(at, [this, &c](sim::SimTime) {
                            end_injected_idle(c);
                          });
                        }});
      } else {
        arms.push_back({cs.timer.seq, [this, &c, at = cs.timer.at] {
                          c.timer = sim_.at(at, [this, &c](sim::SimTime) {
                            on_segment_end(c);
                          });
                        }});
      }
    }
    if (cs.transition_timer.armed) {
      if (cs.activity == CoreActivity::kIdleEntering) {
        arms.push_back(
            {cs.transition_timer.seq, [this, &c, at = cs.transition_timer.at] {
               c.transition_timer = sim_.at(
                   at, [this, &c](sim::SimTime) { finish_idle_entry(c); });
             }});
      } else if (cs.activity == CoreActivity::kIdleExiting) {
        arms.push_back(
            {cs.transition_timer.seq, [this, &c, at = cs.transition_timer.at] {
               c.transition_timer = sim_.at(
                   at, [this, &c](sim::SimTime) { finish_idle_exit(c); });
             }});
      } else {
        throw std::invalid_argument(
            "machine restore: transition timer armed but core is neither "
            "entering nor exiting idle");
      }
    }
  }
  for (const MachineSnapshot::ThreadTimerSnap& tts : s.thread_timers) {
    if (static_cast<ThreadTimer::Kind>(tts.kind) == ThreadTimer::Kind::kWake) {
      arms.push_back({tts.seq, [this, id = tts.thread, at = tts.at] {
                        arm_sleep_wake(id, at);
                      }});
    } else {
      arms.push_back({tts.seq, [this, tts] {
                        arm_injection_resume(tts.thread, tts.where,
                                             tts.quantum, tts.at);
                      }});
    }
  }
  std::sort(arms.begin(), arms.end(),
            [](const Arm& a, const Arm& b) { return a.seq < b.seq; });
  for (const Arm& a : arms) a.fn();
}

}  // namespace dimetrodon::sched
