#include "sched/ule_scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace dimetrodon::sched {

UleScheduler::UleScheduler(std::size_t num_cpus, UleSchedulerConfig config)
    : config_(config), queues_(num_cpus) {
  assert(num_cpus > 0);
}

UleScheduler::History& UleScheduler::history(const Thread& t) {
  if (histories_.size() <= t.id()) histories_.resize(t.id() + 1);
  return histories_[t.id()];
}

const UleScheduler::History& UleScheduler::history(const Thread& t) const {
  if (histories_.size() <= t.id()) histories_.resize(t.id() + 1);
  return histories_[t.id()];
}

double UleScheduler::interactivity_score(const Thread& t) const {
  // ULE's split scale: threads that sleep more than they run land in
  // [0, 50), CPU hogs in (50, 100]. Fresh threads score neutral.
  const History& h = history(t);
  constexpr double kScale = 50.0;
  if (h.run_seconds < 1e-9 && h.sleep_seconds < 1e-9) return 25.0;
  if (h.sleep_seconds >= h.run_seconds) {
    return kScale * h.run_seconds / std::max(h.sleep_seconds, 1e-9);
  }
  return kScale + kScale * (1.0 - h.sleep_seconds /
                                      std::max(h.run_seconds, 1e-9));
}

CoreId UleScheduler::home_cpu(const Thread& t) const {
  if (t.injection_pin() != kNoCore && t.injection_pin() < queues_.size()) {
    return t.injection_pin();
  }
  if (t.affinity() != kNoCore && t.affinity() < queues_.size()) {
    return t.affinity();
  }
  if (t.last_core() != kNoCore && t.last_core() < queues_.size()) {
    return t.last_core();
  }
  return kNoCore;
}

void UleScheduler::enqueue(Thread& t) {
  // Fold the interactivity score into the run-queue priority machinery:
  // interactive threads (low score) queue ahead of batch threads.
  t.set_estcpu(2.0 * interactivity_score(t));
  CoreId cpu = home_cpu(t);
  if (cpu == kNoCore) {
    cpu = static_cast<CoreId>(next_cpu_);
    next_cpu_ = (next_cpu_ + 1) % queues_.size();
  }
  queues_[cpu].enqueue(&t);
}

void UleScheduler::enqueue_front(Thread& t) {
  t.set_estcpu(2.0 * interactivity_score(t));
  CoreId cpu = home_cpu(t);
  if (cpu == kNoCore) cpu = 0;
  queues_[cpu].enqueue_front(&t);
}

Thread* UleScheduler::pick_next(CoreId core, sim::SimTime /*now*/) {
  assert(core < queues_.size());
  if (Thread* t = queues_[core].pick(core)) return t;
  if (!config_.work_stealing) return nullptr;
  // Steal from the most loaded sibling queue.
  std::size_t victim = queues_.size();
  std::size_t best_load = 0;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    if (q == core) continue;
    if (queues_[q].peek(core) != nullptr && queues_[q].size() > best_load) {
      best_load = queues_[q].size();
      victim = q;
    }
  }
  if (victim == queues_.size()) return nullptr;
  Thread* t = queues_[victim].pick(core);
  if (t != nullptr) ++steals_;
  return t;
}

void UleScheduler::quantum_expired(Thread& t, double ran_seconds,
                                   sim::SimTime /*now*/) {
  history(t).run_seconds += ran_seconds;
  enqueue(t);
}

void UleScheduler::thread_stopped(Thread& t, double ran_seconds,
                                  sim::SimTime /*now*/) {
  history(t).run_seconds += ran_seconds;
}

void UleScheduler::dequeue(Thread& t) {
  for (auto& q : queues_) {
    if (q.remove(&t)) return;
  }
}

void UleScheduler::periodic(std::size_t /*runnable*/, sim::SimTime /*now*/) {
  // Forget old behaviour so phase changes re-classify threads.
  for (auto& h : histories_) {
    h.run_seconds *= config_.history_decay;
    h.sleep_seconds *= config_.history_decay;
  }
}

void UleScheduler::apply_sleep_decay(Thread& t, double slept_seconds) {
  if (slept_seconds > 0.0) history(t).sleep_seconds += slept_seconds;
}

std::size_t UleScheduler::runnable_count() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

}  // namespace dimetrodon::sched
