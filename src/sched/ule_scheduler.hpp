#pragma once

#include <vector>

#include "sched/runqueue.hpp"
#include "sched/scheduler.hpp"

namespace dimetrodon::sched {

struct UleSchedulerConfig {
  /// ULE's dynamic timeslice: the base slice granted to batch threads.
  sim::SimTime base_timeslice = sim::from_ms(100);
  /// Interactive threads get short slices and queue priority.
  sim::SimTime interactive_timeslice = sim::from_ms(25);
  /// Interactivity scoring window: sleep and run time accumulate into a
  /// score in [0, 100]; below the threshold a thread is "interactive".
  double interactivity_threshold = 30.0;
  /// Exponential forgetting applied to the sleep/run history each second.
  double history_decay = 0.8;
  /// Steal work from another CPU's queue when the local one is empty.
  bool work_stealing = true;
};

/// FreeBSD's ULE scheduler, reduced to the structure that matters for
/// Dimetrodon: per-CPU run queues with cache affinity, an
/// interactivity score derived from the sleep:run ratio (interactive threads
/// preempt batch ones and get short slices), and idle-time work stealing.
/// The paper modified the 4.4BSD scheduler "for simplicity of
/// implementation, however the mechanism generalizes to ULE and other
/// schedulers" (§3.1, fn. 2) — this class is that generalization, exercised
/// by the scheduler-ablation bench.
class UleScheduler final : public Scheduler {
 public:
  UleScheduler(std::size_t num_cpus, UleSchedulerConfig config);
  explicit UleScheduler(std::size_t num_cpus)
      : UleScheduler(num_cpus, UleSchedulerConfig()) {}

  void enqueue(Thread& t) override;
  void enqueue_front(Thread& t) override;
  Thread* pick_next(CoreId core, sim::SimTime now) override;
  void quantum_expired(Thread& t, double ran_seconds,
                       sim::SimTime now) override;
  void thread_stopped(Thread& t, double ran_seconds, sim::SimTime now) override;
  void dequeue(Thread& t) override;
  void periodic(std::size_t runnable_threads, sim::SimTime now) override;
  void apply_sleep_decay(Thread& t, double slept_seconds) override;
  sim::SimTime timeslice() const override { return config_.base_timeslice; }
  sim::SimTime timeslice_for(const Thread& t) const override {
    return is_interactive(t) ? config_.interactive_timeslice
                             : config_.base_timeslice;
  }
  std::size_t runnable_count() const override;

  /// ULE's interactivity score for a thread, in [0, 100]; lower is more
  /// interactive. Exposed for tests and diagnostics.
  double interactivity_score(const Thread& t) const;
  bool is_interactive(const Thread& t) const {
    return interactivity_score(t) < config_.interactivity_threshold;
  }

  std::uint64_t steals() const { return steals_; }

 private:
  struct History {
    double run_seconds = 0.0;
    double sleep_seconds = 0.0;
  };

  CoreId home_cpu(const Thread& t) const;
  History& history(const Thread& t);
  const History& history(const Thread& t) const;

  UleSchedulerConfig config_;
  std::vector<RunQueue> queues_;  // one per CPU
  mutable std::vector<History> histories_;  // indexed by ThreadId
  std::uint64_t steals_ = 0;
  std::size_t next_cpu_ = 0;  // round-robin placement for fresh threads
};

}  // namespace dimetrodon::sched
