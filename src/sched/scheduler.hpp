#pragma once

#include <optional>

#include "sched/runqueue.hpp"
#include "sched/thread.hpp"
#include "sim/time.hpp"

namespace dimetrodon::sched {

/// Dimetrodon's attachment point. The machine consults the hook each time the
/// scheduler is about to dispatch a thread onto a core; returning an idle
/// quantum length makes the core run the idle thread instead while the
/// displaced thread sits pinned on the run queue (paper §3.1).
class InjectionHook {
 public:
  virtual ~InjectionHook() = default;

  /// Return the idle quantum length to inject instead of running `t`, or
  /// nullopt to dispatch normally.
  virtual std::optional<sim::SimTime> before_dispatch(const Thread& t,
                                                      CoreId core,
                                                      sim::SimTime now) = 0;

  /// Notification that the injected idle quantum for `t` on `core` finished.
  virtual void on_injection_complete(const Thread& t, CoreId core,
                                     sim::SimTime now) = 0;
};

/// Scheduler policy interface. The machine owns thread lifecycle and core
/// state; the scheduler decides ordering and timeslices.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// A thread became runnable (created or woke up).
  virtual void enqueue(Thread& t) = 0;

  /// Return a displaced thread to the queue without losing its turn
  /// (idle-injection pin path).
  virtual void enqueue_front(Thread& t) = 0;

  /// Pop the next thread for `core`; nullptr means the core should idle.
  virtual Thread* pick_next(CoreId core, sim::SimTime now) = 0;

  /// The running thread's timeslice expired; account and requeue.
  virtual void quantum_expired(Thread& t, double ran_seconds,
                               sim::SimTime now) = 0;

  /// The running thread blocked or exited after running for `ran_seconds`.
  virtual void thread_stopped(Thread& t, double ran_seconds,
                              sim::SimTime now) = 0;

  /// Remove a queued thread (it exited or was killed while runnable).
  virtual void dequeue(Thread& t) = 0;

  /// Periodic bookkeeping (the 4.4BSD schedcpu: estcpu decay). Called once
  /// per second of simulated time with the current runnable-thread count.
  virtual void periodic(std::size_t runnable_threads, sim::SimTime now) = 0;

  /// A thread is waking after sleeping for `slept_seconds`: apply the
  /// 4.4BSD p_slptime credit (estcpu decays for the time spent asleep, so a
  /// periodic process wakes with interactive priority). Called before
  /// enqueue().
  virtual void apply_sleep_decay(Thread& t, double slept_seconds) = 0;

  /// Round-robin timeslice.
  virtual sim::SimTime timeslice() const = 0;

  /// Per-thread timeslice (ULE grants interactive threads shorter slices);
  /// defaults to the global timeslice.
  virtual sim::SimTime timeslice_for(const Thread& t) const {
    (void)t;
    return timeslice();
  }

  virtual std::size_t runnable_count() const = 0;

  /// Snapshot support: append every queued thread to `out` in dequeue order,
  /// such that enqueue()ing them into a freshly constructed scheduler (after
  /// thread bookkeeping fields are restored) reproduces this scheduler's
  /// queue state exactly. The default throws — schedulers with state beyond
  /// the queue (e.g. ULE's per-thread histories) opt in explicitly.
  virtual void snapshot_queue(std::vector<Thread*>& out) const;
};

struct BsdSchedulerConfig {
  sim::SimTime timeslice = sim::from_ms(100);
  // estcpu gained per second of CPU consumed (ticks at 127 Hz in BSD terms,
  // normalized here).
  double estcpu_per_cpu_second = 100.0;
  // Per-second estcpu decay applied for time spent asleep (p_slptime).
  double sleep_decay_per_second = 0.75;
};

/// The FreeBSD 7.2 default ("4.4BSD") scheduler the paper modified: global
/// multi-level feedback queue, fixed 100 ms round-robin timeslice, estcpu
/// load-dependent decay once per second.
class BsdScheduler final : public Scheduler {
 public:
  explicit BsdScheduler(BsdSchedulerConfig config = BsdSchedulerConfig())
      : config_(config) {}

  void enqueue(Thread& t) override;
  void enqueue_front(Thread& t) override;
  Thread* pick_next(CoreId core, sim::SimTime now) override;
  void quantum_expired(Thread& t, double ran_seconds,
                       sim::SimTime now) override;
  void thread_stopped(Thread& t, double ran_seconds, sim::SimTime now) override;
  void dequeue(Thread& t) override;
  void periodic(std::size_t runnable_threads, sim::SimTime now) override;
  void apply_sleep_decay(Thread& t, double slept_seconds) override;
  sim::SimTime timeslice() const override { return config_.timeslice; }
  std::size_t runnable_count() const override { return queue_.size(); }
  void snapshot_queue(std::vector<Thread*>& out) const override {
    queue_.queued_in_order(out);
  }

 private:
  void charge(Thread& t, double ran_seconds);

  BsdSchedulerConfig config_;
  RunQueue queue_;
};

}  // namespace dimetrodon::sched
