#pragma once

#include <cstdint>
#include <vector>

#include "obs/counters.hpp"
#include "power/energy.hpp"
#include "power/power_model.hpp"
#include "sched/core.hpp"
#include "sched/thread.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "thermal/rc_network.hpp"

namespace dimetrodon::sched {

/// In-memory checkpoint of a Machine's complete dynamic state, captured by
/// Machine::snapshot() and replayed by Machine::restore() into a freshly
/// constructed machine (same MachineConfig, same workload deployed at t=0).
///
/// The contract is *fork ≡ replay*: a machine restored from a snapshot
/// evolves bit-identically — same temperatures, same work counters, same
/// request outcomes, same event interleavings — to one that simply kept
/// running past the capture point. Two things make that exact:
///
///  * every pending event is captured with its (time, seq) pair and re-armed
///    in ascending seq order, so events that tie on the timestamp (the
///    recurring watchdog/schedcpu/monitor trio regularly does) fire in the
///    captured order, and
///  * all stochastic state (master RNG, per-thread RNG streams, cached
///    Box-Muller halves) is copied verbatim.
///
/// Deliberately NOT captured: the thermal per-dt operator cache (a pure
/// function of topology + dt; rebuilt lazily with bit-identical arithmetic,
/// so only the factorization/solve work counters can exceed the replay's)
/// and anything precondition-excluded by Machine::snapshot (meter, trace
/// sink, reference stepper, an attached injection hook).
struct MachineSnapshot {
  /// One captured pending event: scheduled time plus tie-break rank.
  struct EventStamp {
    bool armed = false;
    sim::SimTime at = 0;
    std::uint64_t seq = 0;
  };

  struct ThreadSnap {
    ThreadState state = ThreadState::kRunnable;
    CoreId affinity = kNoCore;
    CoreId injection_pin = kNoCore;
    bool injection_suspended = false;
    double burst_remaining = 0.0;
    double activity = 1.0;
    double cpu_seconds = 0.0;
    double work_completed = 0.0;
    std::uint64_t bursts_completed = 0;
    std::uint64_t times_scheduled = 0;
    std::uint64_t injections_suffered = 0;
    sim::SimTime created_at = 0;
    sim::SimTime finished_at = -1;
    double estcpu = 0.0;
    sim::SimTime sleep_started_at = -1;
    CoreId last_core = kNoCore;
    sim::Rng rng{0};
    std::vector<double> behavior_state;
  };

  struct CoreSnap {
    ThreadId current = kInvalidThread;
    ThreadId last_thread = kInvalidThread;
    CoreActivity activity = CoreActivity::kIdle;
    bool injected_idle = false;
    ThreadId injection_victim = kInvalidThread;
    power::CoreOperatingPoint op;
    std::size_t dvfs_level = 0;
    std::size_t duty_step_user = 8;
    sim::SimTime segment_start = 0;
    sim::SimTime quantum_deadline = 0;
    double quantum_ran_seconds = 0.0;
    sim::SimTime idle_settled_at = 0;
    double busy_seconds = 0.0;
    double idle_seconds = 0.0;
    double injected_idle_seconds = 0.0;
    std::uint64_t dispatches = 0;
    std::uint64_t injections = 0;
    std::uint64_t context_switches = 0;
    EventStamp timer;             // segment end / injected-idle-quantum end
    EventStamp transition_timer;  // C-state entry/exit completion
  };

  /// A pending per-thread timer (timed-sleep wakeup or injection-suspension
  /// expiry), including the payload its callback closed over.
  struct ThreadTimerSnap {
    std::uint8_t kind = 0;  // Machine::ThreadTimer::Kind
    ThreadId thread = kInvalidThread;
    CoreId where = kNoCore;      // injection-resume only
    sim::SimTime quantum = 0;    // injection-resume only
    sim::SimTime at = 0;
    std::uint64_t seq = 0;
  };

  sim::SimTime now = 0;
  std::uint64_t events_executed = 0;
  sim::Rng master_rng{0};

  thermal::RcNetwork::State thermal;
  sim::SimTime last_thermal_update = 0;

  power::EnergyAccountant::State energy;
  obs::CounterRegistry counters;

  std::vector<bool> tm_active;
  std::uint64_t tm_events = 0;
  std::vector<double> window_node_joules;
  sim::SimTime window_start = 0;

  std::size_t live_threads = 0;
  std::vector<ThreadSnap> threads;
  std::vector<CoreSnap> cores;
  /// Scheduler run-queue contents in dequeue order.
  std::vector<ThreadId> run_queue;
  std::vector<ThreadTimerSnap> thread_timers;

  EventStamp watchdog;
  EventStamp schedcpu;
  EventStamp monitor;
};

}  // namespace dimetrodon::sched
