#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/tracer.hpp"
#include "power/energy.hpp"
#include "power/meter.hpp"
#include "power/power_model.hpp"
#include "sched/core.hpp"
#include "sched/scheduler.hpp"
#include "sched/snapshot.hpp"
#include "sched/ule_scheduler.hpp"
#include "sched/thread.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "thermal/floorplan.hpp"
#include "thermal/rc_network.hpp"
#include "thermal/sensor.hpp"

namespace dimetrodon::sched {

/// Configuration of the simulated server (defaults reproduce the paper's
/// testbed, §3.2).
/// Which scheduler implementation drives the machine. The paper modified
/// the 4.4BSD scheduler; ULE is the generalization its footnote promises.
enum class SchedulerKind : std::uint8_t { kBsd, kUle };

struct MachineConfig {
  /// Physical cores (each with its own die node in the thermal network).
  std::size_t num_cores = 4;

  /// Simultaneous multithreading: two hardware contexts per physical core.
  /// The paper disabled SMT "in order to cause the entire core to enter the
  /// C1E low power state we need to halt all thread contexts on the core"
  /// (§3.2); enabling it here exercises exactly that interaction.
  bool smt_enabled = false;
  /// Per-context execution rate when the sibling context is also executing
  /// (two active siblings deliver 2*0.65 = 1.3x a single context).
  double smt_throughput_factor = 0.65;
  /// Extension (the paper's "additional care in co-scheduling idle quanta"):
  /// an injection on one context also suspends the sibling's thread for the
  /// same quantum so the whole physical core can reach C1E.
  bool smt_co_schedule_injection = false;
  thermal::FloorplanParams floorplan{};
  power::PowerModelParams power{};
  power::DvfsTable dvfs = power::DvfsTable::e5520();
  power::PowerMeter::Config meter{};
  SchedulerKind scheduler_kind = SchedulerKind::kBsd;
  BsdSchedulerConfig scheduler{};
  UleSchedulerConfig ule{};

  /// Idle state entered by idle cores (the platform's C1E).
  power::CState idle_cstate = power::CState::kC1E;

  /// Direct context-switch cost charged when a core switches threads.
  sim::SimTime context_switch_cost = sim::from_us(15);

  /// Pipeline drain/refill throughput overhead of TCC clock modulation,
  /// charged proportionally to the gated fraction (see Core::execution_rate).
  double clock_modulation_overhead = 0.12;

  /// Hardware thermal monitor (Intel TM1/PROCHOT): when a die crosses
  /// `prochot_c` the TCC force-throttles that core's clock until it cools
  /// below `prochot_release_c`. This is the worst-case DTM safety net the
  /// paper distinguishes preventive management from (§1) — Dimetrodon's job
  /// is to keep the system far away from it.
  bool hw_thermal_throttle = true;
  double prochot_c = 85.0;
  double prochot_release_c = 80.0;
  sim::SimTime thermal_monitor_period = sim::from_ms(5);
  std::size_t prochot_duty_step = 2;  // 25% clock duty while throttling

  /// Thermal integration substep: the implicit-Euler dt of the closed-form
  /// propagator. Integration happens lazily at machine interaction points
  /// (scheduler events, actuation, sensor/meter reads) where the span since
  /// the last update is fast-forwarded in O(log k) matvecs of this dt.
  sim::SimTime thermal_substep = sim::from_us(250);

  /// Upper bound on the span between thermal advances (a coarse self-
  /// rescheduling event). Power — including temperature-dependent leakage —
  /// is held constant across each span, so this bounds the leakage-feedback
  /// refresh interval on an otherwise quiet machine.
  sim::SimTime thermal_watchdog = sim::from_ms(5);

  /// Testing/benchmark mode: restore the pre-fast-forward stepper — a
  /// self-rescheduling `thermal_substep` event and one sequential LU solve
  /// per substep, with leakage refreshed every chunk. The parity suite and
  /// the before/after engine benchmark run against this.
  bool thermal_reference_stepper = false;

  /// Attach the sampled power meter (disable for large parameter sweeps).
  bool enable_meter = true;

  /// Start from idle thermal equilibrium instead of ambient.
  bool start_at_idle_equilibrium = true;

  /// May a waking kernel-class thread cut an injected idle quantum short?
  /// Default mirrors the paper's mechanism: the idle quantum runs to
  /// completion.
  bool kernel_preempts_injection = false;

  /// Injection semantics. true (default): an injection deschedules the
  /// victim thread for the idle quantum and the core idles only if no other
  /// eligible thread is runnable — the per-thread semantics implied by the
  /// paper's Figure 5, where a shielded "cool" process runs without
  /// interruption while "hot" threads are throttled. false: the literal
  /// §3.1 mechanism — the core runs the idle thread for the whole quantum
  /// with the victim pinned on the run queue. The two are identical whenever
  /// runnable threads <= cores (every single-workload experiment).
  bool injection_suspends_thread = true;

  /// Observability. Invoked once at construction; the returned sink receives
  /// every structured trace event (see src/obs). Leave empty (or return
  /// nullptr) for the zero-overhead path: counters still accrue, but no event
  /// is ever constructed. Configs are copied freely (e.g. per sweep run), so
  /// attachment is expressed as a factory rather than a sink instance.
  obs::SinkFactory trace_sink_factory;

  /// Period of the trace-time die-temperature sampler. Scheduled only when a
  /// sink is attached, and strictly read-only (no thermal-integration calls),
  /// so tracing can never perturb the simulation it observes.
  sim::SimTime trace_sensor_period = sim::from_ms(1);

  std::uint64_t seed = 0x5eed;
};

/// The simulated server: four cores under a 4.4BSD scheduler, an RC thermal
/// stack, a dynamic+leakage power model, coretemp-style sensors and a clamp
/// power meter. This is the substrate on which Dimetrodon (src/core) and the
/// baseline policies (src/policy) act.
class Machine {
 public:
  explicit Machine(MachineConfig config);

  // Non-copyable, non-movable: threads and events hold stable pointers in.
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- thread management -------------------------------------------------
  ThreadId create_thread(std::string name, ThreadClass cls, int nice,
                         std::unique_ptr<ThreadBehavior> behavior,
                         CoreId affinity = kNoCore);

  /// Wake a kSleepUntilWoken (or timed-sleeping) thread now. No-op if the
  /// thread is not sleeping.
  void wake_thread(ThreadId id);

  /// Re-pin a thread to a (logical) CPU, preempting it if it is currently
  /// running elsewhere — the cheap "migration" primitive that multicore
  /// thermal-management schemes like Heat-and-Run build on. Pass kNoCore to
  /// clear the affinity.
  void set_thread_affinity(ThreadId id, CoreId target);

  Thread& thread(ThreadId id) { return *threads_.at(id); }
  const Thread& thread(ThreadId id) const { return *threads_.at(id); }
  std::size_t thread_count() const { return threads_.size(); }
  std::size_t live_thread_count() const { return live_threads_; }

  // --- actuation (thermal management knobs) --------------------------------
  void set_injection_hook(InjectionHook* hook) { hook_ = hook; }
  InjectionHook* injection_hook() const { return hook_; }

  /// DVFS setpoint for one core / all cores (index into the DVFS ladder).
  void set_dvfs_level(CoreId core, std::size_t level);
  void set_all_dvfs_levels(std::size_t level);

  /// Live fan degradation/repair: re-aim the heatsink→ambient conductance at
  /// `fraction` (same (0, 1] domain and pow(f, 0.8) affinity law as the
  /// construction-time FloorplanParams::fan_speed_fraction). The thermal
  /// state is first fast-forwarded to "now" so the span already elapsed
  /// integrates under the old conductance; cached step operators rebuild
  /// lazily against the new one. Throws std::invalid_argument outside (0, 1].
  void set_fan_speed(double fraction);

  /// p4tcc-style clock duty step (1..8 meaning 12.5%..100%). This sets the
  /// software-requested duty; the hardware thermal monitor may force a lower
  /// effective duty while a die is over temperature.
  void set_clock_duty_step(CoreId core, std::size_t step);
  void set_all_clock_duty_steps(std::size_t step);

  /// True while the thermal monitor is throttling this physical core.
  bool thermal_throttle_active(std::size_t phys) const {
    return tm_active_.at(phys);
  }
  /// Total TM engagements (diagnostics).
  std::uint64_t thermal_throttle_engagements() const { return tm_events_; }

  // --- running --------------------------------------------------------------
  sim::SimTime now() const { return sim_.now(); }
  void run_for(sim::SimTime duration) { run_until(sim_.now() + duration); }
  void run_until(sim::SimTime deadline);

  /// Run until `pred()` is true or `deadline` passes; returns whether the
  /// predicate fired.
  bool run_until_condition(const std::function<bool()>& pred,
                           sim::SimTime deadline);

  /// Schedule an arbitrary callback (workload drivers use this for request
  /// arrivals etc.).
  void call_at(sim::SimTime when, std::function<void(sim::SimTime)> fn);

  // --- observation ----------------------------------------------------------
  const Core& core(CoreId id) const { return cores_.at(id); }
  /// Logical CPUs visible to the scheduler (2x physical when SMT is on).
  std::size_t num_cores() const { return cores_.size(); }
  std::size_t num_physical_cores() const { return config_.num_cores; }
  /// Physical core a logical CPU belongs to.
  std::size_t physical_of(CoreId logical) const {
    return config_.smt_enabled ? logical / 2 : logical;
  }

  thermal::RcNetwork& thermal_network() { return network_; }
  const thermal::RcNetwork& thermal_network() const { return network_; }
  const thermal::FloorplanNodes& thermal_nodes() const { return nodes_; }
  const thermal::CoreTempSensor& sensor(CoreId id) const {
    return sensors_.at(physical_of(id));
  }
  /// Mean of the per-core quantized sensor readings — the quantity the
  /// paper's experiments report.
  double mean_sensor_temp() const;
  double die_temperature(CoreId id) const {
    return network_.temperature(nodes_.die[physical_of(id)]);
  }

  /// Fast-forward the thermal network to the present instant, making "now" an
  /// interaction point under the lazy thermal clock. Feedback controllers
  /// call this before reading sensors so a sample observes current
  /// temperatures without adding a periodic substep — the fast-forward stays
  /// O(log k) in the number of elapsed substeps.
  void sync_thermal_now() { advance_thermal(sim_.now()); }

  /// True instantaneous package power right now, watts.
  double current_total_power();

  power::PowerMeter* meter() { return meter_ ? &*meter_ : nullptr; }
  const power::EnergyAccountant& energy() const { return energy_; }
  const power::CpuPowerModel& power_model() const { return power_model_; }
  const MachineConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }

  /// Fork an independent RNG stream from the machine's master seed.
  sim::Rng fork_rng() { return master_rng_.fork(); }

  // --- observability --------------------------------------------------------
  /// Structured event probes + always-on counter registry (src/obs).
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }
  /// Shorthand for the counter registry the tracer maintains.
  const obs::CounterRegistry& counters() const { return tracer_.counters(); }

  // --- accelerated thermal settling ----------------------------------------
  /// Average per-node power since the last mark (for steady-state jumps).
  void mark_power_window();
  /// Jump the thermal network to the steady state of the average power
  /// observed since mark_power_window(). Harnesses iterate run/jump to settle
  /// minutes of thermal time constants in seconds of simulated time.
  void jump_to_average_power_steady_state();

  // --- snapshot / warm-start ------------------------------------------------
  /// Capture the machine's complete dynamic state (see MachineSnapshot for
  /// the fork ≡ replay contract). Throws std::runtime_error when the machine
  /// is not snapshot-capable: a power meter or trace sink attached, the
  /// reference thermal stepper active, an injection hook installed, a
  /// scheduler or thread behavior without snapshot support, or pending
  /// events the machine does not track (e.g. workload call_at timers) — the
  /// reconciliation against the event queue turns any such gap into a loud
  /// failure instead of a silently diverging fork.
  MachineSnapshot snapshot();

  /// Restore a snapshot into this machine. Requires: freshly constructed
  /// with the identical MachineConfig, the identical workload deployed (so
  /// thread ids, names, behaviors and RNG forks line up), and the same
  /// snapshot preconditions (no meter/sink/hook/reference stepper). After
  /// this returns the machine evolves bit-identically to the one the
  /// snapshot was taken from.
  void restore(const MachineSnapshot& s);

 private:
  friend class MachineTestPeer;

  // Scheduling engine.
  void dispatch(Core& core);
  void run_thread(Core& core, Thread& t);
  void plan_segment(Core& core);
  void on_segment_end(Core& core);
  void enter_idle(Core& core, bool injected, sim::SimTime quantum,
                  Thread* victim);
  void finish_idle_entry(Core& core);
  void end_injected_idle(Core& core);
  void begin_idle_exit(Core& core);
  void finish_idle_exit(Core& core);
  void make_runnable(Thread& t);
  void suspend_for_injection(Thread& t, CoreId where, sim::SimTime quantum);
  void stop_current(Core& core, sim::SimTime now);
  void checkpoint_segment(Core& core);
  bool try_kick_idle_core(Thread& t);
  bool try_preempt_for_kernel_thread(Thread& t);
  void finish_thread(Core& core, Thread& t);

  // Physics.
  double physical_core_power(std::size_t phys) const;
  double execution_rate(const Core& c) const;
  Core* sibling(const Core& c);
  void sibling_checkpoint(Core& c);
  void replan_sibling(Core& c);
  void advance_thermal(sim::SimTime to);
  void integrate_chunk(double dt_seconds);
  void apply_powers(double span_seconds);
  void sync_thermal_counters();
  void schedule_substep();
  void schedule_thermal_watchdog();
  void schedule_meter_sample();
  void schedule_trace_sensor();
  void schedule_schedcpu();
  void schedule_thermal_monitor();
  // Absolute-time arming primitives shared by the periodic schedulers above
  // and snapshot restore (which re-arms captured events at captured times).
  void check_snapshot_preconditions() const;
  sim::EventHandle arm_thermal_watchdog(sim::SimTime at);
  sim::EventHandle arm_schedcpu(sim::SimTime at);
  sim::EventHandle arm_thermal_monitor(sim::SimTime at);
  void arm_sleep_wake(ThreadId id, sim::SimTime at);
  void arm_injection_resume(ThreadId victim, CoreId where, sim::SimTime quantum,
                            sim::SimTime at);
  void thermal_monitor_tick();
  void apply_effective_duty(Core& c);
  double core_power_now(const Core& c) const;
  double mean_c0_activity() const;

  MachineConfig config_;
  sim::Simulator sim_;
  sim::Rng master_rng_;

  thermal::RcNetwork network_;
  thermal::FloorplanNodes nodes_;
  std::vector<thermal::CoreTempSensor> sensors_;

  power::CpuPowerModel power_model_;
  std::optional<power::PowerMeter> meter_;
  power::EnergyAccountant energy_;

  std::unique_ptr<Scheduler> scheduler_;
  InjectionHook* hook_ = nullptr;
  obs::Tracer tracer_;

  std::vector<Core> cores_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::size_t live_threads_ = 0;

  sim::SimTime last_thermal_update_ = 0;

  // Handles to the machine's recurring self-rescheduling events, plus a
  // registry of in-flight per-thread timers (timed-sleep wakeups and
  // injection-suspension expiries, with the payloads their callbacks close
  // over). Together with the per-core timers these account for every event
  // the machine itself puts in the queue — the inventory snapshot() captures
  // and reconciles against the queue's live count.
  sim::EventHandle watchdog_timer_;
  sim::EventHandle schedcpu_timer_;
  sim::EventHandle monitor_timer_;
  struct ThreadTimer {
    enum class Kind : std::uint8_t { kWake = 0, kInjectionResume = 1 };
    Kind kind = Kind::kWake;
    ThreadId thread = kInvalidThread;
    CoreId where = kNoCore;    // injection-resume only
    sim::SimTime quantum = 0;  // injection-resume only
    sim::EventHandle handle;
  };
  std::vector<ThreadTimer> thread_timers_;
  void track_thread_timer(ThreadTimer&& t);

  // Power-window accumulators for steady-state jumps (joules per node).
  std::vector<double> window_node_joules_;
  sim::SimTime window_start_ = 0;

  // Hardware thermal monitor state (per physical core).
  std::vector<bool> tm_active_;
  std::uint64_t tm_events_ = 0;
};

}  // namespace dimetrodon::sched
