#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dimetrodon::sched {

using ThreadId = std::uint32_t;
inline constexpr ThreadId kInvalidThread = 0xffffffff;
using CoreId = std::uint32_t;
inline constexpr CoreId kNoCore = 0xffffffff;

enum class ThreadState : std::uint8_t {
  kRunnable,  // on a run queue
  kRunning,   // current on some core
  kSleeping,  // blocked (timed or until woken)
  kDone,      // exited
};

/// Scheduling class. Kernel threads service interrupts and are exempt from
/// idle injection under the paper's default policy (§3.1: "We always schedule
/// kernel-level threads").
enum class ThreadClass : std::uint8_t { kUser, kKernel };

/// One CPU burst requested by a thread behavior: `work_seconds` of execution
/// measured at the nominal clock (a core at reduced frequency or clock duty
/// completes it proportionally slower) with the given switching-activity
/// factor for the power model.
struct Burst {
  double work_seconds = 0.0;
  double activity = 1.0;
};

/// What a thread does after finishing a burst.
struct BurstOutcome {
  enum class Kind : std::uint8_t {
    kContinue,        // immediately request the next burst
    kSleepFor,        // block for `sleep_for`, then request the next burst
    kSleepUntilWoken, // block until Machine::wake_thread
    kExit,            // thread terminates
  };
  Kind kind = Kind::kExit;
  sim::SimTime sleep_for = 0;

  static BurstOutcome Continue() { return {Kind::kContinue, 0}; }
  static BurstOutcome SleepFor(sim::SimTime d) { return {Kind::kSleepFor, d}; }
  static BurstOutcome SleepUntilWoken() { return {Kind::kSleepUntilWoken, 0}; }
  static BurstOutcome Exit() { return {Kind::kExit, 0}; }
};

/// Workload-side interface: supplies CPU bursts and reacts to their
/// completion. Implementations live in src/workload.
class ThreadBehavior {
 public:
  virtual ~ThreadBehavior() = default;

  /// Next CPU burst. Called when the thread is dispatched with no work left.
  virtual Burst next_burst(sim::SimTime now, sim::Rng& rng) = 0;

  /// Called when the current burst's work is fully executed.
  virtual BurstOutcome on_burst_complete(sim::SimTime now, sim::Rng& rng) = 0;

  /// Snapshot support: append this behavior's mutable state (if any) to
  /// `out` and return true. The default returns false — "cannot be
  /// checkpointed" — which makes Machine::snapshot refuse loudly instead of
  /// forking a behavior whose hidden state would silently diverge.
  virtual bool save_state(std::vector<double>& out) const {
    (void)out;
    return false;
  }
  /// Restore state appended by save_state (same length, same order).
  virtual void load_state(const std::vector<double>& in) { (void)in; }
};

/// Kernel thread control block. Owned by the Machine; scheduler and policies
/// hold non-owning pointers.
class Thread {
 public:
  Thread(ThreadId id, std::string name, ThreadClass cls, int nice,
         std::unique_ptr<ThreadBehavior> behavior, sim::Rng rng)
      : id_(id),
        name_(std::move(name)),
        cls_(cls),
        nice_(nice),
        behavior_(std::move(behavior)),
        rng_(std::move(rng)) {}

  ThreadId id() const { return id_; }
  const std::string& name() const { return name_; }
  ThreadClass thread_class() const { return cls_; }
  int nice() const { return nice_; }

  ThreadState state() const { return state_; }
  void set_state(ThreadState s) { state_ = s; }

  /// Hard affinity requested at creation (kNoCore = any).
  CoreId affinity() const { return affinity_; }
  void set_affinity(CoreId c) { affinity_ = c; }

  /// Temporary pin applied while an injected idle quantum displaces this
  /// thread (paper §3.1: the preempted thread is pinned on the run queue so
  /// no other core runs it, then unpinned when the idle quantum ends).
  CoreId injection_pin() const { return injection_pin_; }
  void set_injection_pin(CoreId c) { injection_pin_ = c; }

  /// True while the thread is descheduled by an injected idle quantum under
  /// suspension semantics; shields it from external wakeups until the
  /// quantum expires.
  bool injection_suspended() const { return injection_suspended_; }
  void set_injection_suspended(bool s) { injection_suspended_ = s; }

  /// Core this thread may run on right now (combines affinity + pin).
  bool runnable_on(CoreId core) const {
    if (injection_pin_ != kNoCore && injection_pin_ != core) return false;
    if (affinity_ != kNoCore && affinity_ != core) return false;
    return true;
  }

  ThreadBehavior& behavior() { return *behavior_; }
  sim::Rng& rng() { return rng_; }

  // --- burst accounting (managed by the Machine) ---
  double burst_remaining() const { return burst_remaining_; }
  void set_burst_remaining(double w) { burst_remaining_ = w; }
  double activity() const { return activity_; }
  void set_activity(double a) { activity_ = a; }

  double cpu_seconds_consumed() const { return cpu_seconds_; }
  void add_cpu_seconds(double s) { cpu_seconds_ += s; }
  void set_cpu_seconds(double s) { cpu_seconds_ = s; }
  double work_completed() const { return work_completed_; }
  void add_work_completed(double w) { work_completed_ += w; }
  void set_work_completed(double w) { work_completed_ = w; }
  std::uint64_t bursts_completed() const { return bursts_completed_; }
  void increment_bursts_completed() { ++bursts_completed_; }
  void set_bursts_completed(std::uint64_t n) { bursts_completed_ = n; }
  std::uint64_t times_scheduled() const { return times_scheduled_; }
  void increment_times_scheduled() { ++times_scheduled_; }
  void set_times_scheduled(std::uint64_t n) { times_scheduled_ = n; }
  std::uint64_t injections_suffered() const { return injections_suffered_; }
  void increment_injections_suffered() { ++injections_suffered_; }
  void set_injections_suffered(std::uint64_t n) { injections_suffered_ = n; }

  sim::SimTime created_at() const { return created_at_; }
  void set_created_at(sim::SimTime t) { created_at_ = t; }
  sim::SimTime finished_at() const { return finished_at_; }
  void set_finished_at(sim::SimTime t) { finished_at_ = t; }

  // --- 4.4BSD scheduler bookkeeping ---
  double estcpu() const { return estcpu_; }
  void set_estcpu(double e) { estcpu_ = e; }
  /// When the thread last entered a sleeping state (-1 if never slept).
  sim::SimTime sleep_started_at() const { return sleep_started_at_; }
  void set_sleep_started_at(sim::SimTime t) { sleep_started_at_ = t; }
  CoreId last_core() const { return last_core_; }
  void set_last_core(CoreId c) { last_core_ = c; }

 private:
  ThreadId id_;
  std::string name_;
  ThreadClass cls_;
  int nice_;
  std::unique_ptr<ThreadBehavior> behavior_;
  sim::Rng rng_;

  ThreadState state_ = ThreadState::kRunnable;
  CoreId affinity_ = kNoCore;
  CoreId injection_pin_ = kNoCore;
  bool injection_suspended_ = false;

  double burst_remaining_ = 0.0;
  double activity_ = 1.0;
  double cpu_seconds_ = 0.0;
  double work_completed_ = 0.0;
  std::uint64_t bursts_completed_ = 0;
  std::uint64_t times_scheduled_ = 0;
  std::uint64_t injections_suffered_ = 0;
  sim::SimTime created_at_ = 0;
  sim::SimTime finished_at_ = -1;

  double estcpu_ = 0.0;
  sim::SimTime sleep_started_at_ = -1;
  CoreId last_core_ = kNoCore;
};

}  // namespace dimetrodon::sched
