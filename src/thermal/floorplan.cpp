#include "thermal/floorplan.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace dimetrodon::thermal {

FloorplanNodes build_server_floorplan(RcNetwork& network,
                                      const FloorplanParams& params) {
  if (params.num_cores == 0 || params.num_cores > 8) {
    throw std::invalid_argument("floorplan supports 1..8 cores");
  }
  if (params.fan_speed_fraction <= 0.0 || params.fan_speed_fraction > 1.0) {
    throw std::invalid_argument("fan speed fraction must be in (0, 1]");
  }

  FloorplanNodes nodes;
  nodes.ambient = network.add_fixed_node("ambient", params.ambient_c);
  nodes.heatsink =
      network.add_node("heatsink", params.hs_capacitance, params.ambient_c);
  nodes.package =
      network.add_node("package", params.pkg_capacitance, params.ambient_c);

  const double fan_factor = std::pow(params.fan_speed_fraction, 0.8);
  network.connect(nodes.heatsink, nodes.ambient,
                  fan_factor / params.hs_to_ambient_resistance);
  network.connect_r(nodes.package, nodes.heatsink,
                    params.pkg_to_hs_resistance);

  for (std::size_t i = 0; i < params.num_cores; ++i) {
    nodes.die[i] = network.add_node("die" + std::to_string(i),
                                    params.die_capacitance, params.ambient_c);
    network.connect_r(nodes.die[i], nodes.package,
                      params.die_to_pkg_resistance);
    if (i > 0) {
      network.connect_r(nodes.die[i], nodes.die[i - 1],
                        params.die_lateral_resistance);
    }
  }
  return nodes;
}

}  // namespace dimetrodon::thermal
