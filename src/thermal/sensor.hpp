#pragma once

#include <cmath>

#include "thermal/rc_network.hpp"

namespace dimetrodon::thermal {

/// Digital thermal sensor in the style of the FreeBSD `coretemp` driver the
/// paper reads: per-core junction temperature with 1 °C readout resolution.
/// The paper's most extreme efficiency points are sub-degree effects seen
/// through this quantization, so benchmarks must read temperatures through
/// this path rather than the continuous model state.
class CoreTempSensor {
 public:
  CoreTempSensor(const RcNetwork& network, NodeId node,
                 double quantization_c = 1.0)
      : network_(&network), node_(node), quantization_(quantization_c) {}

  /// Quantized reading (floor to the sensor's resolution, like the MSR's
  /// integer degrees field).
  double read() const {
    const double t = network_->temperature(node_);
    if (quantization_ <= 0.0) return t;
    return std::floor(t / quantization_) * quantization_;
  }

  /// Unquantized model temperature (for validation against the analytic
  /// model only; experiment harnesses use read()).
  double read_exact() const { return network_->temperature(node_); }

  NodeId node() const { return node_; }

 private:
  const RcNetwork* network_;
  NodeId node_;
  double quantization_;
};

}  // namespace dimetrodon::thermal
