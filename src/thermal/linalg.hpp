#pragma once

#include <cstddef>
#include <vector>

namespace dimetrodon::thermal {

/// Minimal dense linear algebra for the small (≤ ~16 node) thermal networks
/// this library builds. Row-major square matrices.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), a_(n * n, 0.0) {}

  /// The n×n identity.
  static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
    return m;
  }

  std::size_t size() const { return n_; }
  double& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
  double at(std::size_t r, std::size_t c) const { return a_[r * n_ + c]; }

 private:
  std::size_t n_ = 0;
  std::vector<double> a_;
};

/// y = M x. `x` must have M.size() elements; `y` is resized. `y` must not
/// alias `x`.
void matvec(const DenseMatrix& m, const std::vector<double>& x,
            std::vector<double>& y);

/// y += M x (same contracts as matvec).
void matvec_accumulate(const DenseMatrix& m, const std::vector<double>& x,
                       std::vector<double>& y);

/// C = A B (A, B same size; C must not alias either operand).
DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b);

/// C = A + B.
DenseMatrix matadd(const DenseMatrix& a, const DenseMatrix& b);

/// LU factorization with partial pivoting. Factor once, solve many times —
/// the implicit-Euler thermal stepper reuses one factorization for every
/// substep at a fixed dt.
class LuFactorization {
 public:
  /// Factor `m`. Returns false (and leaves the object unusable) if the matrix
  /// is numerically singular.
  bool factor(const DenseMatrix& m);

  /// Solve A x = b in place; `b` must have size() elements.
  /// Requires a successful factor().
  void solve(std::vector<double>& b) const;

  bool valid() const { return valid_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  bool valid_ = false;
};

}  // namespace dimetrodon::thermal
