#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dimetrodon::thermal {

/// Minimal dense linear algebra for the small (≤ ~16 node) thermal networks
/// this library builds. Row-major square matrices.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), a_(n * n, 0.0) {}

  /// The n×n identity.
  static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
    return m;
  }

  std::size_t size() const { return n_; }
  double& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
  double at(std::size_t r, std::size_t c) const { return a_[r * n_ + c]; }
  /// Contiguous row `r` (n elements, row-major) — the matvec kernels stream
  /// rows directly instead of re-deriving the offset per element.
  const double* row(std::size_t r) const { return a_.data() + r * n_; }

 private:
  std::size_t n_ = 0;
  std::vector<double> a_;
};

/// y = M x. `x` must have M.size() elements; `y` is resized. `y` must not
/// alias `x`.
///
/// The kernel unrolls each row's dot product 4x while KEEPING the single
/// accumulator and the term order — every `acc += a[c] * x[c]` of the naive
/// loop executes in the same sequence on the same chain, so the result is
/// bitwise-identical to matvec_reference under any -ffp-contract setting
/// (contraction fuses each term's multiply-add the same way in both). The
/// unroll buys straight-line instruction-level parallelism on the loads and
/// amortized loop overhead, not a reassociated (and differently-rounded)
/// reduction.
void matvec(const DenseMatrix& m, const std::vector<double>& x,
            std::vector<double>& y);

/// y += M x (same contracts and parity guarantee as matvec).
void matvec_accumulate(const DenseMatrix& m, const std::vector<double>& x,
                       std::vector<double>& y);

/// The textbook row-loop matvec, kept as the parity oracle: tests assert
/// the unrolled kernels match it bit-for-bit, and the microbench reports
/// the unroll's speedup against it.
void matvec_reference(const DenseMatrix& m, const std::vector<double>& x,
                      std::vector<double>& y);

/// Compressed-sparse-row view of a square matrix, built by dropping *exact*
/// zeros from a DenseMatrix. Because only exact zeros are dropped and each
/// row's entries stay in column order, the CSR matvec performs the identical
/// sequence of fused `acc += v * x[c]` operations as the dense matvec over
/// the same matrix — bitwise-identical results for finite inputs, not merely
/// close. That is the property the thermal propagator relies on: switching
/// dense -> sparse must not perturb a single ulp of any temperature.
///
/// The propagator powers A^(2^j) are block-dense: entries couple free nodes
/// within one connected component (components are separated by fixed
/// boundary nodes, e.g. per-rack air networks joined only through the fixed
/// CRAC node) and are exact zeros across components — LU with partial
/// pivoting, matmul, and matadd all preserve those structural zeros exactly.
/// So fill ratio falls as 1/#components and the CSR walk skips whole blocks.
///
/// Layout is SIMD/prefetch-friendly: one contiguous value array and one
/// contiguous column-index array, walked linearly per row.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Build from a dense matrix, keeping entries with `v != 0.0` only.
  static SparseMatrix from_dense(const DenseMatrix& m);

  std::size_t size() const { return n_; }
  std::size_t nonzeros() const { return values_.size(); }
  /// nnz / n², in [0, 1]. 0 for an empty matrix.
  double fill_ratio() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(values_.size()) /
                         (static_cast<double>(n_) * static_cast<double>(n_));
  }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& cols() const { return cols_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;    // n+1 entries
  std::vector<std::uint32_t> cols_;     // column index per stored value
  std::vector<double> values_;
};

/// y = M x (CSR). Bitwise-identical to the dense matvec over the matrix the
/// CSR was built from. `y` is resized; must not alias `x`. Unrolled 4x on
/// the same single-accumulator chain as the dense kernel (see matvec above
/// for why that preserves every bit).
void matvec(const SparseMatrix& m, const std::vector<double>& x,
            std::vector<double>& y);

/// y += M x (CSR; same contracts and parity guarantee).
void matvec_accumulate(const SparseMatrix& m, const std::vector<double>& x,
                       std::vector<double>& y);

/// Naive CSR matvec — the parity oracle for the unrolled CSR kernel.
void matvec_reference(const SparseMatrix& m, const std::vector<double>& x,
                      std::vector<double>& y);

/// C = A B (A, B same size; C must not alias either operand).
DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b);

/// C = A + B.
DenseMatrix matadd(const DenseMatrix& a, const DenseMatrix& b);

/// LU factorization with partial pivoting. Factor once, solve many times —
/// the implicit-Euler thermal stepper reuses one factorization for every
/// substep at a fixed dt.
class LuFactorization {
 public:
  /// Factor `m`. Returns false (and leaves the object unusable) if the matrix
  /// is numerically singular.
  bool factor(const DenseMatrix& m);

  /// Solve A x = b in place; `b` must have size() elements.
  /// Requires a successful factor().
  void solve(std::vector<double>& b) const;

  bool valid() const { return valid_; }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  bool valid_ = false;
};

}  // namespace dimetrodon::thermal
