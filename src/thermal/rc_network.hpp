#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "thermal/linalg.hpp"

namespace dimetrodon::thermal {

using NodeId = std::size_t;

/// Lumped RC thermal network (the standard compact model behind tools like
/// HotSpot). Nodes are thermal masses (capacitance J/°C) or fixed-temperature
/// boundaries (ambient); edges are thermal conductances (W/°C). Power sources
/// inject heat at nodes; `step()` advances temperatures with unconditionally
/// stable implicit Euler, so the millisecond-scale die dynamics and the
/// minute-scale heatsink dynamics integrate correctly with one step size.
///
/// Because implicit Euler at a fixed dt is an *affine* map of the free-node
/// temperature vector — T' = A·T + b with A = M⁻¹·(C/dt), b = M⁻¹·(P + G_b·
/// T_fixed), M = C/dt + G — k substeps under a constant power vector have the
/// closed form T_k = A^k·T + (I + A + … + A^(k-1))·b. `advance()` evaluates
/// that with binary-lifted powers A^(2^j) and matching geometric sums, so a
/// long fast-forward costs O(log k) small matvecs instead of k linear solves.
class RcNetwork {
 public:
  /// Add a thermal mass. `capacitance` must be > 0.
  NodeId add_node(std::string name, double capacitance_j_per_c,
                  double initial_temp_c);

  /// Add a fixed-temperature boundary node (e.g. ambient air).
  NodeId add_fixed_node(std::string name, double temp_c);

  /// Connect two nodes with thermal conductance g (W/°C). Throws
  /// std::out_of_range on a bad NodeId and std::invalid_argument on a
  /// self-loop or non-positive conductance — thrown (not assert) so Release
  /// builds catch bad FleetSpec overrides too. `resistance` convenience:
  /// connect_r uses g = 1/r.
  void connect(NodeId a, NodeId b, double conductance_w_per_c);
  void connect_r(NodeId a, NodeId b, double resistance_c_per_w) {
    connect(a, b, 1.0 / resistance_c_per_w);
  }

  /// Re-weight an existing edge (either endpoint order) to conductance g.
  /// This is the live-degradation knob — a fan slowing down mid-run changes
  /// the heatsink→ambient conductance of an edge that already exists, which
  /// calling connect() again would NOT do (it appends a parallel edge and
  /// the conductances would add). Bumps the topology revision so every
  /// cached step operator is rebuilt against the new G matrix. Throws
  /// std::invalid_argument when no such edge exists or g <= 0.
  void set_conductance(NodeId a, NodeId b, double conductance_w_per_c);

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& name(NodeId n) const { return nodes_[n].name; }
  bool is_fixed(NodeId n) const { return nodes_[n].fixed; }

  double temperature(NodeId n) const { return temps_[n]; }
  /// Throws std::out_of_range on a bad NodeId (checked in Release too).
  void set_temperature(NodeId n, double t);

  /// Set every free node to `t` (fixed nodes keep their boundary value).
  void set_all_temperatures(double t);

  double power(NodeId n) const { return powers_[n]; }
  /// Throws std::out_of_range on a bad NodeId. The check is one predictable
  /// compare on an already-loaded size — noise next to the store it guards.
  void set_power(NodeId n, double watts) {
    if (n >= powers_.size()) {
      throw std::out_of_range("RcNetwork::set_power: bad NodeId");
    }
    powers_[n] = watts;
  }

  /// Advance all free-node temperatures by `dt_seconds` with the current
  /// power vector held constant (implicit Euler). The LU factorization is
  /// kept in a small per-dt cache, so alternating between a primary substep
  /// and partial-remainder chunks does not rebuild the primary factorization.
  void step(double dt_seconds);

  /// Advance `substeps` substeps of `dt_seconds` each, with the current power
  /// vector held constant, via the closed-form propagator (O(log substeps)
  /// matvecs). Physics-equivalent to calling `step(dt_seconds)` that many
  /// times; a single substep routes through the exact step() arithmetic so
  /// substeps <= 1 are bit-identical to the sequential reference.
  void advance(double dt_seconds, std::uint64_t substeps);

  /// Jump straight to the steady state for the current power vector.
  /// Requires every free node to have a conduction path to a fixed node.
  void solve_steady_state();

  /// Sum of injected power over all nodes (diagnostics / conservation tests).
  double total_power() const;

  /// Monotonic work counters for the stepping engine (observability; the
  /// machine mirrors these into its obs counter registry).
  struct Stats {
    std::uint64_t substeps = 0;            // substeps integrated, any path
    std::uint64_t fast_forward_steps = 0;  // substeps covered by lifted matvecs
    std::uint64_t factorizations = 0;      // step-matrix LU factorizations
    std::uint64_t solves = 0;              // LU back-substitutions
    std::uint64_t matvecs = 0;             // matrix-vector products, any kind
    std::uint64_t sparse_matvecs = 0;      // of those, via the CSR path
    std::uint64_t evictions = 0;           // StepOperator LRU evictions
  };
  const Stats& stats() const { return stats_; }

  /// Enable/disable the CSR fast path (default on). With sparsity disabled
  /// every matvec goes through the dense reference; results are bitwise
  /// identical either way (the CSR drops exact zeros only), so this knob
  /// exists for benchmarking and parity tests, not correctness.
  void set_sparse_enabled(bool enabled) { sparse_enabled_ = enabled; }
  bool sparse_enabled() const { return sparse_enabled_; }

  /// Portable dynamic state: everything `advance`/`step` read or write that
  /// is not topology. Captured/restored by the machine snapshot layer; the
  /// per-dt operator cache is deliberately *not* part of it — operators are
  /// a pure function of (topology, dt) and rebuild lazily with bit-identical
  /// arithmetic after a restore.
  struct State {
    std::vector<double> temps;
    std::vector<double> powers;
    Stats stats;
  };
  State save_state() const { return State{temps_, powers_, stats_}; }
  /// Restore a state captured from a network with identical topology.
  /// Throws std::invalid_argument on a node-count mismatch.
  void restore_state(const State& s);

 private:
  struct Node {
    std::string name;
    double capacitance = 0.0;  // J/°C; 0 for fixed nodes
    bool fixed = false;
  };
  struct Edge {
    NodeId a;
    NodeId b;
    double g;  // W/°C
  };

  /// Everything derived from one (dt, topology) pair: the factored implicit-
  /// Euler matrix M = C/dt + G, and — built lazily on the first multi-step
  /// advance — the binary-lifted propagator tables.
  struct StepOperator {
    double dt = -1.0;
    LuFactorization lu;                // M = C/dt + G over free nodes
    std::vector<DenseMatrix> a_pow;    // A^(2^j)
    std::vector<DenseMatrix> s_geo;    // I + A + … + A^(2^j - 1)
    // CSR twins of the lifted tables, built per level when the fill ratio
    // makes dense a loss (block-diagonal networks: rack air islands joined
    // only through the fixed CRAC node). Empty entries mean "use dense".
    std::vector<SparseMatrix> a_pow_csr;
    std::vector<SparseMatrix> s_geo_csr;
    std::vector<bool> level_sparse;    // per level: CSR twins populated?
    std::uint64_t last_used = 0;       // LRU tick
  };

  /// Rebuild free_index_/free_nodes_ and drop cached operators if the
  /// topology changed since they were built.
  void ensure_structure();

  /// Cached-or-built operator for this dt (throws on a singular matrix).
  StepOperator& operator_for(double dt_seconds);

  /// Grow op's lifted tables to cover a fast-forward of `substeps`.
  void ensure_levels(StepOperator& op, std::uint64_t substeps);

  /// rhs = P + G_boundary·T_fixed over free nodes (the constant input term).
  void assemble_input(std::vector<double>& rhs) const;

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<double> temps_;
  std::vector<double> powers_;

  // Mapping between all nodes and the free (non-fixed) subset the linear
  // solves operate on.
  std::vector<std::size_t> free_index_;  // node -> dense row, SIZE_MAX if fixed
  std::vector<NodeId> free_nodes_;       // dense row -> node

  // Per-dt operator cache. Small and LRU-evicted: the primary substep dt
  // stays resident across arbitrary partial-remainder chunks.
  static constexpr std::size_t kMaxCachedOperators = 8;
  std::vector<std::unique_ptr<StepOperator>> operators_;
  std::uint64_t operator_clock_ = 0;
  std::uint64_t topology_revision_ = 0;  // bumped by add_node/connect
  std::uint64_t built_revision_ = ~std::uint64_t{0};

  // CSR fast-path policy: build sparse twins of a lifted level when the
  // network is big enough for the bookkeeping to pay (>= kSparseMinNodes
  // free nodes) and the level's fill ratio is at or below kSparseMaxFill.
  // On a fully connected (single-component) network the propagator is dense
  // and the CSR path never engages.
  static constexpr std::size_t kSparseMinNodes = 8;
  static constexpr double kSparseMaxFill = 0.5;
  bool sparse_enabled_ = true;

  Stats stats_;
  std::vector<double> rhs_;
  std::vector<double> scratch_;
};

}  // namespace dimetrodon::thermal
