#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "thermal/linalg.hpp"

namespace dimetrodon::thermal {

using NodeId = std::size_t;

/// Lumped RC thermal network (the standard compact model behind tools like
/// HotSpot). Nodes are thermal masses (capacitance J/°C) or fixed-temperature
/// boundaries (ambient); edges are thermal conductances (W/°C). Power sources
/// inject heat at nodes; `step()` advances temperatures with unconditionally
/// stable implicit Euler, so the millisecond-scale die dynamics and the
/// minute-scale heatsink dynamics integrate correctly with one step size.
class RcNetwork {
 public:
  /// Add a thermal mass. `capacitance` must be > 0.
  NodeId add_node(std::string name, double capacitance_j_per_c,
                  double initial_temp_c);

  /// Add a fixed-temperature boundary node (e.g. ambient air).
  NodeId add_fixed_node(std::string name, double temp_c);

  /// Connect two nodes with thermal conductance g (W/°C). `resistance`
  /// convenience: connect_r uses g = 1/r.
  void connect(NodeId a, NodeId b, double conductance_w_per_c);
  void connect_r(NodeId a, NodeId b, double resistance_c_per_w) {
    connect(a, b, 1.0 / resistance_c_per_w);
  }

  std::size_t node_count() const { return nodes_.size(); }
  const std::string& name(NodeId n) const { return nodes_[n].name; }
  bool is_fixed(NodeId n) const { return nodes_[n].fixed; }

  double temperature(NodeId n) const { return temps_[n]; }
  void set_temperature(NodeId n, double t);

  /// Set every free node to `t` (fixed nodes keep their boundary value).
  void set_all_temperatures(double t);

  double power(NodeId n) const { return powers_[n]; }
  void set_power(NodeId n, double watts) { powers_[n] = watts; }

  /// Advance all free-node temperatures by `dt_seconds` with the current
  /// power vector held constant (implicit Euler). The LU factorization is
  /// cached and reused while dt and the topology stay the same.
  void step(double dt_seconds);

  /// Jump straight to the steady state for the current power vector.
  /// Requires every free node to have a conduction path to a fixed node.
  void solve_steady_state();

  /// Sum of injected power over all nodes (diagnostics / conservation tests).
  double total_power() const;

 private:
  struct Node {
    std::string name;
    double capacitance = 0.0;  // J/°C; 0 for fixed nodes
    bool fixed = false;
  };
  struct Edge {
    NodeId a;
    NodeId b;
    double g;  // W/°C
  };

  void build_step_matrix(double dt_seconds);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<double> temps_;
  std::vector<double> powers_;

  // Mapping between all nodes and the free (non-fixed) subset the linear
  // solves operate on.
  std::vector<std::size_t> free_index_;  // node -> dense row, SIZE_MAX if fixed
  std::vector<NodeId> free_nodes_;       // dense row -> node

  LuFactorization step_lu_;
  double cached_dt_ = -1.0;
  std::size_t cached_topology_edges_ = 0;
  std::size_t cached_topology_nodes_ = 0;
  std::vector<double> rhs_;
};

}  // namespace dimetrodon::thermal
