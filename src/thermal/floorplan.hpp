#pragma once

#include <array>
#include <cstddef>

#include "thermal/rc_network.hpp"

namespace dimetrodon::thermal {

/// Calibration constants for the simulated 1U server (Xeon E5520-class quad
/// core in a Supermicro chassis, thermostat setpoint 25.2 °C, fans pinned at
/// full speed — the configuration of the paper's testbed, §3.2).
///
/// Topology: per-core die node -> shared package node -> heatsink node ->
/// fixed ambient, plus weak lateral coupling between adjacent dies. The two
/// widely separated time constants reproduce the paper's observations that
/// cores "cool exponentially quickly within a short time window" (die, ~ms)
/// while overall temperatures stabilize only "after approximately 300
/// seconds" (heatsink, ~minute).
struct FloorplanParams {
  std::size_t num_cores = 4;
  double ambient_c = 25.2;

  // Die: small thermal mass, fast response.
  double die_capacitance = 0.009;   // J/°C
  double die_to_pkg_resistance = 1.3;  // °C/W
  double die_lateral_resistance = 4.0;  // °C/W between adjacent cores

  // Package / integrated heat spreader.
  double pkg_capacitance = 15.0;     // J/°C
  double pkg_to_hs_resistance = 0.08;  // °C/W

  // Heatsink + chassis airflow (fan at full speed).
  double hs_capacitance = 200.0;    // J/°C
  double hs_to_ambient_resistance = 0.22;  // °C/W at full fan speed

  // Fan law: effective hs->ambient conductance scales ~ speed^0.8.
  double fan_speed_fraction = 1.0;  // (0, 1]
};

/// Node handles into the constructed network.
struct FloorplanNodes {
  std::array<NodeId, 8> die{};  // first `num_cores` entries valid
  NodeId package = 0;
  NodeId heatsink = 0;
  NodeId ambient = 0;
};

/// Build the server thermal network. All free nodes start at the ambient
/// temperature; call `network.solve_steady_state()` after setting idle powers
/// to start from thermal equilibrium instead.
FloorplanNodes build_server_floorplan(RcNetwork& network,
                                      const FloorplanParams& params);

}  // namespace dimetrodon::thermal
