#include "thermal/linalg.hpp"

#include <cassert>
#include <cmath>

namespace dimetrodon::thermal {

namespace {

/// Shared row kernel: one accumulator, terms in column order, unrolled 4x.
/// Each statement is the naive loop's body verbatim, so the emitted op
/// sequence (fused or not) is term-for-term identical to the reference —
/// the unroll exposes the four loads per iteration to the pipeline without
/// introducing a second rounding order.
inline double dot_row(const double* a, const double* xv, std::size_t n) {
  double acc = 0.0;
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    acc += a[c] * xv[c];
    acc += a[c + 1] * xv[c + 1];
    acc += a[c + 2] * xv[c + 2];
    acc += a[c + 3] * xv[c + 3];
  }
  for (; c < n; ++c) acc += a[c] * xv[c];
  return acc;
}

/// CSR row kernel, same single-chain 4x unroll over the stored entries.
inline double dot_row_csr(const double* vals, const std::uint32_t* cols,
                          const double* xv, std::size_t begin,
                          std::size_t end) {
  double acc = 0.0;
  std::size_t k = begin;
  for (; k + 4 <= end; k += 4) {
    acc += vals[k] * xv[cols[k]];
    acc += vals[k + 1] * xv[cols[k + 1]];
    acc += vals[k + 2] * xv[cols[k + 2]];
    acc += vals[k + 3] * xv[cols[k + 3]];
  }
  for (; k < end; ++k) acc += vals[k] * xv[cols[k]];
  return acc;
}

}  // namespace

void matvec(const DenseMatrix& m, const std::vector<double>& x,
            std::vector<double>& y) {
  const std::size_t n = m.size();
  assert(x.size() == n);
  y.resize(n);
  const double* xv = x.data();
  for (std::size_t r = 0; r < n; ++r) y[r] = dot_row(m.row(r), xv, n);
}

void matvec_accumulate(const DenseMatrix& m, const std::vector<double>& x,
                       std::vector<double>& y) {
  const std::size_t n = m.size();
  assert(x.size() == n && y.size() == n);
  const double* xv = x.data();
  for (std::size_t r = 0; r < n; ++r) y[r] += dot_row(m.row(r), xv, n);
}

void matvec_reference(const DenseMatrix& m, const std::vector<double>& x,
                      std::vector<double>& y) {
  const std::size_t n = m.size();
  assert(x.size() == n);
  y.assign(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < n; ++c) acc += m.at(r, c) * x[c];
    y[r] = acc;
  }
}

SparseMatrix SparseMatrix::from_dense(const DenseMatrix& m) {
  SparseMatrix s;
  const std::size_t n = m.size();
  s.n_ = n;
  s.row_ptr_.reserve(n + 1);
  s.row_ptr_.push_back(0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      const double v = m.at(r, c);
      if (v != 0.0) {
        s.cols_.push_back(static_cast<std::uint32_t>(c));
        s.values_.push_back(v);
      }
    }
    s.row_ptr_.push_back(s.values_.size());
  }
  return s;
}

void matvec(const SparseMatrix& m, const std::vector<double>& x,
            std::vector<double>& y) {
  const std::size_t n = m.size();
  assert(x.size() == n);
  y.resize(n);
  const std::size_t* rp = m.row_ptr().data();
  const std::uint32_t* cols = m.cols().data();
  const double* vals = m.values().data();
  const double* xv = x.data();
  for (std::size_t r = 0; r < n; ++r) {
    // Single accumulator in stored (column) order: the exact operation
    // sequence of the dense matvec minus its zero terms — bitwise parity.
    y[r] = dot_row_csr(vals, cols, xv, rp[r], rp[r + 1]);
  }
}

void matvec_accumulate(const SparseMatrix& m, const std::vector<double>& x,
                       std::vector<double>& y) {
  const std::size_t n = m.size();
  assert(x.size() == n && y.size() == n);
  const std::size_t* rp = m.row_ptr().data();
  const std::uint32_t* cols = m.cols().data();
  const double* vals = m.values().data();
  const double* xv = x.data();
  for (std::size_t r = 0; r < n; ++r) {
    y[r] += dot_row_csr(vals, cols, xv, rp[r], rp[r + 1]);
  }
}

void matvec_reference(const SparseMatrix& m, const std::vector<double>& x,
                      std::vector<double>& y) {
  const std::size_t n = m.size();
  assert(x.size() == n);
  y.resize(n);
  const std::size_t* rp = m.row_ptr().data();
  const std::uint32_t* cols = m.cols().data();
  const double* vals = m.values().data();
  const double* xv = x.data();
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    const std::size_t end = rp[r + 1];
    for (std::size_t k = rp[r]; k < end; ++k) acc += vals[k] * xv[cols[k]];
    y[r] = acc;
  }
}

DenseMatrix matmul(const DenseMatrix& a, const DenseMatrix& b) {
  const std::size_t n = a.size();
  assert(b.size() == n);
  DenseMatrix c(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < n; ++k) {
      const double f = a.at(r, k);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) c.at(r, j) += f * b.at(k, j);
    }
  }
  return c;
}

DenseMatrix matadd(const DenseMatrix& a, const DenseMatrix& b) {
  const std::size_t n = a.size();
  assert(b.size() == n);
  DenseMatrix c(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t j = 0; j < n; ++j) c.at(r, j) = a.at(r, j) + b.at(r, j);
  }
  return c;
}

bool LuFactorization::factor(const DenseMatrix& m) {
  const std::size_t n = m.size();
  lu_ = m;
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  valid_ = false;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column at/below the diagonal.
    std::size_t pivot = col;
    double best = std::fabs(lu_.at(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu_.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_.at(pivot, c), lu_.at(col, c));
      }
      std::swap(perm_[pivot], perm_[col]);
    }
    const double inv = 1.0 / lu_.at(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = lu_.at(r, col) * inv;
      lu_.at(r, col) = f;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_.at(r, c) -= f * lu_.at(col, c);
      }
    }
  }
  valid_ = true;
  return true;
}

void LuFactorization::solve(std::vector<double>& b) const {
  assert(valid_);
  const std::size_t n = lu_.size();
  assert(b.size() == n);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower triangle).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_.at(i, j) * x[j];
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_.at(ii, j) * x[j];
    x[ii] /= lu_.at(ii, ii);
  }
  b = std::move(x);
}

}  // namespace dimetrodon::thermal
