#include "thermal/rc_network.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace dimetrodon::thermal {

NodeId RcNetwork::add_node(std::string name, double capacitance_j_per_c,
                           double initial_temp_c) {
  if (capacitance_j_per_c <= 0.0) {
    throw std::invalid_argument("thermal node capacitance must be positive");
  }
  nodes_.push_back(Node{std::move(name), capacitance_j_per_c, false});
  temps_.push_back(initial_temp_c);
  powers_.push_back(0.0);
  cached_dt_ = -1.0;
  return nodes_.size() - 1;
}

NodeId RcNetwork::add_fixed_node(std::string name, double temp_c) {
  nodes_.push_back(Node{std::move(name), 0.0, true});
  temps_.push_back(temp_c);
  powers_.push_back(0.0);
  cached_dt_ = -1.0;
  return nodes_.size() - 1;
}

void RcNetwork::connect(NodeId a, NodeId b, double conductance_w_per_c) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  if (conductance_w_per_c <= 0.0) {
    throw std::invalid_argument("thermal conductance must be positive");
  }
  edges_.push_back(Edge{a, b, conductance_w_per_c});
  cached_dt_ = -1.0;
}

void RcNetwork::set_temperature(NodeId n, double t) {
  assert(n < nodes_.size());
  temps_[n] = t;
}

void RcNetwork::set_all_temperatures(double t) {
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].fixed) temps_[n] = t;
  }
}

double RcNetwork::total_power() const {
  double sum = 0.0;
  for (double p : powers_) sum += p;
  return sum;
}

void RcNetwork::build_step_matrix(double dt_seconds) {
  free_index_.assign(nodes_.size(), std::numeric_limits<std::size_t>::max());
  free_nodes_.clear();
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].fixed) {
      free_index_[n] = free_nodes_.size();
      free_nodes_.push_back(n);
    }
  }
  const std::size_t nf = free_nodes_.size();
  DenseMatrix a(nf);
  // Implicit Euler: (C/dt + G_free) T' = C/dt T + P + G_boundary T_fixed.
  // Here we assemble A = C/dt + G over free nodes; boundary coupling moves to
  // the right-hand side at solve time.
  for (std::size_t i = 0; i < nf; ++i) {
    a.at(i, i) = nodes_[free_nodes_[i]].capacitance / dt_seconds;
  }
  for (const Edge& e : edges_) {
    const std::size_t ia = free_index_[e.a];
    const std::size_t ib = free_index_[e.b];
    if (ia != std::numeric_limits<std::size_t>::max()) a.at(ia, ia) += e.g;
    if (ib != std::numeric_limits<std::size_t>::max()) a.at(ib, ib) += e.g;
    if (ia != std::numeric_limits<std::size_t>::max() &&
        ib != std::numeric_limits<std::size_t>::max()) {
      a.at(ia, ib) -= e.g;
      a.at(ib, ia) -= e.g;
    }
  }
  if (!step_lu_.factor(a)) {
    throw std::runtime_error("thermal step matrix is singular");
  }
  cached_dt_ = dt_seconds;
  cached_topology_edges_ = edges_.size();
  cached_topology_nodes_ = nodes_.size();
}

void RcNetwork::step(double dt_seconds) {
  assert(dt_seconds > 0.0);
  if (cached_dt_ != dt_seconds || cached_topology_edges_ != edges_.size() ||
      cached_topology_nodes_ != nodes_.size()) {
    build_step_matrix(dt_seconds);
  }
  const std::size_t nf = free_nodes_.size();
  rhs_.assign(nf, 0.0);
  for (std::size_t i = 0; i < nf; ++i) {
    const NodeId n = free_nodes_[i];
    rhs_[i] = nodes_[n].capacitance / dt_seconds * temps_[n] + powers_[n];
  }
  for (const Edge& e : edges_) {
    const std::size_t ia = free_index_[e.a];
    const std::size_t ib = free_index_[e.b];
    const bool a_free = ia != std::numeric_limits<std::size_t>::max();
    const bool b_free = ib != std::numeric_limits<std::size_t>::max();
    if (a_free && !b_free) rhs_[ia] += e.g * temps_[e.b];
    if (b_free && !a_free) rhs_[ib] += e.g * temps_[e.a];
  }
  step_lu_.solve(rhs_);
  for (std::size_t i = 0; i < nf; ++i) temps_[free_nodes_[i]] = rhs_[i];
}

void RcNetwork::solve_steady_state() {
  // Steady state is the dt -> infinity limit; assemble G alone.
  free_index_.assign(nodes_.size(), std::numeric_limits<std::size_t>::max());
  free_nodes_.clear();
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].fixed) {
      free_index_[n] = free_nodes_.size();
      free_nodes_.push_back(n);
    }
  }
  const std::size_t nf = free_nodes_.size();
  DenseMatrix g(nf);
  rhs_.assign(nf, 0.0);
  for (std::size_t i = 0; i < nf; ++i) rhs_[i] = powers_[free_nodes_[i]];
  for (const Edge& e : edges_) {
    const std::size_t ia = free_index_[e.a];
    const std::size_t ib = free_index_[e.b];
    const bool a_free = ia != std::numeric_limits<std::size_t>::max();
    const bool b_free = ib != std::numeric_limits<std::size_t>::max();
    if (a_free) g.at(ia, ia) += e.g;
    if (b_free) g.at(ib, ib) += e.g;
    if (a_free && b_free) {
      g.at(ia, ib) -= e.g;
      g.at(ib, ia) -= e.g;
    }
    if (a_free && !b_free) rhs_[ia] += e.g * temps_[e.b];
    if (b_free && !a_free) rhs_[ib] += e.g * temps_[e.a];
  }
  LuFactorization lu;
  if (!lu.factor(g)) {
    throw std::runtime_error(
        "thermal network has a free node with no path to a fixed node");
  }
  lu.solve(rhs_);
  for (std::size_t i = 0; i < nf; ++i) temps_[free_nodes_[i]] = rhs_[i];
  cached_dt_ = -1.0;  // step matrix cache no longer matches free-index state
}

}  // namespace dimetrodon::thermal
