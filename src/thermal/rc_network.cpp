#include "thermal/rc_network.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace dimetrodon::thermal {

NodeId RcNetwork::add_node(std::string name, double capacitance_j_per_c,
                           double initial_temp_c) {
  if (capacitance_j_per_c <= 0.0) {
    throw std::invalid_argument("thermal node capacitance must be positive");
  }
  nodes_.push_back(Node{std::move(name), capacitance_j_per_c, false});
  temps_.push_back(initial_temp_c);
  powers_.push_back(0.0);
  ++topology_revision_;
  return nodes_.size() - 1;
}

NodeId RcNetwork::add_fixed_node(std::string name, double temp_c) {
  nodes_.push_back(Node{std::move(name), 0.0, true});
  temps_.push_back(temp_c);
  powers_.push_back(0.0);
  ++topology_revision_;
  return nodes_.size() - 1;
}

void RcNetwork::connect(NodeId a, NodeId b, double conductance_w_per_c) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("RcNetwork::connect: bad NodeId");
  }
  if (a == b) {
    throw std::invalid_argument("RcNetwork::connect: self-loop");
  }
  if (conductance_w_per_c <= 0.0) {
    throw std::invalid_argument("thermal conductance must be positive");
  }
  edges_.push_back(Edge{a, b, conductance_w_per_c});
  ++topology_revision_;
}

void RcNetwork::set_conductance(NodeId a, NodeId b,
                                double conductance_w_per_c) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("RcNetwork::set_conductance: bad NodeId");
  }
  if (conductance_w_per_c <= 0.0) {
    throw std::invalid_argument("thermal conductance must be positive");
  }
  for (Edge& e : edges_) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) {
      e.g = conductance_w_per_c;
      // The step operators bake G into M = C/dt + G and the lifted powers;
      // a revision bump makes ensure_structure() drop them all so the next
      // advance factors against the new conductance.
      ++topology_revision_;
      return;
    }
  }
  throw std::invalid_argument("RcNetwork::set_conductance: no such edge");
}

void RcNetwork::set_temperature(NodeId n, double t) {
  if (n >= nodes_.size()) {
    throw std::out_of_range("RcNetwork::set_temperature: bad NodeId");
  }
  temps_[n] = t;
}

void RcNetwork::restore_state(const State& s) {
  if (s.temps.size() != temps_.size() || s.powers.size() != powers_.size()) {
    throw std::invalid_argument(
        "RcNetwork::restore_state: node count mismatch");
  }
  temps_ = s.temps;
  powers_ = s.powers;
  stats_ = s.stats;
}

void RcNetwork::set_all_temperatures(double t) {
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].fixed) temps_[n] = t;
  }
}

double RcNetwork::total_power() const {
  double sum = 0.0;
  for (double p : powers_) sum += p;
  return sum;
}

void RcNetwork::ensure_structure() {
  if (built_revision_ == topology_revision_) return;
  free_index_.assign(nodes_.size(), std::numeric_limits<std::size_t>::max());
  free_nodes_.clear();
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (!nodes_[n].fixed) {
      free_index_[n] = free_nodes_.size();
      free_nodes_.push_back(n);
    }
  }
  operators_.clear();
  built_revision_ = topology_revision_;
}

RcNetwork::StepOperator& RcNetwork::operator_for(double dt_seconds) {
  ensure_structure();
  ++operator_clock_;
  for (auto& op : operators_) {
    if (op->dt == dt_seconds) {
      op->last_used = operator_clock_;
      return *op;
    }
  }

  const std::size_t nf = free_nodes_.size();
  DenseMatrix a(nf);
  // Implicit Euler: (C/dt + G_free) T' = C/dt T + P + G_boundary T_fixed.
  // Here we assemble M = C/dt + G over free nodes; boundary coupling moves to
  // the right-hand side at solve time.
  for (std::size_t i = 0; i < nf; ++i) {
    a.at(i, i) = nodes_[free_nodes_[i]].capacitance / dt_seconds;
  }
  for (const Edge& e : edges_) {
    const std::size_t ia = free_index_[e.a];
    const std::size_t ib = free_index_[e.b];
    if (ia != std::numeric_limits<std::size_t>::max()) a.at(ia, ia) += e.g;
    if (ib != std::numeric_limits<std::size_t>::max()) a.at(ib, ib) += e.g;
    if (ia != std::numeric_limits<std::size_t>::max() &&
        ib != std::numeric_limits<std::size_t>::max()) {
      a.at(ia, ib) -= e.g;
      a.at(ib, ia) -= e.g;
    }
  }

  auto op = std::make_unique<StepOperator>();
  op->dt = dt_seconds;
  if (!op->lu.factor(a)) {
    throw std::runtime_error("thermal step matrix is singular");
  }
  ++stats_.factorizations;
  op->last_used = operator_clock_;

  if (operators_.size() >= kMaxCachedOperators) {
    std::size_t evict = 0;
    for (std::size_t i = 1; i < operators_.size(); ++i) {
      if (operators_[i]->last_used < operators_[evict]->last_used) evict = i;
    }
    ++stats_.evictions;
    operators_[evict] = std::move(op);
    return *operators_[evict];
  }
  operators_.push_back(std::move(op));
  return *operators_.back();
}

void RcNetwork::ensure_levels(StepOperator& op, std::uint64_t substeps) {
  const std::size_t levels = std::bit_width(substeps);
  if (op.a_pow.size() >= levels) return;
  const std::size_t nf = free_nodes_.size();
  if (op.a_pow.empty()) {
    // A = M⁻¹ · diag(C/dt): column i is (C_i/dt) · M⁻¹ e_i.
    DenseMatrix a(nf);
    std::vector<double> col(nf);
    for (std::size_t i = 0; i < nf; ++i) {
      col.assign(nf, 0.0);
      col[i] = nodes_[free_nodes_[i]].capacitance / op.dt;
      op.lu.solve(col);
      ++stats_.solves;
      for (std::size_t r = 0; r < nf; ++r) a.at(r, i) = col[r];
    }
    op.a_pow.push_back(std::move(a));
    op.s_geo.push_back(DenseMatrix::identity(nf));
  }
  while (op.a_pow.size() < levels) {
    const DenseMatrix& aj = op.a_pow.back();
    const DenseMatrix& sj = op.s_geo.back();
    // A^(2^(j+1)) = A^(2^j)·A^(2^j);  S_(2^(j+1)) = S_(2^j) + A^(2^j)·S_(2^j).
    op.s_geo.push_back(matadd(sj, matmul(aj, sj)));
    op.a_pow.push_back(matmul(aj, aj));
  }
  // CSR twins per level. matmul/matadd/LU preserve the block-diagonal
  // structural zeros exactly (disconnected free components never mix), so
  // the sparse rep is faithful; matvec order matches dense, so switching is
  // bit-invisible. Levels already decided keep their decision.
  while (op.level_sparse.size() < op.a_pow.size()) {
    const std::size_t j = op.level_sparse.size();
    bool use_sparse = false;
    if (sparse_enabled_ && free_nodes_.size() >= kSparseMinNodes) {
      SparseMatrix a_csr = SparseMatrix::from_dense(op.a_pow[j]);
      SparseMatrix s_csr = SparseMatrix::from_dense(op.s_geo[j]);
      // One fill test over both tables: either both go sparse or neither,
      // keeping the per-level decision single-sourced.
      const double fill =
          std::max(a_csr.fill_ratio(), s_csr.fill_ratio());
      if (fill <= kSparseMaxFill) {
        use_sparse = true;
        op.a_pow_csr.push_back(std::move(a_csr));
        op.s_geo_csr.push_back(std::move(s_csr));
      }
    }
    if (!use_sparse) {
      op.a_pow_csr.emplace_back();
      op.s_geo_csr.emplace_back();
    }
    op.level_sparse.push_back(use_sparse);
  }
}

void RcNetwork::assemble_input(std::vector<double>& rhs) const {
  const std::size_t nf = free_nodes_.size();
  rhs.assign(nf, 0.0);
  for (std::size_t i = 0; i < nf; ++i) rhs[i] = powers_[free_nodes_[i]];
  for (const Edge& e : edges_) {
    const std::size_t ia = free_index_[e.a];
    const std::size_t ib = free_index_[e.b];
    const bool a_free = ia != std::numeric_limits<std::size_t>::max();
    const bool b_free = ib != std::numeric_limits<std::size_t>::max();
    if (a_free && !b_free) rhs[ia] += e.g * temps_[e.b];
    if (b_free && !a_free) rhs[ib] += e.g * temps_[e.a];
  }
}

void RcNetwork::step(double dt_seconds) {
  assert(dt_seconds > 0.0);
  StepOperator& op = operator_for(dt_seconds);
  const std::size_t nf = free_nodes_.size();
  // Summation order matches the historical stepper exactly so this path is
  // bit-identical to it (the parity tests pin fast vs sequential to it).
  rhs_.assign(nf, 0.0);
  for (std::size_t i = 0; i < nf; ++i) {
    const NodeId n = free_nodes_[i];
    rhs_[i] = nodes_[n].capacitance / dt_seconds * temps_[n] + powers_[n];
  }
  for (const Edge& e : edges_) {
    const std::size_t ia = free_index_[e.a];
    const std::size_t ib = free_index_[e.b];
    const bool a_free = ia != std::numeric_limits<std::size_t>::max();
    const bool b_free = ib != std::numeric_limits<std::size_t>::max();
    if (a_free && !b_free) rhs_[ia] += e.g * temps_[e.b];
    if (b_free && !a_free) rhs_[ib] += e.g * temps_[e.a];
  }
  op.lu.solve(rhs_);
  ++stats_.solves;
  ++stats_.substeps;
  for (std::size_t i = 0; i < nf; ++i) temps_[free_nodes_[i]] = rhs_[i];
}

void RcNetwork::advance(double dt_seconds, std::uint64_t substeps) {
  assert(dt_seconds > 0.0);
  if (substeps == 0) return;
  if (substeps == 1) {
    // Same arithmetic as the sequential reference: bit-identical.
    step(dt_seconds);
    return;
  }
  StepOperator& op = operator_for(dt_seconds);
  ensure_levels(op, substeps);
  const std::size_t nf = free_nodes_.size();

  // Constant input term b = M⁻¹ (P + G_b T_fixed).
  std::vector<double>& b = rhs_;
  assemble_input(b);
  op.lu.solve(b);
  ++stats_.solves;

  std::vector<double> t(nf);
  for (std::size_t i = 0; i < nf; ++i) t[i] = temps_[free_nodes_[i]];

  // Apply set bits LSB→MSB; each level-j application advances 2^j substeps:
  // T ← A^(2^j)·T + S_(2^j)·b. Order is fixed, so results are deterministic.
  for (std::size_t j = 0; substeps >> j; ++j) {
    if (((substeps >> j) & 1u) == 0) continue;
    if (sparse_enabled_ && j < op.level_sparse.size() && op.level_sparse[j]) {
      matvec(op.a_pow_csr[j], t, scratch_);
      matvec_accumulate(op.s_geo_csr[j], b, scratch_);
      stats_.sparse_matvecs += 2;
    } else {
      matvec(op.a_pow[j], t, scratch_);
      matvec_accumulate(op.s_geo[j], b, scratch_);
    }
    t.swap(scratch_);
    stats_.matvecs += 2;
  }
  stats_.substeps += substeps;
  stats_.fast_forward_steps += substeps;
  for (std::size_t i = 0; i < nf; ++i) temps_[free_nodes_[i]] = t[i];
}

void RcNetwork::solve_steady_state() {
  // Steady state is the dt -> infinity limit; assemble G alone.
  ensure_structure();
  const std::size_t nf = free_nodes_.size();
  DenseMatrix g(nf);
  assemble_input(rhs_);
  for (const Edge& e : edges_) {
    const std::size_t ia = free_index_[e.a];
    const std::size_t ib = free_index_[e.b];
    const bool a_free = ia != std::numeric_limits<std::size_t>::max();
    const bool b_free = ib != std::numeric_limits<std::size_t>::max();
    if (a_free) g.at(ia, ia) += e.g;
    if (b_free) g.at(ib, ib) += e.g;
    if (a_free && b_free) {
      g.at(ia, ib) -= e.g;
      g.at(ib, ia) -= e.g;
    }
  }
  LuFactorization lu;
  if (!lu.factor(g)) {
    throw std::runtime_error(
        "thermal network has a free node with no path to a fixed node");
  }
  lu.solve(rhs_);
  for (std::size_t i = 0; i < nf; ++i) temps_[free_nodes_[i]] = rhs_[i];
}

}  // namespace dimetrodon::thermal
