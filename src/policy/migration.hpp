#pragma once

#include <cstdint>

#include "sched/machine.hpp"

namespace dimetrodon::policy {

/// Heat-and-Run-style thermal migration (Gomaa et al., cited by the paper as
/// an orthogonal, potentially complementary multicore technique): move the
/// thread running on the hottest die to the coolest one when the spread
/// exceeds a threshold. On a fully-loaded symmetric machine this mostly
/// rotates heat; its value shows on asymmetric loads — exactly the paper's
/// observation that migration "may be ineffective on fully-burdened
/// machines". Can run alongside a DimetrodonController; the two compose.
class ThermalMigrationPolicy {
 public:
  struct Config {
    sim::SimTime period = sim::from_ms(500);
    double spread_threshold_c = 3.0;  // min hottest-coolest die gap to act
  };

  /// Starts the periodic migration loop immediately; must outlive the run.
  ThermalMigrationPolicy(sched::Machine& machine, Config config);
  ThermalMigrationPolicy(sched::Machine& machine)
      : ThermalMigrationPolicy(machine, Config()) {}

  void stop() { running_ = false; }

  std::uint64_t migrations() const { return migrations_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  void schedule_tick();
  void tick(sim::SimTime now);

  sched::Machine& machine_;
  Config config_;
  bool running_ = true;
  std::uint64_t migrations_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace dimetrodon::policy
