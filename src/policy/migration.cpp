#include "policy/migration.hpp"

namespace dimetrodon::policy {

ThermalMigrationPolicy::ThermalMigrationPolicy(sched::Machine& machine,
                                               Config config)
    : machine_(machine), config_(config) {
  schedule_tick();
}

void ThermalMigrationPolicy::schedule_tick() {
  machine_.call_at(machine_.now() + config_.period,
                   [this](sim::SimTime t) { tick(t); });
}

void ThermalMigrationPolicy::tick(sim::SimTime /*now*/) {
  if (!running_) return;
  ++ticks_;

  // Hottest logical CPU that is running a user thread; coolest idle CPU.
  sched::CoreId hottest = sched::kNoCore;
  double hottest_temp = -1e9;
  sched::CoreId coolest_idle = sched::kNoCore;
  double coolest_temp = 1e9;
  for (std::size_t i = 0; i < machine_.num_cores(); ++i) {
    const auto id = static_cast<sched::CoreId>(i);
    const auto& core = machine_.core(id);
    const double temp = machine_.die_temperature(id);
    const bool running_user =
        core.current != nullptr &&
        core.current->thread_class() == sched::ThreadClass::kUser;
    if (running_user && temp > hottest_temp) {
      hottest_temp = temp;
      hottest = id;
    }
    if (core.is_idle() && !core.injected_idle && temp < coolest_temp) {
      coolest_temp = temp;
      coolest_idle = id;
    }
  }
  if (hottest != sched::kNoCore && coolest_idle != sched::kNoCore &&
      hottest_temp - coolest_temp >= config_.spread_threshold_c) {
    const sched::ThreadId victim = machine_.core(hottest).current->id();
    machine_.set_thread_affinity(victim, coolest_idle);
    // Release the pin once the target has picked the thread up: migration is
    // a placement decision, not a permanent binding.
    machine_.call_at(machine_.now() + sim::from_ms(1),
                     [this, victim](sim::SimTime) {
                       machine_.set_thread_affinity(victim, sched::kNoCore);
                     });
    ++migrations_;
  }
  schedule_tick();
}

}  // namespace dimetrodon::policy
