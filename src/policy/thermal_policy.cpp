#include "policy/thermal_policy.hpp"

#include <cstdio>

namespace dimetrodon::policy {

std::string VfsPolicy::name() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "vfs[level=%zu]", level_);
  return buf;
}

std::string TccPolicy::name() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "p4tcc[duty=%.1f%%]",
                100.0 * static_cast<double>(step_) / 8.0);
  return buf;
}

}  // namespace dimetrodon::policy
