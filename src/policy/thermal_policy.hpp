#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "sched/machine.hpp"

namespace dimetrodon::policy {

/// A static preventive thermal-management actuation, applied to the machine
/// before a workload runs. These are the comparison points of the paper's
/// Figure 4; Dimetrodon itself acts through the scheduler hook instead
/// (src/core) but is wrapped by the experiment harness under the same sweep
/// interface.
class ThermalPolicy {
 public:
  virtual ~ThermalPolicy() = default;

  /// Configure the machine's knobs (DVFS ladder position, clock duty, ...).
  virtual void apply(sched::Machine& machine) = 0;

  /// Human-readable identification for result tables.
  virtual std::string name() const = 0;

  /// First-order expected throughput factor for CPU-bound work in [0,1]
  /// (e.g. f/f0 for VFS). Used as a sanity cross-check, not as a result.
  virtual double nominal_throughput_factor(
      const sched::Machine& machine) const = 0;
};

/// Unconstrained race-to-idle execution: the paper's baseline.
class RaceToIdlePolicy final : public ThermalPolicy {
 public:
  void apply(sched::Machine&) override {}
  std::string name() const override { return "race-to-idle"; }
  double nominal_throughput_factor(const sched::Machine&) const override {
    return 1.0;
  }
};

/// Static voltage/frequency scaling at a fixed ladder level (the paper's VFS
/// comparison, run under Linux cpufreq in the original; §3.4).
class VfsPolicy final : public ThermalPolicy {
 public:
  explicit VfsPolicy(std::size_t level) : level_(level) {}

  void apply(sched::Machine& machine) override {
    machine.set_all_dvfs_levels(level_);
  }
  std::string name() const override;
  double nominal_throughput_factor(
      const sched::Machine& machine) const override {
    const auto& dvfs = machine.config().dvfs;
    return dvfs.level(level_).freq_ghz / dvfs.nominal().freq_ghz;
  }
  std::size_t level() const { return level_; }

 private:
  std::size_t level_;
};

/// Thermal-control-circuit clock duty cycling (the FreeBSD p4tcc driver):
/// fine-grained clock gating inside C0, 12.5% steps.
class TccPolicy final : public ThermalPolicy {
 public:
  explicit TccPolicy(std::size_t duty_step) : step_(duty_step) {}

  void apply(sched::Machine& machine) override {
    machine.set_all_clock_duty_steps(step_);
  }
  std::string name() const override;
  double nominal_throughput_factor(const sched::Machine&) const override {
    return static_cast<double>(step_) / 8.0;
  }
  std::size_t duty_step() const { return step_; }

 private:
  std::size_t step_;
};

}  // namespace dimetrodon::policy
