#include "sim/simulator.hpp"

#include <cassert>

namespace dimetrodon::sim {

EventHandle Simulator::at(SimTime when, EventQueue::Callback fn) {
  assert(when >= now_);
  return queue_.schedule(when, std::move(fn));
}

EventHandle Simulator::after(SimTime delay, EventQueue::Callback fn) {
  assert(delay >= 0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    // Advance the clock BEFORE the callback runs so now() is correct inside
    // it (callbacks routinely schedule relative follow-ups).
    now_ = queue_.next_time();
    queue_.pop_and_run();
    ++events_executed_;
  }
  if (now_ < deadline) now_ = deadline;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.pop_and_run();
  ++events_executed_;
  return true;
}

}  // namespace dimetrodon::sim
