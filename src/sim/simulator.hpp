#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace dimetrodon::sim {

/// Discrete-event simulation driver: a clock plus an event queue. All
/// machine-level components (scheduler timers, injection quanta, meter
/// sampling, workload arrivals) register callbacks here.
class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute simulation time `at` (must be >= now()).
  EventHandle at(SimTime when, EventQueue::Callback fn);

  /// Schedule `fn` after a relative delay (must be >= 0).
  EventHandle after(SimTime delay, EventQueue::Callback fn);

  /// Run events until the queue empties or the clock would pass `deadline`.
  /// The clock is left at min(deadline, time of last event). Events scheduled
  /// exactly at `deadline` are executed.
  void run_until(SimTime deadline);

  /// Run a single event if one exists; returns false when the queue is empty.
  bool step();

  /// Total events executed (diagnostics).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Snapshot-restore support: drop every pending event (handles go inert)
  /// and pin the clock and executed-event count to captured values. The
  /// caller (sched::Machine::restore) re-arms the captured event set next.
  void reset_for_restore(SimTime now, std::uint64_t events_executed) {
    queue_.clear();
    now_ = now;
    events_executed_ = events_executed;
  }

  EventQueue& queue() { return queue_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t events_executed_ = 0;
};

}  // namespace dimetrodon::sim
