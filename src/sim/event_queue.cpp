#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dimetrodon::sim {

using detail::EventState;

namespace {
// Below this heap size compaction isn't worth the pass: the lazy drop at the
// head already bounds small queues.
constexpr std::size_t kCompactMinEntries = 64;
}  // namespace

bool EventHandle::cancel() {
  if (!ctl_ || ctl_->state != EventState::kPending) return false;
  ctl_->state = EventState::kCancelled;
  if (ctl_->live) --*ctl_->live;
  ctl_.reset();
  return true;
}

bool EventHandle::active() const {
  return ctl_ && ctl_->state == EventState::kPending;
}

EventHandle EventQueue::schedule(SimTime at, Callback fn) {
  assert(at >= 0);
  maybe_compact();
  auto ctl = std::make_shared<detail::EventControl>();
  ctl->live = live_;
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), ctl});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++*live_;
  return EventHandle(std::move(ctl));
}

void EventQueue::maybe_compact() {
  // Every heap entry is either pending (counted in *live_) or a cancelled
  // carcass awaiting its turn at the head; once carcasses are the majority
  // of a large heap, sweep them all at once. Amortized O(1) per schedule:
  // a compaction of n entries is paid for by the >= n/2 cancellations that
  // forced it.
  if (heap_.size() < kCompactMinEntries) return;
  const std::size_t cancelled = heap_.size() - *live_;
  if (cancelled * 2 <= heap_.size()) return;
  std::erase_if(heap_, [](const Entry& e) {
    return e.ctl->state == EventState::kCancelled;
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  heap_.shrink_to_fit();
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() &&
         heap_.front().ctl->state == EventState::kCancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() {
  drop_cancelled_head();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_cancelled_head();
  return heap_.empty() ? kTimeInfinity : heap_.front().at;
}

SimTime EventQueue::pop_and_run() {
  drop_cancelled_head();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  // Move out before running: the callback may schedule new events and
  // reallocate the heap storage.
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  e.ctl->state = EventState::kFired;
  --*live_;
  e.fn(e.at);
  return e.at;
}

}  // namespace dimetrodon::sim
