#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dimetrodon::sim {

namespace {
// Below this heap size compaction isn't worth the pass: the lazy drop at the
// head already bounds small queues.
constexpr std::size_t kCompactMinEntries = 64;
}  // namespace

namespace detail {

std::uint32_t ControlArena::alloc(SimTime at, std::uint64_t seq) {
  std::uint32_t idx;
  if (free_head != kNoSlot) {
    idx = free_head;
    free_head = slots[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots.size());
    slots.emplace_back();
  }
  ControlSlot& s = slots[idx];
  s.at = at;
  s.seq = seq;
  s.next_free = kNoSlot;
  s.occupied = true;
  ++live;
  return idx;
}

void ControlArena::release(std::uint32_t idx) {
  ControlSlot& s = slots[idx];
  assert(s.occupied);
  s.occupied = false;
  ++s.gen;  // every outstanding (slot, gen) capture goes inert
  s.next_free = free_head;
  free_head = idx;
  --live;
}

}  // namespace detail

bool EventHandle::cancel() {
  if (!arena_ || !arena_->matches(slot_, gen_)) return false;
  arena_->release(slot_);
  arena_.reset();
  return true;
}

bool EventHandle::active() const {
  return arena_ && arena_->matches(slot_, gen_);
}

SimTime EventHandle::time() const {
  return active() ? arena_->slots[slot_].at : kTimeInfinity;
}

std::uint64_t EventHandle::seq() const {
  return active() ? arena_->slots[slot_].seq : 0;
}

EventHandle EventQueue::schedule(SimTime at, Callback fn) {
  assert(at >= 0);
  maybe_compact();
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = arena_->alloc(at, seq);
  const std::uint64_t gen = arena_->slots[slot].gen;
  heap_.push_back(Entry{at, seq, std::move(fn), slot, gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(arena_, slot, gen);
}

void EventQueue::maybe_compact() {
  // Every heap entry is either pending (counted in arena live) or a stale
  // carcass awaiting its turn at the head; once carcasses are the majority
  // of a large heap, sweep them all at once. Amortized O(1) per schedule:
  // a compaction of n entries is paid for by the >= n/2 cancellations that
  // forced it.
  if (heap_.size() < kCompactMinEntries) return;
  const std::size_t cancelled = heap_.size() - arena_->live;
  if (cancelled * 2 <= heap_.size()) return;
  std::erase_if(heap_, [this](const Entry& e) { return !entry_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  heap_.shrink_to_fit();
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() {
  drop_cancelled_head();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_cancelled_head();
  return heap_.empty() ? kTimeInfinity : heap_.front().at;
}

SimTime EventQueue::pop_and_run() {
  drop_cancelled_head();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  // Move out before running: the callback may schedule new events and
  // reallocate the heap storage.
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  arena_->release(e.slot);  // fired: outstanding handles go inert
  e.fn(e.at);
  return e.at;
}

void EventQueue::clear() {
  for (const Entry& e : heap_) {
    if (entry_live(e)) arena_->release(e.slot);
  }
  heap_.clear();
  assert(arena_->live == 0);
}

}  // namespace dimetrodon::sim
