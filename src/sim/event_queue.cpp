#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace dimetrodon::sim {

using detail::EventState;

bool EventHandle::cancel() {
  if (!ctl_ || ctl_->state != EventState::kPending) return false;
  ctl_->state = EventState::kCancelled;
  if (ctl_->live) --*ctl_->live;
  ctl_.reset();
  return true;
}

bool EventHandle::active() const {
  return ctl_ && ctl_->state == EventState::kPending;
}

EventHandle EventQueue::schedule(SimTime at, Callback fn) {
  assert(at >= 0);
  auto ctl = std::make_shared<detail::EventControl>();
  ctl->live = live_;
  heap_.push(Entry{at, next_seq_++, std::move(fn), ctl});
  ++*live_;
  return EventHandle(std::move(ctl));
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && heap_.top().ctl->state == EventState::kCancelled) {
    heap_.pop();
  }
}

bool EventQueue::empty() {
  drop_cancelled_head();
  return heap_.empty();
}

SimTime EventQueue::next_time() {
  drop_cancelled_head();
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

SimTime EventQueue::pop_and_run() {
  drop_cancelled_head();
  assert(!heap_.empty());
  // Copy out before popping: the callback may schedule new events.
  Entry e = heap_.top();
  heap_.pop();
  e.ctl->state = EventState::kFired;
  --*live_;
  e.fn(e.at);
  return e.at;
}

}  // namespace dimetrodon::sim
