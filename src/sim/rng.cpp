#include "sim/rng.hpp"

#include <cassert>
#include <cmath>

namespace dimetrodon::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng Rng::stream(std::uint64_t master, std::uint64_t stream_id) {
  return Rng(derive_stream_seed(master, stream_id));
}

std::uint64_t derive_stream_seed(std::uint64_t master,
                                 std::uint64_t stream_id) {
  // Offset by (stream_id + 1) golden gammas so stream 0 differs from the
  // master itself, then run two SplitMix64 finalization rounds to decorrelate
  // nearby ids.
  std::uint64_t x = master ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
  (void)splitmix64(x);
  return splitmix64(x);
}

}  // namespace dimetrodon::sim
