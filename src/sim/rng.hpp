#pragma once

#include <array>
#include <cstdint>

namespace dimetrodon::sim {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). Each stochastic component of the simulator (scheduler,
/// injection policy, meter noise, workload arrivals) owns its own stream so
/// that adding randomness to one component never perturbs another.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial; p is clamped to [0, 1].
  bool bernoulli(double p);

  /// Normal deviate (Box-Muller; second value cached).
  double normal(double mean, double stddev);

  /// Exponential deviate with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Derive an independent child stream (useful for spawning per-thread
  /// streams from one master seed). Note this *advances* the parent; for a
  /// pure, order-independent derivation use `derive_stream_seed`.
  Rng fork();

  /// Generator for stream `stream_id` of master seed `master`; equivalent to
  /// `Rng(derive_stream_seed(master, stream_id))`.
  static Rng stream(std::uint64_t master, std::uint64_t stream_id);

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Seed of independent stream `stream_id` under master seed `master`. Pure:
/// the same pair always yields the same seed regardless of how many other
/// streams were derived or in what order — unlike `Rng::fork`, which mutates
/// the parent. Parallel sweeps use this so that run k sees the same random
/// world whether it executes first, last, or concurrently with its siblings.
std::uint64_t derive_stream_seed(std::uint64_t master, std::uint64_t stream_id);

}  // namespace dimetrodon::sim
