#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>

namespace dimetrodon::sim {

/// Version of the canonical-serialization layer. Everything that renders a
/// spec into canonical text (runner::canonical_spec, the cluster fleet tag,
/// control::append_canonical_governor) and the sweep result cache share this
/// one number: any change to a canonical format — field added, section
/// reordered, rendering altered — bumps it here, once, and every stale cache
/// file becomes a clean miss instead of a misparse.
///
/// v7: canonical serialization consolidated into CanonWriter; cluster tags
/// gained rack/CRAC, traffic-shape and telemetry-batching fields; the
/// fleet_samples counter joined obs::CounterTotals::fields().
///
/// v8: run specs gained the warm-start `warmup` field; thermal_sparse_matvecs,
/// thermal_evictions, snapshot_builds and snapshot_forks joined
/// obs::CounterTotals::fields().
///
/// v9: scenario layer — cluster tags gained the arrival-trace section
/// (cluster-v4 -> cluster-v5) and scenario specs append a scenario-v1
/// directive script; scenario_directives, node_joins, node_removals,
/// requests_shed, requests_rehomed and latency_rejects joined
/// obs::CounterTotals::fields().
inline constexpr int kCanonVersion = 9;

/// The one way canonical text is produced. Fields render as "key=value "
/// with doubles in hex-float (%a) so the text is bit-exact, integers in hex,
/// and sections as "name{ ... } ". Two specs with equal canonical text must
/// describe identical simulations — the text is hashed into cache keys and
/// stored verbatim to rule out hash collisions.
class CanonWriter {
 public:
  explicit CanonWriter(std::size_t reserve = 512) { out_.reserve(reserve); }

  /// Append the versioned preamble for a top-level document, e.g.
  /// preamble("dimetrodon-run-spec") -> "dimetrodon-run-spec v7 ".
  void preamble(const char* name) {
    out_ += name;
    char buf[16];
    std::snprintf(buf, sizeof buf, " v%d ", kCanonVersion);
    out_ += buf;
  }

  void field(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s=%a ", key, v);
    out_ += buf;
  }
  void field(const char* key, std::uint64_t v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s=%llx ", key,
                  static_cast<unsigned long long>(v));
    out_ += buf;
  }
  void field(const char* key, std::int64_t v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s=%lld ", key, static_cast<long long>(v));
    out_ += buf;
  }
  void field(const char* key, bool v) {
    out_ += key;
    out_ += v ? "=1 " : "=0 ";
  }
  void field(const char* key, const std::string& v) {
    out_ += key;
    out_ += '=';
    out_ += v;
    out_ += ' ';
  }

  void open(const char* section) {
    out_ += section;
    out_ += '{';
  }
  void close() { out_ += "} "; }

  /// Open a repeated-element list ("nodes[") / close it ("] ").
  void open_list(const char* name) {
    out_ += name;
    out_ += '[';
  }
  void close_list() { out_ += "] "; }

  void raw(const char* text) { out_ += text; }

  std::string take() { return std::move(out_); }
  const std::string& text() const { return out_; }

 private:
  std::string out_;
};

}  // namespace dimetrodon::sim
