#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace dimetrodon::sim {

/// Simulation time. All event timestamps are integral nanoseconds so that
/// event ordering is exact and runs are bit-for-bit reproducible; physics
/// code converts to floating-point seconds at the boundary.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Sentinel meaning "never" / "no deadline".
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::max();

constexpr SimTime from_ns(std::int64_t ns) { return ns; }
constexpr SimTime from_us(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kMicrosecond));
}
constexpr SimTime from_ms(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}
constexpr SimTime from_sec(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

constexpr double to_sec(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
constexpr double to_us(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/// Human-readable rendering ("12.345 ms", "3.2 s") for traces and logs.
std::string format_time(SimTime t);

}  // namespace dimetrodon::sim
