#include <cinttypes>
#include <cstdio>

#include "sim/time.hpp"

namespace dimetrodon::sim {

std::string format_time(SimTime t) {
  char buf[64];
  if (t >= kSecond) {
    std::snprintf(buf, sizeof buf, "%.3f s", to_sec(t));
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_ms(t));
  } else if (t >= kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%.3f us", to_us(t));
  } else {
    std::snprintf(buf, sizeof buf, "%" PRId64 " ns", t);
  }
  return buf;
}

}  // namespace dimetrodon::sim
