#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace dimetrodon::sim {

namespace detail {
enum class EventState : std::uint8_t { kPending, kCancelled, kFired };
struct EventControl {
  EventState state = EventState::kPending;
  // Shared with the owning queue so cancellation can keep the live count
  // exact even though the heap entry is discarded lazily.
  std::shared_ptr<std::size_t> live;
};
}  // namespace detail

/// Handle to a scheduled event; allows O(1) cancellation. Cancelled events
/// stay in the heap but are skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event. Safe to call multiple times or on a default-constructed
  /// (empty) handle; returns true if the event was live and is now cancelled.
  bool cancel();

  /// True if this handle refers to an event that has neither fired nor been
  /// cancelled.
  bool active() const;

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<detail::EventControl> ctl)
      : ctl_(std::move(ctl)) {}

  std::shared_ptr<detail::EventControl> ctl_;
};

/// Min-heap of timestamped callbacks. Ties break by insertion order so event
/// delivery is fully deterministic.
///
/// Cancellation is lazy, but bounded: when cancelled carcasses outnumber
/// live events in a sufficiently large heap, the heap is compacted in place,
/// so timer-churn workloads (a web run cancelling millions of timeouts) hold
/// O(live) memory instead of growing with cancellation history. Compaction
/// preserves the (time, seq) total order, so delivery stays deterministic.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  EventQueue() : live_(std::make_shared<std::size_t>(0)) {}

  /// Schedule `fn` at absolute time `at`. Requires at >= 0.
  EventHandle schedule(SimTime at, Callback fn);

  /// True if no live events remain. (Lazily discards cancelled heap entries.)
  bool empty();

  /// Timestamp of the earliest live event; kTimeInfinity when empty.
  SimTime next_time();

  /// Pop and run the earliest live event, returning its timestamp.
  /// Requires !empty().
  SimTime pop_and_run();

  /// Number of live (non-cancelled, unfired) events.
  std::size_t size() const { return *live_; }

  /// Heap entries actually held, live + cancelled-but-not-yet-dropped
  /// (memory-bound diagnostics; compaction keeps this O(size())).
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<detail::EventControl> ctl;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head();
  void maybe_compact();

  // Managed with std::push_heap/pop_heap rather than std::priority_queue:
  // compaction needs to walk and filter the underlying storage.
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<std::size_t> live_;
};

}  // namespace dimetrodon::sim
