#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/time.hpp"

namespace dimetrodon::sim {

namespace detail {

inline constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// One control slot in the arena. A slot is (re)used by many events over its
/// lifetime; `gen` disambiguates: a handle or heap entry captures (slot, gen)
/// at schedule time and is inert once the generation moves on (the event
/// fired or was cancelled). `at`/`seq` are mirrored here so a live handle can
/// report its scheduled time and tie-break rank without touching the heap.
struct ControlSlot {
  std::uint64_t gen = 0;
  SimTime at = 0;
  std::uint64_t seq = 0;
  std::uint32_t next_free = kNoSlot;
  bool occupied = false;
};

/// Slab of control slots with an intrusive free list. Replaces the previous
/// one-shared_ptr-allocation-per-event control blocks: steady-state timer
/// churn (schedule/cancel/fire) recycles slots with zero allocation, and the
/// live count sits in one place. Held by shared_ptr so handles may safely
/// outlive the queue.
struct ControlArena {
  std::vector<ControlSlot> slots;
  std::uint32_t free_head = kNoSlot;
  std::size_t live = 0;

  std::uint32_t alloc(SimTime at, std::uint64_t seq);
  void release(std::uint32_t idx);  // bump gen, push on free list
  bool matches(std::uint32_t idx, std::uint64_t gen) const {
    return idx != kNoSlot && slots[idx].occupied && slots[idx].gen == gen;
  }
};

}  // namespace detail

/// Handle to a scheduled event; allows O(1) cancellation. Cancelled events
/// stay in the heap but are skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event. Safe to call multiple times or on a default-constructed
  /// (empty) handle; returns true if the event was live and is now cancelled.
  bool cancel();

  /// True if this handle refers to an event that has neither fired nor been
  /// cancelled.
  bool active() const;

  /// Scheduled time of a live event; kTimeInfinity if not active().
  SimTime time() const;

  /// Tie-break rank of a live event: among events at equal time, lower seq
  /// fires first. 0 if not active(). The machine snapshot layer sorts by this
  /// when re-arming so restored ties fire in the captured order.
  std::uint64_t seq() const;

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<detail::ControlArena> arena, std::uint32_t slot,
              std::uint64_t gen)
      : arena_(std::move(arena)), slot_(slot), gen_(gen) {}

  std::shared_ptr<detail::ControlArena> arena_;
  std::uint32_t slot_ = detail::kNoSlot;
  std::uint64_t gen_ = 0;
};

/// Min-heap of timestamped callbacks. Ties break by insertion order so event
/// delivery is fully deterministic.
///
/// Cancellation is lazy, but bounded: when cancelled carcasses outnumber
/// live events in a sufficiently large heap, the heap is compacted in place,
/// so timer-churn workloads (a web run cancelling millions of timeouts) hold
/// O(live) memory instead of growing with cancellation history. Compaction
/// preserves the (time, seq) total order, so delivery stays deterministic.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  EventQueue() : arena_(std::make_shared<detail::ControlArena>()) {}

  /// Schedule `fn` at absolute time `at`. Requires at >= 0.
  EventHandle schedule(SimTime at, Callback fn);

  /// True if no live events remain. (Lazily discards cancelled heap entries.)
  bool empty();

  /// Timestamp of the earliest live event; kTimeInfinity when empty.
  SimTime next_time();

  /// Pop and run the earliest live event, returning its timestamp.
  /// Requires !empty().
  SimTime pop_and_run();

  /// Number of live (non-cancelled, unfired) events.
  std::size_t size() const { return arena_->live; }

  /// Heap entries actually held, live + cancelled-but-not-yet-dropped
  /// (memory-bound diagnostics; compaction keeps this O(size())).
  std::size_t heap_entries() const { return heap_.size(); }

  /// Drop every pending event (their handles go inert, as if cancelled).
  /// Used by snapshot restore, which re-arms the captured event set from
  /// scratch; seq numbering keeps counting up, so relative tie order of
  /// anything scheduled afterwards is unaffected.
  void clear();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    std::uint32_t slot;
    std::uint64_t gen;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool entry_live(const Entry& e) const { return arena_->matches(e.slot, e.gen); }
  void drop_cancelled_head();
  void maybe_compact();

  // Managed with std::push_heap/pop_heap rather than std::priority_queue:
  // compaction needs to walk and filter the underlying storage.
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::shared_ptr<detail::ControlArena> arena_;
};

}  // namespace dimetrodon::sim
