#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/histogram.hpp"
#include "analysis/stats.hpp"
#include "cluster/arrival_trace.hpp"
#include "cluster/load_balancer.hpp"
#include "cluster/request_source.hpp"
#include "control/arbiter.hpp"
#include "control/driver.hpp"
#include "control/stability.hpp"
#include "core/controller.hpp"
#include "obs/tracer.hpp"
#include "runner/thread_pool.hpp"
#include "sched/machine.hpp"
#include "thermal/rc_network.hpp"
#include "workload/web.hpp"

namespace dimetrodon::cluster {

/// Per-node deviations from the cluster's base machine config. The fleet is
/// deliberately heterogeneous: rack position and airflow give each node its
/// own cooling quality, and operators tune Dimetrodon's injection intensity
/// per node to match. Node lists are normally produced by FleetSpec
/// (fleet_spec.hpp), not written by hand.
struct NodeSpec {
  /// Cooling quality (thermal::FloorplanParams::fan_speed_fraction). Lower
  /// means a worse rack position / weaker airflow, i.e. a hotter node at
  /// equal load.
  double fan_speed_fraction = 1.0;
  /// Dimetrodon global injection probability on this node (0 disables the
  /// controller entirely — unless a governor is configured below).
  double injection_probability = 0.0;
  /// Injection quantum when the controller is active.
  sim::SimTime injection_quantum = sim::from_ms(10);
  /// Closed-loop governor on this node (src/control). When enabled, the node
  /// runs a Dimetrodon controller behind an InjectionArbiter: the governor
  /// claims the feedback channel and `injection_probability` (if > 0)
  /// becomes the open-loop preventive floor on the preventive channel —
  /// fleets can mix governed and open-loop nodes freely.
  control::GovernorSpec governor{};
};

/// Rack/CRAC thermal layer: nodes are grouped `nodes_per_rack` at a time (in
/// node-id order) and each rack's recirculated exhaust heats a shared air
/// node, which in turn sets its member machines' inlet (ambient) temperature.
/// The rack network is a first-order RC chain — one air node per rack, each
/// tied to the fixed CRAC supply and optionally to its neighbors — stepped
/// once per telemetry period from the fleet's measured dissipation, so the
/// layer costs O(racks) per period regardless of fleet size.
struct RackParams {
  /// Nodes per rack, in node-id order (the last rack may be short).
  /// 0 disables the rack layer entirely: inlets stay at the floorplan
  /// ambient and racks are purely an id grouping.
  std::size_t nodes_per_rack = 0;
  /// CRAC supply temperature: the fixed boundary every rack air node
  /// relaxes toward, and the fleet-wide inlet at t = 0.
  double crac_supply_c = 25.2;
  /// Heat capacity of one rack's recirculating air volume, J/°C. Small on
  /// purpose: experiments compress a "day" into seconds, so the rack time
  /// constant (capacitance * resistance) must settle within a run.
  double air_capacitance_j_per_c = 150.0;
  /// Thermal resistance from a rack's air node to the CRAC supply, °C/W.
  double to_crac_resistance_c_per_w = 0.03;
  /// Fraction of each node's dissipated power that recirculates into its
  /// rack's air volume instead of being carried straight to the CRAC.
  double recirculation_fraction = 0.3;
  /// Inter-rack recirculation: thermal resistance between adjacent racks'
  /// air nodes (hot aisle spillover). 0 leaves racks isolated.
  double adjacent_resistance_c_per_w = 0.0;

  bool enabled() const { return nodes_per_rack > 0; }
};

struct ClusterConfig {
  /// Base machine config shared by every node; NodeSpec fields override it
  /// per node. Node i's machine seed is derive_stream_seed(seed, i + 1).
  sched::MachineConfig machine{};

  /// Web workload config deployed on every node. Defaults to zero closed-loop
  /// connections: in a cluster, traffic arrives open-loop through the load
  /// balancer. Set connections > 0 to add per-node background load.
  workload::WebWorkload::Config web = open_loop_web();

  /// One entry per node. Empty is invalid: fleets are built explicitly,
  /// normally through FleetSpec.
  std::vector<NodeSpec> nodes;

  /// Master seed: machines, the request source, and everything stochastic
  /// derive pure per-stream seeds from it.
  std::uint64_t seed = 0x5eed;

  /// Offered load across the whole fleet, requests/second (Poisson), shaped
  /// by `traffic`.
  double offered_load_rps = 800.0;

  /// Time-varying load shape (diurnal curve, flash crowd). Defaults to
  /// constant.
  TrafficShape traffic{};

  /// Optional recorded/authored arrival trace. When set it replaces the
  /// Poisson source entirely (offered_load_rps and traffic are ignored; the
  /// source RNG stream is never drawn from, so replaying a recorded run is
  /// bit-identical to the original). Timestamps must be strictly
  /// increasing; arrivals after the run's end simply never fire. Shared so
  /// a sweep can replay one trace across a config grid without copying it
  /// per cell.
  std::shared_ptr<const ArrivalTrace> arrival_trace;

  /// Telemetry refresh period: how often the fleet is swept — balancer
  /// temperature views resampled, PROCHOT drain state checked, and the rack
  /// thermal layer stepped — as ONE batched interaction point, not a
  /// per-node event.
  sim::SimTime telemetry_period = sim::from_ms(50);

  /// Rack/CRAC thermal coupling (disabled by default).
  RackParams rack{};

  /// Optional cluster-scope trace sink (request_routed / node_drain /
  /// fleet_sample / request_complete events). Machine-scope sinks attach via
  /// `machine.trace_sink_factory` as usual.
  obs::SinkFactory trace_sink_factory;

  /// Fleet-advancement parallelism: how many lanes the per-machine advance
  /// at each telemetry sweep may fan across. 0 = auto, 1 = serial inside
  /// the cluster, N = N lanes. Resolution precedence: this field (nonzero),
  /// then the DIMETRODON_FLEET_THREADS environment variable, then auto
  /// (borrow the engine pool when one is shared below; otherwise spin up a
  /// pool for fleets large enough to pay for it). Strictly NON-semantic:
  /// results are bit-identical at every setting, so it is excluded from the
  /// canonical cache identity. A `machine.trace_sink_factory` forces the
  /// serial path regardless — the factory may hand every node one shared
  /// sink, which parallel advancement would race.
  std::size_t fleet_threads = 0;

  /// Work-stealing pool borrowed from the sweep engine (via RunContext);
  /// null when the cluster runs standalone. Never owned. Nested submission
  /// is safe: the fleet joins with ThreadPool::run_and_wait, which executes
  /// queued work instead of blocking on a saturated pool.
  runner::ThreadPool* shared_pool = nullptr;
  /// Engine's lanes hint for `shared_pool` (RunContext::lanes_hint): 0 =
  /// share/auto, 1 = stay serial (the grid saturates the pool), N = this
  /// run owns N lanes.
  std::size_t shared_lanes = 0;

  static workload::WebWorkload::Config open_loop_web() {
    workload::WebWorkload::Config c;
    c.connections = 0;
    return c;
  }
};

/// Per-node outcome of a cluster run.
struct NodeStats {
  std::uint64_t routed = 0;
  std::uint64_t completed = 0;
  /// Highest quantized sensor reading seen at any telemetry sample.
  double peak_sensor_c = 0.0;
  /// Time-average (over telemetry samples) of the node's mean sensor temp.
  double mean_sensor_c = 0.0;
  /// PROCHOT failover engagements (drain episodes, not per-core trips).
  std::uint64_t drains = 0;
  /// Governor trip engagements on this node (0 on open-loop nodes).
  std::uint64_t governor_trips = 0;
};

/// Fleet-level outcome of a cluster run.
struct ClusterResult {
  std::string policy;
  double duration_s = 0.0;
  std::uint64_t offered = 0;    // requests routed into the fleet
  std::uint64_t completed = 0;  // requests that finished within the run
  double throughput_rps = 0.0;
  /// Fleet-wide end-to-end latency QoS (SPECWeb buckets + streaming
  /// percentiles), over completed requests.
  workload::WebWorkload::QosStats qos;
  /// Hottest quantized sensor reading anywhere in the fleet, any sample.
  double fleet_peak_sensor_c = 0.0;
  /// Hottest continuous die temperature anywhere in the fleet, any sample
  /// (model ground truth behind the quantized telemetry).
  double fleet_peak_exact_c = 0.0;
  /// Time-and-node average of mean sensor temperature.
  double fleet_mean_sensor_c = 0.0;
  /// Hottest rack inlet (rack air temperature) at any telemetry sample;
  /// the CRAC supply temperature when the rack layer is disabled.
  double fleet_peak_inlet_c = 0.0;
  std::uint64_t drains = 0;
  std::size_t num_racks = 0;
  std::vector<NodeStats> nodes;
  /// Machine counters summed across nodes, plus the cluster-scope counters
  /// (requests_routed, node_drains, fleet_samples) from the cluster's own
  /// tracer.
  obs::CounterTotals counters;
  /// True energy consumed by the whole fleet over the run, joules.
  double total_energy_j = 0.0;
  /// Control-stability metrics merged (worst-node) across governed nodes;
  /// all-zero (samples == 0) when no node runs a governor.
  control::StabilityMetrics stability;
};

/// A fleet of N independent sched::Machine instances composed on one
/// deterministic timeline, engineered to scale to 1000+ nodes:
///
///  * Per-node hot state (quantized temps, outstanding counts, injection
///    duty, drain flags) lives in structure-of-arrays vectors; the balancer
///    reads them through a borrowed FleetView, so routing an arrival is an
///    allocation-free scan.
///  * The cluster timeline carries exactly two pending events — the next
///    arrival and the next telemetry sweep — regardless of fleet size;
///    coordination state beyond that is the O(racks) thermal layer.
///  * Machines advance lazily AND in parallel: an arrival only records a
///    (time, request-id) entry in the routed-to node's backlog; the fleet
///    synchronizes once per telemetry period (and at run end), where each
///    node replays its backlog and catches up to the sweep time — fanned
///    across a work-stealing pool, since the machines are independent
///    simulations. Every cross-node effect (telemetry SoA refresh, drain
///    transitions, trace events, rack/CRAC step, stats) is applied in fixed
///    node order AFTER the barrier, from per-node buffers filled during the
///    parallel phase. Balancer views are therefore stale by up to one
///    period — exactly the staleness a real fleet scheduler faces.
///  * Determinism: every machine is an independent simulation seeded by
///    derive_stream_seed(seed, node + 1) (stream 0 is the request source);
///    the parallel phase touches only per-node state and the post-barrier
///    reduction runs in fixed node order, so a run is a pure function of
///    its config — bit-identical at every fleet_threads setting and every
///    sweep thread count (DESIGN.md section 11 states the contract).
///
/// Rack/CRAC: with RackParams enabled, each rack's measured dissipation
/// (scaled by the recirculation fraction) feeds a per-rack air node; the air
/// network is stepped once per telemetry period and the resulting rack air
/// temperatures are written into member machines' fixed ambient nodes — a
/// hot rack raises its members' (and, with adjacent coupling, its
/// neighbors') inlet, closing the loop the paper's datacenter motivation
/// describes.
///
/// PROCHOT failover: at every telemetry sweep, a node with any physical
/// core's thermal monitor engaged is marked draining — it keeps serving its
/// queue but receives no new requests until every core releases.
///
/// Fleet churn (the admin_* surface, driven by scenario::ScenarioEngine):
/// nodes carry an administrative state orthogonal to the PROCHOT drain flag.
/// kActive nodes route; kDrained nodes serve their queues but take no new
/// work; kRemoving nodes have had their queued (not yet in-service) external
/// requests cancelled and re-homed and detach (kDetached) at the sweep where
/// their outstanding count reaches zero; kDetached nodes are never advanced
/// again — their machines survive only so node ids, completion callbacks and
/// final stats stay stable. PROCHOT degradation never overrides admin state:
/// when every ACTIVE node is throttling, load spreads over active nodes
/// only, and with no active nodes at all, arrivals are shed (counted +
/// traced) instead of routed to a node an operator ordered out of service.
class Cluster {
 public:
  /// Administrative lifecycle of a node (orthogonal to PROCHOT draining).
  enum class AdminState : std::uint8_t {
    kActive = 0,    // routable (unless PROCHOT-draining)
    kDrained = 1,   // operator drain: serves its queue, takes no new work
    kRemoving = 2,  // queued work re-homed; detaches when outstanding == 0
    kDetached = 3,  // out of the fleet; machine frozen at detach time
  };
  Cluster(ClusterConfig config, std::unique_ptr<LoadBalancer> balancer);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Advance the whole fleet by `duration`. May be called repeatedly; stats
  /// accrue from construction.
  ClusterResult run(sim::SimTime duration);

  // --- fleet churn / live reconfiguration (scenario directives) ------------
  // Every admin_* call first flushes the fleet to now() (backlogs replayed,
  // machines caught up, state folded in fixed node order) so the directive
  // lands at a well-defined instant — the same instant on every thread/lane
  // count. Calls between run() invocations or from scenario::ScenarioEngine
  // segments only; never from inside a running advance.

  /// Operator drain: the node serves its queue but receives no new work
  /// until admin_undrain. Throws std::invalid_argument unless kActive.
  void admin_drain(std::size_t i);
  /// Lift an operator drain (kDrained -> kActive).
  void admin_undrain(std::size_t i);
  /// Remove the node: queued (not yet in-service) external requests are
  /// cancelled and re-routed with their original issue times preserved
  /// (counted as requests_rehomed); in-service requests finish in place.
  /// The node detaches at the first sweep where its outstanding count
  /// reaches zero. Throws unless kActive or kDrained.
  void admin_remove(std::size_t i);
  /// Join a fresh node mid-run; returns its id (node ids are append-only).
  /// The machine is seeded derive_stream_seed(seed, id + 1) like any ctor
  /// node. With warmup > 0 the join is snapshot-warmed: a template machine
  /// (same config, workload deployed, no controller yet) runs [0, warmup],
  /// its snapshot restores into the real node, the controller/governor
  /// attach post-restore, and the node advances [warmup, now()] — so a warm
  /// join needs warmup <= now() and a snapshot-capable config (no power
  /// meter, no machine trace sink, no reference stepper, no closed-loop web
  /// connections); anything else falls back to a cold join (constructed at
  /// t = 0 and advanced to now()), marked in the kNodeJoin trace event.
  std::size_t admin_join(const NodeSpec& spec, sim::SimTime warmup = 0);
  /// Retarget the node's open-loop injection probability/quantum live. On a
  /// governed node this drives the arbiter's preventive channel (claimed
  /// lazily); on an open-loop node it creates the controller on demand.
  void admin_set_injection(std::size_t i, double probability,
                           sim::SimTime quantum);
  /// Swap the node's governor spec mid-run (GovernorDriver::retune). Throws
  /// std::invalid_argument when the node runs no governor.
  void admin_retune_governor(std::size_t i, const control::GovernorSpec& spec);
  /// Degrade/restore the node's fan (Machine::set_fan_speed), fraction in
  /// (0, 1].
  void admin_set_fan(std::size_t i, double fraction);
  /// Re-aim the CRAC supply boundary (ambient heat wave). With the rack
  /// layer enabled this moves the fixed CRAC node every rack relaxes
  /// toward; without it, every non-detached machine's fixed ambient node is
  /// written directly.
  void set_crac_supply(double supply_c);

  // --- observation (tests, examples) ---------------------------------------
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Number of racks (0 when the rack layer is disabled).
  std::size_t num_racks() const { return rack_air_node_.size(); }
  sched::Machine& machine(std::size_t i) { return *nodes_.at(i).machine; }
  workload::WebWorkload& web(std::size_t i) { return *nodes_.at(i).web; }
  bool draining(std::size_t i) const { return draining_.at(i) != 0; }
  AdminState admin_state(std::size_t i) const { return admin_.at(i); }
  /// Nodes not yet detached (the fleet the telemetry sweep covers).
  std::size_t active_nodes() const;
  /// Balancer-visible quantized mean sensor temp as of the last sweep.
  double sensor_temp_c(std::size_t i) const { return sensor_temp_c_.at(i); }
  std::uint32_t outstanding(std::size_t i) const {
    return outstanding_.at(i);
  }
  double injection_probability(std::size_t i) const {
    return injection_probability_.at(i);
  }
  /// Rack index of node i (i / nodes_per_rack; 0 when the layer is off).
  std::size_t rack_of(std::size_t i) const { return rack_of_.at(i); }
  /// Current inlet (rack air) temperature of rack r. Requires the rack
  /// layer; r < num_racks().
  double rack_inlet_c(std::size_t r) const;
  /// The SoA view the balancer sees right now (pointers borrow the
  /// cluster's arrays; valid until the next sweep or route).
  FleetView fleet_view() const;
  /// Pending cluster-timeline events: always 2 (next arrival + next sweep),
  /// independent of fleet size — the scaling invariant fleet_scale_test
  /// pins. Rack state adds O(num_racks()) beyond this; nothing is O(nodes).
  std::size_t timeline_entries() const { return 2; }
  /// Total machine run_until interactions issued by the cluster. Lazy
  /// advancement makes this ~ arrivals + nodes * sweeps, NOT
  /// arrivals * nodes.
  std::uint64_t machine_advances() const {
    return machine_advances_.load(std::memory_order_relaxed);
  }
  /// Resolved fleet-advancement lanes (1 = serial path). Diagnostics/tests;
  /// never observable in results.
  std::size_t fleet_lanes() const { return lanes_; }
  obs::Tracer& tracer() { return tracer_; }
  sim::SimTime now() const { return now_; }

 private:
  /// An arrival routed to a node but not yet injected into its machine:
  /// replayed (run_until(at) + inject) at the next fleet flush, on whatever
  /// lane owns the node.
  struct PendingArrival {
    sim::SimTime at = 0;
    std::uint32_t rid = 0;
    double demand_scale = 1.0;
    /// Original issue time for re-homed requests (latency accrues from the
    /// first routing, not the re-route); -1 = issued at `at`.
    sim::SimTime issued_at = -1;
  };

  /// A completion that fired during a node's (possibly parallel) advance.
  /// Buffered per node; the fleet-wide effects (QoS, histogram, trace) are
  /// applied post-barrier in fixed node order.
  struct CompletionRecord {
    sim::SimTime at = 0;  // the owning machine's clock at the completion
    std::uint32_t id = 0;
    double latency_s = 0.0;
  };

  struct Node {
    std::unique_ptr<sched::Machine> machine;
    std::unique_ptr<workload::WebWorkload> web;
    std::shared_ptr<core::DimetrodonController> controller;
    // Declared after the controller/machine they reference: destroyed first.
    std::unique_ptr<control::InjectionArbiter> arbiter;
    std::unique_ptr<control::GovernorDriver> driver;
    /// Arbiter preventive-channel port, claimed at construction (open-loop
    /// floor) or lazily by admin_set_injection; borrowed from arbiter.
    control::InjectionArbiter::Port* preventive_port = nullptr;
    NodeStats stats;
    analysis::OnlineStats temp_avg;
    /// Energy reading at the last rack-layer update (power = delta / dt).
    double last_energy_j = 0.0;
    std::vector<PendingArrival> backlog;
    std::vector<CompletionRecord> completions;
  };

  /// Per-node telemetry readings taken during the parallel phase (each lane
  /// writes only its own nodes' slots); folded into fleet state post-barrier.
  struct SweepScratch {
    double mean_c = 0.0;
    double hot_sensor = 0.0;
    double hot_die = 0.0;
    bool throttling = false;
  };

  void resolve_parallelism();
  /// Catch the whole fleet up to now() so an admin directive lands at a
  /// well-defined instant: advance_fleet + merge_sweep, fixed node order.
  void flush_fleet();
  /// Controller/arbiter/governor wiring per NodeSpec, shared by the
  /// constructor and admin_join (where it runs after snapshot restore —
  /// injection hooks and governor timers are not snapshot-capable).
  void attach_control(Node& node, const NodeSpec& spec);
  /// Time of the next arrival (trace cursor or Poisson draw); kTimeInfinity
  /// once an attached trace is exhausted.
  sim::SimTime pop_next_arrival();
  /// Parallel phase of a fleet flush: replay backlogs and advance every
  /// machine to `t`, filling sweep_scratch_ and the per-node completion
  /// buffers. Fans node chunks across the pool (or runs them inline when
  /// serial); touches NO cross-node state.
  void advance_fleet(sim::SimTime t);
  /// One lane's share of advance_fleet: nodes [begin, end).
  void run_chunk(std::size_t begin, std::size_t end, sim::SimTime t);
  /// Read node i's telemetry into sweep_scratch_[i] (no machine advance).
  void compute_node_telemetry(std::size_t i);
  /// Serial reduction of a fleet flush, in fixed node order: buffered
  /// completions, telemetry aggregation, drain transitions, the batched
  /// fleet_sample event, the rack/CRAC step, and the routable rebuild.
  void merge_sweep(sim::SimTime t);
  void update_rack_layer(sim::SimTime t);
  void rebuild_routable();
  void route(sim::SimTime t);
  void on_complete(std::size_t node, std::uint32_t id, double latency_s);

  ClusterConfig config_;
  std::unique_ptr<LoadBalancer> balancer_;
  RequestSource source_;
  std::vector<Node> nodes_;
  obs::Tracer tracer_;

  // Fleet-advancement parallelism (resolve_parallelism). pool_ is null on
  // the serial path; own_pool_ engages only when no engine pool is shared.
  std::unique_ptr<runner::ThreadPool> own_pool_;
  runner::ThreadPool* pool_ = nullptr;
  std::size_t lanes_ = 1;
  std::vector<SweepScratch> sweep_scratch_;

  // SoA hot state, indexed by node id (see FleetView).
  std::vector<double> sensor_temp_c_;
  std::vector<std::uint32_t> outstanding_;
  std::vector<double> injection_probability_;
  std::vector<std::uint8_t> draining_;
  std::vector<AdminState> admin_;
  std::vector<std::uint32_t> routable_;
  std::vector<std::uint32_t> rack_of_;

  /// Replay cursor into config_.arrival_trace (unused without a trace).
  std::size_t trace_pos_ = 0;

  // Rack/CRAC thermal layer (empty when disabled).
  thermal::RcNetwork rack_air_;
  thermal::NodeId crac_node_ = 0;
  std::vector<thermal::NodeId> rack_air_node_;
  std::vector<double> rack_power_w_;  // per-sweep scratch
  sim::SimTime last_rack_update_ = 0;

  sim::SimTime now_ = 0;
  sim::SimTime next_arrival_ = 0;
  sim::SimTime next_tick_ = 0;
  std::uint32_t next_request_id_ = 0;
  /// Atomic only for the cross-lane sum during advance_fleet; the total per
  /// flush is deterministic (backlog entries + one advance per node).
  std::atomic<std::uint64_t> machine_advances_{0};

  // Fleet-wide accumulators.
  std::uint64_t completed_ = 0;
  workload::WebWorkload::QosStats qos_;
  analysis::PercentileHistogram latency_hist_;
  analysis::OnlineStats fleet_temp_avg_;
  double fleet_peak_sensor_c_ = 0.0;
  double fleet_peak_exact_c_ = 0.0;
  double fleet_peak_inlet_c_ = 0.0;
};

}  // namespace dimetrodon::cluster
