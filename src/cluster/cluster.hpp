#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/histogram.hpp"
#include "analysis/stats.hpp"
#include "cluster/load_balancer.hpp"
#include "cluster/request_source.hpp"
#include "control/arbiter.hpp"
#include "control/driver.hpp"
#include "control/stability.hpp"
#include "core/controller.hpp"
#include "obs/tracer.hpp"
#include "sched/machine.hpp"
#include "workload/web.hpp"

namespace dimetrodon::cluster {

/// Per-node deviations from the cluster's base machine config. The fleet is
/// deliberately heterogeneous: rack position and airflow give each node its
/// own cooling quality, and operators tune Dimetrodon's injection intensity
/// per node to match.
struct NodeSpec {
  /// Cooling quality (thermal::FloorplanParams::fan_speed_fraction). Lower
  /// means a worse rack position / weaker airflow, i.e. a hotter node at
  /// equal load.
  double fan_speed_fraction = 1.0;
  /// Dimetrodon global injection probability on this node (0 disables the
  /// controller entirely — unless a governor is configured below).
  double injection_probability = 0.0;
  /// Injection quantum when the controller is active.
  sim::SimTime injection_quantum = sim::from_ms(10);
  /// Closed-loop governor on this node (src/control). When enabled, the node
  /// runs a Dimetrodon controller behind an InjectionArbiter: the governor
  /// claims the feedback channel and `injection_probability` (if > 0)
  /// becomes the open-loop preventive floor on the preventive channel —
  /// fleets can mix governed and open-loop nodes freely.
  control::GovernorSpec governor{};
};

struct ClusterConfig {
  /// Base machine config shared by every node; NodeSpec fields override it
  /// per node. Node i's machine seed is derive_stream_seed(seed, i + 1).
  sched::MachineConfig machine{};

  /// Web workload config deployed on every node. Defaults to zero closed-loop
  /// connections: in a cluster, traffic arrives open-loop through the load
  /// balancer. Set connections > 0 to add per-node background load.
  workload::WebWorkload::Config web = open_loop_web();

  std::vector<NodeSpec> nodes = {NodeSpec{}, NodeSpec{}, NodeSpec{},
                                 NodeSpec{}};

  /// Master seed: machines, the request source, and everything stochastic
  /// derive pure per-stream seeds from it.
  std::uint64_t seed = 0x5eed;

  /// Offered load across the whole fleet, requests/second (Poisson).
  double offered_load_rps = 800.0;

  /// Telemetry refresh period: how often the balancer's temperature views
  /// are resampled and PROCHOT drain state is checked.
  sim::SimTime telemetry_period = sim::from_ms(50);

  /// Optional cluster-scope trace sink (request_routed / node_drain /
  /// request_complete events). Machine-scope sinks attach via
  /// `machine.trace_sink_factory` as usual.
  obs::SinkFactory trace_sink_factory;

  static workload::WebWorkload::Config open_loop_web() {
    workload::WebWorkload::Config c;
    c.connections = 0;
    return c;
  }
};

/// Per-node outcome of a cluster run.
struct NodeStats {
  std::uint64_t routed = 0;
  std::uint64_t completed = 0;
  /// Highest quantized sensor reading seen at any telemetry sample.
  double peak_sensor_c = 0.0;
  /// Time-average (over telemetry samples) of the node's mean sensor temp.
  double mean_sensor_c = 0.0;
  /// PROCHOT failover engagements (drain episodes, not per-core trips).
  std::uint64_t drains = 0;
  /// Governor trip engagements on this node (0 on open-loop nodes).
  std::uint64_t governor_trips = 0;
};

/// Fleet-level outcome of a cluster run.
struct ClusterResult {
  std::string policy;
  double duration_s = 0.0;
  std::uint64_t offered = 0;    // requests routed into the fleet
  std::uint64_t completed = 0;  // requests that finished within the run
  double throughput_rps = 0.0;
  /// Fleet-wide end-to-end latency QoS (SPECWeb buckets + streaming
  /// percentiles), over completed requests.
  workload::WebWorkload::QosStats qos;
  /// Hottest quantized sensor reading anywhere in the fleet, any sample.
  double fleet_peak_sensor_c = 0.0;
  /// Hottest continuous die temperature anywhere in the fleet, any sample
  /// (model ground truth behind the quantized telemetry).
  double fleet_peak_exact_c = 0.0;
  /// Time-and-node average of mean sensor temperature.
  double fleet_mean_sensor_c = 0.0;
  std::uint64_t drains = 0;
  std::vector<NodeStats> nodes;
  /// Machine counters summed across nodes, plus the cluster-scope counters
  /// (requests_routed, node_drains) from the cluster's own tracer.
  obs::CounterTotals counters;
  /// True energy consumed by the whole fleet over the run, joules.
  double total_energy_j = 0.0;
  /// Control-stability metrics merged (worst-node) across governed nodes;
  /// all-zero (samples == 0) when no node runs a governor.
  control::StabilityMetrics stability;
};

/// A fleet of N independent sched::Machine instances composed on one
/// deterministic timeline. Each machine keeps its own simulator, thermal
/// stack, and RNG streams; the cluster advances them in fixed node order to
/// each global event time (request arrival or telemetry tick), so a run is a
/// pure function of its config — bit-reproducible regardless of sweep
/// parallelism.
///
/// Request path: the Poisson RequestSource emits an arrival; the cluster
/// builds the routable NodeViews (draining nodes excluded unless all drain);
/// the LoadBalancer picks a node; the request is injected into that node's
/// WebWorkload (same two-stage kernel/worker path as closed-loop traffic);
/// on completion the node reports end-to-end latency back and the cluster
/// streams it into a fleet-wide percentile histogram.
///
/// PROCHOT failover: at every telemetry sample, a node with any physical
/// core's thermal monitor engaged is marked draining — it keeps serving its
/// queue but receives no new requests until every core releases.
class Cluster {
 public:
  Cluster(ClusterConfig config, std::unique_ptr<LoadBalancer> balancer);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Advance the whole fleet by `duration`. May be called repeatedly; stats
  /// accrue from construction.
  ClusterResult run(sim::SimTime duration);

  // --- observation (tests, examples) ---------------------------------------
  std::size_t num_nodes() const { return nodes_.size(); }
  sched::Machine& machine(std::size_t i) { return *nodes_.at(i).machine; }
  workload::WebWorkload& web(std::size_t i) { return *nodes_.at(i).web; }
  bool draining(std::size_t i) const { return nodes_.at(i).view.draining; }
  /// The balancer-visible view as of the last telemetry sample.
  const NodeView& view(std::size_t i) const { return nodes_.at(i).view; }
  obs::Tracer& tracer() { return tracer_; }
  sim::SimTime now() const { return now_; }

 private:
  struct Node {
    std::unique_ptr<sched::Machine> machine;
    std::unique_ptr<workload::WebWorkload> web;
    std::shared_ptr<core::DimetrodonController> controller;
    // Declared after the controller/machine they reference: destroyed first.
    std::unique_ptr<control::InjectionArbiter> arbiter;
    std::unique_ptr<control::GovernorDriver> driver;
    NodeView view;
    NodeStats stats;
    analysis::OnlineStats temp_avg;
  };

  void advance_all(sim::SimTime t);
  void sample_telemetry(sim::SimTime t);
  void route(sim::SimTime t);
  void on_complete(std::size_t node, std::uint32_t id, double latency_s);

  ClusterConfig config_;
  std::unique_ptr<LoadBalancer> balancer_;
  RequestSource source_;
  std::vector<Node> nodes_;
  obs::Tracer tracer_;

  sim::SimTime now_ = 0;
  sim::SimTime next_arrival_ = 0;
  sim::SimTime next_tick_ = 0;
  std::uint32_t next_request_id_ = 0;

  // Fleet-wide accumulators.
  std::uint64_t completed_ = 0;
  workload::WebWorkload::QosStats qos_;
  analysis::PercentileHistogram latency_hist_;
  analysis::OnlineStats fleet_temp_avg_;
  double fleet_peak_sensor_c_ = 0.0;
  double fleet_peak_exact_c_ = 0.0;
};

}  // namespace dimetrodon::cluster
