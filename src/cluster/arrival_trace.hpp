#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dimetrodon::cluster {

/// One open-loop arrival in a recorded or authored trace. The size class is
/// a power-of-two service-demand multiplier (demand_scale() below) so a
/// byte-compact trace can still express a heavy-tailed request mix; the
/// affinity key, when nonzero, pins the request to a deterministic node
/// choice (affinity % routable_count) instead of the balancer's policy —
/// modeling session/cache affinity that a datacenter front-end honors even
/// when it fights the thermal-aware placement.
struct ArrivalRecord {
  sim::SimTime at = 0;        // absolute arrival time on the cluster timeline
  std::uint32_t affinity = 0; // 0 = no affinity, balancer picks
  std::uint8_t size_class = 0; // demand multiplier exponent, <= kMaxSizeClass

  static constexpr std::uint8_t kMaxSizeClass = 16;

  double demand_scale() const { return std::ldexp(1.0, size_class); }

  bool operator==(const ArrivalRecord&) const = default;
};

/// An arrival trace: strictly increasing timestamps (the cluster timeline
/// floors Poisson gaps at 1 ns for the same reason — no two requests may
/// collide). Replayed through ClusterConfig::arrival_trace it replaces the
/// Poisson source entirely; the source RNG stream is never drawn from, so a
/// recorded run replays bit-identically. scenario/trace_file.hpp gives the
/// versioned on-disk format.
struct ArrivalTrace {
  std::vector<ArrivalRecord> records;

  /// FNV-1a over the record fields in a fixed byte order — stable across
  /// platforms (field-by-field, not memcpy of padded structs). Part of the
  /// canonical cluster tag, so two traces with equal content share cache
  /// entries and unequal ones cannot collide silently.
  std::uint64_t content_hash() const {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v, int bytes) {
      for (int i = 0; i < bytes; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    for (const ArrivalRecord& r : records) {
      mix(static_cast<std::uint64_t>(r.at), 8);
      mix(r.affinity, 4);
      mix(r.size_class, 1);
    }
    return h;
  }
};

}  // namespace dimetrodon::cluster
