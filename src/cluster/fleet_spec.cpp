#include "cluster/fleet_spec.hpp"

#include <stdexcept>

namespace dimetrodon::cluster {

namespace {

void apply(NodeSpec& n, const NodeOverride& o) {
  if (o.fan_speed_fraction) n.fan_speed_fraction = *o.fan_speed_fraction;
  if (o.injection_probability) {
    n.injection_probability = *o.injection_probability;
  }
  if (o.injection_quantum) n.injection_quantum = *o.injection_quantum;
  if (o.governor) n.governor = *o.governor;
}

}  // namespace

FleetSpec FleetSpec::racks(std::size_t count) {
  FleetSpec s;
  s.racks_ = count;
  return s;
}

FleetSpec& FleetSpec::nodes_per_rack(std::size_t m) {
  per_rack_ = m;
  return *this;
}

FleetSpec& FleetSpec::with_machine(const sched::MachineConfig& machine) {
  machine_ = machine;
  return *this;
}

FleetSpec& FleetSpec::with_web(const workload::WebWorkload::Config& web) {
  web_ = web;
  return *this;
}

FleetSpec& FleetSpec::with_cooling(double bottom_fan, double top_fan) {
  fan_bottom_ = bottom_fan;
  fan_top_ = top_fan;
  return *this;
}

FleetSpec& FleetSpec::with_injection(double p, sim::SimTime quantum) {
  injection_p_ = p;
  injection_gradient_ = false;
  injection_quantum_ = quantum;
  return *this;
}

FleetSpec& FleetSpec::with_injection_gradient(double top_p,
                                              sim::SimTime quantum) {
  injection_p_ = top_p;
  injection_gradient_ = true;
  injection_quantum_ = quantum;
  return *this;
}

FleetSpec& FleetSpec::with_governor(const control::GovernorSpec& governor) {
  governor_ = governor;
  return *this;
}

FleetSpec& FleetSpec::with_crac(const RackParams& rack) {
  crac_ = rack;
  return *this;
}

FleetSpec& FleetSpec::with_load(double rps) {
  load_rps_ = rps;
  return *this;
}

FleetSpec& FleetSpec::with_traffic(const TrafficShape& shape) {
  traffic_ = shape;
  return *this;
}

FleetSpec& FleetSpec::with_telemetry(sim::SimTime period) {
  telemetry_ = period;
  return *this;
}

FleetSpec& FleetSpec::with_seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

FleetSpec& FleetSpec::with_fleet_threads(std::size_t threads) {
  fleet_threads_ = threads;
  return *this;
}

FleetSpec& FleetSpec::with_trace_sink(obs::SinkFactory factory) {
  sink_ = std::move(factory);
  return *this;
}

FleetSpec& FleetSpec::with_policy(PolicyKind kind,
                                  double injection_threshold) {
  policy_ = kind;
  injection_threshold_ = injection_threshold;
  return *this;
}

FleetSpec& FleetSpec::for_duration(sim::SimTime duration) {
  duration_ = duration;
  return *this;
}

FleetSpec& FleetSpec::group(std::size_t first_rack, std::size_t count,
                            const NodeOverride& o) {
  group_overrides_.push_back({first_rack, count, o});
  return *this;
}

FleetSpec& FleetSpec::override_position(std::size_t pos,
                                        const NodeOverride& o) {
  position_overrides_.push_back({pos, o});
  return *this;
}

ClusterConfig FleetSpec::config() const {
  if (racks_ == 0) throw std::invalid_argument("fleet needs >= 1 rack");
  if (per_rack_ == 0) {
    throw std::invalid_argument("fleet needs >= 1 node per rack");
  }
  if (fan_bottom_ <= 0.0 || fan_bottom_ > 1.0 || fan_top_ <= 0.0 ||
      fan_top_ > 1.0) {
    throw std::invalid_argument("fan speed fractions must lie in (0, 1]");
  }
  if (injection_p_ < 0.0 || injection_p_ > 1.0) {
    throw std::invalid_argument("injection probability must lie in [0, 1]");
  }
  for (const GroupOverride& g : group_overrides_) {
    if (g.first_rack + g.count > racks_) {
      throw std::invalid_argument("group override exceeds the rack range");
    }
  }
  for (const PositionOverride& p : position_overrides_) {
    if (p.pos >= per_rack_) {
      throw std::invalid_argument("position override exceeds nodes_per_rack");
    }
  }

  ClusterConfig cc;
  cc.machine = machine_;
  cc.web = web_;
  cc.seed = seed_ ? *seed_ : machine_.seed;
  cc.offered_load_rps = load_rps_;
  cc.traffic = traffic_;
  cc.telemetry_period = telemetry_;
  cc.fleet_threads = fleet_threads_;
  cc.trace_sink_factory = sink_;
  if (crac_) {
    cc.rack = *crac_;
    cc.rack.nodes_per_rack = per_rack_;
  }

  cc.nodes.resize(racks_ * per_rack_);
  const double denom =
      per_rack_ > 1 ? static_cast<double>(per_rack_ - 1) : 1.0;
  for (std::size_t r = 0; r < racks_; ++r) {
    for (std::size_t pos = 0; pos < per_rack_; ++pos) {
      NodeSpec& n = cc.nodes[r * per_rack_ + pos];
      const double frac = static_cast<double>(pos) / denom;
      n.fan_speed_fraction = fan_bottom_ + (fan_top_ - fan_bottom_) * frac;
      n.injection_probability =
          injection_gradient_ ? injection_p_ * frac : injection_p_;
      n.injection_quantum = injection_quantum_;
      if (governor_) n.governor = *governor_;
      for (const GroupOverride& g : group_overrides_) {
        if (r >= g.first_rack && r < g.first_rack + g.count) apply(n, g.o);
      }
      for (const PositionOverride& p : position_overrides_) {
        if (p.pos == pos) apply(n, p.o);
      }
    }
  }
  return cc;
}

ClusterRunSpec FleetSpec::build() const {
  ClusterRunSpec spec;
  spec.cluster = config();
  spec.policy = policy_;
  spec.injection_threshold = injection_threshold_;
  spec.duration = duration_;
  return spec;
}

runner::RunSpec FleetSpec::run_spec() const { return to_run_spec(build()); }

std::unique_ptr<Cluster> FleetSpec::make_cluster() const {
  return std::make_unique<Cluster>(config(),
                                   make_policy(policy_, injection_threshold_));
}

}  // namespace dimetrodon::cluster
