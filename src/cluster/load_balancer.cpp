#include "cluster/load_balancer.hpp"

#include <algorithm>
#include <stdexcept>

namespace dimetrodon::cluster {

namespace {

/// Tie-break chain shared by the stateful policies: fewer outstanding, then
/// cooler, then lower id. Total and deterministic.
bool less_loaded(const NodeView& a, const NodeView& b) {
  if (a.outstanding != b.outstanding) return a.outstanding < b.outstanding;
  if (a.sensor_temp_c != b.sensor_temp_c) {
    return a.sensor_temp_c < b.sensor_temp_c;
  }
  return a.id < b.id;
}

bool cooler(const NodeView& a, const NodeView& b) {
  if (a.sensor_temp_c != b.sensor_temp_c) {
    return a.sensor_temp_c < b.sensor_temp_c;
  }
  if (a.outstanding != b.outstanding) return a.outstanding < b.outstanding;
  return a.id < b.id;
}

/// Cycle node ids in increasing order, skipping nodes that dropped out of the
/// routable set (drained) without disturbing the rotation for the rest.
class RoundRobin final : public LoadBalancer {
 public:
  const char* name() const override { return "round-robin"; }
  std::size_t pick(const std::vector<NodeView>& views) override {
    const NodeView* best = nullptr;
    const NodeView* lowest = nullptr;
    for (const NodeView& v : views) {
      if (lowest == nullptr || v.id < lowest->id) lowest = &v;
      if (v.id > last_ && (best == nullptr || v.id < best->id)) best = &v;
    }
    const NodeView& chosen = best != nullptr ? *best : *lowest;  // wrap
    last_ = chosen.id;
    return chosen.id;
  }

 private:
  std::size_t last_ = static_cast<std::size_t>(-1);
};

class LeastOutstanding final : public LoadBalancer {
 public:
  const char* name() const override { return "least-outstanding"; }
  std::size_t pick(const std::vector<NodeView>& views) override {
    const NodeView* best = &views.front();
    for (const NodeView& v : views) {
      if (less_loaded(v, *best)) best = &v;
    }
    return best->id;
  }
};

/// Thermal-aware: route to the node whose quantized sensors read coolest.
/// The 1 C quantization makes ties common, so the outstanding-count
/// tie-break doubles as herd protection between telemetry refreshes.
class CoolestNode final : public LoadBalancer {
 public:
  const char* name() const override { return "coolest-node"; }
  std::size_t pick(const std::vector<NodeView>& views) override {
    const NodeView* best = &views.front();
    for (const NodeView& v : views) {
      if (cooler(v, *best)) best = &v;
    }
    return best->id;
  }
};

/// Injection-aware: deprioritize nodes whose idle-injection probability
/// exceeds the threshold — Dimetrodon is already taxing their capacity by
/// roughly a (1 - p) factor, so their outstanding count is scored against
/// that reduced capacity (capacity-weighted least-outstanding). Under light
/// load everything scores ~0 and the tie-break sends traffic to the
/// un-injected tier; under heavy load the injected nodes still absorb their
/// fair, capacity-proportional share instead of the preferred tier
/// collapsing.
class InjectionAware final : public LoadBalancer {
 public:
  explicit InjectionAware(double threshold) : threshold_(threshold) {}
  const char* name() const override { return "injection-aware"; }
  std::size_t pick(const std::vector<NodeView>& views) override {
    const NodeView* best = nullptr;
    double best_score = 0.0;
    for (const NodeView& v : views) {
      const double score =
          static_cast<double>(v.outstanding) / capacity(v);
      if (best == nullptr || score < best_score ||
          (score == best_score && prefer(v, *best))) {
        best = &v;
        best_score = score;
      }
    }
    return best->id;
  }

 private:
  double capacity(const NodeView& v) const {
    if (v.injection_probability <= threshold_) return 1.0;
    // Injection leaves the node ~(1 - p) of its cycles; floor the weight so
    // a p ~ 1 node still scores finitely.
    return std::max(0.05, 1.0 - v.injection_probability);
  }

  bool prefer(const NodeView& a, const NodeView& b) const {
    const bool a_light = a.injection_probability <= threshold_;
    const bool b_light = b.injection_probability <= threshold_;
    if (a_light != b_light) return a_light;
    return cooler(a, b);
  }

  double threshold_;
};

}  // namespace

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRoundRobin: return "round-robin";
    case PolicyKind::kLeastOutstanding: return "least-outstanding";
    case PolicyKind::kCoolestNode: return "coolest-node";
    case PolicyKind::kInjectionAware: return "injection-aware";
  }
  throw std::invalid_argument("unknown PolicyKind");
}

std::unique_ptr<LoadBalancer> make_policy(PolicyKind kind,
                                          double injection_threshold) {
  switch (kind) {
    case PolicyKind::kRoundRobin: return std::make_unique<RoundRobin>();
    case PolicyKind::kLeastOutstanding:
      return std::make_unique<LeastOutstanding>();
    case PolicyKind::kCoolestNode: return std::make_unique<CoolestNode>();
    case PolicyKind::kInjectionAware:
      return std::make_unique<InjectionAware>(injection_threshold);
  }
  throw std::invalid_argument("unknown PolicyKind");
}

}  // namespace dimetrodon::cluster
