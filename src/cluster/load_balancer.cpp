#include "cluster/load_balancer.hpp"

#include <algorithm>
#include <stdexcept>

namespace dimetrodon::cluster {

namespace {

/// Tie-break chains shared by the stateful policies, over SoA node ids:
/// fewer outstanding, then cooler, then lower id. The routable list is
/// scanned in ascending id order and a candidate only displaces the
/// incumbent on strictly-better, so the final id tie-break is implicit.
bool less_loaded(const FleetView& f, std::uint32_t a, std::uint32_t b) {
  if (f.outstanding[a] != f.outstanding[b]) {
    return f.outstanding[a] < f.outstanding[b];
  }
  return f.sensor_temp_c[a] < f.sensor_temp_c[b];
}

bool cooler(const FleetView& f, std::uint32_t a, std::uint32_t b) {
  if (f.sensor_temp_c[a] != f.sensor_temp_c[b]) {
    return f.sensor_temp_c[a] < f.sensor_temp_c[b];
  }
  return f.outstanding[a] < f.outstanding[b];
}

/// Cycle node ids in increasing order, skipping nodes that dropped out of
/// the routable set (drained) without disturbing the rotation for the rest.
/// The routable list is sorted, so one binary search finds the successor —
/// the only O(log n) policy; the others are single linear scans.
class RoundRobin final : public LoadBalancer {
 public:
  const char* name() const override { return "round-robin"; }
  std::size_t pick(const FleetView& fleet) override {
    const std::uint32_t* end = fleet.routable + fleet.routable_count;
    const std::uint32_t* it = std::upper_bound(fleet.routable, end, last_);
    const std::uint32_t chosen = it != end ? *it : fleet.routable[0];  // wrap
    last_ = chosen;
    return chosen;
  }

 private:
  std::uint32_t last_ = static_cast<std::uint32_t>(-1);
};

class LeastOutstanding final : public LoadBalancer {
 public:
  const char* name() const override { return "least-outstanding"; }
  std::size_t pick(const FleetView& fleet) override {
    std::uint32_t best = fleet.routable[0];
    for (std::size_t i = 1; i < fleet.routable_count; ++i) {
      const std::uint32_t id = fleet.routable[i];
      if (less_loaded(fleet, id, best)) best = id;
    }
    return best;
  }
};

/// Thermal-aware: route to the node whose quantized sensors read coolest.
/// The 1 C quantization makes ties common, so the outstanding-count
/// tie-break doubles as herd protection between telemetry refreshes.
class CoolestNode final : public LoadBalancer {
 public:
  const char* name() const override { return "coolest-node"; }
  std::size_t pick(const FleetView& fleet) override {
    std::uint32_t best = fleet.routable[0];
    for (std::size_t i = 1; i < fleet.routable_count; ++i) {
      const std::uint32_t id = fleet.routable[i];
      if (cooler(fleet, id, best)) best = id;
    }
    return best;
  }
};

/// Injection-aware: deprioritize nodes whose idle-injection probability
/// exceeds the threshold — Dimetrodon is already taxing their capacity by
/// roughly a (1 - p) factor, so their outstanding count is scored against
/// that reduced capacity (capacity-weighted least-outstanding). Under light
/// load everything scores ~0 and the tie-break sends traffic to the
/// un-injected tier; under heavy load the injected nodes still absorb their
/// fair, capacity-proportional share instead of the preferred tier
/// collapsing.
class InjectionAware final : public LoadBalancer {
 public:
  explicit InjectionAware(double threshold) : threshold_(threshold) {}
  const char* name() const override { return "injection-aware"; }
  std::size_t pick(const FleetView& fleet) override {
    std::uint32_t best = fleet.routable[0];
    double best_score = score(fleet, best);
    for (std::size_t i = 1; i < fleet.routable_count; ++i) {
      const std::uint32_t id = fleet.routable[i];
      const double s = score(fleet, id);
      if (s < best_score || (s == best_score && prefer(fleet, id, best))) {
        best = id;
        best_score = s;
      }
    }
    return best;
  }

 private:
  double capacity(const FleetView& f, std::uint32_t id) const {
    if (f.injection_probability[id] <= threshold_) return 1.0;
    // Injection leaves the node ~(1 - p) of its cycles; floor the weight so
    // a p ~ 1 node still scores finitely.
    return std::max(0.05, 1.0 - f.injection_probability[id]);
  }

  double score(const FleetView& f, std::uint32_t id) const {
    return static_cast<double>(f.outstanding[id]) / capacity(f, id);
  }

  bool prefer(const FleetView& f, std::uint32_t a, std::uint32_t b) const {
    const bool a_light = f.injection_probability[a] <= threshold_;
    const bool b_light = f.injection_probability[b] <= threshold_;
    if (a_light != b_light) return a_light;
    return cooler(f, a, b);
  }

  double threshold_;
};

}  // namespace

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRoundRobin: return "round-robin";
    case PolicyKind::kLeastOutstanding: return "least-outstanding";
    case PolicyKind::kCoolestNode: return "coolest-node";
    case PolicyKind::kInjectionAware: return "injection-aware";
  }
  throw std::invalid_argument("unknown PolicyKind");
}

std::unique_ptr<LoadBalancer> make_policy(PolicyKind kind,
                                          double injection_threshold) {
  switch (kind) {
    case PolicyKind::kRoundRobin: return std::make_unique<RoundRobin>();
    case PolicyKind::kLeastOutstanding:
      return std::make_unique<LeastOutstanding>();
    case PolicyKind::kCoolestNode: return std::make_unique<CoolestNode>();
    case PolicyKind::kInjectionAware:
      return std::make_unique<InjectionAware>(injection_threshold);
  }
  throw std::invalid_argument("unknown PolicyKind");
}

}  // namespace dimetrodon::cluster
