#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dimetrodon::cluster {

/// What the load balancer is allowed to see about a node: the operational
/// telemetry a fleet scheduler would actually have. Temperatures are the
/// node's *quantized* coretemp readings (1 C resolution), refreshed at the
/// cluster's telemetry period — not the continuous model state — so routing
/// decisions face the same sensor coarseness the paper's controller does.
struct NodeView {
  std::size_t id = 0;
  /// Mean of the node's quantized per-core sensor readings at the last
  /// telemetry sample (stale by up to one period).
  double sensor_temp_c = 0.0;
  /// Requests routed to the node and not yet completed. Exact and current:
  /// this is the balancer's own bookkeeping, not sampled telemetry.
  std::size_t outstanding = 0;
  /// The node's configured idle-injection probability (its preventive
  /// thermal-management intensity, known fleet-wide as configuration).
  double injection_probability = 0.0;
  /// PROCHOT failover: the node tripped its thermal monitor and is being
  /// drained. Draining nodes are excluded from routing unless every node is
  /// draining (shedding load entirely would drop requests on the floor).
  bool draining = false;
};

enum class PolicyKind : std::uint8_t {
  kRoundRobin,
  kLeastOutstanding,
  kCoolestNode,
  kInjectionAware,
};

const char* policy_name(PolicyKind kind);

/// Routing policy interface. `pick` receives the views of the currently
/// routable nodes (never empty) and returns the chosen node id. Policies may
/// keep internal state (e.g. a round-robin cursor) but must be deterministic:
/// the same view sequence yields the same decisions.
class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  virtual const char* name() const = 0;
  virtual std::size_t pick(const std::vector<NodeView>& views) = 0;
};

/// `injection_threshold` only affects kInjectionAware: nodes whose injection
/// probability exceeds it are deprioritized (used only when every routable
/// node exceeds it).
std::unique_ptr<LoadBalancer> make_policy(PolicyKind kind,
                                          double injection_threshold = 0.25);

}  // namespace dimetrodon::cluster
