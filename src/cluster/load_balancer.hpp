#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace dimetrodon::cluster {

/// What the load balancer is allowed to see about the fleet: the operational
/// telemetry a datacenter scheduler would actually have, in structure-of-
/// arrays form so a 1000-node pick is a few cache-line streams instead of a
/// per-arrival vector of per-node structs. All pointers borrow the cluster's
/// persistent arrays — a view is built in O(1) and never allocates.
///
/// Temperatures are the node's *quantized* coretemp readings (1 C
/// resolution), refreshed at the cluster's telemetry period — not the
/// continuous model state — so routing decisions face the same sensor
/// coarseness the paper's controller does.
struct FleetView {
  std::size_t num_nodes = 0;
  /// Mean quantized sensor reading per node at the last telemetry sample
  /// (stale by up to one period). Indexed by node id.
  const double* sensor_temp_c = nullptr;
  /// Requests routed to the node and not yet completed. Increments are
  /// exact and current (the balancer's own bookkeeping at route time);
  /// decrements land at fleet flushes, when deferred advancement drains the
  /// completions — so, like the temperatures, the count runs stale by up to
  /// one telemetry period. A real fleet scheduler faces the same lag: it
  /// learns of completions from telemetry, not synchronously.
  const std::uint32_t* outstanding = nullptr;
  /// The node's configured idle-injection probability (its preventive
  /// thermal-management intensity, known fleet-wide as configuration).
  const double* injection_probability = nullptr;
  /// PROCHOT failover flag (0/1): the node tripped its thermal monitor and
  /// is being drained.
  const std::uint8_t* draining = nullptr;
  /// Ids of the currently routable nodes, strictly ascending, never empty.
  /// Draining nodes are excluded unless every node is draining (shedding
  /// load entirely would drop requests on the floor).
  const std::uint32_t* routable = nullptr;
  std::size_t routable_count = 0;
};

enum class PolicyKind : std::uint8_t {
  kRoundRobin,
  kLeastOutstanding,
  kCoolestNode,
  kInjectionAware,
};

const char* policy_name(PolicyKind kind);

/// Routing policy interface. `pick` scans the routable id list (never empty)
/// and returns the chosen node id. Policies may keep internal state (e.g. a
/// round-robin cursor) but must be deterministic: the same view sequence
/// yields the same decisions.
class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;
  virtual const char* name() const = 0;
  virtual std::size_t pick(const FleetView& fleet) = 0;
};

/// `injection_threshold` only affects kInjectionAware: nodes whose injection
/// probability exceeds it are deprioritized (used only when every routable
/// node exceeds it).
std::unique_ptr<LoadBalancer> make_policy(PolicyKind kind,
                                          double injection_threshold = 0.25);

}  // namespace dimetrodon::cluster
