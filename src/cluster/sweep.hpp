#pragma once

#include "cluster/cluster.hpp"
#include "runner/run_spec.hpp"

namespace dimetrodon::cluster {

/// Declarative description of one cluster run, bridgeable into the sweep
/// engine (cache, parallelism, fault isolation) as a kCustom RunSpec.
struct ClusterRunSpec {
  ClusterConfig cluster{};
  PolicyKind policy = PolicyKind::kRoundRobin;
  /// Threshold for PolicyKind::kInjectionAware (ignored otherwise, but
  /// always part of the cache identity).
  double injection_threshold = 0.25;
  sim::SimTime duration = sim::from_sec(40);
};

/// Canonical text of everything a ClusterRunSpec adds on top of the base
/// machine config (policy, load, telemetry, web config, per-node specs).
/// Doubles render as hex floats; this string becomes the RunSpec custom_tag
/// and therefore part of the cache key.
std::string canonical_cluster_tag(const ClusterRunSpec& spec);

/// Package a cluster run as a sweep-engine RunSpec. The engine hashes
/// `spec.cluster.machine` (via RunSpec::machine) and the canonical tag; at
/// execution it hands back the machine config with the sweep seed applied,
/// which becomes both the cluster master seed and the per-node config base.
/// The record carries throughput, fleet QoS (RunResult::qos), aggregated
/// counters, and named extras (fleet_peak_sensor_c, fleet_peak_exact_c,
/// fleet_mean_sensor_c, offered, completed, drains, energy_j, and the
/// control-stability metrics osc_amp_temp_c / osc_amp_duty / duty_reversals /
/// overshoot_c / settling_s).
runner::RunSpec to_run_spec(const ClusterRunSpec& spec);

}  // namespace dimetrodon::cluster
