#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dimetrodon::cluster {

/// Open-loop Poisson request source: the cluster's client population,
/// modeled as a memoryless arrival process at a fixed offered load. Unlike
/// the closed-loop connections inside workload::WebWorkload, arrivals here do
/// not wait for completions — overload shows up as queue growth and tail
/// latency instead of self-throttling.
///
/// Determinism: the source owns its own sim::Rng stream derived purely from
/// (master seed, stream id) via sim::derive_stream_seed, so the arrival
/// sequence is a function of the seed alone — independent of sweep thread
/// count, execution order, and everything else in the simulation.
class RequestSource {
 public:
  /// `rate_rps` must be > 0.
  RequestSource(std::uint64_t master_seed, std::uint64_t stream_id,
                double rate_rps);

  /// Absolute time of the next arrival. Each call consumes one exponential
  /// inter-arrival draw; the sequence is strictly increasing (gaps are
  /// floored at 1 ns so two requests never collide on the timeline).
  sim::SimTime next();

  std::uint64_t issued() const { return issued_; }
  double rate_rps() const { return rate_rps_; }

 private:
  sim::Rng rng_;
  double rate_rps_;
  double mean_gap_s_;
  sim::SimTime t_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace dimetrodon::cluster
