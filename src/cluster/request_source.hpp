#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dimetrodon::cluster {

/// Time-varying offered-load shape: a multiplicative modulation of the
/// source's base rate. Two primitives compose multiplicatively:
///
///  * a diurnal curve — rate(t) = base * (1 + depth * sin(2*pi*t/period)) —
///    the day/night swing every datacenter fleet rides, compressed into
///    whatever `period` the experiment can afford (a simulated "day" of a
///    few seconds exercises exactly the same thermal dynamics);
///  * a flash crowd — a rectangular pulse multiplying the rate by
///    `flash_multiplier` over [flash_start, flash_start + flash_duration) —
///    the sudden regional-failover / viral-event surge preventive thermal
///    management exists to absorb.
///
/// The default shape is constant (depth 0, multiplier 1); a constant shape
/// takes the exact classic one-exponential-per-arrival path, so every
/// pre-existing trace stays bit-identical.
struct TrafficShape {
  /// Relative diurnal swing in [0, 1): rate peaks at base*(1+depth) and
  /// troughs at base*(1-depth). 0 disables the curve.
  double diurnal_depth = 0.0;
  /// Length of one simulated "day". Must be > 0 when depth > 0.
  sim::SimTime diurnal_period = 0;
  /// Phase offset: the curve is evaluated at (t + phase).
  sim::SimTime diurnal_phase = 0;

  /// Rate multiplier during the flash window (>= 1; 1 disables the pulse).
  double flash_multiplier = 1.0;
  sim::SimTime flash_start = 0;
  sim::SimTime flash_duration = 0;

  bool constant() const {
    return diurnal_depth == 0.0 && flash_multiplier == 1.0;
  }

  /// rate(t) / base_rate, in (0, peak_factor()].
  double modulation(sim::SimTime t) const;

  /// Max of modulation() over all t: (1 + depth) * flash_multiplier. The
  /// thinning sampler proposes candidates at base * peak_factor().
  double peak_factor() const {
    return (1.0 + diurnal_depth) * flash_multiplier;
  }

  static TrafficShape steady() { return TrafficShape{}; }
  static TrafficShape diurnal(sim::SimTime period, double depth,
                              sim::SimTime phase = 0) {
    TrafficShape s;
    s.diurnal_period = period;
    s.diurnal_depth = depth;
    s.diurnal_phase = phase;
    return s;
  }
  TrafficShape& with_flash(sim::SimTime start, sim::SimTime duration,
                           double multiplier) {
    flash_start = start;
    flash_duration = duration;
    flash_multiplier = multiplier;
    return *this;
  }
};

/// Open-loop Poisson request source: the cluster's client population,
/// modeled as a (possibly non-homogeneous) memoryless arrival process.
/// Unlike the closed-loop connections inside workload::WebWorkload, arrivals
/// here do not wait for completions — overload shows up as queue growth and
/// tail latency instead of self-throttling.
///
/// Shaped traffic uses Poisson thinning (Lewis & Shedler): candidates are
/// drawn at the peak rate and accepted with probability rate(t)/peak. A
/// constant shape bypasses thinning entirely and reproduces the classic
/// homogeneous draw sequence bit-for-bit.
///
/// Determinism: the source owns its own sim::Rng stream derived purely from
/// (master seed, stream id) via sim::derive_stream_seed, so the arrival
/// sequence is a function of the seed and shape alone — independent of sweep
/// thread count, execution order, and everything else in the simulation.
class RequestSource {
 public:
  /// `rate_rps` must be > 0; shape invariants (depth in [0,1), period > 0
  /// when depth > 0, multiplier >= 1) are validated here.
  RequestSource(std::uint64_t master_seed, std::uint64_t stream_id,
                double rate_rps, TrafficShape shape = TrafficShape::steady());

  /// Absolute time of the next arrival. The sequence is strictly increasing
  /// (candidate gaps are floored at 1 ns so two requests never collide on
  /// the timeline).
  sim::SimTime next();

  std::uint64_t issued() const { return issued_; }
  double rate_rps() const { return rate_rps_; }
  const TrafficShape& shape() const { return shape_; }
  /// Instantaneous offered load at `t`, requests/second.
  double rate_at(sim::SimTime t) const {
    return rate_rps_ * shape_.modulation(t);
  }

 private:
  sim::Rng rng_;
  double rate_rps_;
  TrafficShape shape_;
  double candidate_gap_s_;  // mean gap between thinning candidates
  sim::SimTime t_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace dimetrodon::cluster
