#include "cluster/sweep.hpp"

#include "sim/canon.hpp"

namespace dimetrodon::cluster {

std::string canonical_cluster_tag(const ClusterRunSpec& spec) {
  // v4: arrivals are backlogged at route time and injected at the next
  // fleet flush, so completion visibility to the balancer moved from
  // mid-period to sweep boundaries — same machines, different routing
  // feedback, different numbers. fleet_threads/shared_pool are execution
  // knobs, NOT identity: results are bit-identical at every setting, so
  // they stay out of the tag. (The layer version rides on
  // sim::kCanonVersion via the enclosing run-spec preamble; this label
  // tracks cluster semantics.)
  // v5: optional arrival-trace replay — the trace's length and content hash
  // join the identity (two runs replaying different traces are different
  // simulations even with every other knob equal).
  sim::CanonWriter w(1024);
  w.open("cluster-v5");
  w.field("policy", static_cast<std::uint64_t>(spec.policy));
  w.field("inj_thresh", spec.injection_threshold);
  w.field("duration", spec.duration);
  w.field("load_rps", spec.cluster.offered_load_rps);
  w.field("telemetry", spec.cluster.telemetry_period);
  const TrafficShape& t = spec.cluster.traffic;
  w.open("traffic");
  w.field("depth", t.diurnal_depth);
  w.field("period", t.diurnal_period);
  w.field("phase", t.diurnal_phase);
  w.field("flash", t.flash_multiplier);
  w.field("fstart", t.flash_start);
  w.field("fdur", t.flash_duration);
  w.close();
  if (spec.cluster.arrival_trace) {
    w.open("trace");
    w.field("n", static_cast<std::uint64_t>(
                     spec.cluster.arrival_trace->records.size()));
    w.field("hash", spec.cluster.arrival_trace->content_hash());
    w.close();
  }
  const RackParams& rk = spec.cluster.rack;
  w.open("rack");
  w.field("npr", static_cast<std::uint64_t>(rk.nodes_per_rack));
  w.field("supply", rk.crac_supply_c);
  w.field("air_c", rk.air_capacitance_j_per_c);
  w.field("crac_r", rk.to_crac_resistance_c_per_w);
  w.field("recirc", rk.recirculation_fraction);
  w.field("adj_r", rk.adjacent_resistance_c_per_w);
  w.close();
  const auto& web = spec.cluster.web;
  w.open("web");
  w.field("conns", static_cast<std::uint64_t>(web.connections));
  w.field("think", web.think_mean_s);
  w.field("demand", web.demand_mean_s);
  w.field("kdemand", web.kernel_demand_s);
  w.field("workers", static_cast<std::uint64_t>(web.workers));
  w.field("activity", web.worker_activity);
  w.field("good", web.good_threshold_s);
  w.field("tol", web.tolerable_threshold_s);
  w.close();
  w.open_list("nodes");
  for (const NodeSpec& n : spec.cluster.nodes) {
    w.field("fan", n.fan_speed_fraction);
    w.field("p", n.injection_probability);
    w.field("L", n.injection_quantum);
    if (n.governor.enabled()) {
      control::append_canonical_governor(w, n.governor);
    }
  }
  w.close_list();
  w.close();
  return w.take();
}

runner::RunSpec to_run_spec(const ClusterRunSpec& spec) {
  runner::RunSpec rs;
  rs.kind = runner::RunSpec::Kind::kCustom;
  rs.seed = spec.cluster.seed;
  rs.machine = spec.cluster.machine;
  rs.custom_tag = canonical_cluster_tag(spec);
  rs.custom = [spec](const runner::RunSpec&, const sched::MachineConfig& cfg,
                     const runner::RunContext& ctx) {
    // `cfg` is spec.cluster.machine with the sweep seed applied; thread it
    // back so a seed sweep re-seeds the whole fleet. The engine's pool and
    // lanes hint ride along so the fleet can advance in parallel on grid
    // lanes the sweep isn't using (never affects results).
    ClusterConfig cc = spec.cluster;
    cc.machine = cfg;
    cc.seed = cfg.seed;
    cc.shared_pool = ctx.pool;
    cc.shared_lanes = ctx.lanes_hint;
    Cluster cluster(std::move(cc),
                    make_policy(spec.policy, spec.injection_threshold));
    const ClusterResult r = cluster.run(spec.duration);

    runner::RunRecord rec;
    rec.result.label = r.policy;
    rec.result.throughput = r.throughput_rps;
    rec.result.avg_sensor_temp_c = r.fleet_mean_sensor_c;
    rec.result.qos = r.qos;
    rec.result.counters = r.counters;
    rec.result.sim_seconds =
        r.duration_s * static_cast<double>(r.nodes.size());
    rec.extra = {
        {"fleet_peak_sensor_c", r.fleet_peak_sensor_c},
        {"fleet_peak_exact_c", r.fleet_peak_exact_c},
        {"fleet_mean_sensor_c", r.fleet_mean_sensor_c},
        {"fleet_peak_inlet_c", r.fleet_peak_inlet_c},
        {"offered", static_cast<double>(r.offered)},
        {"completed", static_cast<double>(r.completed)},
        {"drains", static_cast<double>(r.drains)},
        {"energy_j", r.total_energy_j},
        {"nodes", static_cast<double>(r.nodes.size())},
        {"racks", static_cast<double>(r.num_racks)},
        // Control-stability metrics (worst governed node; zeros/-1 when the
        // fleet is open-loop).
        {"osc_amp_temp_c", r.stability.osc_amplitude_temp_c},
        {"osc_amp_duty", r.stability.osc_amplitude_duty},
        {"duty_reversals", static_cast<double>(r.stability.duty_reversals)},
        {"overshoot_c", r.stability.overshoot_c},
        {"settling_s", r.stability.settling_time_s},
    };
    return rec;
  };
  return rs;
}

}  // namespace dimetrodon::cluster
