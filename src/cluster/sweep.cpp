#include "cluster/sweep.hpp"

#include <cstdio>

namespace dimetrodon::cluster {

namespace {

void put(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%a ", key, v);
  out += buf;
}

void put(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%llx ", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

void put(std::string& out, const char* key, std::int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s=%lld ", key, static_cast<long long>(v));
  out += buf;
}

}  // namespace

std::string canonical_cluster_tag(const ClusterRunSpec& spec) {
  std::string out;
  out.reserve(512);
  // v2: per-node governor specs joined the tag (closed-loop fleets).
  out += "cluster-v2{";
  put(out, "policy", static_cast<std::uint64_t>(spec.policy));
  put(out, "inj_thresh", spec.injection_threshold);
  put(out, "duration", spec.duration);
  put(out, "load_rps", spec.cluster.offered_load_rps);
  put(out, "telemetry", spec.cluster.telemetry_period);
  const auto& w = spec.cluster.web;
  out += "web{";
  put(out, "conns", static_cast<std::uint64_t>(w.connections));
  put(out, "think", w.think_mean_s);
  put(out, "demand", w.demand_mean_s);
  put(out, "kdemand", w.kernel_demand_s);
  put(out, "workers", static_cast<std::uint64_t>(w.workers));
  put(out, "activity", w.worker_activity);
  put(out, "good", w.good_threshold_s);
  put(out, "tol", w.tolerable_threshold_s);
  out += "} nodes[";
  for (const NodeSpec& n : spec.cluster.nodes) {
    put(out, "fan", n.fan_speed_fraction);
    put(out, "p", n.injection_probability);
    put(out, "L", n.injection_quantum);
    if (n.governor.enabled()) {
      control::append_canonical_governor(out, n.governor);
    }
  }
  out += "]} ";
  return out;
}

runner::RunSpec to_run_spec(const ClusterRunSpec& spec) {
  runner::RunSpec rs;
  rs.kind = runner::RunSpec::Kind::kCustom;
  rs.seed = spec.cluster.seed;
  rs.machine = spec.cluster.machine;
  rs.custom_tag = canonical_cluster_tag(spec);
  rs.custom = [spec](const runner::RunSpec&,
                     const sched::MachineConfig& cfg) {
    // `cfg` is spec.cluster.machine with the sweep seed applied; thread it
    // back so a seed sweep re-seeds the whole fleet.
    ClusterConfig cc = spec.cluster;
    cc.machine = cfg;
    cc.seed = cfg.seed;
    Cluster cluster(std::move(cc),
                    make_policy(spec.policy, spec.injection_threshold));
    const ClusterResult r = cluster.run(spec.duration);

    runner::RunRecord rec;
    rec.result.label = r.policy;
    rec.result.throughput = r.throughput_rps;
    rec.result.avg_sensor_temp_c = r.fleet_mean_sensor_c;
    rec.result.qos = r.qos;
    rec.result.counters = r.counters;
    rec.result.sim_seconds =
        r.duration_s * static_cast<double>(r.nodes.size());
    rec.extra = {
        {"fleet_peak_sensor_c", r.fleet_peak_sensor_c},
        {"fleet_peak_exact_c", r.fleet_peak_exact_c},
        {"fleet_mean_sensor_c", r.fleet_mean_sensor_c},
        {"offered", static_cast<double>(r.offered)},
        {"completed", static_cast<double>(r.completed)},
        {"drains", static_cast<double>(r.drains)},
        {"energy_j", r.total_energy_j},
        // Control-stability metrics (worst governed node; zeros/-1 when the
        // fleet is open-loop).
        {"osc_amp_temp_c", r.stability.osc_amplitude_temp_c},
        {"osc_amp_duty", r.stability.osc_amplitude_duty},
        {"duty_reversals", static_cast<double>(r.stability.duty_reversals)},
        {"overshoot_c", r.stability.overshoot_c},
        {"settling_s", r.stability.settling_time_s},
    };
    return rec;
  };
  return rs;
}

}  // namespace dimetrodon::cluster
