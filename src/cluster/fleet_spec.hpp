#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/sweep.hpp"

namespace dimetrodon::cluster {

/// Per-node override applied on top of FleetSpec's gradients. Unset fields
/// keep whatever the expansion produced.
struct NodeOverride {
  std::optional<double> fan_speed_fraction;
  std::optional<double> injection_probability;
  std::optional<sim::SimTime> injection_quantum;
  std::optional<control::GovernorSpec> governor;
};

/// Declarative fleet builder — the one construction path for clusters.
/// Instead of hand-rolling a std::vector<NodeSpec>, describe the fleet's
/// shape (racks x nodes-per-rack) and its gradients, and let `config()`
/// expand it deterministically:
///
///   auto spec = FleetSpec::racks(25)
///                   .nodes_per_rack(4)
///                   .with_machine(base)
///                   .with_cooling(1.0, 0.55)         // bottom -> top of rack
///                   .with_injection_gradient(0.6)    // p rises with position
///                   .with_crac(RackParams{})         // rack/CRAC coupling
///                   .with_load(1800.0)
///                   .with_traffic(TrafficShape::diurnal(sim::from_sec(8), .5))
///                   .with_policy(PolicyKind::kCoolestNode)
///                   .for_duration(sim::from_sec(20));
///   runner::RunSpec rs = spec.run_spec();            // sweep-engine ready
///
/// Expansion semantics (all deterministic, position = index within a rack,
/// M = nodes_per_rack):
///  * cooling: fan(position) interpolates linearly from `bottom` (position
///    0) to `top` (position M-1); every rack repeats the same profile. With
///    M == 1 the node takes `bottom`.
///  * injection gradient: p(position) = top_p * position / (M - 1) — zero at
///    the best-cooled bottom slot, `top_p` at the worst-cooled top slot
///    (operators compensate bad rack positions with preventive injection).
///    With M == 1, p = 0.
///  * `with_injection` sets a uniform p instead; the two are exclusive
///    (last call wins).
///  * overrides: `group()` patches whole rack ranges, then
///    `override_position()` patches one rack position fleet-wide; within
///    each kind, later calls win. Position overrides are the more specific
///    scope and therefore apply last.
class FleetSpec {
 public:
  static FleetSpec racks(std::size_t count);

  FleetSpec& nodes_per_rack(std::size_t m);
  /// Base machine config for every node. Also adopts `machine.seed` as the
  /// fleet master seed unless with_seed() overrides it.
  FleetSpec& with_machine(const sched::MachineConfig& machine);
  FleetSpec& with_web(const workload::WebWorkload::Config& web);
  /// Linear cooling gradient across rack positions (see expansion rules).
  /// `uniform` cooling is with_cooling(f, f).
  FleetSpec& with_cooling(double bottom_fan, double top_fan);
  /// Uniform injection probability on every node.
  FleetSpec& with_injection(double p,
                            sim::SimTime quantum = sim::from_ms(10));
  /// Position-proportional injection: p(position) = top_p * pos / (M - 1).
  FleetSpec& with_injection_gradient(double top_p,
                                     sim::SimTime quantum = sim::from_ms(10));
  /// Closed-loop governor on every node (combine with overrides to mix
  /// governed and open-loop nodes).
  FleetSpec& with_governor(const control::GovernorSpec& governor);
  /// Enable the rack/CRAC thermal layer. `rack.nodes_per_rack` is taken
  /// from this spec's shape, not from the argument.
  FleetSpec& with_crac(const RackParams& rack);
  FleetSpec& with_load(double rps);
  FleetSpec& with_traffic(const TrafficShape& shape);
  FleetSpec& with_telemetry(sim::SimTime period);
  FleetSpec& with_seed(std::uint64_t seed);
  /// Fleet-advancement lanes (ClusterConfig::fleet_threads): 0 = auto,
  /// 1 = serial, N = N lanes. Non-semantic — results are bit-identical at
  /// every setting.
  FleetSpec& with_fleet_threads(std::size_t threads);
  FleetSpec& with_trace_sink(obs::SinkFactory factory);
  FleetSpec& with_policy(PolicyKind kind, double injection_threshold = 0.25);
  FleetSpec& for_duration(sim::SimTime duration);
  /// Patch every node in racks [first_rack, first_rack + count).
  FleetSpec& group(std::size_t first_rack, std::size_t count,
                   const NodeOverride& o);
  /// Patch rack position `pos` in every rack.
  FleetSpec& override_position(std::size_t pos, const NodeOverride& o);

  std::size_t num_nodes() const { return racks_ * per_rack_; }

  /// Expand into a full ClusterConfig (validates the shape and gradients).
  ClusterConfig config() const;
  /// config() plus the routing policy and duration — sweep-bridge ready.
  ClusterRunSpec build() const;
  /// to_run_spec(build()): hand straight to the sweep engine.
  runner::RunSpec run_spec() const;
  /// Instantiate the cluster with its policy, for direct driving in tests
  /// and examples.
  std::unique_ptr<Cluster> make_cluster() const;

 private:
  FleetSpec() = default;

  std::size_t racks_ = 1;
  std::size_t per_rack_ = 1;
  sched::MachineConfig machine_{};
  workload::WebWorkload::Config web_ = ClusterConfig::open_loop_web();
  double fan_bottom_ = 1.0;
  double fan_top_ = 1.0;
  double injection_p_ = 0.0;
  bool injection_gradient_ = false;
  sim::SimTime injection_quantum_ = sim::from_ms(10);
  std::optional<control::GovernorSpec> governor_;
  std::optional<RackParams> crac_;
  double load_rps_ = 800.0;
  TrafficShape traffic_{};
  sim::SimTime telemetry_ = sim::from_ms(50);
  std::optional<std::uint64_t> seed_;
  std::size_t fleet_threads_ = 0;
  obs::SinkFactory sink_;
  PolicyKind policy_ = PolicyKind::kRoundRobin;
  double injection_threshold_ = 0.25;
  sim::SimTime duration_ = sim::from_sec(40);

  struct GroupOverride {
    std::size_t first_rack = 0;
    std::size_t count = 0;
    NodeOverride o;
  };
  struct PositionOverride {
    std::size_t pos = 0;
    NodeOverride o;
  };
  std::vector<GroupOverride> group_overrides_;
  std::vector<PositionOverride> position_overrides_;
};

}  // namespace dimetrodon::cluster
