#include "cluster/request_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dimetrodon::cluster {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

double TrafficShape::modulation(sim::SimTime t) const {
  double m = 1.0;
  if (diurnal_depth > 0.0 && diurnal_period > 0) {
    const double frac =
        sim::to_sec(t + diurnal_phase) / sim::to_sec(diurnal_period);
    m *= 1.0 + diurnal_depth * std::sin(kTwoPi * frac);
  }
  if (flash_multiplier != 1.0 && t >= flash_start &&
      t < flash_start + flash_duration) {
    m *= flash_multiplier;
  }
  return m;
}

RequestSource::RequestSource(std::uint64_t master_seed,
                             std::uint64_t stream_id, double rate_rps,
                             TrafficShape shape)
    : rng_(sim::Rng::stream(master_seed, stream_id)),
      rate_rps_(rate_rps),
      shape_(shape) {
  if (rate_rps <= 0.0) {
    throw std::invalid_argument("RequestSource rate must be > 0 rps");
  }
  if (shape_.diurnal_depth < 0.0 || shape_.diurnal_depth >= 1.0) {
    throw std::invalid_argument("diurnal depth must lie in [0, 1)");
  }
  if (shape_.diurnal_depth > 0.0 && shape_.diurnal_period <= 0) {
    throw std::invalid_argument("diurnal shape needs a positive period");
  }
  if (shape_.flash_multiplier < 1.0) {
    throw std::invalid_argument("flash multiplier must be >= 1");
  }
  if (shape_.flash_multiplier > 1.0 && shape_.flash_duration <= 0) {
    throw std::invalid_argument("flash crowd needs a positive duration");
  }
  candidate_gap_s_ = 1.0 / (rate_rps_ * shape_.peak_factor());
}

sim::SimTime RequestSource::next() {
  if (shape_.constant()) {
    // Homogeneous Poisson: the classic path, bit-identical to the pre-shape
    // source (one exponential draw per arrival).
    const sim::SimTime gap = sim::from_sec(rng_.exponential(candidate_gap_s_));
    t_ += std::max<sim::SimTime>(1, gap);
    ++issued_;
    return t_;
  }
  // Thinning: propose candidates at the peak rate, accept each with
  // probability rate(t)/peak. modulation() is bounded away from zero (depth
  // < 1, multiplier >= 1), so acceptance probability has a positive floor
  // and the loop terminates.
  const double peak = shape_.peak_factor();
  while (true) {
    const sim::SimTime gap = sim::from_sec(rng_.exponential(candidate_gap_s_));
    t_ += std::max<sim::SimTime>(1, gap);
    if (rng_.uniform() * peak < shape_.modulation(t_)) {
      ++issued_;
      return t_;
    }
  }
}

}  // namespace dimetrodon::cluster
