#include "cluster/request_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace dimetrodon::cluster {

RequestSource::RequestSource(std::uint64_t master_seed,
                             std::uint64_t stream_id, double rate_rps)
    : rng_(sim::Rng::stream(master_seed, stream_id)),
      rate_rps_(rate_rps),
      mean_gap_s_(rate_rps > 0.0 ? 1.0 / rate_rps : 0.0) {
  if (rate_rps <= 0.0) {
    throw std::invalid_argument("RequestSource rate must be > 0 rps");
  }
}

sim::SimTime RequestSource::next() {
  const sim::SimTime gap = sim::from_sec(rng_.exponential(mean_gap_s_));
  t_ += std::max<sim::SimTime>(1, gap);
  ++issued_;
  return t_;
}

}  // namespace dimetrodon::cluster
