#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <functional>
#include <stdexcept>
#include <thread>

#include "runner/env.hpp"
#include "sim/rng.hpp"

namespace dimetrodon::cluster {

namespace {

/// Stream ids under the cluster master seed: 0 is the request source, node i
/// owns stream i + 1. Pure derivation (derive_stream_seed) keeps every
/// stream independent of construction order.
constexpr std::uint64_t kSourceStream = 0;

/// Auto mode spins up a pool only for fleets big enough to amortize it; a
/// handful of machines advances faster on one thread than across a barrier.
constexpr std::size_t kAutoParallelMinNodes = 32;

double hottest_die_c(const sched::Machine& m) {
  double hottest = 0.0;
  for (std::size_t phys = 0; phys < m.num_physical_cores(); ++phys) {
    const double t =
        m.thermal_network().temperature(m.thermal_nodes().die[phys]);
    hottest = std::max(hottest, t);
  }
  return hottest;
}

double hottest_sensor_c(const sched::Machine& m) {
  double hottest = 0.0;
  for (std::size_t phys = 0; phys < m.num_physical_cores(); ++phys) {
    hottest = std::max(hottest, m.sensor(phys).read());
  }
  return hottest;
}

bool any_core_throttling(const sched::Machine& m) {
  for (std::size_t phys = 0; phys < m.num_physical_cores(); ++phys) {
    if (m.thermal_throttle_active(phys)) return true;
  }
  return false;
}

}  // namespace

Cluster::Cluster(ClusterConfig config, std::unique_ptr<LoadBalancer> balancer)
    : config_(std::move(config)),
      balancer_(std::move(balancer)),
      source_(config_.seed, kSourceStream, config_.offered_load_rps,
              config_.traffic) {
  if (config_.nodes.empty()) {
    throw std::invalid_argument(
        "cluster needs at least one node (build the fleet with FleetSpec)");
  }
  if (balancer_ == nullptr) {
    throw std::invalid_argument("cluster needs a load balancer");
  }
  if (config_.telemetry_period <= 0) {
    throw std::invalid_argument("telemetry period must be positive");
  }
  if (config_.arrival_trace) {
    const auto& recs = config_.arrival_trace->records;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      if (recs[i].at < 0 || (i > 0 && recs[i].at <= recs[i - 1].at)) {
        throw std::invalid_argument(
            "arrival trace timestamps must be strictly increasing");
      }
      if (recs[i].size_class > ArrivalRecord::kMaxSizeClass) {
        throw std::invalid_argument("arrival trace size class out of range");
      }
    }
  }
  if (config_.trace_sink_factory) {
    tracer_.attach(config_.trace_sink_factory());
  }

  const std::size_t n = config_.nodes.size();
  const RackParams& rack = config_.rack;
  const std::size_t per_rack = rack.enabled() ? rack.nodes_per_rack : n;
  const std::size_t num_racks = rack.enabled() ? (n + per_rack - 1) / per_rack
                                               : 0;

  sensor_temp_c_.assign(n, 0.0);
  outstanding_.assign(n, 0);
  injection_probability_.assign(n, 0.0);
  draining_.assign(n, 0);
  admin_.assign(n, AdminState::kActive);
  rack_of_.assign(n, 0);
  routable_.reserve(n);
  sweep_scratch_.assign(n, SweepScratch{});

  // Rack air network: one fixed CRAC supply node, one air node per rack tied
  // to it, optional chain coupling between adjacent racks.
  if (rack.enabled()) {
    crac_node_ = rack_air_.add_fixed_node("crac", rack.crac_supply_c);
    rack_air_node_.reserve(num_racks);
    for (std::size_t r = 0; r < num_racks; ++r) {
      const thermal::NodeId air = rack_air_.add_node(
          "rack" + std::to_string(r), rack.air_capacitance_j_per_c,
          rack.crac_supply_c);
      rack_air_.connect_r(air, crac_node_, rack.to_crac_resistance_c_per_w);
      if (r > 0 && rack.adjacent_resistance_c_per_w > 0.0) {
        rack_air_.connect_r(air, rack_air_node_[r - 1],
                            rack.adjacent_resistance_c_per_w);
      }
      rack_air_node_.push_back(air);
    }
    rack_power_w_.assign(num_racks, 0.0);
    fleet_peak_inlet_c_ = rack.crac_supply_c;
  } else {
    fleet_peak_inlet_c_ = config_.machine.floorplan.ambient_c;
  }

  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeSpec& spec = config_.nodes[i];
    Node node;

    sched::MachineConfig mc = config_.machine;
    mc.floorplan.fan_speed_fraction = spec.fan_speed_fraction;
    if (rack.enabled()) {
      // Every inlet starts at the CRAC supply; the rack layer takes over
      // from the first telemetry sweep.
      mc.floorplan.ambient_c = rack.crac_supply_c;
      rack_of_[i] = i / per_rack;
    }
    mc.seed = sim::derive_stream_seed(config_.seed, i + 1);
    node.machine = std::make_unique<sched::Machine>(mc);
    node.last_energy_j = node.machine->energy().total_joules();

    node.web = std::make_unique<workload::WebWorkload>(config_.web);
    node.web->deploy(*node.machine);
    node.web->mark();
    node.web->set_completion_callback(
        [this, i](std::uint32_t id, double latency_s) {
          on_complete(i, id, latency_s);
        });

    attach_control(node, spec);
    injection_probability_[i] = spec.injection_probability;
    nodes_.push_back(std::move(node));
  }

  resolve_parallelism();

  // The construction-time sweep reads the fresh machines without advancing
  // them (they are already at t = 0), so it contributes fleet_sample #0 but
  // no machine_advances.
  for (std::size_t i = 0; i < n; ++i) compute_node_telemetry(i);
  merge_sweep(0);
  next_tick_ = config_.telemetry_period;
  next_arrival_ = pop_next_arrival();
}

Cluster::~Cluster() = default;

void Cluster::attach_control(Node& node, const NodeSpec& spec) {
  if (spec.governor.enabled()) {
    // Governed node: the controller sits behind an arbiter; the governor
    // claims the feedback channel and any configured open-loop probability
    // becomes the preventive floor.
    node.controller =
        std::make_shared<core::DimetrodonController>(*node.machine);
    node.arbiter =
        std::make_unique<control::InjectionArbiter>(*node.controller);
    if (spec.injection_probability > 0.0) {
      node.preventive_port = &node.arbiter->claim(
          control::InjectionArbiter::Channel::kPreventive, "preventive");
      node.preventive_port->request(spec.injection_probability,
                                    spec.injection_quantum);
    }
    node.driver = std::make_unique<control::GovernorDriver>(
        *node.machine, *node.arbiter, spec.governor);
  } else if (spec.injection_probability > 0.0) {
    node.controller =
        std::make_shared<core::DimetrodonController>(*node.machine);
    node.controller->sys_set_global(spec.injection_probability,
                                    spec.injection_quantum);
  }
}

sim::SimTime Cluster::pop_next_arrival() {
  if (config_.arrival_trace) {
    const auto& recs = config_.arrival_trace->records;
    return trace_pos_ < recs.size() ? recs[trace_pos_].at : sim::kTimeInfinity;
  }
  return source_.next();
}

double Cluster::rack_inlet_c(std::size_t r) const {
  return rack_air_.temperature(rack_air_node_.at(r));
}

FleetView Cluster::fleet_view() const {
  FleetView v;
  v.num_nodes = nodes_.size();
  v.sensor_temp_c = sensor_temp_c_.data();
  v.outstanding = outstanding_.data();
  v.injection_probability = injection_probability_.data();
  v.draining = draining_.data();
  v.routable = routable_.data();
  v.routable_count = routable_.size();
  return v;
}

void Cluster::resolve_parallelism() {
  const std::size_t n = config_.nodes.size();
  std::size_t requested = config_.fleet_threads;
  if (requested == 0) {
    if (const auto t = runner::env_size_t("DIMETRODON_FLEET_THREADS")) {
      requested = *t;
    }
  }
  if (config_.machine.trace_sink_factory) {
    // The factory may hand every node the same sink object; per-node trace
    // events emitted mid-advance would race it. Correctness beats the knob.
    lanes_ = 1;
    return;
  }
  if (requested == 1 || n < 2) {
    lanes_ = 1;
    return;
  }
  if (requested > 1) {
    if (config_.shared_pool != nullptr &&
        config_.shared_pool->num_threads() > 0) {
      pool_ = config_.shared_pool;
    } else {
      own_pool_ = std::make_unique<runner::ThreadPool>(requested);
      pool_ = own_pool_.get();
    }
    lanes_ = requested;
    return;
  }
  // Auto. Under an engine, follow its arbitration hint: a saturated grid
  // keeps fleets serial inside, an idle one hands them the pool. Standalone,
  // spin up a pool only when the fleet is large enough to amortize it.
  if (config_.shared_pool != nullptr &&
      config_.shared_pool->num_threads() > 0) {
    if (config_.shared_lanes == 1) {
      lanes_ = 1;
      return;
    }
    pool_ = config_.shared_pool;
    lanes_ = config_.shared_lanes != 0 ? config_.shared_lanes
                                       : config_.shared_pool->num_threads();
    return;
  }
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw >= 2 && n >= kAutoParallelMinNodes) {
    own_pool_ = std::make_unique<runner::ThreadPool>(hw);
    pool_ = own_pool_.get();
    lanes_ = hw;
  } else {
    lanes_ = 1;
  }
}

void Cluster::run_chunk(std::size_t begin, std::size_t end, sim::SimTime t) {
  std::uint64_t advances = 0;
  for (std::size_t i = begin; i < end; ++i) {
    Node& node = nodes_[i];
    // Detached nodes are frozen: no backlog (rebuild_routable excludes
    // them before detach), no advance, no telemetry.
    if (admin_[i] == AdminState::kDetached) continue;
    // Replay the backlog: each deferred arrival advances the machine to its
    // arrival time and injects, exactly the interaction sequence the eager
    // path performed at route time — the machine cannot tell the difference.
    for (const PendingArrival& a : node.backlog) {
      node.machine->run_until(a.at);
      ++advances;
      node.web->inject_request(a.rid, a.demand_scale, a.issued_at);
    }
    node.backlog.clear();
    node.machine->run_until(t);
    ++advances;
    compute_node_telemetry(i);
  }
  machine_advances_.fetch_add(advances, std::memory_order_relaxed);
}

void Cluster::advance_fleet(sim::SimTime t) {
  const std::size_t n = nodes_.size();
  if (pool_ == nullptr) {
    run_chunk(0, n, t);
    return;
  }
  // Contiguous chunks, a few per lane so stealing can level uneven nodes
  // (a draining node replays a long queue; an idle one is a no-op).
  const std::size_t chunks = std::min(n, lanes_ * 4);
  std::vector<std::exception_ptr> errors(chunks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    tasks.push_back([this, begin, end, t, c, &errors] {
      // The pool swallows escaping exceptions by contract; capture here so
      // a throwing machine still fails the run, not just a counter.
      try {
        run_chunk(begin, end, t);
      } catch (...) {
        errors[c] = std::current_exception();
      }
    });
  }
  pool_->run_and_wait(std::move(tasks));
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void Cluster::compute_node_telemetry(std::size_t i) {
  const sched::Machine& m = *nodes_[i].machine;
  SweepScratch& s = sweep_scratch_[i];
  s.mean_c = m.mean_sensor_temp();
  s.hot_sensor = hottest_sensor_c(m);
  s.hot_die = hottest_die_c(m);
  s.throttling = any_core_throttling(m);
}

void Cluster::merge_sweep(sim::SimTime t) {
  // Fixed node order throughout: node i's buffered completions land before
  // node i+1's, then the telemetry fold walks the same order — exactly the
  // sequence the serial path produces, so every downstream accumulator
  // (QoS, streaming histogram, OnlineStats, trace) sees identical inputs in
  // identical order at any lane count.
  for (Node& node : nodes_) {
    for (const CompletionRecord& c : node.completions) {
      ++completed_;
      ++qos_.total;
      if (c.latency_s <= config_.web.good_threshold_s) ++qos_.good;
      if (c.latency_s <= config_.web.tolerable_threshold_s) {
        ++qos_.tolerable;
      } else {
        ++qos_.fail;
      }
      qos_.max_latency_s = std::max(qos_.max_latency_s, c.latency_s);
      latency_hist_.add(c.latency_s);
      tracer_.request_complete(c.at, c.id, c.latency_s);
    }
    node.completions.clear();
  }

  double fleet_mean = 0.0;
  double hottest_quantized = 0.0;
  std::size_t swept = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    // Detached nodes left the fleet: their (stale) scratch stays out of the
    // aggregates so telemetry describes the machines actually serving.
    if (admin_[i] == AdminState::kDetached) continue;
    ++swept;
    const SweepScratch& s = sweep_scratch_[i];
    // The balancer sees whole degrees, like the per-core sensors themselves:
    // averaging the quantized cores would leak sub-degree resolution the
    // hardware doesn't offer, and the coarser view doubles as herd
    // protection (1 C ties fall through to the outstanding-count tie-break).
    sensor_temp_c_[i] = std::floor(s.mean_c);
    node.temp_avg.add(s.mean_c);
    node.stats.mean_sensor_c = node.temp_avg.mean();
    hottest_quantized = std::max(hottest_quantized, s.hot_sensor);
    node.stats.peak_sensor_c = std::max(node.stats.peak_sensor_c, s.hot_sensor);
    fleet_peak_sensor_c_ =
        std::max(fleet_peak_sensor_c_, node.stats.peak_sensor_c);
    fleet_peak_exact_c_ = std::max(fleet_peak_exact_c_, s.hot_die);
    fleet_mean += s.mean_c;

    if (s.throttling != (draining_[i] != 0)) {
      draining_[i] = s.throttling ? 1 : 0;
      if (s.throttling) ++node.stats.drains;
      tracer_.node_drain(t, static_cast<std::uint32_t>(i), s.throttling,
                         s.hot_die);
    }
  }
  if (swept > 0) {
    fleet_temp_avg_.add(fleet_mean / static_cast<double>(swept));
  }
  // One batched interaction point for the whole sweep — the fleet emits a
  // single trace event per period, not one per node.
  tracer_.fleet_sample(t, static_cast<std::uint32_t>(swept),
                       hottest_quantized);

  // Removal completes at the first sweep where the node's queue has fully
  // drained: its remaining in-service requests completed above, so the
  // machine can freeze here without losing work.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (admin_[i] == AdminState::kRemoving && outstanding_[i] == 0) {
      if (nodes_[i].driver) nodes_[i].driver->stop();
      admin_[i] = AdminState::kDetached;
      tracer_.node_removed();
    }
  }

  if (config_.rack.enabled()) update_rack_layer(t);
  rebuild_routable();
}

void Cluster::update_rack_layer(sim::SimTime t) {
  const double dt = sim::to_sec(t - last_rack_update_);
  if (dt <= 0.0) return;
  last_rack_update_ = t;

  // Measured per-rack dissipation over the elapsed span (energy delta), of
  // which a recirculation fraction heats the rack's air volume.
  std::fill(rack_power_w_.begin(), rack_power_w_.end(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (admin_[i] == AdminState::kDetached) continue;  // frozen: no new heat
    const double e = nodes_[i].machine->energy().total_joules();
    rack_power_w_[rack_of_[i]] += (e - nodes_[i].last_energy_j) / dt;
    nodes_[i].last_energy_j = e;
  }
  for (std::size_t r = 0; r < rack_air_node_.size(); ++r) {
    rack_air_.set_power(rack_air_node_[r],
                        rack_power_w_[r] * config_.rack.recirculation_fraction);
  }
  rack_air_.step(dt);

  // Write each rack's air temperature into its members' inlet: the machines'
  // ambient nodes are *fixed* (boundary) nodes, so this re-aims the boundary
  // term of the closed-form propagator without invalidating its cached
  // operators.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (admin_[i] == AdminState::kDetached) continue;
    sched::Machine& m = *nodes_[i].machine;
    const double inlet = rack_air_.temperature(rack_air_node_[rack_of_[i]]);
    m.thermal_network().set_temperature(m.thermal_nodes().ambient, inlet);
  }
  for (std::size_t r = 0; r < rack_air_node_.size(); ++r) {
    fleet_peak_inlet_c_ =
        std::max(fleet_peak_inlet_c_, rack_air_.temperature(rack_air_node_[r]));
  }
}

void Cluster::rebuild_routable() {
  routable_.clear();
  for (std::size_t i = 0; i < draining_.size(); ++i) {
    if (admin_[i] == AdminState::kActive && draining_[i] == 0) {
      routable_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (routable_.empty()) {
    // Whole-ACTIVE-fleet PROCHOT: spread load over the throttling active
    // nodes rather than drop it. Admin-drained/removing/detached nodes stay
    // out — an operator ordered them out of service, and a second node
    // tripping PROCHOT mid-drain must not send traffic back to them. With
    // no active nodes at all, routable_ stays empty and route() sheds.
    for (std::size_t i = 0; i < draining_.size(); ++i) {
      if (admin_[i] == AdminState::kActive) {
        routable_.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
}

void Cluster::route(sim::SimTime t) {
  double demand_scale = 1.0;
  std::uint8_t size_class = 0;
  std::uint32_t affinity = 0;
  if (config_.arrival_trace) {
    const ArrivalRecord& rec = config_.arrival_trace->records[trace_pos_++];
    size_class = rec.size_class;
    demand_scale = rec.demand_scale();
    affinity = rec.affinity;
  }
  const std::uint32_t rid = next_request_id_++;
  if (routable_.empty()) {
    // No active node exists (fleet fully drained/removed by churn): the
    // arrival is shed, loudly — counted, traced, and surfaced in metrics.
    tracer_.request_shed(t, rid);
    return;
  }
  // An affinity key bypasses the policy: the front-end pins keyed sessions
  // to a deterministic member of the routable set.
  const std::size_t id =
      affinity != 0 ? routable_[affinity % routable_.size()]
                    : balancer_->pick(fleet_view());
  Node& node = nodes_.at(id);
  // Deferred advancement: the arrival is recorded, not simulated — the node
  // replays its backlog at the next fleet flush, where the advance can run
  // in parallel with every other node's. The balancer sees the routed count
  // immediately (outstanding_ increments here); it sees completions only at
  // sweeps, when the flush drains them.
  node.backlog.push_back({t, rid, demand_scale, -1});
  ++outstanding_[id];
  ++node.stats.routed;
  tracer_.request_routed(t, static_cast<std::uint32_t>(id), rid, size_class,
                         affinity);
}

void Cluster::on_complete(std::size_t node_id, std::uint32_t id,
                          double latency_s) {
  // Fires mid-run_until, possibly on a pool lane — so it may touch ONLY
  // per-node state (its own buffer, its own SoA slots). The fleet-wide
  // effects are applied from the buffer, post-barrier, in merge_sweep.
  Node& node = nodes_.at(node_id);
  if (outstanding_[node_id] > 0) --outstanding_[node_id];
  ++node.stats.completed;
  // The node's machine is mid-run_until here; its local clock is the event
  // time of the completion.
  node.completions.push_back({node.machine->now(), id, latency_s});
}

ClusterResult Cluster::run(sim::SimTime duration) {
  const sim::SimTime end = now_ + duration;
  // Two pending timeline events, whatever the fleet size: the next arrival
  // and the next telemetry sweep.
  while (true) {
    const sim::SimTime t = std::min(next_arrival_, next_tick_);
    if (t > end) break;
    now_ = t;
    if (t == next_tick_) {
      advance_fleet(t);
      merge_sweep(t);
      next_tick_ += config_.telemetry_period;
    }
    if (t == next_arrival_) {
      route(t);
      next_arrival_ = pop_next_arrival();
    }
  }
  now_ = end;
  // Final flush: drains every backlogged arrival, so stats and machine
  // clocks are exact at `end` and repeated run() calls compose.
  advance_fleet(end);
  merge_sweep(end);

  ClusterResult r;
  r.policy = balancer_->name();
  r.duration_s = sim::to_sec(now_);
  r.offered = next_request_id_;  // requests actually routed into the fleet
  r.completed = completed_;
  r.throughput_rps =
      r.duration_s > 0.0 ? static_cast<double>(completed_) / r.duration_s : 0.0;

  r.qos = qos_;
  r.qos.mean_latency_s = latency_hist_.mean();
  if (latency_hist_.count() > 0) {
    r.qos.p50_latency_s = latency_hist_.percentile(50.0);
    r.qos.p95_latency_s = latency_hist_.percentile(95.0);
    r.qos.p99_latency_s = latency_hist_.percentile(99.0);
  }

  r.fleet_peak_sensor_c = fleet_peak_sensor_c_;
  r.fleet_peak_exact_c = fleet_peak_exact_c_;
  r.fleet_mean_sensor_c = fleet_temp_avg_.mean();
  r.fleet_peak_inlet_c = fleet_peak_inlet_c_;
  r.num_racks = num_racks();

  r.nodes.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    r.drains += node.stats.drains;
    NodeStats stats = node.stats;
    if (node.driver) stats.governor_trips = node.driver->stats().trips;
    r.nodes.push_back(stats);
    r.counters += node.machine->counters().totals();
    r.total_energy_j += node.machine->energy().total_joules();
    if (node.driver) r.stability.merge_worst(node.driver->stability_metrics());
  }
  // Cluster-scope counters live only in the cluster's registry; fold in just
  // these fields (its requests_completed would double-count the machines').
  r.counters.requests_routed = tracer_.counters().requests_routed;
  r.counters.node_drains = tracer_.counters().node_drains;
  r.counters.fleet_samples = tracer_.counters().fleet_samples;
  r.counters.requests_shed = tracer_.counters().requests_shed;
  r.counters.requests_rehomed = tracer_.counters().requests_rehomed;
  r.counters.node_joins = tracer_.counters().node_joins;
  r.counters.node_removals = tracer_.counters().node_removals;
  r.counters.scenario_directives = tracer_.counters().scenario_directives;
  // Non-finite latency samples the fleet histogram refused — nonzero means
  // the percentiles above silently exclude data, so it rides every report.
  r.counters.latency_rejects = latency_hist_.rejected();
  return r;
}

std::size_t Cluster::active_nodes() const {
  std::size_t n = 0;
  for (const AdminState s : admin_) {
    if (s != AdminState::kDetached) ++n;
  }
  return n;
}

void Cluster::flush_fleet() {
  advance_fleet(now_);
  merge_sweep(now_);
}

void Cluster::admin_drain(std::size_t i) {
  if (admin_.at(i) != AdminState::kActive) {
    throw std::invalid_argument("admin_drain: node is not active");
  }
  flush_fleet();
  admin_[i] = AdminState::kDrained;
  rebuild_routable();
}

void Cluster::admin_undrain(std::size_t i) {
  if (admin_.at(i) != AdminState::kDrained) {
    throw std::invalid_argument("admin_undrain: node is not drained");
  }
  flush_fleet();
  admin_[i] = AdminState::kActive;
  rebuild_routable();
}

void Cluster::admin_remove(std::size_t i) {
  if (admin_.at(i) != AdminState::kActive &&
      admin_.at(i) != AdminState::kDrained) {
    throw std::invalid_argument("admin_remove: node is not in the fleet");
  }
  flush_fleet();
  admin_[i] = AdminState::kRemoving;
  rebuild_routable();  // exclude the node before re-homing picks targets

  // Cancel the node's queued (not yet in-service) external requests and
  // re-route each with its original issue time, oldest first — latency
  // accrues from the first routing, so churn shows up as tail latency, not
  // as silently reset clocks. In-service requests finish where they are.
  Node& node = nodes_[i];
  const auto cancelled = node.web->cancel_pending_external();
  for (const auto& c : cancelled) {
    if (outstanding_[i] > 0) --outstanding_[i];
    if (routable_.empty()) {
      // Nowhere to re-home (fleet-wide churn overlap): shed instead.
      tracer_.request_shed(now_, c.request_id);
      continue;
    }
    tracer_.request_rehomed();
    const std::size_t target = balancer_->pick(fleet_view());
    nodes_.at(target).backlog.push_back(
        {now_, c.request_id, c.demand_scale, c.issued_at});
    ++outstanding_[target];
  }
  // The detach itself happens at the first sweep with outstanding == 0
  // (merge_sweep), after any in-service requests have completed.
}

std::size_t Cluster::admin_join(const NodeSpec& spec, sim::SimTime warmup) {
  if (warmup < 0 || warmup > now_) {
    throw std::invalid_argument(
        "admin_join: warmup must be in [0, now()] (the joined node cannot "
        "be older than the fleet)");
  }
  flush_fleet();

  const std::size_t id = nodes_.size();
  const RackParams& rack = config_.rack;
  sched::MachineConfig mc = config_.machine;
  mc.floorplan.fan_speed_fraction = spec.fan_speed_fraction;
  std::size_t rack_id = 0;
  if (rack.enabled()) {
    // Joins land in the last rack once it has room-by-id; racks are an id
    // grouping, so the new node shares whatever rack its id falls into.
    rack_id = std::min(id / rack.nodes_per_rack, rack_air_node_.size() - 1);
    mc.floorplan.ambient_c = rack_air_.temperature(rack_air_node_[rack_id]);
  }
  mc.seed = sim::derive_stream_seed(config_.seed, id + 1);

  Node node;
  bool warm = false;
  if (warmup > 0) {
    // Snapshot-warmed join: a template machine with the identical config
    // and workload runs [0, warmup] and its snapshot restores into the
    // fresh node, which then advances [warmup, now()]. Controller and
    // governor attach AFTER the restore (injection hooks and governor
    // timers are not snapshot-capable). Configs that cannot snapshot at
    // all (power meter, machine trace sink, reference stepper, closed-loop
    // web connections) fall back to a cold join.
    try {
      sched::Machine tmpl(mc);
      workload::WebWorkload tmpl_web(config_.web);
      tmpl_web.deploy(tmpl);
      tmpl.run_until(warmup);
      const sched::MachineSnapshot snap = tmpl.snapshot();

      node.machine = std::make_unique<sched::Machine>(mc);
      node.web = std::make_unique<workload::WebWorkload>(config_.web);
      node.web->deploy(*node.machine);
      node.machine->restore(snap);
      warm = true;
    } catch (const std::exception&) {
      node.machine.reset();
      node.web.reset();
    }
  }
  if (!node.machine) {
    node.machine = std::make_unique<sched::Machine>(mc);
    node.web = std::make_unique<workload::WebWorkload>(config_.web);
    node.web->deploy(*node.machine);
  }
  node.web->mark();
  node.web->set_completion_callback(
      [this, id](std::uint32_t rid, double latency_s) {
        on_complete(id, rid, latency_s);
      });
  attach_control(node, spec);
  node.machine->run_until(now_);
  machine_advances_.fetch_add(1, std::memory_order_relaxed);
  node.last_energy_j = node.machine->energy().total_joules();

  nodes_.push_back(std::move(node));
  sensor_temp_c_.push_back(0.0);
  outstanding_.push_back(0);
  injection_probability_.push_back(spec.injection_probability);
  draining_.push_back(0);
  admin_.push_back(AdminState::kActive);
  rack_of_.push_back(static_cast<std::uint32_t>(rack_id));
  sweep_scratch_.push_back(SweepScratch{});

  compute_node_telemetry(id);
  sensor_temp_c_[id] = std::floor(sweep_scratch_[id].mean_c);
  tracer_.node_join(now_, static_cast<std::uint32_t>(id), warm,
                    sim::to_sec(warmup));
  rebuild_routable();
  return id;
}

void Cluster::admin_set_injection(std::size_t i, double probability,
                                  sim::SimTime quantum) {
  Node& node = nodes_.at(i);
  flush_fleet();
  if (node.arbiter) {
    // Governed node: the new probability rides the arbiter's preventive
    // channel, arbitrated against the live governor as usual.
    if (node.preventive_port == nullptr) {
      node.preventive_port = &node.arbiter->claim(
          control::InjectionArbiter::Channel::kPreventive, "preventive");
    }
    if (probability > 0.0) {
      node.preventive_port->request(probability, quantum);
    } else {
      node.preventive_port->withdraw();
    }
  } else {
    if (!node.controller) {
      node.controller =
          std::make_shared<core::DimetrodonController>(*node.machine);
    }
    node.controller->sys_set_global(probability, quantum);
  }
  injection_probability_[i] = probability;
}

void Cluster::admin_retune_governor(std::size_t i,
                                    const control::GovernorSpec& spec) {
  Node& node = nodes_.at(i);
  if (!node.driver) {
    throw std::invalid_argument(
        "admin_retune_governor: node runs no governor");
  }
  flush_fleet();
  node.driver->retune(spec);
}

void Cluster::admin_set_fan(std::size_t i, double fraction) {
  Node& node = nodes_.at(i);
  flush_fleet();
  node.machine->set_fan_speed(fraction);
}

void Cluster::set_crac_supply(double supply_c) {
  flush_fleet();
  if (config_.rack.enabled()) {
    // Fixed-node re-aim: the boundary every rack air node relaxes toward
    // moves without invalidating the rack network's cached operators.
    rack_air_.set_temperature(crac_node_, supply_c);
  } else {
    // No rack layer: the heat wave hits every machine's inlet directly, and
    // the config base follows so later joins construct at the new ambient.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (admin_[i] == AdminState::kDetached) continue;
      sched::Machine& m = *nodes_[i].machine;
      m.thermal_network().set_temperature(m.thermal_nodes().ambient,
                                          supply_c);
    }
    config_.machine.floorplan.ambient_c = supply_c;
  }
  config_.rack.crac_supply_c = supply_c;
}

}  // namespace dimetrodon::cluster
