#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.hpp"

namespace dimetrodon::cluster {

namespace {

/// Stream ids under the cluster master seed: 0 is the request source, node i
/// owns stream i + 1. Pure derivation (derive_stream_seed) keeps every
/// stream independent of construction order.
constexpr std::uint64_t kSourceStream = 0;

double hottest_die_c(sched::Machine& m) {
  double hottest = 0.0;
  for (std::size_t phys = 0; phys < m.num_physical_cores(); ++phys) {
    const double t =
        m.thermal_network().temperature(m.thermal_nodes().die[phys]);
    hottest = std::max(hottest, t);
  }
  return hottest;
}

double hottest_sensor_c(const sched::Machine& m) {
  double hottest = 0.0;
  for (std::size_t phys = 0; phys < m.num_physical_cores(); ++phys) {
    hottest = std::max(hottest, m.sensor(phys).read());
  }
  return hottest;
}

bool any_core_throttling(const sched::Machine& m) {
  for (std::size_t phys = 0; phys < m.num_physical_cores(); ++phys) {
    if (m.thermal_throttle_active(phys)) return true;
  }
  return false;
}

}  // namespace

Cluster::Cluster(ClusterConfig config, std::unique_ptr<LoadBalancer> balancer)
    : config_(std::move(config)),
      balancer_(std::move(balancer)),
      source_(config_.seed, kSourceStream, config_.offered_load_rps) {
  if (config_.nodes.empty()) {
    throw std::invalid_argument("cluster needs at least one node");
  }
  if (balancer_ == nullptr) {
    throw std::invalid_argument("cluster needs a load balancer");
  }
  if (config_.telemetry_period <= 0) {
    throw std::invalid_argument("telemetry period must be positive");
  }
  if (config_.trace_sink_factory) {
    tracer_.attach(config_.trace_sink_factory());
  }

  nodes_.reserve(config_.nodes.size());
  for (std::size_t i = 0; i < config_.nodes.size(); ++i) {
    const NodeSpec& spec = config_.nodes[i];
    Node node;

    sched::MachineConfig mc = config_.machine;
    mc.floorplan.fan_speed_fraction = spec.fan_speed_fraction;
    mc.seed = sim::derive_stream_seed(config_.seed, i + 1);
    node.machine = std::make_unique<sched::Machine>(mc);

    node.web = std::make_unique<workload::WebWorkload>(config_.web);
    node.web->deploy(*node.machine);
    node.web->mark();
    node.web->set_completion_callback(
        [this, i](std::uint32_t id, double latency_s) {
          on_complete(i, id, latency_s);
        });

    if (spec.governor.enabled()) {
      // Governed node: the controller sits behind an arbiter; the governor
      // claims the feedback channel and any configured open-loop probability
      // becomes the preventive floor.
      node.controller =
          std::make_shared<core::DimetrodonController>(*node.machine);
      node.arbiter =
          std::make_unique<control::InjectionArbiter>(*node.controller);
      if (spec.injection_probability > 0.0) {
        node.arbiter
            ->claim(control::InjectionArbiter::Channel::kPreventive,
                    "preventive")
            .request(spec.injection_probability, spec.injection_quantum);
      }
      node.driver = std::make_unique<control::GovernorDriver>(
          *node.machine, *node.arbiter, spec.governor);
    } else if (spec.injection_probability > 0.0) {
      node.controller =
          std::make_shared<core::DimetrodonController>(*node.machine);
      node.controller->sys_set_global(spec.injection_probability,
                                      spec.injection_quantum);
    }

    node.view.id = i;
    node.view.injection_probability = spec.injection_probability;
    nodes_.push_back(std::move(node));
  }

  sample_telemetry(0);
  next_tick_ = config_.telemetry_period;
  next_arrival_ = source_.next();
}

Cluster::~Cluster() = default;

void Cluster::advance_all(sim::SimTime t) {
  // Fixed node order: the machines are independent simulations, so the order
  // cannot change any machine's behavior — but it pins the order of
  // completion callbacks (and thus histogram insertion), keeping the
  // fleet-wide stats bit-reproducible too.
  for (Node& node : nodes_) node.machine->run_until(t);
  now_ = t;
}

void Cluster::sample_telemetry(sim::SimTime t) {
  double fleet_mean = 0.0;
  for (Node& node : nodes_) {
    sched::Machine& m = *node.machine;
    const double mean_c = m.mean_sensor_temp();
    // The balancer sees whole degrees, like the per-core sensors themselves:
    // averaging the four quantized cores would leak 0.25 C resolution the
    // hardware doesn't offer, and the coarser view doubles as herd
    // protection (1 C ties fall through to the outstanding-count
    // tie-break).
    node.view.sensor_temp_c = std::floor(mean_c);
    node.temp_avg.add(mean_c);
    node.stats.mean_sensor_c = node.temp_avg.mean();
    node.stats.peak_sensor_c =
        std::max(node.stats.peak_sensor_c, hottest_sensor_c(m));
    fleet_peak_sensor_c_ =
        std::max(fleet_peak_sensor_c_, node.stats.peak_sensor_c);
    fleet_peak_exact_c_ = std::max(fleet_peak_exact_c_, hottest_die_c(m));
    fleet_mean += mean_c;

    const bool throttling = any_core_throttling(m);
    if (throttling != node.view.draining) {
      node.view.draining = throttling;
      if (throttling) ++node.stats.drains;
      tracer_.node_drain(t, static_cast<std::uint32_t>(node.view.id),
                         throttling, hottest_die_c(m));
    }
  }
  fleet_temp_avg_.add(fleet_mean / static_cast<double>(nodes_.size()));
}

void Cluster::route(sim::SimTime t) {
  std::vector<NodeView> views;
  views.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    if (!node.view.draining) views.push_back(node.view);
  }
  if (views.empty()) {  // whole fleet tripped: route anyway, drop nothing
    for (const Node& node : nodes_) views.push_back(node.view);
  }

  const std::size_t id = balancer_->pick(views);
  Node& node = nodes_.at(id);
  const std::uint32_t rid = next_request_id_++;
  ++node.view.outstanding;
  ++node.stats.routed;
  tracer_.request_routed(t, static_cast<std::uint32_t>(id), rid);
  node.web->inject_request(rid);
}

void Cluster::on_complete(std::size_t node_id, std::uint32_t id,
                          double latency_s) {
  Node& node = nodes_.at(node_id);
  if (node.view.outstanding > 0) --node.view.outstanding;
  ++node.stats.completed;
  ++completed_;

  ++qos_.total;
  if (latency_s <= config_.web.good_threshold_s) ++qos_.good;
  if (latency_s <= config_.web.tolerable_threshold_s) {
    ++qos_.tolerable;
  } else {
    ++qos_.fail;
  }
  qos_.max_latency_s = std::max(qos_.max_latency_s, latency_s);
  latency_hist_.add(latency_s);

  // The node's machine is mid-run_until here; its local clock is the event
  // time of the completion.
  tracer_.request_complete(node.machine->now(), id, latency_s);
}

ClusterResult Cluster::run(sim::SimTime duration) {
  const sim::SimTime end = now_ + duration;
  while (true) {
    const sim::SimTime t = std::min(next_arrival_, next_tick_);
    if (t > end) break;
    advance_all(t);
    if (t == next_tick_) {
      sample_telemetry(t);
      next_tick_ += config_.telemetry_period;
    }
    if (t == next_arrival_) {
      route(t);
      next_arrival_ = source_.next();
    }
  }
  advance_all(end);
  sample_telemetry(end);

  ClusterResult r;
  r.policy = balancer_->name();
  r.duration_s = sim::to_sec(now_);
  r.offered = next_request_id_;  // requests actually routed into the fleet
  r.completed = completed_;
  r.throughput_rps =
      r.duration_s > 0.0 ? static_cast<double>(completed_) / r.duration_s : 0.0;

  r.qos = qos_;
  r.qos.mean_latency_s = latency_hist_.mean();
  if (latency_hist_.count() > 0) {
    r.qos.p50_latency_s = latency_hist_.percentile(50.0);
    r.qos.p95_latency_s = latency_hist_.percentile(95.0);
    r.qos.p99_latency_s = latency_hist_.percentile(99.0);
  }

  r.fleet_peak_sensor_c = fleet_peak_sensor_c_;
  r.fleet_peak_exact_c = fleet_peak_exact_c_;
  r.fleet_mean_sensor_c = fleet_temp_avg_.mean();

  r.nodes.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    r.drains += node.stats.drains;
    NodeStats stats = node.stats;
    if (node.driver) stats.governor_trips = node.driver->stats().trips;
    r.nodes.push_back(stats);
    r.counters += node.machine->counters().totals();
    r.total_energy_j += node.machine->energy().total_joules();
    if (node.driver) r.stability.merge_worst(node.driver->stability_metrics());
  }
  // Cluster-scope counters live only in the cluster's registry; fold in just
  // those two fields (its requests_completed would double-count the
  // machines').
  r.counters.requests_routed = tracer_.counters().requests_routed;
  r.counters.node_drains = tracer_.counters().node_drains;
  return r;
}

}  // namespace dimetrodon::cluster
