#include "control/driver.hpp"

#include <cmath>
#include <stdexcept>

namespace dimetrodon::control {

namespace {

// Validate before claiming: a constructor that throws after claiming would
// leave the kGovernor channel permanently held on its arbiter.
InjectionArbiter::Port& claim_governor_channel(InjectionArbiter& arbiter,
                                               const GovernorSpec& spec) {
  if (!spec.enabled()) {
    throw std::invalid_argument("GovernorDriver needs an enabled GovernorSpec");
  }
  if (spec.sample_period <= 0) {
    throw std::invalid_argument("governor sample period must be positive");
  }
  return arbiter.claim(InjectionArbiter::Channel::kGovernor,
                       governor_label(spec));
}

}  // namespace

GovernorDriver::GovernorDriver(sched::Machine& machine,
                               InjectionArbiter& arbiter, GovernorSpec spec)
    : machine_(machine),
      port_(claim_governor_channel(arbiter, spec)),
      spec_(spec),
      governor_(make_governor(spec)),
      stability_(governor_reference_c(spec), spec.stability_band_c) {
  schedule_sample();
}

void GovernorDriver::retune(const GovernorSpec& spec) {
  if (!spec.enabled()) {
    throw std::invalid_argument("retune needs an enabled GovernorSpec");
  }
  if (spec.sample_period <= 0) {
    throw std::invalid_argument("governor sample period must be positive");
  }
  spec_ = spec;
  governor_ = make_governor(spec);
  stability_ = StabilityTracker(governor_reference_c(spec),
                                spec.stability_band_c);
  // The fresh controller holds no trip latch; realign the edge detector so
  // its first trip is counted as a trip, not swallowed as "still tripped".
  was_tripped_ = false;
}

void GovernorDriver::schedule_sample() {
  machine_.call_at(machine_.now() + spec_.sample_period,
                   [this](sim::SimTime t) { sample(t); });
}

void GovernorDriver::sample(sim::SimTime now) {
  if (!running_) return;

  // Make "now" an interaction point so the quantized sensors reflect the
  // present instant; under the lazy clock this is a closed-form fast-forward,
  // not per-substep integration.
  machine_.sync_thermal_now();

  SensorFrame frame;
  frame.at = now;
  frame.dt_s = has_last_ ? sim::to_sec(now - last_sample_at_) : 0.0;
  const std::size_t phys_cores = machine_.num_physical_cores();
  const std::size_t stride = machine_.config().smt_enabled ? 2 : 1;
  frame.temps_c.reserve(phys_cores);
  double sum = 0.0;
  for (std::size_t p = 0; p < phys_cores; ++p) {
    const double t = machine_.sensor(p * stride).read();
    frame.temps_c.push_back(t);
    sum += t;
    if (p == 0 || t > frame.max_c) {
      frame.max_c = t;
      frame.hottest_core = p;
    }
  }
  frame.mean_c = phys_cores > 0 ? sum / static_cast<double>(phys_cores) : 0.0;

  const double duty = governor_->update(frame);
  const bool tripped = governor_->tripped();
  auto& tracer = machine_.tracer();
  const auto phys = static_cast<std::uint32_t>(frame.hottest_core);

  ++stats_.samples;
  tracer.governor_sample(now, phys, frame.max_c, duty);

  if (tripped != was_tripped_) {
    if (tripped) {
      ++stats_.trips;
    } else {
      ++stats_.releases;
    }
    tracer.governor_trip(now, phys, tripped, frame.max_c);
    was_tripped_ = tripped;
  }

  // Publishing only on change keeps the arbiter write count meaningful; a
  // never-engaged governor channel resolves identically to requesting 0.
  if (duty != last_duty_) {
    const double delta = duty - last_duty_;
    const bool reversal = last_duty_delta_ != 0.0 &&
                          std::signbit(delta) != std::signbit(last_duty_delta_);
    ++stats_.duty_changes;
    if (reversal) ++stats_.duty_reversals;
    tracer.duty_change(
        now, static_cast<std::uint32_t>(InjectionArbiter::Channel::kGovernor),
        duty, reversal);
    last_duty_delta_ = delta;
    last_duty_ = duty;
    port_.request(duty, spec_.quantum);
  }

  stability_.on_sample(now, frame.max_c, duty);
  has_last_ = true;
  last_sample_at_ = now;
  schedule_sample();
}

}  // namespace dimetrodon::control
