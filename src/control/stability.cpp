#include "control/stability.hpp"

#include <algorithm>
#include <cmath>

namespace dimetrodon::control {

void StabilityMetrics::merge_worst(const StabilityMetrics& o) {
  // An empty side contributes nothing (and must not poison settling time
  // with its -1 sentinel).
  if (o.samples == 0) return;
  if (samples == 0) {
    *this = o;
    return;
  }
  // Sample-weighted mean before the counts fold in.
  const double total =
      static_cast<double>(samples) + static_cast<double>(o.samples);
  if (total > 0.0) {
    duty_mean = (duty_mean * static_cast<double>(samples) +
                 o.duty_mean * static_cast<double>(o.samples)) /
                total;
  }
  samples += o.samples;
  duty_reversals += o.duty_reversals;
  osc_amplitude_duty = std::max(osc_amplitude_duty, o.osc_amplitude_duty);
  osc_amplitude_temp_c =
      std::max(osc_amplitude_temp_c, o.osc_amplitude_temp_c);
  overshoot_c = std::max(overshoot_c, o.overshoot_c);
  // Slowest settler wins; an unsettled (-1) node poisons the fleet value.
  if (settling_time_s < 0.0 || o.settling_time_s < 0.0) {
    settling_time_s = std::min(settling_time_s, o.settling_time_s);
  } else {
    settling_time_s = std::max(settling_time_s, o.settling_time_s);
  }
}

void StabilityTracker::on_sample(sim::SimTime at, double temp_c, double duty) {
  samples_.push_back(Sample{at, temp_c, duty});
}

StabilityMetrics StabilityTracker::metrics() const {
  StabilityMetrics m;
  m.samples = samples_.size();
  if (samples_.empty()) return m;

  // Whole-run aggregates: mean duty, overshoot, reversals.
  double duty_sum = 0.0;
  double last_delta = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    duty_sum += samples_[i].duty;
    m.overshoot_c =
        std::max(m.overshoot_c, samples_[i].temp_c - reference_c_);
    if (i > 0) {
      const double delta = samples_[i].duty - samples_[i - 1].duty;
      if (delta != 0.0) {
        if (last_delta != 0.0 && std::signbit(delta) != std::signbit(last_delta)) {
          ++m.duty_reversals;
        }
        last_delta = delta;
      }
    }
  }
  m.overshoot_c = std::max(m.overshoot_c, 0.0);
  m.duty_mean = duty_sum / static_cast<double>(samples_.size());

  // Tail-half peak-to-peak: the oscillation that persists once transients
  // have decayed.
  const std::size_t tail = samples_.size() / 2;
  double duty_min = samples_[tail].duty, duty_max = samples_[tail].duty;
  double temp_min = samples_[tail].temp_c, temp_max = samples_[tail].temp_c;
  for (std::size_t i = tail; i < samples_.size(); ++i) {
    duty_min = std::min(duty_min, samples_[i].duty);
    duty_max = std::max(duty_max, samples_[i].duty);
    temp_min = std::min(temp_min, samples_[i].temp_c);
    temp_max = std::max(temp_max, samples_[i].temp_c);
  }
  m.osc_amplitude_duty = duty_max - duty_min;
  m.osc_amplitude_temp_c = temp_max - temp_min;

  // Settling: last sample outside the band decides; if the series ends
  // inside the band, settling time is the span from the first sample to the
  // sample after that last excursion.
  std::size_t settle_idx = samples_.size();
  for (std::size_t i = samples_.size(); i-- > 0;) {
    if (std::fabs(samples_[i].temp_c - reference_c_) > band_c_) {
      settle_idx = i + 1;
      break;
    }
    settle_idx = i;
  }
  if (settle_idx < samples_.size()) {
    m.settling_time_s =
        sim::to_sec(samples_[settle_idx].at - samples_.front().at);
  }
  return m;
}

}  // namespace dimetrodon::control
