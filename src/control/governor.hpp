#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/canon.hpp"
#include "sim/time.hpp"

namespace dimetrodon::control {

/// One sensor sample as a governor sees it: the *quantized* per-core readings
/// (thermal::CoreTempSensor::read(), whole degrees like the coretemp MSR),
/// never the continuous model state. Governors receive this struct and
/// nothing else — the interface is the enforcement that closed-loop control
/// acts on what real hardware exposes, not on simulator ground truth.
struct SensorFrame {
  sim::SimTime at = 0;
  double dt_s = 0.0;             // span since the previous frame (0 on first)
  std::vector<double> temps_c;   // quantized reading per physical core
  double max_c = 0.0;            // hottest quantized reading
  double mean_c = 0.0;           // mean of the quantized readings
  std::size_t hottest_core = 0;  // index of the hottest reading
};

/// A closed-loop thermal governor: maps the quantized sensor frame sampled at
/// a fixed period to an injection duty cycle (Dimetrodon probability p in
/// [0, 1]). Governors are pure controllers — no machine access, no RNG, no
/// clock reads — so a governed run stays a deterministic function of its
/// configuration.
///
/// Governors deliberately do NOT implement policy::ThermalPolicy: a
/// ThermalPolicy is a static pre-run actuation of hardware knobs, a Governor
/// is a feedback loop over the injection duty cycle. The two compose (a
/// static DVFS/TCC setpoint under a governed injection loop); they must never
/// compete for the same knob — see control::InjectionArbiter.
class Governor {
 public:
  virtual ~Governor() = default;

  /// Stable identifier for tables/CSV (e.g. "hysteresis", "pid").
  virtual std::string name() const = 0;

  /// Consume one sensor frame; return the requested injection duty in [0,1].
  virtual double update(const SensorFrame& frame) = 0;

  /// True while a threshold-style governor holds its over-temperature state
  /// (drives trip/release trace events; stateless governors return false).
  virtual bool tripped() const { return false; }

  /// Forget all controller state (integrators, trip latches).
  virtual void reset() = 0;
};

/// Threshold/hysteresis governor in the style of Linux idle-injection
/// daemons (embeddedTS idleinject: pause the process tree at MAXTEMP,
/// release on cooldown): trip to `hot_probability` when the hottest sensor
/// reaches `trip_c`, hold it until the reading cools to `release_c`.
/// `release_c == trip_c` degenerates to a bare threshold controller — the
/// configuration fig8 uses to demonstrate the oscillation the band exists to
/// suppress.
struct HysteresisConfig {
  double trip_c = 72.0;          // MAXTEMP: engage injection here
  double release_c = 68.0;       // cooldown release point (<= trip_c)
  double hot_probability = 0.6;  // duty while tripped
  double idle_probability = 0.0; // duty while released
};

class HysteresisGovernor final : public Governor {
 public:
  explicit HysteresisGovernor(HysteresisConfig config);

  std::string name() const override;
  double update(const SensorFrame& frame) override;
  bool tripped() const override { return tripped_; }
  void reset() override { tripped_ = false; }

  const HysteresisConfig& config() const { return config_; }

 private:
  HysteresisConfig config_;
  bool tripped_ = false;
};

/// Discrete PID governor: injection duty proportional to the temperature
/// error above the setpoint, with conditional-integration anti-windup (the
/// integral freezes while the output is saturated against the error's
/// direction) and output clamping to [min_probability, max_probability].
/// The derivative acts on the measurement, not the error, so setpoint steps
/// do not kick the output.
struct PidConfig {
  double setpoint_c = 68.0;
  double kp = 0.10;              // duty per degree C of error
  double ki = 0.04;              // duty per (degree C * second)
  double kd = 0.0;               // duty per (degree C / second)
  double min_probability = 0.0;
  double max_probability = 0.95;
};

class PidGovernor final : public Governor {
 public:
  explicit PidGovernor(PidConfig config);

  std::string name() const override;
  double update(const SensorFrame& frame) override;
  void reset() override;

  const PidConfig& config() const { return config_; }
  double integral() const { return integral_; }

 private:
  PidConfig config_;
  double integral_ = 0.0;
  double last_measurement_ = 0.0;
  bool has_last_ = false;
};

/// Hybrid preventive + reactive: runs Dimetrodon's open-loop baseline duty
/// and lets a PI loop trim it by up to ±max_delta in response to the sensor
/// error around the setpoint. At the setpoint the hybrid behaves exactly like
/// the paper's preventive mechanism; when the sensors drift it leans the duty
/// against the drift. Anti-windup freezes the trim integral at the delta
/// clamp.
struct HybridConfig {
  double baseline_probability = 0.25;  // the open-loop preventive duty
  double setpoint_c = 68.0;
  double kp = 0.06;
  double ki = 0.02;
  double max_delta = 0.5;              // trim authority around the baseline
  double max_probability = 0.95;
};

class HybridGovernor final : public Governor {
 public:
  explicit HybridGovernor(HybridConfig config);

  std::string name() const override;
  double update(const SensorFrame& frame) override;
  void reset() override;

  const HybridConfig& config() const { return config_; }
  double trim() const { return trim_; }

 private:
  HybridConfig config_;
  double integral_ = 0.0;
  double trim_ = 0.0;
};

/// Declarative, hashable description of a governed control loop — the data
/// half that sweep cache keys, cluster NodeSpecs and harness actuations all
/// share. kNone means "no governor" (open-loop node).
enum class GovernorKind : std::uint8_t {
  kNone = 0,
  kHysteresis = 1,
  kPid = 2,
  kHybrid = 3,
};

struct GovernorSpec {
  GovernorKind kind = GovernorKind::kNone;
  /// Sensor sampling period of the control loop. A sample is a machine
  /// interaction point under the lazy thermal clock — not a new periodic
  /// substep — so tighter loops cost O(log k) matvecs, not linear work.
  sim::SimTime sample_period = sim::from_ms(50);
  /// Idle quantum the governor requests alongside its duty cycle.
  sim::SimTime quantum = sim::from_ms(10);
  /// Band around the reference used by the settling-time stability metric.
  double stability_band_c = 1.5;
  HysteresisConfig hysteresis{};
  PidConfig pid{};
  HybridConfig hybrid{};

  bool enabled() const { return kind != GovernorKind::kNone; }
};

/// Instantiate the configured governor (nullptr for kNone).
std::unique_ptr<Governor> make_governor(const GovernorSpec& spec);

/// Human-readable label for tables/CSV, e.g. "hysteresis[72/68,p=0.60]".
std::string governor_label(const GovernorSpec& spec);

/// Reference temperature the stability metrics measure against (trip point
/// for hysteresis, setpoint for pid/hybrid, 0 for kNone).
double governor_reference_c(const GovernorSpec& spec);

/// Append the spec's canonical "gov{...}" fragment (hex-float doubles,
/// stable field order) — the fragment cluster tags and runner cache keys
/// embed, rendered through the one shared sim::CanonWriter. Every behavioral
/// field must appear here: two specs with equal canonical text must drive
/// identical control loops.
void append_canonical_governor(sim::CanonWriter& w, const GovernorSpec& spec);

}  // namespace dimetrodon::control
