#include "control/governor.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dimetrodon::control {

namespace {

std::string fmt(const char* format, double a, double b, double c) {
  char buf[96];
  std::snprintf(buf, sizeof buf, format, a, b, c);
  return buf;
}

}  // namespace

// --- hysteresis -------------------------------------------------------------

HysteresisGovernor::HysteresisGovernor(HysteresisConfig config)
    : config_(config) {
  if (config_.release_c > config_.trip_c) {
    throw std::invalid_argument(
        "hysteresis release point must not exceed the trip point");
  }
}

std::string HysteresisGovernor::name() const {
  return config_.release_c == config_.trip_c ? "threshold" : "hysteresis";
}

double HysteresisGovernor::update(const SensorFrame& frame) {
  // Trip at or above the trip point; release strictly below the release
  // point. With release_c == trip_c (a bare threshold) the governor releases
  // the moment the reading drops under the trip point and re-trips one
  // quantization step later — the flapping the band exists to suppress.
  if (!tripped_) {
    if (frame.max_c >= config_.trip_c) tripped_ = true;
  } else if (frame.max_c < config_.release_c) {
    tripped_ = false;
  }
  return tripped_ ? config_.hot_probability : config_.idle_probability;
}

// --- pid --------------------------------------------------------------------

PidGovernor::PidGovernor(PidConfig config) : config_(config) {
  if (config_.min_probability > config_.max_probability) {
    throw std::invalid_argument("pid probability clamp is inverted");
  }
}

std::string PidGovernor::name() const { return "pid"; }

double PidGovernor::update(const SensorFrame& frame) {
  // Positive error = over the setpoint = inject more.
  const double error = frame.max_c - config_.setpoint_c;
  const double dt = frame.dt_s;

  double derivative = 0.0;
  if (has_last_ && dt > 0.0) {
    derivative = (frame.max_c - last_measurement_) / dt;
  }
  last_measurement_ = frame.max_c;
  has_last_ = true;

  // Conditional integration (anti-windup): only integrate when the
  // unclamped output is inside the limits, or the error pushes back toward
  // them. Mirrors core::PowerCapController's PI loop.
  const double candidate = integral_ + error * dt;
  const double unclamped =
      config_.kp * error + config_.ki * candidate + config_.kd * derivative;
  if ((unclamped < config_.max_probability || error < 0.0) &&
      (unclamped > config_.min_probability || error > 0.0)) {
    integral_ = candidate;
  }

  const double u =
      config_.kp * error + config_.ki * integral_ + config_.kd * derivative;
  return std::clamp(u, config_.min_probability, config_.max_probability);
}

void PidGovernor::reset() {
  integral_ = 0.0;
  last_measurement_ = 0.0;
  has_last_ = false;
}

// --- hybrid -----------------------------------------------------------------

HybridGovernor::HybridGovernor(HybridConfig config) : config_(config) {
  if (config_.max_delta < 0.0) {
    throw std::invalid_argument("hybrid trim authority must be >= 0");
  }
}

std::string HybridGovernor::name() const { return "hybrid"; }

double HybridGovernor::update(const SensorFrame& frame) {
  const double error = frame.max_c - config_.setpoint_c;
  const double dt = frame.dt_s;

  const double candidate = integral_ + error * dt;
  const double unclamped = config_.kp * error + config_.ki * candidate;
  if ((unclamped < config_.max_delta || error < 0.0) &&
      (unclamped > -config_.max_delta || error > 0.0)) {
    integral_ = candidate;
  }
  trim_ = std::clamp(config_.kp * error + config_.ki * integral_,
                     -config_.max_delta, config_.max_delta);
  return std::clamp(config_.baseline_probability + trim_, 0.0,
                    config_.max_probability);
}

void HybridGovernor::reset() {
  integral_ = 0.0;
  trim_ = 0.0;
}

// --- spec -------------------------------------------------------------------

std::unique_ptr<Governor> make_governor(const GovernorSpec& spec) {
  switch (spec.kind) {
    case GovernorKind::kNone:
      return nullptr;
    case GovernorKind::kHysteresis:
      return std::make_unique<HysteresisGovernor>(spec.hysteresis);
    case GovernorKind::kPid:
      return std::make_unique<PidGovernor>(spec.pid);
    case GovernorKind::kHybrid:
      return std::make_unique<HybridGovernor>(spec.hybrid);
  }
  throw std::logic_error("unknown GovernorKind");
}

std::string governor_label(const GovernorSpec& spec) {
  switch (spec.kind) {
    case GovernorKind::kNone:
      return "open-loop";
    case GovernorKind::kHysteresis: {
      const auto& h = spec.hysteresis;
      if (h.release_c == h.trip_c) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "threshold[%.0f,p=%.2f]", h.trip_c,
                      h.hot_probability);
        return buf;
      }
      return fmt("hysteresis[%.0f/%.0f,p=%.2f]", h.trip_c, h.release_c,
                 h.hot_probability);
    }
    case GovernorKind::kPid:
      return fmt("pid[set=%.0f,kp=%.2f,ki=%.2f]", spec.pid.setpoint_c,
                 spec.pid.kp, spec.pid.ki);
    case GovernorKind::kHybrid:
      return fmt("hybrid[p=%.2f,set=%.0f,kp=%.2f]",
                 spec.hybrid.baseline_probability, spec.hybrid.setpoint_c,
                 spec.hybrid.kp);
  }
  return "governor?";
}

double governor_reference_c(const GovernorSpec& spec) {
  switch (spec.kind) {
    case GovernorKind::kNone:
      return 0.0;
    case GovernorKind::kHysteresis:
      return spec.hysteresis.trip_c;
    case GovernorKind::kPid:
      return spec.pid.setpoint_c;
    case GovernorKind::kHybrid:
      return spec.hybrid.setpoint_c;
  }
  return 0.0;
}

void append_canonical_governor(sim::CanonWriter& w, const GovernorSpec& spec) {
  w.open("gov");
  w.field("kind", static_cast<std::uint64_t>(spec.kind));
  w.field("dt", static_cast<std::uint64_t>(spec.sample_period));
  w.field("L", static_cast<std::uint64_t>(spec.quantum));
  w.field("band", spec.stability_band_c);
  w.field("h.trip", spec.hysteresis.trip_c);
  w.field("h.rel", spec.hysteresis.release_c);
  w.field("h.hot", spec.hysteresis.hot_probability);
  w.field("h.idle", spec.hysteresis.idle_probability);
  w.field("pid.set", spec.pid.setpoint_c);
  w.field("pid.kp", spec.pid.kp);
  w.field("pid.ki", spec.pid.ki);
  w.field("pid.kd", spec.pid.kd);
  w.field("pid.min", spec.pid.min_probability);
  w.field("pid.max", spec.pid.max_probability);
  w.field("hy.base", spec.hybrid.baseline_probability);
  w.field("hy.set", spec.hybrid.setpoint_c);
  w.field("hy.kp", spec.hybrid.kp);
  w.field("hy.ki", spec.hybrid.ki);
  w.field("hy.delta", spec.hybrid.max_delta);
  w.field("hy.max", spec.hybrid.max_probability);
  w.close();
}

}  // namespace dimetrodon::control
