#include "control/arbiter.hpp"

#include <stdexcept>
#include <utility>

namespace dimetrodon::control {

void InjectionArbiter::Port::request(double probability, sim::SimTime quantum) {
  auto& s = arbiter_->slot(channel_);
  s.engaged = true;
  s.probability = probability;
  s.quantum = quantum;
  arbiter_->resolve();
}

void InjectionArbiter::Port::withdraw() {
  auto& s = arbiter_->slot(channel_);
  s.engaged = false;
  s.probability = 0.0;
  arbiter_->resolve();
}

double InjectionArbiter::Port::probability() const {
  return arbiter_->slot(channel_).probability;
}

bool InjectionArbiter::Port::engaged() const {
  return arbiter_->slot(channel_).engaged;
}

InjectionArbiter::InjectionArbiter(core::DimetrodonController& controller)
    : controller_(controller) {
  resolved_quantum_ = controller_.table().global().quantum;
  for (std::size_t i = 0; i < kNumChannels; ++i) {
    slots_[i].port.arbiter_ = this;
    slots_[i].port.channel_ = static_cast<Channel>(i);
    slots_[i].quantum = resolved_quantum_;
  }
}

InjectionArbiter::Port& InjectionArbiter::claim(Channel channel,
                                                std::string owner) {
  auto& s = slot(channel);
  if (s.claimed) {
    throw std::logic_error("InjectionArbiter: channel already claimed by '" +
                           s.owner + "' (second claimant: '" + owner + "')");
  }
  s.claimed = true;
  s.owner = std::move(owner);
  return s.port;
}

bool InjectionArbiter::claimed(Channel channel) const {
  return slot(channel).claimed;
}

const std::string& InjectionArbiter::owner(Channel channel) const {
  return slot(channel).owner;
}

void InjectionArbiter::resolve() {
  // Max probability wins; ties go to the lowest channel index. With no
  // engaged channel the duty resolves to zero (injection off).
  double best_p = 0.0;
  sim::SimTime best_quantum = resolved_quantum_;
  Channel best = Channel::kPreventive;
  bool any = false;
  for (std::size_t i = 0; i < kNumChannels; ++i) {
    const Slot& s = slots_[i];
    if (!s.engaged) continue;
    if (!any || s.probability > best_p) {
      best_p = s.probability;
      best_quantum = s.quantum;
      best = static_cast<Channel>(i);
      any = true;
    }
  }
  winner_ = best;
  if (best_p != resolved_p_ || best_quantum != resolved_quantum_) {
    resolved_p_ = best_p;
    resolved_quantum_ = best_quantum;
    controller_.sys_set_global(resolved_p_, resolved_quantum_);
    ++writes_;
  }
}

}  // namespace dimetrodon::control
