#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dimetrodon::control {

/// Control-stability summary of one governed run, derived from the
/// (time, hottest quantized temp, duty) series the GovernorDriver records at
/// every sample. Definitions (DESIGN.md §10):
///   - duty_reversals: direction changes of the duty series (a flapping
///     bang-bang controller reverses at nearly every sample).
///   - osc_amplitude_*: peak-to-peak amplitude over the tail half of the run,
///     i.e. the residual oscillation after the loop has had time to settle —
///     a converged controller shows ~0, a limit-cycling one shows the cycle.
///   - overshoot_c: hottest excursion above the reference (trip point or
///     setpoint) anywhere in the run.
///   - settling_time_s: time from the first sample until the temperature
///     enters the ±band around the reference and never leaves it again;
///     -1 when it never settles (or no samples landed in the band).
struct StabilityMetrics {
  std::uint64_t samples = 0;
  std::uint64_t duty_reversals = 0;
  double duty_mean = 0.0;
  double osc_amplitude_duty = 0.0;   // peak-to-peak duty, tail half
  double osc_amplitude_temp_c = 0.0; // peak-to-peak hottest temp, tail half
  double overshoot_c = 0.0;          // max(temp - reference, 0), whole run
  double settling_time_s = -1.0;

  /// Fold another run's metrics in (fleet aggregation): counts add, mean
  /// averages by sample weight, amplitudes/overshoot take the worst node,
  /// settling time takes the slowest settled node (unsettled poisons).
  void merge_worst(const StabilityMetrics& o);
};

/// Accumulates the sampled series and derives StabilityMetrics on demand.
/// Memory is one (SimTime, double, double) triple per sample — a 60 s run at
/// a 50 ms loop is 1200 samples.
class StabilityTracker {
 public:
  StabilityTracker(double reference_c, double band_c)
      : reference_c_(reference_c), band_c_(band_c) {}

  void on_sample(sim::SimTime at, double temp_c, double duty);

  StabilityMetrics metrics() const;

  std::size_t sample_count() const { return samples_.size(); }
  double reference_c() const { return reference_c_; }

 private:
  struct Sample {
    sim::SimTime at;
    double temp_c;
    double duty;
  };

  double reference_c_;
  double band_c_;
  std::vector<Sample> samples_;
};

}  // namespace dimetrodon::control
