#pragma once

#include <cstdint>
#include <memory>

#include "control/arbiter.hpp"
#include "control/governor.hpp"
#include "control/stability.hpp"
#include "sched/machine.hpp"

namespace dimetrodon::control {

/// Runs one Governor against one machine: every `spec.sample_period` the
/// driver makes "now" a thermal interaction point (Machine::sync_thermal_now —
/// a governor sample is NOT a new periodic substep, so the lazy thermal
/// clock's O(log k) fast-forward is preserved), reads the *quantized* per-core
/// sensors into a SensorFrame, feeds the governor, and publishes the returned
/// duty through its InjectionArbiter port. Trip edges, duty changes and duty
/// reversals are probed into the machine's tracer; the full (time, temp,
/// duty) series feeds a StabilityTracker for the derived oscillation /
/// overshoot / settling metrics.
///
/// The driver owns no RNG and reads no exact temperatures: a governed run is
/// a deterministic function of (machine config, workload, GovernorSpec).
class GovernorDriver {
 public:
  struct Stats {
    std::uint64_t samples = 0;
    std::uint64_t trips = 0;
    std::uint64_t releases = 0;
    std::uint64_t duty_changes = 0;
    std::uint64_t duty_reversals = 0;
  };

  /// Claims the arbiter's kGovernor channel and schedules the first sample
  /// one period from now. Throws std::invalid_argument on a kNone spec or a
  /// non-positive sample period; must outlive the run (or be stop()ed).
  GovernorDriver(sched::Machine& machine, InjectionArbiter& arbiter,
                 GovernorSpec spec);

  GovernorDriver(const GovernorDriver&) = delete;
  GovernorDriver& operator=(const GovernorDriver&) = delete;

  void stop() { running_ = false; }

  /// Swap the governor mid-run (a rolling config update): the new spec's
  /// controller starts from reset state, the kGovernor channel claim and the
  /// sampling cadence survive (the already-armed sample fires at its old
  /// time; later samples use the new period), and the stability tracker
  /// restarts so its metrics describe the post-retune loop. The channel's
  /// last published duty stays in force until the new governor's first
  /// sample publishes a change. Throws std::invalid_argument on a kNone
  /// spec or non-positive sample period — a retune can change the loop, not
  /// remove it.
  void retune(const GovernorSpec& spec);

  const Governor& governor() const { return *governor_; }
  const GovernorSpec& spec() const { return spec_; }
  const Stats& stats() const { return stats_; }
  double last_duty() const { return last_duty_; }

  const StabilityTracker& stability() const { return stability_; }
  StabilityMetrics stability_metrics() const { return stability_.metrics(); }

 private:
  void schedule_sample();
  void sample(sim::SimTime now);

  sched::Machine& machine_;
  InjectionArbiter::Port& port_;
  GovernorSpec spec_;
  std::unique_ptr<Governor> governor_;
  StabilityTracker stability_;
  Stats stats_;
  bool running_ = true;
  bool was_tripped_ = false;
  bool has_last_ = false;
  sim::SimTime last_sample_at_ = 0;
  double last_duty_ = 0.0;
  double last_duty_delta_ = 0.0;
};

}  // namespace dimetrodon::control
