#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>

#include "control/governor.hpp"
#include "core/controller.hpp"
#include "policy/thermal_policy.hpp"

namespace dimetrodon::control {

/// The two actuation taxonomies must stay disjoint: a policy::ThermalPolicy
/// is a static pre-run setting of hardware knobs (DVFS level, TCC duty step)
/// and a control::Governor is a runtime feedback loop over the *injection*
/// duty cycle. They compose — a VFS setpoint under a PID injection loop is a
/// valid experiment — precisely because they never write the same knob. If
/// either ever derived from the other, one "apply" could silently clobber
/// the other's actuation; keep the compiler holding that door shut.
static_assert(!std::is_base_of_v<policy::ThermalPolicy, Governor>,
              "control::Governor must not be a policy::ThermalPolicy: "
              "governors are feedback loops over injection duty, not static "
              "machine actuations — compose them, never substitute");
static_assert(!std::is_base_of_v<Governor, policy::ThermalPolicy>,
              "policy::ThermalPolicy must not be a control::Governor: "
              "static actuations have no feedback state to sample");
static_assert(!std::is_convertible_v<Governor*, policy::ThermalPolicy*>,
              "Governor* must never convert to ThermalPolicy*");

/// Explicit arbitration over core::DimetrodonController's global duty cycle.
///
/// Without this, any two writers — the preventive baseline configured by an
/// operator, a closed-loop governor, the power-capping PI loop — would race
/// on sys_set_global and the *last* writer would win, which is a bug: the
/// paper's preventive floor would vanish the moment a power cap ticked, and
/// a governor's trip would be undone by the next cap update.
///
/// The arbiter is the single writer. Control sources each claim one channel
/// (claiming a channel twice throws: two governors on one machine is a
/// configuration error, not a tie to break silently) and publish duty
/// requests through their port; the arbiter resolves max-probability-wins —
/// injection is a cooling actuation, so the most conservative (coolest)
/// request is always safe to honor — and writes the winner's (p, quantum)
/// through sys_set_global exactly once per change.
class InjectionArbiter {
 public:
  /// Fixed channel set; ties resolve to the lowest channel index, so
  /// resolution is deterministic.
  enum class Channel : std::uint8_t {
    kPreventive = 0,  // operator-configured open-loop baseline
    kGovernor = 1,    // closed-loop thermal governor
    kPowerCap = 2,    // power-budget PI loop
  };
  static constexpr std::size_t kNumChannels = 3;

  /// One claimed channel's write handle.
  class Port {
   public:
    /// Publish this channel's duty request and re-resolve.
    void request(double probability, sim::SimTime quantum);
    /// Stop requesting (the channel no longer constrains the duty).
    void withdraw();

    double probability() const;
    bool engaged() const;

   private:
    friend class InjectionArbiter;
    InjectionArbiter* arbiter_ = nullptr;
    Channel channel_ = Channel::kPreventive;
  };

  explicit InjectionArbiter(core::DimetrodonController& controller);

  InjectionArbiter(const InjectionArbiter&) = delete;
  InjectionArbiter& operator=(const InjectionArbiter&) = delete;

  /// Claim a channel for `owner` (a diagnostic name). Throws
  /// std::logic_error if the channel is already claimed.
  Port& claim(Channel channel, std::string owner);

  bool claimed(Channel channel) const;
  const std::string& owner(Channel channel) const;

  /// Resolution state (diagnostics, tests).
  double resolved_probability() const { return resolved_p_; }
  sim::SimTime resolved_quantum() const { return resolved_quantum_; }
  Channel winner() const { return winner_; }
  std::uint64_t writes() const { return writes_; }

 private:
  struct Slot {
    bool claimed = false;
    bool engaged = false;
    std::string owner;
    double probability = 0.0;
    sim::SimTime quantum = 0;
    Port port;
  };

  void resolve();
  Slot& slot(Channel c) { return slots_.at(static_cast<std::size_t>(c)); }
  const Slot& slot(Channel c) const {
    return slots_.at(static_cast<std::size_t>(c));
  }

  core::DimetrodonController& controller_;
  std::array<Slot, kNumChannels> slots_{};
  double resolved_p_ = 0.0;
  sim::SimTime resolved_quantum_ = 0;
  Channel winner_ = Channel::kPreventive;
  std::uint64_t writes_ = 0;  // sys_set_global calls actually issued
};

}  // namespace dimetrodon::control
