#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace dimetrodon::obs {

/// What happened. One enumerator per observable state change the simulator
/// makes; each carries a fixed-size payload in TraceEvent so events can live
/// in a binary ring buffer with no allocation on the hot path.
enum class EventKind : std::uint8_t {
  kSchedSwitch,      // a core began executing a thread
  kInjectionBegin,   // a Dimetrodon idle quantum displaced a thread
  kInjectionEnd,     // that quantum finished (arg = actual duration, ns)
  kCStateChange,     // a core moved along the C0 <-> C1E transition path
  kDvfsChange,       // a core's DVFS operating point was set
  kProchotThrottle,  // the hardware thermal monitor engaged / released
  kSensorSample,     // periodic die-temperature reading (trace-only)
  kMeterSample,      // the clamp power meter took a sample
  kRequestComplete,  // a workload request finished (value = latency, s)
  kThermalStats,     // thermal-engine work counter sample (trace-only)
  kRequestRouted,    // cluster: a request was dispatched to a node
  kNodeDrain,        // cluster: a node left / rejoined the routable set
  kGovernorSample,   // a closed-loop governor sampled its sensors
  kGovernorTrip,     // a threshold governor engaged / released
  kDutyChange,       // the resolved injection duty cycle changed
  kFleetSample,      // cluster: one batched fleet-wide telemetry sweep
  kRequestShed,      // cluster: an arrival found no routable node and was shed
  kNodeJoin,         // cluster: a node joined the fleet mid-run
  kScenarioDirective,// scenario: a script directive was applied to the fleet
};

constexpr std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSchedSwitch:     return "sched_switch";
    case EventKind::kInjectionBegin:  return "injection_begin";
    case EventKind::kInjectionEnd:    return "injection_end";
    case EventKind::kCStateChange:    return "cstate_change";
    case EventKind::kDvfsChange:      return "dvfs_change";
    case EventKind::kProchotThrottle: return "prochot_throttle";
    case EventKind::kSensorSample:    return "sensor_sample";
    case EventKind::kMeterSample:     return "meter_sample";
    case EventKind::kRequestComplete: return "request_complete";
    case EventKind::kThermalStats:    return "thermal_stats";
    case EventKind::kRequestRouted:   return "request_routed";
    case EventKind::kNodeDrain:       return "node_drain";
    case EventKind::kGovernorSample:  return "governor_sample";
    case EventKind::kGovernorTrip:    return "governor_trip";
    case EventKind::kDutyChange:      return "duty_change";
    case EventKind::kFleetSample:     return "fleet_sample";
    case EventKind::kRequestShed:     return "request_shed";
    case EventKind::kNodeJoin:        return "node_join";
    case EventKind::kScenarioDirective: return "scenario_directive";
  }
  return "unknown";
}

/// Which thermal-engine counter a kThermalStats event samples (in `phase`).
/// Emitted by the trace-time sensor sampler only — sink-gated and read-only,
/// like every other probe.
enum class ThermalStatKind : std::uint8_t {
  kSubsteps = 0,          // substeps integrated so far
  kFastForwardSteps = 1,  // substeps covered by lifted matvecs
  kFactorizations = 2,    // step-matrix LU factorizations
  kMatvecs = 3,           // dense matrix-vector products
};

constexpr std::string_view thermal_stat_name(ThermalStatKind k) {
  switch (k) {
    case ThermalStatKind::kSubsteps:         return "thermal substeps";
    case ThermalStatKind::kFastForwardSteps: return "thermal ff steps";
    case ThermalStatKind::kFactorizations:   return "thermal factorizations";
    case ThermalStatKind::kMatvecs:          return "thermal matvecs";
  }
  return "thermal ?";
}

/// Phase of a kCStateChange along the idle path. Exporters render the span
/// kEnterBegin..kExitDone as one idle residency on the core's state track.
enum class CStatePhase : std::uint8_t {
  kEnterBegin = 0,  // core committed to idling; entry transition starts
  kEnterDone = 1,   // settled in the idle C-state
  kExitBegin = 2,   // wakeup started; exit transition
  kExitDone = 3,    // back in C0, about to dispatch
};

/// One trace record: 32 bytes, trivially copyable, meaning determined by
/// `kind`. Field use by kind:
///   kSchedSwitch:      core, tid, phase = 1 if a context switch was charged
///   kInjectionBegin:   core, tid (victim), arg = requested quantum (ns)
///   kInjectionEnd:     core, tid (victim), arg = actual idle duration (ns)
///   kCStateChange:     core, phase = CStatePhase, arg = power::CState
///   kDvfsChange:       core, arg = ladder level, value = frequency (GHz)
///   kProchotThrottle:  core = physical core, arg = 1 engage / 0 release,
///                      value = die temperature (C)
///   kSensorSample:     core = physical core, value = die temperature (C)
///   kMeterSample:      value = measured package power (W)
///   kRequestComplete:  tid = workload-defined id, value = latency (s)
///   kThermalStats:     phase = ThermalStatKind, arg = cumulative count
///   kRequestRouted:    core = node index, tid = request id (cluster scope),
///                      arg = trace size class, value = trace affinity key
///                      (both 0 for Poisson-source arrivals)
///   kNodeDrain:        core = node index, arg = 1 drain / 0 rejoin,
///                      value = hottest die temperature (C)
///   kGovernorSample:   core = hottest physical core, arg = requested duty
///                      in ppm, value = hottest quantized temperature (C)
///   kGovernorTrip:     core = hottest physical core, arg = 1 trip /
///                      0 release, value = quantized temperature (C)
///   kDutyChange:       arg = winning arbiter channel, value = new duty p
///   kRequestShed:      tid = request id (no routable node existed)
///   kNodeJoin:         core = node index, arg = 1 warm (snapshot fork) /
///                      0 cold, value = warmup span (s)
///   kScenarioDirective: phase = directive kind, core = target node (or
///                      0xffff for fleet-wide), arg = directive index
struct TraceEvent {
  sim::SimTime at = 0;
  EventKind kind = EventKind::kSchedSwitch;
  std::uint8_t phase = 0;
  std::uint16_t core = 0;
  std::uint32_t tid = 0xffffffff;
  std::uint64_t arg = 0;
  double value = 0.0;
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay ring-friendly");

}  // namespace dimetrodon::obs
