#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dimetrodon::obs {

/// Per-logical-core counters, incremented inline by the machine regardless of
/// whether a trace sink is attached (plain integer adds; the registry is the
/// always-on half of the observability layer).
struct CoreCounters {
  std::uint64_t dispatches = 0;        // threads placed on this core
  std::uint64_t context_switches = 0;  // dispatches that charged a switch
  std::uint64_t injections = 0;        // idle quanta injected here
  std::uint64_t injected_idle_ns = 0;  // completed injected-idle residency
  std::uint64_t idle_ns = 0;           // total idle span (incl. transitions)
  std::uint64_t c1e_residency_ns = 0;  // settled time in the idle C-state
  std::uint64_t cstate_entries = 0;    // idle-path entries
};

/// Machine-wide counter totals: the flat, serializable summary surfaced in
/// harness::RunResult and merged into sweep metrics JSON. Fieldwise
/// subtraction yields window deltas.
struct CounterTotals {
  std::uint64_t dispatches = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t injections = 0;
  std::uint64_t injected_idle_ns = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t c1e_residency_ns = 0;
  std::uint64_t cstate_entries = 0;
  std::uint64_t prochot_activations = 0;
  std::uint64_t dvfs_changes = 0;
  std::uint64_t meter_samples = 0;
  std::uint64_t sensor_samples = 0;  // trace-only sampler; 0 without a sink
  std::uint64_t requests_completed = 0;

  // Cluster-scope counters (src/cluster). A machine never increments these;
  // the cluster's load balancer and drain logic do, through a cluster-owned
  // tracer, and the cluster folds them into its aggregated totals.
  std::uint64_t requests_routed = 0;  // dispatch decisions made
  std::uint64_t node_drains = 0;      // PROCHOT failover engagements
  std::uint64_t fleet_samples = 0;    // batched fleet-wide telemetry sweeps

  // Scenario-layer counters (src/scenario directives acting on a cluster).
  // All zero outside scenario runs; shed/re-homed nonzero means requests
  // were intentionally dropped or migrated by churn — surfaced in sweep
  // metrics so long scenario runs cannot lose data silently.
  std::uint64_t scenario_directives = 0;  // script directives applied
  std::uint64_t node_joins = 0;           // nodes joined mid-run
  std::uint64_t node_removals = 0;        // nodes removed mid-run
  std::uint64_t requests_shed = 0;        // arrivals with no routable node
  std::uint64_t requests_rehomed = 0;     // cancelled + re-routed requests
  /// Non-finite latency samples dropped by the cluster's streaming
  /// percentile histogram (PercentileHistogram::rejected()) — nonzero means
  /// the reported p50/p95/p99 silently exclude samples.
  std::uint64_t latency_rejects = 0;

  // Thermal-engine work counters (mirrored from RcNetwork::stats() at every
  // advance): how the closed-form fast-forward is spending its effort.
  std::uint64_t thermal_substeps = 0;            // substeps integrated
  std::uint64_t thermal_fast_forward_steps = 0;  // covered by lifted matvecs
  std::uint64_t thermal_factorizations = 0;      // step-matrix LU factors
  std::uint64_t thermal_matvecs = 0;             // matvec products, any kind
  std::uint64_t thermal_sparse_matvecs = 0;      // of those, via the CSR path
  std::uint64_t thermal_evictions = 0;           // StepOperator LRU evictions

  // Warm-start counters. The machine never increments these; the sweep
  // engine's snapshot cache does (builds = warmup prefixes simulated, forks
  // = runs resumed from a cached checkpoint).
  std::uint64_t snapshot_builds = 0;
  std::uint64_t snapshot_forks = 0;

  // Sweep-level fault counters. The machine never increments these; the
  // sweep engine's fault-isolation layer does, and routing them through the
  // same fields() listing folds them into every metrics merge for free.
  std::uint64_t runs_failed = 0;          // runs that exhausted all attempts
  std::uint64_t runs_retried = 0;         // extra attempts after transients
  std::uint64_t cache_write_retries = 0;  // result-cache store retries

  // Closed-loop control counters (src/control). Incremented by the
  // GovernorDriver through the machine's tracer; all zero on open-loop runs.
  std::uint64_t governor_samples = 0;   // sensor frames consumed
  std::uint64_t governor_trips = 0;     // threshold engagements
  std::uint64_t governor_releases = 0;  // threshold releases
  std::uint64_t duty_changes = 0;       // resolved duty-cycle changes
  std::uint64_t duty_reversals = 0;     // duty direction flips (flapping)

  /// Stable (name, member) listing driving every serialization of the totals
  /// (result cache, metrics JSON, CSV) so the field set cannot drift apart.
  using Field = std::pair<const char*, std::uint64_t CounterTotals::*>;
  static const std::vector<Field>& fields();

  CounterTotals& operator+=(const CounterTotals& o);
  CounterTotals& operator-=(const CounterTotals& o);
  friend CounterTotals operator-(CounterTotals a, const CounterTotals& b) {
    a -= b;
    return a;
  }
  bool operator==(const CounterTotals&) const = default;
};

/// The machine's counter registry: per-core rows plus machine-global
/// counters, owned by the tracer and readable at any time.
class CounterRegistry {
 public:
  void resize(std::size_t num_cores) { per_core_.assign(num_cores, {}); }

  CoreCounters& core(std::size_t i) { return per_core_.at(i); }
  const CoreCounters& core(std::size_t i) const { return per_core_.at(i); }
  std::size_t num_cores() const { return per_core_.size(); }

  std::uint64_t prochot_activations = 0;
  std::uint64_t dvfs_changes = 0;
  std::uint64_t meter_samples = 0;
  std::uint64_t sensor_samples = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_routed = 0;  // cluster scope
  std::uint64_t node_drains = 0;      // cluster scope
  std::uint64_t fleet_samples = 0;    // cluster scope
  std::uint64_t scenario_directives = 0;  // scenario scope
  std::uint64_t node_joins = 0;           // scenario scope
  std::uint64_t node_removals = 0;        // scenario scope
  std::uint64_t requests_shed = 0;        // cluster scope
  std::uint64_t requests_rehomed = 0;     // scenario scope

  // Closed-loop control (src/control GovernorDriver).
  std::uint64_t governor_samples = 0;
  std::uint64_t governor_trips = 0;
  std::uint64_t governor_releases = 0;
  std::uint64_t duty_changes = 0;
  std::uint64_t duty_reversals = 0;

  // Thermal-engine counters; the machine writes the network's monotonic
  // stats() snapshot here after every thermal advance.
  std::uint64_t thermal_substeps = 0;
  std::uint64_t thermal_fast_forward_steps = 0;
  std::uint64_t thermal_factorizations = 0;
  std::uint64_t thermal_matvecs = 0;
  std::uint64_t thermal_sparse_matvecs = 0;
  std::uint64_t thermal_evictions = 0;

  CounterTotals totals() const;

 private:
  std::vector<CoreCounters> per_core_;
};

/// Render totals as `"prefix": {...}` JSON (no trailing newline).
std::string totals_to_json(const CounterTotals& t, int indent);

}  // namespace dimetrodon::obs
