#pragma once

#include <cstddef>
#include <string>

namespace dimetrodon::obs::json {

/// Result of validating a JSON document.
struct ParseResult {
  bool ok = false;
  std::size_t error_pos = 0;   // byte offset of the first error
  std::string error;           // empty when ok
  std::size_t values = 0;      // total JSON values parsed (round-trip proof)
};

/// Strict recursive-descent validation of a complete JSON text (RFC 8259
/// grammar: objects, arrays, strings with escapes, numbers, literals).
/// Exporter output must round-trip through this before we call it valid —
/// the acceptance gate for every trace we write.
ParseResult validate(const std::string& text);

/// Escape a string for embedding inside a JSON string literal.
std::string escape(const std::string& s);

}  // namespace dimetrodon::obs::json
