#include "obs/counters.hpp"

#include <cstdio>

namespace dimetrodon::obs {

const std::vector<CounterTotals::Field>& CounterTotals::fields() {
  static const std::vector<Field> kFields = {
      {"dispatches", &CounterTotals::dispatches},
      {"context_switches", &CounterTotals::context_switches},
      {"injections", &CounterTotals::injections},
      {"injected_idle_ns", &CounterTotals::injected_idle_ns},
      {"idle_ns", &CounterTotals::idle_ns},
      {"c1e_residency_ns", &CounterTotals::c1e_residency_ns},
      {"cstate_entries", &CounterTotals::cstate_entries},
      {"prochot_activations", &CounterTotals::prochot_activations},
      {"dvfs_changes", &CounterTotals::dvfs_changes},
      {"meter_samples", &CounterTotals::meter_samples},
      {"sensor_samples", &CounterTotals::sensor_samples},
      {"requests_completed", &CounterTotals::requests_completed},
      {"thermal_substeps", &CounterTotals::thermal_substeps},
      {"thermal_fast_forward_steps", &CounterTotals::thermal_fast_forward_steps},
      {"thermal_factorizations", &CounterTotals::thermal_factorizations},
      {"thermal_matvecs", &CounterTotals::thermal_matvecs},
      {"thermal_sparse_matvecs", &CounterTotals::thermal_sparse_matvecs},
      {"thermal_evictions", &CounterTotals::thermal_evictions},
      {"snapshot_builds", &CounterTotals::snapshot_builds},
      {"snapshot_forks", &CounterTotals::snapshot_forks},
      {"requests_routed", &CounterTotals::requests_routed},
      {"node_drains", &CounterTotals::node_drains},
      {"fleet_samples", &CounterTotals::fleet_samples},
      {"scenario_directives", &CounterTotals::scenario_directives},
      {"node_joins", &CounterTotals::node_joins},
      {"node_removals", &CounterTotals::node_removals},
      {"requests_shed", &CounterTotals::requests_shed},
      {"requests_rehomed", &CounterTotals::requests_rehomed},
      {"latency_rejects", &CounterTotals::latency_rejects},
      {"runs_failed", &CounterTotals::runs_failed},
      {"runs_retried", &CounterTotals::runs_retried},
      {"cache_write_retries", &CounterTotals::cache_write_retries},
      {"governor_samples", &CounterTotals::governor_samples},
      {"governor_trips", &CounterTotals::governor_trips},
      {"governor_releases", &CounterTotals::governor_releases},
      {"duty_changes", &CounterTotals::duty_changes},
      {"duty_reversals", &CounterTotals::duty_reversals},
  };
  return kFields;
}

CounterTotals& CounterTotals::operator+=(const CounterTotals& o) {
  for (const auto& [name, member] : fields()) this->*member += o.*member;
  return *this;
}

CounterTotals& CounterTotals::operator-=(const CounterTotals& o) {
  for (const auto& [name, member] : fields()) this->*member -= o.*member;
  return *this;
}

CounterTotals CounterRegistry::totals() const {
  CounterTotals t;
  for (const auto& c : per_core_) {
    t.dispatches += c.dispatches;
    t.context_switches += c.context_switches;
    t.injections += c.injections;
    t.injected_idle_ns += c.injected_idle_ns;
    t.idle_ns += c.idle_ns;
    t.c1e_residency_ns += c.c1e_residency_ns;
    t.cstate_entries += c.cstate_entries;
  }
  t.prochot_activations = prochot_activations;
  t.dvfs_changes = dvfs_changes;
  t.meter_samples = meter_samples;
  t.sensor_samples = sensor_samples;
  t.requests_completed = requests_completed;
  t.requests_routed = requests_routed;
  t.node_drains = node_drains;
  t.fleet_samples = fleet_samples;
  t.scenario_directives = scenario_directives;
  t.node_joins = node_joins;
  t.node_removals = node_removals;
  t.requests_shed = requests_shed;
  t.requests_rehomed = requests_rehomed;
  t.thermal_substeps = thermal_substeps;
  t.thermal_fast_forward_steps = thermal_fast_forward_steps;
  t.thermal_factorizations = thermal_factorizations;
  t.thermal_matvecs = thermal_matvecs;
  t.thermal_sparse_matvecs = thermal_sparse_matvecs;
  t.thermal_evictions = thermal_evictions;
  t.governor_samples = governor_samples;
  t.governor_trips = governor_trips;
  t.governor_releases = governor_releases;
  t.duty_changes = duty_changes;
  t.duty_reversals = duty_reversals;
  return t;
}

std::string totals_to_json(const CounterTotals& t, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  const auto& fields = CounterTotals::fields();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s  \"%s\": %llu%s\n", pad.c_str(),
                  fields[i].first,
                  static_cast<unsigned long long>(t.*(fields[i].second)),
                  i + 1 < fields.size() ? "," : "");
    out += buf;
  }
  out += pad + "}";
  return out;
}

}  // namespace dimetrodon::obs
