#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace dimetrodon::obs {

/// Context an exporter needs beyond the raw events: track labels and the
/// thread-id -> name mapping (binary events carry ids only).
struct TraceMeta {
  std::string process_name;               // e.g. "race-to-idle"
  int pid = 0;                            // Chrome/Perfetto process group
  std::size_t num_cores = 0;              // logical CPUs (tracks per core)
  std::vector<std::string> thread_names;  // indexed by ThreadId
};

/// A closed injected-idle interval reconstructed from Begin/End events.
struct InjectionSpan {
  std::uint16_t core = 0;
  std::uint32_t tid = 0;
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
};

/// Pair kInjectionBegin/kInjectionEnd per (core, victim) into closed spans
/// (under suspension semantics one core can have two pending injections with
/// distinct victims, so the core alone is not a unique handle). An End
/// whose Begin was overwritten in the ring is recovered from its recorded
/// duration; a Begin with no End (trace stopped mid-quantum) is skipped,
/// mirroring the counter registry's accrue-at-completion rule — so
/// sum(end - begin) equals the registry's injected_idle_ns exactly.
std::vector<InjectionSpan> injected_idle_spans(
    const std::vector<TraceEvent>& events);

std::uint64_t summed_injection_ns(const std::vector<InjectionSpan>& spans);

/// Chrome trace-event / Perfetto exporter. Each added machine becomes one
/// process group with, per core: a running-thread track (sched switches), a
/// C-state track (idle residencies), an injected-idle track, plus die
/// temperature and package power counter tracks. Load the output at
/// https://ui.perfetto.dev or chrome://tracing.
class ChromeTraceExporter {
 public:
  void add_machine(const TraceMeta& meta,
                   const std::vector<TraceEvent>& events);

  /// Write the complete JSON document ({"traceEvents": [...], ...}).
  void write(std::ostream& out) const;
  std::string to_string() const;

 private:
  void emit(const std::string& entry) { entries_.push_back(entry); }
  std::vector<std::string> entries_;
};

/// Flat CSV of raw events: time_ns,kind,phase,core,tid,arg,value.
void write_csv(std::ostream& out, const std::vector<TraceEvent>& events);

}  // namespace dimetrodon::obs
