#pragma once

#include <memory>
#include <utility>

#include "obs/counters.hpp"
#include "obs/event.hpp"
#include "obs/trace_sink.hpp"
#include "sim/time.hpp"

namespace dimetrodon::obs {

/// The machine's probe points, bundled: an always-on CounterRegistry plus an
/// optional TraceSink. Every emit method increments its counters (integer
/// adds) and then tests `sink_raw_` once; with no sink attached the event is
/// never even constructed, so the scheduler hot path pays a single
/// well-predicted branch per probe.
///
/// Emission is strictly read-only with respect to the simulation: no RNG
/// draws, no event-queue interaction, no state writes outside the registry —
/// attaching a sink cannot change simulated behavior.
class Tracer {
 public:
  void attach(std::shared_ptr<TraceSink> sink) {
    sink_ = std::move(sink);
    sink_raw_ = sink_.get();
  }

  bool active() const { return sink_raw_ != nullptr; }
  TraceSink* sink() const { return sink_raw_; }

  CounterRegistry& counters() { return counters_; }
  const CounterRegistry& counters() const { return counters_; }

  // --- probes -------------------------------------------------------------

  void sched_switch(sim::SimTime at, std::uint32_t core, std::uint32_t tid,
                    bool switching) {
    auto& c = counters_.core(core);
    ++c.dispatches;
    if (switching) ++c.context_switches;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kSchedSwitch;
    e.phase = switching ? 1 : 0;
    e.core = static_cast<std::uint16_t>(core);
    e.tid = tid;
    sink_raw_->on_event(e);
  }

  void injection_begin(sim::SimTime at, std::uint32_t core, std::uint32_t tid,
                       sim::SimTime quantum) {
    ++counters_.core(core).injections;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kInjectionBegin;
    e.core = static_cast<std::uint16_t>(core);
    e.tid = tid;
    e.arg = static_cast<std::uint64_t>(quantum);
    sink_raw_->on_event(e);
  }

  /// `actual` is the realized idle duration (may undercut the requested
  /// quantum when kernel preemption is enabled). The registry accrues
  /// injected idle here, at completion, mirroring the machine's own span
  /// accounting — so exported Begin/End spans sum to exactly this counter.
  void injection_end(sim::SimTime at, std::uint32_t core, std::uint32_t tid,
                     sim::SimTime actual) {
    counters_.core(core).injected_idle_ns += static_cast<std::uint64_t>(actual);
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kInjectionEnd;
    e.core = static_cast<std::uint16_t>(core);
    e.tid = tid;
    e.arg = static_cast<std::uint64_t>(actual);
    sink_raw_->on_event(e);
  }

  void cstate_change(sim::SimTime at, std::uint32_t core, CStatePhase phase,
                     std::uint8_t cstate) {
    if (phase == CStatePhase::kEnterBegin) {
      ++counters_.core(core).cstate_entries;
    }
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kCStateChange;
    e.phase = static_cast<std::uint8_t>(phase);
    e.core = static_cast<std::uint16_t>(core);
    e.arg = cstate;
    sink_raw_->on_event(e);
  }

  /// Counter-only: settled residency in the idle C-state just ended.
  void c1e_residency(std::uint32_t core, sim::SimTime ns) {
    counters_.core(core).c1e_residency_ns += static_cast<std::uint64_t>(ns);
  }

  /// Counter-only: a full idle span (transitions included) just ended.
  void idle_span(std::uint32_t core, sim::SimTime ns) {
    counters_.core(core).idle_ns += static_cast<std::uint64_t>(ns);
  }

  void dvfs_change(sim::SimTime at, std::uint32_t core, std::uint64_t level,
                   double freq_ghz) {
    ++counters_.dvfs_changes;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kDvfsChange;
    e.core = static_cast<std::uint16_t>(core);
    e.arg = level;
    e.value = freq_ghz;
    sink_raw_->on_event(e);
  }

  void prochot(sim::SimTime at, std::uint32_t phys, bool engaged,
               double temp_c) {
    if (engaged) ++counters_.prochot_activations;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kProchotThrottle;
    e.core = static_cast<std::uint16_t>(phys);
    e.arg = engaged ? 1 : 0;
    e.value = temp_c;
    sink_raw_->on_event(e);
  }

  void meter_sample(sim::SimTime at, double watts) {
    ++counters_.meter_samples;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kMeterSample;
    e.value = watts;
    sink_raw_->on_event(e);
  }

  /// Emitted only by the trace-time sensor sampler, which runs only with a
  /// sink attached — the one counter that is sink-dependent by nature.
  void sensor_sample(sim::SimTime at, std::uint32_t phys, double temp_c) {
    ++counters_.sensor_samples;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kSensorSample;
    e.core = static_cast<std::uint16_t>(phys);
    e.value = temp_c;
    sink_raw_->on_event(e);
  }

  /// Trace-only sample of one cumulative thermal-engine work counter (the
  /// registry copy is maintained by the machine itself, so this probe adds
  /// nothing when no sink is attached).
  void thermal_stat(sim::SimTime at, ThermalStatKind which,
                    std::uint64_t count) {
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kThermalStats;
    e.phase = static_cast<std::uint8_t>(which);
    e.arg = count;
    sink_raw_->on_event(e);
  }

  /// Cluster scope: the load balancer dispatched request `id` to `node`.
  /// Emitted by a cluster-owned tracer, never by a machine's. Trace-sourced
  /// arrivals carry their size class and affinity key (0/0 for Poisson) so a
  /// recorded completion stream round-trips into a replayable trace file.
  void request_routed(sim::SimTime at, std::uint32_t node, std::uint32_t id,
                      std::uint8_t size_class = 0, std::uint32_t affinity = 0) {
    ++counters_.requests_routed;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kRequestRouted;
    e.core = static_cast<std::uint16_t>(node);
    e.tid = id;
    e.arg = size_class;
    e.value = static_cast<double>(affinity);
    sink_raw_->on_event(e);
  }

  /// Cluster scope: arrival `id` found no routable node (whole-fleet drain /
  /// churn overlap) and was dropped instead of queued.
  void request_shed(sim::SimTime at, std::uint32_t id) {
    ++counters_.requests_shed;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kRequestShed;
    e.tid = id;
    sink_raw_->on_event(e);
  }

  /// Counter-only: an outstanding request was cancelled on a removed node
  /// and re-routed elsewhere with its original issue time preserved.
  void request_rehomed() { ++counters_.requests_rehomed; }

  /// Scenario scope: a node joined the fleet mid-run. `warm` marks a
  /// snapshot-forked join (vs a cold construct); `warm_s` the warmup span.
  void node_join(sim::SimTime at, std::uint32_t node, bool warm,
                 double warm_s) {
    ++counters_.node_joins;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kNodeJoin;
    e.core = static_cast<std::uint16_t>(node);
    e.arg = warm ? 1 : 0;
    e.value = warm_s;
    sink_raw_->on_event(e);
  }

  /// Counter-only: a node finished removal and detached from the fleet.
  void node_removed() { ++counters_.node_removals; }

  /// Scenario scope: script directive number `index` of kind `kind` was
  /// applied to `node` (0xffff for fleet-wide directives).
  void scenario_directive(sim::SimTime at, std::uint8_t kind,
                          std::uint32_t node, std::uint64_t index) {
    ++counters_.scenario_directives;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kScenarioDirective;
    e.phase = kind;
    e.core = static_cast<std::uint16_t>(node);
    e.arg = index;
    sink_raw_->on_event(e);
  }

  /// Cluster scope: `node` left (draining=true) or rejoined (false) the
  /// routable set; `temp_c` is its hottest die at the transition.
  void node_drain(sim::SimTime at, std::uint32_t node, bool draining,
                  double temp_c) {
    if (draining) ++counters_.node_drains;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kNodeDrain;
    e.core = static_cast<std::uint16_t>(node);
    e.arg = draining ? 1 : 0;
    e.value = temp_c;
    sink_raw_->on_event(e);
  }

  /// Control scope: a governor consumed one sensor frame. `duty` is the duty
  /// cycle it requested; `phys`/`temp_c` identify the hottest reading.
  void governor_sample(sim::SimTime at, std::uint32_t phys, double temp_c,
                       double duty) {
    ++counters_.governor_samples;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kGovernorSample;
    e.core = static_cast<std::uint16_t>(phys);
    e.arg = static_cast<std::uint64_t>(duty * 1e6);  // ppm
    e.value = temp_c;
    sink_raw_->on_event(e);
  }

  /// Control scope: a threshold-style governor engaged (tripped=true) or
  /// released its over-temperature latch.
  void governor_trip(sim::SimTime at, std::uint32_t phys, bool tripped,
                     double temp_c) {
    if (tripped) {
      ++counters_.governor_trips;
    } else {
      ++counters_.governor_releases;
    }
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kGovernorTrip;
    e.core = static_cast<std::uint16_t>(phys);
    e.arg = tripped ? 1 : 0;
    e.value = temp_c;
    sink_raw_->on_event(e);
  }

  /// Control scope: the arbitrated injection duty changed. `reversal` marks
  /// a direction flip relative to the previous change (flapping indicator).
  void duty_change(sim::SimTime at, std::uint32_t channel, double duty,
                   bool reversal) {
    ++counters_.duty_changes;
    if (reversal) ++counters_.duty_reversals;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kDutyChange;
    e.phase = reversal ? 1 : 0;
    e.arg = channel;
    e.value = duty;
    sink_raw_->on_event(e);
  }

  /// Cluster scope: one batched telemetry sweep covered the whole fleet.
  /// `nodes` is the fleet size, `hottest_c` the hottest quantized sensor
  /// reading anywhere at this sample. One event per sweep, not per node —
  /// the probe cost stays O(racks)-independent of fleet size.
  void fleet_sample(sim::SimTime at, std::uint32_t nodes, double hottest_c) {
    ++counters_.fleet_samples;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kFleetSample;
    e.arg = nodes;
    e.value = hottest_c;
    sink_raw_->on_event(e);
  }

  void request_complete(sim::SimTime at, std::uint32_t id, double latency_s) {
    ++counters_.requests_completed;
    if (sink_raw_ == nullptr) return;
    TraceEvent e;
    e.at = at;
    e.kind = EventKind::kRequestComplete;
    e.tid = id;
    e.value = latency_s;
    sink_raw_->on_event(e);
  }

 private:
  std::shared_ptr<TraceSink> sink_;
  TraceSink* sink_raw_ = nullptr;
  CounterRegistry counters_;
};

}  // namespace dimetrodon::obs
