#include "obs/json.hpp"

#include <cctype>
#include <cstdio>

namespace dimetrodon::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ParseResult run() {
    skip_ws();
    if (!value()) return fail();
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing content after top-level value";
      return fail();
    }
    ParseResult r;
    r.ok = true;
    r.values = values_;
    return r;
  }

 private:
  ParseResult fail() const {
    ParseResult r;
    r.error_pos = pos_;
    r.error = error_.empty() ? "malformed JSON" : error_;
    return r;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t start = pos_;
    for (const char* p = word; *p != '\0'; ++p) {
      if (eof() || peek() != *p) {
        pos_ = start;
        error_ = "bad literal";
        return false;
      }
      ++pos_;
    }
    return true;
  }

  bool value() {
    if (eof()) {
      error_ = "unexpected end of input";
      return false;
    }
    ++values_;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') {
        error_ = "expected object key";
        return false;
      }
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') {
        error_ = "expected ':' after key";
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) {
        error_ = "unterminated object";
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or '}' in object";
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) {
        error_ = "unterminated array";
        return false;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      error_ = "expected ',' or ']' in array";
      return false;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) break;
        const char esc = peek();
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              error_ = "bad \\u escape";
              return false;
            }
            ++pos_;
          }
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          error_ = "bad escape";
          return false;
        }
        ++pos_;
        continue;
      }
      if (c < 0x20) {
        error_ = "raw control character in string";
        return false;
      }
      ++pos_;
    }
    error_ = "unterminated string";
    return false;
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      error_ = "expected digit";
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (peek() == '-') ++pos_;
    if (eof()) {
      error_ = "bad number";
      return false;
    }
    if (peek() == '0') {
      ++pos_;  // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t values_ = 0;
  std::string error_;
};

}  // namespace

ParseResult validate(const std::string& text) { return Parser(text).run(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const unsigned char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace dimetrodon::obs::json
