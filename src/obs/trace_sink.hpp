#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/event.hpp"

namespace dimetrodon::obs {

/// Consumer of trace events. The machine's tracer holds at most one sink and
/// guards every emission behind a single null check, so an unattached
/// machine pays one predictable branch per event site and nothing else.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
};

/// How a sink reaches a machine: MachineConfig carries a factory (configs are
/// copied per run; the factory is invoked once per constructed machine).
/// Returning nullptr leaves the machine untraced.
using SinkFactory = std::function<std::shared_ptr<TraceSink>()>;

/// Fixed-capacity binary ring buffer of events: the default per-machine sink.
/// Writes are O(1) with no allocation after construction; once full, the
/// oldest events are overwritten and counted as dropped. `snapshot()` returns
/// the surviving events oldest-first.
class RingBufferSink final : public TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // 8 MiB

  explicit RingBufferSink(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    buffer_.reserve(capacity_);
  }

  void on_event(const TraceEvent& e) override {
    ++total_;
    if (buffer_.size() < capacity_) {
      buffer_.push_back(e);
      return;
    }
    buffer_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return buffer_.size(); }
  /// Events ever offered, including overwritten ones.
  std::uint64_t total_events() const { return total_; }
  /// Events lost to overwrite (total_events - size).
  std::uint64_t dropped() const { return dropped_; }

  /// Surviving events, oldest first.
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(buffer_.size());
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      out.push_back(buffer_[(head_ + i) % buffer_.size()]);
    }
    return out;
  }

  void clear() {
    buffer_.clear();
    head_ = 0;
    total_ = 0;
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once the buffer is full
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> buffer_;
};

}  // namespace dimetrodon::obs
