#include "obs/export.hpp"

#include <cstdio>
#include <map>
#include <optional>
#include <sstream>

#include "obs/json.hpp"

namespace dimetrodon::obs {

namespace {

// Chrome trace timestamps are microseconds; ns render exactly as .001 steps.
std::string us(sim::SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t) / 1000.0);
  return buf;
}

// Three tracks per logical core inside a machine's process group.
int running_tid(std::size_t core) { return static_cast<int>(core) * 3 + 1; }
int cstate_tid(std::size_t core) { return static_cast<int>(core) * 3 + 2; }
int inject_tid(std::size_t core) { return static_cast<int>(core) * 3 + 3; }

const char* cstate_label(std::uint64_t arg) {
  switch (arg) {
    case 0: return "C0";
    case 1: return "C1";
    case 2: return "C1E";
    default: return "C?";
  }
}

std::string meta_entry(int pid, const char* name, const std::string& args) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"name\":\"" << name
     << "\",\"args\":{" << args << "}}";
  return os.str();
}

std::string thread_meta(int pid, int tid, const std::string& name, int sort) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
     << json::escape(name) << "\"}},"
     << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << sort
     << "}}";
  return os.str();
}

std::string slice(int pid, int tid, const std::string& name, sim::SimTime begin,
                  sim::SimTime end, const std::string& args = "") {
  std::ostringstream os;
  os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":"
     << us(begin) << ",\"dur\":" << us(end - begin) << ",\"name\":\""
     << json::escape(name) << "\"";
  if (!args.empty()) os << ",\"args\":{" << args << "}";
  os << "}";
  return os.str();
}

std::string counter(int pid, const std::string& name, sim::SimTime at,
                    double value) {
  char val[48];
  std::snprintf(val, sizeof val, "%.6g", value);
  std::ostringstream os;
  os << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":0,\"ts\":" << us(at)
     << ",\"name\":\"" << json::escape(name) << "\",\"args\":{\"value\":"
     << val << "}}";
  return os.str();
}

std::string instant(int pid, int tid, const std::string& name, sim::SimTime at,
                    const std::string& args = "") {
  std::ostringstream os;
  os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << us(at) << ",\"name\":\"" << json::escape(name) << "\"";
  if (!args.empty()) os << ",\"args\":{" << args << "}";
  os << "}";
  return os.str();
}

std::string thread_label(const TraceMeta& meta, std::uint32_t tid) {
  if (tid < meta.thread_names.size() && !meta.thread_names[tid].empty()) {
    return meta.thread_names[tid];
  }
  return "tid " + std::to_string(tid);
}

}  // namespace

std::vector<InjectionSpan> injected_idle_spans(
    const std::vector<TraceEvent>& events) {
  std::vector<InjectionSpan> spans;
  // Keyed by (core, victim): under suspension semantics a core can host two
  // concurrently pending injections (victim A suspended, the replacement
  // thread B injected on the same core before A's quantum expires), so the
  // core alone is not a unique handle.
  std::map<std::uint64_t, TraceEvent> open;
  const auto key = [](const TraceEvent& e) {
    return (static_cast<std::uint64_t>(e.core) << 32) | e.tid;
  };
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kInjectionBegin) {
      open[key(e)] = e;
    } else if (e.kind == EventKind::kInjectionEnd) {
      InjectionSpan s;
      s.core = e.core;
      s.tid = e.tid;
      s.end = e.at;
      auto it = open.find(key(e));
      if (it != open.end()) {
        s.begin = it->second.at;
        open.erase(it);
      } else {
        // Begin fell off the ring: recover it from the recorded duration.
        s.begin = e.at - static_cast<sim::SimTime>(e.arg);
      }
      spans.push_back(s);
    }
  }
  // A Begin with no End stays open: the registry has not accrued it either,
  // so skipping keeps the span sum equal to injected_idle_ns.
  return spans;
}

std::uint64_t summed_injection_ns(const std::vector<InjectionSpan>& spans) {
  std::uint64_t total = 0;
  for (const InjectionSpan& s : spans) {
    total += static_cast<std::uint64_t>(s.end - s.begin);
  }
  return total;
}

void ChromeTraceExporter::add_machine(const TraceMeta& meta,
                                      const std::vector<TraceEvent>& events) {
  const int pid = meta.pid;
  emit(meta_entry(pid, "process_name",
                  "\"name\":\"" + json::escape(meta.process_name) + "\""));
  for (std::size_t c = 0; c < meta.num_cores; ++c) {
    const std::string cn = "core " + std::to_string(c);
    const int base = static_cast<int>(c) * 10;
    emit(thread_meta(pid, running_tid(c), cn + " running", base + 1));
    emit(thread_meta(pid, cstate_tid(c), cn + " c-state", base + 2));
    emit(thread_meta(pid, inject_tid(c), cn + " injected idle", base + 3));
  }

  struct OpenSlice {
    sim::SimTime begin = 0;
    std::uint32_t tid = 0;
    std::uint64_t arg = 0;
    bool active = false;
  };
  std::vector<OpenSlice> running(meta.num_cores);
  std::vector<OpenSlice> idle(meta.num_cores);
  sim::SimTime last_ts = 0;

  auto close_running = [&](std::size_t c, sim::SimTime at) {
    OpenSlice& r = running[c];
    if (!r.active || c >= meta.num_cores) return;
    if (at > r.begin) {
      emit(slice(pid, running_tid(c), thread_label(meta, r.tid), r.begin, at,
                 "\"tid\":" + std::to_string(r.tid)));
    }
    r.active = false;
  };

  for (const TraceEvent& e : events) {
    if (e.at > last_ts) last_ts = e.at;
    const std::size_t c = e.core;
    switch (e.kind) {
      case EventKind::kSchedSwitch: {
        if (c >= meta.num_cores) break;
        close_running(c, e.at);
        running[c] = {e.at, e.tid, 0, true};
        break;
      }
      case EventKind::kCStateChange: {
        if (c >= meta.num_cores) break;
        const auto phase = static_cast<CStatePhase>(e.phase);
        if (phase == CStatePhase::kEnterBegin) {
          close_running(c, e.at);
          idle[c] = {e.at, e.tid, e.arg, true};
        } else if (phase == CStatePhase::kExitDone && idle[c].active) {
          emit(slice(pid, cstate_tid(c), cstate_label(idle[c].arg),
                     idle[c].begin, e.at));
          idle[c].active = false;
        }
        break;
      }
      case EventKind::kDvfsChange: {
        char args[96];
        std::snprintf(args, sizeof args, "\"level\":%llu,\"freq_ghz\":%.6g",
                      static_cast<unsigned long long>(e.arg), e.value);
        if (c < meta.num_cores) {
          emit(instant(pid, running_tid(c), "dvfs", e.at, args));
        }
        emit(counter(pid, "freq_ghz core " + std::to_string(c), e.at,
                     e.value));
        break;
      }
      case EventKind::kProchotThrottle: {
        char args[64];
        std::snprintf(args, sizeof args, "\"temp_c\":%.6g", e.value);
        emit(instant(pid, 0,
                     std::string("PROCHOT ") +
                         (e.arg != 0 ? "engage" : "release") + " phys " +
                         std::to_string(c),
                     e.at, args));
        break;
      }
      case EventKind::kSensorSample:
        emit(counter(pid, "die temp C phys " + std::to_string(c), e.at,
                     e.value));
        break;
      case EventKind::kMeterSample:
        emit(counter(pid, "package power W", e.at, e.value));
        break;
      case EventKind::kRequestComplete: {
        char args[64];
        std::snprintf(args, sizeof args, "\"latency_s\":%.6g", e.value);
        emit(instant(pid, 0, "request " + std::to_string(e.tid), e.at, args));
        break;
      }
      case EventKind::kThermalStats:
        emit(counter(
            pid,
            std::string(thermal_stat_name(
                static_cast<ThermalStatKind>(e.phase))),
            e.at, static_cast<double>(e.arg)));
        break;
      case EventKind::kRequestRouted: {
        emit(instant(pid, 0,
                     "route req " + std::to_string(e.tid) + " -> node " +
                         std::to_string(c),
                     e.at));
        break;
      }
      case EventKind::kNodeDrain: {
        char args[64];
        std::snprintf(args, sizeof args, "\"temp_c\":%.6g", e.value);
        emit(instant(pid, 0,
                     std::string("node ") + std::to_string(c) +
                         (e.arg != 0 ? " drain" : " rejoin"),
                     e.at, args));
        break;
      }
      case EventKind::kGovernorSample:
        // Two counter tracks: what the governor saw and what it asked for.
        emit(counter(pid, "governor temp C", e.at, e.value));
        emit(counter(pid, "governor duty p", e.at,
                     static_cast<double>(e.arg) * 1e-6));
        break;
      case EventKind::kGovernorTrip: {
        char args[64];
        std::snprintf(args, sizeof args, "\"temp_c\":%.6g", e.value);
        emit(instant(pid, 0,
                     std::string("governor ") +
                         (e.arg != 0 ? "trip" : "release") + " phys " +
                         std::to_string(c),
                     e.at, args));
        break;
      }
      case EventKind::kDutyChange:
        emit(counter(pid, "injection duty p", e.at, e.value));
        break;
      case EventKind::kFleetSample:
        // One batched telemetry sweep: arg = fleet size, value = hottest
        // quantized sensor anywhere in the fleet at this sample.
        emit(counter(pid, "fleet hottest sensor C", e.at, e.value));
        break;
      case EventKind::kInjectionBegin:
      case EventKind::kInjectionEnd:
        break;  // rendered below from paired spans
    }
  }
  for (std::size_t c = 0; c < meta.num_cores; ++c) {
    close_running(c, last_ts);
    if (idle[c].active && last_ts > idle[c].begin) {
      emit(slice(pid, cstate_tid(c), cstate_label(idle[c].arg), idle[c].begin,
                 last_ts));
    }
  }

  for (const InjectionSpan& s : injected_idle_spans(events)) {
    if (s.core >= meta.num_cores || s.end <= s.begin) continue;
    emit(slice(pid, inject_tid(s.core), "injected idle", s.begin, s.end,
               "\"victim\":\"" + json::escape(thread_label(meta, s.tid)) +
                   "\""));
  }
}

void ChromeTraceExporter::write(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out << entries_[i];
    if (i + 1 < entries_.size()) out << ",";
    out << "\n";
  }
  out << "]}\n";
}

std::string ChromeTraceExporter::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void write_csv(std::ostream& out, const std::vector<TraceEvent>& events) {
  out << "time_ns,kind,phase,core,tid,arg,value\n";
  for (const TraceEvent& e : events) {
    char row[160];
    std::snprintf(row, sizeof row, "%lld,%s,%u,%u,%u,%llu,%.9g\n",
                  static_cast<long long>(e.at),
                  std::string(event_kind_name(e.kind)).c_str(),
                  static_cast<unsigned>(e.phase),
                  static_cast<unsigned>(e.core), e.tid,
                  static_cast<unsigned long long>(e.arg), e.value);
    out << row;
  }
}

}  // namespace dimetrodon::obs
