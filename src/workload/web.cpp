#include "workload/web.hpp"

#include <algorithm>

namespace dimetrodon::workload {

namespace {
// Tiny poll burst used when a thread wakes to find its queue already drained
// by a sibling.
constexpr double kPollSeconds = 1e-6;
}  // namespace

/// Kernel network-interrupt thread: drains the pending queue in one batch of
/// per-request interrupt handling, then notifies user workers.
class WebKernelBehavior final : public sched::ThreadBehavior {
 public:
  explicit WebKernelBehavior(WebWorkload& w) : w_(w) {}

  sched::Burst next_burst(sim::SimTime /*now*/, sim::Rng& /*rng*/) override {
    batch_ = w_.pending_kernel_.size();
    const double work =
        batch_ == 0 ? kPollSeconds
                    : static_cast<double>(batch_) * w_.config_.kernel_demand_s;
    return sched::Burst{work, 0.4};
  }

  sched::BurstOutcome on_burst_complete(sim::SimTime /*now*/,
                                        sim::Rng& /*rng*/) override {
    for (std::size_t i = 0; i < batch_ && !w_.pending_kernel_.empty(); ++i) {
      w_.ready_.push_back(w_.pending_kernel_.front());
      w_.pending_kernel_.pop_front();
      w_.wake_one_worker();
    }
    batch_ = 0;
    if (!w_.pending_kernel_.empty()) return sched::BurstOutcome::Continue();
    return sched::BurstOutcome::SleepUntilWoken();
  }

 private:
  WebWorkload& w_;
  std::size_t batch_ = 0;
};

/// User-level worker: picks up a ready request, burns its service demand,
/// sends the response.
class WebWorkerBehavior final : public sched::ThreadBehavior {
 public:
  explicit WebWorkerBehavior(WebWorkload& w) : w_(w) {}

  sched::Burst next_burst(sim::SimTime /*now*/, sim::Rng& rng) override {
    if (w_.ready_.empty()) {
      has_request_ = false;
      return sched::Burst{kPollSeconds, 0.1};
    }
    current_ = w_.ready_.front();
    w_.ready_.pop_front();
    ++w_.in_service_;
    has_request_ = true;
    const double demand =
        rng.exponential(w_.config_.demand_mean_s) * current_.demand_scale;
    return sched::Burst{demand, w_.config_.worker_activity};
  }

  sched::BurstOutcome on_burst_complete(sim::SimTime /*now*/,
                                        sim::Rng& /*rng*/) override {
    if (has_request_) {
      --w_.in_service_;
      w_.complete_request(current_);
      has_request_ = false;
    }
    if (!w_.ready_.empty()) return sched::BurstOutcome::Continue();
    return sched::BurstOutcome::SleepUntilWoken();
  }

 private:
  WebWorkload& w_;
  WebWorkload::Request current_{};
  bool has_request_ = false;
};

void WebWorkload::deploy(sched::Machine& machine) {
  machine_ = &machine;
  client_rng_ = std::make_unique<sim::Rng>(machine.fork_rng());

  kernel_tid_ =
      machine.create_thread("netisr", sched::ThreadClass::kKernel, 0,
                            std::make_unique<WebKernelBehavior>(*this));
  threads_.push_back(kernel_tid_);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    const auto tid = machine.create_thread(
        "httpd" + std::to_string(i), sched::ThreadClass::kUser, 0,
        std::make_unique<WebWorkerBehavior>(*this));
    worker_tids_.push_back(tid);
    threads_.push_back(tid);
  }
  // Stagger the initial think times so connections don't arrive in a burst.
  for (std::size_t c = 0; c < config_.connections; ++c) {
    schedule_think(static_cast<std::uint32_t>(c));
  }
}

void WebWorkload::schedule_think(std::uint32_t connection) {
  const double think = client_rng_->exponential(config_.think_mean_s);
  machine_->call_at(machine_->now() + sim::from_sec(think),
                    [this, connection](sim::SimTime) {
                      issue_request(connection);
                    });
}

void WebWorkload::issue_request(std::uint32_t connection) {
  pending_kernel_.push_back(Request{machine_->now(), connection, false});
  machine_->wake_thread(kernel_tid_);
}

void WebWorkload::inject_request(std::uint32_t request_id, double demand_scale,
                                 sim::SimTime issued_at) {
  const sim::SimTime issued = issued_at < 0 ? machine_->now() : issued_at;
  pending_kernel_.push_back(Request{issued, request_id, true, demand_scale});
  machine_->wake_thread(kernel_tid_);
}

std::vector<WebWorkload::CancelledRequest>
WebWorkload::cancel_pending_external() {
  std::vector<CancelledRequest> cancelled;
  const auto pull = [&cancelled](std::deque<Request>& q) {
    std::deque<Request> kept;
    for (const Request& r : q) {
      if (r.external) {
        cancelled.push_back({r.connection, r.issued_at, r.demand_scale});
      } else {
        kept.push_back(r);
      }
    }
    q.swap(kept);
  };
  // Ready queue first so the returned order is oldest-first overall: every
  // ready_ request passed through pending_kernel_ earlier.
  pull(ready_);
  pull(pending_kernel_);
  return cancelled;
}

void WebWorkload::wake_one_worker() {
  for (const auto tid : worker_tids_) {
    if (machine_->thread(tid).state() == sched::ThreadState::kSleeping) {
      machine_->wake_thread(tid);
      return;
    }
  }
  // All workers busy: the request waits in ready_ until one finishes.
}

void WebWorkload::complete_request(const Request& r) {
  ++completed_;
  const double latency = sim::to_sec(machine_->now() - r.issued_at);
  machine_->tracer().request_complete(machine_->now(), r.connection, latency);
  if (window_open_) {
    ++window_.total;
    if (latency <= config_.good_threshold_s) ++window_.good;
    if (latency <= config_.tolerable_threshold_s) {
      ++window_.tolerable;
    } else {
      ++window_.fail;
    }
    window_.max_latency_s = std::max(window_.max_latency_s, latency);
    window_hist_.add(latency);
  }
  if (r.external) {
    if (on_external_complete_) on_external_complete_(r.connection, latency);
  } else {
    schedule_think(r.connection);
  }
}

double WebWorkload::progress(const sched::Machine& /*machine*/) const {
  return static_cast<double>(completed_);
}

void WebWorkload::mark() {
  window_ = QosStats{};
  window_hist_.reset();
  window_open_ = true;
}

WebWorkload::QosStats WebWorkload::stats_since_mark() const {
  QosStats s = window_;
  s.mean_latency_s = window_hist_.mean();
  s.p50_latency_s = window_hist_.percentile(50.0);
  s.p95_latency_s = window_hist_.percentile(95.0);
  s.p99_latency_s = window_hist_.percentile(99.0);
  return s;
}

}  // namespace dimetrodon::workload
