#pragma once

#include <vector>

#include "sched/machine.hpp"
#include "sched/thread.hpp"

namespace dimetrodon::workload {

/// A deployable workload: creates its threads on a machine and exposes a
/// monotone progress metric the experiment harness differentiates into
/// throughput.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Create threads / event loops on the machine. Call exactly once.
  virtual void deploy(sched::Machine& machine) = 0;

  /// Monotone non-decreasing progress counter (nominal-seconds of work
  /// completed, requests served, ...). Throughput over a window is the
  /// difference of this metric across the window.
  virtual double progress(const sched::Machine& machine) const = 0;

  /// Threads this workload created (empty before deploy()).
  const std::vector<sched::ThreadId>& threads() const { return threads_; }

 protected:
  std::vector<sched::ThreadId> threads_;
};

}  // namespace dimetrodon::workload
