#include "workload/cpuburn.hpp"

#include <algorithm>

namespace dimetrodon::workload {

sched::Burst CpuBurnBehavior::next_burst(sim::SimTime /*now*/,
                                         sim::Rng& /*rng*/) {
  if (remaining_ <= 0.0) return sched::Burst{kChunkSeconds, activity_};
  const double w = std::min(remaining_, kChunkSeconds);
  return sched::Burst{w, activity_};
}

sched::BurstOutcome CpuBurnBehavior::on_burst_complete(sim::SimTime /*now*/,
                                                       sim::Rng& /*rng*/) {
  if (remaining_ <= 0.0) return sched::BurstOutcome::Continue();  // infinite
  remaining_ -= kChunkSeconds;
  if (remaining_ <= 1e-12) return sched::BurstOutcome::Exit();
  return sched::BurstOutcome::Continue();
}

void CpuBurnFleet::deploy(sched::Machine& machine) {
  for (std::size_t i = 0; i < instances_; ++i) {
    threads_.push_back(machine.create_thread(
        "cpuburn" + std::to_string(i), sched::ThreadClass::kUser, 0,
        std::make_unique<CpuBurnBehavior>(work_seconds_, activity_)));
  }
}

double CpuBurnFleet::progress(const sched::Machine& machine) const {
  double total = 0.0;
  for (const auto id : threads_) total += machine.thread(id).work_completed();
  return total;
}

bool CpuBurnFleet::all_done(const sched::Machine& machine) const {
  for (const auto id : threads_) {
    if (machine.thread(id).state() != sched::ThreadState::kDone) return false;
  }
  return true;
}

}  // namespace dimetrodon::workload
