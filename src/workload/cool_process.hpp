#pragma once

#include <memory>
#include <vector>

#include "workload/workload.hpp"

namespace dimetrodon::workload {

/// Wall-clock records of the cool process's bursts (shared between the
/// behavior, which lives inside the machine, and the workload handle).
struct CoolBurstLog {
  struct Entry {
    sim::SimTime started;
    sim::SimTime finished;
  };
  std::vector<Entry> completed;
  sim::SimTime current_start = -1;
};

/// The paper's "cool" process for the per-thread control demonstration
/// (§3.6): "a loop that executed cpuburn for six seconds, slept for one
/// minute, and repeated". Periodic, short-running, low average heat.
class CoolProcessBehavior final : public sched::ThreadBehavior {
 public:
  struct Config {
    double burn_seconds = 6.0;
    sim::SimTime sleep = sim::from_sec(60.0);
    double activity = 1.0;
  };

  CoolProcessBehavior() : config_() {}
  explicit CoolProcessBehavior(Config config) : config_(config) {}
  CoolProcessBehavior(Config config, std::shared_ptr<CoolBurstLog> log)
      : config_(config), log_(std::move(log)) {}

  sched::Burst next_burst(sim::SimTime now, sim::Rng& rng) override {
    (void)rng;
    if (log_) log_->current_start = now;
    return sched::Burst{config_.burn_seconds, config_.activity};
  }
  sched::BurstOutcome on_burst_complete(sim::SimTime now,
                                        sim::Rng& rng) override {
    (void)rng;
    if (log_ && log_->current_start >= 0) {
      log_->completed.push_back(CoolBurstLog::Entry{log_->current_start, now});
      log_->current_start = -1;
    }
    return sched::BurstOutcome::SleepFor(config_.sleep);
  }

 private:
  Config config_;
  std::shared_ptr<CoolBurstLog> log_;
};

/// Workload wrapper for a single cool process.
class CoolProcess final : public Workload {
 public:
  explicit CoolProcess(CoolProcessBehavior::Config config = {})
      : config_(config) {}

  void deploy(sched::Machine& machine) override {
    threads_.push_back(machine.create_thread(
        "cool", sched::ThreadClass::kUser, 0,
        std::make_unique<CoolProcessBehavior>(config_, log_)));
  }
  double progress(const sched::Machine& machine) const override {
    return machine.thread(threads_.front()).work_completed();
  }
  sched::ThreadId thread_id() const { return threads_.front(); }

  const CoolBurstLog& burst_log() const { return *log_; }

  /// Mean wall-clock stretch of completed bursts relative to the nominal
  /// burn time (1.0 = ran uninterrupted) — the "cool process throughput"
  /// axis of the paper's Figure 5 inverts this.
  double mean_burst_stretch() const {
    if (log_->completed.empty()) return 1.0;
    double sum = 0.0;
    for (const auto& e : log_->completed) {
      sum += sim::to_sec(e.finished - e.started) / config_.burn_seconds;
    }
    return sum / static_cast<double>(log_->completed.size());
  }

 private:
  CoolProcessBehavior::Config config_;
  std::shared_ptr<CoolBurstLog> log_ = std::make_shared<CoolBurstLog>();
};

}  // namespace dimetrodon::workload
