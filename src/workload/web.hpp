#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "analysis/histogram.hpp"
#include "workload/workload.hpp"

namespace dimetrodon::workload {

/// Closed-loop web-serving workload modeled on the paper's SPECWeb2005
/// eCommerce runs (§3.7): 440 simultaneous connections issue requests after
/// a think time; each request is first handled by a kernel network thread
/// (interrupt servicing) and then by a user-level worker thread (the
/// two-stage path whose double-delay hazard §3.1 discusses). Response
/// latency is bucketed by the SPECWeb QoS thresholds: "good" (<= 3 s),
/// "tolerable" (<= 5 s), "fail" (> 5 s).
class WebWorkload final : public Workload {
 public:
  struct Config {
    std::size_t connections = 440;
    double think_mean_s = 1.8;       // per-connection think time (exp)
    double demand_mean_s = 0.0040;   // user-level service demand (exp)
    double kernel_demand_s = 0.00012;  // per-request interrupt handling
    std::size_t workers = 8;         // server worker-thread pool
    double worker_activity = 0.8;    // web-serving switching activity
    double good_threshold_s = 3.0;
    double tolerable_threshold_s = 5.0;
  };

  struct QosStats {
    std::uint64_t good = 0;
    std::uint64_t tolerable = 0;  // includes good
    std::uint64_t fail = 0;
    std::uint64_t total = 0;
    double mean_latency_s = 0.0;
    double max_latency_s = 0.0;
    // Streaming percentiles (analysis::PercentileHistogram): tail latency is
    // what the cluster routing policies trade against temperature.
    double p50_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;

    double good_fraction() const {
      return total == 0 ? 1.0
                        : static_cast<double>(good) /
                              static_cast<double>(total);
    }
    double tolerable_fraction() const {
      return total == 0 ? 1.0
                        : static_cast<double>(tolerable) /
                              static_cast<double>(total);
    }
  };

  WebWorkload() : config_() {}
  explicit WebWorkload(Config config) : config_(config) {}

  void deploy(sched::Machine& machine) override;

  /// Completed requests (throughput proxy).
  double progress(const sched::Machine& machine) const override;

  /// Start/stop windowed QoS accounting.
  void mark();
  QosStats stats_since_mark() const;

  // --- open-loop interface (cluster layer) --------------------------------
  /// Invoked at completion of an externally injected request with its id and
  /// end-to-end latency. Runs inside the machine's event loop.
  using CompletionCallback =
      std::function<void(std::uint32_t request_id, double latency_s)>;
  void set_completion_callback(CompletionCallback cb) {
    on_external_complete_ = std::move(cb);
  }

  /// Push one request from outside the closed loop (a cluster load balancer)
  /// at the machine's current time. The request takes the same two-stage
  /// kernel/worker path as connection-issued ones; on completion the
  /// callback fires instead of a think-time reschedule. Requires deploy().
  ///
  /// `demand_scale` multiplies the drawn worker service demand (trace size
  /// classes map to powers of two; 1.0 is exactly the unscaled draw, so the
  /// legacy path stays bit-identical). `issued_at` back-dates the request's
  /// latency clock — a re-homed request keeps the issue time from the node
  /// it was cancelled on; negative (default) means "now".
  void inject_request(std::uint32_t request_id, double demand_scale = 1.0,
                      sim::SimTime issued_at = -1);

  /// An external request pulled back out of the queues by
  /// cancel_pending_external() — everything a cluster needs to re-home it
  /// elsewhere with its latency clock intact.
  struct CancelledRequest {
    std::uint32_t request_id = 0;
    sim::SimTime issued_at = 0;
    double demand_scale = 1.0;
  };

  /// Remove every external request still waiting in the kernel or ready
  /// queue (requests already in service run to completion on this node) and
  /// return them oldest-first. Connection-issued requests are untouched.
  /// This is the node-removal drain primitive: the cluster re-injects the
  /// returned requests on surviving nodes.
  std::vector<CancelledRequest> cancel_pending_external();

  std::uint64_t completed_requests() const { return completed_; }
  std::size_t outstanding_requests() const {
    return pending_kernel_.size() + ready_.size() + in_service_;
  }

  const Config& config() const { return config_; }

 private:
  friend class WebKernelBehavior;
  friend class WebWorkerBehavior;

  struct Request {
    sim::SimTime issued_at;
    std::uint32_t connection;  // connection id, or request id when external
    bool external = false;
    /// Service-demand multiplier (trace size class); exactly 1.0 for
    /// connection-issued and legacy external requests.
    double demand_scale = 1.0;
  };

  void issue_request(std::uint32_t connection);
  void schedule_think(std::uint32_t connection);
  void complete_request(const Request& r);
  void wake_one_worker();

  Config config_;
  sched::Machine* machine_ = nullptr;

  std::deque<Request> pending_kernel_;  // awaiting interrupt servicing
  std::deque<Request> ready_;           // awaiting a worker
  std::size_t in_service_ = 0;

  sched::ThreadId kernel_tid_ = sched::kInvalidThread;
  std::vector<sched::ThreadId> worker_tids_;

  std::unique_ptr<sim::Rng> client_rng_;
  CompletionCallback on_external_complete_;

  std::uint64_t completed_ = 0;

  // Windowed QoS accounting: bucket counts and the sum/max accrue exactly at
  // completion; percentiles stream through the histogram, so the window costs
  // O(1) memory however many requests it spans.
  QosStats window_;
  analysis::PercentileHistogram window_hist_;
  bool window_open_ = false;
};

}  // namespace dimetrodon::workload
