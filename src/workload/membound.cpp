#include "workload/membound.hpp"

#include <algorithm>

namespace dimetrodon::workload {

sched::Burst MemBoundBehavior::next_burst(sim::SimTime /*now*/,
                                          sim::Rng& rng) {
  // Jitter the CPU burst a little (cache behaviour varies by phase).
  const double jitter = std::clamp(rng.normal(1.0, 0.15), 0.5, 1.5);
  double w = profile_.burst_seconds * jitter;
  if (remaining_ > 0.0) w = std::min(remaining_, w);
  return sched::Burst{w, profile_.activity};
}

sched::BurstOutcome MemBoundBehavior::on_burst_complete(sim::SimTime /*now*/,
                                                        sim::Rng& rng) {
  if (remaining_ > 0.0) {
    remaining_ -= profile_.burst_seconds;  // jittered tail absorbed below
    if (remaining_ <= 1e-12) return sched::BurstOutcome::Exit();
  }
  // The memory-stall portion: the thread blocks (DRAM latency aggregated to
  // scheduler scale), freeing the core — which may clock-gate meanwhile.
  const double stall = profile_.burst_seconds * profile_.stall_fraction /
                       std::max(1e-9, 1.0 - profile_.stall_fraction);
  const double jitter = std::clamp(rng.normal(1.0, 0.2), 0.4, 1.8);
  return sched::BurstOutcome::SleepFor(sim::from_sec(stall * jitter));
}

void MemBoundFleet::deploy(sched::Machine& machine) {
  for (std::size_t i = 0; i < instances_; ++i) {
    threads_.push_back(machine.create_thread(
        "membound" + std::to_string(i), sched::ThreadClass::kUser, 0,
        std::make_unique<MemBoundBehavior>(profile_, work_seconds_)));
  }
}

double MemBoundFleet::progress(const sched::Machine& machine) const {
  double total = 0.0;
  for (const auto id : threads_) total += machine.thread(id).work_completed();
  return total;
}

}  // namespace dimetrodon::workload
