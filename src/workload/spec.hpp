#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "workload/workload.hpp"

namespace dimetrodon::workload {

/// Synthetic stand-in for a SPEC CPU2006 benchmark: fully CPU-bound (the
/// paper found "the workloads were entirely CPU-bound", §3.5) with a
/// benchmark-specific switching-activity profile that reproduces the
/// *thermal* differentiation of Table 1 — a mean activity level plus slow
/// phase oscillation and per-burst jitter.
struct SpecProfile {
  std::string name;
  double activity_mean;    // dynamic-power activity factor in [0,1]
  double activity_swing;   // phase oscillation amplitude
  double phase_seconds;    // phase period
  double jitter = 0.02;    // per-burst activity noise (stddev)
};

/// The six benchmarks the paper selected to span its thermal-profile range
/// (Table 1), hottest to coolest: calculix, namd, dealII, bzip2, gcc, astar.
const std::vector<SpecProfile>& spec2006_profiles();

/// Look up a profile by benchmark name; nullopt if unknown.
std::optional<SpecProfile> find_spec_profile(std::string_view name);

/// One SPEC benchmark instance: an endless sequence of short CPU bursts with
/// profile-driven activity (or a finite total, for completion-time runs).
class SpecBehavior final : public sched::ThreadBehavior {
 public:
  explicit SpecBehavior(SpecProfile profile, double total_work_seconds = -1.0)
      : profile_(std::move(profile)), remaining_(total_work_seconds) {}

  sched::Burst next_burst(sim::SimTime now, sim::Rng& rng) override;
  sched::BurstOutcome on_burst_complete(sim::SimTime now,
                                        sim::Rng& rng) override;

 private:
  SpecProfile profile_;
  double remaining_;
  static constexpr double kBurstSeconds = 0.02;
};

/// Fleet of identical SPEC instances, one per core in the paper's
/// methodology.
class SpecFleet final : public Workload {
 public:
  SpecFleet(SpecProfile profile, std::size_t instances,
            double work_seconds_each = -1.0)
      : profile_(std::move(profile)),
        instances_(instances),
        work_seconds_(work_seconds_each) {}

  void deploy(sched::Machine& machine) override;
  double progress(const sched::Machine& machine) const override;
  const SpecProfile& profile() const { return profile_; }

 private:
  SpecProfile profile_;
  std::size_t instances_;
  double work_seconds_;
};

}  // namespace dimetrodon::workload
