#include "workload/spec.hpp"

#include <algorithm>
#include <cmath>

namespace dimetrodon::workload {

const std::vector<SpecProfile>& spec2006_profiles() {
  // Activity factors calibrated so steady-state temperature rises over idle
  // land at Table 1's "Rise %" column relative to cpuburn (activity 1.0).
  // Swings/periods reflect the benchmarks' qualitative phase structure:
  // bzip2 and gcc are phase-heavy (compression blocks, compilation units),
  // namd/calculix are steady numeric kernels, astar alternates search and
  // backtracking phases and runs coolest.
  static const std::vector<SpecProfile> kProfiles = {
      {"calculix", 0.990, 0.01, 20.0, 0.01},
      {"namd", 0.929, 0.03, 10.0, 0.02},
      {"dealII", 0.909, 0.05, 8.0, 0.02},
      {"bzip2", 0.909, 0.09, 2.0, 0.04},
      {"gcc", 0.878, 0.11, 1.0, 0.05},
      {"astar", 0.803, 0.08, 4.0, 0.03},
  };
  return kProfiles;
}

std::optional<SpecProfile> find_spec_profile(std::string_view name) {
  for (const auto& p : spec2006_profiles()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

sched::Burst SpecBehavior::next_burst(sim::SimTime now, sim::Rng& rng) {
  const double t = sim::to_sec(now);
  const double phase =
      profile_.activity_swing *
      std::sin(2.0 * M_PI * t / std::max(profile_.phase_seconds, 1e-3));
  const double noise = rng.normal(0.0, profile_.jitter);
  const double activity =
      std::clamp(profile_.activity_mean + phase + noise, 0.05, 1.0);
  double w = kBurstSeconds;
  if (remaining_ > 0.0) w = std::min(remaining_, kBurstSeconds);
  return sched::Burst{w, activity};
}

sched::BurstOutcome SpecBehavior::on_burst_complete(sim::SimTime /*now*/,
                                                    sim::Rng& /*rng*/) {
  if (remaining_ <= 0.0) return sched::BurstOutcome::Continue();
  remaining_ -= kBurstSeconds;
  if (remaining_ <= 1e-12) return sched::BurstOutcome::Exit();
  return sched::BurstOutcome::Continue();
}

void SpecFleet::deploy(sched::Machine& machine) {
  for (std::size_t i = 0; i < instances_; ++i) {
    threads_.push_back(machine.create_thread(
        profile_.name + std::to_string(i), sched::ThreadClass::kUser, 0,
        std::make_unique<SpecBehavior>(profile_, work_seconds_)));
  }
}

double SpecFleet::progress(const sched::Machine& machine) const {
  double total = 0.0;
  for (const auto id : threads_) total += machine.thread(id).work_completed();
  return total;
}

}  // namespace dimetrodon::workload
