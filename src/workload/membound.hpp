#pragma once

#include "workload/workload.hpp"

namespace dimetrodon::workload {

/// Extension beyond the paper's suite: a memory-bound workload in the style
/// of mcf/lbm. The paper observed its SPEC selections were "entirely
/// CPU-bound" (§3.5); this profile models the other regime — frequent
/// last-level-cache misses stall the pipeline, so switching activity (heat)
/// is low AND nominal-frequency slowdowns are partially hidden behind memory
/// latency. Under DVFS the workload loses less throughput than f/f0
/// (memory time is frequency-invariant), which erodes VFS efficiency and
/// strengthens the case for injection on cool, stall-heavy threads.
struct MemBoundProfile {
  double activity = 0.35;        // low switching activity while stalled
  double stall_fraction = 0.55;  // fraction of time waiting on memory
  double burst_seconds = 0.02;   // CPU portion of each compute/stall cycle
};

class MemBoundBehavior final : public sched::ThreadBehavior {
 public:
  explicit MemBoundBehavior(MemBoundProfile profile,
                            double total_work_seconds = -1.0)
      : profile_(profile), remaining_(total_work_seconds) {}

  sched::Burst next_burst(sim::SimTime now, sim::Rng& rng) override;
  sched::BurstOutcome on_burst_complete(sim::SimTime now,
                                        sim::Rng& rng) override;

 private:
  MemBoundProfile profile_;
  double remaining_;
};

/// Fleet of memory-bound instances.
class MemBoundFleet final : public Workload {
 public:
  MemBoundFleet(MemBoundProfile profile, std::size_t instances,
                double work_seconds_each = -1.0)
      : profile_(profile),
        instances_(instances),
        work_seconds_(work_seconds_each) {}

  void deploy(sched::Machine& machine) override;
  double progress(const sched::Machine& machine) const override;

 private:
  MemBoundProfile profile_;
  std::size_t instances_;
  double work_seconds_;
};

}  // namespace dimetrodon::workload
