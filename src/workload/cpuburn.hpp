#pragma once

#include <string>

#include "workload/workload.hpp"

namespace dimetrodon::workload {

/// Behavior of one cpuburn (burnP6) instance: "a single-threaded infinite
/// loop containing a compact sequence of x86 instructions designed to
/// thermally stress test processors" (§3.3). Activity factor 1.0 — the
/// worst-case heat generator. A finite variant runs a fixed amount of work
/// and exits (the paper's model-validation binary).
class CpuBurnBehavior final : public sched::ThreadBehavior {
 public:
  /// `total_work_seconds` <= 0 means run forever.
  explicit CpuBurnBehavior(double total_work_seconds = -1.0,
                           double activity = 1.0)
      : remaining_(total_work_seconds), activity_(activity) {}

  sched::Burst next_burst(sim::SimTime now, sim::Rng& rng) override;
  sched::BurstOutcome on_burst_complete(sim::SimTime now,
                                        sim::Rng& rng) override;

  bool save_state(std::vector<double>& out) const override {
    out.push_back(remaining_);
    return true;
  }
  void load_state(const std::vector<double>& in) override {
    remaining_ = in.at(0);
  }

 private:
  double remaining_;
  double activity_;
  static constexpr double kChunkSeconds = 60.0;  // arbitrary; re-requested
};

/// A fleet of cpuburn instances ("we executed four instances of each
/// benchmark in parallel (one per core)", §3.2).
class CpuBurnFleet final : public Workload {
 public:
  CpuBurnFleet(std::size_t instances, double work_seconds_each = -1.0,
               double activity = 1.0)
      : instances_(instances),
        work_seconds_(work_seconds_each),
        activity_(activity) {}

  void deploy(sched::Machine& machine) override;
  double progress(const sched::Machine& machine) const override;

  /// True once every (finite) instance has exited.
  bool all_done(const sched::Machine& machine) const;

 private:
  std::size_t instances_;
  double work_seconds_;
  double activity_;
};

}  // namespace dimetrodon::workload
