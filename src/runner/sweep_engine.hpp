#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runner/metrics.hpp"
#include "runner/result_cache.hpp"
#include "runner/run_spec.hpp"
#include "sched/machine.hpp"

namespace dimetrodon::runner {

/// In-memory, per-engine cache of warmup-prefix machine snapshots, keyed by
/// canonical_warm_prefix. The first thread asking for a prefix builds it;
/// concurrent askers for the SAME prefix block on its future (distinct
/// prefixes build in parallel), and everyone shares one immutable snapshot.
/// A failed build is not cached: the promise is removed so a later run can
/// retry rather than inherit a poisoned future.
class SnapshotCache {
 public:
  using Snapshot = std::shared_ptr<const sched::MachineSnapshot>;

  /// Returns the cached snapshot for `prefix`, building it via `build` on
  /// first use. Sets `*built` to whether THIS call ran the builder.
  Snapshot get_or_build(const std::string& prefix,
                        const std::function<sched::MachineSnapshot()>& build,
                        bool* built);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_future<Snapshot>> map_;
};

struct SweepEngineConfig {
  /// Worker threads. 0 = one per hardware thread; 1 = serial reference mode.
  std::size_t threads = 0;

  bool use_cache = true;
  std::string cache_dir = "bench_results/cache";

  /// Print a progress line to stderr while the sweep runs.
  bool progress = true;

  /// If non-empty, dump the final MetricsSnapshot as JSON here.
  std::string metrics_json_path;

  /// Extra attempts after a *transient* failure (fault::TransientError,
  /// std::system_error, std::ios_base::failure). Deterministic simulation
  /// errors fail the run on the first attempt — retrying replays the same
  /// seed to the same throw. Backoff before attempt k is k * backoff_ms
  /// (fixed and jitter-free, so failure traces are reproducible).
  std::uint32_t run_retry_limit = 2;
  std::uint32_t retry_backoff_ms = 10;

  /// Retry budget for result-cache stores (same backoff rule).
  std::uint32_t cache_write_retry_limit = 2;

  /// Reads DIMETRODON_SWEEP_THREADS, DIMETRODON_SWEEP_CACHE ("0" disables),
  /// DIMETRODON_SWEEP_CACHE_DIR, DIMETRODON_SWEEP_PROGRESS ("0" disables),
  /// and DIMETRODON_SWEEP_RETRIES on top of the defaults; `bench_name` names
  /// the metrics JSON (bench_results/<bench_name>_metrics.json).
  static SweepEngineConfig from_env(const std::string& bench_name = "");
};

/// Everything a sweep produced: per-spec records (in spec order, with failed
/// points marked rather than missing), the failure captures, and the final
/// metrics snapshot. Vector-like accessors keep grid consumers reading
/// `sweep[i].result` directly.
struct SweepResult {
  std::vector<RunRecord> records;  // spec order; failed entries have .error
  std::vector<RunError> errors;    // failures only, in spec order
  MetricsSnapshot metrics;

  bool all_ok() const { return errors.empty(); }
  std::size_t size() const { return records.size(); }
  const RunRecord& at(std::size_t i) const { return records.at(i); }
  const RunRecord& operator[](std::size_t i) const { return records[i]; }
  auto begin() const { return records.begin(); }
  auto end() const { return records.end(); }
};

/// Batch executor for sweep grids. Each RunSpec is an independent
/// simulation: its machine is seeded solely from spec.seed, so results are
/// a pure function of the spec and the engine is free to execute points in
/// any order on any thread — a parallel sweep is bit-identical to the serial
/// loop it replaced. Completed points are stored in a content-hash-keyed
/// on-disk cache, so re-running a figure replays its grid instantly.
///
/// Fault isolation: every run executes inside an exception boundary. A
/// throw (std::exception or otherwise) is captured as a structured RunError
/// on that point's record — the sweep always completes the remaining grid,
/// failed points never enter the cache, and transient filesystem errors are
/// retried with deterministic backoff (run_retry_limit).
class SweepEngine {
 public:
  SweepEngine(sched::MachineConfig base, SweepEngineConfig config);

  /// Execute all specs (cache-hit, simulate, or fail-and-record); records in
  /// spec order.
  SweepResult run(const std::vector<RunSpec>& specs);

  /// Snapshot of the last run() (total counters; reset per call).
  MetricsSnapshot last_metrics() const { return last_metrics_; }

  const sched::MachineConfig& base_config() const { return base_; }
  const SweepEngineConfig& config() const { return config_; }

  /// Cache identity of a spec under this engine's base config (tests and
  /// diagnostics).
  std::string canonical(const RunSpec& spec) const {
    return canonical_spec(spec, base_);
  }
  CacheKey key_for(const RunSpec& spec) const {
    return CacheKey::of(canonical(spec));
  }

  /// Execute one spec, no cache involvement and no exception boundary (the
  /// cache-miss path; throws propagate to the boundary in run()). A spec
  /// with warmup > 0 builds (or reuses, when `snapshots` is non-null) the
  /// warmup-prefix snapshot and ALWAYS forks the measured run from it — the
  /// builder run and the forked run take the same code path whether or not
  /// the snapshot was cached, so caching cannot change results. `ctx` is
  /// the execution environment for kCustom runs (shared pool, lanes hint);
  /// the default is the standalone/serial context.
  static RunRecord execute(const RunSpec& spec,
                           const sched::MachineConfig& base,
                           SnapshotCache* snapshots = nullptr,
                           bool* snapshot_built = nullptr,
                           const RunContext& ctx = {});

  /// Warmup-prefix snapshots shared across this engine's runs (diagnostics).
  const SnapshotCache& snapshots() const { return snapshots_; }

 private:
  sched::MachineConfig base_;
  SweepEngineConfig config_;
  ResultCache cache_;
  SnapshotCache snapshots_;
  MetricsSnapshot last_metrics_;
};

}  // namespace dimetrodon::runner
