#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/metrics.hpp"
#include "runner/result_cache.hpp"
#include "runner/run_spec.hpp"
#include "sched/machine.hpp"

namespace dimetrodon::runner {

struct SweepEngineConfig {
  /// Worker threads. 0 = one per hardware thread; 1 = serial reference mode.
  std::size_t threads = 0;

  bool use_cache = true;
  std::string cache_dir = "bench_results/cache";

  /// Print a progress line to stderr while the sweep runs.
  bool progress = true;

  /// If non-empty, dump the final MetricsSnapshot as JSON here.
  std::string metrics_json_path;

  /// Reads DIMETRODON_SWEEP_THREADS, DIMETRODON_SWEEP_CACHE ("0" disables),
  /// DIMETRODON_SWEEP_CACHE_DIR, and DIMETRODON_SWEEP_PROGRESS ("0"
  /// disables) on top of the defaults; `bench_name` names the metrics JSON
  /// (bench_results/<bench_name>_metrics.json).
  static SweepEngineConfig from_env(const std::string& bench_name = "");
};

/// Batch executor for sweep grids. Each RunSpec is an independent
/// simulation: its machine is seeded solely from spec.seed, so results are
/// a pure function of the spec and the engine is free to execute points in
/// any order on any thread — a parallel sweep is bit-identical to the serial
/// loop it replaced. Completed points are stored in a content-hash-keyed
/// on-disk cache, so re-running a figure replays its grid instantly.
class SweepEngine {
 public:
  SweepEngine(sched::MachineConfig base, SweepEngineConfig config);

  /// Execute all specs (cache-hit or simulate); results in spec order.
  std::vector<RunRecord> run(const std::vector<RunSpec>& specs);

  /// Snapshot of the last run() (total counters; reset per call).
  MetricsSnapshot last_metrics() const { return last_metrics_; }

  const sched::MachineConfig& base_config() const { return base_; }
  const SweepEngineConfig& config() const { return config_; }

  /// Cache identity of a spec under this engine's base config (tests and
  /// diagnostics).
  std::string canonical(const RunSpec& spec) const {
    return canonical_spec(spec, base_);
  }
  CacheKey key_for(const RunSpec& spec) const {
    return CacheKey::of(canonical(spec));
  }

  /// Execute one spec, no cache involvement (the cache-miss path).
  static RunRecord execute(const RunSpec& spec,
                           const sched::MachineConfig& base);

 private:
  sched::MachineConfig base_;
  SweepEngineConfig config_;
  ResultCache cache_;
  MetricsSnapshot last_metrics_;
};

}  // namespace dimetrodon::runner
